// Command kv3d-explore evaluates a single Mercury/Iridium design point
// and prints the full server-level outcome — the interactive face of the
// design-space exploration behind Table 3.
//
//	kv3d-explore -core a7 -cores 32 -mem dram
//	kv3d-explore -core a15-1.5 -cores 8 -mem flash -dram-ns 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/obs"
	"kv3d/internal/report"
	"kv3d/internal/server"
	"kv3d/internal/serversim"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func main() {
	coreName := flag.String("core", "a7", "core: a7, a15-1.0, a15-1.5")
	coresPer := flag.Int("cores", 32, "cores per stack (1..32)")
	mem := flag.String("mem", "dram", "memory: dram (Mercury) or flash (Iridium)")
	dramNS := flag.Int("dram-ns", 10, "DRAM closed-page latency in ns")
	flashUS := flag.Int("flash-us", 10, "Flash read latency in us")
	jsonOut := flag.Bool("json", false, "emit the evaluation and event-level counters as JSON probes instead of a table")
	tracePath := flag.String("trace", "", "record the event-level validation run as Chrome trace-event JSON at this path")
	simStacks := flag.Int("sim-stacks", 8, "stacks in the scaled-down event-level validation run (-json/-trace)")
	simLoad := flag.Float64("sim-load", 0.85, "offered load as a fraction of nominal TPS in the validation run")
	simFor := flag.Duration("sim-duration", 20*time.Millisecond, "simulated time span of the validation run")
	seed := flag.Uint64("seed", 42, "validation run arrival/key seed")
	flag.Parse()

	var core cpu.Core
	switch *coreName {
	case "a7":
		core = cpu.CortexA7()
	case "a15-1.0", "a15":
		core = cpu.MustCortexA15(1e9)
	case "a15-1.5":
		core = cpu.MustCortexA15(1.5e9)
	default:
		log.Fatalf("kv3d-explore: unknown core %q", *coreName)
	}

	var d server.Design
	switch *mem {
	case "dram":
		d = server.Mercury(core, *coresPer)
		dev, err := memmodel.NewDRAM3D(sim.Duration(*dramNS) * sim.Nanosecond)
		if err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		d.Mem = dev
	case "flash":
		d = server.Iridium(core, *coresPer)
		dev, err := memmodel.NewFlash3D(sim.Duration(*flashUS)*sim.Microsecond, 200*sim.Microsecond)
		if err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		d.Mem = dev
	default:
		log.Fatalf("kv3d-explore: unknown memory %q", *mem)
	}

	e, err := server.Evaluate(d)
	if err != nil {
		log.Fatalf("kv3d-explore: %v", err)
	}

	t := &report.Table{
		Title:   fmt.Sprintf("%s on %s with %s", d.Name, core.Name(), d.Mem.Name()),
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("Stacks", fmt.Sprintf("%d (limited by %s)", e.Stacks, e.LimitedBy))
	t.AddRow("Cores", e.Cores)
	t.AddRow("Density", report.Bytes(e.DensityBytes))
	t.AddRow("Board area", fmt.Sprintf("%.0f cm^2", e.AreaCM2))
	t.AddRow("Power @max BW", fmt.Sprintf("%.0f W", e.PowerMaxW))
	t.AddRow("Power @64B GETs", fmt.Sprintf("%.0f W", e.Power64BW))
	t.AddRow("Max memory BW", fmt.Sprintf("%.1f GB/s", e.MaxBWBytesPerSec/1e9))
	t.AddRow("TPS @64B", report.SI(e.TPS64B))
	t.AddRow("TPS/Watt", report.SI(e.TPSPerWatt()))
	t.AddRow("TPS/GB", report.SI(e.TPSPerGB()))
	t.AddRow("Mean RTT @64B", e.MeanRTT64B.String())
	t.AddRow("Requests <1ms", fmt.Sprintf("%.1f%%", e.SubMsFraction64B*100))

	// -json and -trace both need the event-level run: a scaled-down
	// open-loop serversim at the design point, instrumented with the
	// same probe registry the metrics endpoint naming scheme maps onto.
	var probes []obs.Probe
	if *jsonOut || *tracePath != "" {
		reg := obs.NewRegistry()
		var tr *obs.Tracer
		if *tracePath != "" {
			tr = obs.NewTracer()
		}
		cfg := serversim.Config{
			Stack:      stackCfg(d),
			Stacks:     *simStacks,
			Op:         stackmodel.Get,
			ValueBytes: 64,
			Duration:   sim.Duration(simFor.Nanoseconds()) * sim.Nanosecond,
			Seed:       *seed,
			Trace:      tr,
			Probes:     reg,
		}
		nominal, err := serversim.NominalTPS(cfg)
		if err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		cfg.OfferedTPS = nominal * *simLoad
		if _, err := serversim.Run(cfg); err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		if tr != nil {
			f, err := os.Create(*tracePath)
			if err != nil {
				log.Fatalf("kv3d-explore: %v", err)
			}
			if err := tr.WriteJSON(f); err != nil {
				f.Close()
				log.Fatalf("kv3d-explore: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("kv3d-explore: %v", err)
			}
			fmt.Fprintf(os.Stderr, "kv3d-explore: trace written to %s (load it in Perfetto / chrome://tracing)\n", *tracePath)
		}
		probes = append(reg.Snapshot(),
			obs.Probe{Name: "explore.server.stacks", Value: float64(e.Stacks)},
			obs.Probe{Name: "explore.server.cores", Value: float64(e.Cores)},
			obs.Probe{Name: "explore.server.density_bytes", Value: float64(e.DensityBytes)},
			obs.Probe{Name: "explore.server.area_cm2", Value: e.AreaCM2},
			obs.Probe{Name: "explore.server.power_max_w", Value: e.PowerMaxW},
			obs.Probe{Name: "explore.server.power_64b_w", Value: e.Power64BW},
			obs.Probe{Name: "explore.server.max_bw_bytes_per_sec", Value: e.MaxBWBytesPerSec},
			obs.Probe{Name: "explore.server.tps_64b", Value: e.TPS64B},
			obs.Probe{Name: "explore.server.mean_rtt_64b_ns", Value: float64(e.MeanRTT64B) / float64(sim.Nanosecond)},
			obs.Probe{Name: "explore.server.sub_ms_fraction_64b", Value: e.SubMsFraction64B},
		)
	}
	if *jsonOut {
		if err := obs.WriteProbesJSON(os.Stdout, probes); err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		return
	}
	t.Render(os.Stdout)
}

// stackCfg lifts a physical design into the stack-level simulator
// configuration the validation run needs.
func stackCfg(d server.Design) stackmodel.Config {
	return stackmodel.Config{
		Core:          d.Core,
		Cache:         d.Cache,
		Mem:           d.Mem,
		CoresPerStack: d.CoresPerStack,
	}
}
