// Command kv3d-explore evaluates a single Mercury/Iridium design point
// and prints the full server-level outcome — the interactive face of the
// design-space exploration behind Table 3.
//
//	kv3d-explore -core a7 -cores 32 -mem dram
//	kv3d-explore -core a15-1.5 -cores 8 -mem flash -dram-ns 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/report"
	"kv3d/internal/server"
	"kv3d/internal/sim"
)

func main() {
	coreName := flag.String("core", "a7", "core: a7, a15-1.0, a15-1.5")
	coresPer := flag.Int("cores", 32, "cores per stack (1..32)")
	mem := flag.String("mem", "dram", "memory: dram (Mercury) or flash (Iridium)")
	dramNS := flag.Int("dram-ns", 10, "DRAM closed-page latency in ns")
	flashUS := flag.Int("flash-us", 10, "Flash read latency in us")
	flag.Parse()

	var core cpu.Core
	switch *coreName {
	case "a7":
		core = cpu.CortexA7()
	case "a15-1.0", "a15":
		core = cpu.MustCortexA15(1e9)
	case "a15-1.5":
		core = cpu.MustCortexA15(1.5e9)
	default:
		log.Fatalf("kv3d-explore: unknown core %q", *coreName)
	}

	var d server.Design
	switch *mem {
	case "dram":
		d = server.Mercury(core, *coresPer)
		dev, err := memmodel.NewDRAM3D(sim.Duration(*dramNS) * sim.Nanosecond)
		if err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		d.Mem = dev
	case "flash":
		d = server.Iridium(core, *coresPer)
		dev, err := memmodel.NewFlash3D(sim.Duration(*flashUS)*sim.Microsecond, 200*sim.Microsecond)
		if err != nil {
			log.Fatalf("kv3d-explore: %v", err)
		}
		d.Mem = dev
	default:
		log.Fatalf("kv3d-explore: unknown memory %q", *mem)
	}

	e, err := server.Evaluate(d)
	if err != nil {
		log.Fatalf("kv3d-explore: %v", err)
	}

	t := &report.Table{
		Title:   fmt.Sprintf("%s on %s with %s", d.Name, core.Name(), d.Mem.Name()),
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("Stacks", fmt.Sprintf("%d (limited by %s)", e.Stacks, e.LimitedBy))
	t.AddRow("Cores", e.Cores)
	t.AddRow("Density", report.Bytes(e.DensityBytes))
	t.AddRow("Board area", fmt.Sprintf("%.0f cm^2", e.AreaCM2))
	t.AddRow("Power @max BW", fmt.Sprintf("%.0f W", e.PowerMaxW))
	t.AddRow("Power @64B GETs", fmt.Sprintf("%.0f W", e.Power64BW))
	t.AddRow("Max memory BW", fmt.Sprintf("%.1f GB/s", e.MaxBWBytesPerSec/1e9))
	t.AddRow("TPS @64B", report.SI(e.TPS64B))
	t.AddRow("TPS/Watt", report.SI(e.TPSPerWatt()))
	t.AddRow("TPS/GB", report.SI(e.TPSPerGB()))
	t.AddRow("Mean RTT @64B", e.MeanRTT64B.String())
	t.AddRow("Requests <1ms", fmt.Sprintf("%.1f%%", e.SubMsFraction64B*100))
	t.Render(os.Stdout)
}
