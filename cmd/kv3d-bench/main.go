// Command kv3d-bench regenerates the paper's tables and figures, and
// measures the live server's performance trajectory.
//
// Usage:
//
//	kv3d-bench -run all          # every table and figure
//	kv3d-bench -run table3       # one experiment
//	kv3d-bench -run fig5 -quick  # trimmed sweep for smoke tests
//	kv3d-bench -list             # list experiment ids
//
// Live benchmark snapshots (the BENCH_*.json trajectory):
//
//	kv3d-bench -snapshot BENCH_baseline.json             # measure + record
//	kv3d-bench -snapshot BENCH_now.json \
//	    -compare BENCH_baseline.json -tolerance 0.5      # exit 1 on regression
//	kv3d-bench -snapshot BENCH_now.json -flight-trace trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kv3d/internal/bench"
	"kv3d/internal/experiments"
	"kv3d/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "render tables as JSON instead of ASCII")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON recording of the event-level run (loadlatency) to this file")

	snapshot := flag.String("snapshot", "", "run the live loopback benchmark and write its BENCH_*.json snapshot here (skips experiments)")
	compare := flag.String("compare", "", "baseline BENCH_*.json to compare the live run against; exits nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.5, "relative tolerance band for -compare (0.5 = 50% worse still passes)")
	benchName := flag.String("bench-name", "live", "snapshot name")
	benchOps := flag.Int("bench-ops", 20000, "live bench: total operations")
	benchWorkers := flag.Int("bench-workers", 4, "live bench: concurrent connections")
	benchValue := flag.Int("bench-value", 100, "live bench: value size in bytes")
	benchBinary := flag.Bool("bench-binary", false, "live bench: use the binary protocol")
	benchBatched := flag.Bool("bench-batched", false, "live bench: run the server's event-driven batched datapath")
	benchPipeline := flag.Int("bench-pipeline", 1, "live bench: pipelined multiget depth for gets (1 = one round trip per get)")
	benchGetRatio := flag.Float64("bench-get-ratio", 0.9, "live bench: fraction of gets (rest are sets)")
	flightTrace := flag.String("flight-trace", "", "live bench: record the server's flight trace and write Perfetto JSON here")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *snapshot != "" || *compare != "" {
		runLiveBench(liveBenchArgs{
			snapshot: *snapshot, compare: *compare, tolerance: *tolerance,
			name: *benchName, ops: *benchOps, workers: *benchWorkers,
			valueSize: *benchValue, binary: *benchBinary, batched: *benchBatched,
			pipeline: *benchPipeline, getRatio: *benchGetRatio, flightTrace: *flightTrace,
		})
		return
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	opts := experiments.Options{Quick: *quick, TracePath: *tracePath}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range res.Tables {
			if *jsonOut {
				if err := t.RenderJSON(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
					os.Exit(1)
				}
			} else {
				t.Render(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", res.ID, time.Since(start).Round(time.Millisecond))
	}
}

// liveBenchArgs carries the -snapshot/-compare flag set.
type liveBenchArgs struct {
	snapshot    string
	compare     string
	tolerance   float64
	name        string
	ops         int
	workers     int
	valueSize   int
	binary      bool
	batched     bool
	pipeline    int
	getRatio    float64
	flightTrace string
}

// runLiveBench measures the live server over loopback, optionally
// records the snapshot and a flight trace, and — with -compare —
// verdicts the run against a committed baseline.
func runLiveBench(a liveBenchArgs) {
	var rec *obs.FlightRecorder
	if a.flightTrace != "" {
		rec = obs.NewFlightRecorder("bench-server", 8192)
	}
	snap, err := bench.RunLive(bench.LiveConfig{
		Name:        a.name,
		Ops:         a.ops,
		Workers:     a.workers,
		ValueSize:   a.valueSize,
		GetRatio:    a.getRatio,
		Binary:      a.binary,
		Batched:     a.batched,
		Pipeline:    a.pipeline,
		Flight:      rec,
		FlightEvery: 1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kv3d-bench: live bench: %v\n", err)
		os.Exit(1)
	}
	r := snap.Result
	fmt.Fprintf(os.Stderr, "kv3d-bench: %s: %d ops in %v: %.0f ops/s, p50=%dns p99=%dns p999=%dns, %.1f allocs/op, %.2f syscalls/op (%.2f rd + %.2f wr)\n",
		snap.Name, r.Ops, time.Duration(r.DurationNs).Round(time.Millisecond),
		r.OpsPerSec, r.LatencyNs.P50, r.LatencyNs.P99, r.LatencyNs.P999, r.AllocsPerOp,
		r.SyscallsPerOp, r.ServerReadsPerOp, r.ServerWritesPerOp)
	if r.Errors > 0 {
		fmt.Fprintf(os.Stderr, "kv3d-bench: %d operations failed\n", r.Errors)
		os.Exit(1)
	}
	if a.snapshot != "" {
		if err := snap.Write(a.snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "kv3d-bench: snapshot written to %s\n", a.snapshot)
	}
	if a.flightTrace != "" {
		f, err := os.Create(a.flightTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
			os.Exit(1)
		}
		werr := rec.WriteTraceJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "kv3d-bench: writing trace: %v %v\n", werr, cerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "kv3d-bench: flight trace (%d events, %d dropped) written to %s\n",
			rec.Len(), rec.Dropped(), a.flightTrace)
	}
	if a.compare != "" {
		base, err := bench.Load(a.compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
			os.Exit(1)
		}
		regs := bench.Compare(base, snap, a.tolerance)
		if len(regs) > 0 {
			for _, reg := range regs {
				fmt.Fprintf(os.Stderr, "kv3d-bench: REGRESSION: %s\n", reg)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "kv3d-bench: within %.0f%% tolerance of %s\n", a.tolerance*100, a.compare)
	}
}
