// Command kv3d-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kv3d-bench -run all          # every table and figure
//	kv3d-bench -run table3       # one experiment
//	kv3d-bench -run fig5 -quick  # trimmed sweep for smoke tests
//	kv3d-bench -list             # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kv3d/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "render tables as JSON instead of ASCII")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON recording of the event-level run (loadlatency) to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	opts := experiments.Options{Quick: *quick, TracePath: *tracePath}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range res.Tables {
			if *jsonOut {
				if err := t.RenderJSON(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "kv3d-bench: %v\n", err)
					os.Exit(1)
				}
			} else {
				t.Render(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", res.ID, time.Since(start).Round(time.Millisecond))
	}
}
