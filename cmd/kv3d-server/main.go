// Command kv3d-server runs a memcached-compatible TCP server backed by
// the kvstore engine.
//
//	kv3d-server -addr :11211 -memory 64m -policy lru -mode striped
//
// Any memcached ASCII client can talk to it:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\n' | nc localhost 11211
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kv3d/internal/cluster"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// replAdapter bridges kvclient.BinaryClient to kvserver.ReplConn
// (kvserver cannot import kvclient itself); delete-of-absent folds to
// success per the ReplConn contract.
type replAdapter struct{ *kvclient.BinaryClient }

func (a replAdapter) DeleteWithMode(key string, mode protocol.ReplMode) error {
	err := a.BinaryClient.DeleteWithMode(key, mode)
	if errors.Is(err, kvclient.ErrNotFound) {
		return nil
	}
	return err
}

func (a replAdapter) TouchWithMode(key string, exptime int64, mode protocol.ReplMode) error {
	err := a.BinaryClient.TouchWithMode(key, exptime, mode)
	if errors.Is(err, kvclient.ErrNotFound) {
		return nil
	}
	return err
}

func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	memory := flag.String("memory", "64m", "memory limit (supports k/m/g suffixes)")
	policy := flag.String("policy", "lru", "eviction policy: lru or bags")
	mode := flag.String("mode", "striped", "locking: global (memcached 1.4) or striped (1.6)")
	shards := flag.Int("shards", 8, "shard count for striped mode")
	noEvict := flag.Bool("no-evict", false, "error instead of evicting (memcached -M)")
	maxConns := flag.Int("max-conns", 0, "max simultaneous connections (0 = unlimited)")
	batched := flag.Bool("batched", false, "event-driven batched datapath: coalesced store rounds + flush-on-drain writes")
	idleTimeout := flag.Duration("idle-timeout", 0, "close idle connections after this long (0 = never)")
	crawlEvery := flag.Duration("crawl-interval", 0, "background expiry sweep interval (0 = disabled)")
	udpAddr := flag.String("udp", "", "also serve the UDP protocol on this address (e.g. :11211)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus-text metrics over HTTP on this address (e.g. :9190)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ and /debug/trace on the -metrics listener")
	flightCap := flag.Int("flight", 0, "flight-recorder ring capacity in events (0 = recording off)")
	flightEvery := flag.Int("flight-every", 64, "sample one op in every N per session (1 = trace every op)")
	telemetry := flag.Duration("telemetry", 0, "runtime telemetry sampling period exported via /metrics (0 = off)")
	peers := flag.String("peers", "", "comma-separated peer addresses; enables replica write fan-out (every node must pass the same list)")
	self := flag.String("self", "", "this node's address as peers dial it (default: -addr)")
	replicas := flag.Int("replicas", 2, "replica-set size R when -peers is set")
	replDefault := flag.String("repl-default", "async", "consistency for writes that don't pick one: async or quorum")
	quorumTimeout := flag.Duration("quorum-timeout", 2*time.Second, "how long a quorum write waits for replica acks")
	flag.Parse()

	limit, err := parseSize(*memory)
	if err != nil {
		log.Fatalf("kv3d-server: %v", err)
	}
	cfg := kvstore.DefaultConfig(limit)
	cfg.Shards = *shards
	cfg.EvictionsEnabled = !*noEvict
	switch *policy {
	case "lru":
		cfg.Policy = kvstore.PolicyLRU
	case "bags":
		cfg.Policy = kvstore.PolicyBags
	default:
		log.Fatalf("kv3d-server: unknown policy %q", *policy)
	}
	switch *mode {
	case "global":
		cfg.Mode = kvstore.ModeGlobal
	case "striped":
		cfg.Mode = kvstore.ModeStriped
	default:
		log.Fatalf("kv3d-server: unknown mode %q", *mode)
	}

	store, err := kvstore.New(cfg)
	if err != nil {
		log.Fatalf("kv3d-server: %v", err)
	}
	var rec *obs.FlightRecorder
	if *flightCap > 0 {
		rec = obs.NewFlightRecorder("kv3d-server", *flightCap)
	}
	srv := kvserver.NewWithOptions(store, log.New(os.Stderr, "", log.LstdFlags), kvserver.Options{
		MaxConns:    *maxConns,
		Batched:     *batched,
		IdleTimeout: *idleTimeout,
		Flight:      rec,
		FlightEvery: *flightEvery,
	})
	if *telemetry > 0 {
		srv.StartTelemetry(*telemetry)
		log.Printf("kv3d-server: runtime telemetry every %v", *telemetry)
	}
	if err := srv.Listen(*addr); err != nil {
		log.Fatalf("kv3d-server: %v", err)
	}
	if *peers != "" {
		selfAddr := *self
		if selfAddr == "" {
			selfAddr = srv.Addr().String()
		}
		// Join the full member set (self included) in sorted order, so
		// every node that was handed the same -peers list derives the
		// same membership versions and ownership epochs.
		members := map[string]bool{selfAddr: true}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members[p] = true
			}
		}
		sorted := make([]string, 0, len(members))
		for m := range members {
			sorted = append(sorted, m)
		}
		sort.Strings(sorted)
		mem := cluster.NewMembership(0)
		for _, m := range sorted {
			mem.Join(m, 1)
		}
		mode, ok := protocol.ParseReplMode(*replDefault)
		if !ok || (mode != protocol.ReplAsync && mode != protocol.ReplQuorum) {
			log.Fatalf("kv3d-server: -repl-default must be async or quorum, got %q", *replDefault)
		}
		repl, err := kvserver.NewReplicator(kvserver.ReplOptions{
			Self:          selfAddr,
			Membership:    mem,
			Replicas:      *replicas,
			DefaultMode:   mode,
			QuorumTimeout: *quorumTimeout,
			Flight:        rec,
			NowNanos:      func() sim.Ns { return sim.Ns(time.Now().UnixNano()) },
			Dial: func(addr string) (kvserver.ReplConn, error) {
				bc, err := kvclient.DialBinaryOptions(addr, kvclient.Options{
					DialTimeout: *quorumTimeout, OpTimeout: *quorumTimeout,
				})
				if err != nil {
					return nil, err
				}
				return replAdapter{bc}, nil
			},
		})
		if err != nil {
			log.Fatalf("kv3d-server: %v", err)
		}
		defer repl.Close()
		mig, err := kvserver.NewMigrator(kvserver.MigOptions{Store: store})
		if err != nil {
			log.Fatalf("kv3d-server: %v", err)
		}
		defer mig.Close()
		srv.SetReplicator(repl)
		srv.SetMigrator(mig)
		log.Printf("kv3d-server: replication on as %s (R=%d, default %s, %d members)",
			selfAddr, *replicas, mode, len(sorted))
	}
	if *crawlEvery > 0 {
		crawler := store.StartCrawler(*crawlEvery)
		defer crawler.Stop()
	}
	if *udpAddr != "" {
		udp, err := srv.ListenUDP(*udpAddr)
		if err != nil {
			log.Fatalf("kv3d-server: udp: %v", err)
		}
		defer udp.Close()
		log.Printf("kv3d-server: udp on %s", udp.Addr())
	}
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("kv3d-server: metrics: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		if *pprofOn {
			mux.Handle("/debug/", srv.DebugMux())
			log.Printf("kv3d-server: pprof on http://%s/debug/pprof/, trace dump on /debug/trace", mln.Addr())
		}
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("kv3d-server: metrics server: %v", err)
			}
		}()
		defer mln.Close()
		log.Printf("kv3d-server: metrics on http://%s/metrics", mln.Addr())
	} else if *pprofOn {
		log.Fatalf("kv3d-server: -pprof requires -metrics (the debug mux mounts on the metrics listener)")
	}
	log.Printf("kv3d-server: listening on %s (%s, %s, %s, %d shards)",
		srv.Addr(), *memory, *policy, *mode, store.Config().Shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("kv3d-server: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("kv3d-server: %v", err)
	}
	s := store.Stats()
	log.Printf("kv3d-server: served %d conns, %d gets (%.1f%% hit), %d sets, %d evictions",
		srv.Accepted(), s.GetHits+s.GetMisses, s.HitRate()*100, s.Sets, s.Evictions)
}
