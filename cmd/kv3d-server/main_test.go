package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1024":  1024,
		"64k":   64 << 10,
		"64K":   64 << 10,
		"256m":  256 << 20,
		"2g":    2 << 30,
		" 16m ": 16 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q) error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "12x", "m"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) should fail", bad)
		}
	}
}
