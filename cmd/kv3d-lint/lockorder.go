package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkLockOrder builds, per package, a static lock-acquisition-order
// graph over the sync.Mutex/RWMutex values the package owns, and
// reports two deadlock shapes:
//
//  1. Order cycles: somewhere lock A is taken while B is held and
//     elsewhere B is taken while A is held. Two goroutines interleaving
//     those paths deadlock.
//  2. Re-entrant acquisition: a function calls — directly or through
//     the package's internal call graph — a function that acquires a
//     lock the caller already holds. Go's sync mutexes are not
//     reentrant, so this self-deadlocks on the spot. The exported-method
//     variant is the classic repo bug: an internal helper holding the
//     stats lock calls a public accessor that locks it again.
//
// A "lock class" is the pair (defining named type, mutex field), e.g.
// `UDPServer.statsMu`, or a package-level mutex variable. Classes
// deliberately ignore which *instance* is locked: the repo's
// conventions never take the same field of two instances concurrently
// in opposite orders, and instance-insensitivity is what makes the
// analysis decidable. The walk is flow-insensitive within a body
// (statements in source order, branches merged), which overapproximates
// held sets slightly; suppress deliberate exceptions with
// `//nolint:kv3d -- <why>`.
//
// Typed mode only: lock classes and call targets come from resolved
// types.Objects.

// lockFuncFacts accumulates per-function lock behaviour.
type lockFuncFacts struct {
	decl *ast.FuncDecl
	// direct holds classes this function itself locks.
	direct map[string]bool
	// all holds direct plus everything reachable through same-package
	// calls (fixpoint).
	all map[string]bool
	// calls are same-package callees with the held set at the call site.
	calls []lockCallSite
}

type lockCallSite struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

// lockEdge is one observed acquisition order: to was locked while from
// was held.
type lockEdge struct {
	to  string
	pos token.Pos
}

func checkLockOrder(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		out = append(out, lintPackageLockOrder(a, pkg)...)
	}
	return out
}

func lintPackageLockOrder(a *analysis, pkg *pkgInfo) []finding {
	var out []finding
	facts := map[*types.Func]*lockFuncFacts{}
	var order []*types.Func // declaration order, for deterministic output

	// Pass 1: per-function direct lock sets, call sites and order edges.
	edges := map[string]map[string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		if edges[from] == nil {
			edges[from] = map[string]token.Pos{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = pos
		}
	}
	for _, pf := range pkg.files {
		for _, decl := range pf.ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := a.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f := &lockFuncFacts{decl: fd, direct: map[string]bool{}, all: map[string]bool{}}
			facts[fn] = f
			order = append(order, fn)
			out = append(out, walkLockBody(a, pkg, fd, f, addEdge)...)
		}
	}

	// Pass 2: transitive lock sets (fixpoint over the call graph).
	for _, fn := range order {
		f := facts[fn]
		for c := range f.direct {
			f.all[c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			f := facts[fn]
			for _, cs := range f.calls {
				callee, ok := facts[cs.callee]
				if !ok {
					continue
				}
				for c := range callee.all {
					if !f.all[c] {
						f.all[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: lock-held calls. A call made with H held contributes order
	// edges H -> (callee's transitive locks), and re-acquiring a held
	// class is an immediate deadlock finding.
	for _, fn := range order {
		f := facts[fn]
		for _, cs := range f.calls {
			callee, ok := facts[cs.callee]
			if !ok {
				continue
			}
			var acquired []string
			for c := range callee.all {
				acquired = append(acquired, c)
			}
			sort.Strings(acquired)
			for _, held := range cs.held {
				for _, acq := range acquired {
					if acq == held {
						kind := "function"
						if cs.callee.Exported() {
							kind = "exported method"
						}
						out = append(out, finding{
							pos:   a.fset.Position(cs.pos),
							check: "lockorder",
							msg: fmt.Sprintf("%s calls %s %s while holding %s, which %s re-acquires — sync mutexes are not reentrant, this deadlocks",
								fn.Name(), kind, cs.callee.Name(), held, cs.callee.Name()),
						})
						continue
					}
					addEdge(held, acq, cs.pos)
				}
			}
		}
	}

	// Pass 4: cycles in the acquisition-order graph.
	out = append(out, reportLockCycles(a, edges)...)
	return out
}

// walkLockBody scans one function body in source order, tracking the
// held lock set, recording direct acquisitions, order edges, and
// same-package call sites. Deferred unlocks keep their class held until
// the end of the body, matching the lock-for-the-whole-method idiom.
func walkLockBody(a *analysis, pkg *pkgInfo, fd *ast.FuncDecl, f *lockFuncFacts,
	addEdge func(from, to string, pos token.Pos)) []finding {
	var out []finding
	var held []string
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	removeLast := func(class string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == class {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op := mutexOpClass(a, pkg, call); class != "" {
			switch op {
			case "Lock", "RLock":
				if deferred[call] {
					return true
				}
				for _, h := range held {
					if h == class {
						out = append(out, finding{
							pos:   a.fset.Position(call.Pos()),
							check: "lockorder",
							msg: fmt.Sprintf("%s acquires %s while already holding it — sync mutexes are not reentrant, this deadlocks",
								fd.Name.Name, class),
						})
						return true
					}
					addEdge(h, class, call.Pos())
				}
				held = append(held, class)
			case "Unlock", "RUnlock":
				if !deferred[call] {
					removeLast(class)
				}
			}
			return true
		}
		// Same-package call with locks held: record for pass 3.
		if fn := a.calleeFunc(call); fn != nil && len(held) > 0 {
			if fn.Pkg() != nil && fn.Pkg().Path() == pkg.path {
				f.calls = append(f.calls, lockCallSite{
					callee: fn, held: append([]string(nil), held...), pos: call.Pos(),
				})
			}
		} else if fn != nil && len(held) == 0 {
			if fn.Pkg() != nil && fn.Pkg().Path() == pkg.path {
				f.calls = append(f.calls, lockCallSite{callee: fn, pos: call.Pos()})
			}
		}
		return true
	})
	for _, h := range held {
		f.direct[h] = true
	}
	// held-at-return locks are already recorded; also record locks that
	// were released before return (they are still acquisitions).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op := mutexOpClass(a, pkg, call); class != "" && (op == "Lock" || op == "RLock") && !deferred[call] {
			f.direct[class] = true
		}
		return true
	})
	return out
}

// mutexOpClass decides whether a call is Lock/RLock/Unlock/RUnlock on a
// lock class this package owns, returning the class name and the
// operation. Classes are `<NamedType>.<field>` for struct-held mutexes
// (resolved through embedding by go/types) and `<var>` for
// package-level mutex variables; mutexes in local variables are skipped
// because instance identity is unknowable statically.
func mutexOpClass(a *analysis, pkg *pkgInfo, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	target := ast.Unparen(sel.X)
	if !isSyncMutex(a.info.Types[target].Type) {
		return "", ""
	}
	switch v := target.(type) {
	case *ast.SelectorExpr:
		// recv.field — name the class after the type that declares the
		// receiver expression.
		s := a.info.Selections[v]
		if s == nil || s.Kind() != types.FieldVal {
			return "", ""
		}
		recv := namedType(s.Recv())
		if recv == nil {
			return "", ""
		}
		return recv.Obj().Name() + "." + v.Sel.Name, op
	case *ast.Ident:
		obj, ok := a.info.Uses[v].(*types.Var)
		if !ok || pkg.types == nil || obj.Parent() != pkg.types.Scope() {
			return "", "" // local or foreign mutex: skip
		}
		return v.Name, op
	}
	return "", ""
}

// reportLockCycles finds cycles in the acquisition-order graph and
// reports each once, canonicalized so the same cycle discovered from
// different entry points dedupes.
func reportLockCycles(a *analysis, edges map[string]map[string]token.Pos) []finding {
	var out []finding
	var nodes []string
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	reported := map[string]bool{}
	state := map[string]int{}
	var stack []string
	var dfs func(n string)
	dfs = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		var succ []string
		for s := range edges[n] {
			succ = append(succ, s)
		}
		sort.Strings(succ)
		for _, s := range succ {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				// Back edge: stack from s to n is a cycle.
				i := 0
				for ; i < len(stack); i++ {
					if stack[i] == s {
						break
					}
				}
				cycle := append([]string(nil), stack[i:]...)
				// Canonical form: rotate so the smallest class leads.
				min := 0
				for j, c := range cycle {
					if c < cycle[min] {
						min = j
					}
				}
				rot := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
				key := strings.Join(rot, " -> ")
				if reported[key] {
					continue
				}
				reported[key] = true
				out = append(out, finding{
					pos:   a.fset.Position(edges[n][s]),
					check: "lockorder",
					msg: fmt.Sprintf("lock-order cycle %s -> %s: these locks are acquired in conflicting orders; pick one global order",
						key, rot[0]),
				})
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range nodes {
		if state[n] == 0 {
			dfs(n)
		}
	}
	return out
}
