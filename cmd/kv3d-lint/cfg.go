package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Control-flow graph construction for the syncguard analyses. The v2
// checks (lockorder, lockcheck) walk bodies in source order with
// branches merged, which overapproximates held-lock sets: a Lock inside
// one arm of an if leaks into the other arm. syncguard needs the real
// thing — "is the guard held on *every* path reaching this access" — so
// this file builds a statement-level CFG per function body and runs a
// must-hold dataflow over it (meet = intersection over predecessors).
//
// Nodes are "evaluation steps": simple statements (assignments,
// expression statements, returns, sends, go/defer) and the condition /
// tag expressions of control statements, appended to basic blocks in
// evaluation order. Function literals are *not* inlined into the
// enclosing CFG — they execute at an unknown time, so syncguard
// analyzes each literal as its own context (see syncguard.go for how
// their entry held-set is chosen).
//
// Stdlib-only, like the rest of the linter: go/ast positions in, no
// x/tools dependency.

// cfgBlock is one straight-line run of evaluation steps.
type cfgBlock struct {
	index int
	nodes []cfgNode
	succs []*cfgBlock
}

// cfgNode is a single evaluation step inside a block.
type cfgNode struct {
	node ast.Node
	// deferred marks nodes under a defer statement: their lock/unlock
	// calls run at function exit, so the lockflow skips them (a deferred
	// Unlock keeps its class held to the end of the body, matching the
	// lock-for-the-whole-method idiom and the lockorder check).
	deferred bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

type loopTargets struct {
	brk, cont *cfgBlock
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock // nil while flow is unreachable (after return/break/...)

	loops        []loopTargets         // innermost-last break/continue targets
	breakTargets []*cfgBlock           // switch/select break targets share the loop stack rules
	labels       map[string]loopTargets
	pendingLabel string
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: map[string]loopTargets{}}
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmtList(body.List)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) jump(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends an evaluation step to the current block, reviving flow
// into a fresh (unreachable) block after a terminator so later
// statements are still scanned — an unreachable block has no
// predecessors and the dataflow treats its held-set as ⊤, which can
// only suppress findings, never invent them.
func (b *cfgBuilder) add(n ast.Node, deferred bool) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, cfgNode{node: n, deferred: deferred})
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label pending from an enclosing LabeledStmt,
// registering the given targets under it for labeled break/continue.
func (b *cfgBuilder) takeLabel(t loopTargets) (name string) {
	if b.pendingLabel == "" {
		return ""
	}
	name = b.pendingLabel
	b.pendingLabel = ""
	b.labels[name] = t
	return name
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(v.List)
	case *ast.LabeledStmt:
		b.pendingLabel = v.Label.Name
		b.stmt(v.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(v)
	case *ast.ForStmt:
		b.forStmt(v)
	case *ast.RangeStmt:
		b.rangeStmt(v)
	case *ast.SwitchStmt:
		b.switchStmt(v)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(v)
	case *ast.SelectStmt:
		b.selectStmt(v)
	case *ast.ReturnStmt:
		b.add(v, false)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(v)
	case *ast.DeferStmt:
		b.add(v.Call, true)
	case *ast.GoStmt:
		// The go statement evaluates its call operands here; the spawned
		// body runs elsewhere (own context).
		b.add(v, false)
	default:
		// ExprStmt, AssignStmt, IncDecStmt, DeclStmt, SendStmt, EmptyStmt…
		b.add(s, false)
	}
}

func (b *cfgBuilder) ifStmt(v *ast.IfStmt) {
	if v.Init != nil {
		b.stmt(v.Init)
	}
	b.add(v.Cond, false)
	cond := b.cur
	join := b.newBlock()

	thenBlk := b.newBlock()
	b.jump(cond, thenBlk)
	b.cur = thenBlk
	b.stmtList(v.Body.List)
	b.jump(b.cur, join)

	if v.Else != nil {
		elseBlk := b.newBlock()
		b.jump(cond, elseBlk)
		b.cur = elseBlk
		b.stmt(v.Else)
		b.jump(b.cur, join)
	} else {
		b.jump(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(v *ast.ForStmt) {
	if v.Init != nil {
		b.stmt(v.Init)
	}
	head := b.newBlock()
	exit := b.newBlock()
	post := b.newBlock()
	b.jump(b.cur, head)
	b.cur = head
	if v.Cond != nil {
		b.add(v.Cond, false)
	}
	headEnd := b.cur
	body := b.newBlock()
	b.jump(headEnd, body)
	if v.Cond != nil {
		b.jump(headEnd, exit)
	}

	label := b.takeLabel(loopTargets{brk: exit, cont: post})
	b.loops = append(b.loops, loopTargets{brk: exit, cont: post})
	b.cur = body
	b.stmtList(v.Body.List)
	b.jump(b.cur, post)
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}

	b.cur = post
	if v.Post != nil {
		b.stmt(v.Post)
	}
	b.jump(b.cur, head)
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(v *ast.RangeStmt) {
	b.add(v.X, false)
	head := b.newBlock()
	exit := b.newBlock()
	b.jump(b.cur, head)
	body := b.newBlock()
	b.jump(head, body)
	b.jump(head, exit)

	label := b.takeLabel(loopTargets{brk: exit, cont: head})
	b.loops = append(b.loops, loopTargets{brk: exit, cont: head})
	b.cur = body
	b.stmtList(v.Body.List)
	b.jump(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}

	b.cur = exit
}

func (b *cfgBuilder) switchStmt(v *ast.SwitchStmt) {
	if v.Init != nil {
		b.stmt(v.Init)
	}
	if v.Tag != nil {
		b.add(v.Tag, false)
	}
	tag := b.cur
	exit := b.newBlock()
	label := b.takeLabel(loopTargets{brk: exit})
	b.breakTargets = append(b.breakTargets, exit)
	hasDefault := false
	for _, cc := range v.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.jump(tag, blk)
		b.cur = blk
		for _, e := range clause.List {
			b.add(e, false)
		}
		b.stmtList(clause.Body)
		b.jump(b.cur, exit)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		delete(b.labels, label)
	}
	if !hasDefault {
		b.jump(tag, exit)
	}
	b.cur = exit
}

func (b *cfgBuilder) typeSwitchStmt(v *ast.TypeSwitchStmt) {
	if v.Init != nil {
		b.stmt(v.Init)
	}
	b.add(v.Assign, false)
	tag := b.cur
	exit := b.newBlock()
	label := b.takeLabel(loopTargets{brk: exit})
	b.breakTargets = append(b.breakTargets, exit)
	hasDefault := false
	for _, cc := range v.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.jump(tag, blk)
		b.cur = blk
		b.stmtList(clause.Body)
		b.jump(b.cur, exit)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		delete(b.labels, label)
	}
	if !hasDefault {
		b.jump(tag, exit)
	}
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(v *ast.SelectStmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	exit := b.newBlock()
	label := b.takeLabel(loopTargets{brk: exit})
	b.breakTargets = append(b.breakTargets, exit)
	for _, cc := range v.Body.List {
		clause, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.jump(head, blk)
		b.cur = blk
		if clause.Comm != nil {
			b.stmt(clause.Comm)
		}
		b.stmtList(clause.Body)
		b.jump(b.cur, exit)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		delete(b.labels, label)
	}
	b.cur = exit
}

func (b *cfgBuilder) branchStmt(v *ast.BranchStmt) {
	switch v.Tok {
	case token.BREAK:
		var target *cfgBlock
		if v.Label != nil {
			target = b.labels[v.Label.Name].brk
		} else if n := len(b.breakTargets); n > 0 {
			// Innermost breakable construct: a switch/select registered
			// after the innermost loop wins.
			target = b.breakTargets[n-1]
			if m := len(b.loops); m > 0 && b.loops[m-1].brk != nil {
				// A loop inside the switch would have pushed onto loops
				// later; compare by block index to pick the innermost.
				if b.loops[m-1].brk.index > target.index {
					target = b.loops[m-1].brk
				}
			}
		} else if m := len(b.loops); m > 0 {
			target = b.loops[m-1].brk
		}
		b.jump(b.cur, target)
		b.cur = nil
	case token.CONTINUE:
		var target *cfgBlock
		if v.Label != nil {
			target = b.labels[v.Label.Name].cont
		} else if m := len(b.loops); m > 0 {
			target = b.loops[m-1].cont
		}
		b.jump(b.cur, target)
		b.cur = nil
	case token.GOTO:
		// Rare in this repo; treat as a terminator. The code after a goto
		// lands in a fresh predecessor-less block whose ⊤ held-set
		// suppresses rather than invents findings.
		b.cur = nil
	case token.FALLTHROUGH:
		// Flow continues into the next case body only for held-set
		// purposes via the shared tag predecessor; ignoring the direct
		// edge keeps the meet larger (fewer findings), never smaller.
	}
}

// heldSet is a set of lock classes (see mutexOpClass for naming). A nil
// heldSet is ⊤ (unknown/unreachable: every lock notionally held); the
// empty map is ∅.
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	if h == nil {
		return nil
	}
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

// intersect returns h ∩ o, treating nil as ⊤.
func (h heldSet) intersect(o heldSet) heldSet {
	if h == nil {
		return o.clone()
	}
	if o == nil {
		return h.clone()
	}
	out := heldSet{}
	for k := range h {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func (h heldSet) equal(o heldSet) bool {
	if (h == nil) != (o == nil) {
		return false
	}
	if len(h) != len(o) {
		return false
	}
	for k := range h {
		if !o[k] {
			return false
		}
	}
	return true
}

func (h heldSet) sorted() []string {
	var out []string
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockTransfer applies the lock/unlock effects of one evaluation step
// to held (mutating it). Function literals inside the node are skipped:
// they run in their own context. Deferred steps are skipped entirely —
// their unlocks fire at return, so the class stays held.
func lockTransfer(a *analysis, pkg *pkgInfo, n cfgNode, held heldSet) {
	if n.deferred || held == nil {
		return
	}
	ast.Inspect(n.node, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		class, op := mutexOpClass(a, pkg, call)
		if class == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			held[class] = true
		case "Unlock", "RUnlock":
			delete(held, class)
		}
		return true
	})
}

// lockflow runs the must-hold dataflow over the CFG with the given
// entry held-set, then replays every block with its stable in-set,
// invoking visit for each evaluation step with the held-set in force
// *before* that step. Unreachable blocks get a ⊤ (nil) held-set.
func lockflow(a *analysis, pkg *pkgInfo, g *funcCFG, entry heldSet,
	visit func(n cfgNode, held heldSet)) {
	in := make([]heldSet, len(g.blocks))
	out := make([]heldSet, len(g.blocks))
	preds := make([][]*cfgBlock, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s.index] = append(preds[s.index], blk)
		}
	}
	transfer := func(blk *cfgBlock, h heldSet) heldSet {
		h = h.clone()
		for _, n := range blk.nodes {
			lockTransfer(a, pkg, n, h)
		}
		return h
	}
	// A nil entry is ⊤ (caller context unknown/unreachable): it flows
	// through untouched and suppresses findings rather than inventing
	// them.
	in[g.entry.index] = entry.clone()
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if blk != g.entry {
				var m heldSet // ⊤
				for _, p := range preds[blk.index] {
					m = m.intersect(out[p.index])
				}
				if !m.equal(in[blk.index]) {
					in[blk.index] = m
					changed = true
				}
			}
			o := transfer(blk, in[blk.index])
			if !o.equal(out[blk.index]) {
				out[blk.index] = o
				changed = true
			}
		}
	}
	if visit == nil {
		return
	}
	for _, blk := range g.blocks {
		h := in[blk.index].clone()
		for _, n := range blk.nodes {
			visit(n, h)
			lockTransfer(a, pkg, n, h)
		}
	}
}

// predIndexes computes, for every block, the indexes of its
// predecessors — the shape every forward dataflow over a funcCFG needs.
func (g *funcCFG) predIndexes() [][]int {
	preds := make([][]int, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s.index] = append(preds[s.index], blk.index)
		}
	}
	return preds
}

// mayFlow runs a forward may-analysis (union meet, first fact wins) over
// the CFG for per-variable facts of type V, iterating the transfer
// function to a fixpoint and returning the stable entry state of every
// block. It is the union-meet dual of lockflow's intersection dataflow:
// syncguard/publish, bufown and poolsafe all share this shape — a fact
// established on *some* path to a block holds there (a buffer may be
// retained, a value may already be Put back).
//
// transfer must not mutate its input; it returns the block's exit
// state (which may be the input map itself when nothing changed).
// Termination relies on transfer being monotone in the key set: facts
// are only added or deleted deterministically per block, and the meet
// only grows key sets, so the usual finite-lattice argument applies.
func mayFlow[V any](g *funcCFG, entry map[*types.Var]V,
	transfer func(block int, in map[*types.Var]V) map[*types.Var]V) []map[*types.Var]V {
	in := make([]map[*types.Var]V, len(g.blocks))
	out := make([]map[*types.Var]V, len(g.blocks))
	preds := g.predIndexes()
	sameKeys := func(a, b map[*types.Var]V) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				return false
			}
		}
		return true
	}
	in[g.entry.index] = entry
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			b := blk.index
			if blk != g.entry {
				merged := map[*types.Var]V{}
				for _, p := range preds[b] {
					for k, v := range out[p] {
						if _, ok := merged[k]; !ok {
							merged[k] = v
						}
					}
				}
				in[b] = merged
			}
			o := transfer(b, in[b])
			if !sameKeys(o, out[b]) {
				out[b] = o
				changed = true
			}
		}
	}
	return in
}

// reachableFrom computes the blocks reachable from start (inclusive).
func (g *funcCFG) reachableFrom(start *cfgBlock) map[int]bool {
	seen := map[int]bool{start.index: true}
	queue := []*cfgBlock{start}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, s := range blk.succs {
			if !seen[s.index] {
				seen[s.index] = true
				queue = append(queue, s)
			}
		}
	}
	return seen
}
