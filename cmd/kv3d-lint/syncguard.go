package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkSyncGuard is the v3 analysis family guarding the concurrent hot
// path: a CFG-based lockset analysis (cfg.go) feeding three checks, in
// the spirit of RacerD's lockset inference. All three report a witness
// pair — the site that establishes the discipline and the site that
// breaks it — like lockorder's canonical cycles.
//
//	syncguard/guardedby    a struct field consistently accessed with a
//	                       mutex held (≥2 sites, majority) is flagged at
//	                       sites where no path holds that guard. The
//	                       `//kv3d:guardedby <lock>` field comment pins
//	                       the relation explicitly (inference threshold
//	                       bypassed, every unguarded site flagged).
//	syncguard/atomic       a field touched via sync/atomic functions, a
//	                       typed atomic (atomic.Int64 & friends), or a
//	                       `//kv3d:atomic` annotation must never be read
//	                       or written plainly outside constructors.
//	syncguard/publish      a local value published to another goroutine
//	                       (go-statement capture, channel send, store
//	                       into a field/global) must not be mutated
//	                       afterwards unless the mutation site holds a
//	                       lock that was also held at publication.
//
// Interprocedural propagation mirrors lockorder's fixpoint: the
// held-set at same-package call sites flows into unexported callees
// (intersection over all sites), so shard methods called only under
// the owning lockedShard.mu count as guarded. Exported functions and
// functions whose address escapes keep an empty entry set — they can
// be called from anywhere. Function literals passed directly to a call
// are treated as synchronous callbacks (they inherit the held-set at
// the call site); literals launched by `go`, deferred, assigned or
// returned start from the empty set.
//
// Constructor contexts — init, functions named New*/new*/make*/Make*,
// and functions whose results include the owning type — are exempt:
// a value under construction is not yet shared. Escape hatches:
// `//kv3d:guardedby` / `//kv3d:atomic` field contracts to pin intent,
// `//nolint:kv3d -- <why>` to suppress a finding.
//
// Typed mode only.

const minGuardedSites = 2 // inference threshold K: guarded sites needed before unguarded ones are flagged

// sgField is one struct field under analysis.
type sgField struct {
	owner string // declaring named type
	name  string
	obj   *types.Var
	// guard is the annotated lock class from //kv3d:guardedby, "" if
	// the relation must be inferred.
	guard string
	// atomicAnn marks //kv3d:atomic fields; typedAtomic marks fields
	// whose type is (an array/slice of) a sync/atomic typed value.
	atomicAnn   bool
	typedAtomic bool
	declPos     token.Pos
}

func (f *sgField) label() string { return f.owner + "." + f.name }

// sgAccess is one plain (non-atomic) access to a tracked field.
type sgAccess struct {
	pos   token.Position
	held  heldSet // nil = unreachable (⊤): never flagged
	write bool
	ctor  bool // inside a constructor context of the owner type
}

// sgCtx is one analysis context: a function declaration or a function
// literal, with its CFG and (after the fixpoint) its entry held-set.
type sgCtx struct {
	name  string
	fn    *types.Func // nil for literals
	node  ast.Node    // *ast.FuncDecl or *ast.FuncLit
	body  *ast.BlockStmt
	cfg   *funcCFG
	entry heldSet
	// ctorOf holds type names this context may initialize freely.
	ctorOf map[string]bool
	// lits are the direct child literal contexts (their subtrees are
	// skipped when scanning this context's nodes).
	lits []*sgCtx
	// sync marks a literal passed directly to a call (synchronous
	// callback): it inherits the held-set at its use site.
	sync bool
	// parents is the shared parent map of the enclosing declaration.
	parents map[ast.Node]ast.Node
}

func checkSyncGuard(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		out = append(out, syncguardPackage(a, pkg)...)
	}
	return out
}

func syncguardPackage(a *analysis, pkg *pkgInfo) []finding {
	fields := collectSyncFields(a, pkg)
	ctxs := collectContexts(a, pkg)
	if len(ctxs) == 0 {
		return nil
	}
	solveEntrySets(a, pkg, ctxs)

	g := &sgCollector{
		a: a, pkg: pkg, fields: fields,
		plain:     map[*types.Var][]sgAccess{},
		atomicVia: map[*types.Var]token.Position{},
		badAtomic: map[*types.Var][]sgAccess{},
	}
	var out []finding
	for _, ctx := range ctxs {
		g.ctx = ctx
		lockflow(a, pkg, ctx.cfg, ctx.entry, func(n cfgNode, held heldSet) {
			g.scanNode(n.node, held)
		})
		out = append(out, publicationFindings(a, pkg, ctx)...)
	}
	out = append(out, g.guardedByFindings()...)
	out = append(out, g.atomicFindings()...)
	return out
}

// ---------------------------------------------------------------------
// Field collection and contracts

var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isTypedAtomic reports whether a type is (an array or slice of) one of
// sync/atomic's typed values.
func isTypedAtomic(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Array:
		return isTypedAtomic(u.Elem())
	case *types.Slice:
		return isTypedAtomic(u.Elem())
	}
	n, _ := types.Unalias(t).(*types.Named)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// isSyncPrimitive reports sync types that are guards or barriers
// themselves, not guarded data.
func isSyncPrimitive(t types.Type) bool {
	if isSyncMutex(t) {
		return true
	}
	n, _ := types.Unalias(t).(*types.Named)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "WaitGroup", "Once", "Cond", "Map", "Pool":
		return true
	}
	return false
}

// collectSyncFields builds the tracked-field table for one package:
// every named field of every struct type the package declares, with
// its //kv3d:guardedby / //kv3d:atomic contracts parsed from the field
// comments.
func collectSyncFields(a *analysis, pkg *pkgInfo) map[*types.Var]*sgField {
	out := map[*types.Var]*sgField{}
	for _, pf := range pkg.files {
		ast.Inspect(pf.ast, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				guard, atomicAnn := fieldContract(f)
				for _, id := range f.Names {
					obj, ok := a.info.Defs[id].(*types.Var)
					if !ok || isSyncPrimitive(obj.Type()) {
						continue
					}
					sf := &sgField{
						owner:       ts.Name.Name,
						name:        id.Name,
						obj:         obj,
						atomicAnn:   atomicAnn,
						typedAtomic: isTypedAtomic(obj.Type()),
						declPos:     id.Pos(),
					}
					if guard != "" {
						// Unqualified guard names resolve against the
						// declaring type (`mu` -> `Owner.mu`); qualified
						// ones (`lockedShard.mu`) and package-level
						// mutex variable names are taken verbatim.
						if !strings.Contains(guard, ".") && fieldNamed(st, guard) {
							guard = ts.Name.Name + "." + guard
						}
						sf.guard = guard
					}
					out[obj] = sf
				}
			}
			return true
		})
	}
	return out
}

// fieldNamed reports whether the struct declares a field of that name.
func fieldNamed(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return true
			}
		}
	}
	return false
}

// fieldContract parses the //kv3d:guardedby and //kv3d:atomic contract
// lines from a field's doc and line comments.
func fieldContract(f *ast.Field) (guard string, atomicAnn bool) {
	scan := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "kv3d:guardedby"); ok {
				guard = strings.TrimSpace(rest)
			}
			if text == "kv3d:atomic" {
				atomicAnn = true
			}
		}
	}
	scan(f.Doc)
	scan(f.Comment)
	return guard, atomicAnn
}

// ---------------------------------------------------------------------
// Context collection and the interprocedural entry fixpoint

// collectContexts builds one sgCtx per function declaration and per
// function literal, in file/position order.
func collectContexts(a *analysis, pkg *pkgInfo) []*sgCtx {
	var out []*sgCtx
	for _, pf := range pkg.files {
		for _, decl := range pf.ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := a.info.Defs[fd.Name].(*types.Func)
			parents := buildParentMap(fd)
			ctx := &sgCtx{
				name:    fd.Name.Name,
				fn:      fn,
				node:    fd,
				body:    fd.Body,
				cfg:     buildCFG(fd.Body),
				ctorOf:  constructorTypes(a, fd),
				parents: parents,
			}
			out = append(out, ctx)
			out = append(out, collectLitContexts(a, ctx, fd.Body, parents)...)
		}
	}
	return out
}

// collectLitContexts creates contexts for every function literal under
// root, attaching direct children to their enclosing context.
func collectLitContexts(a *analysis, parent *sgCtx, root ast.Node, parents map[ast.Node]ast.Node) []*sgCtx {
	var out []*sgCtx
	var walk func(host *sgCtx, n ast.Node)
	walk = func(host *sgCtx, n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			ctx := &sgCtx{
				name:    host.name + ".func",
				node:    lit,
				body:    lit.Body,
				cfg:     buildCFG(lit.Body),
				ctorOf:  host.ctorOf, // a closure inside New is still construction
				sync:    isSyncCallbackLit(lit, parents),
				parents: parents,
			}
			host.lits = append(host.lits, ctx)
			out = append(out, ctx)
			walk(ctx, lit.Body)
			return false
		})
	}
	walk(parent, root)
	return out
}

// isSyncCallbackLit reports whether a literal is passed directly to a
// call (a synchronous-callback shape like table.forEach(func(...){})
// or an immediate invocation) rather than launched, deferred, stored
// or returned.
func isSyncCallbackLit(lit *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	p := parents[lit]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			p = parents[pe]
			continue
		}
		break
	}
	call, ok := p.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch parents[call].(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	}
	return true
}

// buildParentMap records each node's syntactic parent within a decl.
func buildParentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// constructorTypes returns the named types a declaration may initialize
// without synchronization: init and New*/new*/make*/Make* functions
// cover every type they touch; any function covers the types it
// returns.
func constructorTypes(a *analysis, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	name := fd.Name.Name
	if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Make") || strings.HasPrefix(name, "make") {
		out["*"] = true
	}
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			if n := namedType(a.info.Types[r.Type].Type); n != nil {
				out[n.Obj().Name()] = true
			}
		}
	}
	return out
}

func (c *sgCtx) isCtorOf(owner string) bool { return c.ctorOf["*"] || c.ctorOf[owner] }

// solveEntrySets runs the interprocedural fixpoint: entry held-sets of
// unexported, address-never-taken functions are the intersection of
// the held-sets at their same-package call sites; synchronous-callback
// literals inherit the held-set at their use site. This is a greatest
// fixpoint — eligible entries start at ⊤ and only shrink — so
// recursive helpers (slab alloc growing a page and retrying itself)
// converge to the meet of their external call sites instead of being
// pinned to ∅ by their own recursive site.
func solveEntrySets(a *analysis, pkg *pkgInfo, ctxs []*sgCtx) {
	byFn := map[*types.Func]*sgCtx{}
	litCtx := map[ast.Node]*sgCtx{}
	escaped := escapedFuncs(a, pkg)
	eligible := map[*sgCtx]bool{}
	for _, c := range ctxs {
		if c.fn != nil {
			byFn[c.fn] = c
			eligible[c] = !c.fn.Exported() && !escaped[c.fn]
		} else {
			litCtx[c.node] = c
			eligible[c] = c.sync
		}
		if eligible[c] {
			c.entry = nil // ⊤: narrowed by the meet below
		} else {
			c.entry = heldSet{}
		}
	}
	for {
		changed := false
		callHeld := map[*sgCtx]heldSet{} // meet over call/use sites seen this round
		sawSite := map[*sgCtx]bool{}
		noteSite := func(c *sgCtx, held heldSet) {
			if sawSite[c] {
				callHeld[c] = callHeld[c].intersect(held)
			} else {
				sawSite[c] = true
				callHeld[c] = held.clone()
			}
		}
		for _, c := range ctxs {
			lockflow(a, pkg, c.cfg, c.entry, func(n cfgNode, held heldSet) {
				scanSkippingLits(n.node, func(m ast.Node) {
					if call, ok := m.(*ast.CallExpr); ok {
						if fn := a.calleeFunc(call); fn != nil {
							if callee, ok := byFn[fn]; ok {
								noteSite(callee, held)
							}
						}
					}
				})
				ast.Inspect(n.node, func(m ast.Node) bool {
					if m == n.node {
						return true
					}
					if lit, ok := m.(*ast.FuncLit); ok {
						if lc := litCtx[lit]; lc != nil && lc.sync {
							noteSite(lc, held)
						}
						return false
					}
					return true
				})
			})
		}
		for _, c := range ctxs {
			if !eligible[c] {
				continue
			}
			want := callHeld[c]
			if !sawSite[c] {
				// Never called within the package (interface-driven or
				// dead): be conservative, assume no locks held.
				want = heldSet{}
			}
			if !want.equal(c.entry) {
				c.entry = want
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// escapedFuncs finds package functions whose identifier is used outside
// a direct call position — method values, callbacks, table entries.
// Such functions can run from anywhere, so their entry set must stay
// empty.
func escapedFuncs(a *analysis, pkg *pkgInfo) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, pf := range pkg.files {
		parents := buildParentMap(pf.ast)
		ast.Inspect(pf.ast, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := a.info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkg.path {
				return true
			}
			p := parents[id]
			if sel, ok := p.(*ast.SelectorExpr); ok && sel.Sel == id {
				p = parents[sel]
			}
			if call, ok := p.(*ast.CallExpr); ok && callFun(call) == id {
				return true
			}
			out[fn] = true
			return true
		})
	}
	return out
}

// callFun resolves the identifier a call's Fun ultimately selects.
func callFun(call *ast.CallExpr) *ast.Ident {
	switch v := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return v
	case *ast.SelectorExpr:
		return v.Sel
	}
	return nil
}

// scanSkippingLits walks a node's subtree in source order, skipping
// function-literal bodies (they are separate contexts).
func scanSkippingLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}

// ---------------------------------------------------------------------
// Access collection (guardedby + atomic)

type sgCollector struct {
	a      *analysis
	pkg    *pkgInfo
	fields map[*types.Var]*sgField
	ctx    *sgCtx

	plain     map[*types.Var][]sgAccess     // non-atomic accesses per field
	atomicVia map[*types.Var]token.Position // first sync/atomic call site per field
	badAtomic map[*types.Var][]sgAccess     // plain uses of atomic-typed fields
}

// scanNode records every tracked-field access in one evaluation step,
// with the held-set in force. Atomic-call operands are recorded as
// atomic uses, not plain accesses.
func (g *sgCollector) scanNode(node ast.Node, held heldSet) {
	consumed := map[ast.Node]bool{} // selectors claimed by an atomic call
	scanSkippingLits(node, func(m ast.Node) {
		if call, ok := m.(*ast.CallExpr); ok {
			if fv, sel := g.atomicCallField(call); fv != nil {
				if _, seen := g.atomicVia[fv]; !seen {
					g.atomicVia[fv] = g.a.fset.Position(call.Pos())
				}
				consumed[sel] = true
			}
			return
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok || consumed[sel] {
			return
		}
		s := g.a.info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return
		}
		fv, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		f, tracked := g.fields[fv]
		if !tracked {
			return
		}
		acc := sgAccess{
			pos:   g.a.fset.Position(sel.Sel.Pos()),
			held:  held.clone(),
			write: g.isWritePosition(sel),
			ctor:  g.ctx.isCtorOf(f.owner),
		}
		if f.typedAtomic {
			if !g.legalAtomicUse(sel) && !acc.ctor {
				g.badAtomic[fv] = append(g.badAtomic[fv], acc)
			}
			return
		}
		g.plain[fv] = append(g.plain[fv], acc)
	})
}

// atomicCallField recognizes sync/atomic function calls whose first
// argument takes the address of a tracked field, returning the field
// and the claimed selector.
func (g *sgCollector) atomicCallField(call *ast.CallExpr) (*types.Var, *ast.SelectorExpr) {
	fn := g.a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
		return nil, nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s := g.a.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fv, _ := s.Obj().(*types.Var)
	if fv == nil {
		return nil, nil
	}
	if _, tracked := g.fields[fv]; !tracked {
		return nil, nil
	}
	return fv, sel
}

// isWritePosition reports whether a selector is assigned, incremented,
// or has its address taken (conservatively a write). Indexing into the
// field stops the climb — assigning a slice element or taking its
// address mutates the element, not the slice-header field itself. A
// sub-field chain (x.f.g = 1) counts as a write of f only while the
// intermediate values are structs or arrays: once the chain crosses a
// pointer, the write lands in separately-owned memory and f is merely
// read.
func (g *sgCollector) isWritePosition(sel *ast.SelectorExpr) bool {
	child := ast.Expr(sel)
	p := g.ctx.parents[sel]
	for {
		switch v := p.(type) {
		case *ast.ParenExpr:
			child, p = ast.Expr(v), g.ctx.parents[v]
			continue
		case *ast.UnaryExpr:
			return v.Op == token.AND
		case *ast.IncDecStmt:
			return v.X == child
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if ast.Unparen(lhs) == child {
					return true
				}
			}
			return false
		case *ast.SelectorExpr:
			if v.X == child && isValueComposite(g.a.info.Types[child].Type) {
				child, p = v, g.ctx.parents[v]
				continue
			}
			return false
		}
		return false
	}
}

// isValueComposite reports struct/array types — the ones whose
// sub-field writes overlap the enclosing field's memory.
func isValueComposite(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// legalAtomicUse reports whether a typed-atomic field selector is used
// the only allowed way: selecting one of its methods (optionally
// through an index into an atomic array).
func (g *sgCollector) legalAtomicUse(sel *ast.SelectorExpr) bool {
	child := ast.Node(sel)
	p := g.ctx.parents[sel]
	for {
		switch v := p.(type) {
		case *ast.ParenExpr:
			child, p = v, g.ctx.parents[v]
			continue
		case *ast.IndexExpr:
			if v.X == child {
				child, p = v, g.ctx.parents[v]
				continue
			}
			return false
		case *ast.SelectorExpr:
			if v.X != child {
				return false
			}
			_, isFunc := g.a.info.Uses[v.Sel].(*types.Func)
			return isFunc
		default:
			return false
		}
	}
}

// guardedByFindings turns the collected plain accesses into findings:
// annotated fields are checked against their pinned guard; unannotated
// fields go through majority inference.
func (g *sgCollector) guardedByFindings() []finding {
	var out []finding
	for _, f := range sortedFields(g.fields) {
		accs := g.plain[f.obj]
		if len(accs) == 0 {
			continue
		}
		if _, isAtomic := g.atomicVia[f.obj]; isAtomic || f.atomicAnn {
			continue // handled by the atomic check
		}
		if f.guard != "" {
			for _, acc := range accs {
				if acc.ctor || acc.held == nil || acc.held[f.guard] {
					continue
				}
				out = append(out, finding{
					pos:   acc.pos,
					check: "syncguard/guardedby",
					msg: fmt.Sprintf("%s is annotated kv3d:guardedby %s, but no path to this access holds it",
						f.label(), f.guard),
				})
			}
			continue
		}
		out = append(out, inferGuard(f, accs)...)
	}
	return out
}

// inferGuard applies the RacerD-style majority rule to one field's
// access sites: if a single lock class is held at ≥minGuardedSites
// sites and at a strict majority of them, the minority sites that hold
// no guard are findings — witness pair included.
func inferGuard(f *sgField, accs []sgAccess) []finding {
	counts := map[string]int{}
	writes := 0
	live := 0 // non-constructor, reachable sites
	for _, acc := range accs {
		if acc.ctor || acc.held == nil {
			continue
		}
		live++
		if acc.write {
			writes++
		}
		for c := range acc.held {
			counts[c]++
		}
	}
	if writes == 0 {
		return nil // read-only outside construction: no race to guard
	}
	best, bestN := "", 0
	for _, c := range sortedKeys(counts) {
		if counts[c] > bestN {
			best, bestN = c, counts[c]
		}
	}
	if best == "" || bestN < minGuardedSites || bestN*2 <= live {
		return nil
	}
	var witness token.Position
	for _, acc := range accs {
		if !acc.ctor && acc.held != nil && acc.held[best] {
			witness = acc.pos
			break
		}
	}
	var out []finding
	for _, acc := range accs {
		if acc.ctor || acc.held == nil || acc.held[best] {
			continue
		}
		out = append(out, finding{
			pos:   acc.pos,
			check: "syncguard/guardedby",
			msg: fmt.Sprintf("%s is accessed with %s held at %d of %d sites (e.g. %s) but this path holds no guard — lock it, pin intent with `//kv3d:guardedby %s`, or suppress with `//nolint:kv3d -- <why>`",
				f.label(), best, bestN, live, relPos(witness), guardSuffix(f, best)),
		})
	}
	return out
}

// guardSuffix renders the annotation spelling for a guard class: the
// bare field name when the guard lives on the same struct.
func guardSuffix(f *sgField, class string) string {
	if rest, ok := strings.CutPrefix(class, f.owner+"."); ok {
		return rest
	}
	return class
}

// atomicFindings reports mixed atomic/plain access: fields reached via
// sync/atomic calls (or annotated //kv3d:atomic) that are also read or
// written plainly, and typed-atomic fields used outside their methods.
func (g *sgCollector) atomicFindings() []finding {
	var out []finding
	for _, f := range sortedFields(g.fields) {
		if via, ok := g.atomicVia[f.obj]; ok || f.atomicAnn {
			witness := "kv3d:atomic annotation at " + relPos(g.a.fset.Position(f.declPos))
			if ok {
				witness = "atomic access at " + relPos(via)
			}
			for _, acc := range g.plain[f.obj] {
				if acc.ctor {
					continue
				}
				kind := "read"
				if acc.write {
					kind = "written"
				}
				out = append(out, finding{
					pos:   acc.pos,
					check: "syncguard/atomic",
					msg: fmt.Sprintf("%s is managed with sync/atomic (%s) but %s plainly here — mixed atomic/plain access races even under a lock",
						f.label(), witness, kind),
				})
			}
		}
		for _, acc := range g.badAtomic[f.obj] {
			out = append(out, finding{
				pos:   acc.pos,
				check: "syncguard/atomic",
				msg: fmt.Sprintf("%s has an atomic type; use its Load/Store/Add/CompareAndSwap methods, never the value directly",
					f.label()),
			})
		}
	}
	return out
}

func sortedFields(fields map[*types.Var]*sgField) []*sgField {
	out := make([]*sgField, 0, len(fields))
	for _, f := range fields {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].owner != out[j].owner {
			return out[i].owner < out[j].owner
		}
		return out[i].name < out[j].name
	})
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// Publication safety

// pubEventKind enumerates the per-node events of the publication
// dataflow.
type pubEventKind int

const (
	pubPublish pubEventKind = iota // value escapes to another goroutine / shared structure
	pubKill                        // variable rebound: previous pointee no longer tracked
	pubMutate                      // write through the variable
)

type pubEvent struct {
	kind pubEventKind
	v    *types.Var
	pos  token.Pos
	held heldSet
	how  string // for publishes: what escaped it
}

// publication records where a var escaped and under which locks.
type publication struct {
	pos  token.Position
	held heldSet
	how  string
}

// publicationFindings runs the per-context publication analysis:
// collect publish/kill/mutate events per CFG node (with held-sets from
// the lockflow), then propagate the published-set forward (may-
// analysis, union meet) and flag mutations of published values whose
// site shares no lock with the publication site.
func publicationFindings(a *analysis, pkg *pkgInfo, ctx *sgCtx) []finding {
	events := make([][]pubEvent, len(ctx.cfg.blocks))
	lockflowBlocks(a, pkg, ctx.cfg, ctx.entry, func(b int, n cfgNode, held heldSet) {
		events[b] = append(events[b], collectPubEvents(a, ctx, n.node, held)...)
	})

	// Forward may-analysis over published vars.
	type state map[*types.Var]publication
	in := make([]state, len(ctx.cfg.blocks))
	out := make([]state, len(ctx.cfg.blocks))
	preds := make([][]int, len(ctx.cfg.blocks))
	for _, blk := range ctx.cfg.blocks {
		for _, s := range blk.succs {
			preds[s.index] = append(preds[s.index], blk.index)
		}
	}
	clone := func(s state) state {
		o := make(state, len(s))
		for k, v := range s {
			o[k] = v
		}
		return o
	}
	transfer := func(b int, s state, flag func(ev pubEvent, p publication)) state {
		s = clone(s)
		for _, ev := range events[b] {
			switch ev.kind {
			case pubPublish:
				if _, ok := s[ev.v]; !ok {
					s[ev.v] = publication{pos: a.fset.Position(ev.pos), held: ev.held.clone(), how: ev.how}
				}
			case pubKill:
				delete(s, ev.v)
			case pubMutate:
				if p, ok := s[ev.v]; ok && flag != nil {
					flag(ev, p)
				}
			}
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range ctx.cfg.blocks {
			b := blk.index
			merged := state{}
			for _, p := range preds[b] {
				for k, v := range out[p] {
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
			}
			in[b] = merged
			o := transfer(b, merged, nil)
			if !pubStateEqual(o, out[b]) {
				out[b] = o
				changed = true
			}
		}
	}
	var findings []finding
	seen := map[token.Pos]bool{}
	for _, blk := range ctx.cfg.blocks {
		transfer(blk.index, in[blk.index], func(ev pubEvent, p publication) {
			if seen[ev.pos] {
				return
			}
			if ev.held != nil && len(ev.held.intersect(p.held)) > 0 {
				return // mutation holds a lock that was held at publication
			}
			if ev.held == nil {
				return // unreachable
			}
			seen[ev.pos] = true
			findings = append(findings, finding{
				pos:   a.fset.Position(ev.pos),
				check: "syncguard/publish",
				msg: fmt.Sprintf("%q was published at %s (%s); mutating it afterwards without the lock held at publication races with its readers",
					ev.v.Name(), relPos(p.pos), p.how),
			})
		})
	}
	return findings
}

func pubStateEqual(a, b map[*types.Var]publication) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// lockflowBlocks is lockflow with block indices surfaced to the
// visitor.
func lockflowBlocks(a *analysis, pkg *pkgInfo, g *funcCFG, entry heldSet,
	visit func(block int, n cfgNode, held heldSet)) {
	// Run the plain fixpoint first to get stable in-sets, then replay.
	in := stableInSets(a, pkg, g, entry)
	for _, blk := range g.blocks {
		h := in[blk.index].clone()
		for _, n := range blk.nodes {
			visit(blk.index, n, h)
			lockTransfer(a, pkg, n, h)
		}
	}
}

// stableInSets computes the per-block entry held-sets (the fixpoint
// half of lockflow).
func stableInSets(a *analysis, pkg *pkgInfo, g *funcCFG, entry heldSet) []heldSet {
	in := make([]heldSet, len(g.blocks))
	out := make([]heldSet, len(g.blocks))
	preds := make([][]*cfgBlock, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s.index] = append(preds[s.index], blk)
		}
	}
	in[g.entry.index] = entry.clone() // nil entry = ⊤, flows through untouched
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if blk != g.entry {
				var m heldSet
				for _, p := range preds[blk.index] {
					m = m.intersect(out[p.index])
				}
				if !m.equal(in[blk.index]) {
					in[blk.index] = m
					changed = true
				}
			}
			h := in[blk.index].clone()
			for _, n := range blk.nodes {
				lockTransfer(a, pkg, n, h)
			}
			if !h.equal(out[blk.index]) {
				out[blk.index] = h
				changed = true
			}
		}
	}
	return in
}

// collectPubEvents extracts publish/kill/mutate events from one
// evaluation step, in source order.
func collectPubEvents(a *analysis, ctx *sgCtx, node ast.Node, held heldSet) []pubEvent {
	var evs []pubEvent
	held = held.clone() // the caller's map keeps mutating as the replay advances
	local := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := a.info.Uses[id].(*types.Var)
		if !ok {
			v, ok = a.info.Defs[id].(*types.Var)
		}
		if !ok || v == nil || v.IsField() {
			return nil
		}
		// Only body-declared locals: receivers and parameters were
		// already shared with the caller before this function started,
		// so their mutation discipline is the caller's (and the
		// guardedby check's) problem, not a fresh publication.
		if v.Pos() < ctx.body.Pos() || v.Pos() > ctx.node.End() {
			return nil
		}
		// Declared inside a child literal: belongs to that context.
		for _, lc := range ctx.lits {
			if v.Pos() >= lc.node.Pos() && v.Pos() <= lc.node.End() {
				return nil
			}
		}
		return v
	}
	publish := func(e ast.Expr, how string, pos token.Pos) {
		if un, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && un.Op == token.AND {
			if v := local(un.X); v != nil {
				evs = append(evs, pubEvent{kind: pubPublish, v: v, pos: pos, held: held, how: how})
			}
			return
		}
		v := local(e)
		if v == nil || !sharesMemory(v.Type()) {
			return
		}
		evs = append(evs, pubEvent{kind: pubPublish, v: v, pos: pos, held: held, how: how})
	}

	switch s := node.(type) {
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for _, v := range capturedLocals(a, ctx, lit) {
				evs = append(evs, pubEvent{kind: pubPublish, v: v, pos: s.Pos(), held: held, how: "captured by go statement"})
			}
		} else if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			publish(sel.X, "receiver of go statement", s.Pos())
		}
		for _, arg := range s.Call.Args {
			publish(arg, "argument of go statement", s.Pos())
		}
		return evs
	case *ast.SendStmt:
		publish(s.Value, "sent on channel", s.Pos())
		return evs
	}

	scanSkippingLits(node, func(m ast.Node) {
		switch v := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				lhs = ast.Unparen(lhs)
				// Rebinding the variable itself kills its publication…
				if lv := local(lhs); lv != nil {
					evs = append(evs, pubEvent{kind: pubKill, v: lv, pos: lhs.Pos(), held: held})
					continue
				}
				// …writing through it is a mutation…
				if root := rootLocal(a, ctx, local, lhs); root != nil {
					evs = append(evs, pubEvent{kind: pubMutate, v: root, pos: lhs.Pos(), held: held})
				}
				// …and storing a sharing value into a field, global or
				// element publishes the RHS.
				if isSharedSink(a, ctx, local, lhs) && i < len(v.Rhs) {
					for _, src := range pubSources(v.Rhs[i]) {
						publish(src, "stored into shared structure", v.Pos())
					}
				}
			}
		case *ast.IncDecStmt:
			if root := rootLocal(a, ctx, local, ast.Unparen(v.X)); root != nil && local(ast.Unparen(v.X)) == nil {
				evs = append(evs, pubEvent{kind: pubMutate, v: root, pos: v.Pos(), held: held})
			}
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							if lv := local(id); lv != nil {
								evs = append(evs, pubEvent{kind: pubKill, v: lv, pos: id.Pos(), held: held})
							}
						}
					}
				}
			}
		}
	})
	return evs
}

// pubSources lists the expressions an assignment RHS may publish: the
// value itself, or the arguments of an append call.
func pubSources(rhs ast.Expr) []ast.Expr {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			return call.Args[1:]
		}
		return nil
	}
	return []ast.Expr{rhs}
}

// rootLocal unwraps selector/index/star chains to the base identifier
// when it names a context-local variable — `v.f`, `v[i]`, `*v` all
// root at v. A bare identifier roots at nothing (that is a rebind).
func rootLocal(a *analysis, ctx *sgCtx, local func(ast.Expr) *types.Var, e ast.Expr) *types.Var {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			if _, ok := v.(*ast.Ident); ok {
				return local(v.(*ast.Ident))
			}
			return nil
		}
	}
}

// isSharedSink reports LHS positions that make the RHS visible beyond
// this goroutine: struct-field selectors, package-level variables, and
// indexes into either.
func isSharedSink(a *analysis, ctx *sgCtx, local func(ast.Expr) *types.Var, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		s := a.info.Selections[v]
		return s != nil && s.Kind() == types.FieldVal
	case *ast.IndexExpr:
		if root := rootLocal(a, ctx, local, v.X); root != nil {
			return false // local map/slice: not shared (publication of the container itself is tracked separately)
		}
		return true
	case *ast.Ident:
		obj, ok := a.info.Uses[v].(*types.Var)
		return ok && obj.Parent() != nil && obj.Parent().Parent() == types.Universe // package scope
	}
	return false
}

// capturedLocals lists the context-local variables a literal's body
// references — the variables a `go func(){...}` shares with its
// spawner.
func capturedLocals(a *analysis, ctx *sgCtx, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := a.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= ctx.body.Pos() && v.Pos() <= ctx.node.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// sharesMemory reports types whose values alias shared storage when
// copied: pointers, slices, maps, channels and interfaces. Publishing
// a plain struct or scalar copies it — no race with later mutation of
// the original.
func sharesMemory(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}
