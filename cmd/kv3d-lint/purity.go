package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkPurity inspects simulation event callbacks — function literals
// handed to the scheduling entry points At/After/Schedule and to
// Resource.Acquire — inside the sim-determinism package set. Two
// constructs are flagged:
//
//  1. Capturing an enclosing for/range loop variable. Even with Go 1.22
//     per-iteration semantics, a callback that closes over the loop
//     variable couples its behaviour to the loop's control flow in a way
//     that has repeatedly produced replay-order bugs; the fix (bind an
//     explicit local, or pass the value) costs one line.
//  2. Writing to package-level state. Event handlers run at a time
//     chosen by the event queue; mutating globals from them makes the
//     result depend on event interleaving and breaks the "every
//     experiment owns its state" replayability rule.
//
// In typed mode a sink only counts when the named method is defined on
// a type of this module (so `foo.After` on some stdlib type never
// triggers), and package-level writes are recognized by scope — the
// assigned object's parent is the package scope — instead of by name,
// which both removes shadowing false positives and catches cross-file
// references precisely.

// callbackSinks are method names whose final func-literal argument is
// executed later by the event queue.
var callbackSinks = map[string]bool{
	"At": true, "After": true, "Schedule": true, "Acquire": true,
	// AcquireInfo is Acquire with a timed completion callback (PR 2's
	// observability layer); its func literal runs off the event queue
	// exactly like Acquire's.
	"AcquireInfo": true,
}

func checkPurity(a *analysis) []finding {
	var out []finding
	closure := a.simClosure()
	for path := range closure {
		pkg := a.pkgs[path]
		if pkg.depOnly {
			continue
		}
		pkgVarPos, pkgVarNames := packageLevelVars(pkg)
		for _, pf := range pkg.files {
			for _, decl := range pf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &purityWalker{
					a:           a,
					pkg:         pkg,
					loopVars:    map[any]token.Pos{},
					pkgVarPos:   pkgVarPos,
					pkgVarNames: pkgVarNames,
				}
				w.walk(fd.Body)
				out = append(out, w.findings...)
			}
		}
	}
	return out
}

// packageLevelVars returns the declaration positions of package-level
// vars (keyed by ident object position) and the set of their names, so
// the AST fallback can recognize both same-file (resolved) and
// cross-file (unresolved) references.
func packageLevelVars(pkg *pkgInfo) (map[token.Pos]string, map[string]bool) {
	pos := map[token.Pos]string{}
	names := map[string]bool{}
	for _, pf := range pkg.files {
		for _, decl := range pf.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == "_" {
						continue
					}
					pos[id.Pos()] = id.Name
					names[id.Name] = true
				}
			}
		}
	}
	return pos, names
}

// purityWalker tracks which loop variables are in scope while walking a
// function body, and lints callback literals it encounters.
type purityWalker struct {
	a           *analysis
	pkg         *pkgInfo
	loopVars    map[any]token.Pos
	pkgVarPos   map[token.Pos]string
	pkgVarNames map[string]bool
	findings    []finding
}

// objOf resolves an identifier to a stable object key: the types.Object
// in typed mode, the parser's ast.Object otherwise.
func (w *purityWalker) objOf(id *ast.Ident) any {
	if w.a.typed {
		if o := w.a.info.Defs[id]; o != nil {
			return o
		}
		if o := w.a.info.Uses[id]; o != nil {
			return o
		}
		return nil
	}
	if id.Obj != nil {
		return id.Obj
	}
	return nil
}

func (w *purityWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch v := n.(type) {
	case *ast.RangeStmt:
		w.walk(v.X)
		added := w.addLoopVars(v.Key, v.Value)
		w.walk(v.Body)
		w.removeLoopVars(added)
		return
	case *ast.ForStmt:
		var added []any
		if assign, ok := v.Init.(*ast.AssignStmt); ok && assign.Tok == token.DEFINE {
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					added = append(added, w.addLoopVars(id)...)
				}
			}
		}
		if v.Init != nil {
			w.walk(v.Init)
		}
		if v.Cond != nil {
			w.walk(v.Cond)
		}
		if v.Post != nil {
			w.walk(v.Post)
		}
		w.walk(v.Body)
		w.removeLoopVars(added)
		return
	case *ast.CallExpr:
		w.checkCall(v)
		return
	}
	// Generic descent; loops and calls recurse through walk so loop-var
	// scopes stay accurate and each callback is linted exactly once.
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return true
		}
		switch m.(type) {
		case *ast.RangeStmt, *ast.ForStmt, *ast.CallExpr:
			w.walk(m)
			return false
		}
		return true
	})
}

func (w *purityWalker) addLoopVars(exprs ...ast.Expr) []any {
	var added []any
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := w.objOf(id)
		if obj == nil {
			continue
		}
		if _, exists := w.loopVars[obj]; !exists {
			w.loopVars[obj] = id.Pos()
			added = append(added, obj)
		}
	}
	return added
}

func (w *purityWalker) removeLoopVars(objs []any) {
	for _, o := range objs {
		delete(w.loopVars, o)
	}
}

// isSink reports whether a call schedules its func-literal argument on
// the event queue. The AST fallback matches by method name alone; typed
// mode additionally requires the method to be defined on a type of this
// module, so same-named stdlib methods never register.
func (w *purityWalker) isSink(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !callbackSinks[sel.Sel.Name] {
		return ""
	}
	if !w.a.typed {
		return sel.Sel.Name
	}
	fn, ok := w.a.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if fn.Pkg() == nil || !w.a.isModulePkg(fn.Pkg().Path()) {
		return ""
	}
	return sel.Sel.Name
}

// checkCall lints a scheduling call's func-literal arguments, then
// descends into the whole call (nested schedules included) exactly once.
func (w *purityWalker) checkCall(call *ast.CallExpr) {
	w.walk(call.Fun)
	sink := w.isSink(call)
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok && sink != "" {
			w.lintCallback(sink, fl)
		}
		w.walk(arg)
	}
}

// isPackageVar reports whether an identifier resolves to a package-level
// variable of the linted package.
func (w *purityWalker) isPackageVar(id *ast.Ident) bool {
	if w.a.typed {
		v, ok := w.a.info.Uses[id].(*types.Var)
		if !ok || w.pkg.types == nil {
			return false
		}
		return v.Parent() == w.pkg.types.Scope()
	}
	if id.Obj != nil {
		_, ok := w.pkgVarPos[id.Obj.Pos()]
		return ok
	}
	return w.pkgVarNames[id.Name]
}

func (w *purityWalker) lintCallback(sink string, fl *ast.FuncLit) {
	seen := map[string]bool{}
	// Loop-variable captures.
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.objOf(id)
		if obj == nil {
			return true
		}
		declPos, isLoopVar := w.loopVars[obj]
		if !isLoopVar || seen["loop:"+id.Name] {
			return true
		}
		// The capture must cross the literal's boundary: the loop var is
		// declared outside the callback.
		if declPos >= fl.Pos() && declPos <= fl.End() {
			return true
		}
		seen["loop:"+id.Name] = true
		w.findings = append(w.findings, finding{
			pos:   w.a.fset.Position(id.Pos()),
			check: "purity",
			msg: fmt.Sprintf("callback passed to %s captures loop variable %q (declared at %s); bind a local copy or pass the value",
				sink, id.Name, w.a.fset.Position(declPos)),
		})
		return true
	})
	// Package-level writes.
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch v := n.(type) {
		case *ast.AssignStmt:
			targets = v.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{v.X}
		default:
			return true
		}
		for _, t := range targets {
			// Unwrap selector/index chains to the root identifier so
			// `global.field = x` and `globalMap[k] = x` are caught too.
			root := t
			for {
				switch rv := root.(type) {
				case *ast.SelectorExpr:
					root = rv.X
				case *ast.IndexExpr:
					root = rv.X
				case *ast.StarExpr:
					root = rv.X
				case *ast.ParenExpr:
					root = rv.X
				default:
					goto unwrapped
				}
			}
		unwrapped:
			id, ok := root.(*ast.Ident)
			if !ok || seen["pkg:"+id.Name] {
				continue
			}
			if !w.isPackageVar(id) {
				continue
			}
			seen["pkg:"+id.Name] = true
			w.findings = append(w.findings, finding{
				pos:   w.a.fset.Position(id.Pos()),
				check: "purity",
				msg: fmt.Sprintf("callback passed to %s mutates package-level state %q; event handlers must only touch state owned by their experiment",
					sink, id.Name),
			})
		}
		return true
	})
}
