package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// loadMode selects how much resolution the loader performs.
type loadMode int

const (
	// modeTyped parses and fully type-checks the module: stdlib and other
	// external dependencies are resolved from compiler export data
	// harvested via `go list -deps -export`, and the module's own
	// packages are type-checked from source in import order. All checks
	// then work on types.Object facts instead of identifier spellings.
	modeTyped loadMode = iota
	// modeAST parses only (the v1 behaviour). Checks fall back to
	// identifier heuristics and the typed-only checks are skipped. It
	// exists for environments without a working `go` toolchain and for
	// tests that demonstrate what spelling-based resolution misses.
	modeAST
)

// finding is one diagnostic produced by a check.
type finding struct {
	pos   token.Position
	check string
	msg   string
}

// parsedFile pairs a parsed file with its path on disk.
type parsedFile struct {
	path string
	ast  *ast.File
}

// pkgInfo is one package in the module under analysis.
type pkgInfo struct {
	path    string // import path, e.g. kv3d/internal/sim
	dir     string
	files   []*parsedFile
	imports map[string]bool // module-internal imports only

	// depOnly marks packages parsed and type-checked only because a
	// target package imports them; checks never report findings in them.
	depOnly bool
	// types is the checked package object (typed mode only).
	types *types.Package
}

// analysis is the loaded module plus the policy configuration shared by
// all checks.
type analysis struct {
	fset   *token.FileSet
	module string
	pkgs   map[string]*pkgInfo

	// typed reports whether go/types resolution succeeded; info then
	// holds resolved facts for every file of every package in pkgs.
	typed bool
	info  *types.Info

	// declOf lazily indexes every loaded function declaration by its
	// resolved object (see funcDecls).
	declOf map[*types.Func]*ast.FuncDecl

	// simRoots are the packages whose (transitive) imports must be
	// deterministic; allow exempts live-server packages that sit outside
	// the simulation even when the graph reaches them.
	simRoots []string
	allow    map[string]bool
}

// defaultSimRoots lists the simulation entry points, relative to the
// module path. Every package one of these imports must obey the
// determinism contract.
var defaultSimRoots = []string{
	"internal/sim",
	"internal/serversim",
	"internal/clustersim",
	"internal/experiments",
}

// defaultAllow lists real-server packages that are reachable from the
// sim roots (experiments drive the live store too) but legitimately
// touch wall clocks: they never run inside a simulation.
var defaultAllow = []string{
	"internal/kvserver",
	"internal/kvclient",
	"internal/server",
}

// load parses every package matched by the patterns under root, builds
// the module-internal import graph and, in typed mode, type-checks the
// whole module (targets plus their internal dependencies).
func load(root string, patterns []string, mode loadMode) (*analysis, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(absRoot, patterns)
	if err != nil {
		return nil, err
	}

	a := &analysis{
		fset:   token.NewFileSet(),
		module: module,
		pkgs:   map[string]*pkgInfo{},
		allow:  map[string]bool{},
	}
	for _, r := range defaultSimRoots {
		a.simRoots = append(a.simRoots, module+"/"+r)
	}
	for _, al := range defaultAllow {
		a.allow[module+"/"+al] = true
	}

	for _, dir := range dirs {
		pkg, err := parsePackage(a.fset, absRoot, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			a.pkgs[pkg.path] = pkg
		}
	}
	if mode == modeAST {
		return a, nil
	}
	if err := a.loadModuleDeps(absRoot); err != nil {
		return nil, err
	}
	if err := a.typeCheck(absRoot); err != nil {
		return nil, err
	}
	return a, nil
}

// loadModuleDeps parses, transitively, every module-internal package a
// target imports but the patterns did not match. They are type-checked
// (imports must resolve) but never linted.
func (a *analysis) loadModuleDeps(root string) error {
	var queue []string
	for _, pkg := range a.pkgs {
		for imp := range pkg.imports {
			queue = append(queue, imp)
		}
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if _, ok := a.pkgs[p]; ok {
			continue
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p, a.module), "/")
		dir := filepath.Join(root, filepath.FromSlash(rel))
		pkg, err := parsePackage(a.fset, root, a.module, dir)
		if err != nil {
			return fmt.Errorf("loading dependency %s: %w", p, err)
		}
		if pkg == nil {
			return fmt.Errorf("dependency %s has no Go files in %s", p, dir)
		}
		pkg.depOnly = true
		a.pkgs[p] = pkg
		for imp := range pkg.imports {
			queue = append(queue, imp)
		}
	}
	return nil
}

// typeCheck resolves the whole loaded module with go/types. External
// (stdlib) imports come from compiler export data located by
// `go list -deps -export`; module-internal packages are checked from
// their parsed sources in topological import order, so every ast.Ident
// in every loaded file has a types.Object behind it.
func (a *analysis) typeCheck(root string) error {
	exports, err := harvestExportData(root)
	if err != nil {
		return err
	}
	std := importer.ForCompiler(a.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in `go list -deps` of the module?)", path)
		}
		return os.Open(file)
	})
	a.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	order, err := a.topoOrder()
	if err != nil {
		return err
	}
	checked := map[string]*types.Package{}
	imp := &moduleImporter{a: a, checked: checked, std: std}
	for _, path := range order {
		pkg := a.pkgs[path]
		var files []*ast.File
		for _, pf := range pkg.files {
			files = append(files, pf.ast)
		}
		var firstErr error
		cfg := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, _ := cfg.Check(path, a.fset, files, a.info)
		if firstErr != nil {
			return fmt.Errorf("type-checking %s: %v", path, firstErr)
		}
		pkg.types = tpkg
		checked[path] = tpkg
	}
	a.typed = true
	return nil
}

// moduleImporter resolves imports during type-checking: "unsafe" maps
// to the builtin package, module-internal paths must already have been
// checked (topoOrder guarantees it), everything else reads gc export
// data through the harvested lookup table.
type moduleImporter struct {
	a       *analysis
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	if path == m.a.module || strings.HasPrefix(path, m.a.module+"/") {
		return nil, fmt.Errorf("module package %s not yet type-checked (import cycle?)", path)
	}
	return m.std.Import(path)
}

// harvestExportData asks the go tool where the compiled export data of
// every dependency of the module lives (building it into the cache if
// needed). This keeps the linter stdlib-only: no x/tools, just one
// subprocess that any environment able to build the repo already has.
func harvestExportData(root string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-e", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -deps -export failed (use -mode=ast if no toolchain is available): %v\n%s",
			err, stderr.String())
	}
	out := map[string]string{}
	for _, line := range strings.Split(stdout.String(), "\n") {
		path, file, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if ok && file != "" {
			out[path] = file
		}
	}
	return out, nil
}

// topoOrder sorts the loaded module packages so every package appears
// after all module-internal packages it imports.
func (a *analysis) topoOrder() ([]string, error) {
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var order []string
	var paths []string
	for p := range a.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("module import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		var imps []string
		for imp := range a.pkgs[p].imports {
			imps = append(imps, imp)
		}
		sort.Strings(imps)
		for _, imp := range imps {
			if _, ok := a.pkgs[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sortedPkgs returns the non-dependency packages in path order, so
// checks that keep cross-function state iterate deterministically.
func (a *analysis) sortedPkgs() []*pkgInfo {
	var out []*pkgInfo
	for _, p := range a.pkgs {
		if !p.depOnly {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// modulePath reads the module directive from go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// expandPatterns resolves "./...", "./dir/..." and plain directory
// arguments into a sorted list of directories containing Go files.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// parsePackage parses the non-test Go files in dir, returning nil if the
// directory holds no Go package.
func parsePackage(fset *token.FileSet, root, module, dir string) (*pkgInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("no such directory: %s", dir)
		}
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	ipath := module
	if rel != "." {
		ipath = module + "/" + filepath.ToSlash(rel)
	}
	pkg := &pkgInfo{path: ipath, dir: dir, imports: map[string]bool{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		pkg.files = append(pkg.files, &parsedFile{path: path, ast: f})
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == module || strings.HasPrefix(p, module+"/") {
				pkg.imports[p] = true
			}
		}
	}
	if len(pkg.files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// simClosure returns every analyzed package reachable from the sim
// roots (roots included, allowlist excluded), mapped to a human-readable
// import chain like "imported via kv3d/internal/experiments".
func (a *analysis) simClosure() map[string]string {
	out := map[string]string{}
	var visit func(path, via string)
	visit = func(path, via string) {
		if a.allow[path] {
			return
		}
		pkg, ok := a.pkgs[path]
		if !ok {
			return
		}
		if _, done := out[path]; done {
			return
		}
		out[path] = via
		for imp := range pkg.imports {
			visit(imp, path)
		}
	}
	for _, r := range a.simRoots {
		visit(r, "")
	}
	return out
}

// calleeFunc resolves the function or method a call invokes, or nil
// when the callee is not a resolved *types.Func (conversions, func
// values, builtins). Typed mode only.
func (a *analysis) calleeFunc(call *ast.CallExpr) *types.Func {
	if !a.typed {
		return nil
	}
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch v := fun.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	fn, _ := a.info.Uses[id].(*types.Func)
	return fn
}

// namedType unwraps pointers and aliases down to the *types.Named
// behind a type, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isSyncMutex reports whether a type is sync.Mutex or sync.RWMutex
// (directly, behind a pointer, or behind an alias).
func isSyncMutex(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isSyncPool reports whether a type is sync.Pool (directly, behind a
// pointer, or behind an alias).
func isSyncPool(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// funcDecls builds (once, lazily) the module-wide index from resolved
// *types.Func objects to their declarations, covering dependency-only
// packages too: the bufown check resolves //kv3d:aliases contracts on
// callees in other packages, and lifecycle resolves the body a
// `go pkgFn()` statement actually spawns.
func (a *analysis) funcDecls() map[*types.Func]*ast.FuncDecl {
	if a.declOf != nil {
		return a.declOf
	}
	a.declOf = map[*types.Func]*ast.FuncDecl{}
	if !a.typed {
		return a.declOf
	}
	for _, pkg := range a.pkgs {
		for _, pf := range pkg.files {
			for _, decl := range pf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := a.info.Defs[fd.Name].(*types.Func); ok {
					a.declOf[fn] = fd
				}
			}
		}
	}
	return a.declOf
}

// isModulePkg reports whether an import path belongs to the module
// under analysis.
func (a *analysis) isModulePkg(path string) bool {
	return path == a.module || strings.HasPrefix(path, a.module+"/")
}
