package main

import (
	"strings"
	"testing"
)

// The bufown fixtures exercise the loan contract from both sides:
// retention shapes that must be flagged (field stores, channel sends,
// goroutine captures, returns without a contract) and the laundering
// idioms that must not be (string conversion, copy, byte append).

func TestBufOwnFlagsFieldRetention(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

type cache struct {
	last []byte
}

//kv3d:borrowed buf
func (c *cache) Remember(buf []byte) {
	c.last = buf
}
`,
	})
	assertFindings(t, checkBufOwn(a), 1, "bufown/retain", "field last", `borrowed "buf"`)
}

func TestBufOwnTracksAliasesThroughLocals(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

var sink []byte

//kv3d:borrowed line
func Parse(line []byte) {
	tok := line[1:]
	view := tok
	sink = view
}
`,
	})
	assertFindings(t, checkBufOwn(a), 1, "bufown/retain", "package variable sink", `borrowed "line"`)
}

func TestBufOwnFlagsChannelSendAndGoroutine(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

var ch = make(chan []byte, 1)

func consume([]byte) {}

//kv3d:borrowed buf
func Ship(buf []byte) {
	ch <- buf[4:]
}

//kv3d:borrowed buf
func Spawn(buf []byte) {
	go consume(buf)
}

//kv3d:borrowed buf
func Capture(buf []byte) {
	go func() { consume(buf) }()
}
`,
	})
	fs := checkBufOwn(a)
	assertFindings(t, fs, 3, "sent on a channel", "passed to a goroutine", "captured by a go statement")
}

func TestBufOwnHotpathInfersSliceParamsAndReturn(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

// GetInto appends into dst — hotpath slice params are loans by
// construction, so returning the extended dst needs a contract.
//
//kv3d:hotpath
func GetInto(dst []byte, key string) []byte {
	dst = append(dst, key...)
	return dst
}
`,
	})
	assertFindings(t, checkBufOwn(a), 1, "bufown/return", `borrowed "dst"`, "kv3d:aliases dst")
}

func TestBufOwnAliasesContractAllowsReturn(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

//kv3d:hotpath
//kv3d:aliases dst
func GetInto(dst []byte, key string) []byte {
	return append(dst, key...)
}
`,
	})
	assertFindings(t, checkBufOwn(a), 0)
}

func TestBufOwnAliasesContractPropagatesThroughCalls(t *testing.T) {
	// A caller of an //kv3d:aliases callee inherits the taint: the
	// wrapped result still aliases the borrowed argument.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

//kv3d:aliases b
func firstWord(b []byte) []byte {
	for i, c := range b {
		if c == ' ' {
			return b[:i]
		}
	}
	return b
}

type session struct {
	key []byte
}

//kv3d:borrowed line
func (s *session) Handle(line []byte) {
	s.key = firstWord(line)
}
`,
	})
	assertFindings(t, checkBufOwn(a), 1, "bufown/retain", "field key", `borrowed "line"`)
}

func TestBufOwnLaunderingIsClean(t *testing.T) {
	// string(b) copies, copy() copies, append of bytes into an owned
	// slice copies — none of them extend the loan.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

type cache struct {
	lastKey string
	lastVal []byte
}

//kv3d:borrowed key value
func (c *cache) Store(key, value []byte) {
	c.lastKey = string(key)
	c.lastVal = append(c.lastVal[:0], value...)
	buf := make([]byte, len(value))
	copy(buf, value)
	c.lastVal = buf
}
`,
	})
	assertFindings(t, checkBufOwn(a), 0)
}

func TestBufOwnRangeOverBorrowedRows(t *testing.T) {
	// Ranging a borrowed [][]byte taints the iteration variable (each
	// row aliases borrowed memory); ranging a []byte does not (the
	// element is a byte copy).
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

type batch struct {
	keys [][]byte
	sum  byte
}

//kv3d:borrowed keys
func (b *batch) Retain(keys [][]byte) {
	for _, k := range keys {
		b.keys = append(b.keys, k)
	}
}

//kv3d:borrowed buf
func (b *batch) Sum(buf []byte) {
	for _, c := range buf {
		b.sum += c
	}
}
`,
	})
	assertFindings(t, checkBufOwn(a), 1, "bufown/retain", `borrowed "keys"`)
}

func TestBufOwnUnknownAnnotationName(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

//kv3d:borrowed bug
func Parse(buf []byte) {
	_ = buf
}
`,
	})
	assertFindings(t, checkBufOwn(a), 1, "bufown/annotation", `"bug"`)
}

func TestBufOwnRebindKillsTaint(t *testing.T) {
	// Once the local is rebound to owned memory, storing it is fine.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

type c struct{ v []byte }

//kv3d:borrowed buf
func (x *c) F(buf []byte) {
	v := buf[2:]
	v = make([]byte, 8)
	x.v = v
}
`,
	})
	assertFindings(t, checkBufOwn(a), 0)
}

// TestBufOwnRepoIsClean is the v4 ratchet over the annotated zero-copy
// surface: the tree itself must stay free of bufown findings.
func TestBufOwnRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	a, err := load("../..", []string{"./..."}, modeTyped)
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	fs := applyNolint(a, checkBufOwn(a))
	if len(fs) != 0 {
		t.Fatalf("bufown findings on the tree:\n%s", strings.Join(msgs(fs), "\n"))
	}
}
