package main

import (
	"fmt"
	"go/ast"
	"regexp"
)

// checkLocks flags struct fields that the repo's conventions mark as
// mutex-guarded but that an exported method touches without acquiring
// the lock. Two conventions establish the guard relation:
//
//  1. Position: within one comment-free "paragraph" of a struct's field
//     list (fields on contiguous lines, no blank line between), a single
//     sync.Mutex/sync.RWMutex field guards every other field in the
//     paragraph. This matches the layout used across the repo, e.g.
//     UDPServer's {handled, dropped, statsMu} block.
//  2. Comment: a field whose doc or line comment says "guarded by <mu>"
//     is guarded by that mutex regardless of position.
//
// The check is intentionally method-local and flow-insensitive: an
// exported method that accesses a guarded field is expected to contain a
// Lock/RLock call on the guarding mutex somewhere in its body. Helper
// methods that rely on callers holding the lock should stay unexported
// (the repo-wide convention) or carry a nolint with the reason.

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// structGuards records the guard relation for one struct type.
type structGuards struct {
	name    string
	guards  map[string]string // field name -> guarding mutex field name
	mutexes map[string]bool
}

func checkLocks(a *analysis) []finding {
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		byStruct := map[string]*structGuards{}
		for _, pf := range pkg.files {
			collectStructGuards(a, pf, byStruct)
		}
		if len(byStruct) == 0 {
			continue
		}
		for _, pf := range pkg.files {
			for _, decl := range pf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				recvName, recvType := receiverInfo(fd)
				if recvName == "" {
					continue
				}
				sg, ok := byStruct[recvType]
				if !ok || len(sg.guards) == 0 {
					continue
				}
				out = append(out, lintMethod(a, fd, recvName, sg)...)
			}
		}
	}
	return out
}

// collectStructGuards scans a file's struct declarations and fills the
// guard relation for each. In typed mode a field is a mutex if its type
// resolves to sync.Mutex/RWMutex — including through type aliases and
// import renames that the AST spelling test cannot see.
func collectStructGuards(a *analysis, pf *parsedFile, byStruct map[string]*structGuards) {
	syncAliases, _ := importAliases(pf.ast, "sync")
	isMutexType := func(t ast.Expr) bool {
		if a.typed {
			return isSyncMutex(a.info.Types[t].Type)
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		_, isSync := syncAliases[id.Name]
		return isSync && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
	}

	ast.Inspect(pf.ast, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		sg := &structGuards{name: ts.Name.Name, guards: map[string]string{}, mutexes: map[string]bool{}}

		// Split the field list into paragraphs by blank-line gaps,
		// counting a field's doc comment as part of it.
		type fieldInfo struct {
			names   []string
			isMutex bool
			comment string
		}
		var paragraphs [][]fieldInfo
		var cur []fieldInfo
		prevEnd := -1
		for _, f := range st.Fields.List {
			start := f.Pos()
			if f.Doc != nil {
				start = f.Doc.Pos()
			}
			end := f.End()
			if f.Comment != nil {
				end = f.Comment.End()
			}
			startLine := a.fset.Position(start).Line
			if prevEnd >= 0 && startLine-prevEnd > 1 && len(cur) > 0 {
				paragraphs = append(paragraphs, cur)
				cur = nil
			}
			prevEnd = a.fset.Position(end).Line
			var names []string
			for _, id := range f.Names {
				names = append(names, id.Name)
			}
			comment := ""
			if f.Doc != nil {
				comment += f.Doc.Text()
			}
			if f.Comment != nil {
				comment += f.Comment.Text()
			}
			cur = append(cur, fieldInfo{names: names, isMutex: isMutexType(f.Type), comment: comment})
		}
		if len(cur) > 0 {
			paragraphs = append(paragraphs, cur)
		}

		for _, para := range paragraphs {
			mutexes := []string{}
			for _, f := range para {
				if f.isMutex {
					mutexes = append(mutexes, f.names...)
				}
			}
			for _, m := range mutexes {
				sg.mutexes[m] = true
			}
			for _, f := range para {
				if f.isMutex {
					continue
				}
				// Explicit "guarded by X" comments win over position.
				if m := guardedByRe.FindStringSubmatch(f.comment); m != nil {
					for _, name := range f.names {
						sg.guards[name] = m[1]
					}
					sg.mutexes[m[1]] = true
					continue
				}
				// Position convention needs exactly one mutex in the
				// paragraph; zero or several is ambiguous, so no guard.
				if len(mutexes) == 1 {
					for _, name := range f.names {
						sg.guards[name] = mutexes[0]
					}
				}
			}
		}
		if len(sg.guards) > 0 {
			byStruct[sg.name] = sg
		}
		return true
	})
}

// receiverInfo extracts the receiver variable name and the base type
// name of a method declaration.
func receiverInfo(fd *ast.FuncDecl) (name, typeName string) {
	if len(fd.Recv.List) != 1 {
		return "", ""
	}
	recv := fd.Recv.List[0]
	if len(recv.Names) != 1 || recv.Names[0].Name == "_" {
		return "", ""
	}
	t := recv.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return recv.Names[0].Name, id.Name
}

// lintMethod reports guarded-field accesses in one exported method whose
// guarding mutex is never locked in that method's body.
func lintMethod(a *analysis, fd *ast.FuncDecl, recvName string, sg *structGuards) []finding {
	// Pass 1: which mutexes does this method lock (Lock or RLock)?
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := inner.X.(*ast.Ident)
		if ok && recv.Name == recvName && sg.mutexes[inner.Sel.Name] {
			locked[inner.Sel.Name] = true
		}
		return true
	})

	// Pass 2: flag accesses to guarded fields whose mutex is not locked.
	var out []finding
	seen := map[string]bool{} // one finding per field per method
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || recv.Name != recvName || recv.Obj == nil {
			return true
		}
		mu, guarded := sg.guards[sel.Sel.Name]
		if !guarded || locked[mu] || seen[sel.Sel.Name] {
			return true
		}
		seen[sel.Sel.Name] = true
		out = append(out, finding{
			pos:   a.fset.Position(sel.Pos()),
			check: "lockcheck",
			msg: fmt.Sprintf("%s.%s accesses %s.%s (guarded by %s) without locking %s.%s",
				sg.name, fd.Name.Name, recvName, sel.Sel.Name, mu, recvName, mu),
		})
		return true
	})
	return out
}
