// Command kv3d-lint is a repo-specific static analyzer guarding the two
// properties the kv3d codebase depends on and the standard toolchain
// cannot check: determinism of the simulation layer (the paper's RTT/TPS
// tables are only trustworthy if model code never reads wall clocks or
// global randomness) and concurrency hygiene of the live server path.
//
// It is stdlib-only (go/ast, go/parser, go/token) so it runs with
// `go run ./cmd/kv3d-lint ./...` in any environment that can build the
// repo, with no module downloads.
//
// Checks (see LINTING.md for the full contract):
//
//	determinism   wall-clock and global-rand calls in sim-imported packages
//	lockcheck     mutex-guarded struct fields read without the lock held
//	units         arithmetic mixing Ns/Ps/Cycles identifiers unconverted
//	purity        sim event callbacks capturing loop vars or mutating globals
//
// Findings print as "file:line:col: [check] message" and make the tool
// exit 1. A finding is suppressed by an end-of-line directive
// `//nolint:kv3d // <reason>`; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// finding is one diagnostic produced by a check.
type finding struct {
	pos   token.Position
	check string
	msg   string
}

// parsedFile pairs a parsed file with its path on disk.
type parsedFile struct {
	path string
	ast  *ast.File
}

// pkgInfo is one package in the module under analysis.
type pkgInfo struct {
	path    string // import path, e.g. kv3d/internal/sim
	dir     string
	files   []*parsedFile
	imports map[string]bool // module-internal imports only
}

// analysis is the loaded module plus the policy configuration shared by
// all checks.
type analysis struct {
	fset   *token.FileSet
	module string
	pkgs   map[string]*pkgInfo

	// simRoots are the packages whose (transitive) imports must be
	// deterministic; allow exempts live-server packages that sit outside
	// the simulation even when the graph reaches them.
	simRoots []string
	allow    map[string]bool
}

// defaultSimRoots lists the simulation entry points, relative to the
// module path. Every package one of these imports must obey the
// determinism contract.
var defaultSimRoots = []string{
	"internal/sim",
	"internal/serversim",
	"internal/clustersim",
	"internal/experiments",
}

// defaultAllow lists real-server packages that are reachable from the
// sim roots (experiments drive the live store too) but legitimately
// touch wall clocks: they never run inside a simulation.
var defaultAllow = []string{
	"internal/kvserver",
	"internal/kvclient",
	"internal/server",
}

func main() {
	checksFlag := flag.String("checks", "determinism,lockcheck,units,purity",
		"comma-separated subset of checks to run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kv3d-lint [-checks list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	a, err := load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kv3d-lint: %v\n", err)
		os.Exit(2)
	}

	enabled := map[string]bool{}
	for _, c := range strings.Split(*checksFlag, ",") {
		enabled[strings.TrimSpace(c)] = true
	}
	var findings []finding
	if enabled["determinism"] {
		findings = append(findings, checkDeterminism(a)...)
	}
	if enabled["lockcheck"] {
		findings = append(findings, checkLocks(a)...)
	}
	if enabled["units"] {
		findings = append(findings, checkUnits(a)...)
	}
	if enabled["purity"] {
		findings = append(findings, checkPurity(a)...)
	}
	findings = applyNolint(a, findings)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.check < b.check
	})
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", relPos(f.pos), f.check, f.msg)
	}
	if len(findings) > 0 {
		fmt.Printf("kv3d-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("kv3d-lint: %d package(s) clean\n", len(a.pkgs))
}

// relPos renders a position with a path relative to the working
// directory when possible, matching compiler diagnostics.
func relPos(p token.Position) string {
	wd, err := os.Getwd()
	if err == nil {
		if rel, rerr := filepath.Rel(wd, p.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.String()
}

// load parses every package matched by the patterns under root and
// builds the module-internal import graph.
func load(root string, patterns []string) (*analysis, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(absRoot, patterns)
	if err != nil {
		return nil, err
	}

	a := &analysis{
		fset:   token.NewFileSet(),
		module: module,
		pkgs:   map[string]*pkgInfo{},
		allow:  map[string]bool{},
	}
	for _, r := range defaultSimRoots {
		a.simRoots = append(a.simRoots, module+"/"+r)
	}
	for _, al := range defaultAllow {
		a.allow[module+"/"+al] = true
	}

	for _, dir := range dirs {
		pkg, err := parsePackage(a.fset, absRoot, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			a.pkgs[pkg.path] = pkg
		}
	}
	return a, nil
}

// modulePath reads the module directive from go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// expandPatterns resolves "./...", "./dir/..." and plain directory
// arguments into a sorted list of directories containing Go files.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// parsePackage parses the non-test Go files in dir, returning nil if the
// directory holds no Go package.
func parsePackage(fset *token.FileSet, root, module, dir string) (*pkgInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("no such directory: %s", dir)
		}
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	ipath := module
	if rel != "." {
		ipath = module + "/" + filepath.ToSlash(rel)
	}
	pkg := &pkgInfo{path: ipath, dir: dir, imports: map[string]bool{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		pkg.files = append(pkg.files, &parsedFile{path: path, ast: f})
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == module || strings.HasPrefix(p, module+"/") {
				pkg.imports[p] = true
			}
		}
	}
	if len(pkg.files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// simClosure returns every analyzed package reachable from the sim
// roots (roots included, allowlist excluded), mapped to a human-readable
// import chain like "imported via kv3d/internal/experiments".
func (a *analysis) simClosure() map[string]string {
	out := map[string]string{}
	var visit func(path, via string)
	visit = func(path, via string) {
		if a.allow[path] {
			return
		}
		pkg, ok := a.pkgs[path]
		if !ok {
			return
		}
		if _, done := out[path]; done {
			return
		}
		out[path] = via
		for imp := range pkg.imports {
			visit(imp, path)
		}
	}
	for _, r := range a.simRoots {
		visit(r, "")
	}
	return out
}

// importAliases returns the local names under which file imports any of
// the given package paths (an empty map when none are imported). The
// boolean reports whether one of them was dot-imported.
func importAliases(f *ast.File, paths ...string) (map[string]string, bool) {
	want := map[string]bool{}
	for _, p := range paths {
		want[p] = true
	}
	out := map[string]string{}
	dot := false
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if !want[p] {
			continue
		}
		name := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch name {
		case ".":
			dot = true
		case "_":
		default:
			out[name] = p
		}
	}
	return out, dot
}

// applyNolint drops findings on lines carrying a well-formed
// `//nolint:kv3d // reason` directive and reports malformed directives
// (missing reason) as findings of their own.
func applyNolint(a *analysis, findings []finding) []finding {
	type key struct {
		file string
		line int
	}
	suppressed := map[key]bool{}
	var out []finding
	for _, pkg := range a.pkgs {
		for _, pf := range pkg.files {
			for _, cg := range pf.ast.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "nolint:kv3d")
					if idx < 0 {
						continue
					}
					line := a.fset.Position(c.Slash).Line
					rest := strings.TrimSpace(c.Text[idx+len("nolint:kv3d"):])
					reason := strings.TrimSpace(strings.TrimPrefix(rest, "//"))
					if !strings.HasPrefix(rest, "//") || reason == "" {
						out = append(out, finding{
							pos:   a.fset.Position(c.Slash),
							check: "nolint",
							msg:   "nolint:kv3d requires a reason: use `//nolint:kv3d // <why this is safe>`",
						})
						continue
					}
					suppressed[key{a.fset.Position(c.Slash).Filename, line}] = true
				}
			}
		}
	}
	for _, f := range findings {
		if suppressed[key{f.pos.Filename, f.pos.Line}] {
			continue
		}
		out = append(out, f)
	}
	return out
}
