// Command kv3d-lint is a repo-specific static analyzer guarding the
// properties the kv3d codebase depends on and the standard toolchain
// cannot check: determinism of the simulation layer (the paper's RTT/TPS
// tables are only trustworthy if model code never reads wall clocks or
// global randomness), concurrency hygiene of the live server path, and
// allocation discipline on the request hot paths.
//
// It is stdlib-only (go/ast, go/parser, go/token, go/types, go/importer)
// so it runs with `go run ./cmd/kv3d-lint ./...` in any environment that
// can build the repo, with no module downloads. Resolution is type-aware
// by default: stdlib imports are resolved from compiler export data
// (`go list -deps -export`) and the module's own packages are
// type-checked from source, so aliased imports, type aliases, embedding
// and shadowing cannot hide a banned call the way they could from the
// v1 identifier-matching pass. `-mode=ast` restores the v1 behaviour for
// toolchain-less environments.
//
// Checks (see LINTING.md for the full contract):
//
//	determinism   wall-clock and global-rand calls in sim-imported packages
//	lockcheck     mutex-guarded struct fields read without the lock held
//	units         arithmetic mixing time units (typed sim.Ps/sim.Ns/sim.Time
//	              and Ns/Ps/Cycles identifier suffixes) unconverted
//	purity        sim event callbacks capturing loop vars or mutating globals
//	lockorder     lock-acquisition-order cycles and lock-held calls into
//	              methods that re-acquire (typed mode only)
//	hotalloc      allocation idioms inside //kv3d:hotpath functions
//	              (typed mode only)
//	errdrop       dropped errors at flush/conn-write/renderer sinks
//	              (typed mode only)
//	syncguard     CFG-based lockset analysis (typed mode only): inferred
//	              and annotated guarded-by relations (syncguard/guardedby),
//	              mixed atomic/plain field access (syncguard/atomic), and
//	              mutation after publication to another goroutine
//	              (syncguard/publish)
//	bufown        alias/escape analysis for borrowed buffers (typed mode
//	              only): //kv3d:borrowed params and inferred hot-path
//	              slice params must not be retained past the call
//	              (bufown/retain, bufown/return, bufown/annotation)
//	poolsafe      sync.Pool discipline (typed mode only): use-after-Put,
//	              double-Put, Put of an escaped value
//	lifecycle     every go statement tied to a stop signal
//	              (lifecycle/untied) and no unbounded spawn loops
//	              (lifecycle/spawnloop) (typed mode only)
//
// Findings print as "file:line:col: [check] message"; `-json` switches
// to one JSON object per finding (file, line, col, check, message) for
// machine consumers. A finding is suppressed by an end-of-line
// directive `//nolint:kv3d -- <reason>`; the reason is mandatory.
//
// Exit codes: 0 clean, 1 findings, 2 internal error (bad flags, loader
// failure) — so CI can tell "dirty tree" from "linter broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// typedOnlyChecks require go/types resolution and are skipped (with a
// stderr note) under -mode=ast.
var typedOnlyChecks = map[string]bool{
	"lockorder": true,
	"hotalloc":  true,
	"errdrop":   true,
	"syncguard": true,
	"bufown":    true,
	"poolsafe":  true,
	"lifecycle": true,
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole linter behind a testable seam: root is the
// directory patterns resolve against, argv the command line without
// the program name. Returns the process exit code: 0 clean, 1
// findings, 2 internal error.
func run(root string, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kv3d-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks",
		"determinism,lockcheck,units,purity,lockorder,hotalloc,errdrop,syncguard,bufown,poolsafe,lifecycle",
		"comma-separated subset of checks to run")
	modeFlag := fs.String("mode", "typed",
		"resolution mode: typed (go/types, default) or ast (v1 parse-only fallback)")
	jsonFlag := fs.Bool("json", false,
		"emit findings as JSON, one object per line: {file, line, col, check, message}")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: kv3d-lint [-checks list] [-mode typed|ast] [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mode := modeTyped
	switch *modeFlag {
	case "typed":
	case "ast":
		mode = modeAST
	default:
		fs.Usage()
		return 2
	}

	a, err := load(root, patterns, mode)
	if err != nil {
		fmt.Fprintf(stderr, "kv3d-lint: %v\n", err)
		return 2
	}

	enabled := map[string]bool{}
	var skipped []string
	for _, c := range strings.Split(*checksFlag, ",") {
		c = strings.TrimSpace(c)
		if typedOnlyChecks[c] && !a.typed {
			skipped = append(skipped, c)
			continue
		}
		enabled[c] = true
	}
	if len(skipped) > 0 {
		fmt.Fprintf(stderr, "kv3d-lint: skipping typed-only checks in -mode=ast: %s\n",
			strings.Join(skipped, ", "))
	}

	var findings []finding
	if enabled["determinism"] {
		findings = append(findings, checkDeterminism(a)...)
	}
	if enabled["lockcheck"] {
		findings = append(findings, checkLocks(a)...)
	}
	if enabled["units"] {
		findings = append(findings, checkUnits(a)...)
	}
	if enabled["purity"] {
		findings = append(findings, checkPurity(a)...)
	}
	if enabled["lockorder"] {
		findings = append(findings, checkLockOrder(a)...)
	}
	if enabled["hotalloc"] {
		findings = append(findings, checkHotAlloc(a)...)
	}
	if enabled["errdrop"] {
		findings = append(findings, checkErrDrop(a)...)
	}
	if enabled["syncguard"] {
		findings = append(findings, checkSyncGuard(a)...)
	}
	if enabled["bufown"] {
		findings = append(findings, checkBufOwn(a)...)
	}
	if enabled["poolsafe"] {
		findings = append(findings, checkPoolSafe(a)...)
	}
	if enabled["lifecycle"] {
		findings = append(findings, checkLifecycle(a)...)
	}
	findings = applyNolint(a, findings)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.check < b.check
	})
	for _, f := range findings {
		if *jsonFlag {
			out, _ := json.Marshal(jsonFinding{
				File: relPos2(f.pos).Filename, Line: f.pos.Line, Col: f.pos.Column,
				Check: f.check, Message: f.msg,
			})
			fmt.Fprintln(stdout, string(out))
		} else {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", relPos(f.pos), f.check, f.msg)
		}
	}
	if len(findings) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(stdout, "kv3d-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	if !*jsonFlag {
		linted := 0
		for _, pkg := range a.pkgs {
			if !pkg.depOnly {
				linted++
			}
		}
		fmt.Fprintf(stdout, "kv3d-lint: %d package(s) clean\n", linted)
	}
	return 0
}

// jsonFinding is the -json wire format, one object per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// relPos2 is relPos without the string rendering: it relativizes the
// filename in place for structured output.
func relPos2(p token.Position) token.Position {
	wd, err := os.Getwd()
	if err == nil {
		if rel, rerr := filepath.Rel(wd, p.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p
}

// relPos renders a position with a path relative to the working
// directory when possible, matching compiler diagnostics.
func relPos(p token.Position) string {
	return relPos2(p).String()
}

// importAliases returns the local names under which file imports any of
// the given package paths (an empty map when none are imported). The
// boolean reports whether one of them was dot-imported. This is the v1
// (AST-mode) resolution primitive; typed checks use a.info instead.
func importAliases(f *ast.File, paths ...string) (map[string]string, bool) {
	want := map[string]bool{}
	for _, p := range paths {
		want[p] = true
	}
	out := map[string]string{}
	dot := false
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if !want[p] {
			continue
		}
		name := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch name {
		case ".":
			dot = true
		case "_":
		default:
			out[name] = p
		}
	}
	return out, dot
}

// applyNolint drops findings on lines carrying a well-formed
// `//nolint:kv3d -- reason` directive and reports malformed directives
// (missing reason, or the legacy `// reason` separator) as findings of
// their own. The `--` separator is the one golangci-lint uses, so
// editors and grep patterns carry over.
func applyNolint(a *analysis, findings []finding) []finding {
	type key struct {
		file string
		line int
	}
	suppressed := map[key]bool{}
	var out []finding
	for _, pkg := range a.pkgs {
		for _, pf := range pkg.files {
			for _, cg := range pf.ast.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "nolint:kv3d")
					if idx < 0 {
						continue
					}
					line := a.fset.Position(c.Slash).Line
					rest := strings.TrimSpace(c.Text[idx+len("nolint:kv3d"):])
					reason := ""
					if cut, ok := strings.CutPrefix(rest, "--"); ok {
						reason = strings.TrimSpace(cut)
					}
					if reason == "" {
						if pkg.depOnly {
							continue
						}
						out = append(out, finding{
							pos:   a.fset.Position(c.Slash),
							check: "nolint",
							msg:   "nolint:kv3d requires a justification: use `//nolint:kv3d -- <why this is safe>`",
						})
						continue
					}
					suppressed[key{a.fset.Position(c.Slash).Filename, line}] = true
				}
			}
		}
	}
	for _, f := range findings {
		if suppressed[key{f.pos.Filename, f.pos.Line}] {
			continue
		}
		out = append(out, f)
	}
	return out
}
