package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway Go module and loads it through
// the same path the CLI uses.
func writeModule(t *testing.T, files map[string]string) *analysis {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fake\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	a, err := load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return a
}

func msgs(fs []finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.check+": "+f.msg)
	}
	return out
}

func assertFindings(t *testing.T, fs []finding, want int, substrs ...string) {
	t.Helper()
	if len(fs) != want {
		t.Fatalf("got %d findings, want %d:\n%s", len(fs), want, strings.Join(msgs(fs), "\n"))
	}
	for _, sub := range substrs {
		found := false
		for _, m := range msgs(fs) {
			if strings.Contains(m, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding mentions %q:\n%s", sub, strings.Join(msgs(fs), "\n"))
		}
	}
}

func TestDeterminismFlagsSimImportedPackages(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import "fake/internal/model"
var _ = model.Tick`,
		"internal/model/model.go": `package model
import (
	"time"
	"math/rand"
)
func Tick() int64 { return time.Now().Unix() }
func Nap()        { time.Sleep(time.Second) }
func Roll() int   { return rand.Intn(6) }
func Owned() *rand.Rand { return rand.New(rand.NewSource(1)) }`,
		// Allowlisted live-server package: wall clock is fine here.
		"internal/kvserver/s.go": `package kvserver
import "time"
func Deadline() int64 { return time.Now().Unix() }`,
		// Not reachable from any sim root: also fine.
		"internal/tool/t.go": `package tool
import "time"
func Stamp() int64 { return time.Now().Unix() }`,
	})
	fs := checkDeterminism(a)
	assertFindings(t, fs, 3, "time.Now reads the wall clock", "time.Sleep blocks on host time",
		"rand.Intn uses the global math/rand source")
	for _, f := range fs {
		if !strings.Contains(f.pos.Filename, "model.go") {
			t.Errorf("finding outside model.go: %s", f.pos)
		}
	}
}

func TestDeterminismAllowsOwnedRandAndDurations(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import (
	"math/rand"
	"time"
)
const step = 5 * time.Millisecond // unit constants are not clock reads
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`,
	})
	assertFindings(t, checkDeterminism(a), 0)
}

func TestNolintSuppressionRequiresReason(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import "time"
func A() int64 { return time.Now().Unix() } //nolint:kv3d // test fixture: sanctioned wall-clock read
func B() int64 { return time.Now().Unix() } //nolint:kv3d
func C() int64 { return time.Now().Unix() }`,
	})
	fs := applyNolint(a, checkDeterminism(a))
	// A is suppressed; B keeps its finding plus a missing-reason finding;
	// C keeps its finding.
	assertFindings(t, fs, 3, "nolint:kv3d requires a reason")
	for _, f := range fs {
		if f.pos.Line == 3 {
			t.Errorf("line 3 should be suppressed: %s", f.msg)
		}
	}
}

func TestLockCheckPositionConvention(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type Counter struct {
	name string

	mu sync.Mutex
	n  int
}

// Bad reads n without the lock.
func (c *Counter) Bad() int { return c.n }

// Good locks first.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Name is unguarded (different paragraph).
func (c *Counter) Name() string { return c.name }

// internal helpers may rely on callers holding the lock.
func (c *Counter) peek() int { return c.n }`,
	})
	assertFindings(t, checkLocks(a), 1, "Counter.Bad accesses c.n (guarded by mu)")
}

func TestLockCheckCommentConvention(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type Gauge struct {
	statsMu sync.Mutex

	level int // guarded by statsMu
}

func (g *Gauge) Level() int { return g.level }

func (g *Gauge) SafeLevel() int {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.level
}`,
	})
	assertFindings(t, checkLocks(a), 1, "Gauge.Level accesses g.level (guarded by statsMu)")
}

func TestLockCheckRWMutexRLockCounts(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type Ring struct {
	mu     sync.RWMutex
	points []int
}

func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.points)
}`,
	})
	assertFindings(t, checkLocks(a), 0)
}

func TestUnitsMixedSuffixes(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

func f(latencyNs, wirePs, coreCycles int64) int64 {
	bad := latencyNs + wirePs
	if coreCycles > latencyNs {
		bad++
	}
	bad -= 0
	good := latencyNs + psToNs(wirePs) // conversion call silences
	scale := coreCycles * wirePs       // multiplication is the conversion idiom
	ops := latencyNs + latencyNs       // same unit
	tps := ops + 1                     // lowercase plural is not a unit
	return bad + good + scale + tps
}

func psToNs(ps int64) int64 { return ps / 1000 }`,
	})
	assertFindings(t, checkUnits(a), 2,
		"mixes Ns and Ps identifiers", "mixes Cycles and Ns identifiers")
}

func TestUnitsAssignOps(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

func f(totalPs, stepNs int64) int64 {
	totalPs += stepNs
	return totalPs
}`,
	})
	assertFindings(t, checkUnits(a), 1, "mixes Ps and Ns identifiers")
}

func TestPurityLoopCaptureAndGlobalWrite(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

type Sim struct{}
func (s *Sim) After(d int64, fn func()) {}

var totalDrops int

func Run(s *Sim, names []string) {
	for i, name := range names {
		s.After(1, func() {
			_ = i        // loop-var capture
			_ = name     // loop-var capture
			totalDrops++ // package-level mutation
		})
	}
	count := 0
	for j := 0; j < 3; j++ {
		jj := j
		s.After(1, func() {
			_ = jj  // explicit copy: fine
			count++ // local capture: fine
		})
	}
}`,
	})
	assertFindings(t, checkPurity(a), 3,
		`captures loop variable "i"`, `captures loop variable "name"`,
		`mutates package-level state "totalDrops"`)
}

func TestPurityOutsideSimSetIgnored(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/tool/t.go": `package tool

type Q struct{}
func (q *Q) After(d int64, fn func()) {}

var n int

func Run(q *Q) {
	for i := 0; i < 3; i++ {
		q.After(1, func() { n += i })
	}
}`,
	})
	assertFindings(t, checkPurity(a), 0)
}

func TestModulePatternExpansion(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/a.go":         `package pkg`,
		"pkg/sub/b.go":     `package sub`,
		"testdata/skip.go": `package skip`,
	})
	if len(a.pkgs) != 2 {
		t.Fatalf("got %d packages, want 2 (testdata skipped): %v", len(a.pkgs), a.pkgs)
	}
}
