package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModuleFiles materializes a throwaway Go module on disk and
// returns its root.
func writeModuleFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module fake\n\ngo 1.22\n"
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// writeModule loads a throwaway module through the same typed path the
// CLI uses by default.
func writeModule(t *testing.T, files map[string]string) *analysis {
	t.Helper()
	return writeModuleMode(t, files, modeTyped)
}

func writeModuleMode(t *testing.T, files map[string]string, mode loadMode) *analysis {
	t.Helper()
	root := writeModuleFiles(t, files)
	a, err := load(root, []string{"./..."}, mode)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return a
}

func msgs(fs []finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.check+": "+f.msg)
	}
	return out
}

func assertFindings(t *testing.T, fs []finding, want int, substrs ...string) {
	t.Helper()
	if len(fs) != want {
		t.Fatalf("got %d findings, want %d:\n%s", len(fs), want, strings.Join(msgs(fs), "\n"))
	}
	for _, sub := range substrs {
		found := false
		for _, m := range msgs(fs) {
			if strings.Contains(m, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding mentions %q:\n%s", sub, strings.Join(msgs(fs), "\n"))
		}
	}
}

func TestDeterminismFlagsSimImportedPackages(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import "fake/internal/model"
var _ = model.Tick`,
		"internal/model/model.go": `package model
import (
	"time"
	"math/rand"
)
func Tick() int64 { return time.Now().Unix() }
func Nap()        { time.Sleep(time.Second) }
func Roll() int   { return rand.Intn(6) }
func Owned() *rand.Rand { return rand.New(rand.NewSource(1)) }`,
		// Allowlisted live-server package: wall clock is fine here.
		"internal/kvserver/s.go": `package kvserver
import "time"
func Deadline() int64 { return time.Now().Unix() }`,
		// Not reachable from any sim root: also fine.
		"internal/tool/t.go": `package tool
import "time"
func Stamp() int64 { return time.Now().Unix() }`,
	})
	fs := checkDeterminism(a)
	assertFindings(t, fs, 3, "time.Now reads the wall clock", "time.Sleep blocks on host time",
		"rand.Intn uses the global math/rand source")
	for _, f := range fs {
		if !strings.Contains(f.pos.Filename, "model.go") {
			t.Errorf("finding outside model.go: %s", f.pos)
		}
	}
}

func TestDeterminismAllowsOwnedRandAndDurations(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import (
	"math/rand"
	"time"
)
const step = 5 * time.Millisecond // unit constants are not clock reads
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`,
	})
	assertFindings(t, checkDeterminism(a), 0)
}

// TestDeterminismMethodsNotConfusedWithClockReads pins a typed-mode
// hardening: a method that happens to be called Now on a module type
// must not trigger, and calls on an owned *rand.Rand must stay legal.
func TestDeterminismMethodsNotConfusedWithClockReads(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import "math/rand"
type Clock struct{ t int64 }
func (c *Clock) Now() int64 { return c.t }
func Use(c *Clock, r *rand.Rand) int64 { return c.Now() + int64(r.Intn(4)) }`,
	})
	assertFindings(t, checkDeterminism(a), 0)
}

// TestTypedCatchesDotImportedClock is the aliased-import fixture for
// the determinism check: v1's spelling pass can only warn that a dot
// import exists, while the typed pass resolves the bare Now() call to
// time.Now and reports the actual violation at the call site.
func TestTypedCatchesDotImportedClock(t *testing.T) {
	files := map[string]string{
		"internal/sim/s.go": `package sim
import . "time"
func Bad() int64 { return Now().Unix() }`,
	}
	astA := writeModuleMode(t, files, modeAST)
	fs := checkDeterminism(astA)
	assertFindings(t, fs, 1, "dot-imports a clock/rand package")

	typedA := writeModuleMode(t, files, modeTyped)
	fs = checkDeterminism(typedA)
	assertFindings(t, fs, 1, "time.Now reads the wall clock")
}

func TestNolintSuppressionRequiresReason(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import "time"
func A() int64 { return time.Now().Unix() } //nolint:kv3d -- test fixture: sanctioned wall-clock read
func B() int64 { return time.Now().Unix() } //nolint:kv3d
func C() int64 { return time.Now().Unix() } //nolint:kv3d // legacy separator is no longer a justification
func D() int64 { return time.Now().Unix() }`,
	})
	fs := applyNolint(a, checkDeterminism(a))
	// A is suppressed; B and C keep their findings plus a
	// missing-justification finding each; D keeps its finding.
	assertFindings(t, fs, 5, "nolint:kv3d requires a justification")
	for _, f := range fs {
		if f.pos.Line == 3 {
			t.Errorf("line 3 should be suppressed: %s", f.msg)
		}
	}
}

func TestLockCheckPositionConvention(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type Counter struct {
	name string

	mu sync.Mutex
	n  int
}

// Bad reads n without the lock.
func (c *Counter) Bad() int { return c.n }

// Good locks first.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Name is unguarded (different paragraph).
func (c *Counter) Name() string { return c.name }

// internal helpers may rely on callers holding the lock.
func (c *Counter) peek() int { return c.n }`,
	})
	assertFindings(t, checkLocks(a), 1, "Counter.Bad accesses c.n (guarded by mu)")
}

func TestLockCheckCommentConvention(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type Gauge struct {
	statsMu sync.Mutex

	level int // guarded by statsMu
}

func (g *Gauge) Level() int { return g.level }

func (g *Gauge) SafeLevel() int {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.level
}`,
	})
	assertFindings(t, checkLocks(a), 1, "Gauge.Level accesses g.level (guarded by statsMu)")
}

func TestLockCheckRWMutexRLockCounts(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type Ring struct {
	mu     sync.RWMutex
	points []int
}

func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.points)
}`,
	})
	assertFindings(t, checkLocks(a), 0)
}

// TestTypedCatchesAliasedMutexType is the aliased-import fixture for
// lockcheck: the mutex hides behind a renamed sync import and a type
// alias in another file. The v1 AST pass sees a field of unknown type
// `hotMu` and establishes no guard; the typed pass resolves hotMu to
// sync.Mutex and reports the unguarded access.
func TestTypedCatchesAliasedMutexType(t *testing.T) {
	files := map[string]string{
		"pkg/alias.go": `package pkg
import s "sync"
type hotMu = s.Mutex`,
		"pkg/c.go": `package pkg

type C struct {
	mu hotMu
	n  int
}

func (c *C) Bad() int { return c.n }`,
	}
	astA := writeModuleMode(t, files, modeAST)
	assertFindings(t, checkLocks(astA), 0) // v1-style resolution misses it

	typedA := writeModuleMode(t, files, modeTyped)
	assertFindings(t, checkLocks(typedA), 1, "C.Bad accesses c.n (guarded by mu)")
}

func TestUnitsMixedSuffixes(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

func f(latencyNs, wirePs, coreCycles int64) int64 {
	bad := latencyNs + wirePs
	if coreCycles > latencyNs {
		bad++
	}
	bad -= 0
	good := latencyNs + psToNs(wirePs) // conversion call silences
	scale := coreCycles * wirePs       // multiplication is the conversion idiom
	ops := latencyNs + latencyNs       // same unit
	tps := ops + 1                     // lowercase plural is not a unit
	return bad + good + scale + tps
}

func psToNs(ps int64) int64 { return ps / 1000 }`,
	})
	assertFindings(t, checkUnits(a), 2,
		"mixes Ns and Ps identifiers", "mixes Cycles and Ns identifiers")
}

func TestUnitsAssignOps(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

func f(totalPs, stepNs int64) int64 {
	totalPs += stepNs
	return totalPs
}`,
	})
	assertFindings(t, checkUnits(a), 1, "mixes Ps and Ns identifiers")
}

// TestUnitsTypedSimTimeRules pins the typed-only rules: adding or
// multiplying two absolute sim.Time stamps is flagged, the kernel's own
// `t + Time(d)` saturating-add idiom stays legal, and a typed sim.Ps
// value keeps its unit through a transparent int64() conversion.
func TestUnitsTypedSimTimeRules(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

type Time int64
type Duration int64
type Ps int64

func bad1(t1, t2 Time) Time { return t1 + t2 }
func bad2(t1, t2 Time) Time { return t1 * t2 }
func ok1(t Time, d Duration) Time { return t + Time(d) }
func mix(aNs int64, p Ps) int64 { return aNs + int64(p) }`,
	})
	assertFindings(t, checkUnits(a), 3,
		"adds two sim.Time values",
		"multiplies two sim.Time values",
		"mixes Ns and Ps identifiers")
}

func TestPurityLoopCaptureAndGlobalWrite(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

type Sim struct{}
func (s *Sim) After(d int64, fn func()) {}

var totalDrops int

func Run(s *Sim, names []string) {
	for i, name := range names {
		s.After(1, func() {
			_ = i        // loop-var capture
			_ = name     // loop-var capture
			totalDrops++ // package-level mutation
		})
	}
	count := 0
	for j := 0; j < 3; j++ {
		jj := j
		s.After(1, func() {
			_ = jj  // explicit copy: fine
			count++ // local capture: fine
		})
	}
	_ = count
}`,
	})
	assertFindings(t, checkPurity(a), 3,
		`captures loop variable "i"`, `captures loop variable "name"`,
		`mutates package-level state "totalDrops"`)
}

func TestPurityOutsideSimSetIgnored(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/tool/t.go": `package tool

type Q struct{}
func (q *Q) After(d int64, fn func()) {}

var n int

func Run(q *Q) {
	for i := 0; i < 3; i++ {
		q.After(1, func() { n += i })
	}
}`,
	})
	assertFindings(t, checkPurity(a), 0)
}

// TestPurityTypedRequiresModuleSink pins a typed-mode hardening: a
// same-named method on a stdlib type must not register as a scheduling
// sink.
func TestPurityTypedRequiresModuleSink(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim
import "container/list"

var total int

func Run(l *list.List) {
	// list.List has no After(func()) shape; use a local type that is
	// not from this module via an interface value.
	for i := 0; i < 3; i++ {
		l.PushBack(func() { total += i })
	}
}`,
	})
	assertFindings(t, checkPurity(a), 0)
}

func TestLockOrderCycle(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func f(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func g(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}`,
	})
	assertFindings(t, checkLockOrder(a), 1, "lock-order cycle A.mu -> B.mu")
}

func TestLockOrderNoCycleWhenConsistent(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func f(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func g(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}`,
	})
	assertFindings(t, checkLockOrder(a), 0)
}

func TestLockOrderReentrantExportedMethod(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Sum deadlocks: it calls Get with s.mu held, and Get re-acquires.
func (s *S) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Get() + 1
}

// Ok releases before calling back in.
func (s *S) Ok() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n + s.Get()
}`,
	})
	assertFindings(t, checkLockOrder(a), 1,
		"Sum calls exported method Get while holding S.mu")
}

func TestLockOrderReentrantTransitive(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) helper() int { return s.Probe() }

func (s *S) Probe() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Bad reaches Probe through helper with the lock held.
func (s *S) Bad() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.helper()
}`,
	})
	assertFindings(t, checkLockOrder(a), 1, "Bad calls function helper while holding S.mu")
}

func TestLockOrderDoubleAcquire(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Bad() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}`,
	})
	assertFindings(t, checkLockOrder(a), 1, "acquires S.mu while already holding it")
}

func TestHotAllocFlagsIdiomsAndAllowsNonAllocating(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

import "fmt"

type store struct{ m map[string]int }

//kv3d:hotpath
func (s *store) Hot(b []byte, name string) string {
	msg := fmt.Sprintf("k=%d", len(b)) // flagged: fmt on hot path
	key := string(b)                   // flagged: allocating conversion
	_ = key
	var acc []int
	acc = append(acc, len(b)) // flagged: growth from zero capacity
	fn := func() int { return len(acc) } // flagged: capturing closure
	_ = fn
	sink(len(b)) // flagged: boxes int into any
	if s.m[string(b)] > 0 { // allowed: map-index conversion
		return msg
	}
	if name == string(b) { // allowed: comparison conversion
		return msg
	}
	switch string(b) { // allowed: switch-tag conversion
	case "get":
		return msg
	}
	return msg
}

//kv3d:hotpath
func HotErr(b []byte) error {
	if err := validate(b); err != nil {
		return fmt.Errorf("bad frame: %w", err) // allowed: error path is cold
	}
	return nil
}

func validate(b []byte) error { return nil }

func sink(v any) {}

// Unannotated functions may allocate freely.
func Cold(b []byte) string { return fmt.Sprintf("%d", len(b)) }`,
	})
	assertFindings(t, checkHotAlloc(a), 5,
		"fmt.Sprintf allocates",
		"[]byte -> string conversion copies",
		`append grows "acc" from zero capacity`,
		`closure captures "acc"`,
		"boxing int into interface parameter")
}

func TestHotAllocScratchBufferReuseAllowed(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

type w struct{ scratch []byte }

//kv3d:hotpath
func (x *w) Render(n byte) []byte {
	x.scratch = append(x.scratch[:0], 'v', n) // allowed: receiver-owned scratch
	sized := make([]byte, 0, 8)
	sized = append(sized, n) // allowed: capacity chosen explicitly
	return sized
}`,
	})
	assertFindings(t, checkHotAlloc(a), 0)
}

func TestHotAllocBatchedLookupShapeAllowed(t *testing.T) {
	// The GetBatchInto idiom: grouping state lives in a caller-owned
	// scratch struct that a cold, unannotated grow() sizes; the hot
	// function only reslices scratch fields and appends into the
	// caller-owned destination. None of that may be flagged — but a
	// careless variant that groups into a bare local slice must be.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

type scratch struct {
	order  []int32
	counts []int32
}

// grow is cold setup: allocating here is fine.
func (s *scratch) grow(n, shards int) {
	if cap(s.order) < n {
		s.order = make([]int32, n)
	}
	if cap(s.counts) < shards {
		s.counts = make([]int32, shards)
	}
}

//kv3d:hotpath
func BatchLookup(dst []byte, keys [][]byte, scr *scratch) []byte {
	scr.grow(len(keys), 8)
	order := scr.order[:len(keys)]  // allowed: reslicing scratch
	counts := scr.counts[:8]        // allowed: reslicing scratch
	for i := range counts {
		counts[i] = 0
	}
	for i, k := range keys {
		order[i] = int32(len(k) % len(counts))
	}
	for _, ki := range order {
		dst = append(dst, byte(ki)) // allowed: caller-owned destination
	}
	return dst
}

//kv3d:hotpath
func BatchLookupSloppy(keys [][]byte) []int32 {
	var order []int32
	for i := range keys {
		order = append(order, int32(i)) // flagged: regrows per call
	}
	return order
}`,
	})
	assertFindings(t, checkHotAlloc(a), 1,
		`append grows "order" from zero capacity`)
}

func TestErrDropIgnoredVsHandled(t *testing.T) {
	a := writeModule(t, map[string]string{
		"internal/obs/obs.go": `package obs
import "io"
func WriteProm(w io.Writer) error { _, err := w.Write(nil); return err }`,
		"pkg/s.go": `package pkg

import (
	"bufio"
	"net"

	"fake/internal/obs"
)

func bad(w *bufio.Writer, c net.Conn) {
	w.Flush()          // drop
	_ = w.Flush()      // drop
	defer w.Flush()    // drop
	c.Write(nil)       // drop
	w.WriteString("x") // allowed: sticky-error idiom
	obs.WriteProm(w)   // drop
}

func good(w *bufio.Writer, c net.Conn) error {
	if err := w.Flush(); err != nil {
		return err
	}
	if _, err := c.Write([]byte("x")); err != nil {
		return err
	}
	return obs.WriteProm(w)
}`,
	})
	assertFindings(t, checkErrDrop(a), 5,
		"bufio Flush", "net connection Write", "obs renderer WriteProm",
		"discarded by defer", "assigned to _")
}

// TestDepOnlyPackagesTypedButNotLinted checks that packages pulled in
// only as dependencies of the lint targets are type-checked (the
// target would not resolve otherwise) yet produce no findings.
func TestDepOnlyPackagesTypedButNotLinted(t *testing.T) {
	root := writeModuleFiles(t, map[string]string{
		"pkg/a.go": `package pkg
import "fake/dep"
var _ = dep.New`,
		"dep/d.go": `package dep
import "sync"

type D struct {
	mu sync.Mutex
	n  int
}

func New() *D { return &D{} }

// Unguarded access: would be a lockcheck finding if dep were a target.
func (d *D) Bad() int { return d.n }`,
	})
	a, err := load(root, []string{"./pkg"}, modeTyped)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	dep, ok := a.pkgs["fake/dep"]
	if !ok || !dep.depOnly {
		t.Fatalf("fake/dep not loaded as dependency: %+v", a.pkgs)
	}
	if dep.types == nil {
		t.Fatal("dependency package was not type-checked")
	}
	assertFindings(t, checkLocks(a), 0)
}

func TestModulePatternExpansion(t *testing.T) {
	a := writeModuleMode(t, map[string]string{
		"pkg/a.go":         `package pkg`,
		"pkg/sub/b.go":     `package sub`,
		"testdata/skip.go": `package skip`,
	}, modeAST)
	if len(a.pkgs) != 2 {
		t.Fatalf("got %d packages, want 2 (testdata skipped): %v", len(a.pkgs), a.pkgs)
	}
}
