package main

import (
	"strings"
	"testing"
)

// The poolsafe fixtures cover the three ways a pooled value's
// lifetime can be bent — use-after-Put, double-Put, Put-of-escaped —
// plus the clean Get/use/Put shape and the rebind that resets facts.

func TestPoolSafeFlagsUseAfterPut(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

var bufs = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func Handle() byte {
	b := bufs.Get().([]byte)
	b = append(b, 'x')
	bufs.Put(b)
	return b[0]
}
`,
	})
	assertFindings(t, checkPoolSafe(a), 1, "poolsafe/useafterput", `"b"`)
}

func TestPoolSafeFlagsDoublePut(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

var bufs sync.Pool

func Handle(fail bool) {
	b := bufs.Get()
	if fail {
		bufs.Put(b)
	}
	bufs.Put(b)
}
`,
	})
	assertFindings(t, checkPoolSafe(a), 1, "poolsafe/doubleput", `"b"`)
}

func TestPoolSafeFlagsPutOfEscapedValue(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

var bufs sync.Pool

type server struct {
	scratch any
}

func (s *server) Handle() {
	b := bufs.Get()
	s.scratch = b
	bufs.Put(b)
}
`,
	})
	assertFindings(t, checkPoolSafe(a), 1, "poolsafe/escapedput", `"b"`, "stored into a shared structure")
}

func TestPoolSafeFlagsPutAfterChannelSend(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

var bufs sync.Pool
var ch = make(chan any, 1)

func Handle() {
	b := bufs.Get()
	ch <- b
	bufs.Put(b)
}
`,
	})
	assertFindings(t, checkPoolSafe(a), 1, "poolsafe/escapedput", "sent on a channel")
}

func TestPoolSafeCleanLifecycleAndRebind(t *testing.T) {
	// Get/use/Put is the legal shape; after a rebind (a fresh Get into
	// the same name) the old facts must not carry over.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

var bufs = sync.Pool{New: func() any { return new([64]byte) }}

func Handle() byte {
	b := bufs.Get().(*[64]byte)
	v := b[0]
	bufs.Put(b)
	b = bufs.Get().(*[64]byte)
	v += b[1]
	bufs.Put(b)
	return v
}
`,
	})
	assertFindings(t, checkPoolSafe(a), 0)
}

func TestPoolSafeBranchMergeIsMay(t *testing.T) {
	// Put on one branch only: the use after the join may see a pooled
	// value — the union meet must keep the fact.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

var bufs sync.Pool

func Handle(done bool) any {
	b := bufs.Get()
	if done {
		bufs.Put(b)
	}
	return b
}
`,
	})
	assertFindings(t, checkPoolSafe(a), 1, "poolsafe/useafterput")
}

// TestPoolSafeRepoIsClean: no sync.Pool in the tree today; the ratchet
// exists so the first pooled scratch (ROADMAP item 2) lands checked.
func TestPoolSafeRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	a, err := load("../..", []string{"./..."}, modeTyped)
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	fs := applyNolint(a, checkPoolSafe(a))
	if len(fs) != 0 {
		t.Fatalf("poolsafe findings on the tree:\n%s", strings.Join(msgs(fs), "\n"))
	}
}
