package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkBufOwn is the v4 buffer-ownership escape analysis. The zero-copy
// hot path hands slices around on loan: GetIntoBytes returns a view of
// the caller's dst, ParseUDPRequest's payload aliases the read buffer,
// the ASCII session tokenizes commands into views of its line buffer.
// The contract behind every one of those signatures is "use it now,
// don't keep it" — a borrowed buffer retained past the call dangles the
// moment its owner reuses the backing array, which is precisely the bug
// -race cannot see (same goroutine, no lock involved) and the alloc
// gates cannot see (the copy that would have made it safe is the
// allocation they forbid).
//
// A parameter is *borrowed* when
//
//   - the function's doc comment carries `//kv3d:borrowed <param>...`
//     (bare `//kv3d:borrowed` marks every slice parameter), or
//   - the function is `//kv3d:hotpath`-annotated and the parameter is a
//     slice — hot-path slice params are loans by construction (dst/out
//     scratch, parse-buffer views).
//
// The check runs a forward may-analysis (mayFlow, union meet) over the
// function's CFG tracking which locals *may alias* a borrowed param's
// backing memory. Aliases propagate through assignment, slicing,
// `append` to the borrowed slice itself (the result may share the
// backing array), element loads whose element type shares memory
// ([][]byte rows), composite literals, and calls to `//kv3d:aliases`-
// annotated functions (the result aliases the named params; a bare
// annotation means any argument or the receiver). They do NOT
// propagate through `string(b)` conversions, `copy`, or byte-element
// `append(dst, src...)` — those copy the bytes out.
//
// Flagged (bufown/retain): a may-aliasing value stored into a struct
// field, package variable, or an index into either; sent on a channel;
// passed to or captured by a `go` statement. Flagged (bufown/return):
// returning a may-aliasing value from a function not annotated
// `//kv3d:aliases` — the annotation is the contract that makes the
// aliasing part of the signature, and it is what lets callers'
// analyses see the loan continue.
//
// Known limitations, by design: aliasing is tracked per named local —
// a borrowed slice smuggled through a local struct's field and stored
// from there is missed; calls to unannotated functions are assumed not
// to retain their arguments (annotate the callee or the analysis
// cannot know); synchronous-callback literals are not scanned with the
// caller's taint. The check is a ratchet over the annotated surface,
// not an escape-analysis prover.
//
// Typed mode only.

// boSource records why a local may alias borrowed memory: the borrowed
// parameter it derives from.
type boSource struct {
	param string
}

// boCtx is the per-function state of one bufown scan.
type boCtx struct {
	a        *analysis
	pkg      *pkgInfo
	fd       *ast.FuncDecl
	cfg      *funcCFG
	parents  map[ast.Node]ast.Node
	borrowed map[*types.Var]string // param object -> param name
	aliases  bool                  // function carries //kv3d:aliases
	findings []finding
	seen     map[token.Pos]bool
}

func checkBufOwn(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		for _, pf := range pkg.files {
			for _, decl := range pf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, bufownFunc(a, pkg, fd)...)
			}
		}
	}
	return out
}

// funcDirective scans a declaration's doc comment for a `//kv3d:<name>`
// line, returning whether it is present and the space-separated
// arguments after it.
func funcDirective(fd *ast.FuncDecl, name string) (bool, []string) {
	if fd.Doc == nil {
		return false, nil
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "kv3d:"+name {
			return true, nil
		}
		if rest, ok := strings.CutPrefix(text, "kv3d:"+name+" "); ok {
			return true, strings.Fields(rest)
		}
	}
	return false, nil
}

// borrowedParams resolves the borrowed-parameter set of a declaration:
// explicit //kv3d:borrowed names, plus every slice parameter of a
// //kv3d:hotpath function. The receiver is never borrowed — a method
// retaining state in its own receiver is ownership, not a loan.
func borrowedParams(a *analysis, fd *ast.FuncDecl) (map[*types.Var]string, []finding) {
	out := map[*types.Var]string{}
	var fs []finding
	params := map[string]*types.Var{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, id := range field.Names {
				if v, ok := a.info.Defs[id].(*types.Var); ok {
					params[id.Name] = v
				}
			}
		}
	}
	isSlice := func(v *types.Var) bool {
		_, ok := v.Type().Underlying().(*types.Slice)
		return ok
	}
	if ann, names := funcDirective(fd, "borrowed"); ann {
		if len(names) == 0 {
			for name, v := range params {
				if isSlice(v) {
					out[v] = name
				}
			}
		}
		for _, name := range names {
			v, ok := params[name]
			if !ok {
				fs = append(fs, finding{
					pos:   a.fset.Position(fd.Name.Pos()),
					check: "bufown/annotation",
					msg:   fmt.Sprintf("kv3d:borrowed names %q, which is not a parameter of %s", name, fd.Name.Name),
				})
				continue
			}
			out[v] = name
		}
	}
	if isHotPath(fd) {
		for name, v := range params {
			if isSlice(v) {
				out[v] = name
			}
		}
	}
	return out, fs
}

// aliasesContract resolves a declaration's //kv3d:aliases annotation:
// present, and the parameter names the results may alias (empty = any
// argument or the receiver).
func aliasesContract(fd *ast.FuncDecl) (bool, map[string]bool) {
	ann, names := funcDirective(fd, "aliases")
	if !ann {
		return false, nil
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return true, set
}

func bufownFunc(a *analysis, pkg *pkgInfo, fd *ast.FuncDecl) []finding {
	borrowed, fs := borrowedParams(a, fd)
	if len(borrowed) == 0 {
		return fs
	}
	ann, _ := aliasesContract(fd)
	c := &boCtx{
		a: a, pkg: pkg, fd: fd,
		cfg:      buildCFG(fd.Body),
		parents:  buildParentMap(fd),
		borrowed: borrowed,
		aliases:  ann,
		findings: fs,
		seen:     map[token.Pos]bool{},
	}
	entry := map[*types.Var]boSource{}
	for v, name := range borrowed {
		entry[v] = boSource{param: name}
	}
	in := mayFlow(c.cfg, entry, func(b int, s map[*types.Var]boSource) map[*types.Var]boSource {
		return c.transferBlock(b, s, false)
	})
	for _, blk := range c.cfg.blocks {
		c.transferBlock(blk.index, in[blk.index], true)
	}
	return c.findings
}

// transferBlock applies one block's taint effects to the incoming
// state, reporting sink violations when flag is set (the post-fixpoint
// replay).
func (c *boCtx) transferBlock(b int, in map[*types.Var]boSource, flag bool) map[*types.Var]boSource {
	s := make(map[*types.Var]boSource, len(in))
	for k, v := range in {
		s[k] = v
	}
	for _, n := range c.cfg.blocks[b].nodes {
		c.transferNode(n.node, s, flag && !n.deferred)
	}
	return s
}

func (c *boCtx) transferNode(node ast.Node, s map[*types.Var]boSource, flag bool) {
	switch v := node.(type) {
	case *ast.GoStmt:
		if !flag {
			return
		}
		if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
			for _, cap := range c.capturedVars(lit) {
				if src, ok := s[cap]; ok {
					c.report(v.Pos(), "bufown/retain", fmt.Sprintf(
						"%q (aliasing borrowed %q) is captured by a go statement — the goroutine outlives the loan; copy the bytes first",
						cap.Name(), src.param))
				}
			}
		}
		for _, arg := range v.Call.Args {
			if src := c.taintOf(arg, s); src != nil {
				c.report(v.Pos(), "bufown/retain", fmt.Sprintf(
					"borrowed %q is passed to a goroutine — it outlives the call it was loaned for; copy the bytes first", src.param))
			}
		}
		return
	case *ast.SendStmt:
		if flag {
			if src := c.taintOf(v.Value, s); src != nil {
				c.report(v.Pos(), "bufown/retain", fmt.Sprintf(
					"borrowed %q is sent on a channel — the receiver outlives the loan; copy the bytes first", src.param))
			}
		}
		return
	case *ast.ReturnStmt:
		if flag && !c.aliases {
			for _, res := range v.Results {
				if src := c.taintOf(res, s); src != nil {
					c.report(res.Pos(), "bufown/return", fmt.Sprintf(
						"%s returns a slice aliasing borrowed %q; declare the contract with `//kv3d:aliases %s` or copy the bytes",
						c.fd.Name.Name, src.param, src.param))
				}
			}
		}
		return
	}

	// A range statement's CFG node is its X expression; the iteration
	// variable aliases X's rows when the element type shares memory
	// (ranging a [][]byte of borrowed tokens).
	if e, ok := node.(ast.Expr); ok {
		if rs, ok := c.parents[e].(*ast.RangeStmt); ok && rs.X == e && rs.Value != nil {
			if lv := c.localOf(rs.Value); lv != nil {
				delete(s, lv)
				if sharesMemory(lv.Type()) {
					if src := c.taintOf(e, s); src != nil {
						s[lv] = *src
					}
				}
			}
		}
	}

	scanSkippingLits(node, func(m ast.Node) {
		switch v := m.(type) {
		case *ast.AssignStmt:
			c.assign(v, s, flag)
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					lv, _ := c.a.info.Defs[id].(*types.Var)
					if lv == nil {
						continue
					}
					delete(s, lv)
					if i < len(vs.Values) {
						if src := c.taintOf(vs.Values[i], s); src != nil {
							s[lv] = *src
						}
					}
				}
			}
		}
	})
}

// assign processes one assignment statement: kills and re-establishes
// local taints, and reports stores of tainted values into shared sinks.
func (c *boCtx) assign(v *ast.AssignStmt, s map[*types.Var]boSource, flag bool) {
	// Pair each LHS with the taint of its RHS. A multi-value call RHS
	// (x, y := f(...)) taints every result identically.
	taints := make([]*boSource, len(v.Lhs))
	if len(v.Rhs) == 1 && len(v.Lhs) > 1 {
		t := c.taintOf(v.Rhs[0], s)
		for i := range taints {
			taints[i] = t
		}
	} else {
		for i := range v.Lhs {
			if i < len(v.Rhs) {
				taints[i] = c.taintOf(v.Rhs[i], s)
			}
		}
	}
	for i, lhs := range v.Lhs {
		lhs = ast.Unparen(lhs)
		if lv := c.localOf(lhs); lv != nil {
			// Compound assigns (x += ...) keep x's identity; plain
			// assigns rebind. Either way the new taint is the RHS's —
			// for the one compound form that matters on slices
			// (x = append(x, ...)) taintOf already handled it.
			delete(s, lv)
			if taints[i] != nil {
				s[lv] = *taints[i]
			}
			continue
		}
		if flag && taints[i] != nil && c.isSharedSink(lhs) {
			c.report(lhs.Pos(), "bufown/retain", fmt.Sprintf(
				"borrowed %q is retained in %s — the loan ends when %s returns; copy the bytes or annotate the contract",
				taints[i].param, sinkDesc(c.a, lhs), c.fd.Name.Name))
		}
	}
}

// taintOf computes whether evaluating an expression may yield a value
// aliasing borrowed memory, and which parameter it derives from.
func (c *boCtx) taintOf(e ast.Expr, s map[*types.Var]boSource) *boSource {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		lv := c.localOf(v)
		if lv == nil {
			return nil
		}
		if name, ok := c.borrowed[lv]; ok {
			return &boSource{param: name}
		}
		if src, ok := s[lv]; ok {
			return &src
		}
		return nil
	case *ast.SliceExpr:
		return c.taintOf(v.X, s)
	case *ast.IndexExpr:
		// Loading an element only aliases when the element itself
		// shares memory (a [][]byte row); b[i] on []byte is a byte copy.
		if t := c.a.info.Types[e].Type; t != nil && sharesMemory(t) {
			return c.taintOf(v.X, s)
		}
		return nil
	case *ast.StarExpr:
		return c.taintOf(v.X, s)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return c.taintOf(v.X, s)
		}
		return nil
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if src := c.taintOf(el, s); src != nil {
				return src
			}
		}
		return nil
	case *ast.CallExpr:
		return c.callTaint(v, s)
	}
	return nil
}

// callTaint decides whether a call's results may alias borrowed memory:
// append on a tainted slice (or growing a slice whose sharing elements
// are tainted), and calls to //kv3d:aliases-annotated functions fed
// tainted arguments. A `string(b)` conversion and `copy` launder the
// taint by copying; every other call is assumed non-retaining (the
// documented limitation — annotate the callee to say otherwise).
func (c *boCtx) callTaint(call *ast.CallExpr, s map[*types.Var]boSource) *boSource {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := c.a.info.Uses[id].(*types.Builtin); isBuiltin {
			if len(call.Args) == 0 {
				return nil
			}
			if src := c.taintOf(call.Args[0], s); src != nil {
				return src // result may share the borrowed backing array
			}
			// Growing another slice with tainted *sharing* elements
			// ([][]byte gaining a borrowed row) retains them; byte
			// appends copy.
			t := c.a.info.Types[call.Args[0]].Type
			if t == nil {
				return nil
			}
			st, _ := t.Underlying().(*types.Slice)
			if st == nil || !sharesMemory(st.Elem()) {
				return nil
			}
			for _, arg := range call.Args[1:] {
				if src := c.taintOf(arg, s); src != nil {
					return src
				}
			}
			return nil
		}
	}
	// Conversions ([]byte(x), T(x)): a []byte(string) conversion copies;
	// a defined-slice-type conversion aliases its operand.
	if tv, ok := c.a.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
			if base := c.a.info.Types[call.Args[0]].Type; base != nil {
				if _, fromSlice := base.Underlying().(*types.Slice); fromSlice {
					return c.taintOf(call.Args[0], s)
				}
			}
		}
		return nil
	}
	fn := c.a.calleeFunc(call)
	if fn == nil {
		return nil
	}
	decl := c.a.funcDecls()[fn]
	if decl == nil {
		return nil
	}
	ann, named := aliasesContract(decl)
	if !ann {
		return nil
	}
	// Map declared parameter names to this call's arguments.
	var argIdx int
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, id := range field.Names {
				if argIdx >= len(call.Args) {
					break
				}
				arg := call.Args[argIdx]
				argIdx++
				if len(named) > 0 && !named[id.Name] {
					continue
				}
				if src := c.taintOf(arg, s); src != nil {
					return src
				}
			}
		}
	}
	// Bare //kv3d:aliases also covers the receiver (method returning a
	// view of receiver state): a tainted receiver taints the results.
	if len(named) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if src := c.taintOf(sel.X, s); src != nil {
				return src
			}
		}
	}
	return nil
}

// localOf resolves an identifier to a function-local variable or
// parameter (not a field, not package scope).
func (c *boCtx) localOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := c.a.info.Uses[id].(*types.Var)
	if !ok {
		v, ok = c.a.info.Defs[id].(*types.Var)
	}
	if !ok || v == nil || v.IsField() {
		return nil
	}
	if v.Pos() < c.fd.Pos() || v.Pos() > c.fd.End() {
		return nil // package-level
	}
	return v
}

// isSharedSink reports LHS positions that outlive the call: struct
// fields, package-level variables, and indexes/dereferences rooted in
// either.
func (c *boCtx) isSharedSink(lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel := c.a.info.Selections[v]
		return sel != nil && sel.Kind() == types.FieldVal
	case *ast.IndexExpr:
		if c.localOf(v.X) != nil {
			return false // local container; its own escape is tracked separately
		}
		return c.isSharedSink(v.X) || c.isPkgVar(v.X)
	case *ast.StarExpr:
		return c.localOf(v.X) == nil
	case *ast.Ident:
		return c.isPkgVar(v)
	}
	return false
}

func (c *boCtx) isPkgVar(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := c.a.info.Uses[id].(*types.Var)
	return ok && !obj.IsField() && obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// capturedVars lists the enclosing function's locals and parameters a
// literal's body references — unlike syncguard's capturedLocals, the
// parameters count: they are exactly the borrowed values.
func (c *boCtx) capturedVars(lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.a.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= c.fd.Pos() && v.Pos() <= c.fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// sinkDesc names a sink for the finding message.
func sinkDesc(a *analysis, lhs ast.Expr) string {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return fmt.Sprintf("field %s", v.Sel.Name)
	case *ast.IndexExpr:
		return "an element of a shared structure"
	case *ast.Ident:
		return fmt.Sprintf("package variable %s", v.Name)
	}
	return "a shared structure"
}

func (c *boCtx) report(pos token.Pos, check, msg string) {
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	c.findings = append(c.findings, finding{pos: c.a.fset.Position(pos), check: check, msg: msg})
}
