package main

import (
	"strings"
	"testing"
)

// Exit-code contract: 0 clean, 1 findings, 2 internal error. CI's
// ratchet steps depend on the 1/2 split to tell "dirty tree" from
// "linter broke" — a loader failure must never read as a clean pass or
// masquerade as a finding.

func TestRunExitCodeCleanIsZero(t *testing.T) {
	root := writeModuleFiles(t, map[string]string{
		"pkg/p.go": "package pkg\n",
	})
	var out, errb strings.Builder
	if code := run(root, []string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("clean module: run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("clean summary missing from output: %q", out.String())
	}
}

func TestRunExitCodeFindingsIsOne(t *testing.T) {
	// A reasonless nolint is the cheapest guaranteed finding.
	root := writeModuleFiles(t, map[string]string{
		"pkg/p.go": "package pkg\n\nvar x = 1 //nolint:kv3d\n",
	})
	var out, errb strings.Builder
	if code := run(root, []string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("dirty module: run = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[nolint]") {
		t.Fatalf("finding missing from output: %q", out.String())
	}
}

func TestRunExitCodeInternalErrorIsTwo(t *testing.T) {
	var out, errb strings.Builder

	// Unknown flag.
	if code := run(t.TempDir(), []string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: run = %d, want 2", code)
	}
	// Bad -mode value.
	if code := run(t.TempDir(), []string{"-mode=bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad mode: run = %d, want 2", code)
	}
	// Loader failure: a module whose source does not parse.
	root := writeModuleFiles(t, map[string]string{
		"pkg/p.go": "package\n",
	})
	out.Reset()
	errb.Reset()
	if code := run(root, []string{"./..."}, &out, &errb); code != 2 {
		t.Fatalf("broken module: run = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "kv3d-lint:") {
		t.Fatalf("loader error missing from stderr: %q", errb.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	root := writeModuleFiles(t, map[string]string{
		"pkg/p.go": "package pkg\n\nvar x = 1 //nolint:kv3d\n",
	})
	var out, errb strings.Builder
	if code := run(root, []string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(out.String(), `"check":"nolint"`) {
		t.Fatalf("json finding missing: %q", out.String())
	}
	// The human summary line must not pollute -json output.
	if strings.Contains(out.String(), "finding(s)") {
		t.Fatalf("summary leaked into json output: %q", out.String())
	}
}
