package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkLifecycle ties every `go` statement to a stop signal. A
// goroutine with no path to termination is a leak the runtime never
// reports: the server "passes" every functional test and then ages out
// of its memory budget in production — fatal for a density argument
// measured in TPS/GB. Two findings:
//
//	lifecycle/untied      the spawned body has no visible stop signal:
//	                      no channel receive or select, no
//	                      context.Context in scope, no WaitGroup
//	                      Done/Wait pairing, no blocking Read/Accept on
//	                      a net conn that an owner's Close can unstick,
//	                      and no Close/Stop/Shutdown on the receiver of
//	                      an unresolvable callee.
//	lifecycle/spawnloop   `go` inside an infinite `for { ... }` with no
//	                      in-flight bound in the loop body (no
//	                      WaitGroup.Add, no channel send/receive acting
//	                      as a semaphore): the spawn rate is unbounded
//	                      even if each goroutine individually exits.
//
// The tie test is syntactic over the spawned body (function literal,
// or the resolved module callee via the funcDecls index, recursing one
// level into module callees). Cross-module callees we cannot see into
// are given the benefit of the doubt only when the call site itself
// carries a lifecycle handle: a context.Context or net-package-typed
// argument, or a receiver whose type exposes Close/Stop/Shutdown.
//
// Typed mode only.

const lcMaxDepth = 2 // spawned body + one level of module callees

type lcCtx struct {
	a     *analysis
	decls map[*types.Func]*ast.FuncDecl
}

func checkLifecycle(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	c := &lcCtx{a: a, decls: a.funcDecls()}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		for _, pf := range pkg.files {
			parents := buildParentMap(pf.ast)
			ast.Inspect(pf.ast, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if why, tied := c.tied(gs); !tied {
					out = append(out, finding{
						pos:   a.fset.Position(gs.Pos()),
						check: "lifecycle/untied",
						msg: fmt.Sprintf("goroutine is not tied to a stop signal (%s); "+
							"it needs a done channel, context, WaitGroup pairing, or an owner Close path", why),
					})
				}
				if loop := enclosingInfiniteFor(parents, gs); loop != nil && !loopBounded(c.a, loop, gs) {
					out = append(out, finding{
						pos:   a.fset.Position(gs.Pos()),
						check: "lifecycle/spawnloop",
						msg: "unbounded spawn loop: `go` inside `for {}` with no in-flight bound " +
							"(no WaitGroup.Add or semaphore channel op in the loop body)",
					})
				}
				return true
			})
		}
	}
	return out
}

// tied decides whether a go statement has a visible stop signal. The
// returned reason describes what was looked at, for the finding text.
func (c *lcCtx) tied(gs *ast.GoStmt) (why string, ok bool) {
	// A lifecycle handle passed at the call site ties the goroutine
	// regardless of whether we can see the body.
	for _, arg := range gs.Call.Args {
		if isLifecycleHandle(c.a.info.Types[arg].Type) {
			return "", true
		}
	}

	fun := ast.Unparen(gs.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if c.bodyTied(lit.Body, lcMaxDepth) {
			return "", true
		}
		return "function literal body has none", false
	}

	fn := c.a.calleeFunc(gs.Call)
	if fn == nil {
		// Dynamic call (func value): we cannot see a body; require a
		// handle among the args, which was already checked above.
		return "dynamic callee with no context or conn argument", false
	}
	if decl, ok := c.decls[fn]; ok && decl.Body != nil {
		if c.bodyTied(decl.Body, lcMaxDepth) {
			return "", true
		}
		return fmt.Sprintf("body of %s has none", fn.Name()), false
	}
	// Cross-module callee: tied if the receiver's type exposes a
	// shutdown surface the owner can drive.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if hasStopMethod(sig.Recv().Type()) {
			return "", true
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if t := c.a.info.Types[sel.X].Type; t != nil && hasStopMethod(t) {
			return "", true
		}
	}
	return fmt.Sprintf("cannot see into %s and no lifecycle handle at the call site", fn.Name()), false
}

// bodyTied reports whether a spawned body contains a stop signal,
// recursing up to depth levels into module callees.
func (c *lcCtx) bodyTied(body ast.Node, depth int) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				tied = true // blocking channel receive (done/stop channel)
			}
		case *ast.SelectStmt:
			tied = true
		case *ast.RangeStmt:
			if t := c.a.info.Types[v.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.Ident:
			if obj, ok := c.a.info.Uses[v].(*types.Var); ok && isContextType(obj.Type()) {
				tied = true
			}
		case *ast.SelectorExpr:
			if t := c.a.info.Types[v].Type; t != nil && isContextType(t) {
				tied = true
			}
		case *ast.CallExpr:
			// A conn, listener, or context handed to any call inside
			// the body is a lifecycle handle (http.Serve(ln, mux) is
			// stopped by the owner's ln.Close()).
			for _, arg := range v.Args {
				if isLifecycleHandle(c.a.info.Types[arg].Type) {
					tied = true
					return false
				}
			}
			fn := c.a.calleeFunc(v)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				rt := sig.Recv().Type()
				// WaitGroup pairing: the spawner Waits, so Done ties.
				if isSyncWaitGroup(rt) && (fn.Name() == "Done" || fn.Name() == "Wait") {
					tied = true
					return false
				}
				// A blocking Read/Accept on a net conn or listener is
				// unstuck by the owner's Close — the canonical shutdown
				// path for accept/read loops.
				if isNetPkgType(rt) && (strings.HasPrefix(fn.Name(), "Read") || strings.HasPrefix(fn.Name(), "Accept")) {
					tied = true
					return false
				}
			}
			if depth > 1 {
				if decl, ok := c.decls[fn]; ok && decl.Body != nil && c.bodyTied(decl.Body, depth-1) {
					tied = true
					return false
				}
			}
		}
		return true
	})
	return tied
}

// enclosingInfiniteFor walks up from the go statement to the nearest
// enclosing `for` with no condition, stopping at function boundaries.
func enclosingInfiniteFor(parents map[ast.Node]ast.Node, gs *ast.GoStmt) *ast.ForStmt {
	for n := parents[ast.Node(gs)]; n != nil; n = parents[n] {
		switch v := n.(type) {
		case *ast.ForStmt:
			if v.Cond == nil {
				return v
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// loopBounded reports whether the loop body establishes an in-flight
// bound for the spawn: a WaitGroup.Add (owner can drain) or a channel
// send/receive outside the go statement itself (semaphore shape).
func loopBounded(a *analysis, loop *ast.ForStmt, gs *ast.GoStmt) bool {
	bounded := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if bounded || n == ast.Node(gs) {
			return !bounded && n != ast.Node(gs)
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			bounded = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				bounded = true
			}
		case *ast.CallExpr:
			if fn := a.calleeFunc(v); fn != nil && fn.Name() == "Add" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isSyncWaitGroup(sig.Recv().Type()) {
					bounded = true
				}
			}
		}
		return !bounded
	})
	return bounded
}

// isLifecycleHandle reports whether a value of type t gives its
// receiver a stop signal: a context.Context, or a net conn/listener
// whose owner can Close it. A bare *net.UDPAddr is NOT a handle.
func isLifecycleHandle(t types.Type) bool {
	if t == nil {
		return false
	}
	return isContextType(t) || (isNetPkgType(t) && hasStopMethod(t))
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isNetPkgType reports whether t (or its pointee) is declared in
// package net — a conn or listener an owner can Close.
func isNetPkgType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// isSyncWaitGroup reports whether t (or its pointee) is sync.WaitGroup.
func isSyncWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// hasStopMethod reports whether t's method set (or its pointer's)
// includes Close, Stop, or Shutdown.
func hasStopMethod(t types.Type) bool {
	for _, name := range []string{"Close", "Stop", "Shutdown"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	if _, ok := t.(*types.Pointer); !ok {
		for _, name := range []string{"Close", "Stop", "Shutdown"} {
			if obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name); obj != nil {
				if _, ok := obj.(*types.Func); ok {
					return true
				}
			}
		}
	}
	return false
}
