package main

import (
	"strings"
	"testing"
)

// The syncguard fixtures follow the v2 pattern: each throwaway module
// reproduces one hit and one miss case per check, so a regression in
// either direction (lost detection or new false positive) fails here
// before it ever reaches the tree.

func TestSyncGuardInfersGuardedBy(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) Inc() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) Dec() {
	b.mu.Lock()
	b.n--
	b.mu.Unlock()
}

func (b *box) Peek() int { return b.n } // 2 guarded sites vs 1: flagged
`,
	})
	fs := checkSyncGuard(a)
	assertFindings(t, fs, 1, "box.n is accessed with box.mu held at 2 of 3 sites")
	if !strings.Contains(fs[0].msg, "kv3d:guardedby mu") {
		t.Errorf("finding should suggest the annotation spelling: %s", fs[0].msg)
	}
}

func TestSyncGuardMajorityRuleMisses(t *testing.T) {
	// One guarded site against one unguarded: below the K=2 threshold
	// and not a majority, so inference stays quiet.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) Inc() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) Peek() int { return b.n }
`,
	})
	assertFindings(t, checkSyncGuard(a), 0)
}

func TestSyncGuardImmutableFieldExempt(t *testing.T) {
	// A field written only during construction is immutable: reading it
	// both under and outside the lock is fine.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu   sync.Mutex
	mask int
	n    int
}

func New(mask int) *box { return &box{mask: mask} }

func (b *box) Inc() {
	b.mu.Lock()
	b.n += b.mask
	b.mu.Unlock()
}

func (b *box) Dec() {
	b.mu.Lock()
	b.n -= b.mask
	b.mu.Unlock()
}

func (b *box) Mask() int { return b.mask }
`,
	})
	assertFindings(t, checkSyncGuard(a), 0)
}

func TestSyncGuardAnnotationPinsGuard(t *testing.T) {
	// An explicit //kv3d:guardedby contract flags every unguarded
	// access, majority or not — and the constructor stays exempt.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int //kv3d:guardedby mu
}

func New() *box { b := &box{}; b.n = 1; return b }

func (b *box) Peek() int { return b.n }
`,
	})
	fs := checkSyncGuard(a)
	assertFindings(t, fs, 1, "box.n is annotated kv3d:guardedby box.mu")
}

func TestSyncGuardBranchMustHold(t *testing.T) {
	// The dataflow meet is intersection over paths: a lock acquired on
	// only one branch does not guard the join point.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) Inc() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) Dec() {
	b.mu.Lock()
	b.n--
	b.mu.Unlock()
}

func (b *box) Maybe(lock bool) int {
	if lock {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	return b.n
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 1, "this path holds no guard")
}

func TestSyncGuardInterproceduralEntryHeld(t *testing.T) {
	// An unexported helper called only with the lock held inherits the
	// held-set at its call sites, so its accesses count as guarded —
	// including a recursive helper (the slab-alloc shape).
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump()  { b.n++ }
func (b *box) drain() {
	if b.n > 0 {
		b.n--
		b.drain()
	}
}

func (b *box) Inc() {
	b.mu.Lock()
	b.bump()
	b.mu.Unlock()
}

func (b *box) Dec() {
	b.mu.Lock()
	b.drain()
	b.mu.Unlock()
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 0)
}

func TestSyncGuardEscapedHelperNotTrusted(t *testing.T) {
	// Taking the helper's method value makes it callable from anywhere:
	// its entry set must drop to empty and its access becomes the
	// unguarded minority site.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() { b.n++ }

func (b *box) Inc() {
	b.mu.Lock()
	b.bump()
	b.n++
	b.mu.Unlock()
}

func (b *box) Dec() {
	b.mu.Lock()
	b.n--
	b.mu.Unlock()
}

func (b *box) Escape() func() { return b.bump }
`,
	})
	assertFindings(t, checkSyncGuard(a), 1, "this path holds no guard")
}

func TestSyncGuardSyncCallbackInheritsLock(t *testing.T) {
	// A literal passed directly to a call (the table.forEach shape)
	// runs synchronously under the caller's locks; one launched with
	// `go` does not.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func forEach(n int, f func()) {
	for i := 0; i < n; i++ {
		f()
	}
}

func (b *box) Inc() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) Sum() {
	b.mu.Lock()
	forEach(3, func() { b.n++ })
	b.mu.Unlock()
}

func (b *box) Spawn() {
	b.mu.Lock()
	go func() { b.n++ }()
	b.mu.Unlock()
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 1, "this path holds no guard")
}

func TestSyncGuardAtomicMixedAccess(t *testing.T) {
	// Function-style atomics: a plain read of the same word races with
	// the atomic writers even when it happens under a mutex.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync/atomic"

type stats struct {
	hits uint64
}

func (s *stats) Hit()          { atomic.AddUint64(&s.hits, 1) }
func (s *stats) Load() uint64  { return atomic.LoadUint64(&s.hits) }
func (s *stats) Racy() uint64  { return s.hits }
`,
	})
	fs := checkSyncGuard(a)
	assertFindings(t, fs, 1, "managed with sync/atomic")
	if !strings.Contains(fs[0].msg, "read plainly") {
		t.Errorf("want plain-read wording, got: %s", fs[0].msg)
	}
}

func TestSyncGuardAtomicAnnotation(t *testing.T) {
	// //kv3d:atomic pins the contract even before any atomic call is
	// in the package (e.g. the ops live behind a build tag).
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

type stats struct {
	hits uint64 //kv3d:atomic
}

func New() *stats { return &stats{hits: 0} }

func (s *stats) Racy() { s.hits++ }
`,
	})
	assertFindings(t, checkSyncGuard(a), 1, "kv3d:atomic annotation")
}

func TestSyncGuardTypedAtomicPlainUse(t *testing.T) {
	// Typed atomics may only be touched through their methods; indexing
	// an array of them on the way to a method call is legal.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync/atomic"

type stats struct {
	n       atomic.Int64
	buckets [4]atomic.Int64
}

func (s *stats) Inc(i int)  { s.n.Add(1); s.buckets[i].Add(1) }
func (s *stats) Sum() int64 { return s.n.Load() }
func Steal(s *stats) {
	v := s.n
	_ = v
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 1, "atomic type")
}

func TestSyncGuardPublishThenMutate(t *testing.T) {
	// The canonical publication bug: hand a pointer to another
	// goroutine, then keep initializing it.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

type job struct{ n int }

func Launch(ch chan *job) {
	j := &job{}
	ch <- j
	j.n = 1
}

func LaunchGo(done chan struct{}) {
	j := &job{}
	go func() {
		_ = j.n
		close(done)
	}()
	j.n = 1
}

func Fine(ch chan *job) {
	j := &job{}
	j.n = 1
	ch <- j
}
`,
	})
	fs := checkSyncGuard(a)
	assertFindings(t, fs, 2, "sent on channel", "captured by go statement")
}

func TestSyncGuardPublishIntoSharedStructure(t *testing.T) {
	// Storing into a struct field (or appending to one) publishes the
	// value; rebinding the local afterwards starts a fresh, private
	// value.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

type reg struct{ jobs []*job }
type job struct{ n int }

func (r *reg) Add() {
	j := &job{}
	r.jobs = append(r.jobs, j)
	j.n = 1
}

func (r *reg) AddFresh() {
	j := &job{}
	r.jobs = append(r.jobs, j)
	j = &job{}
	j.n = 1
	_ = j
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 1, "stored into shared structure")
}

func TestSyncGuardPublishUnderSharedLockOK(t *testing.T) {
	// Publication and mutation both under the same lock: readers must
	// take the lock to reach the value, so the mutation is ordered.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync"

type reg struct {
	mu   sync.Mutex
	jobs []*job
}
type job struct{ n int }

func (r *reg) Add() {
	j := &job{}
	r.mu.Lock()
	r.jobs = append(r.jobs, j)
	j.n = 1
	r.mu.Unlock()
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 0)
}

func TestSyncGuardPublishLoopRedefineKills(t *testing.T) {
	// The per-iteration := rebinds the local, so "mutation reachable
	// from last iteration's publish" via the back edge is not a race.
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg

type job struct{ n int }

func Pump(ch chan *job, k int) {
	for i := 0; i < k; i++ {
		j := &job{}
		j.n = i
		ch <- j
	}
}
`,
	})
	assertFindings(t, checkSyncGuard(a), 0)
}

func TestSyncGuardNolintDashDashSuppresses(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/s.go": `package pkg
import "sync/atomic"

type stats struct {
	hits uint64
}

func (s *stats) Hit()         { atomic.AddUint64(&s.hits, 1) }
func (s *stats) Load() uint64 { return atomic.LoadUint64(&s.hits) }
func (s *stats) Racy() uint64 { return s.hits } //nolint:kv3d -- snapshot read tolerates a torn count
`,
	})
	assertFindings(t, applyNolint(a, checkSyncGuard(a)), 0)
}

// TestSyncGuardRepoIsClean is the ratchet the ROADMAP-4 lock-free work
// pushes against: the tree itself must stay free of syncguard findings
// (mirroring the CI run, but callable as a plain go test).
func TestSyncGuardRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	a, err := load("../..", []string{"./..."}, modeTyped)
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	fs := applyNolint(a, checkSyncGuard(a))
	if len(fs) != 0 {
		t.Fatalf("syncguard findings on the tree:\n%s", strings.Join(msgs(fs), "\n"))
	}
}
