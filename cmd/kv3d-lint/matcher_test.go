package main

import (
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

// CI annotates PR diffs through .github/kv3d-lint-matcher.json, whose
// single regexp must keep matching every finding line the linter can
// emit. The v4 checks introduced slash-qualified names
// (bufown/retain, poolsafe/useafterput, lifecycle/untied, ...), so the
// character class is pinned here against both synthetic lines for the
// full check vocabulary and real output from a run().

// matcherRegexp loads and compiles the problem matcher's pattern.
func matcherRegexp(t *testing.T) *regexp.Regexp {
	t.Helper()
	raw, err := os.ReadFile("../../.github/kv3d-lint-matcher.json")
	if err != nil {
		t.Fatalf("reading problem matcher: %v", err)
	}
	var m struct {
		ProblemMatcher []struct {
			Pattern []struct {
				Regexp string `json:"regexp"`
				Code   int    `json:"code"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parsing problem matcher: %v", err)
	}
	if len(m.ProblemMatcher) != 1 || len(m.ProblemMatcher[0].Pattern) != 1 {
		t.Fatalf("matcher shape changed: %+v", m)
	}
	p := m.ProblemMatcher[0].Pattern[0]
	if p.Code != 4 {
		t.Fatalf("code capture group = %d, want 4 (the [check] name)", p.Code)
	}
	return regexp.MustCompile(p.Regexp)
}

// TestMatcherCoversAllCheckNames formats one line per emittable check
// name exactly as main.go prints findings and asserts the matcher
// extracts the name back out, slashes included.
func TestMatcherCoversAllCheckNames(t *testing.T) {
	re := matcherRegexp(t)
	names := []string{
		// -checks vocabulary.
		"determinism", "lockcheck", "units", "purity", "lockorder",
		"hotalloc", "errdrop", "syncguard", "bufown", "poolsafe",
		"lifecycle", "nolint",
		// Slash-qualified finding names within the families.
		"syncguard/guardedby", "syncguard/atomic", "syncguard/publish",
		"bufown/retain", "bufown/return", "bufown/annotation",
		"poolsafe/useafterput", "poolsafe/doubleput", "poolsafe/escapedput",
		"lifecycle/untied", "lifecycle/spawnloop",
	}
	for _, name := range names {
		line := "internal/kvstore/store.go:42:7: [" + name + "] example message"
		m := re.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("matcher does not match finding line for %q: %s", name, line)
			continue
		}
		if m[4] != name {
			t.Errorf("matcher extracted code %q from %q, want %q", m[4], line, name)
		}
	}
}

// TestMatcherMatchesRealOutput runs the linter over fixtures that
// produce one finding from each v4 family and asserts every finding
// line in the real stdout matches the matcher with the right check.
func TestMatcherMatchesRealOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("typed load in -short mode")
	}
	re := matcherRegexp(t)
	root := writeModuleFiles(t, map[string]string{
		"pkg/p.go": `package pkg

import "sync"

type sink struct{ kept []byte }

var keep sink

//kv3d:borrowed b
func retain(b []byte) { keep.kept = b }

var pool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func useAfterPut() byte {
	b := pool.Get().([]byte)
	pool.Put(b) //nolint:kv3d -- fixture: interface conversion noise is not under test
	return b[0]
}

func spawn() {
	go func() {
		for {
		}
	}()
}
`,
	})
	var out, errb strings.Builder
	code := run(root, []string{"-checks=bufown,poolsafe,lifecycle", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	wantChecks := map[string]bool{
		"bufown/retain":        false,
		"poolsafe/useafterput": false,
		"lifecycle/untied":     false,
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.HasPrefix(line, "kv3d-lint:") { // summary line, not a finding
			continue
		}
		m := re.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("finding line does not match the problem matcher: %q", line)
			continue
		}
		if _, ok := wantChecks[m[4]]; ok {
			wantChecks[m[4]] = true
		}
	}
	for check, seen := range wantChecks {
		if !seen {
			t.Errorf("no %s finding in output:\n%s", check, out.String())
		}
	}
}
