package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkHotAlloc enforces allocation discipline inside functions marked
// with a `//kv3d:hotpath` doc-comment line (the per-request and
// per-event paths whose allocs/op the hotpath_alloc_test.go gates pin
// at zero). Flagged idioms, each of which allocates on every call:
//
//   - fmt.Sprintf / fmt.Errorf / fmt.Sprint(ln): formatting machinery
//     boxes arguments and builds a fresh string.
//   - string<->[]byte conversions, except in the positions the compiler
//     guarantees not to allocate: map indexing `m[string(b)]`,
//     comparison `string(b) == s`, switch tags `switch string(b)`, and
//     `range string(b)`.
//   - boxing a non-pointer-shaped value into an interface (any/error/
//     variadic ...any parameter): the value escapes to the heap.
//   - append to a slice declared empty in the same function: it regrows
//     from nothing on every call; pre-size with make or reuse a scratch
//     buffer owned by the receiver.
//   - closures capturing local state: a capturing func literal that
//     escapes allocates its environment per call.
//
// Error paths are cold by definition: a branch is exempt when its
// condition involves an `error`-typed value (or a negated ok-bool), or
// when its body exits by returning a non-nil error (the return-throws
// shape of validation branches). Misclassification here is backstopped
// by the testing.AllocsPerRun gates in hotpath_alloc_test.go, which
// measure the real paths. Deliberate exceptions carry
// `//nolint:kv3d -- <why>`.
//
// Typed mode only.

// isHotPath reports whether a function declaration carries the
// kv3d:hotpath annotation in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "kv3d:hotpath" {
			return true
		}
	}
	return false
}

func checkHotAlloc(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		for _, pf := range pkg.files {
			for _, decl := range pf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotPath(fd) {
					continue
				}
				out = append(out, lintHotPath(a, fd)...)
			}
		}
	}
	return out
}

// hotWalker carries the state of one hot-path function scan.
type hotWalker struct {
	a        *analysis
	fd       *ast.FuncDecl
	errType  types.Type
	bareDecl map[types.Object]bool // locals declared as empty slices
	flagged  map[types.Object]bool
	findings []finding
}

func lintHotPath(a *analysis, fd *ast.FuncDecl) []finding {
	w := &hotWalker{
		a:        a,
		fd:       fd,
		errType:  types.Universe.Lookup("error").Type(),
		bareDecl: map[types.Object]bool{},
		flagged:  map[types.Object]bool{},
	}
	w.collectBareSlices(fd.Body)
	w.walk(fd.Body, nil)
	return w.findings
}

func (w *hotWalker) report(pos token.Pos, format string, args ...any) {
	w.findings = append(w.findings, finding{
		pos:   w.a.fset.Position(pos),
		check: "hotalloc",
		msg:   fmt.Sprintf(format, args...) + fmt.Sprintf(" (hot path %s)", w.fd.Name.Name),
	})
}

// collectBareSlices records locals declared with no backing capacity:
// `var x []T` and `x := []T{}`. Appending to them regrows per call.
// A later `x = make([]T, ...)` or assignment from elsewhere removes the
// var from the set (the capacity decision was made explicitly).
func (w *hotWalker) collectBareSlices(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					obj := w.a.info.Defs[id]
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						w.bareDecl[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.a.info.Defs[id]
				if obj == nil {
					continue
				}
				if cl, ok := v.Rhs[i].(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
					if _, isSlice := w.a.info.Types[cl].Type.Underlying().(*types.Slice); isSlice {
						w.bareDecl[obj] = true
					}
				}
			}
		}
		return true
	})
	// Any non-append reassignment (x = make(...), x = buf[:0], ...)
	// means the capacity is managed; drop the var.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.a.info.Uses[id]
			if obj == nil || !w.bareDecl[obj] {
				continue
			}
			if i < len(as.Rhs) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
					if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
						continue // x = append(x, ...) keeps the flag
					}
				}
			}
			delete(w.bareDecl, obj)
		}
		return true
	})
}

// coldCond reports whether an if-condition gates an error path: it
// mentions an error-typed value or a negated bool (the `!ok` miss
// idiom). Bodies under such conditions are exempt from hot-path rules.
func (w *hotWalker) coldCond(cond ast.Expr) bool {
	cold := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.NOT {
				cold = true
			}
		case *ast.Ident:
			if tv, ok := w.a.info.Types[v]; ok && tv.Type != nil &&
				types.Identical(tv.Type, w.errType) {
				cold = true
			}
		}
		return true
	})
	return cold
}

// exitsWithError reports whether a block returns a non-nil error at
// its top level: such a branch is an error exit, not hot-path work.
func (w *hotWalker) exitsWithError(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		ret, ok := st.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		for _, res := range ret.Results {
			t := w.a.info.Types[res].Type
			if t == nil || !types.Identical(t, w.errType) {
				continue
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		}
	}
	return false
}

// walk descends the body, skipping cold branches, flagging allocation
// idioms. parents tracks the ancestor chain for conversion-context
// exemptions.
func (w *hotWalker) walk(n ast.Node, parents []ast.Node) {
	if n == nil {
		return
	}
	if ifs, ok := n.(*ast.IfStmt); ok && (w.coldCond(ifs.Cond) || w.exitsWithError(ifs.Body)) {
		// The init statement, condition and else-arm still run on the
		// hot path; only the guarded body is cold.
		w.walk(ifs.Init, append(parents, n))
		w.walk(ifs.Cond, append(parents, n))
		w.walk(ifs.Else, append(parents, n))
		return
	}
	w.visit(n, parents)
	parents = append(parents, n)
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return true
		}
		w.walk(m, parents)
		return false
	})
}

func (w *hotWalker) visit(n ast.Node, parents []ast.Node) {
	switch v := n.(type) {
	case *ast.CallExpr:
		w.visitCall(v, parents)
	case *ast.FuncLit:
		w.visitFuncLit(v)
	}
}

func (w *hotWalker) visitCall(call *ast.CallExpr, parents []ast.Node) {
	// Conversion?
	if tv, ok := w.a.info.Types[call.Fun]; ok && tv.IsType() {
		w.visitConversion(call, tv.Type, parents)
		return
	}
	// append to a bare-declared slice.
	if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
		if _, isBuiltin := w.a.info.Uses[fid].(*types.Builtin); isBuiltin { // not a shadowing local
			if len(call.Args) > 0 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					obj := w.a.info.Uses[id]
					if obj != nil && w.bareDecl[obj] && !w.flagged[obj] {
						w.flagged[obj] = true
						w.report(call.Pos(),
							"append grows %q from zero capacity on every call; pre-size with make or reuse a receiver-owned scratch buffer", id.Name)
					}
				}
			}
		}
		return
	}
	fn := w.a.calleeFunc(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Errorf", "Sprint", "Sprintln":
			w.report(call.Pos(), "fmt.%s allocates its result and boxes every argument", fn.Name())
			return
		}
	}
	w.checkBoxing(call)
}

// visitConversion flags string<->[]byte conversions outside the
// compiler's non-allocating contexts.
func (w *hotWalker) visitConversion(call *ast.CallExpr, target types.Type, parents []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	src := w.a.info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	toString := isStringType(target) && isByteSlice(src)
	toBytes := isByteSlice(target) && isStringType(src)
	if !toString && !toBytes {
		return
	}
	if toString && w.nonAllocStringContext(call, parents) {
		return
	}
	dir := "[]byte -> string"
	if toBytes {
		dir = "string -> []byte"
	}
	w.report(call.Pos(), "%s conversion copies the bytes on every call; keep one representation end to end", dir)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// nonAllocStringContext recognizes the positions where the compiler
// elides the string(b) copy: map index, == / != comparison, switch tag,
// and range expression.
func (w *hotWalker) nonAllocStringContext(call *ast.CallExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	// Walk up through parens.
	i := len(parents) - 1
	for i > 0 {
		if _, ok := parents[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	switch p := parents[i].(type) {
	case *ast.BinaryExpr:
		return p.Op == token.EQL || p.Op == token.NEQ
	case *ast.SwitchStmt:
		return p.Tag != nil && ast.Unparen(p.Tag) == call
	case *ast.IndexExpr:
		if ast.Unparen(p.Index) != call {
			return false
		}
		_, isMap := w.a.info.Types[p.X].Type.Underlying().(*types.Map)
		return isMap
	case *ast.RangeStmt:
		return ast.Unparen(p.X) == call
	}
	return false
}

// checkBoxing flags arguments whose assignment to an interface-typed
// parameter forces a heap allocation (non-pointer-shaped concrete
// values).
func (w *hotWalker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.a.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	paramType := func(i int) types.Type {
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				return s.Elem()
			}
		}
		if i < params.Len() {
			return params.At(i).Type()
		}
		return nil
	}
	for i, arg := range call.Args {
		pt := paramType(i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := w.a.info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.report(arg.Pos(), "boxing %s into interface parameter allocates", at.String())
	}
}

// isPointerShaped reports types whose interface representation reuses
// the value itself (no heap copy): pointers, channels, maps, funcs and
// unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// visitFuncLit flags closures that capture enclosing locals: the
// environment allocates when the closure escapes, which on the repo's
// callback-heavy hot paths it essentially always does.
func (w *hotWalker) visitFuncLit(fl *ast.FuncLit) {
	captured := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.a.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// the literal.
		if v.Pos() >= w.fd.Pos() && v.Pos() <= w.fd.End() &&
			(v.Pos() < fl.Pos() || v.Pos() > fl.End()) {
			captured = id.Name
		}
		return true
	})
	if captured != "" {
		w.report(fl.Pos(), "closure captures %q; a capturing closure allocates its environment per call — hoist it or pass state explicitly", captured)
	}
}
