package main

import (
	"strings"
	"testing"
)

// The lifecycle fixtures walk the tie taxonomy: every way a goroutine
// can legitimately stop (done channel, select, context, WaitGroup,
// conn-read-unstuck-by-Close) against the shapes that leak.

func TestLifecycleFlagsUntiedGoroutine(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

func work() {}

func Start() {
	go func() {
		for {
			work()
		}
	}()
}
`,
	})
	assertFindings(t, checkLifecycle(a), 1, "lifecycle/untied", "not tied to a stop signal")
}

func TestLifecycleDoneChannelTies(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

type worker struct {
	stop chan struct{}
}

func (w *worker) Start() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			default:
			}
		}
	}()
}

func StartRecv(done chan struct{}) {
	go func() {
		<-done
	}()
}
`,
	})
	assertFindings(t, checkLifecycle(a), 0)
}

func TestLifecycleContextAndWaitGroupTie(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import (
	"context"
	"sync"
)

func withCtx(ctx context.Context) {
	go func() {
		_ = ctx.Err()
	}()
}

func withWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`,
	})
	assertFindings(t, checkLifecycle(a), 0)
}

func TestLifecycleNamedCalleeBodyIsChecked(t *testing.T) {
	// `go s.loop()` resolves through the module's funcDecls index: a
	// loop body with no stop signal is flagged even though the go
	// statement itself looks innocuous.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

type s struct{ n int }

func (v *s) loop() {
	for {
		v.n++
	}
}

func (v *s) Start() {
	go v.loop()
}
`,
	})
	assertFindings(t, checkLifecycle(a), 1, "lifecycle/untied", "body of loop has none")
}

func TestLifecycleConnReadLoopIsTied(t *testing.T) {
	// A read loop blocking on a net conn is the canonical accept/read
	// shape: the owner's Close unsticks it.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "net"

type srv struct {
	conn *net.UDPConn
}

func (s *srv) Start() {
	go s.serve()
}

func (s *srv) serve() {
	buf := make([]byte, 1024)
	for {
		if _, _, err := s.conn.ReadFromUDP(buf); err != nil {
			return
		}
	}
}
`,
	})
	assertFindings(t, checkLifecycle(a), 0)
}

func TestLifecycleFlagsUnboundedSpawnLoop(t *testing.T) {
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import "net"

type srv struct {
	conn *net.UDPConn
}

func handle(b []byte) {}

func (s *srv) serve() {
	buf := make([]byte, 1024)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p := make([]byte, n)
		copy(p, buf[:n])
		go handle(p)
	}
}
`,
	})
	fs := checkLifecycle(a)
	assertFindings(t, fs, 2, "lifecycle/spawnloop", "lifecycle/untied")
}

func TestLifecycleSemaphoreBoundsSpawnLoop(t *testing.T) {
	// The same loop with a semaphore acquire and a WaitGroup is both
	// bounded and tied.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import (
	"net"
	"sync"
)

type srv struct {
	conn *net.UDPConn
	sem  chan struct{}
	wg   sync.WaitGroup
}

func (s *srv) handle(b []byte) {
	defer s.release()
	_ = b
}

func (s *srv) release() {
	<-s.sem
	s.wg.Done()
}

func (s *srv) serve() {
	buf := make([]byte, 1024)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p := make([]byte, n)
		copy(p, buf[:n])
		s.sem <- struct{}{}
		s.wg.Add(1)
		go s.handle(p)
	}
}
`,
	})
	assertFindings(t, checkLifecycle(a), 0)
}

func TestLifecycleCrossModuleCalleeNeedsHandle(t *testing.T) {
	// http.Serve(ln, h) inside the spawned body is tied by the listener
	// handle; a dynamic callee with no handle at the call site is not.
	a := writeModule(t, map[string]string{
		"pkg/p.go": `package pkg

import (
	"net"
	"net/http"
)

func Metrics(ln net.Listener, h http.Handler) {
	go func() {
		_ = http.Serve(ln, h)
	}()
}

func Dyn(f func()) {
	go f()
}
`,
	})
	assertFindings(t, checkLifecycle(a), 1, "lifecycle/untied", "dynamic callee")
}

// TestLifecycleRepoIsClean: every go statement in the tree is tied and
// every spawn loop bounded.
func TestLifecycleRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	a, err := load("../..", []string{"./..."}, modeTyped)
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	fs := applyNolint(a, checkLifecycle(a))
	if len(fs) != 0 {
		t.Fatalf("lifecycle findings on the tree:\n%s", strings.Join(msgs(fs), "\n"))
	}
}
