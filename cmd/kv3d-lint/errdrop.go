package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkErrDrop finds discarded errors at the sinks where this repo has
// actually lost data before: buffered-writer flushes (the only point a
// bufio.Writer surfaces its sticky error), network connection writes
// (a failed UDP reply must still be counted as a drop), and the obs
// package's renderers (a truncated /metrics scrape or trace file is
// silent corruption). It is narrower than a general errcheck on
// purpose: bufio's Write/WriteString/WriteByte returns are legitimately
// ignored under the sticky-error idiom, so flagging every unchecked
// error would bury the three classes that matter.
//
// A drop is a sink call used as a bare statement, deferred, or with
// every result assigned to blank. Deliberate drops need
// `//nolint:kv3d -- <why>`.
//
// Typed mode only.

func checkErrDrop(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		for _, pf := range pkg.files {
			ast.Inspect(pf.ast, func(n ast.Node) bool {
				var call *ast.CallExpr
				var how string
				switch v := n.(type) {
				case *ast.ExprStmt:
					call, _ = v.X.(*ast.CallExpr)
					how = "discarded"
				case *ast.DeferStmt:
					call = v.Call
					how = "discarded by defer"
				case *ast.GoStmt:
					call = v.Call
					how = "discarded by go"
				case *ast.AssignStmt:
					if len(v.Rhs) != 1 {
						return true
					}
					allBlank := true
					for _, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
							allBlank = false
							break
						}
					}
					if !allBlank {
						return true
					}
					call, _ = v.Rhs[0].(*ast.CallExpr)
					how = "assigned to _"
				default:
					return true
				}
				if call == nil {
					return true
				}
				desc := a.errSink(call)
				if desc == "" {
					return true
				}
				out = append(out, finding{
					pos:   a.fset.Position(call.Pos()),
					check: "errdrop",
					msg: fmt.Sprintf("%s returns an error that is %s; handle it, count it, or join it into the returned error",
						desc, how),
				})
				return true
			})
		}
	}
	return out
}

// errSink classifies a call as one of the guarded sinks, returning a
// human-readable description or "".
func (a *analysis) errSink(call *ast.CallExpr) string {
	fn := a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !returnsError(fn) {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgPath := fn.Pkg().Path()
	name := fn.Name()
	switch {
	case pkgPath == "bufio" && name == "Flush":
		return "bufio Flush (the sticky-error surfacing point)"
	case pkgPath == "net" && sig != nil && sig.Recv() != nil && strings.HasPrefix(name, "Write"):
		return "net connection " + name
	case pkgPath == a.module+"/internal/obs" && strings.HasPrefix(name, "Write"):
		return "obs renderer " + name
	}
	return ""
}

// returnsError reports whether a function's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
