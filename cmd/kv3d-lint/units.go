package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// checkUnits flags arithmetic and comparisons that mix conflicting time
// units. Two sources establish an operand's unit:
//
//  1. (typed mode) Its resolved type: the defined types sim.Ps and
//     sim.Ns carry their unit in the type system, and sim.Duration /
//     sim.Time are picosecond-valued by the kernel's contract, so they
//     count as Ps.
//  2. Its identifier suffix — `...Ns` (nanoseconds), `...Ps`
//     (picoseconds, the sim kernel's base unit), `...Cycles` (core
//     clock cycles) — the repo's naming convention for plain int64s
//     that have not been given a defined type yet.
//
// `latencyNs + transferPs` is almost always a missing conversion. An
// explicit conversion call on either side (any CallExpr operand, e.g.
// `psFromNs(latencyNs) + transferPs` or `sim.Ps(x)`) silences the check
// because the call boundary is where the unit change is made visible —
// except that conversions to basic numeric types (`int64(x)`,
// `float64(x)`) are transparent: they strip the type but not the unit,
// so the check looks through them.
//
// Two additional typed-only rules target absolute timestamps: adding or
// multiplying two sim.Time values is dimensionally meaningless (a
// timestamp is a point, not a span), so `t1 + t2` and `t1 * t2` are
// flagged whenever both operands are typed sim.Time — for ADD unless one
// side is an explicit conversion (the kernel's own `t + Time(d)`
// saturating-add idiom), for MUL always, conversions included, because
// `sim.Time(a) * sim.Time(b)` is exactly the spelling the clustersim
// arrival-schedule bug used.

// unitSuffixes are matched case-sensitively so plural English words
// ("ops", "tps", "returns") never register as units.
var unitSuffixes = []string{"Cycles", "Ns", "Ps"}

// unitOf returns the unit suffix an identifier name declares, or "".
func unitOf(name string) string {
	for _, s := range unitSuffixes {
		if name == s {
			return s
		}
		if strings.HasSuffix(name, s) {
			prev := rune(name[len(name)-len(s)-1])
			// Require a lower-case letter or digit before the suffix so
			// the suffix is a distinct trailing word (latencyNs, rowCycles)
			// rather than a substring of a longer capitalized word.
			if unicode.IsLower(prev) || unicode.IsDigit(prev) {
				return s
			}
		}
	}
	return ""
}

// unitOfType maps a resolved type to the unit it carries, or "".
func unitOfType(t types.Type) string {
	n := namedType(t)
	if n == nil {
		return ""
	}
	obj := n.Obj()
	switch obj.Name() {
	case "Ps":
		return "Ps"
	case "Ns":
		return "Ns"
	case "Duration", "Time":
		// Only the kernel's own Duration/Time are picoseconds;
		// time.Duration et al. carry no kv3d unit.
		if obj.Pkg() != nil && obj.Pkg().Name() == "sim" {
			return "Ps"
		}
	}
	return ""
}

// operandUnit extracts the unit of one side of a binary expression and
// the name to report it under. Calls (conversions included) report no
// unit — the call is the visible seam — except conversions to basic
// numeric types, which are transparent wrappers the check looks
// through.
func (a *analysis) operandUnit(e ast.Expr) (string, string) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return a.operandUnit(v.X)
	case *ast.UnaryExpr:
		return a.operandUnit(v.X)
	case *ast.CallExpr:
		if a.typed && len(v.Args) == 1 {
			if tv, ok := a.info.Types[v.Fun]; ok && tv.IsType() {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
					return a.operandUnit(v.Args[0])
				}
			}
		}
		return "", ""
	case *ast.Ident:
		return a.identUnit(e, v.Name)
	case *ast.SelectorExpr:
		return a.identUnit(e, v.Sel.Name)
	}
	return "", ""
}

// identUnit derives a unit for a named operand: resolved type first,
// identifier-suffix convention second.
func (a *analysis) identUnit(e ast.Expr, name string) (string, string) {
	if a.typed {
		if u := unitOfType(a.info.Types[e].Type); u != "" {
			return u, name
		}
	}
	return unitOf(name), name
}

// isSimTime reports whether an expression's resolved type is sim.Time.
func (a *analysis) isSimTime(e ast.Expr) bool {
	if !a.typed {
		return false
	}
	n := namedType(a.info.Types[e].Type)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// isConversion reports whether an expression (paren-stripped) is a
// conversion call like Time(d).
func (a *analysis) isConversion(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !a.typed {
		return false
	}
	tv, ok := a.info.Types[call.Fun]
	return ok && tv.IsType()
}

// mixableOps are the operators where mixing units is meaningless.
// Multiplication and division are excluded: `cycles * psPerCycle` is the
// conversion idiom itself.
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
}

func checkUnits(a *analysis) []finding {
	var out []finding
	report := func(pos token.Pos, op token.Token, ua, na, ub, nb string) {
		out = append(out, finding{
			pos:   a.fset.Position(pos),
			check: "units",
			msg: fmt.Sprintf("`%s %s %s` mixes %s and %s identifiers without an explicit conversion call",
				na, op, nb, ua, ub),
		})
	}
	for _, pkg := range a.sortedPkgs() {
		for _, pf := range pkg.files {
			ast.Inspect(pf.ast, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.BinaryExpr:
					if v.Op == token.MUL && a.isSimTime(v.X) && a.isSimTime(v.Y) {
						out = append(out, finding{
							pos:   a.fset.Position(v.OpPos),
							check: "units",
							msg:   "multiplies two sim.Time values; a timestamp is a point, not a span — convert one side to sim.Duration (or a plain count) first",
						})
						return true
					}
					if !mixableOps[v.Op] {
						return true
					}
					if v.Op == token.ADD && a.isSimTime(v.X) && a.isSimTime(v.Y) &&
						!a.isConversion(v.X) && !a.isConversion(v.Y) {
						out = append(out, finding{
							pos:   a.fset.Position(v.OpPos),
							check: "units",
							msg:   "adds two sim.Time values; adding absolute timestamps is meaningless — use Time.Add(Duration) or subtract to get a Duration",
						})
						return true
					}
					ua, na := a.operandUnit(v.X)
					ub, nb := a.operandUnit(v.Y)
					if ua != "" && ub != "" && ua != ub {
						report(v.OpPos, v.Op, ua, na, ub, nb)
					}
				case *ast.AssignStmt:
					if !mixableOps[v.Tok] || len(v.Lhs) != 1 || len(v.Rhs) != 1 {
						return true
					}
					ua, na := a.operandUnit(v.Lhs[0])
					ub, nb := a.operandUnit(v.Rhs[0])
					if ua != "" && ub != "" && ua != ub {
						report(v.TokPos, v.Tok, ua, na, ub, nb)
					}
				}
				return true
			})
		}
	}
	return out
}
