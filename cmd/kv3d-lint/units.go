package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// checkUnits flags arithmetic and comparisons that mix identifiers whose
// suffixes declare conflicting time units. The repo's convention writes
// the unit into the name — `...Ns` (nanoseconds), `...Ps` (picoseconds,
// the sim kernel's base unit), `...Cycles` (core clock cycles) — so
// `latencyNs + transferPs` is almost always a missing conversion. An
// explicit conversion call on either side (any CallExpr operand, e.g.
// `psFromNs(latencyNs) + transferPs`) silences the check because the
// call boundary is where the unit change is made visible.

// unitSuffixes are matched case-sensitively so plural English words
// ("ops", "tps", "returns") never register as units.
var unitSuffixes = []string{"Cycles", "Ns", "Ps"}

// unitOf returns the unit suffix an identifier name declares, or "".
func unitOf(name string) string {
	for _, s := range unitSuffixes {
		if name == s {
			return s
		}
		if strings.HasSuffix(name, s) {
			prev := rune(name[len(name)-len(s)-1])
			// Require a lower-case letter or digit before the suffix so
			// the suffix is a distinct trailing word (latencyNs, rowCycles)
			// rather than a substring of a longer capitalized word.
			if unicode.IsLower(prev) || unicode.IsDigit(prev) {
				return s
			}
		}
	}
	return ""
}

// operandUnit extracts the unit of one side of a binary expression.
// Calls (conversions) and literals deliberately report no unit.
func operandUnit(e ast.Expr) (string, string) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return operandUnit(v.X)
	case *ast.UnaryExpr:
		return operandUnit(v.X)
	case *ast.Ident:
		return unitOf(v.Name), v.Name
	case *ast.SelectorExpr:
		return unitOf(v.Sel.Name), v.Sel.Name
	}
	return "", ""
}

// mixableOps are the operators where mixing units is meaningless.
// Multiplication and division are excluded: `cycles * psPerCycle` is the
// conversion idiom itself.
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
}

func checkUnits(a *analysis) []finding {
	var out []finding
	report := func(pos token.Pos, op token.Token, ua, na, ub, nb string) {
		out = append(out, finding{
			pos:   a.fset.Position(pos),
			check: "units",
			msg: fmt.Sprintf("`%s %s %s` mixes %s and %s identifiers without an explicit conversion call",
				na, op, nb, ua, ub),
		})
	}
	for _, pkg := range a.pkgs {
		for _, pf := range pkg.files {
			ast.Inspect(pf.ast, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.BinaryExpr:
					if !mixableOps[v.Op] {
						return true
					}
					ua, na := operandUnit(v.X)
					ub, nb := operandUnit(v.Y)
					if ua != "" && ub != "" && ua != ub {
						report(v.OpPos, v.Op, ua, na, ub, nb)
					}
				case *ast.AssignStmt:
					if !mixableOps[v.Tok] || len(v.Lhs) != 1 || len(v.Rhs) != 1 {
						return true
					}
					ua, na := operandUnit(v.Lhs[0])
					ub, nb := operandUnit(v.Rhs[0])
					if ua != "" && ub != "" && ua != ub {
						report(v.TokPos, v.Tok, ua, na, ub, nb)
					}
				}
				return true
			})
		}
	}
	return out
}
