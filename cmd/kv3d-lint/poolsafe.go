package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkPoolSafe enforces sync.Pool discipline with the same
// lockset-style CFG dataflow syncguard uses. A pooled value's lifetime
// has exactly one legal shape — Get, use, Put, never touch again — and
// each way of bending it is a distinct, schedule-dependent corruption
// the race detector only reports if another goroutine happens to draw
// the same object in time:
//
//	poolsafe/useafterput   the value is read or written after Put
//	                       returned it to the pool: another goroutine
//	                       may already own it.
//	poolsafe/doubleput     Put twice on a path: two goroutines will be
//	                       handed the same object.
//	poolsafe/escapedput    Put of a value whose alias escaped first
//	                       (stored into a field/global, sent on a
//	                       channel, captured by a goroutine): the
//	                       escapee and the next Get holder share memory.
//
// The dataflow is a forward may-analysis (mayFlow): a fact established
// on *some* path — "v may already be Put", "v may have escaped" —
// holds at the join, which is the only sound direction for
// use-after-free-shaped bugs. Rebinding the variable (v = pool.Get(),
// v := ...) kills its facts.
//
// The repo has no sync.Pool today; this check rides ahead of the
// ROADMAP-2 event-driven server core the way syncguard rode ahead of
// the lock-free read tier: the pooled parse/response scratch that
// refactor introduces lands with its discipline already machine-
// checked. Per-variable tracking only (an alias under another name is
// the documented limitation, as in syncguard/publish).
//
// Typed mode only.

// psState is the per-variable fact lattice of the poolsafe dataflow.
type psState struct {
	putAt  token.Pos // first Put site on some path (0 = not put)
	escAt  token.Pos // first escape site on some path (0 = not escaped)
	escHow string
}

// psCtx carries one function's poolsafe scan.
type psCtx struct {
	a        *analysis
	pkg      *pkgInfo
	fd       *ast.FuncDecl
	cfg      *funcCFG
	parents  map[ast.Node]ast.Node
	findings []finding
	seen     map[token.Pos]bool
}

func checkPoolSafe(a *analysis) []finding {
	if !a.typed {
		return nil
	}
	var out []finding
	for _, pkg := range a.sortedPkgs() {
		for _, pf := range pkg.files {
			// Fast path: a file that never mentions a sync.Pool method
			// cannot produce facts; skip building CFGs for it.
			if !fileTouchesPool(a, pf.ast) {
				continue
			}
			for _, decl := range pf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, poolsafeFunc(a, pkg, fd)...)
			}
		}
	}
	return out
}

// fileTouchesPool reports whether any selector in the file resolves to
// a sync.Pool method.
func fileTouchesPool(a *analysis, f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := a.info.Uses[sel.Sel].(*types.Func); ok {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isSyncPool(recv.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func poolsafeFunc(a *analysis, pkg *pkgInfo, fd *ast.FuncDecl) []finding {
	c := &psCtx{
		a: a, pkg: pkg, fd: fd,
		cfg:     buildCFG(fd.Body),
		parents: buildParentMap(fd),
		seen:    map[token.Pos]bool{},
	}
	in := mayFlow(c.cfg, map[*types.Var]psState{}, func(b int, s map[*types.Var]psState) map[*types.Var]psState {
		return c.transferBlock(b, s, false)
	})
	for _, blk := range c.cfg.blocks {
		c.transferBlock(blk.index, in[blk.index], true)
	}
	return c.findings
}

func (c *psCtx) transferBlock(b int, in map[*types.Var]psState, flag bool) map[*types.Var]psState {
	s := make(map[*types.Var]psState, len(in))
	for k, v := range in {
		s[k] = v
	}
	for _, n := range c.cfg.blocks[b].nodes {
		c.transferNode(n.node, s, flag && !n.deferred)
	}
	return s
}

func (c *psCtx) transferNode(node ast.Node, s map[*types.Var]psState, flag bool) {
	// consumed marks identifiers claimed by a recognized event (the Put
	// argument, a rebind LHS) so the use-after-put scan below does not
	// re-flag them.
	consumed := map[*ast.Ident]bool{}

	// Escapes are recorded unconditionally (not only for already-tracked
	// vars): provenance is established by the Put itself — "escaped
	// before this Put" is a finding whatever the value's origin.
	switch v := node.(type) {
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
			for _, cap := range c.capturedPooled(lit) {
				c.escape(s, cap, v.Pos(), "captured by a go statement")
			}
		}
		for _, arg := range v.Call.Args {
			if lv := c.localOf(arg); lv != nil && sharesMemory(lv.Type()) {
				c.escape(s, lv, v.Pos(), "passed to a goroutine")
			}
		}
	case *ast.SendStmt:
		if lv := c.localOf(v.Value); lv != nil && sharesMemory(lv.Type()) {
			c.escape(s, lv, v.Pos(), "sent on a channel")
		}
	}

	scanSkippingLits(node, func(m ast.Node) {
		switch v := m.(type) {
		case *ast.CallExpr:
			pool, op := c.poolCall(v)
			if pool == "" {
				return
			}
			switch op {
			case "Put":
				if len(v.Args) != 1 {
					return
				}
				arg := ast.Unparen(v.Args[0])
				if id, ok := arg.(*ast.Ident); ok {
					consumed[id] = true
				}
				lv := c.localOf(arg)
				if lv == nil {
					return
				}
				st := s[lv]
				if flag && st.putAt != 0 {
					c.report(v.Pos(), "poolsafe/doubleput", fmt.Sprintf(
						"%q may already have been Put back (at %s); a double Put hands the same object to two Gets",
						lv.Name(), relPos(c.a.fset.Position(st.putAt))))
				}
				if flag && st.escAt != 0 {
					c.report(v.Pos(), "poolsafe/escapedput", fmt.Sprintf(
						"%q escaped before this Put (%s at %s); the escapee and the pool's next Get share memory",
						lv.Name(), st.escHow, relPos(c.a.fset.Position(st.escAt))))
				}
				if st.putAt == 0 {
					st.putAt = v.Pos()
				}
				s[lv] = st
			}
		case *ast.AssignStmt:
			// Rebinding kills facts: the name now holds a fresh value.
			// Storing a tracked value into a field/global/element is an
			// escape.
			for i, lhs := range v.Lhs {
				lhs = ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok && v.Tok != token.ADD_ASSIGN {
					if lv := c.localOf(id); lv != nil {
						consumed[id] = true
						delete(s, lv)
						continue
					}
				}
				if c.isSharedSink(lhs) && i < len(v.Rhs) {
					if lv := c.localOf(ast.Unparen(v.Rhs[i])); lv != nil && sharesMemory(lv.Type()) {
						c.escape(s, lv, lhs.Pos(), "stored into a shared structure")
					}
				}
			}
		}
	})

	if !flag {
		return
	}
	// Any remaining use of a variable that may have been Put is a
	// use-after-put.
	scanSkippingLits(node, func(m ast.Node) {
		id, ok := m.(*ast.Ident)
		if !ok || consumed[id] {
			return
		}
		lv, ok := c.a.info.Uses[id].(*types.Var)
		if !ok || lv.IsField() {
			return
		}
		if st, tracked := s[lv]; tracked && st.putAt != 0 && id.Pos() > st.putAt {
			c.report(id.Pos(), "poolsafe/useafterput", fmt.Sprintf(
				"%q may already be back in the pool (Put at %s); another goroutine can own it by now",
				lv.Name(), relPos(c.a.fset.Position(st.putAt))))
		}
	})
}

// escape records an escape fact for a tracked or future-tracked local.
func (c *psCtx) escape(s map[*types.Var]psState, lv *types.Var, pos token.Pos, how string) {
	st := s[lv]
	if st.escAt == 0 {
		st.escAt = pos
		st.escHow = how
	}
	s[lv] = st
}

// poolCall recognizes a call to a sync.Pool method, returning the
// method name ("Get"/"Put") and a non-empty marker.
func (c *psCtx) poolCall(call *ast.CallExpr) (pool, op string) {
	fn := c.a.calleeFunc(call)
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSyncPool(sig.Recv().Type()) {
		return "", ""
	}
	return "pool", fn.Name()
}

func (c *psCtx) localOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := c.a.info.Uses[id].(*types.Var)
	if !ok {
		v, ok = c.a.info.Defs[id].(*types.Var)
	}
	if !ok || v == nil || v.IsField() {
		return nil
	}
	if v.Pos() < c.fd.Pos() || v.Pos() > c.fd.End() {
		return nil
	}
	return v
}

func (c *psCtx) isSharedSink(lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel := c.a.info.Selections[v]
		return sel != nil && sel.Kind() == types.FieldVal
	case *ast.IndexExpr:
		return c.localOf(v.X) == nil
	case *ast.Ident:
		obj, ok := c.a.info.Uses[v].(*types.Var)
		return ok && !obj.IsField() && obj.Parent() != nil && obj.Parent().Parent() == types.Universe
	}
	return false
}

// capturedPooled lists the enclosing function's memory-sharing locals
// a go-literal captures.
func (c *psCtx) capturedPooled(lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.a.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] || !sharesMemory(v.Type()) {
			return true
		}
		if v.Pos() >= c.fd.Pos() && v.Pos() <= c.fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

func (c *psCtx) report(pos token.Pos, check, msg string) {
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	c.findings = append(c.findings, finding{pos: c.a.fset.Position(pos), check: check, msg: msg})
}
