package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkDeterminism forbids wall-clock reads, sleeps and global-state
// randomness in every package the simulation layer can reach. The
// discrete-event kernel owns time (integer picoseconds) and randomness
// (seeded sim.Rand streams); a single time.Now or math/rand call in
// model code silently decouples reported RTT/TPS numbers from the seed,
// which is exactly the failure mode the paper's calibration cannot
// tolerate.
//
// In typed mode every call expression resolves to the *types.Func it
// invokes, so aliased imports (`chrono "time"`), dot imports, and
// same-named methods on local types are all classified correctly. The
// AST fallback keeps the v1 spelling heuristics.

// bannedTimeFuncs are the time-package functions that read or depend on
// the host wall clock. Types (time.Duration) and constants (time.Second)
// stay legal: they are units, not clock reads.
var bannedTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Sleep":     "blocks on host time",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Tick":      "creates a wall-clock ticker",
	"After":     "creates a wall-clock timer",
	"AfterFunc": "creates a wall-clock timer",
	"NewTimer":  "creates a wall-clock timer",
	"NewTicker": "creates a wall-clock ticker",
}

// bannedRandFuncs are the math/rand (v1 and v2) package-level functions
// backed by the shared global source. Constructing an owned generator
// (rand.New, rand.NewSource, ...) is allowed; the determinism contract
// only bans the ambient one.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func checkDeterminism(a *analysis) []finding {
	if a.typed {
		return checkDeterminismTyped(a)
	}
	return checkDeterminismAST(a)
}

// checkDeterminismTyped classifies each call by its resolved callee:
// only package-level functions of "time" and "math/rand"(/v2) can
// trigger, never methods, locals or identically-named functions from
// other packages.
func checkDeterminismTyped(a *analysis) []finding {
	var out []finding
	closure := a.simClosure()
	for path, via := range closure {
		pkg := a.pkgs[path]
		if pkg.depOnly {
			continue
		}
		reach := "a sim root"
		if via != "" {
			reach = fmt.Sprintf("imported via %s", via)
		}
		for _, pf := range pkg.files {
			ast.Inspect(pf.ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := a.calleeFunc(call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				// Methods (time.Time.Sub, rand.Rand.Intn on an owned
				// generator, ...) are fine; only the package-level entry
				// points touch ambient state.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if why, banned := bannedTimeFuncs[fn.Name()]; banned {
						out = append(out, finding{
							pos:   a.fset.Position(call.Pos()),
							check: "determinism",
							msg: fmt.Sprintf("time.%s %s; package %s is in the sim-determinism set (%s) — use sim virtual time or an injected Clock",
								fn.Name(), why, path, reach),
						})
					}
				case "math/rand", "math/rand/v2":
					if bannedRandFuncs[fn.Name()] {
						out = append(out, finding{
							pos:   a.fset.Position(call.Pos()),
							check: "determinism",
							msg: fmt.Sprintf("rand.%s uses the global math/rand source; package %s is in the sim-determinism set (%s) — use a seeded sim.Rand or an injected *rand.Rand",
								fn.Name(), path, reach),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// checkDeterminismAST is the v1 spelling-based pass, kept for
// -mode=ast. Because it cannot see through a dot import, it reports
// those as un-analyzable rather than silently missing calls.
func checkDeterminismAST(a *analysis) []finding {
	var out []finding
	closure := a.simClosure()
	for path, via := range closure {
		pkg := a.pkgs[path]
		if pkg.depOnly {
			continue
		}
		reach := "a sim root"
		if via != "" {
			reach = fmt.Sprintf("imported via %s", via)
		}
		for _, pf := range pkg.files {
			timeAliases, timeDot := importAliases(pf.ast, "time")
			randAliases, randDot := importAliases(pf.ast, "math/rand", "math/rand/v2")
			if timeDot || randDot {
				out = append(out, finding{
					pos:   a.fset.Position(pf.ast.Name.Pos()),
					check: "determinism",
					msg: fmt.Sprintf("package %s (%s) dot-imports a clock/rand package, hiding banned calls from analysis; use a named import",
						path, reach),
				})
			}
			if len(timeAliases) == 0 && len(randAliases) == 0 {
				continue
			}
			ast.Inspect(pf.ast, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Obj != nil { // id.Obj != nil means a local, not the import
					return true
				}
				if _, isTime := timeAliases[id.Name]; isTime {
					if why, banned := bannedTimeFuncs[sel.Sel.Name]; banned {
						out = append(out, finding{
							pos:   a.fset.Position(sel.Pos()),
							check: "determinism",
							msg: fmt.Sprintf("%s.%s %s; package %s is in the sim-determinism set (%s) — use sim virtual time or an injected Clock",
								id.Name, sel.Sel.Name, why, path, reach),
						})
					}
				}
				if _, isRand := randAliases[id.Name]; isRand {
					if bannedRandFuncs[sel.Sel.Name] {
						out = append(out, finding{
							pos:   a.fset.Position(sel.Pos()),
							check: "determinism",
							msg: fmt.Sprintf("%s.%s uses the global math/rand source; package %s is in the sim-determinism set (%s) — use a seeded sim.Rand or an injected *rand.Rand",
								id.Name, sel.Sel.Name, path, reach),
						})
					}
				}
				return true
			})
		}
	}
	return out
}
