// Command kv3d-client is a load generator and one-shot client for any
// memcached-compatible server (including kv3d-server).
//
// Load generation:
//
//	kv3d-client -addr localhost:11211 -load -conns 8 -duration 5s \
//	    -get-fraction 0.9 -value-size 64 -keys 100000 -zipf 1.01
//
// One-shot commands:
//
//	kv3d-client -addr localhost:11211 set mykey hello
//	kv3d-client -addr localhost:11211 get mykey
//	kv3d-client -addr localhost:11211 stats
//
// With -probes the load generator routes through the resilience layer
// (retries, backoff, circuit breaker) and dumps its kvclient.* probe
// registry as JSON on stdout when the run ends; the human-readable
// summary moves to stderr so the JSON stays machine-parseable.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/metrics"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "server address")
	load := flag.Bool("load", false, "run the load generator")
	conns := flag.Int("conns", 4, "load: concurrent connections")
	duration := flag.Duration("duration", 5*time.Second, "load: run time")
	getFraction := flag.Float64("get-fraction", 0.9, "load: GET share")
	valueSize := flag.Int64("value-size", 64, "load: value bytes")
	keys := flag.Int("keys", 10000, "load: key-space size")
	zipf := flag.Float64("zipf", 1.01, "load: key popularity skew (0 = uniform)")
	seed := flag.Uint64("seed", 1, "load: RNG seed")
	probes := flag.Bool("probes", false, "load: use the cluster client and dump kvclient.* probes as JSON on exit")
	addrs := flag.String("addrs", "", "load: comma-separated cluster node addresses (default: just -addr); implies the cluster client")
	replicas := flag.Int("replicas", 1, "load: cluster replica count per key")
	writeMode := flag.String("write-mode", "default", "load: per-op replication mode for cluster writes: default, async, or quorum (binary cluster)")
	readRepair := flag.Bool("read-repair", false, "load: repair divergent replicas on cluster reads")
	flag.Parse()

	mode, ok := protocol.ParseReplMode(*writeMode)
	if !ok {
		log.Fatalf("kv3d-client: -write-mode must be default, async, or quorum, got %q", *writeMode)
	}
	nodeAddrs := []string{*addr}
	if *addrs != "" {
		nodeAddrs = nodeAddrs[:0]
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				nodeAddrs = append(nodeAddrs, a)
			}
		}
	}
	if *load {
		runLoad(loadConfig{
			addrs:       nodeAddrs,
			conns:       *conns,
			duration:    *duration,
			getFraction: *getFraction,
			valueSize:   *valueSize,
			keys:        *keys,
			zipf:        *zipf,
			seed:        *seed,
			probes:      *probes,
			replicas:    *replicas,
			writeMode:   mode,
			readRepair:  *readRepair,
		})
		return
	}
	if *probes {
		log.Fatal("kv3d-client: -probes requires -load")
	}
	runCommand(*addr, flag.Args())
}

func runCommand(addr string, args []string) {
	if len(args) == 0 {
		log.Fatal("kv3d-client: need a command (get/set/delete/incr/stats/version) or -load")
	}
	c, err := kvclient.Dial(addr)
	if err != nil {
		log.Fatalf("kv3d-client: %v", err)
	}
	defer c.Close()
	switch args[0] {
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get <key>")
		}
		it, err := c.Get(args[1])
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		fmt.Printf("%s\n", it.Value)
	case "set":
		if len(args) != 3 {
			log.Fatal("usage: set <key> <value>")
		}
		if err := c.Set(args[1], []byte(args[2]), 0, 0); err != nil {
			log.Fatalf("set: %v", err)
		}
		fmt.Println("STORED")
	case "delete":
		if len(args) != 2 {
			log.Fatal("usage: delete <key>")
		}
		if err := c.Delete(args[1]); err != nil {
			log.Fatalf("delete: %v", err)
		}
		fmt.Println("DELETED")
	case "incr":
		if len(args) != 3 {
			log.Fatal("usage: incr <key> <delta>")
		}
		var delta uint64
		fmt.Sscan(args[2], &delta)
		v, err := c.Incr(args[1], delta)
		if err != nil {
			log.Fatalf("incr: %v", err)
		}
		fmt.Println(v)
	case "stats":
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		names := make([]string, 0, len(st))
		for k := range st {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("%s %s\n", k, st[k])
		}
	case "version":
		v, err := c.Version()
		if err != nil {
			log.Fatalf("version: %v", err)
		}
		fmt.Println(v)
	default:
		log.Fatalf("kv3d-client: unknown command %q", args[0])
	}
}

// loadConn is the surface the load loop needs; both the plain Client
// and the ClusterClient (selected by -probes or any cluster flag)
// satisfy it.
type loadConn interface {
	Get(key string) (kvclient.Item, error)
	Set(key string, value []byte, flags uint32, exptime int64) error
	Close() error
}

// loadConfig carries the load generator's knobs.
type loadConfig struct {
	addrs       []string
	conns       int
	duration    time.Duration
	getFraction float64
	valueSize   int64
	keys        int
	zipf        float64
	seed        uint64
	probes      bool
	replicas    int
	writeMode   protocol.ReplMode
	readRepair  bool
}

// modeConn routes Sets through SetMode so the chosen consistency mode
// rides every write.
type modeConn struct {
	*kvclient.ClusterClient
	mode protocol.ReplMode
}

func (c modeConn) Set(key string, value []byte, flags uint32, exptime int64) error {
	return c.ClusterClient.SetMode(key, value, flags, exptime, c.mode)
}

func runLoad(lc loadConfig) {
	addr := lc.addrs[0]
	conns, duration := lc.conns, lc.duration
	getFraction, valueSize := lc.getFraction, lc.valueSize
	keys, zipf, seed := lc.keys, lc.zipf, lc.seed
	// Any cluster-layer knob routes through the ClusterClient; plain
	// single-connection load otherwise.
	useCluster := lc.probes || len(lc.addrs) > 1 || lc.replicas > 1 ||
		lc.writeMode != protocol.ReplDefault || lc.readRepair
	var (
		ops      atomic.Uint64
		hits     atomic.Uint64
		misses   atomic.Uint64
		errsN    atomic.Uint64
		mu       sync.Mutex
		combined = metrics.NewHistogram()
	)
	var reg *obs.Registry
	if lc.probes {
		reg = obs.NewRegistry()
	}
	dial := func(worker int) (loadConn, error) {
		if !useCluster {
			return kvclient.Dial(addr)
		}
		cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
			Addrs:      lc.addrs,
			Replicas:   lc.replicas,
			Binary:     lc.writeMode != protocol.ReplDefault,
			ReadRepair: lc.readRepair,
			Probes:     reg,
			Seed:       seed + uint64(worker),
		})
		if err != nil {
			return nil, err
		}
		if lc.writeMode != protocol.ReplDefault {
			return modeConn{cc, lc.writeMode}, nil
		}
		return cc, nil
	}
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			c, err := dial(worker)
			if err != nil {
				log.Printf("worker %d: %v", worker, err)
				errsN.Add(1)
				return
			}
			defer c.Close()
			gen, err := workload.NewGenerator(workload.MixConfig{
				GetFraction: getFraction,
				Keys:        keys,
				ZipfSkew:    zipf,
				Values:      workload.FixedSize(valueSize),
				Seed:        seed + uint64(worker),
			})
			if err != nil {
				log.Printf("worker %d: %v", worker, err)
				return
			}
			hist := metrics.NewHistogram()
			for time.Now().Before(deadline) {
				req := gen.Next()
				start := time.Now()
				if req.IsGet {
					_, err := c.Get(req.Key)
					switch err {
					case nil:
						hits.Add(1)
					case kvclient.ErrNotFound:
						misses.Add(1)
					default:
						errsN.Add(1)
						continue
					}
				} else {
					if err := c.Set(req.Key, value, 0, 0); err != nil {
						errsN.Add(1)
						continue
					}
				}
				hist.Record(time.Since(start).Nanoseconds())
				ops.Add(1)
			}
			mu.Lock()
			combined.Merge(hist)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	// With -probes, stdout carries only the probe JSON.
	var out io.Writer = os.Stdout
	if reg != nil {
		out = os.Stderr
	}
	total := ops.Load()
	fmt.Fprintf(out, "ops:        %d (%.0f/s)\n", total, float64(total)/duration.Seconds())
	fmt.Fprintf(out, "hits:       %d  misses: %d  errors: %d\n", hits.Load(), misses.Load(), errsN.Load())
	if combined.Count() > 0 {
		fmt.Fprintf(out, "latency us: mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
			combined.Mean()/1e3,
			float64(combined.Percentile(50))/1e3,
			float64(combined.Percentile(95))/1e3,
			float64(combined.Percentile(99))/1e3,
			float64(combined.Max())/1e3)
	}
	if reg != nil {
		if err := obs.WriteProbesJSON(os.Stdout, reg.Snapshot()); err != nil {
			log.Printf("kv3d-client: probes: %v", err)
		}
	}
	if errsN.Load() > 0 {
		os.Exit(1)
	}
}
