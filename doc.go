// Package kv3d is a reproduction of "Integrated 3D-Stacked Server
// Designs for Increasing Physical Density of Key-Value Stores"
// (Gutierrez et al., ASPLOS 2014).
//
// It contains two halves that meet in the experiments:
//
// The functional half is a production-quality memcached implementation —
// slab allocator, incremental-rehash hash table, strict-LRU and Bags
// pseudo-LRU eviction, the full ASCII protocol over TCP, a client, and a
// consistent-hash ring (internal/kvstore, internal/protocol,
// internal/kvserver, internal/kvclient, internal/cluster).
//
// The modeling half is a discrete-event simulation of the paper's
// Mercury (3D DRAM) and Iridium (3D NAND Flash) stacked servers:
// core timing models, cache hierarchy, DRAM/Flash devices with a
// functional FTL, the 10GbE path, one-stack request simulation, and the
// power/area composition of a 1.5U box (internal/sim, internal/cpu,
// internal/cache, internal/memmodel, internal/netmodel,
// internal/stackmodel, internal/phys, internal/server,
// internal/baseline).
//
// internal/experiments regenerates every table and figure of the paper;
// cmd/kv3d-bench prints them, and bench_test.go exposes each as a Go
// benchmark. See README.md, DESIGN.md and EXPERIMENTS.md.
package kv3d
