module kv3d

go 1.22
