//go:build race

package kv3d

// raceEnabled mirrors the race-detector build tag for tests whose
// contracts the instrumented runtime deliberately breaks (sync.Pool
// drops a quarter of Puts under race to surface reuse races).
const raceEnabled = true
