package kv3d

// Allocation gates for the //kv3d:hotpath functions (see LINTING.md).
// The hotalloc static check flags allocating idioms by shape; these
// tests measure the real paths with testing.AllocsPerRun so a
// regression that slips past the static pass (or hides behind a
// nolint) still fails CI. The two contracts pinned here:
//
//   - A disabled (nil) obs.Tracer costs zero allocations per event, so
//     model code can instrument unconditionally.
//   - The ASCII GET path — readLine, dispatch, doGet, store lookup,
//     response write — allocates nothing per operation in steady state.
//     Per-session setup (bufio buffers, scratch growth on first use) is
//     allowed; per-op cost must be flat.

import (
	"bufio"
	"io"
	"strings"
	"testing"

	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *obs.Tracer // nil = disabled, the documented fast path
	track := tr.RegisterTrack("x")
	allocs := testing.AllocsPerRun(100, func() {
		tr.Complete(track, "op", 0, sim.Time(10))
		tr.Instant(track, "mark", 5)
		tr.Counter(track, "depth", 5, 1)
		tr.AsyncBegin("req", "r", 1, 0)
		tr.AsyncEnd("req", "r", 1, 10)
	})
	if allocs != 0 {
		t.Fatalf("disabled Tracer allocates %v per event batch, want 0", allocs)
	}
}

// TestFlightRecorderDisabledZeroAlloc pins the nil-recorder fast path:
// instrumented code records unconditionally, so a disabled flight
// recorder must cost nothing per event.
func TestFlightRecorderDisabledZeroAlloc(t *testing.T) {
	var rec *obs.FlightRecorder // nil = recording off
	track := rec.RegisterTrack("x")
	allocs := testing.AllocsPerRun(100, func() {
		rec.Complete(track, "op", "ok", 0, 10)
		rec.Instant(track, "mark", 5)
		rec.InstantArg(track, "gauge", 5, 42)
		rec.Counter(track, "depth", 5, 1)
		rec.AsyncBegin("op", "r", 1, 0)
		rec.AsyncEnd("op", "r", 1, 10)
	})
	if allocs != 0 {
		t.Fatalf("disabled FlightRecorder allocates %v per event batch, want 0", allocs)
	}
}

// TestFlightRecorderRecordZeroAlloc pins the enabled record path: the
// ring slots are preallocated and names are constant strings, so
// recording into a live ring must also be alloc-free — the recorder is
// safe on the request hot path even when tracing is on.
func TestFlightRecorderRecordZeroAlloc(t *testing.T) {
	rec := obs.NewFlightRecorder("gate", 64)
	track := rec.RegisterTrack("x")
	allocs := testing.AllocsPerRun(100, func() {
		rec.Complete(track, "op", "ok", 0, 10)
		rec.Instant(track, "mark", 5)
		rec.InstantArg(track, "gauge", 5, 42)
		rec.Counter(track, "depth", 5, 1)
		rec.AsyncBegin("op", "r", 1, 0)
		rec.AsyncEnd("op", "r", 1, 10)
	})
	if allocs != 0 {
		t.Fatalf("enabled FlightRecorder allocates %v per event batch, want 0", allocs)
	}
}

// flightGateSink mirrors the server's flight sink shape: one enclosing
// span plus the three phases per op, recorded from ObserveSpan.
type flightGateSink struct {
	rec   *obs.FlightRecorder
	track obs.TrackID
}

func (s *flightGateSink) ObserveSpan(sp protocol.OpSpan) {
	s.rec.Complete(s.track, sp.Class.String(), sp.Outcome.String(), sp.Start, sp.End)
	s.rec.Complete(s.track, "parse", "", sp.Start, sp.ParseDone)
	s.rec.Complete(s.track, "execute", "", sp.ParseDone, sp.ExecDone)
	s.rec.Complete(s.track, "write", "", sp.ExecDone, sp.End)
	if sp.Opaque != 0 {
		s.rec.AsyncBegin("op", sp.Class.String(), sp.Opaque, sp.Start)
		s.rec.AsyncEnd("op", sp.Class.String(), sp.Opaque, sp.End)
	}
}

// TestASCIIGetWithFlightZeroAllocPerOp re-runs the ASCII GET gate with
// span observation AND flight recording enabled at full sampling: the
// traced hot path must stay zero-alloc per op, not just the dark one.
func TestASCIIGetWithFlightZeroAllocPerOp(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Set("k", []byte("0123456789abcdef"), 0, 0); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder("gate", 256)
	sink := &flightGateSink{rec: rec, track: rec.RegisterTrack("ops")}
	var clock int64
	nowNanos := func() sim.Ns { clock += 1000; return sim.Ns(clock) }
	var nullObs nullObserver
	session := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("get k\r\n")
		}
		b.WriteString("quit\r\n")
		return b.String()
	}
	serve := func(req string) {
		r := bufio.NewReaderSize(strings.NewReader(req), 4096)
		w := bufio.NewWriterSize(io.Discard, 4096)
		sess := protocol.NewSessionBuffered(st, r, w)
		sess.SetObserver(nullObs, nowNanos)
		sess.SetFlight(sink, 1)
		if err := sess.Serve(); err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	const small, large = 64, 2048
	reqSmall, reqLarge := session(small), session(large)
	allocsSmall := testing.AllocsPerRun(10, func() { serve(reqSmall) })
	allocsLarge := testing.AllocsPerRun(10, func() { serve(reqLarge) })
	if perOp := (allocsLarge - allocsSmall) / float64(large-small); perOp != 0 {
		t.Fatalf("flight-traced ASCII GET allocates %v per op (session totals: %v @ %d ops, %v @ %d ops), want 0",
			perOp, allocsSmall, small, allocsLarge, large)
	}
}

// nullObserver drops observations; the gate measures the span pipeline,
// not histogram bucketing (OpMetrics is separately alloc-free).
type nullObserver struct{}

func (nullObserver) ObserveOp(protocol.OpClass, protocol.Outcome, sim.Ns) {}

func TestKVStoreGetIntoBytesZeroAlloc(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Set("bench-key", []byte("bench-value-0123456789"), 0, 0); err != nil {
		t.Fatal(err)
	}
	key := []byte("bench-key")
	dst := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		out, _, ok := st.GetIntoBytes(dst, key)
		if !ok || len(out) == 0 {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetIntoBytes allocates %v per op, want 0", allocs)
	}
}

// serveGets runs one ASCII session issuing n GET commands and returns
// nothing; all per-session state is allocated inside so AllocsPerRun
// measurements at different n isolate the per-op cost.
func serveGets(t *testing.T, st *kvstore.Store, req string) {
	t.Helper()
	r := bufio.NewReaderSize(strings.NewReader(req), 4096)
	w := bufio.NewWriterSize(io.Discard, 4096)
	sess := protocol.NewSessionBuffered(st, r, w)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestASCIIMultigetZeroAllocPerOp extends the GET gate to the batched
// server path: a 16-key multiget served through kvstore.GetBatchInto
// must not allocate per operation in steady state. Per-session setup
// (scratch growth on the first command) is identical at both command
// counts, so any difference is per-op cost.
func TestASCIIMultigetZeroAllocPerOp(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 16; i++ {
		k := "key-" + string(rune('a'+i))
		keys = append(keys, k)
		if err := st.Set(k, []byte("0123456789abcdef"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	line := "get " + strings.Join(keys, " ") + "\r\n"
	session := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(line)
		}
		b.WriteString("quit\r\n")
		return b.String()
	}
	const small, large = 64, 1024
	reqSmall, reqLarge := session(small), session(large)

	allocsSmall := testing.AllocsPerRun(10, func() { serveGets(t, st, reqSmall) })
	allocsLarge := testing.AllocsPerRun(10, func() { serveGets(t, st, reqLarge) })
	if perOp := (allocsLarge - allocsSmall) / float64(large-small); perOp != 0 {
		t.Fatalf("ASCII 16-key multiget allocates %v per op (session totals: %v @ %d ops, %v @ %d ops), want 0",
			perOp, allocsSmall, small, allocsLarge, large)
	}
}

// TestKVStoreGetBatchIntoZeroAlloc measures the store-side batch call
// directly: with reused dst/out/scratch a 64-key batch is alloc-free.
func TestKVStoreGetBatchIntoZeroAlloc(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, 64)
	for i := range keys {
		k := []byte("batch-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		keys[i] = k
		if err := st.Set(string(k), []byte("bench-value-0123456789"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var scr kvstore.BatchScratch
	dst := make([]byte, 0, 4096)
	out := make([]kvstore.BatchResult, 0, 64)
	// Warm the scratch to its high-water mark.
	dst, out = st.GetBatchInto(dst[:0], keys, out[:0], &scr)
	allocs := testing.AllocsPerRun(100, func() {
		dst, out = st.GetBatchInto(dst[:0], keys, out[:0], &scr)
		if len(out) != len(keys) || !out[0].Found {
			t.Fatal("batch lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetBatchInto allocates %v per op, want 0", allocs)
	}
}

// TestKVStoreSetBatchZeroAlloc measures the store-side set batch: with
// reused ops/errs/scratch, a 64-op batch over existing keys is
// alloc-free (slab chunks recycle through the free lists).
func TestKVStoreSetBatchZeroAlloc(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	value := []byte("bench-value-0123456789")
	ops := make([]kvstore.SetOp, 64)
	for i := range ops {
		key := "sb-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		ops[i] = kvstore.SetOp{Key: key, Value: value}
	}
	var scr kvstore.BatchScratch
	errs := make([]error, 0, len(ops))
	// Warm the scratch and slab classes to their high-water mark.
	errs = st.SetBatch(ops, errs[:0], &scr)
	allocs := testing.AllocsPerRun(100, func() {
		errs = st.SetBatch(ops, errs[:0], &scr)
		for _, e := range errs {
			if e != nil {
				t.Fatal(e)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("SetBatch allocates %v per batch, want 0", allocs)
	}
}

// TestASCIIGetBatchedZeroAllocPerOp re-runs the ASCII GET gate through
// the event-loop batched path (session wired to a Coalescer): per-op
// allocations must stay exactly zero — the batching refactor is not
// allowed to spend the syscall win on heap churn.
func TestASCIIGetBatchedZeroAllocPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops Puts by design, so round recycling cannot be alloc-free")
	}
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Set("k", []byte("0123456789abcdef"), 0, 0); err != nil {
		t.Fatal(err)
	}
	coal := kvstore.NewCoalescer(st, kvstore.CoalescerOptions{})
	session := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("get k\r\n")
		}
		b.WriteString("quit\r\n")
		return b.String()
	}
	serve := func(req string) {
		r := bufio.NewReaderSize(strings.NewReader(req), 4096)
		w := bufio.NewWriterSize(io.Discard, 4096)
		sess := protocol.NewSessionBuffered(st, r, w)
		sess.SetCoalescer(coal)
		if err := sess.Serve(); err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	const small, large = 64, 2048
	reqSmall, reqLarge := session(small), session(large)
	allocsSmall := testing.AllocsPerRun(10, func() { serve(reqSmall) })
	allocsLarge := testing.AllocsPerRun(10, func() { serve(reqLarge) })
	if perOp := (allocsLarge - allocsSmall) / float64(large-small); perOp != 0 {
		t.Fatalf("batched ASCII GET allocates %v per op (session totals: %v @ %d ops, %v @ %d ops), want 0",
			perOp, allocsSmall, small, allocsLarge, large)
	}
}

func TestASCIIGetZeroAllocPerOp(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Set("k", []byte("0123456789abcdef"), 0, 0); err != nil {
		t.Fatal(err)
	}
	session := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("get k\r\n")
		}
		b.WriteString("quit\r\n")
		return b.String()
	}
	const small, large = 64, 2048
	reqSmall, reqLarge := session(small), session(large)

	// Per-session allocations (session struct, scratch growth on first
	// use) are identical for both sizes, so any difference is per-op
	// cost — which must be exactly zero.
	allocsSmall := testing.AllocsPerRun(10, func() { serveGets(t, st, reqSmall) })
	allocsLarge := testing.AllocsPerRun(10, func() { serveGets(t, st, reqLarge) })
	if perOp := (allocsLarge - allocsSmall) / float64(large-small); perOp != 0 {
		t.Fatalf("ASCII GET allocates %v per op (session totals: %v @ %d ops, %v @ %d ops), want 0",
			perOp, allocsSmall, small, allocsLarge, large)
	}
}
