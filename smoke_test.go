package kv3d

// End-to-end smoke tests tying the two halves together: the functional
// store served over TCP and the simulation regenerating a paper result,
// in one process.

import (
	"errors"
	"strings"
	"testing"

	"kv3d/internal/experiments"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
)

func TestSmokeFunctionalHalf(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := kvserver.New(st, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := kvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("smoke", []byte("test"), 0, 0); err != nil {
		t.Fatal(err)
	}
	it, err := c.Get("smoke")
	if err != nil || string(it.Value) != "test" {
		t.Fatalf("round trip: %v %q", err, it.Value)
	}
	if err := c.Delete("smoke"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("smoke"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("expected miss, got %v", err)
	}
}

func TestSmokeModelingHalf(t *testing.T) {
	res, err := experiments.Run("table4", experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables[1].String() // headline ratios
	for _, want := range []string{"Density", "TPS/Watt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("headline table missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeEveryExperimentRuns(t *testing.T) {
	for _, id := range experiments.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := experiments.Run(id, experiments.Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", id, tbl.Title)
				}
			}
		})
	}
}
