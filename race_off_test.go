//go:build !race

package kv3d

// See race_on_test.go.
const raceEnabled = false
