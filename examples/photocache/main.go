// Photocache: the McDipper scenario that motivates Iridium (§3.5, §4.2).
//
// A photo-serving cache holds large objects at moderate request rates.
// This example (1) runs the McDipper-style photo workload through the
// real kvstore to show hit-rate behaviour under memory pressure, and
// (2) compares Mercury and Iridium servers on that workload shape:
// Iridium trades per-GB throughput for 5x the density, which is exactly
// the right trade when the working set is huge and the request rate low.
//
// Run with: go run ./examples/photocache
package main

import (
	"errors"
	"fmt"
	"log"

	"kv3d/internal/cpu"
	"kv3d/internal/kvstore"
	"kv3d/internal/server"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
	"kv3d/internal/workload"
)

func main() {
	// --- Functional: photo traffic against the real store ---------------
	store, err := kvstore.New(kvstore.DefaultConfig(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.MixConfig{
		GetFraction: 0.95, // photos are written once, read many times
		Keys:        2000,
		ZipfSkew:    0.99,
		Values:      workload.McDipperSizes{},
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	// Under memory pressure a slab class can be unable to grow (slab
	// calcification — real memcached behaves the same way); a photo
	// cache simply serves those from origin without caching.
	rejected := 0
	fill := func(key string, size int64) {
		if err := store.Set(key, buf[:size], 0, 0); err != nil {
			if errors.Is(err, kvstore.ErrOutOfMemory) {
				rejected++
				return
			}
			log.Fatal(err)
		}
	}
	for i := 0; i < 20000; i++ {
		req := gen.Next()
		if req.IsGet {
			if _, ok := store.Get(req.Key); !ok {
				fill(req.Key, req.ValueBytes) // miss: fetch from origin
			}
		} else {
			fill(req.Key, req.ValueBytes)
		}
	}
	s := store.Stats()
	fmt.Printf("photo cache: %.1f%% hit rate, %d photos resident, %d evictions, %d uncacheable, %s slab\n",
		s.HitRate()*100, s.CurrItems, s.Evictions, rejected, fmtBytes(s.SlabBytes))

	// --- Modeled: which server do you buy for this? ---------------------
	const photoBytes = 64 << 10
	a7 := cpu.CortexA7()
	for _, d := range []server.Design{server.Mercury(a7, 32), server.Iridium(a7, 32)} {
		e, err := server.Evaluate(d)
		if err != nil {
			log.Fatal(err)
		}
		st, err := stackmodel.NewStack(stackmodel.Config{
			Core: d.Core, Cache: d.Cache, Mem: d.Mem, CoresPerStack: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := st.Measure(stackmodel.Get, photoBytes, 30)
		if err != nil {
			log.Fatal(err)
		}
		photoTPS := res.TPSPerCore * float64(d.CoresPerStack) * float64(e.Stacks)
		fmt.Printf("%-11s %7.0f GB of photos, %6.2fM photo GETs/s, p99 %8v, %4.0f W\n",
			d.Name+":", float64(e.DensityBytes)/(1<<30), photoTPS/1e6,
			sim.Duration(res.Hist.Percentile(99)), e.Power64BW)
	}
	fmt.Println("-> Iridium stores ~5x the photos per 1.5U box; its lower request")
	fmt.Println("   rate is fine for a photo tier that is density-bound, not TPS-bound.")
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
