// Cluster: a consistent-hash memcached cluster, the deployment shape of
// §2.3 and §3.8 — every Mercury stack is an independent node on the
// ring, so a 1.5U box contributes 96 nodes.
//
// This example starts several real kv3d TCP servers in-process, places
// them on a consistent-hash ring, routes traffic by key, then kills one
// node and shows that only that node's arc of keys is lost (the
// Memcached failure model: no persistence, the cache re-warms).
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"kv3d/internal/cluster"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
)

const numNodes = 4

func main() {
	// Start real TCP servers on ephemeral ports.
	ring := cluster.NewRing(0)
	servers := map[string]*kvserver.Server{}
	clients := map[string]*kvclient.Client{}
	for i := 0; i < numNodes; i++ {
		store, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
		if err != nil {
			log.Fatal(err)
		}
		srv := kvserver.New(store, nil)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		go srv.Serve()
		addr := srv.Addr().String()
		ring.Add(addr)
		servers[addr] = srv
		c, err := kvclient.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		clients[addr] = c
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	// Write a keyspace through the ring.
	const keys = 2000
	perNode := map[string]int{}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user:%05d", i)
		node, err := ring.Locate(key)
		if err != nil {
			log.Fatal(err)
		}
		if err := clients[node].Set(key, []byte(fmt.Sprintf("profile-%d", i)), 0, 0); err != nil {
			log.Fatal(err)
		}
		perNode[node]++
	}
	fmt.Printf("cluster: %d keys over %d nodes:\n", keys, numNodes)
	for addr, n := range perNode {
		fmt.Printf("  %s holds %4d keys (%.1f%%)\n", addr, n, 100*float64(n)/keys)
	}

	// Verify reads route correctly.
	hits := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user:%05d", i)
		node, _ := ring.Locate(key)
		if _, err := clients[node].Get(key); err == nil {
			hits++
		}
	}
	fmt.Printf("cluster: %d/%d reads hit before failure\n", hits, keys)

	// Kill one node: its arc misses, everything else still hits.
	var victim string
	for addr := range servers {
		victim = addr
		break
	}
	lostKeys := perNode[victim]
	clients[victim].Close()
	servers[victim].Close()
	ring.Remove(victim)
	fmt.Printf("cluster: killed %s (held %d keys)\n", victim, lostKeys)

	hits = 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user:%05d", i)
		node, _ := ring.Locate(key)
		if node == victim {
			log.Fatal("ring still routes to the dead node")
		}
		if _, err := clients[node].Get(key); err == nil {
			hits++
		}
	}
	fmt.Printf("cluster: %d/%d reads hit after failure — exactly the dead node's arc is cold\n", hits, keys)
	if hits != keys-lostKeys {
		log.Fatalf("expected %d hits, got %d: surviving arcs were disturbed", keys-lostKeys, hits)
	}
	fmt.Println("cluster: surviving nodes kept their keys; the cache re-warms on miss.")
}
