// Datacenter: the paper's motivating arithmetic (§1, §2.2–2.3). Industry
// contacts told the authors ~25% of data-center space is key-value
// stores, and Facebook's published 2008 cluster held 28TB of DRAM on
// over 800 memcached servers. This example sizes that cluster — capacity
// AND throughput — on each server design and prints the floor-space and
// power bill, which is the whole point of treating density as a
// first-class constraint.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math"

	"kv3d/internal/baseline"
	"kv3d/internal/cpu"
	"kv3d/internal/server"
)

// The published Facebook 2008 cluster (§2.3) plus a traffic assumption.
const (
	datasetTB    = 28.0
	clusterTPS   = 300e6 // aggregate peak, ~375K TPS/server on 800 boxes
	rackUnits    = 42    // per rack
	serverUnits  = 1.5   // every design here is a 1.5U box
	rackPowerKW  = 12.0  // typical provisioned rack power
	usdPerKWYear = 1000.0
)

type candidate struct {
	name     string
	memoryGB float64
	tps      float64
	powerW   float64
}

func main() {
	var candidates []candidate

	// Baselines from Table 4.
	for _, v := range []baseline.Version{baseline.V14, baseline.Bags} {
		x := baseline.Reference(v)
		candidates = append(candidates, candidate{
			name:     x.Name(),
			memoryGB: float64(x.MemoryBytes()) / (1 << 30),
			tps:      x.TPS64B(),
			powerW:   x.PowerW(),
		})
	}
	// Mercury-32 and Iridium-32 on A7.
	for _, d := range []server.Design{
		server.Mercury(cpu.CortexA7(), 32),
		server.Iridium(cpu.CortexA7(), 32),
	} {
		e, err := server.Evaluate(d)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, candidate{
			name:     d.Name + " (A7)",
			memoryGB: float64(e.DensityBytes) / (1 << 30),
			tps:      e.TPS64B,
			powerW:   e.Power64BW,
		})
	}

	fmt.Printf("Serving a %.0fTB key-value tier at %.0fM TPS peak:\n\n", datasetTB, clusterTPS/1e6)
	fmt.Printf("%-28s %8s %8s %7s %9s %12s\n",
		"design", "servers", "racks", "kW", "U-space", "power $/yr")
	for _, c := range candidates {
		byCapacity := datasetTB * 1024 / c.memoryGB
		byThroughput := clusterTPS / c.tps
		servers := math.Ceil(math.Max(byCapacity, byThroughput))
		binding := "capacity"
		if byThroughput > byCapacity {
			binding = "throughput"
		}
		kw := servers * c.powerW / 1000
		racksBySpace := servers * serverUnits / rackUnits
		racksByPower := kw / rackPowerKW
		racks := math.Ceil(math.Max(racksBySpace, racksByPower))
		fmt.Printf("%-28s %8.0f %8.0f %7.0f %9.0f %12.0f  (%s-bound)\n",
			c.name, servers, racks, kw, servers*serverUnits, kw*usdPerKWYear, binding)
	}
	fmt.Println("\nDensity as a first-class constraint: the Mercury boxes collapse the")
	fmt.Println("footprint by an order of magnitude, and Iridium goes further whenever")
	fmt.Println("the tier is capacity-bound rather than throughput-bound.")
}
