// Tiered: the deployment §3.5 points at — a small, fast Mercury tier in
// front of a dense Iridium tier. Hot objects are served from the DRAM
// tier at DRAM latency; the flash tier holds the full working set at 5x
// the density, and writes flow through to it (write-through keeps the
// flash tier authoritative, and the paper's endurance envelope is
// respected because the front tier absorbs re-reads, not writes).
//
// This example builds both tiers as real TCP memcached servers, runs a
// Zipf photo workload through the look-aside hierarchy, and reports the
// hit split plus the effective latency using the simulated per-tier RTTs.
//
// Run with: go run ./examples/tiered
package main

import (
	"errors"
	"fmt"
	"log"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/memmodel"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
	"kv3d/internal/workload"
)

func startTier(name string, memory int64) (*kvserver.Server, *kvclient.Client) {
	cfg := kvstore.DefaultConfig(memory)
	st, err := kvstore.New(cfg)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	srv := kvserver.New(st, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	go srv.Serve()
	c, err := kvclient.Dial(srv.Addr().String())
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return srv, c
}

func main() {
	// Front (Mercury-like): small and fast. Back (Iridium-like): 5x the
	// capacity — the stacks' real 4GB vs 19.8GB ratio, scaled down.
	frontSrv, front := startTier("front", 32<<20)
	backSrv, back := startTier("back", 192<<20)
	defer frontSrv.Close()
	defer backSrv.Close()
	defer front.Close()
	defer back.Close()

	gen, err := workload.NewGenerator(workload.MixConfig{
		GetFraction: 0.97,
		Keys:        4000,
		ZipfSkew:    0.99,
		Values:      workload.McDipperSizes{},
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 1<<20)

	// Under slab pressure a tier may refuse an object (out of memory for
	// that size class until reassignment catches up); a cache simply
	// serves such objects without storing them.
	uncached := 0
	trySet := func(c *kvclient.Client, key string, val []byte) {
		err := c.Set(key, val, 0, 0)
		switch {
		case err == nil:
		case errors.Is(err, kvclient.ErrServer):
			uncached++
		default:
			log.Fatal(err)
		}
	}

	var frontHits, backHits, originFills, writes int
	for i := 0; i < 8000; i++ {
		req := gen.Next()
		val := payload[:req.ValueBytes]
		if !req.IsGet {
			// Write-through: the dense tier is authoritative; the front
			// tier is invalidated rather than updated (cheaper, and it
			// re-warms on the next read).
			trySet(back, req.Key, val)
			front.Delete(req.Key)
			writes++
			continue
		}
		if _, err := front.Get(req.Key); err == nil {
			frontHits++
			continue
		} else if !errors.Is(err, kvclient.ErrNotFound) {
			log.Fatal(err)
		}
		if _, err := back.Get(req.Key); err == nil {
			backHits++
		} else if errors.Is(err, kvclient.ErrNotFound) {
			// Fill the authoritative tier from origin.
			trySet(back, req.Key, val)
			originFills++
		} else {
			log.Fatal(err)
		}
		// Promote into the front tier (best effort under its small limit).
		trySet(front, req.Key, val)
	}

	gets := frontHits + backHits + originFills
	fmt.Printf("tiered cache over %d GETs (+%d writes):\n", gets, writes)
	fmt.Printf("  front (DRAM tier) hits: %5d (%.1f%%)\n", frontHits, pct(frontHits, gets))
	fmt.Printf("  back (flash tier) hits: %5d (%.1f%%)\n", backHits, pct(backHits, gets))
	fmt.Printf("  origin fills:           %5d (%.1f%%)\n", originFills, pct(originFills, gets))
	if uncached > 0 {
		fmt.Printf("  uncacheable under pressure: %d\n", uncached)
	}

	// Effective latency from the simulated per-tier RTTs at the photo size.
	const photo = 64 << 10
	mercury, _ := stackmodel.NewStack(stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.L2MB2(),
		Mem: memmodel.MustDRAM3D(10 * sim.Nanosecond), CoresPerStack: 1})
	iridium, _ := stackmodel.NewStack(stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.L2MB2(),
		Mem: memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond), CoresPerStack: 1})
	mRes, err := mercury.Measure(stackmodel.Get, photo, 20)
	if err != nil {
		log.Fatal(err)
	}
	iRes, err := iridium.Measure(stackmodel.Get, photo, 20)
	if err != nil {
		log.Fatal(err)
	}
	f := float64(frontHits) / float64(gets)
	b := float64(backHits+originFills) / float64(gets)
	eff := f*mRes.MeanRTT.Seconds() + b*iRes.MeanRTT.Seconds()
	fmt.Printf("\nsimulated 64KB photo RTTs: Mercury %v, Iridium %v\n", mRes.MeanRTT, iRes.MeanRTT)
	fmt.Printf("effective read latency with this hit split: %v (%.0f%% of pure-Iridium)\n",
		sim.FromSeconds(eff), 100*eff/iRes.MeanRTT.Seconds())
	fmt.Println("\nThe front tier turns the dense-but-slow flash tier into a")
	fmt.Println("DRAM-latency service for the hot set — the hybrid §3.5 implies.")
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
