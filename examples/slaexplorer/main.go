// SLA explorer: Mercury and Iridium must hold sub-millisecond latency
// for the bulk of requests (the paper's SLA framing, §4.1 and abstract).
// This example sweeps request sizes on both designs and prints, for each
// size, the mean RTT, p99, and the fraction of requests under 1ms —
// showing where each design stops being SLA-safe.
//
// Run with: go run ./examples/slaexplorer
package main

import (
	"fmt"
	"log"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func main() {
	configs := []struct {
		name string
		mem  memmodel.Device
	}{
		{"Mercury (3D DRAM, 10ns)", memmodel.MustDRAM3D(10 * sim.Nanosecond)},
		{"Iridium (3D NAND, 10us)", memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond)},
	}
	sizes := []int64{64, 512, 4 << 10, 32 << 10, 256 << 10, 1 << 20}

	for _, cfgDef := range configs {
		fmt.Printf("\n%s — A7 cores, 2MB L2, GET requests\n", cfgDef.name)
		fmt.Printf("%-8s %12s %12s %10s %8s\n", "size", "mean RTT", "p99 RTT", "TPS/core", "<1ms")
		for _, size := range sizes {
			st, err := stackmodel.NewStack(stackmodel.Config{
				Core:          cpu.CortexA7(),
				Cache:         cache.L2MB2(),
				Mem:           cfgDef.mem,
				CoresPerStack: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := st.Measure(stackmodel.Get, size, 40)
			if err != nil {
				log.Fatal(err)
			}
			subMs := res.Hist.FractionBelow(int64(sim.Millisecond))
			marker := ""
			if subMs < 0.5 {
				marker = "  <-- SLA violated for most requests"
			}
			fmt.Printf("%-8s %12v %12v %10.0f %7.0f%%%s\n",
				sizeLabel(size), res.MeanRTT, sim.Duration(res.Hist.Percentile(99)),
				res.TPSPerCore, subMs*100, marker)
		}
	}
	fmt.Println("\nThe paper's claim holds: both designs keep typical (small) requests")
	fmt.Println("sub-millisecond; Iridium leaves the SLA envelope only for bulk objects.")
}

func sizeLabel(s int64) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dMB", s>>20)
	case s >= 1<<10:
		return fmt.Sprintf("%dKB", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}
