// Quickstart: the two faces of kv3d in ~60 lines.
//
//  1. The functional side: an embedded memcached-compatible store.
//  2. The modeling side: simulate a Mercury stack and print its
//     throughput on small GETs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/kvstore"
	"kv3d/internal/memmodel"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func main() {
	// --- 1. Embedded key-value store -----------------------------------
	store, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Set("greeting", []byte("hello, 3D-stacked world"), 0, 0); err != nil {
		log.Fatal(err)
	}
	entry, ok := store.Get("greeting")
	if !ok {
		log.Fatal("lost the greeting")
	}
	fmt.Printf("store: %q (cas=%d)\n", entry.Value, entry.CAS)

	if _, err := store.Incr("counter", 1); err != nil {
		store.Set("counter", []byte("1"), 0, 0)
	}
	n, _ := store.Incr("counter", 41)
	fmt.Printf("store: counter=%d, stats=%d items\n", n, store.ItemCount())

	// --- 2. Simulated Mercury stack -------------------------------------
	stack, err := stackmodel.NewStack(stackmodel.Config{
		Core:          cpu.CortexA7(),
		Cache:         cache.L2MB2(),
		Mem:           memmodel.MustDRAM3D(10 * sim.Nanosecond),
		CoresPerStack: 8, // a Mercury-8 stack
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := stack.Measure(stackmodel.Get, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mercury-8 stack: %.0f TPS on 64B GETs (mean RTT %v, p99 %v)\n",
		res.StackTPS, res.MeanRTT, sim.Duration(res.Hist.Percentile(99)))
	fmt.Printf("mercury-8 stack: a 96-stack 1.5U server would sustain ~%.1fM TPS\n",
		res.StackTPS*96/1e6)
}
