package kv3d

// The benchmark harness: one benchmark per table and figure of the
// paper (regenerating it end to end), microbenchmarks of the functional
// kvstore, and the ablation benches DESIGN.md calls out (L2 on/off,
// locking/eviction design, port sharing). Run:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable4 -v

import (
	"fmt"
	"testing"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/experiments"
	"kv3d/internal/kvstore"
	"kv3d/internal/memmodel"
	"kv3d/internal/obs"
	"kv3d/internal/serversim"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
	"kv3d/internal/workload"
)

// --- one benchmark per table / figure ----------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkTable1 regenerates the component power/area table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the memory-technology comparison.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates the 1.5U maximum-configuration table.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates the prior-art comparison and headline
// ratios.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFigure4 regenerates the GET/PUT breakdown.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates the Mercury-1 DRAM latency sweep.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates the Iridium-1 Flash latency sweep.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates density-vs-throughput.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates power-vs-throughput.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkThermal regenerates the §6.5 cooling analysis.
func BenchmarkThermal(b *testing.B) { benchExperiment(b, "thermal") }

// BenchmarkHotspot regenerates the §3.8 DHT load-balance study.
func BenchmarkHotspot(b *testing.B) { benchExperiment(b, "hotspot") }

// BenchmarkEndurance regenerates the Iridium flash-lifetime study.
func BenchmarkEndurance(b *testing.B) { benchExperiment(b, "endurance") }

// BenchmarkAblationSuite regenerates the design-choice ablations.
func BenchmarkAblationSuite(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkEvictionQuality regenerates the LRU-vs-Bags hit-rate study.
func BenchmarkEvictionQuality(b *testing.B) { benchExperiment(b, "eviction") }

// BenchmarkLoadLatency regenerates the open-loop load/latency study.
func BenchmarkLoadLatency(b *testing.B) { benchExperiment(b, "loadlatency") }

// --- functional kvstore microbenchmarks --------------------------------

func newBenchStore(b *testing.B, mode kvstore.ConcurrencyMode, policy kvstore.EvictionPolicy) *kvstore.Store {
	b.Helper()
	cfg := kvstore.DefaultConfig(256 << 20)
	cfg.Mode = mode
	cfg.Shards = 16
	cfg.Policy = policy
	st, err := kvstore.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func preload(b *testing.B, st *kvstore.Store, n int, valueBytes int) []string {
	b.Helper()
	keys := make([]string, n)
	val := make([]byte, valueBytes)
	for i := range keys {
		keys[i] = fmt.Sprintf("key:%08d", i)
		if err := st.Set(keys[i], val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	return keys
}

// BenchmarkStoreGet measures single-threaded GET latency.
func BenchmarkStoreGet(b *testing.B) {
	st := newBenchStore(b, kvstore.ModeStriped, kvstore.PolicyLRU)
	keys := preload(b, st, 65536, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(keys[i&65535]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreGetInto measures the allocation-free read path.
func BenchmarkStoreGetInto(b *testing.B) {
	st := newBenchStore(b, kvstore.ModeStriped, kvstore.PolicyLRU)
	keys := preload(b, st, 65536, 64)
	buf := make([]byte, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, ok := st.GetInto(buf[:0], keys[i&65535])
		if !ok {
			b.Fatal("miss")
		}
		buf = out
	}
}

// BenchmarkStoreSet measures single-threaded overwrite throughput.
func BenchmarkStoreSet(b *testing.B) {
	st := newBenchStore(b, kvstore.ModeStriped, kvstore.PolicyLRU)
	keys := preload(b, st, 65536, 64)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Set(keys[i&65535], val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batched GET (multiget) ---------------------------------------------

// BenchmarkMultiget regenerates the batched-GET amortization study
// (sim batch-size sweep plus live hot-path lock/alloc accounting).
func BenchmarkMultiget(b *testing.B) { benchExperiment(b, "multiget") }

// BenchmarkMultigetStoreBatch64 measures the zero-alloc 64-key batch
// read (GetBatchInto) against the striped store, rotating through the
// key space so every shard stays warm.
func BenchmarkMultigetStoreBatch64(b *testing.B) {
	st := newBenchStore(b, kvstore.ModeStriped, kvstore.PolicyLRU)
	keys := preload(b, st, 65536, 64)
	bkeys := make([][]byte, 64)
	for i := range bkeys {
		bkeys[i] = []byte(keys[i])
	}
	var scr kvstore.BatchScratch
	var dst []byte
	var out []kvstore.BatchResult
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range bkeys {
			bkeys[j] = append(bkeys[j][:0], keys[(i*64+j)&65535]...)
		}
		dst, out = st.GetBatchInto(dst[:0], bkeys, out[:0], &scr)
		if len(out) != 64 {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkMultigetSimBatch16 measures the closed-loop stack model's
// 16-key multiget and reports the simulated key throughput.
func BenchmarkMultigetSimBatch16(b *testing.B) {
	cfg := stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.L2MB2(),
		Mem: memmodel.MustDRAM3D(10 * sim.Nanosecond), CoresPerStack: 1,
	}
	var keyTPS float64
	for i := 0; i < b.N; i++ {
		st, err := stackmodel.NewStack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := st.MeasureMultiget(16, 64, 30)
		if err != nil {
			b.Fatal(err)
		}
		keyTPS = res.StackTPS * 16
	}
	b.ReportMetric(keyTPS, "simKeysTPS")
}

// --- ablation: locking and eviction design (Table 4 baselines) ----------

// benchContention drives parallel GET-heavy traffic at a store built
// like each Table 4 baseline: global lock + LRU (memcached 1.4),
// striped + LRU (1.6), striped + bags (Bags). The relative scaling is
// the ground truth behind the baseline contention model.
func benchContention(b *testing.B, mode kvstore.ConcurrencyMode, policy kvstore.EvictionPolicy) {
	st := newBenchStore(b, mode, policy)
	keys := preload(b, st, 65536, 64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := sim.NewRand(uint64(b.N))
		for pb.Next() {
			i := rng.Intn(65536)
			if rng.Float64() < 0.9 {
				st.Get(keys[i])
			} else {
				st.Set(keys[i], []byte("updated-value"), 0, 0)
			}
		}
	})
}

// BenchmarkContentionGlobalLRU is the memcached 1.4 analogue.
func BenchmarkContentionGlobalLRU(b *testing.B) {
	benchContention(b, kvstore.ModeGlobal, kvstore.PolicyLRU)
}

// BenchmarkContentionStripedLRU is the memcached 1.6 analogue.
func BenchmarkContentionStripedLRU(b *testing.B) {
	benchContention(b, kvstore.ModeStriped, kvstore.PolicyLRU)
}

// BenchmarkContentionStripedBags is the Bags analogue.
func BenchmarkContentionStripedBags(b *testing.B) {
	benchContention(b, kvstore.ModeStriped, kvstore.PolicyBags)
}

// --- ablation: stack design choices -------------------------------------

func benchStackTPS(b *testing.B, cfg stackmodel.Config, op stackmodel.Op, size int64) {
	b.Helper()
	var tps float64
	for i := 0; i < b.N; i++ {
		st, err := stackmodel.NewStack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := st.Measure(op, size, 30)
		if err != nil {
			b.Fatal(err)
		}
		tps = res.StackTPS
	}
	b.ReportMetric(tps, "simTPS")
}

// BenchmarkAblationL2On / Off quantify §6.2's L2 trade at 10ns DRAM.
func BenchmarkAblationL2On(b *testing.B) {
	benchStackTPS(b, stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.L2MB2(),
		Mem: memmodel.MustDRAM3D(10 * sim.Nanosecond), CoresPerStack: 1,
	}, stackmodel.Get, 64)
}

func BenchmarkAblationL2Off(b *testing.B) {
	benchStackTPS(b, stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.None(),
		Mem: memmodel.MustDRAM3D(10 * sim.Nanosecond), CoresPerStack: 1,
	}, stackmodel.Get, 64)
}

// BenchmarkAblationPortSharing16 vs 32 quantifies the 2-cores-per-port
// decision (§5.3) under port-heavy 1MB flash streams.
func BenchmarkAblationPortSharing16(b *testing.B) {
	benchStackTPS(b, stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.L2MB2(),
		Mem: memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond), CoresPerStack: 16,
	}, stackmodel.Get, 1<<20)
}

func BenchmarkAblationPortSharing32(b *testing.B) {
	benchStackTPS(b, stackmodel.Config{
		Core: cpu.CortexA7(), Cache: cache.L2MB2(),
		Mem: memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond), CoresPerStack: 32,
	}, stackmodel.Get, 1<<20)
}

// BenchmarkSimulatorEventThroughput measures raw kernel speed.
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	s := sim.New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(sim.Nanosecond, tick)
		}
	}
	s.After(sim.Nanosecond, tick)
	b.ResetTimer()
	s.Run()
}

// BenchmarkFTLWrite measures FTL write-path cost under churn.
func BenchmarkFTLWrite(b *testing.B) {
	f, err := memmodel.NewFTL(256, 64, 16)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRand(3)
	n := f.LogicalPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Write(rng.Intn(n)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.WriteAmplification(), "writeAmp")
}

// BenchmarkZipfSample measures workload generation cost.
func BenchmarkZipfSample(b *testing.B) {
	z, err := workload.NewZipf(1.01, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRand(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(rng)
	}
}

// BenchmarkAccelerator regenerates the GET-engine composition study.
func BenchmarkAccelerator(b *testing.B) { benchExperiment(b, "accelerator") }

// BenchmarkDiurnal regenerates the energy-proportionality study.
func BenchmarkDiurnal(b *testing.B) { benchExperiment(b, "diurnal") }

// BenchmarkDRAMSim regenerates the bank-level DRAM validation.
func BenchmarkDRAMSim(b *testing.B) { benchExperiment(b, "dramsim") }

// --- observability overhead (kv3d-obs) ----------------------------------

func benchServersimTraced(b *testing.B, traced bool) {
	b.Helper()
	cfg := serversim.Config{
		Stack: stackmodel.Config{
			Core: cpu.CortexA7(), Cache: cache.L2MB2(),
			Mem: memmodel.MustDRAM3D(10 * sim.Nanosecond), CoresPerStack: 8,
		},
		Stacks:     4,
		Op:         stackmodel.Get,
		ValueBytes: 64,
		OfferedTPS: 200_000,
		Duration:   10 * sim.Millisecond,
		Seed:       11,
	}
	for i := 0; i < b.N; i++ {
		if traced {
			cfg.Trace = obs.NewTracer()
		}
		if _, err := serversim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerDisabled is the baseline: a serversim run with a nil
// tracer, exercising the nil-check fast path on every event. Compare
// against BenchmarkTracerEnabled to see the cost tracing adds, and
// against historical numbers of this benchmark to prove the
// instrumentation hooks cost ~nothing when disabled.
func BenchmarkTracerDisabled(b *testing.B) { benchServersimTraced(b, false) }

// BenchmarkTracerEnabled runs the same experiment with a live tracer
// recording request, queue/service and sampler events.
func BenchmarkTracerEnabled(b *testing.B) { benchServersimTraced(b, true) }
