package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4, 5} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 16 are stored exactly.
	h := NewHistogram()
	for i := int64(0); i < 16; i++ {
		h.Record(i)
	}
	for p, want := range map[float64]int64{50: 7, 100: 15} {
		if got := h.Percentile(p); got != want {
			t.Errorf("p%v = %d, want %d", p, got, want)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative samples should clamp to 0, min = %d", h.Min())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Relative error of any percentile must stay within one sub-bucket
	// (1/16 = 6.25%).
	h := NewHistogram()
	var raw []int64
	for i := 0; i < 10000; i++ {
		v := int64(i*i + 1)
		h.Record(v)
		raw = append(raw, v)
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		got := float64(h.Percentile(p))
		want := float64(ExactPercentile(raw, p))
		if math.Abs(got-want)/want > 0.07 {
			t.Errorf("p%v = %v, exact %v (err %.2f%%)", p, got, want, 100*math.Abs(got-want)/want)
		}
	}
}

func TestBucketMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketIndex(x) <= bucketIndex(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLowConsistentProperty(t *testing.T) {
	// bucketLow(bucketIndex(v)) <= v for all v >= 0.
	f := func(a uint64) bool {
		v := int64(a >> 1) // keep positive
		i := bucketIndex(v)
		return bucketLow(i) <= v && (i == len(new(Histogram).counts)-1 || bucketLow(i+1) > v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	h := NewHistogram()
	// 900 samples at ~100us (in ps), 100 at ~10ms.
	for i := 0; i < 900; i++ {
		h.Record(100_000_000)
	}
	for i := 0; i < 100; i++ {
		h.Record(10_000_000_000)
	}
	if got := h.FractionBelow(1_000_000_000); math.Abs(got-0.9) > 0.001 {
		t.Fatalf("FractionBelow(1ms) = %v, want 0.9", got)
	}
	if got := h.FractionBelow(0); got != 0 {
		t.Fatalf("FractionBelow(0) = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	if math.Abs(a.Mean()-100.5) > 1e-9 {
		t.Fatalf("merged mean = %v", a.Mean())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a := NewHistogram()
	a.Record(5)
	a.Merge(NewHistogram())
	if a.Count() != 1 || a.Min() != 5 {
		t.Fatal("merging an empty histogram must not disturb stats")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramSummarize(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("summary count = %d", s.Count)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("summary percentiles not ordered: %+v", s)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	if h.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestPercentileEdges(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	h.Record(2000)
	if got := h.Percentile(0); got != 1000 {
		t.Fatalf("p0 = %d", got)
	}
	if got := h.Percentile(100); got != 2000 {
		t.Fatalf("p100 = %d", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("stddev = %v", w.StdDev())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford should report zero variance")
	}
}

func TestExactPercentile(t *testing.T) {
	s := []int64{5, 1, 3, 2, 4}
	if got := ExactPercentile(s, 50); got != 3 {
		t.Fatalf("exact p50 = %d", got)
	}
	if got := ExactPercentile(s, 0); got != 1 {
		t.Fatalf("exact p0 = %d", got)
	}
	if got := ExactPercentile(s, 100); got != 5 {
		t.Fatalf("exact p100 = %d", got)
	}
	if got := ExactPercentile(nil, 50); got != 0 {
		t.Fatalf("exact on empty = %d", got)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("ExactPercentile mutated its input")
	}
}

func TestMergeEqualsSingleRecording(t *testing.T) {
	// Recording a stream split across shards and merging must be
	// bit-identical to recording the whole stream into one histogram —
	// the property the per-stack/per-op aggregation in serversim and
	// kvserver relies on. Histogram is a comparable value type, so the
	// equality check covers every bucket and scalar.
	rng := rand.New(rand.NewSource(99))
	shards := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	all := NewHistogram()
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(1 << 30)
		shards[i%len(shards)].Record(v)
		all.Record(v)
	}
	merged := NewHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	if *merged != *all {
		t.Fatalf("merge != single recording:\nmerged: %v\nsingle: %v",
			merged.Summarize(), all.Summarize())
	}
	// Reset then re-merge reproduces it again: Reset leaves no residue.
	merged.Reset()
	if *merged != *NewHistogram() {
		t.Fatal("Reset left residue")
	}
	for _, s := range shards {
		merged.Merge(s)
	}
	if *merged != *all {
		t.Fatal("re-merge after Reset diverged")
	}
}
