// Package metrics provides the measurement primitives used by the kv3d
// models and harness: log-bucketed latency histograms with percentile
// queries, simple counters, and running statistics. Everything is plain
// single-threaded value code; concurrency (if any) is owned by callers.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-linear histogram of int64 samples (typically
// latencies in picoseconds). Values are bucketed with ~4.5% relative
// error: 16 linear sub-buckets per power of two. That is accurate enough
// for the paper's percentile claims ("a majority of requests within the
// sub-millisecond range") while staying allocation-free on record.
type Histogram struct {
	counts [64 * subBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

const subBuckets = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v) // exact for tiny values
	}
	exp := 63 - leadingZeros(uint64(v))
	// Position within the power-of-two range, in sub-bucket units.
	frac := (v - (1 << exp)) >> (exp - 4) // exp >= 4 here
	return exp*subBuckets + int(frac)
}

// bucketLow returns the lowest value that maps into bucket i; used to
// report percentile values.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i / subBuckets
	if exp >= 63 {
		// Positive int64 values max out at exponent 62, so these
		// buckets are unreachable; saturate for callers probing i+1.
		return math.MaxInt64
	}
	frac := int64(i % subBuckets)
	return (int64(1) << exp) + frac<<(exp-4)
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns an approximation (bucket lower bound) of the p-th
// percentile, p in [0, 100].
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// FractionBelow returns the fraction of samples strictly below v
// (bucket-granular, rounding pessimistically into the containing bucket).
func (h *Histogram) FractionBelow(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	idx := bucketIndex(v)
	var below uint64
	for i := 0; i < idx; i++ {
		below += h.counts[i]
	}
	return float64(below) / float64(h.total)
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// String summarizes the histogram for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Summary holds the standard set of statistics reported by experiments.
type Summary struct {
	Count uint64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
	P999  int64
	Max   int64
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// Welford keeps running mean/variance without storing samples; used for
// sanity checks on workload generators.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// ExactPercentile computes a percentile from a raw sample slice (used in
// tests to validate the histogram approximation). p in [0,100].
func ExactPercentile(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}
