package baseline

import (
	"math"
	"testing"
)

func TestPublishedOperatingPoints(t *testing.T) {
	// The contention model must reproduce the published Table 4 rows
	// within 5%.
	cases := []struct {
		v    Version
		tpsM float64
	}{
		{V14, 0.41},
		{V16, 0.52},
		{Bags, 3.15},
	}
	for _, c := range cases {
		x := Reference(c.v)
		got := x.TPS64B() / 1e6
		if math.Abs(got-c.tpsM)/c.tpsM > 0.05 {
			t.Errorf("%s: modeled %.3fM TPS, published %.2fM", c.v, got, c.tpsM)
		}
	}
}

func TestPublishedPower(t *testing.T) {
	for v, want := range map[Version]float64{V14: 143, V16: 159, Bags: 285} {
		if got := Reference(v).PowerW(); got != want {
			t.Errorf("%s power = %v, want %v", v, got, want)
		}
	}
}

func TestGlobalLockPlateaus(t *testing.T) {
	// Adding threads to 1.4 must saturate; Bags must scale nearly
	// linearly (the Wiggins & Langston observation).
	v14at6 := XeonServer{V14, 6}.TPS64B()
	v14at24 := XeonServer{V14, 24}.TPS64B()
	if v14at24 > v14at6*1.6 {
		t.Fatalf("1.4 should plateau: 6t=%.0f 24t=%.0f", v14at6, v14at24)
	}
	bags1 := XeonServer{Bags, 1}.TPS64B()
	bags16 := XeonServer{Bags, 16}.TPS64B()
	if bags16 < bags1*15 {
		t.Fatalf("Bags should scale ~linearly: 1t=%.0f 16t=%.0f", bags1, bags16)
	}
}

func TestBagsOver6xUnmodified(t *testing.T) {
	// §3.6: Bags is "over 6x higher than an unmodified Memcached".
	ratio := Reference(Bags).TPS64B() / Reference(V14).TPS64B()
	if ratio < 6 {
		t.Fatalf("Bags/1.4 = %.1fx, paper says >6x", ratio)
	}
}

func TestTSSPPublishedFigures(t *testing.T) {
	ts := TSSP{}
	if got := ts.TPSPerWatt() / 1e3; math.Abs(got-17.5) > 0.5 {
		t.Fatalf("TSSP TPS/W = %.2fK, paper says 17.63K", got)
	}
	if ts.MemoryBytes() != 8<<30 {
		t.Fatal("TSSP memory")
	}
	if ts.Name() != "TSSP" {
		t.Fatal("TSSP name")
	}
}

func TestDerivedMetrics(t *testing.T) {
	b := Reference(Bags)
	if got := b.TPSPerWatt() / 1e3; math.Abs(got-11.1) > 0.6 {
		t.Fatalf("Bags TPS/W = %.1fK, paper says 11.1K", got)
	}
	if got := b.TPSPerGB() / 1e3; math.Abs(got-24.6) > 1.5 {
		t.Fatalf("Bags TPS/GB = %.1fK, paper says 24.6K", got)
	}
	if got := b.BandwidthBytesPerSec() / 1e9; math.Abs(got-0.20) > 0.02 {
		t.Fatalf("Bags bandwidth = %.2f GB/s, paper says 0.20", got)
	}
}

func TestZeroThreads(t *testing.T) {
	if (XeonServer{V14, 0}).TPS64B() != 0 {
		t.Fatal("zero threads should produce zero TPS")
	}
}

func TestPowerInterpolation(t *testing.T) {
	// Off the published point, power should move with thread count.
	if (XeonServer{Bags, 8}).PowerW() >= Reference(Bags).PowerW() {
		t.Fatal("fewer threads should draw less power")
	}
}

func TestNames(t *testing.T) {
	if Reference(V14).Name() != "Memcached 1.4 (6 threads)" {
		t.Fatalf("name = %q", Reference(V14).Name())
	}
	if Version(9).String() != "unknown-memcached" {
		t.Fatal("unknown version name")
	}
}
