// Package baseline models the comparison systems of the paper's Table 4:
// memcached 1.4, 1.6, and the Bags-modified memcached running on a
// state-of-the-art Xeon server (Wiggins & Langston), plus the TSSP
// memcached accelerator (Lim et al.).
//
// Only the published operating points are known, so the Xeon model is a
// lock-contention scaling curve calibrated to them: throughput follows
// TPS(n) = r·n / (1 + s·(n-1)), the standard serialization law, where r
// is the per-thread 64B GET rate and s the serialized fraction of each
// request (global cache lock for 1.4, striped locks for 1.6, nearly
// lock-free reads for Bags). The same contention shapes are directly
// observable on our real kvstore under Go concurrency — see the
// BenchmarkContention ablations — which is what grounds the form of the
// model.
package baseline

import "fmt"

// Version identifies the memcached variant on the Xeon baseline.
type Version int

const (
	// V14 is memcached 1.4: one global cache lock, strict LRU.
	V14 Version = iota
	// V16 is memcached 1.6: finer-grained (striped) locking.
	V16
	// Bags is Wiggins & Langston's bag-based pseudo-LRU build.
	Bags
)

func (v Version) String() string {
	switch v {
	case V14:
		return "Memcached 1.4"
	case V16:
		return "Memcached 1.6"
	case Bags:
		return "Memcached Bags"
	default:
		return "unknown-memcached"
	}
}

// perThreadTPS is the uncontended per-thread 64B GET rate of one Xeon
// core through the Linux network stack (~5µs of combined stack and
// cache work per request).
const perThreadTPS = 200_000.0

// serialFraction returns the contention parameter s for each version,
// calibrated so the published (threads, TPS) operating points reproduce:
// 1.4: 6 threads → 0.41M; 1.6: 4 threads → 0.52M; Bags: 16 → 3.15M.
func serialFraction(v Version) float64 {
	switch v {
	case V14:
		return 0.386
	case V16:
		return 0.180
	case Bags:
		return 0.001
	default:
		return 1
	}
}

// XeonServer is one baseline server configuration.
type XeonServer struct {
	Version Version
	Threads int
}

// published Table 4 operating points.
type published struct {
	threads  int
	memoryGB int
	powerW   float64
	tpsM     float64
}

var publishedPoints = map[Version]published{
	V14:  {threads: 6, memoryGB: 12, powerW: 143, tpsM: 0.41},
	V16:  {threads: 4, memoryGB: 128, powerW: 159, tpsM: 0.52},
	Bags: {threads: 16, memoryGB: 128, powerW: 285, tpsM: 3.15},
}

// Reference returns the published Table 4 configuration for a version.
func Reference(v Version) XeonServer {
	return XeonServer{Version: v, Threads: publishedPoints[v].threads}
}

// TPS64B returns modeled 64B GET throughput at the configured thread
// count under the contention law.
func (x XeonServer) TPS64B() float64 {
	n := float64(x.Threads)
	if n < 1 {
		return 0
	}
	s := serialFraction(x.Version)
	return perThreadTPS * n / (1 + s*(n-1))
}

// PowerW models wall power: chassis idle plus per-active-thread draw,
// anchored to the published points.
func (x XeonServer) PowerW() float64 {
	p := publishedPoints[x.Version]
	if x.Threads == p.threads {
		return p.powerW
	}
	// Interpolate: idle floor plus linear per-thread power.
	idle := 100.0
	perThread := (p.powerW - idle) / float64(p.threads)
	return idle + perThread*float64(x.Threads)
}

// MemoryBytes reports the server's DRAM capacity.
func (x XeonServer) MemoryBytes() int64 {
	return int64(publishedPoints[x.Version].memoryGB) << 30
}

// TPSPerWatt is the Table 4 efficiency metric.
func (x XeonServer) TPSPerWatt() float64 { return x.TPS64B() / x.PowerW() }

// TPSPerGB is the Table 4 accessibility metric.
func (x XeonServer) TPSPerGB() float64 {
	return x.TPS64B() / (float64(x.MemoryBytes()) / (1 << 30))
}

// BandwidthBytesPerSec is the 64B payload bandwidth.
func (x XeonServer) BandwidthBytesPerSec() float64 { return x.TPS64B() * 64 }

// Name labels the configuration.
func (x XeonServer) Name() string {
	return fmt.Sprintf("%s (%d threads)", x.Version, x.Threads)
}

// TSSP is the Thin Servers with Smart Pipes accelerator (Lim et al.),
// included in Table 4 as published constants.
type TSSP struct{}

// TPS64B returns the published accelerator throughput.
func (TSSP) TPS64B() float64 { return 0.28e6 }

// PowerW returns the published system power.
func (TSSP) PowerW() float64 { return 16 }

// MemoryBytes returns the published capacity.
func (TSSP) MemoryBytes() int64 { return 8 << 30 }

// TPSPerWatt reproduces the paper's 17.63 KTPS/W figure.
func (t TSSP) TPSPerWatt() float64 { return t.TPS64B() / t.PowerW() }

// TPSPerGB is the accessibility metric.
func (t TSSP) TPSPerGB() float64 {
	return t.TPS64B() / (float64(t.MemoryBytes()) / (1 << 30))
}

// Name labels the row.
func (TSSP) Name() string { return "TSSP" }
