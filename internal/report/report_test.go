package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Columns: []string{"Name", "Value"},
		Note:    "just a demo",
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta-longer", 2.5)
	out := tbl.String()
	if !strings.HasPrefix(out, "Demo\n====\n") {
		t.Fatalf("title block wrong:\n%s", out)
	}
	if !strings.Contains(out, "note: just a demo") {
		t.Fatalf("note missing:\n%s", out)
	}
	// Columns must align: "alpha" padded to the width of "beta-longer".
	lines := strings.Split(out, "\n")
	var alphaLine, betaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "beta-longer") {
			betaLine = l
		}
	}
	if alphaLine == "" || betaLine == "" {
		t.Fatalf("rows missing:\n%s", out)
	}
	if strings.Index(alphaLine, "1") != strings.Index(betaLine, "2.5") {
		t.Fatalf("columns misaligned:\n%q\n%q", alphaLine, betaLine)
	}
}

func TestAddRowStringification(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b", "c", "d"}}
	tbl.AddRow("s", 42, 3.14159, 12345.6)
	row := tbl.Rows[0]
	if row[0] != "s" || row[1] != "42" {
		t.Fatalf("row = %v", row)
	}
	if row[2] != "3.14" {
		t.Fatalf("small float formatting: %q", row[2])
	}
	if row[3] != "12346" {
		t.Fatalf("large float formatting: %q", row[3])
	}
}

func TestFormatFloatZero(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}}
	tbl.AddRow(0.0)
	if tbl.Rows[0][0] != "0" {
		t.Fatalf("zero float = %q", tbl.Rows[0][0])
	}
}

func TestUntitledTable(t *testing.T) {
	tbl := &Table{Columns: []string{"x"}}
	tbl.AddRow("v")
	out := tbl.String()
	if strings.HasPrefix(out, "\n=") {
		t.Fatalf("untitled table should skip the title block:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "v") {
		t.Fatal("content missing")
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:          "512B",
		2 << 10:      "2.0KB",
		3 << 20:      "3.0MB",
		4 << 30:      "4.0GB",
		2 << 40:      "2.0TB",
		1536 << 20:   "1.5GB",
		19 << 30 / 2: "9.5GB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSI(t *testing.T) {
	cases := map[float64]string{
		5:      "5.0",
		1500:   "1.5K",
		2.5e6:  "2.50M",
		3.25e9: "3.25G",
		54770:  "54.8K",
		32.7e6: "32.70M",
	}
	for in, want := range cases {
		if got := SI(in); got != want {
			t.Errorf("SI(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRenderJSON(t *testing.T) {
	tbl := &Table{
		Title:   "J",
		Columns: []string{"Metric", "<1ms %"},
		Note:    "n",
	}
	tbl.AddRow("x", 1.5)
	var b strings.Builder
	if err := tbl.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Note    string     `json:"note"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if dec.Title != "J" || len(dec.Rows) != 1 || dec.Rows[0][1] != "1.50" || dec.Note != "n" {
		t.Fatalf("decoded = %+v", dec)
	}
	// Column headers pass through unescaped (SetEscapeHTML(false)).
	if !strings.Contains(b.String(), `"<1ms %"`) {
		t.Fatalf("HTML-escaped output:\n%s", b.String())
	}
	// Empty table still renders valid JSON with [] not null.
	b.Reset()
	if err := (&Table{}).RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"rows": []`) {
		t.Fatalf("empty rows should encode as []:\n%s", b.String())
	}
}
