// Package report renders experiment results as aligned ASCII tables,
// the output format of the kv3d-bench harness.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Note is free-form commentary printed under the table.
	Note string
}

// AddRow appends a row of cells, stringifying values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i], cell)
			} else {
				fmt.Fprint(w, cell)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		fmt.Fprintln(w, strings.Repeat("-", total-2))
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Bytes formats a byte count in binary units.
func Bytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// SI formats a count with K/M/G suffixes.
func SI(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// RenderJSON writes the table as a deterministic JSON object
// ({"title","columns","rows","note"}) for machine consumers; the field
// order is fixed and rows appear exactly as AddRow stringified them.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Note    string     `json:"note,omitempty"`
	}{t.Title, t.Columns, t.Rows, t.Note}
	if enc.Columns == nil {
		enc.Columns = []string{}
	}
	if enc.Rows == nil {
		enc.Rows = [][]string{}
	}
	e := json.NewEncoder(w)
	e.SetEscapeHTML(false)
	e.SetIndent("", "  ")
	return e.Encode(enc)
}
