package netmodel

import (
	"testing"
	"testing/quick"

	"kv3d/internal/sim"
)

func TestSegments(t *testing.T) {
	cases := map[int64]int64{
		0:              1,
		1:              1,
		MaxSegment:     1,
		MaxSegment + 1: 2,
		1 << 20:        (1<<20 + MaxSegment - 1) / MaxSegment,
	}
	for in, want := range cases {
		if got := Segments(in); got != want {
			t.Errorf("Segments(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFrameBytes(t *testing.T) {
	if got := FrameBytes(100); got != 100+HeaderBytes {
		t.Fatalf("FrameBytes(100) = %d", got)
	}
	// Multi-segment payloads pay one header per segment.
	payload := int64(3 * MaxSegment)
	if got := FrameBytes(payload); got != payload+3*HeaderBytes {
		t.Fatalf("FrameBytes(3 segs) = %d", got)
	}
}

func TestSerializationTime(t *testing.T) {
	// 1.25 GB/s: 1250 bytes in 1us.
	got := SerializationTime(1250 - HeaderBytes)
	if got != sim.Microsecond {
		t.Fatalf("SerializationTime = %v, want 1us", got)
	}
}

func TestWireTimeIncludesPropagation(t *testing.T) {
	if WireTime(0) <= PropagationDelay {
		t.Fatal("wire time must include serialization and propagation")
	}
	if got, want := WireTime(100)-SerializationTime(100), sim.Duration(PropagationDelay); got != want {
		t.Fatalf("propagation component = %v", got)
	}
}

func TestWireTimeMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return WireTime(x) <= WireTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFIFODelivery(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "wire")
	var order []int
	s.At(0, func() {
		l.Send(1<<20, func() { order = append(order, 1) }) // big first
		l.Send(64, func() { order = append(order, 2) })    // small queued after
	})
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("link must deliver FIFO, got %v", order)
	}
}

func TestLinkTiming(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "wire")
	var done sim.Time
	s.At(0, func() { l.Send(64, func() { done = s.Now() }) })
	s.Run()
	want := sim.Time(0).Add(WireTime(64))
	if done != want {
		t.Fatalf("delivery at %v, want %v", done, want)
	}
}

func TestMACForward(t *testing.T) {
	s := sim.New()
	m := NewMAC(s, "mac")
	var done sim.Time
	s.At(0, func() { m.Forward(64, func() { done = s.Now() }) })
	s.Run()
	if done == 0 {
		t.Fatal("MAC never completed")
	}
	// MAC must be faster than the wire for the same payload (cut-through
	// buffers above wire speed).
	if sim.Duration(done) >= WireTime(64) {
		t.Fatalf("MAC (%v) should beat wire (%v)", sim.Duration(done), WireTime(64))
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}
