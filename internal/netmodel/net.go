// Package netmodel models the 10GbE path between a client and a
// Mercury/Iridium stack: MTU segmentation, wire serialization and
// propagation, and the on-stack NIC MAC (Niagara-2 style store-and-
// forward with buffers). The TCP/IP software costs live with the other
// request-cost parameters in stackmodel; this package is the physics.
package netmodel

import (
	"fmt"

	"kv3d/internal/sim"
)

// 10GbE constants.
const (
	// MTU is the Ethernet payload limit per frame.
	MTU = 1500
	// HeaderBytes is Ethernet+IP+TCP header overhead per frame
	// (14 + 20 + 32 with timestamps).
	HeaderBytes = 66
	// MaxSegment is the TCP payload per frame.
	MaxSegment = MTU - 52 // IP(20) + TCP w/options(32)
	// WireBytesPerSec is 10Gb/s in bytes.
	WireBytesPerSec = 1.25e9
	// PropagationDelay is the one-way client-to-server latency through
	// the top-of-rack switch.
	PropagationDelay = 500 * sim.Nanosecond
	// MACForwardLatency is the fixed per-frame MAC processing cost on
	// top of buffer transfer.
	MACForwardLatency = 100 * sim.Nanosecond
	// MACBytesPerSec is the MAC's internal buffer bandwidth; the
	// on-stack TSV fabric runs well above wire speed, so the MAC is
	// closer to cut-through than store-and-forward.
	MACBytesPerSec = 5e9

	// Table 1 power figures.
	MACPowerW = 0.120
	PHYPowerW = 0.300
	// Table 1 / §5.5 area figures.
	MACAreaMM2    = 0.43
	PHYChipMM2    = 441.0 // packaged dual-PHY chip
	PHYsPerChip   = 2
	MaxServerNICs = 96 // back-panel port cap (§5.5)
)

// Segments returns the number of TCP segments carrying payload bytes.
// Zero-byte payloads still need one frame (the request/ack itself).
func Segments(payload int64) int64 {
	if payload <= 0 {
		return 1
	}
	return (payload + MaxSegment - 1) / MaxSegment
}

// FrameBytes returns total on-wire bytes for a payload including
// per-frame headers.
func FrameBytes(payload int64) int64 {
	return payload + Segments(payload)*HeaderBytes
}

// SerializationTime is the time to clock the payload's frames onto the
// wire at 10Gb/s.
func SerializationTime(payload int64) sim.Duration {
	return sim.FromSeconds(float64(FrameBytes(payload)) / WireBytesPerSec)
}

// WireTime is the one-way delivery time for a payload: serialization
// plus propagation.
func WireTime(payload int64) sim.Duration {
	return SerializationTime(payload) + PropagationDelay
}

// Link is a simulated unidirectional 10GbE link: frames serialize in
// FIFO order, then arrive after the propagation delay.
type Link struct {
	simr *sim.Simulator
	res  *sim.Resource
}

// NewLink creates a link on the simulator.
func NewLink(s *sim.Simulator, name string) *Link {
	return &Link{simr: s, res: sim.NewResource(s, name, 1)}
}

// Send delivers payload bytes; delivered runs when the last frame
// arrives at the far end.
func (l *Link) Send(payload int64, delivered func()) {
	l.res.Acquire(SerializationTime(payload), func() {
		l.simr.After(PropagationDelay, delivered)
	})
}

// MAC is the on-stack NIC MAC: it buffers each frame and forwards it to
// the destination core (or the PHY on transmit).
type MAC struct {
	res *sim.Resource
}

// NewMAC creates the MAC with a single forwarding engine.
func NewMAC(s *sim.Simulator, name string) *MAC {
	return &MAC{res: sim.NewResource(s, name, 1)}
}

// Forward processes a payload's frames; done runs after the last frame
// clears the MAC.
func (m *MAC) Forward(payload int64, done func()) {
	frames := Segments(payload)
	service := MACForwardLatency*sim.Duration(frames) +
		sim.FromSeconds(float64(FrameBytes(payload))/MACBytesPerSec)
	m.res.Acquire(service, done)
}

// Validate sanity-checks the constant relationships once at startup of
// tools (defensive: these are load-bearing for every experiment).
func Validate() error {
	if MaxSegment <= 0 || MaxSegment > MTU {
		return fmt.Errorf("netmodel: bad segment size %d", MaxSegment)
	}
	return nil
}
