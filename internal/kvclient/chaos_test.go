package kvclient_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kv3d/internal/faults"
	"kv3d/internal/faults/faultnet"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/testutil"
)

// chaosValue is a pure function of the key: values never change, so a
// hit anywhere in the replica set is correct by construction and the
// suite can assert full success, not just absence of crashes.
func chaosValue(key string) []byte {
	return []byte("value-of-" + key)
}

// TestChaosClusterFullSuccess is the headline resilience test: three
// kvserver nodes behind fault-injecting listeners, a seeded plan
// killing and reviving nodes (at most one down at a time) replayed by a
// Driver, and a shared ClusterClient with Replicas=2 driven from four
// goroutines. Every operation must succeed — replication covers the
// dead node, retries and failover cover the races — and the fault
// schedule must be byte-identical for the same seed.
func TestChaosClusterFullSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs a multi-second wall-clock plan")
	}
	testutil.CheckGoroutines(t)

	const nodes = 3
	genCfg := faults.GenConfig{
		Seed:      1234,
		Targets:   []string{"node-0", "node-1", "node-2"},
		Horizon:   2500 * sim.Millisecond,
		MeanGap:   200 * sim.Millisecond,
		MinOutage: 100 * sim.Millisecond,
		MaxOutage: 300 * sim.Millisecond,
		// Kinds defaults to NodeDown: the kill/revive schedule, capped
		// at one node down at a time.
	}
	plan, err := faults.Generate(genCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The determinism half of the acceptance criterion: regenerating
	// from the same seed yields a byte-identical schedule.
	again, err := faults.Generate(genCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plan.Encode(), again.Encode()) {
		t.Fatal("same seed produced different fault schedules")
	}
	if len(plan.Events) == 0 {
		t.Fatal("empty plan would make this suite vacuous")
	}

	reg := obs.NewRegistry()
	inj := faultnet.New()
	inj.SetProbes(reg)

	var addrs []string
	for i := 0; i < nodes; i++ {
		st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
		if err != nil {
			t.Fatal(err)
		}
		srv := kvserver.New(st, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.ServeOn(inj.Listener(fmt.Sprintf("node-%d", i), ln))
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}

	clientReg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:          addrs,
		Replicas:       2,
		OpTimeout:      500 * time.Millisecond,
		MaxRetries:     8,
		RetryBaseDelay: 4 * time.Millisecond,
		RetryMaxDelay:  100 * time.Millisecond,
		EjectAfter:     1,
		Probation:      75 * time.Millisecond,
		Seed:           99,
		Probes:         clientReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	driver := faultnet.NewDriver(plan, inj.Apply)
	driver.Start()
	defer driver.Stop()
	planDone := make(chan struct{})
	go func() { driver.Wait(); close(planDone) }()

	const workers = 4
	var failures atomic.Int64
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-planDone:
					return
				default:
				}
				if i >= 5000 { // safety cap; the plan ends the loop first
					return
				}
				key := fmt.Sprintf("chaos-w%d-k%d", w, i%25)
				if err := cc.Set(key, chaosValue(key), 0, 0); err != nil {
					failures.Add(1)
					t.Errorf("worker %d: set %s: %v", w, key, err)
					return
				}
				it, err := cc.Get(key)
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d: get %s: %v", w, key, err)
					return
				}
				if !bytes.Equal(it.Value, chaosValue(key)) {
					failures.Add(1)
					t.Errorf("worker %d: get %s returned %q", w, key, it.Value)
					return
				}
				ops.Add(2)
			}
		}(w)
	}
	wg.Wait()
	driver.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d operations failed; the resilience layer must absorb every planned fault",
			failures.Load(), ops.Load())
	}
	if ops.Load() < 100 {
		t.Fatalf("only %d operations ran against the plan — not a meaningful chaos run", ops.Load())
	}
	// The plan must actually have struck: kills were applied and the
	// client had to work for its 100%.
	if v := counterValue(reg, "faultnet.injected.node-down"); v == 0 {
		t.Fatal("no node-down event was applied; the suite ran against a healthy cluster")
	}
	if counterValue(clientReg, "kvclient.retries") == 0 &&
		counterValue(clientReg, "kvclient.failovers") == 0 &&
		counterValue(clientReg, "kvclient.ejections") == 0 {
		t.Fatal("client reports no retries, failovers, or ejections under a kill schedule")
	}
	t.Logf("chaos: %d ops, 0 failures, %d events applied, retries=%v failovers=%v ejections=%v readmissions=%v",
		ops.Load(), len(plan.Events),
		counterValue(clientReg, "kvclient.retries"),
		counterValue(clientReg, "kvclient.failovers"),
		counterValue(clientReg, "kvclient.ejections"),
		counterValue(clientReg, "kvclient.readmissions"))
}

// TestClusterClientNoLeaks pins connection and goroutine hygiene: a
// client that worked a cluster, survived a node death, and closed must
// leave nothing running.
func TestClusterClientNoLeaks(t *testing.T) {
	testutil.CheckGoroutines(t)
	var addrs []string
	var servers []*kvserver.Server
	for i := 0; i < 3; i++ {
		st, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
		if err != nil {
			t.Fatal(err)
		}
		srv := kvserver.New(st, nil)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr().String())
	}
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:      addrs,
		Replicas:   2,
		MaxRetries: 2,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("leak-%d", i)
		if err := cc.Set(key, []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one node mid-life; the client must drop its connection
	// without stranding a goroutine.
	servers[1].Close()
	for i := 0; i < 60; i++ {
		cc.Set(fmt.Sprintf("leak-%d", i), []byte("v2"), 0, 0)
	}
	if err := cc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
