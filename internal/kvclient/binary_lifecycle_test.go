package kvclient

import (
	"testing"

	"kv3d/internal/testutil"
)

// BinaryClient lifecycle coverage: the client owns no goroutines of its
// own, so the leak check here pins the *server-side* cost of a binary
// session — every Dial/Close cycle must return the per-connection
// handler goroutine, and a closed client must fail ops instead of
// wedging on a dead socket.

// TestBinaryClientLifecycleNoLeak churns dial/use/close cycles under
// the goroutine checker: each cycle's connection handler must wind down
// once the client hangs up (the binary session reads the quit op or
// EOF and exits).
func TestBinaryClientLifecycleNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _, addr := startFlightedServer(t, "binlife")
	for i := 0; i < 3; i++ {
		bc, err := DialBinary(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := bc.Set("lk", []byte("lv"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if it, err := bc.Get("lk"); err != nil || string(it.Value) != "lv" {
			t.Fatalf("get = %q, %v", it.Value, err)
		}
		if err := bc.Close(); err != nil {
			t.Fatalf("close cycle %d: %v", i, err)
		}
	}
	waitServerIdle(t, srv)
}

// TestBinaryClientOpsAfterCloseFail: a closed client must return errors
// rather than blocking on the dead connection.
func TestBinaryClientOpsAfterCloseFail(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _, addr := startFlightedServer(t, "binclosed")
	bc, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bc.Set("k", []byte("v"), 0, 0); err == nil {
		t.Fatal("Set on a closed client succeeded")
	}
	if _, err := bc.Get("k"); err == nil {
		t.Fatal("Get on a closed client succeeded")
	}
	waitServerIdle(t, srv)
}
