package kvclient

// Client-side flight recording: per-attempt op spans plus instants for
// the resilience layer's decisions (retry, backoff, failover, breaker
// transitions). On binary connections each attempt stamps its
// correlation id into the request opaque, so merging the client's
// recorder with the servers' (obs.WriteMergedTraceJSON) joins a client
// attempt to the exact server-side parse/execute/write phases that
// handled it. ASCII and UDP have no opaque, so their spans stay
// client-side only.
//
// kvclient sits outside the simulator's deterministic import closure,
// so defaulting to the wall clock is fine here; tests inject a fake
// through ClusterConfig.FlightNow for reproducible traces.

import (
	"errors"
	"sync/atomic"
	"time"

	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

// Span/instant names mirror the server's flightSink vocabulary: attempt
// spans reuse the protocol op-class strings ("get", "store", "delete")
// and async correlation uses the same ("op", opaque) key, which is what
// makes the merged view line up.
type clientFlight struct {
	rec    *obs.FlightRecorder
	now    func() sim.Ns
	ops    obs.TrackID // per-attempt op spans
	events obs.TrackID // resilience-layer instants

	// opaque allocates correlation ids in the low range; BinaryClient
	// self-assigns from autoOpaqueBase up, so the two never collide.
	opaque atomic.Uint32
}

// newClientFlight returns nil (a valid, disabled recorder) when rec is
// nil; every method is nil-safe.
func newClientFlight(rec *obs.FlightRecorder, now func() sim.Ns) *clientFlight {
	if rec == nil {
		return nil
	}
	if now == nil {
		now = func() sim.Ns { return sim.Ns(time.Now().UnixNano()) }
	}
	return &clientFlight{
		rec:    rec,
		now:    now,
		ops:    rec.RegisterTrack("cli.ops"),
		events: rec.RegisterTrack("cli.events"),
	}
}

// nextOpaque hands out the next correlation id (never 0 — 0 means
// "uncorrelated" throughout the flight pipeline).
func (f *clientFlight) nextOpaque() uint32 {
	if f == nil {
		return 0
	}
	return f.opaque.Add(1)
}

// attempt records one try against one node: a Complete span with its
// outcome, plus the async begin/end pair carrying the wire opaque when
// the attempt was correlated (binary protocol).
func (f *clientFlight) attempt(name, outcome string, opaque uint32, start, end sim.Ns) {
	if f == nil {
		return
	}
	f.rec.Complete(f.ops, name, outcome, start, end)
	if opaque != 0 {
		f.rec.AsyncBegin("op", name, uint64(opaque), start)
		f.rec.AsyncEnd("op", name, uint64(opaque), end)
	}
}

// instant drops a named marker on the events track.
func (f *clientFlight) instant(name string) {
	if f == nil {
		return
	}
	f.rec.Instant(f.events, name, f.now())
}

// backoff records a retry sleep with its duration as the argument.
func (f *clientFlight) backoff(d time.Duration) {
	if f == nil {
		return
	}
	f.rec.InstantArg(f.events, "backoff", f.now(), d.Nanoseconds())
}

// flightOutcome maps an attempt error onto the same outcome vocabulary
// the server uses ("ok" / "error" / "busy"). Protocol-level results
// (miss, not-stored) count as ok: the op executed.
func flightOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBusy):
		return "busy"
	case isTransport(err):
		return "error"
	default:
		return "ok" // protocol-level result (miss, not-stored): the op executed
	}
}
