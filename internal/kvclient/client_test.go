package kvclient

// Regression test for a bug found by the kv3d-lint errdrop check:
// Close used to discard the Flush result, so a connection that died
// before the best-effort quit went out reported a clean close.

import (
	"io"
	"net"
	"testing"
)

func TestCloseSurfacesFlushError(t *testing.T) {
	local, remote := net.Pipe()
	remote.Close() // the quit flush must now fail
	c := NewClient(local)
	if err := c.Close(); err == nil {
		t.Fatal("Close returned nil although the quit flush failed")
	}
}

func TestCloseCleanOnHealthyConn(t *testing.T) {
	local, remote := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(io.Discard, remote) // drain the quit
	}()
	c := NewClient(local)
	if err := c.Close(); err != nil {
		t.Fatalf("Close on healthy connection: %v", err)
	}
	remote.Close()
	<-done
}
