package kvclient

// Regression tests for three protocol bugs fixed in the multiget PR:
//
//   - getMulti with zero (or all-empty) keys used to write "get \r\n",
//     a malformed request the server answers with ERROR; duplicate keys
//     were sent and answered twice.
//   - getMulti trusted the advertised value length: it read n+2 bytes
//     but never checked the last two were CRLF, so a lying server
//     silently desynchronized the stream instead of failing fast.
//   - UDP reassembly let whichever fragment arrived last overwrite the
//     datagram count, so a corrupt fragment could truncate the value or
//     park the client until timeout.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// scriptedServer runs a one-shot ASCII exchange on the remote end of a
// pipe: read one request line, check it, write the canned response.
func scriptedServer(t *testing.T, remote net.Conn, wantLine, response string) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer remote.Close()
		line, err := bufio.NewReader(remote).ReadString('\n')
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if got := strings.TrimRight(line, "\r\n"); got != wantLine {
			t.Errorf("server received %q, want %q", got, wantLine)
		}
		if _, err := remote.Write([]byte(response)); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	return done
}

func TestGetMultiZeroKeysIsLocalNoop(t *testing.T) {
	// No server goroutine: net.Pipe writes rendezvous with a reader, so
	// if the client attempted any I/O this test would hang on the
	// deadline instead of returning instantly.
	local, remote := net.Pipe()
	defer local.Close()
	defer remote.Close()
	c := NewClientOptions(local, Options{OpTimeout: 100 * time.Millisecond})

	for _, keys := range [][]string{nil, {}, {""}, {"", ""}} {
		items, err := c.GetMulti(keys)
		if err != nil {
			t.Fatalf("GetMulti(%q) = %v, want nil error", keys, err)
		}
		if len(items) != 0 {
			t.Fatalf("GetMulti(%q) = %d items, want 0", keys, len(items))
		}
	}
}

func TestGetMultiDeduplicatesKeys(t *testing.T) {
	local, remote := net.Pipe()
	defer local.Close()
	done := scriptedServer(t, remote,
		"get alpha beta", // duplicates and the empty key are stripped, order kept
		"VALUE alpha 7 2\r\nva\r\nVALUE beta 9 2\r\nvb\r\nEND\r\n")
	c := NewClient(local)

	items, err := c.GetMulti([]string{"alpha", "beta", "alpha", "", "beta"})
	if err != nil {
		t.Fatalf("GetMulti: %v", err)
	}
	<-done
	if len(items) != 2 {
		t.Fatalf("GetMulti returned %d items, want 2", len(items))
	}
	if string(items["alpha"].Value) != "va" || items["alpha"].Flags != 7 {
		t.Fatalf("alpha = %+v", items["alpha"])
	}
	if string(items["beta"].Value) != "vb" || items["beta"].Flags != 9 {
		t.Fatalf("beta = %+v", items["beta"])
	}
}

// TestGetMultiTrailerDesync feeds the client a hostile response whose
// VALUE header advertises a length shorter than the bytes that follow.
// The old code returned a truncated value and left the reader pointed
// mid-stream; it must now detect the missing CRLF and fail with
// ErrProtocol.
func TestGetMultiTrailerDesync(t *testing.T) {
	local, remote := net.Pipe()
	defer local.Close()
	done := scriptedServer(t, remote,
		"get k",
		"VALUE k 0 3\r\nabcde\r\nEND\r\n") // claims 3 bytes, value is 5
	c := NewClient(local)

	_, err := c.GetMulti([]string{"k"})
	<-done
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("desynchronized stream returned %v, want ErrProtocol", err)
	}
}

func TestGetMultiValidTrailerStillWorks(t *testing.T) {
	local, remote := net.Pipe()
	defer local.Close()
	done := scriptedServer(t, remote,
		"gets k",
		"VALUE k 3 5 42\r\nhello\r\nEND\r\n")
	c := NewClient(local)

	it, err := c.Gets("k")
	<-done
	if err != nil {
		t.Fatalf("Gets: %v", err)
	}
	if string(it.Value) != "hello" || it.Flags != 3 || it.CAS != 42 {
		t.Fatalf("Gets = %+v", it)
	}
}

// udpExchange starts a one-shot UDP responder: it waits for one request
// datagram and answers with the frames produced by respond(reqID).
// Returns a client dialed at the responder.
func udpExchange(t *testing.T, respond func(reqID uint16) [][]byte) *UDPClient {
	t.Helper()
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go func() {
		buf := make([]byte, 2048)
		n, addr, err := srv.ReadFromUDP(buf)
		if err != nil || n < 8 {
			return
		}
		reqID := binary.BigEndian.Uint16(buf[0:])
		for _, frame := range respond(reqID) {
			srv.WriteToUDP(frame, addr)
		}
	}()
	c, err := DialUDP(srv.LocalAddr().String(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// udpFrame builds one response datagram: 8-byte header + payload chunk.
func udpFrame(reqID, seq, count uint16, payload string) []byte {
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(frame[0:], reqID)
	binary.BigEndian.PutUint16(frame[2:], seq)
	binary.BigEndian.PutUint16(frame[4:], count)
	copy(frame[8:], payload)
	return frame
}

// TestUDPGetMismatchedFragmentCounts: two fragments of one response
// disagree about the datagram count. The old client let the last
// arrival win; it must now reject the response outright.
func TestUDPGetMismatchedFragmentCounts(t *testing.T) {
	c := udpExchange(t, func(reqID uint16) [][]byte {
		return [][]byte{
			udpFrame(reqID, 0, 3, "VALUE k 0 10\r\nabcde"),
			udpFrame(reqID, 1, 2, "fghij\r\nEND\r\n"), // lies: count 2, first said 3
		}
	})
	_, err := c.Get("k")
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("mismatched counts returned %v, want ErrProtocol", err)
	}
}

func TestUDPGetSeqOutOfRange(t *testing.T) {
	c := udpExchange(t, func(reqID uint16) [][]byte {
		return [][]byte{udpFrame(reqID, 5, 2, "VALUE k 0 2\r\nhi\r\nEND\r\n")}
	})
	_, err := c.Get("k")
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("out-of-range seq returned %v, want ErrProtocol", err)
	}
}

// TestUDPGetMissingEndTrailer: all advertised fragments arrive but the
// reassembled response stops mid-value — the header's count undersold
// the payload. Must fail instead of returning a truncated item.
func TestUDPGetMissingEndTrailer(t *testing.T) {
	c := udpExchange(t, func(reqID uint16) [][]byte {
		return [][]byte{udpFrame(reqID, 0, 1, "VALUE k 0 50\r\nonly-part-of-the-value")}
	})
	_, err := c.Get("k")
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("missing END returned %v, want ErrProtocol", err)
	}
}

// TestUDPGetOutOfOrderWithDuplicates: the positive case — fragments
// arriving reordered, with one duplicated (UDP may duplicate), still
// reassemble into the right value.
func TestUDPGetOutOfOrderWithDuplicates(t *testing.T) {
	c := udpExchange(t, func(reqID uint16) [][]byte {
		return [][]byte{
			udpFrame(reqID, 2, 3, "ij\r\nEND\r\n"),
			udpFrame(reqID, 0, 3, "VALUE k 6 10\r\nabc"),
			udpFrame(reqID, 0, 3, "VALUE k 6 10\r\nabc"), // duplicate of seq 0
			udpFrame(reqID, 1, 3, "defgh"),
		}
	})
	it, err := c.Get("k")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(it.Value) != "abcdefghij" || it.Flags != 6 {
		t.Fatalf("Get = %+v, want value abcdefghij flags 6", it)
	}
}

// TestUDPGetValueTrailerMismatch: single datagram whose value bytes and
// advertised length disagree but which still ends in END — the parser
// must catch the bad CRLF position.
func TestUDPGetValueTrailerMismatch(t *testing.T) {
	c := udpExchange(t, func(reqID uint16) [][]byte {
		return [][]byte{udpFrame(reqID, 0, 1, "VALUE k 0 3\r\nabcde\r\nEND\r\n")}
	})
	_, err := c.Get("k")
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad value trailer returned %v, want ErrProtocol", err)
	}
}
