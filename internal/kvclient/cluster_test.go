package kvclient_test

import (
	"errors"
	"fmt"
	"testing"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
)

func startNode(t *testing.T) (*kvserver.Server, string) {
	t.Helper()
	st, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := kvserver.New(st, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func startCluster(t *testing.T, n, replicas int) (*kvclient.ClusterClient, []string, map[string]*kvserver.Server) {
	t.Helper()
	var addrs []string
	servers := map[string]*kvserver.Server{}
	for i := 0; i < n; i++ {
		srv, addr := startNode(t)
		addrs = append(addrs, addr)
		servers[addr] = srv
	}
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{Addrs: addrs, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc, addrs, servers
}

func TestClusterValidation(t *testing.T) {
	if _, err := kvclient.NewCluster(kvclient.ClusterConfig{}); !errors.Is(err, kvclient.ErrNoNodes) {
		t.Fatalf("empty cluster err = %v", err)
	}
}

func TestClusterSetGetAcrossNodes(t *testing.T) {
	cc, _, servers := startCluster(t, 4, 1)
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := cc.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		it, err := cc.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("get k%d: %v", i, err)
		}
		if string(it.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q", i, it.Value)
		}
	}
	// Keys must actually be spread: every server should hold some.
	for addr, srv := range servers {
		if srv.Store().ItemCount() == 0 {
			t.Errorf("node %s holds no keys", addr)
		}
	}
}

func TestClusterMiss(t *testing.T) {
	cc, _, _ := startCluster(t, 2, 1)
	if _, err := cc.Get("absent"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := cc.Delete("absent"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("delete err = %v", err)
	}
}

func TestClusterDelete(t *testing.T) {
	cc, _, _ := startCluster(t, 3, 1)
	cc.Set("k", []byte("v"), 0, 0)
	if err := cc.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Get("k"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
}

func TestClusterReplicationSurvivesNodeLoss(t *testing.T) {
	cc, _, servers := startCluster(t, 4, 2)
	const keys = 100
	for i := 0; i < keys; i++ {
		if err := cc.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one node (keep it on the ring: the client must fail over).
	var victim string
	for addr, srv := range servers {
		victim = addr
		srv.Close()
		break
	}
	hits := 0
	for i := 0; i < keys; i++ {
		if _, err := cc.Get(fmt.Sprintf("k%d", i)); err == nil {
			hits++
		}
	}
	if hits != keys {
		t.Fatalf("with R=2, all keys must survive one node loss; got %d/%d (victim %s)", hits, keys, victim)
	}
}

func TestClusterRemoveNodeRebalances(t *testing.T) {
	cc, addrs, _ := startCluster(t, 3, 1)
	cc.Set("stable-key", []byte("v"), 0, 0)
	cc.RemoveNode(addrs[0])
	if got := len(cc.Nodes()); got != 2 {
		t.Fatalf("nodes = %d", got)
	}
	// Writes must still work after removal.
	if err := cc.Set("after", []byte("v2"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Get("after"); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSingleNodeDownWritesFail(t *testing.T) {
	cc, _, servers := startCluster(t, 1, 1)
	for _, srv := range servers {
		srv.Close()
	}
	if err := cc.Set("k", []byte("v"), 0, 0); err == nil {
		t.Fatal("set must fail with every replica down")
	}
}
