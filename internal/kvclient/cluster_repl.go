package kvclient

import (
	"bytes"
	"errors"

	"kv3d/internal/protocol"
)

// Replication-aware cluster operations: per-op consistency modes
// (async fire-and-forget vs quorum ack, carried in the binary
// protocol's vbucket field) and read-repair across divergent replicas.

// ModeConn is the optional per-node surface for mode-carrying writes;
// only the BinaryClient satisfies it (the ASCII protocol has no field
// to carry a mode, so ASCII clusters always get the server default).
type ModeConn interface {
	SetWithMode(key string, value []byte, flags uint32, exptime int64, mode protocol.ReplMode) error
	DeleteWithMode(key string, mode protocol.ReplMode) error
}

// ErrModeNeedsBinary reports a per-op replication mode requested on an
// ASCII cluster (set ClusterConfig.Binary).
var ErrModeNeedsBinary = errors.New("kvclient: per-op replication modes require a binary-protocol cluster")

// SetMode writes a key through its primary owner with an explicit
// replication mode; the owning server fans the write out to its
// replicas (asynchronously for ReplAsync, synchronously for
// ReplQuorum). Unlike Set — which writes every replica from the client
// — SetMode sends one frame and lets the server own replication, so
// replica sets tracked by server membership stay authoritative.
//
// Transport failures fail over to the next ring rank (any owner can
// accept the write and fan out). ErrNoQuorum means the primary stored
// the value locally but could not gather a quorum of replica acks: the
// write is durable on at least one node and retry-safe, but not
// quorum-acknowledged.
func (c *ClusterClient) SetMode(key string, value []byte, flags uint32, exptime int64, mode protocol.ReplMode) error {
	return c.withRetry(func() error {
		return c.modeWriteOnce(key, "store", func(mc ModeConn) error {
			return mc.SetWithMode(key, value, flags, exptime, mode)
		})
	})
}

// DeleteMode removes a key through its primary owner with an explicit
// replication mode, as on SetMode. ErrNotFound is authoritative from
// the first owner that answers.
func (c *ClusterClient) DeleteMode(key string, mode protocol.ReplMode) error {
	return c.withRetry(func() error {
		return c.modeWriteOnce(key, "delete", func(mc ModeConn) error {
			return mc.DeleteWithMode(key, mode)
		})
	})
}

// modeWriteOnce runs one mode-carrying write against the key's owners
// in ring order, failing over on transport errors only: any other
// answer (stored, not-found, no-quorum, busy) is the authoritative
// outcome of this attempt.
func (c *ClusterClient) modeWriteOnce(key, opName string, fn func(ModeConn) error) error {
	c.maybeReadmit()
	owners, err := c.ownersFor(key)
	if err != nil {
		return err
	}
	var lastErr error
	for i, addr := range owners {
		err := c.observedOp(addr, opName, func(conn NodeConn) error {
			mc, ok := conn.(ModeConn)
			if !ok {
				return ErrModeNeedsBinary
			}
			return fn(mc)
		})
		if isTransport(err) {
			c.recordFailure(addr)
			lastErr = err
			continue
		}
		// The node answered; its verdict stands.
		c.recordSuccess(addr)
		if i > 0 {
			c.count("kvclient.failovers")
			c.flight.instant("failover")
		}
		switch {
		case errors.Is(err, ErrNoQuorum):
			c.count("kvclient.quorum_failures")
			c.flight.instant("quorum.fail")
		case errors.Is(err, ErrBusy):
			c.count("kvclient.busy")
		}
		return err
	}
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return lastErr
}

// getRepair reads every replica of key, takes the lowest-ranked hit as
// authoritative, and rewrites replicas that answered with a miss or a
// divergent value. Replicas that failed at the transport level are
// left alone (they are unreachable, not divergent — the breaker deals
// with them) and repairs are best-effort: a failed repair write does
// not fail the read.
func (c *ClusterClient) getRepair(key string, owners []string) (Item, error) {
	type reply struct {
		addr string
		it   Item
		miss bool
	}
	replies := make([]reply, 0, len(owners))
	lastErr := error(ErrNotFound)
	for _, addr := range owners {
		var it Item
		err := c.observedOp(addr, "get", func(conn NodeConn) error {
			var e error
			it, e = conn.Get(key)
			return e
		})
		switch {
		case err == nil:
			c.recordSuccess(addr)
			replies = append(replies, reply{addr: addr, it: it})
		case errors.Is(err, ErrNotFound):
			c.recordSuccess(addr)
			replies = append(replies, reply{addr: addr, miss: true})
		case isTransport(err):
			c.recordFailure(addr)
			lastErr = err
		default:
			if errors.Is(err, ErrBusy) {
				c.count("kvclient.busy")
			}
			lastErr = err
		}
	}
	// Lowest-ranked hit wins: ring order is the write preference order,
	// so rank 0 saw the newest successful write first.
	auth := -1
	for i, r := range replies {
		if !r.miss {
			auth = i
			break
		}
	}
	if auth < 0 {
		// Every reachable replica missed (or none was reachable).
		if len(replies) > 0 {
			return Item{}, ErrNotFound
		}
		return Item{}, lastErr
	}
	it := replies[auth].it
	for i, r := range replies {
		if i == auth || (!r.miss && bytes.Equal(r.it.Value, it.Value) && r.it.Flags == it.Flags) {
			continue
		}
		rerr := c.observedOp(r.addr, "store", func(conn NodeConn) error {
			return conn.Set(key, it.Value, it.Flags, 0)
		})
		if rerr == nil {
			c.count("kvclient.read_repairs")
			c.flight.instant("read.repair")
		} else if isTransport(rerr) {
			c.recordFailure(r.addr)
		}
	}
	return it, nil
}
