package kvclient_test

// Tests for the replication-aware cluster surface: per-op write modes,
// read-repair, and the GetMulti failover-round re-resolution fix.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
)

// startReplCluster builds a binary-protocol cluster with fast retries,
// a one-failure breaker, and a long probation (ejected nodes stay out
// for the duration of the test).
func startReplCluster(t *testing.T, n, replicas int, readRepair bool) (*kvclient.ClusterClient, []string, *obs.Registry) {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		_, addr := startNode(t)
		addrs = append(addrs, addr)
	}
	reg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:       addrs,
		Replicas:    replicas,
		Binary:      true,
		ReadRepair:  readRepair,
		MaxRetries:  1,
		EjectAfter:  1,
		Probation:   time.Minute,
		DialTimeout: 500 * time.Millisecond,
		OpTimeout:   500 * time.Millisecond,
		Sleep:       func(time.Duration) {},
		Probes:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc, addrs, reg
}

// TestClusterGetMultiReResolvesOwners is the regression for the frozen
// replica-set staleness bug: with Replicas=1, a key whose only listed
// owner dies mid-scatter used to fail even though the ejection had
// already promoted a live node — holding the key — to primary. Failover
// rounds must re-resolve placement, not replay the stale list.
func TestClusterGetMultiReResolvesOwners(t *testing.T) {
	var addrs []string
	servers := map[string]interface{ Close() error }{}
	for i := 0; i < 2; i++ {
		srv, addr := startNode(t)
		addrs = append(addrs, addr)
		servers[addr] = srv
	}
	reg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:       addrs,
		Replicas:    1,
		MaxRetries:  1,
		EjectAfter:  1,
		Probation:   time.Minute,
		DialTimeout: 500 * time.Millisecond,
		OpTimeout:   500 * time.Millisecond,
		Sleep:       func(time.Duration) {},
		Probes:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })

	// Find a key whose single owner is addrs[0].
	key := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("rk-%d", i)
		owners, err := cc.Owners(k)
		if err != nil {
			t.Fatal(err)
		}
		if owners[0] == addrs[0] {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key placed on node 0 in 10000 tries")
	}

	// Seed the value on the *other* node — the one that becomes primary
	// once node 0 is ejected — then kill node 0.
	direct, err := kvclient.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if err := direct.Set(key, []byte("survivor"), 0, 0); err != nil {
		t.Fatal(err)
	}
	servers[addrs[0]].Close()

	items, err := cc.GetMulti([]string{key})
	if err != nil {
		t.Fatalf("GetMulti after owner death: %v (stale frozen replica set?)", err)
	}
	it, ok := items[key]
	if !ok || string(it.Value) != "survivor" {
		t.Fatalf("items[%q] = %+v, ok=%v", key, it, ok)
	}
	if got := reg.Counter("kvclient.failovers").Value(); got == 0 {
		t.Fatal("failover counter stayed zero")
	}
}

func TestClusterSetModeNeedsBinary(t *testing.T) {
	_, addr := startNode(t)
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{Addrs: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	err = cc.SetMode("k", []byte("v"), 0, 0, protocol.ReplQuorum)
	if !errors.Is(err, kvclient.ErrModeNeedsBinary) {
		t.Fatalf("err = %v, want ErrModeNeedsBinary", err)
	}
}

// TestClusterSetModeRoundTrip: mode-carrying writes land on the
// primary (a replication-free server ignores the mode) and are
// readable; DeleteMode removes them.
func TestClusterSetModeRoundTrip(t *testing.T) {
	cc, _, _ := startReplCluster(t, 3, 2, false)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("sm-%d", i)
		if err := cc.SetMode(k, []byte("v-"+k), 9, 0, protocol.ReplAsync); err != nil {
			t.Fatalf("SetMode %q: %v", k, err)
		}
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("sm-%d", i)
		it, err := cc.Get(k)
		if err != nil || string(it.Value) != "v-"+k || it.Flags != 9 {
			t.Fatalf("Get %q = %+v, %v", k, it, err)
		}
	}
	if err := cc.DeleteMode("sm-0", protocol.ReplQuorum); err != nil {
		t.Fatalf("DeleteMode: %v", err)
	}
	if _, err := cc.Get("sm-0"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("Get after DeleteMode = %v, want ErrNotFound", err)
	}
	if err := cc.DeleteMode("sm-absent", protocol.ReplQuorum); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("DeleteMode absent = %v, want ErrNotFound", err)
	}
}

// TestClusterSetModeFailsOver: a dead primary does not fail the write
// — any owner accepts a mode-carrying frame and fans out.
func TestClusterSetModeFailsOver(t *testing.T) {
	var addrs []string
	var srvs []interface{ Close() error }
	for i := 0; i < 3; i++ {
		srv, addr := startNode(t)
		addrs = append(addrs, addr)
		srvs = append(srvs, srv)
	}
	reg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs: addrs, Replicas: 2, Binary: true,
		MaxRetries: 1, EjectAfter: 1, Probation: time.Minute,
		DialTimeout: 500 * time.Millisecond, OpTimeout: 500 * time.Millisecond,
		Sleep: func(time.Duration) {}, Probes: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })

	owners, err := cc.Owners("fo-key")
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if a == owners[0] {
			srvs[i].Close()
		}
	}
	if err := cc.SetMode("fo-key", []byte("fv"), 0, 0, protocol.ReplAsync); err != nil {
		t.Fatalf("SetMode with dead primary: %v", err)
	}
	if it, err := cc.Get("fo-key"); err != nil || string(it.Value) != "fv" {
		t.Fatalf("Get after failover write = %+v, %v", it, err)
	}
	if reg.Counter("kvclient.failovers").Value() == 0 {
		t.Fatal("failover counter stayed zero")
	}
}

// TestClusterReadRepair: a replica that lost a key (or diverged) is
// rewritten from the authoritative copy on the next Get.
func TestClusterReadRepair(t *testing.T) {
	cc, _, reg := startReplCluster(t, 3, 2, true)

	if err := cc.Set("rr-key", []byte("good"), 3, 0); err != nil {
		t.Fatal(err)
	}
	owners, err := cc.Owners("rr-key")
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) < 2 {
		t.Fatalf("owners = %v", owners)
	}
	// Clobber the secondary replica behind the cluster client's back.
	direct, err := kvclient.DialBinary(owners[1])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if err := direct.Delete("rr-key"); err != nil {
		t.Fatal(err)
	}

	it, err := cc.Get("rr-key")
	if err != nil || string(it.Value) != "good" || it.Flags != 3 {
		t.Fatalf("Get = %+v, %v", it, err)
	}
	if got := reg.Counter("kvclient.read_repairs").Value(); got != 1 {
		t.Fatalf("read_repairs = %d, want 1", got)
	}
	// The repaired replica answers directly now.
	rit, err := direct.Get("rr-key")
	if err != nil || string(rit.Value) != "good" || rit.Flags != 3 {
		t.Fatalf("repaired replica Get = %+v, %v", rit, err)
	}

	// A converged read repairs nothing further.
	if _, err := cc.Get("rr-key"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("kvclient.read_repairs").Value(); got != 1 {
		t.Fatalf("read_repairs after converged read = %d, want still 1", got)
	}
}

// TestClusterReadRepairMissEverywhere: with repair on, a key nobody
// holds is still a plain miss.
func TestClusterReadRepairMissEverywhere(t *testing.T) {
	cc, _, reg := startReplCluster(t, 3, 2, true)
	if _, err := cc.Get("rr-absent"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := reg.Counter("kvclient.read_repairs").Value(); got != 0 {
		t.Fatalf("read_repairs = %d, want 0", got)
	}
}
