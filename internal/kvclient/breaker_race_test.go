package kvclient_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/testutil"
)

// TestBreakerHealthFieldsConcurrent is the -race regression for the
// nodeState health contracts syncguard pins: fails, ejected, and
// retryAt are kv3d:guardedby ClusterClient.mu (the cluster lock, not
// the per-node connection lock). One live node and one dead address
// keep the breaker churning — every worker op on the dead node bumps
// fails and trips ejection, probation expiry re-admits it, and ring
// reads overlap throughout.
func TestBreakerHealthFieldsConcurrent(t *testing.T) {
	testutil.CheckGoroutines(t)

	st, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := kvserver.New(st, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeOn(ln)
	t.Cleanup(func() { srv.Close() })

	// A listener that never accepts: dials succeed, ops time out —
	// transport failures that exercise recordFailure/maybeReadmit.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dead.Close() })

	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:          []string{ln.Addr().String(), dead.Addr().String()},
		Replicas:       1,
		OpTimeout:      30 * time.Millisecond,
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
		EjectAfter:     1,
		Probation:      10 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	const (
		workers = 6
		perW    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				// Errors are expected whenever the key lands on the dead
				// node; the point is the breaker bookkeeping they drive.
				_ = cc.Set(key, []byte("v"), 0, 0)
				_, _ = cc.Get(key)
			}
		}(w)
	}
	reads := make(chan struct{})
	go func() {
		defer close(reads)
		for i := 0; i < 200; i++ {
			_ = cc.Nodes()
		}
	}()
	wg.Wait()
	<-reads
}
