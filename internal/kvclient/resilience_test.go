package kvclient_test

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
)

// stallListener accepts connections and never responds — the shape of a
// wedged node, which only a deadline can unstick.
func stallListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { ln.Close(); <-done })
	go func() {
		defer close(done)
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c) // hold open, never read or write
		}
	}()
	return ln.Addr().String()
}

// TestOpTimeoutUnsticksStalledRead is the regression test for the
// per-operation deadline: without OpTimeout a Get against a silent peer
// blocks forever; with it the call returns a timeout error.
func TestOpTimeoutUnsticksStalledRead(t *testing.T) {
	addr := stallListener(t)
	c, err := kvclient.DialOptions(addr, kvclient.Options{
		DialTimeout: time.Second,
		OpTimeout:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Get("k")
	if err == nil {
		t.Fatal("Get against a stalled node returned nil")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net.Error timeout", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Get took %v; the deadline did not bound the stall", took)
	}
}

// TestOpTimeoutBoundsStalledWrite covers the write half: a peer that
// stops reading eventually backs TCP up into our write, which must also
// hit the deadline rather than hang.
func TestOpTimeoutBoundsStalledWrite(t *testing.T) {
	addr := stallListener(t)
	c, err := kvclient.DialOptions(addr, kvclient.Options{
		DialTimeout: time.Second,
		OpTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 8<<20) // larger than kernel buffers on any platform
	start := time.Now()
	err = c.Set("k", big, 0, 0)
	if err == nil {
		t.Fatal("Set against a non-reading node returned nil")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Set took %v; the write deadline did not fire", took)
	}
}

// scriptedNode speaks just enough ASCII protocol to return a canned
// line per request, recording what it saw.
func scriptedNode(t *testing.T, replies []string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { ln.Close(); <-done })
	go func() {
		defer close(done)
		i := 0
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			br := bufio.NewReader(c)
			for {
				line, err := br.ReadString('\n')
				if err != nil {
					break
				}
				if strings.HasPrefix(line, "quit") {
					break
				}
				if i < len(replies) {
					io.WriteString(c, replies[i])
					i++
				} else {
					io.WriteString(c, "END\r\n")
				}
			}
			c.Close()
		}
	}()
	return ln.Addr().String()
}

// TestClusterRetriesBusyWithRecordedBackoff: a busy refusal is retried
// (it is load shedding, not a dead node), and the backoff schedule is
// exactly reproducible with an injected jitter and sleep recorder.
func TestClusterRetriesBusyWithRecordedBackoff(t *testing.T) {
	addr := scriptedNode(t, []string{
		"SERVER_ERROR busy\r\n",
		"SERVER_ERROR busy\r\n",
		"END\r\n",
	})
	var mu sync.Mutex
	var slept []time.Duration
	reg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:          []string{addr},
		MaxRetries:     3,
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  250 * time.Millisecond,
		Jitter:         func() float64 { return 0.5 },
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
		Probes: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.Get("k"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after retries drained the busy spell", err)
	}
	// Two busy replies → two backoff sleeps at jitter 0.5 of the
	// doubling ceiling: 1ms, 2ms.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	mu.Lock()
	got := append([]time.Duration(nil), slept...)
	mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v (schedule drifted)", i, got[i], want[i])
		}
	}
	if v := counterValue(reg, "kvclient.retries"); v != 2 {
		t.Fatalf("retries probe = %v, want 2", v)
	}
	if v := counterValue(reg, "kvclient.busy"); v != 2 {
		t.Fatalf("busy probe = %v, want 2", v)
	}
}

// TestSeededJitterIsDeterministic: same seed, same backoff schedule,
// byte for byte; a different seed diverges.
func TestSeededJitterIsDeterministic(t *testing.T) {
	record := func(seed uint64) []time.Duration {
		var slept []time.Duration
		cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
			Addrs:      []string{"127.0.0.1:1"}, // nothing listens here
			MaxRetries: 4,
			Seed:       seed,
			Sleep:      func(d time.Duration) { slept = append(slept, d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cc.Close()
		cc.Get("k") // fails after retries; only the schedule matters
		return slept
	}
	a, b, c := record(7), record(7), record(8)
	if len(a) != 4 {
		t.Fatalf("recorded %d sleeps, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sleep %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
		}
	}
	if same && len(a) == len(c) {
		t.Fatal("different seeds produced an identical backoff schedule")
	}
}

func counterValue(reg *obs.Registry, name string) float64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

// TestEjectionAndProbationReadmission runs the breaker end to end
// against real servers: killing a node ejects it after EjectAfter
// consecutive failures, traffic continues on the survivor, and the node
// is re-admitted on probation once it comes back.
func TestEjectionAndProbationReadmission(t *testing.T) {
	stA, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srvA := kvserver.New(stA, nil)
	if err := srvA.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srvA.Serve()
	defer srvA.Close()
	addrA := srvA.Addr().String()

	stB, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srvB := kvserver.New(stB, nil)
	if err := srvB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srvB.Serve()
	addrB := srvB.Addr().String()

	reg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:      []string{addrA, addrB},
		EjectAfter: 1,
		Probation:  150 * time.Millisecond,
		MaxRetries: 3,
		Sleep:      func(time.Duration) {}, // keep the test fast
		Probes:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	for i := 0; i < 40; i++ {
		if err := cc.Set(key(i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	srvB.Close()

	// Writes keep succeeding: the first failure ejects B and the retry
	// lands every key on A.
	for i := 0; i < 40; i++ {
		if err := cc.Set(key(i), []byte("v2"), 0, 0); err != nil {
			t.Fatalf("set %s with one node down: %v", key(i), err)
		}
	}
	if counterValue(reg, "kvclient.ejections") == 0 {
		t.Fatal("node was never ejected")
	}
	nodes := cc.Nodes()
	if len(nodes) != 1 || nodes[0] != addrA {
		t.Fatalf("ring after ejection = %v, want just %s", nodes, addrA)
	}

	// Revive B on the same address and wait out probation.
	stB2, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srvB2 := kvserver.New(stB2, nil)
	if err := srvB2.Listen(addrB); err != nil {
		t.Skipf("cannot rebind %s: %v", addrB, err)
	}
	go srvB2.Serve()
	defer srvB2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for len(cc.Nodes()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ejected node never re-admitted after probation")
		}
		time.Sleep(20 * time.Millisecond)
		for i := 0; i < 5; i++ {
			cc.Set(key(i), []byte("v3"), 0, 0)
		}
	}
	if counterValue(reg, "kvclient.readmissions") == 0 {
		t.Fatal("readmissions probe never counted")
	}
	// And the re-admitted node serves traffic again.
	for i := 0; i < 40; i++ {
		if err := cc.Set(key(i), []byte("v4"), 0, 0); err != nil {
			t.Fatalf("set %s after re-admission: %v", key(i), err)
		}
	}
}

func key(i int) string {
	return "key-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestAllNodesDownThenBack: with every node ejected the breaker yields
// (re-admits everything) rather than refusing forever, so the client
// recovers as soon as any node returns.
func TestAllNodesDownThenBack(t *testing.T) {
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := kvserver.New(st, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	addr := srv.Addr().String()

	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:      []string{addr},
		EjectAfter: 1,
		Probation:  10 * time.Second, // long: recovery must come from the yield path
		MaxRetries: 2,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := cc.Set("k", []byte("v"), 0, 0); err == nil {
		t.Fatal("set with the only node down should fail")
	}

	st2, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv2 := kvserver.New(st2, nil)
	if err := srv2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	go srv2.Serve()
	defer srv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := cc.Set("k", []byte("v2"), 0, 0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after the only node returned")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
