package kvclient

// BinaryClient speaks the memcached binary protocol over one TCP
// connection. Its reason to exist next to the ASCII Client is the
// request header's opaque field: the server echoes it verbatim in every
// response, and the flight recorder uses it as the correlation id that
// joins a client-side op span to the server-side parse/execute/write
// phases in one merged Perfetto trace. Like Client, a BinaryClient is
// not safe for concurrent use — open one per goroutine.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"kv3d/internal/protocol"
)

// maxBinaryRespBody bounds one response frame's body so a desynchronized
// stream cannot make the client allocate an absurd buffer.
const maxBinaryRespBody = 16 << 20

// autoOpaqueBase is where self-assigned opaques start. Explicit opaques
// (SetNextOpaque, used by the flight recorder's correlation ids) live in
// the low range, so the two never collide within a trace.
const autoOpaqueBase = 0x8000_0000

// BinaryClient is a single-connection binary-protocol client.
type BinaryClient struct {
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	opTimeout time.Duration

	// autoOpaque self-assigns request opaques when the caller did not
	// pick one; pendingOpaque holds an explicit id for the next request.
	autoOpaque    uint32
	pendingOpaque uint32
	pendingSet    bool
	lastOpaque    uint32
}

// DialBinary connects to a memcached server's binary protocol.
func DialBinary(addr string) (*BinaryClient, error) {
	return DialBinaryOptions(addr, Options{})
}

// DialBinaryOptions connects with full option control.
func DialBinaryOptions(addr string, o Options) (*BinaryClient, error) {
	o = o.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, err
	}
	return NewBinaryClientOptions(conn, o), nil
}

// NewBinaryClient wraps an existing connection.
func NewBinaryClient(conn net.Conn) *BinaryClient {
	return NewBinaryClientOptions(conn, Options{})
}

// NewBinaryClientOptions wraps an existing connection with options.
func NewBinaryClientOptions(conn net.Conn, o Options) *BinaryClient {
	return &BinaryClient{
		conn:       conn,
		r:          bufio.NewReaderSize(conn, 64<<10),
		w:          bufio.NewWriterSize(conn, 64<<10),
		opTimeout:  o.OpTimeout,
		autoOpaque: autoOpaqueBase,
	}
}

// SetNextOpaque makes the next request carry the given opaque instead of
// a self-assigned one. The flight recorder uses this to stamp its
// correlation id onto the wire.
func (b *BinaryClient) SetNextOpaque(op uint32) {
	b.pendingOpaque = op
	b.pendingSet = true
}

// LastOpaque reports the opaque the most recent request carried.
func (b *BinaryClient) LastOpaque() uint32 { return b.lastOpaque }

func (b *BinaryClient) takeOpaque() uint32 {
	if b.pendingSet {
		b.pendingSet = false
		b.lastOpaque = b.pendingOpaque
		return b.pendingOpaque
	}
	b.autoOpaque++
	b.lastOpaque = b.autoOpaque
	return b.autoOpaque
}

func (b *BinaryClient) armRead() {
	if b.opTimeout > 0 {
		b.conn.SetReadDeadline(time.Now().Add(b.opTimeout)) //nolint:kv3d -- deadline arming cannot usefully fail mid-op; the read reports any connection error
	}
}

func (b *BinaryClient) flush() error {
	if b.opTimeout > 0 {
		b.conn.SetWriteDeadline(time.Now().Add(b.opTimeout)) //nolint:kv3d -- deadline arming cannot usefully fail mid-op; the flush reports any connection error
	}
	return b.w.Flush()
}

// writeRequest buffers one request frame and returns its opaque.
func (b *BinaryClient) writeRequest(opcode byte, key string, extras, value []byte, cas uint64) uint32 {
	return b.writeRequestVbucket(opcode, key, extras, value, cas, 0)
}

// writeRequestVbucket is writeRequest with an explicit vbucket field —
// the carrier of the per-op replication mode (see protocol.ReplMode).
func (b *BinaryClient) writeRequestVbucket(opcode byte, key string, extras, value []byte, cas uint64, vbucket uint16) uint32 {
	opaque := b.takeOpaque()
	var hdr [24]byte
	hdr[0] = protocol.MagicRequest
	hdr[1] = opcode
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(key)))
	hdr[4] = byte(len(extras))
	binary.BigEndian.PutUint16(hdr[6:], vbucket)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(hdr[12:], opaque)
	binary.BigEndian.PutUint64(hdr[16:], cas)
	b.w.Write(hdr[:])
	b.w.Write(extras)
	b.w.WriteString(key)
	b.w.Write(value)
	return opaque
}

// binResp is one parsed response frame.
type binResp struct {
	opcode byte
	status uint16
	opaque uint32
	cas    uint64
	extras []byte
	key    []byte
	value  []byte
}

func (b *BinaryClient) readResponse() (binResp, error) {
	var hdr [24]byte
	b.armRead()
	if _, err := io.ReadFull(b.r, hdr[:]); err != nil {
		return binResp{}, err
	}
	if hdr[0] != protocol.MagicResponse {
		return binResp{}, fmt.Errorf("%w: bad response magic 0x%02x", ErrProtocol, hdr[0])
	}
	keyLen := int(binary.BigEndian.Uint16(hdr[2:]))
	extLen := int(hdr[4])
	bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
	if bodyLen > maxBinaryRespBody || extLen+keyLen > bodyLen {
		return binResp{}, fmt.Errorf("%w: bad response framing (body %d, extras %d, key %d)",
			ErrProtocol, bodyLen, extLen, keyLen)
	}
	body := make([]byte, bodyLen)
	b.armRead()
	if _, err := io.ReadFull(b.r, body); err != nil {
		return binResp{}, err
	}
	return binResp{
		opcode: hdr[1],
		status: binary.BigEndian.Uint16(hdr[6:]),
		opaque: binary.BigEndian.Uint32(hdr[12:]),
		cas:    binary.BigEndian.Uint64(hdr[16:]),
		extras: body[:extLen],
		key:    body[extLen : extLen+keyLen],
		value:  body[extLen+keyLen:],
	}, nil
}

// statusErr maps a non-OK response status onto the package's sentinel
// errors, so callers switch on the same values for both protocols.
func statusErr(status uint16, value []byte) error {
	switch status {
	case protocol.StatusOK:
		return nil
	case protocol.StatusKeyNotFound:
		return ErrNotFound
	case protocol.StatusKeyExists:
		return ErrExists
	case protocol.StatusNotStored:
		return ErrNotStored
	case protocol.StatusBusy:
		return ErrBusy
	case protocol.StatusNoQuorum:
		return ErrNoQuorum
	case protocol.StatusInvalidArgs, protocol.StatusValueTooLarge, protocol.StatusNonNumeric:
		return fmt.Errorf("%w: status 0x%04x %s", ErrClient, status, value)
	case protocol.StatusUnknownCommand:
		return fmt.Errorf("%w: status 0x%04x %s", ErrProtocol, status, value)
	default:
		return fmt.Errorf("%w: status 0x%04x %s", ErrServer, status, value)
	}
}

// roundTrip sends one buffered request and reads its response, checking
// the echoed opaque so a desynchronized stream fails loudly.
func (b *BinaryClient) roundTrip(opaque uint32) (binResp, error) {
	if err := b.flush(); err != nil {
		return binResp{}, err
	}
	resp, err := b.readResponse()
	if err != nil {
		return binResp{}, err
	}
	if resp.opaque != opaque {
		return binResp{}, fmt.Errorf("%w: response opaque 0x%08x for request 0x%08x (stream desynchronized)",
			ErrProtocol, resp.opaque, opaque)
	}
	return resp, nil
}

// Get fetches one key; ErrNotFound on miss.
func (b *BinaryClient) Get(key string) (Item, error) {
	opaque := b.writeRequest(protocol.OpGet, key, nil, nil, 0)
	resp, err := b.roundTrip(opaque)
	if err != nil {
		return Item{}, err
	}
	if err := statusErr(resp.status, resp.value); err != nil {
		return Item{}, err
	}
	var flags uint32
	if len(resp.extras) >= 4 {
		flags = binary.BigEndian.Uint32(resp.extras)
	}
	return Item{Key: key, Value: resp.value, Flags: flags, CAS: resp.cas}, nil
}

// GetMulti fetches several keys in one pipelined round trip; missing
// keys are simply absent from the result.
func (b *BinaryClient) GetMulti(keys []string) (map[string]Item, error) {
	unique := make([]string, 0, len(keys))
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup || k == "" {
			continue
		}
		seen[k] = struct{}{}
		unique = append(unique, k)
	}
	out := make(map[string]Item, len(unique))
	if len(unique) == 0 {
		return out, nil
	}
	// Non-quiet gets answer in request order, so the i-th response is
	// the i-th key; opaques double-check the pairing.
	opaques := make([]uint32, len(unique))
	for i, k := range unique {
		opaques[i] = b.writeRequest(protocol.OpGet, k, nil, nil, 0)
	}
	if err := b.flush(); err != nil {
		return nil, err
	}
	for i, k := range unique {
		resp, err := b.readResponse()
		if err != nil {
			return nil, err
		}
		if resp.opaque != opaques[i] {
			return nil, fmt.Errorf("%w: response opaque 0x%08x for request 0x%08x (stream desynchronized)",
				ErrProtocol, resp.opaque, opaques[i])
		}
		serr := statusErr(resp.status, resp.value)
		if errors.Is(serr, ErrNotFound) {
			continue
		}
		if serr != nil {
			return nil, serr
		}
		var flags uint32
		if len(resp.extras) >= 4 {
			flags = binary.BigEndian.Uint32(resp.extras)
		}
		out[k] = Item{Key: k, Value: resp.value, Flags: flags, CAS: resp.cas}
	}
	return out, nil
}

// Set stores a value unconditionally with the server's default
// replication mode.
func (b *BinaryClient) Set(key string, value []byte, flags uint32, exptime int64) error {
	return b.SetWithMode(key, value, flags, exptime, protocol.ReplDefault)
}

// SetWithMode stores a value with an explicit per-op replication mode,
// carried in the request's vbucket field. ReplQuorum returns
// ErrNoQuorum when the server stored locally but could not gather
// majority replica acknowledgement — the write is unacknowledged and
// safe to retry.
func (b *BinaryClient) SetWithMode(key string, value []byte, flags uint32, exptime int64, mode protocol.ReplMode) error {
	var extras [8]byte
	binary.BigEndian.PutUint32(extras[:], flags)
	binary.BigEndian.PutUint32(extras[4:], uint32(exptime))
	opaque := b.writeRequestVbucket(protocol.OpSet, key, extras[:], value, 0, uint16(mode))
	resp, err := b.roundTrip(opaque)
	if err != nil {
		return err
	}
	return statusErr(resp.status, resp.value)
}

// Delete removes a key with the server's default replication mode.
func (b *BinaryClient) Delete(key string) error {
	return b.DeleteWithMode(key, protocol.ReplDefault)
}

// DeleteWithMode removes a key with an explicit per-op replication
// mode, as on SetWithMode.
func (b *BinaryClient) DeleteWithMode(key string, mode protocol.ReplMode) error {
	opaque := b.writeRequestVbucket(protocol.OpDelete, key, nil, nil, 0, uint16(mode))
	resp, err := b.roundTrip(opaque)
	if err != nil {
		return err
	}
	return statusErr(resp.status, resp.value)
}

// Touch updates a key's TTL with the server's default replication mode;
// ErrNotFound when the key is absent.
func (b *BinaryClient) Touch(key string, exptime int64) error {
	return b.TouchWithMode(key, exptime, protocol.ReplDefault)
}

// TouchWithMode updates a key's TTL with an explicit per-op replication
// mode, as on SetWithMode.
func (b *BinaryClient) TouchWithMode(key string, exptime int64, mode protocol.ReplMode) error {
	var extras [4]byte
	binary.BigEndian.PutUint32(extras[:], uint32(exptime))
	opaque := b.writeRequestVbucket(protocol.OpTouch, key, extras[:], nil, 0, uint16(mode))
	resp, err := b.roundTrip(opaque)
	if err != nil {
		return err
	}
	return statusErr(resp.status, resp.value)
}

// Flush invalidates the whole cache after delay seconds (0 = now) with
// the server's default replication mode.
func (b *BinaryClient) Flush(delay int64) error {
	return b.FlushWithMode(delay, protocol.ReplDefault)
}

// FlushWithMode is Flush with an explicit per-op replication mode. A
// zero delay sends no extras; a non-zero delay rides the optional
// 4-byte extras field.
func (b *BinaryClient) FlushWithMode(delay int64, mode protocol.ReplMode) error {
	var extras []byte
	if delay != 0 {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(delay))
		extras = buf[:]
	}
	opaque := b.writeRequestVbucket(protocol.OpFlush, "", extras, nil, 0, uint16(mode))
	resp, err := b.roundTrip(opaque)
	if err != nil {
		return err
	}
	return statusErr(resp.status, resp.value)
}

// Noop round-trips an empty command — a liveness probe that also acts
// as a pipeline barrier.
func (b *BinaryClient) Noop() error {
	opaque := b.writeRequest(protocol.OpNoop, "", nil, nil, 0)
	resp, err := b.roundTrip(opaque)
	if err != nil {
		return err
	}
	return statusErr(resp.status, resp.value)
}

// Close sends quit and closes the connection (same contract as
// Client.Close: the farewell is best-effort but its error is reported).
func (b *BinaryClient) Close() error {
	b.writeRequest(protocol.OpQuit, "", nil, nil, 0)
	ferr := b.flush()
	return errors.Join(ferr, b.conn.Close())
}
