package kvclient

import (
	"bytes"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/testutil"
)

// fakeNs is a deterministic strictly-increasing clock: every call
// advances one microsecond.
func fakeNs() func() sim.Ns {
	var n atomic.Int64
	return func() sim.Ns { return sim.Ns(n.Add(1000)) }
}

func startFlightedServer(t *testing.T, name string) (*kvserver.Server, *obs.FlightRecorder, string) {
	t.Helper()
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder(name, 512)
	srv := kvserver.NewWithOptions(st, nil, kvserver.Options{
		NowNanos:    fakeNs(),
		Flight:      rec,
		FlightEvery: 1,
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, rec, srv.Addr().String()
}

func waitServerIdle(t *testing.T, srv *kvserver.Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still has %d active conns", srv.Active())
		}
		time.Sleep(time.Millisecond)
	}
}

// deadAddr reserves a loopback address with nothing listening on it, so
// dials fail fast with a connection refusal.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBinaryClientOps exercises the binary client end to end against a
// live server, including explicit opaque stamping.
func TestBinaryClientOps(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _, addr := startFlightedServer(t, "server")
	bc, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Set("bk", []byte("bv"), 7, 0); err != nil {
		t.Fatal(err)
	}
	bc.SetNextOpaque(0x1234)
	it, err := bc.Get("bk")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "bv" || it.Flags != 7 {
		t.Fatalf("got %q flags %d", it.Value, it.Flags)
	}
	if bc.LastOpaque() != 0x1234 {
		t.Fatalf("LastOpaque = %#x, want 0x1234", bc.LastOpaque())
	}
	if _, err := bc.Get("missing"); err != ErrNotFound {
		t.Fatalf("get missing: %v", err)
	}
	if err := bc.Set("bk2", []byte("v2"), 0, 0); err != nil {
		t.Fatal(err)
	}
	items, err := bc.GetMulti([]string{"bk", "bk2", "missing", "bk"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || string(items["bk2"].Value) != "v2" {
		t.Fatalf("multiget = %v", items)
	}
	if err := bc.Noop(); err != nil {
		t.Fatal(err)
	}
	if err := bc.Delete("bk"); err != nil {
		t.Fatal(err)
	}
	if err := bc.Delete("bk"); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	waitServerIdle(t, srv)
}

// traceEvent is the subset of a Chrome trace event the assertions read.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	ID   string `json:"id"`
	Args struct {
		Outcome string `json:"outcome"`
	} `json:"args"`
}

// TestCorrelatedRetryTrace is the headline acceptance scenario: a
// cluster client on the binary protocol aims at a dead node, fails its
// first attempt, backs off (ejecting the dead node), and succeeds on
// the surviving server. The merged client+server trace must show the
// failed attempt, the backoff instants, and the successful attempt
// correlated — by wire opaque — with the second server's
// parse/execute/write phases.
func TestCorrelatedRetryTrace(t *testing.T) {
	testutil.CheckGoroutines(t)
	srvB, recB, addrB := startFlightedServer(t, "server-b")
	addrA := deadAddr(t)

	cliRec := obs.NewFlightRecorder("client", 512)
	c, err := NewCluster(ClusterConfig{
		Addrs:      []string{addrA, addrB},
		Binary:     true,
		MaxRetries: 3,
		EjectAfter: 1,
		Probation:  time.Hour,
		Sleep:      func(time.Duration) {},
		Flight:     cliRec,
		FlightNow:  fakeNs(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Find a key the dead node owns, so the first attempt must fail.
	var key string
	for _, k := range []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9"} {
		owners, err := c.ownersFor(k)
		if err != nil {
			t.Fatal(err)
		}
		if owners[0] == addrA {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no probe key hashed to the dead node")
	}

	// Seed the value on the survivor, where the key lands after the dead
	// node's ejection.
	seed, err := DialBinary(addrB)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Set(key, []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	it, err := c.Get(key)
	if err != nil {
		t.Fatalf("get after failover: %v", err)
	}
	if string(it.Value) != "v" {
		t.Fatalf("got %q", it.Value)
	}
	c.Close()
	waitServerIdle(t, srvB)

	var buf bytes.Buffer
	if err := obs.WriteMergedTraceJSON(&buf, cliRec, recB); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("merged trace is not valid JSON:\n%s", buf.Bytes())
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	const cliPid, srvPid = 1, 2
	var gotFail, gotOK, gotRetry, gotBackoff, gotEject bool
	cliIDs := map[string]bool{}
	srvIDs := map[string]bool{}
	srvPhases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Pid {
		case cliPid:
			if ev.Ph == "X" && ev.Name == "get" && ev.Args.Outcome == "error" {
				gotFail = true
			}
			if ev.Ph == "X" && ev.Name == "get" && ev.Args.Outcome == "ok" {
				gotOK = true
			}
			switch ev.Name {
			case "retry":
				gotRetry = true
			case "backoff":
				gotBackoff = true
			case "breaker.eject":
				gotEject = true
			}
			if (ev.Ph == "b" || ev.Ph == "e") && ev.ID != "" {
				cliIDs[ev.ID] = true
			}
		case srvPid:
			if (ev.Ph == "b" || ev.Ph == "e") && ev.ID != "" {
				srvIDs[ev.ID] = true
			}
			if ev.Ph == "X" {
				srvPhases[ev.Name] = true
			}
		}
	}
	if !gotFail || !gotOK {
		t.Errorf("client attempts: fail=%v ok=%v (want both)", gotFail, gotOK)
	}
	if !gotRetry || !gotBackoff || !gotEject {
		t.Errorf("resilience instants: retry=%v backoff=%v eject=%v (want all)", gotRetry, gotBackoff, gotEject)
	}
	for _, phase := range []string{"parse", "execute", "write", "get"} {
		if !srvPhases[phase] {
			t.Errorf("server trace missing %q span: %v", phase, srvPhases)
		}
	}
	var shared []string
	for id := range cliIDs {
		if srvIDs[id] {
			shared = append(shared, id)
		}
	}
	if len(shared) == 0 {
		t.Errorf("no shared async correlation id between client (%v) and server (%v)", cliIDs, srvIDs)
	}
}
