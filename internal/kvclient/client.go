// Package kvclient is a minimal memcached ASCII protocol client used by
// the load generator, the cluster example, and the end-to-end tests.
// One Client wraps one TCP connection; it is not safe for concurrent
// use (open one per goroutine, as memcached clients typically do).
package kvclient

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Common protocol-level results.
var (
	ErrNotFound  = errors.New("kvclient: not found")
	ErrNotStored = errors.New("kvclient: not stored")
	ErrExists    = errors.New("kvclient: exists")
	ErrServer    = errors.New("kvclient: server error")
	ErrClient    = errors.New("kvclient: client error")
	ErrProtocol  = errors.New("kvclient: protocol error")
)

// ErrBusy is the load-shedding refusal ("SERVER_ERROR busy"): the node
// is alive but over its in-flight cap. It wraps ErrServer, so existing
// error checks still match; retry logic treats it as retryable but not
// as evidence the node is down.
var ErrBusy = fmt.Errorf("%w: busy", ErrServer)

// ErrNoQuorum is a quorum write that stored on the primary but could
// not gather majority replica acknowledgement in time. The write is not
// rolled back; the op is unacknowledged and safe to retry (a set is
// idempotent). Wraps ErrServer so existing checks still match.
var ErrNoQuorum = fmt.Errorf("%w: no quorum", ErrServer)

// Options tunes a Client beyond the bare connection.
type Options struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// OpTimeout bounds each protocol operation: the connection's read
	// and write deadlines are re-armed at the start of every request and
	// response, so a stalled or dead server surfaces as a timeout error
	// instead of a hung goroutine. Zero means no deadline (the seed
	// behaviour).
	OpTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is a single-connection memcached client.
type Client struct {
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	opTimeout time.Duration
}

// Dial connects to a memcached server address.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects with full option control.
func DialOptions(addr string, o Options) (*Client, error) {
	o = o.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, err
	}
	return NewClientOptions(conn, o), nil
}

// NewClient wraps an existing connection.
func NewClient(conn net.Conn) *Client {
	return NewClientOptions(conn, Options{})
}

// NewClientOptions wraps an existing connection with options applied.
func NewClientOptions(conn net.Conn, o Options) *Client {
	return &Client{
		conn:      conn,
		r:         bufio.NewReaderSize(conn, 64<<10),
		w:         bufio.NewWriterSize(conn, 64<<10),
		opTimeout: o.OpTimeout,
	}
}

// armRead re-arms the read deadline for the next response read. Called
// before every read so a multi-line response gets a fresh budget per
// read, not one shared budget for the whole operation.
func (c *Client) armRead() {
	if c.opTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opTimeout)) //nolint:kv3d -- deadline arming cannot usefully fail mid-op; the read reports any connection error
	}
}

// armWrite arms the write deadline before buffering a request whose
// bytes can spill to the connection before flush (a value larger than
// the buffer flushes mid-Write).
func (c *Client) armWrite() {
	if c.opTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opTimeout)) //nolint:kv3d -- deadline arming cannot usefully fail mid-op; the write reports any connection error
	}
}

// flush arms the write deadline and flushes the buffered request.
func (c *Client) flush() error {
	if c.opTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opTimeout)) //nolint:kv3d -- deadline arming cannot usefully fail mid-op; the flush reports any connection error
	}
	return c.w.Flush()
}

// Close sends quit and closes the connection. A flush failure is
// reported alongside the close result: the quit is best-effort, but a
// caller diagnosing a broken connection needs to see the write error,
// not just the close status. With OpTimeout set the farewell flush is
// bounded, so Close cannot hang on a stalled peer.
func (c *Client) Close() error {
	fmt.Fprint(c.w, "quit\r\n")
	ferr := c.flush()
	return errors.Join(ferr, c.conn.Close())
}

func (c *Client) readLine() (string, error) {
	c.armRead()
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func classify(line string) error {
	switch {
	case line == "ERROR":
		return ErrProtocol
	case strings.HasPrefix(line, "CLIENT_ERROR"):
		return fmt.Errorf("%w: %s", ErrClient, line)
	case line == "SERVER_ERROR busy":
		return ErrBusy
	case strings.HasPrefix(line, "SERVER_ERROR"):
		return fmt.Errorf("%w: %s", ErrServer, line)
	default:
		return fmt.Errorf("%w: unexpected %q", ErrProtocol, line)
	}
}

// Item is a fetched value.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	CAS   uint64
}

func (c *Client) store(verb, key string, value []byte, flags uint32, exptime int64, cas uint64) error {
	c.armWrite()
	if verb == "cas" {
		fmt.Fprintf(c.w, "cas %s %d %d %d %d\r\n", key, flags, exptime, len(value), cas)
	} else {
		fmt.Fprintf(c.w, "%s %s %d %d %d\r\n", verb, key, flags, exptime, len(value))
	}
	c.w.Write(value)
	c.w.WriteString("\r\n")
	if err := c.flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch line {
	case "STORED":
		return nil
	case "NOT_STORED":
		return ErrNotStored
	case "EXISTS":
		return ErrExists
	case "NOT_FOUND":
		return ErrNotFound
	default:
		return classify(line)
	}
}

// Set stores a value unconditionally.
func (c *Client) Set(key string, value []byte, flags uint32, exptime int64) error {
	return c.store("set", key, value, flags, exptime, 0)
}

// Add stores only if absent.
func (c *Client) Add(key string, value []byte, flags uint32, exptime int64) error {
	return c.store("add", key, value, flags, exptime, 0)
}

// Replace stores only if present.
func (c *Client) Replace(key string, value []byte, flags uint32, exptime int64) error {
	return c.store("replace", key, value, flags, exptime, 0)
}

// Append appends to an existing value.
func (c *Client) Append(key string, value []byte) error {
	return c.store("append", key, value, 0, 0, 0)
}

// Prepend prepends to an existing value.
func (c *Client) Prepend(key string, value []byte) error {
	return c.store("prepend", key, value, 0, 0, 0)
}

// CAS stores if the server-side CAS id still matches.
func (c *Client) CAS(key string, value []byte, flags uint32, exptime int64, cas uint64) error {
	return c.store("cas", key, value, flags, exptime, cas)
}

// Get fetches one key; ErrNotFound on miss.
func (c *Client) Get(key string) (Item, error) {
	items, err := c.getMulti("get", []string{key})
	if err != nil {
		return Item{}, err
	}
	if len(items) == 0 {
		return Item{}, ErrNotFound
	}
	return items[0], nil
}

// Gets fetches one key including its CAS id.
func (c *Client) Gets(key string) (Item, error) {
	items, err := c.getMulti("gets", []string{key})
	if err != nil {
		return Item{}, err
	}
	if len(items) == 0 {
		return Item{}, ErrNotFound
	}
	return items[0], nil
}

// GetMulti fetches several keys in one round trip; missing keys are
// simply absent from the result.
func (c *Client) GetMulti(keys []string) (map[string]Item, error) {
	items, err := c.getMulti("get", keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Item, len(items))
	for _, it := range items {
		out[it.Key] = it
	}
	return out, nil
}

func (c *Client) getMulti(verb string, keys []string) ([]Item, error) {
	// A zero-key multiget would serialize as "get \r\n" — a malformed
	// request the server answers with ERROR, leaving the caller with a
	// protocol error for what is semantically an empty result. The same
	// applies to empty-string keys, and duplicate keys make the server
	// answer (and ship) the same value twice. Normalize before writing.
	unique := keys
	if len(keys) > 1 {
		seen := make(map[string]struct{}, len(keys))
		unique = make([]string, 0, len(keys))
		for _, k := range keys {
			if _, dup := seen[k]; dup || k == "" {
				continue
			}
			seen[k] = struct{}{}
			unique = append(unique, k)
		}
	} else if len(keys) == 1 && keys[0] == "" {
		unique = nil
	}
	if len(unique) == 0 {
		return nil, nil
	}
	c.armWrite()
	c.w.WriteString(verb)
	for _, k := range unique {
		c.w.WriteByte(' ')
		c.w.WriteString(k)
	}
	c.w.WriteString("\r\n")
	if err := c.flush(); err != nil {
		return nil, err
	}
	var items []Item
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return items, nil
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != "VALUE" {
			return nil, classify(line)
		}
		flags, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: bad flags %q", ErrProtocol, fields[2])
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad length %q", ErrProtocol, fields[3])
		}
		var cas uint64
		if len(fields) >= 5 {
			cas, err = strconv.ParseUint(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad cas %q", ErrProtocol, fields[4])
			}
		}
		buf := make([]byte, n+2)
		c.armRead()
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
		// The two bytes after the value must be the \r\n terminator. If
		// they are anything else the advertised length was wrong and the
		// stream is desynchronized — every later response would be parsed
		// against the wrong framing, so fail loudly instead.
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return nil, fmt.Errorf("%w: value for %q not terminated by CRLF (stream desynchronized)", ErrProtocol, fields[1])
		}
		items = append(items, Item{Key: fields[1], Value: buf[:n], Flags: uint32(flags), CAS: cas})
	}
}

// Delete removes a key.
func (c *Client) Delete(key string) error {
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch line {
	case "DELETED":
		return nil
	case "NOT_FOUND":
		return ErrNotFound
	default:
		return classify(line)
	}
}

// Incr increments a numeric value.
func (c *Client) Incr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr decrements a numeric value (floored at 0).
func (c *Client) Decr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("decr", key, delta)
}

func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, error) {
	fmt.Fprintf(c.w, "%s %s %d\r\n", verb, key, delta)
	if err := c.flush(); err != nil {
		return 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	if line == "NOT_FOUND" {
		return 0, ErrNotFound
	}
	v, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		return 0, classify(line)
	}
	return v, nil
}

// Touch updates a key's TTL.
func (c *Client) Touch(key string, exptime int64) error {
	fmt.Fprintf(c.w, "touch %s %d\r\n", key, exptime)
	if err := c.flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch line {
	case "TOUCHED":
		return nil
	case "NOT_FOUND":
		return ErrNotFound
	default:
		return classify(line)
	}
}

// FlushAll invalidates the whole cache after delay seconds.
func (c *Client) FlushAll(delay int64) error {
	if delay > 0 {
		fmt.Fprintf(c.w, "flush_all %d\r\n", delay)
	} else {
		fmt.Fprint(c.w, "flush_all\r\n")
	}
	if err := c.flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return classify(line)
	}
	return nil
}

// Stats fetches the server's STAT map.
func (c *Client) Stats() (map[string]string, error) {
	fmt.Fprint(c.w, "stats\r\n")
	if err := c.flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, classify(line)
		}
		out[fields[1]] = fields[2]
	}
}

// Version queries the server version string.
func (c *Client) Version() (string, error) {
	fmt.Fprint(c.w, "version\r\n")
	if err := c.flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "VERSION ") {
		return "", classify(line)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}
