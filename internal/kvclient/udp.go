package kvclient

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// UDPClient speaks the memcached UDP frame format: an 8-byte header
// (request id, sequence, datagram count, reserved) before the ASCII
// payload. It reassembles multi-datagram responses. Facebook's
// deployment used UDP for GETs only; this client supports GETs and
// treats everything else as out of scope.
type UDPClient struct {
	conn    *net.UDPConn
	timeout time.Duration
	nextID  uint16
	buf     []byte
}

// ErrUDPTimeout is returned when a response datagram never arrives
// (UDP is fire-and-forget: the caller should fall back to TCP).
var ErrUDPTimeout = errors.New("kvclient: udp response timed out")

// DialUDP connects a UDP client to a server address.
func DialUDP(addr string, timeout time.Duration) (*UDPClient, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &UDPClient{conn: conn, timeout: timeout, buf: make([]byte, 64<<10)}, nil
}

// Close releases the socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// Get fetches one key over UDP.
func (c *UDPClient) Get(key string) (Item, error) {
	c.nextID++
	reqID := c.nextID
	payload := "get " + key + "\r\n"
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(frame[0:], reqID)
	binary.BigEndian.PutUint16(frame[4:], 1)
	copy(frame[8:], payload)
	if _, err := c.conn.Write(frame); err != nil {
		return Item{}, err
	}

	// Collect datagrams until all fragments for this request arrive.
	deadline := time.Now().Add(c.timeout)
	frags := map[uint16][]byte{}
	total := -1
	for {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return Item{}, err
		}
		n, err := c.conn.Read(c.buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return Item{}, ErrUDPTimeout
			}
			return Item{}, err
		}
		if n < 8 || binary.BigEndian.Uint16(c.buf[0:]) != reqID {
			continue // stale or foreign datagram
		}
		seq := binary.BigEndian.Uint16(c.buf[2:])
		count := int(binary.BigEndian.Uint16(c.buf[4:]))
		// The datagram count is pinned by the first fragment of this
		// request; a later fragment advertising a different count means
		// the response is corrupt (or two responses share a request id)
		// and reassembly can never be trusted — previously the last
		// arrival silently won, so a short count could truncate the value
		// and a long one could hang until timeout.
		if count <= 0 {
			return Item{}, fmt.Errorf("%w: udp fragment with zero datagram count", ErrProtocol)
		}
		if total < 0 {
			total = count
		} else if count != total {
			return Item{}, fmt.Errorf("%w: udp fragment count changed %d -> %d", ErrProtocol, total, count)
		}
		if int(seq) >= total {
			return Item{}, fmt.Errorf("%w: udp fragment seq %d out of range for count %d", ErrProtocol, seq, total)
		}
		if _, dup := frags[seq]; dup {
			continue // retransmitted fragment; keep the first copy
		}
		body := make([]byte, n-8)
		copy(body, c.buf[8:n])
		frags[seq] = body
		if len(frags) == total {
			break
		}
	}
	// Reassemble in sequence order: seqs are exactly 0..total-1 by now.
	var resp bytes.Buffer
	for s := 0; s < total; s++ {
		resp.Write(frags[uint16(s)])
	}
	// A well-formed GET response — hit or miss — ends with the END
	// trailer; if it is missing after reassembling all advertised
	// fragments, the count in the header lied about the payload extent.
	// Single-line error replies (ERROR, SERVER_ERROR ...) have no END
	// and are classified by the parser below.
	reply := resp.String()
	if (strings.HasPrefix(reply, "VALUE ") || strings.HasPrefix(reply, "END")) &&
		!strings.HasSuffix(reply, "END\r\n") {
		return Item{}, fmt.Errorf("%w: reassembled udp response missing END trailer", ErrProtocol)
	}
	return parseSingleGet(reply, key)
}

// parseSingleGet decodes a one-key "VALUE ...\r\n<data>\r\nEND\r\n"
// response.
func parseSingleGet(resp, key string) (Item, error) {
	if strings.HasPrefix(resp, "END\r\n") {
		return Item{}, ErrNotFound
	}
	header, rest, ok := strings.Cut(resp, "\r\n")
	if !ok {
		return Item{}, fmt.Errorf("%w: truncated response %q", ErrProtocol, resp)
	}
	fields := strings.Fields(header)
	if len(fields) < 4 || fields[0] != "VALUE" || fields[1] != key {
		return Item{}, classify(header)
	}
	flags, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Item{}, fmt.Errorf("%w: bad flags %q", ErrProtocol, fields[2])
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 || len(rest) < n {
		return Item{}, fmt.Errorf("%w: bad length %q", ErrProtocol, fields[3])
	}
	// The value must be followed by its CRLF terminator; anything else
	// means the advertised length and the payload disagree.
	if len(rest) < n+2 || rest[n] != '\r' || rest[n+1] != '\n' {
		return Item{}, fmt.Errorf("%w: value for %q not terminated by CRLF", ErrProtocol, key)
	}
	return Item{Key: key, Value: []byte(rest[:n]), Flags: uint32(flags)}, nil
}
