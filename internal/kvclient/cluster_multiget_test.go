package kvclient_test

// Tests for ClusterClient.GetMulti: scatter-gather partitioning across
// the ring, partial-result semantics when a node is down, and replica
// failover with counter accounting.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/obs"
)

// startMultigetCluster builds a cluster with fast-failing retry config
// (no real sleeps) and a probe registry, so down-node tests stay quick.
func startMultigetCluster(t *testing.T, n, replicas int) (*kvclient.ClusterClient, map[string]*kvserver.Server, *obs.Registry) {
	t.Helper()
	var addrs []string
	servers := map[string]*kvserver.Server{}
	for i := 0; i < n; i++ {
		srv, addr := startNode(t)
		addrs = append(addrs, addr)
		servers[addr] = srv
	}
	reg := obs.NewRegistry()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:       addrs,
		Replicas:    replicas,
		MaxRetries:  1,
		DialTimeout: 500 * time.Millisecond,
		OpTimeout:   500 * time.Millisecond,
		Sleep:       func(time.Duration) {}, // don't wait out backoff in tests
		Probes:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc, servers, reg
}

func TestClusterGetMultiSpansNodes(t *testing.T) {
	cc, _, _ := startMultigetCluster(t, 4, 1)
	const n = 100
	keys := make([]string, 0, n+2)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("mk%d", i)
		keys = append(keys, k)
		if err := cc.Set(k, []byte(fmt.Sprintf("mv%d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	keys = append(keys, "absent-a", "absent-b")

	items, err := cc.GetMulti(keys)
	if err != nil {
		t.Fatalf("GetMulti: %v", err)
	}
	if len(items) != n {
		t.Fatalf("GetMulti returned %d items, want %d", len(items), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("mk%d", i)
		it, ok := items[k]
		if !ok || string(it.Value) != fmt.Sprintf("mv%d", i) || it.Flags != uint32(i) {
			t.Fatalf("items[%q] = %+v, ok=%v", k, it, ok)
		}
	}
	if _, ok := items["absent-a"]; ok {
		t.Fatal("missing key present in result")
	}
}

func TestClusterGetMultiEmptyAndDuplicates(t *testing.T) {
	cc, _, _ := startMultigetCluster(t, 2, 1)
	items, err := cc.GetMulti(nil)
	if err != nil || len(items) != 0 {
		t.Fatalf("GetMulti(nil) = %v items, err %v", len(items), err)
	}
	if err := cc.Set("dup", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	items, err = cc.GetMulti([]string{"dup", "dup", "", "dup"})
	if err != nil {
		t.Fatalf("GetMulti: %v", err)
	}
	if len(items) != 1 || string(items["dup"].Value) != "v" {
		t.Fatalf("GetMulti with duplicates = %+v", items)
	}
}

// TestClusterGetMultiPartialOnNodeLoss: with R=1 and one node dead, the
// keys on healthy nodes still come back — alongside an error naming the
// unreachable remainder. The result map is usable for cache-aside
// fallback even on the error path.
func TestClusterGetMultiPartialOnNodeLoss(t *testing.T) {
	cc, servers, _ := startMultigetCluster(t, 4, 1)
	const n = 120
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("pk%d", i)
		if err := cc.Set(keys[i], []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one node; its keys become unreachable (R=1: no fallback).
	var victim string
	var victimKeys int
	for addr, srv := range servers {
		victim = addr
		victimKeys = srv.Store().ItemCount()
		srv.Close()
		break
	}
	if victimKeys == 0 {
		t.Fatalf("victim %s held no keys; test can't observe partial failure", victim)
	}

	items, err := cc.GetMulti(keys)
	if err == nil {
		t.Fatalf("GetMulti with a dead R=1 node returned nil error (%d items)", len(items))
	}
	if !strings.Contains(err.Error(), "unreachable on every replica") {
		t.Fatalf("error does not describe partial failure: %v", err)
	}
	if want := n - victimKeys; len(items) != want {
		t.Fatalf("partial result has %d items, want %d (victim held %d)", len(items), want, victimKeys)
	}
	for k, it := range items {
		if string(it.Value) != "v" {
			t.Fatalf("items[%q] = %q", k, it.Value)
		}
	}
}

// TestClusterGetMultiFailsOverToReplicas: with R=2 one dead node costs
// nothing — its keys fail over to the second replica, the full result
// comes back clean, and the failover counter records the rescued keys.
func TestClusterGetMultiFailsOverToReplicas(t *testing.T) {
	cc, servers, reg := startMultigetCluster(t, 4, 2)
	const n = 120
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fk%d", i)
		if err := cc.Set(keys[i], []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, srv := range servers {
		srv.Close()
		break
	}

	items, err := cc.GetMulti(keys)
	if err != nil {
		t.Fatalf("GetMulti with R=2 and one dead node: %v", err)
	}
	if len(items) != n {
		t.Fatalf("GetMulti returned %d of %d keys", len(items), n)
	}
	if got := counterValue(reg, "kvclient.failovers"); got == 0 {
		t.Fatal("no failovers recorded although a replica node was dead")
	}
	if got := counterValue(reg, "kvclient.transport_errors"); got == 0 {
		t.Fatal("no transport errors recorded although a node was dead")
	}
}

// TestClusterGetMultiAllNodesDown: every replica gone — the error must
// wrap a transport-level cause and the (empty) map must still be
// non-nil.
func TestClusterGetMultiAllNodesDown(t *testing.T) {
	cc, servers, _ := startMultigetCluster(t, 2, 1)
	if err := cc.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		srv.Close()
	}
	items, err := cc.GetMulti([]string{"k"})
	if err == nil {
		t.Fatal("GetMulti against a dead cluster returned nil error")
	}
	if errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("dead cluster misreported as miss: %v", err)
	}
	if items == nil {
		t.Fatal("GetMulti returned a nil map on error; want empty map for partial-result contract")
	}
}
