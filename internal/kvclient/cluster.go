package kvclient

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kv3d/internal/cluster"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

// ClusterClient routes memcached operations across many servers with a
// consistent-hash ring — the client-side view of a Mercury deployment,
// where every stack is an independent node (§3.8). Writes optionally
// replicate to R nodes; reads fall through replicas on miss or node
// failure.
//
// On top of routing it carries the resilience layer: per-operation
// retries with exponential backoff and full jitter, and a per-node
// circuit breaker — a node that fails EjectAfter consecutive transport
// operations is removed from the ring, then re-admitted on probation
// after Probation elapses (one more failure re-ejects it immediately).
// Both the backoff's randomness and its sleeps are injectable, so the
// chaos suite runs the whole layer deterministically.
//
// ClusterClient is safe for concurrent use: each node's connection is
// serialized by its own mutex, so goroutines contend only when they
// target the same node.
type ClusterClient struct {
	ring     *cluster.Ring
	replicas int

	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration
	ejectAfter int
	probation  time.Duration
	fanout     int
	readRepair bool

	sleep  func(time.Duration)
	jitter func() float64
	probes *obs.Registry
	// flight is nil unless ClusterConfig.Flight was set; every method on
	// it is nil-safe, so call sites stay unconditional.
	flight *clientFlight

	// mu guards nodes' membership and health fields (fails, ejected,
	// retryAt) plus the jitter rng; each nodeState.mu guards only that
	// node's connection. Never acquire a nodeState.mu while holding mu.
	mu    sync.Mutex
	nodes map[string]*nodeState //kv3d:guardedby mu
	rng   *sim.Rand             //kv3d:guardedby mu
	dial  func(addr string) (NodeConn, error)
}

// NodeConn is the per-node connection surface ClusterClient drives,
// satisfied by both the ASCII Client and the BinaryClient (selected by
// ClusterConfig.Binary).
type NodeConn interface {
	Get(key string) (Item, error)
	GetMulti(keys []string) (map[string]Item, error)
	Set(key string, value []byte, flags uint32, exptime int64) error
	Delete(key string) error
	Close() error
}

// nodeState is one node's connection and circuit-breaker health.
type nodeState struct {
	// mu serializes protocol operations on the node's single connection
	// (neither client type is safe for concurrent use).
	mu   sync.Mutex
	conn NodeConn

	// Health fields below are guarded by ClusterClient.mu, not mu.
	fails   int       //kv3d:guardedby ClusterClient.mu
	ejected bool      //kv3d:guardedby ClusterClient.mu
	retryAt time.Time //kv3d:guardedby ClusterClient.mu
}

// ClusterConfig configures a ClusterClient.
type ClusterConfig struct {
	// Addrs are the initial node addresses.
	Addrs []string
	// Replicas is how many nodes store each key (default 1).
	Replicas int
	// VirtualNodes per server on the ring (default 160).
	VirtualNodes int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// OpTimeout bounds each protocol operation on a node (see
	// Options.OpTimeout). Zero disables per-op deadlines.
	OpTimeout time.Duration

	// MaxRetries is how many times a failed operation is retried after
	// its first attempt (default 3; negative disables retries).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (default 2ms). The
	// attempt-n ceiling is RetryBaseDelay << n, capped at RetryMaxDelay,
	// and the actual sleep is uniform in [0, ceiling) — "full jitter",
	// which decorrelates clients hammering a recovering node.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps a single backoff sleep (default 250ms).
	RetryMaxDelay time.Duration

	// EjectAfter is the consecutive-transport-failure threshold at which
	// a node is removed from the ring (default 3; negative disables
	// ejection).
	EjectAfter int
	// Probation is how long an ejected node stays out before being
	// re-admitted on probation (default 1s).
	Probation time.Duration

	// Seed drives the backoff jitter (default 1). Two clients with
	// different seeds jitter differently; the same seed replays the
	// same backoff sequence.
	Seed uint64
	// Sleep replaces the backoff sleep (default time.Sleep). Tests
	// inject a recorder to assert the schedule without waiting it out.
	Sleep func(time.Duration)
	// Jitter replaces the backoff jitter draw, which must return values
	// in [0, 1). Default: a seeded deterministic generator.
	Jitter func() float64
	// MultigetFanout bounds how many per-node multigets GetMulti has in
	// flight at once (default 4). Each node's connection is serialized
	// anyway, so the bound only limits cross-node parallelism.
	MultigetFanout int

	// ReadRepair makes Get read every replica instead of stopping at the
	// first hit: the lowest-ranked replica that answered is authoritative,
	// and replicas that answered with a miss or a divergent value are
	// rewritten with the authoritative item before Get returns (counted in
	// kvclient.read_repairs). Costs R reads per Get; only meaningful with
	// Replicas > 1.
	ReadRepair bool

	// Probes optionally receives kvclient.* counters (retries,
	// transport_errors, busy, ejections, readmissions, failovers,
	// read_repairs, quorum_failures).
	Probes *obs.Registry

	// Binary selects the memcached binary protocol for node connections.
	// With flight recording on, each attempt then stamps its correlation
	// id into the request opaque, which the server echoes — the seam that
	// lets merged traces join client and server spans.
	Binary bool
	// Flight optionally records client-side op spans and resilience
	// events (retry, backoff, failover, breaker transitions) into the
	// given ring.
	Flight *obs.FlightRecorder
	// FlightNow supplies flight timestamps (default: wall clock). Tests
	// inject a fake clock for reproducible traces.
	FlightNow func() sim.Ns
}

// ErrNoNodes is returned when the ring is empty.
var ErrNoNodes = errors.New("kvclient: cluster has no nodes")

// NewCluster builds a cluster client. Connections are dialed lazily.
func NewCluster(cfg ClusterConfig) (*ClusterClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 2 * time.Millisecond
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = 250 * time.Millisecond
	}
	if cfg.EjectAfter == 0 {
		cfg.EjectAfter = 3
	}
	if cfg.Probation <= 0 {
		cfg.Probation = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MultigetFanout <= 0 {
		cfg.MultigetFanout = 4
	}
	opts := Options{DialTimeout: cfg.DialTimeout, OpTimeout: cfg.OpTimeout}
	c := &ClusterClient{
		ring:       cluster.NewRing(cfg.VirtualNodes),
		replicas:   cfg.Replicas,
		maxRetries: cfg.MaxRetries,
		baseDelay:  cfg.RetryBaseDelay,
		maxDelay:   cfg.RetryMaxDelay,
		ejectAfter: cfg.EjectAfter,
		probation:  cfg.Probation,
		fanout:     cfg.MultigetFanout,
		readRepair: cfg.ReadRepair,
		sleep:      cfg.Sleep,
		jitter:     cfg.Jitter,
		probes:     cfg.Probes,
		flight:     newClientFlight(cfg.Flight, cfg.FlightNow),
		nodes:      make(map[string]*nodeState),
		rng:        sim.NewRand(cfg.Seed),
		dial: func(addr string) (NodeConn, error) {
			if cfg.Binary {
				return DialBinaryOptions(addr, opts)
			}
			return DialOptions(addr, opts)
		},
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	if c.jitter == nil {
		c.jitter = c.seededJitter
	}
	if c.probes != nil {
		// Pre-register every counter so a healthy run still exports the
		// full kvclient.* series at zero (probes dumps stay schema-stable).
		for _, name := range []string{
			"kvclient.retries", "kvclient.transport_errors", "kvclient.busy",
			"kvclient.ejections", "kvclient.readmissions", "kvclient.failovers",
			"kvclient.read_repairs", "kvclient.quorum_failures",
		} {
			c.probes.Counter(name)
		}
	}
	for _, a := range cfg.Addrs {
		c.ring.Add(a)
		c.nodes[a] = &nodeState{}
	}
	return c, nil
}

// seededJitter draws from the client's deterministic rng (guarded by mu
// — concurrent goroutines interleave draws, but every value still comes
// from the seeded sequence).
func (c *ClusterClient) seededJitter() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

func (c *ClusterClient) count(name string) {
	if c.probes != nil {
		c.probes.Counter(name).Add(1)
	}
}

func (c *ClusterClient) countN(name string, n int) {
	if c.probes != nil && n > 0 {
		c.probes.Counter(name).Add(int64(n))
	}
}

// AddNode inserts a server into the ring (idempotent).
func (c *ClusterClient) AddNode(addr string) {
	c.mu.Lock()
	if _, ok := c.nodes[addr]; !ok {
		c.nodes[addr] = &nodeState{}
	}
	c.mu.Unlock()
	c.ring.Add(addr)
}

// RemoveNode drops a server from the ring and closes its connection.
func (c *ClusterClient) RemoveNode(addr string) {
	c.ring.Remove(addr)
	c.mu.Lock()
	ns := c.nodes[addr]
	delete(c.nodes, addr)
	c.mu.Unlock()
	if ns != nil {
		ns.mu.Lock()
		if ns.conn != nil {
			ns.conn.Close() //nolint:kv3d -- teardown of a node being removed; the op path reports live errors
			ns.conn = nil
		}
		ns.mu.Unlock()
	}
}

// Nodes lists the current ring members.
func (c *ClusterClient) Nodes() []string { return c.ring.Nodes() }

// Owners reports key's current replica set in ring preference order
// (rank 0 is the primary). The answer is a snapshot: ejections and
// membership changes move keys, which is why the op paths re-resolve
// rather than cache it.
func (c *ClusterClient) Owners(key string) ([]string, error) { return c.ownersFor(key) }

// node returns the state for addr, creating it if the node was added
// behind our back.
func (c *ClusterClient) node(addr string) *nodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[addr]
	if !ok {
		ns = &nodeState{}
		c.nodes[addr] = ns
	}
	return ns
}

// opOnNode runs one protocol operation against addr under the node's
// connection lock, dialing lazily and dropping the connection on
// transport failure so the next operation re-dials.
func (c *ClusterClient) opOnNode(addr string, fn func(NodeConn) error) error {
	ns := c.node(addr)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.conn == nil {
		conn, err := c.dial(addr)
		if err != nil {
			return err
		}
		ns.conn = conn
	}
	err := fn(ns.conn)
	if err != nil && isTransport(err) {
		ns.conn.Close() //nolint:kv3d -- the transport error is the signal; the close of a broken conn is cleanup
		ns.conn = nil
	}
	return err
}

// observedOp runs one attempt against addr, recording a client-side
// flight span named by the server's op-class vocabulary. On binary
// connections the attempt's correlation id is stamped into the request
// opaque first, so the span correlates with the server-side phases.
func (c *ClusterClient) observedOp(addr, name string, fn func(NodeConn) error) error {
	if c.flight == nil {
		return c.opOnNode(addr, fn)
	}
	opaque := c.flight.nextOpaque()
	correlated := false
	start := c.flight.now()
	err := c.opOnNode(addr, func(conn NodeConn) error {
		if bc, ok := conn.(*BinaryClient); ok {
			bc.SetNextOpaque(opaque)
			correlated = true
		}
		return fn(conn)
	})
	end := c.flight.now()
	if !correlated {
		opaque = 0 // ASCII conn or failed dial: client-side span only
	}
	c.flight.attempt(name, flightOutcome(err), opaque, start, end)
	return err
}

// recordSuccess clears a node's failure streak.
func (c *ClusterClient) recordSuccess(addr string) {
	c.mu.Lock()
	if ns, ok := c.nodes[addr]; ok {
		ns.fails = 0
	}
	c.mu.Unlock()
}

// recordFailure notes a transport failure and ejects the node from the
// ring once the streak reaches the threshold.
func (c *ClusterClient) recordFailure(addr string) {
	c.count("kvclient.transport_errors")
	c.mu.Lock()
	ns, ok := c.nodes[addr]
	if !ok || c.ejectAfter <= 0 {
		c.mu.Unlock()
		return
	}
	ns.fails++
	eject := !ns.ejected && ns.fails >= c.ejectAfter
	if eject {
		ns.ejected = true
		ns.retryAt = time.Now().Add(c.probation)
	}
	c.mu.Unlock()
	if eject {
		c.ring.Remove(addr)
		c.count("kvclient.ejections")
		c.flight.instant("breaker.eject")
	}
}

// maybeReadmit returns expired-probation nodes to the ring. A
// re-admitted node is half-open: its streak restarts one failure below
// the threshold, so a single failed probe re-ejects it. If every node
// is ejected the breaker yields — all are re-admitted immediately,
// because guessing at a dead cluster beats refusing a live one.
func (c *ClusterClient) maybeReadmit() {
	now := time.Now()
	var back []string
	c.mu.Lock()
	for addr, ns := range c.nodes {
		if ns.ejected && now.After(ns.retryAt) {
			ns.ejected = false
			ns.fails = c.ejectAfter - 1
			back = append(back, addr)
		}
	}
	c.mu.Unlock()
	for _, addr := range back {
		c.ring.Add(addr)
		c.count("kvclient.readmissions")
		c.flight.instant("breaker.readmit")
	}
	if c.ring.Len() > 0 {
		return
	}
	// Empty ring: every node is ejected. Re-admit them all.
	var all []string
	c.mu.Lock()
	for addr, ns := range c.nodes {
		if ns.ejected {
			ns.ejected = false
			ns.fails = c.ejectAfter - 1
			all = append(all, addr)
		}
	}
	c.mu.Unlock()
	for _, addr := range all {
		c.ring.Add(addr)
		c.count("kvclient.readmissions")
		c.flight.instant("breaker.readmit")
	}
}

// retryable reports whether an error is worth another attempt: any
// transport failure, a busy refusal (the server sheds load but lives),
// or a momentarily empty ring.
func retryable(err error) bool {
	return isTransport(err) || errors.Is(err, ErrBusy) || errors.Is(err, ErrNoNodes)
}

// withRetry runs fn with exponential backoff and full jitter.
func (c *ClusterClient) withRetry(fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !retryable(err) || attempt >= c.maxRetries {
			return err
		}
		ceiling := c.baseDelay << attempt
		if ceiling > c.maxDelay || ceiling <= 0 {
			ceiling = c.maxDelay
		}
		c.count("kvclient.retries")
		c.flight.instant("retry")
		d := time.Duration(c.jitter() * float64(ceiling))
		c.flight.backoff(d)
		c.sleep(d)
	}
}

// ownersFor returns the replica set for a key.
func (c *ClusterClient) ownersFor(key string) ([]string, error) {
	nodes, err := c.ring.LocateN(key, c.replicas)
	if err != nil {
		return nil, ErrNoNodes
	}
	return nodes, nil
}

// isTransport reports whether err is a connection-level failure (vs a
// protocol-level result like ErrNotFound).
func isTransport(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, ErrNotFound),
		errors.Is(err, ErrNotStored),
		errors.Is(err, ErrExists),
		errors.Is(err, ErrClient),
		errors.Is(err, ErrServer),
		errors.Is(err, ErrProtocol):
		return false
	}
	return true
}

// Get reads a key, trying each replica in preference order on miss or
// node failure, retrying with backoff if every replica failed.
func (c *ClusterClient) Get(key string) (Item, error) {
	var it Item
	err := c.withRetry(func() error {
		var err error
		it, err = c.getOnce(key)
		return err
	})
	return it, err
}

func (c *ClusterClient) getOnce(key string) (Item, error) {
	c.maybeReadmit()
	owners, err := c.ownersFor(key)
	if err != nil {
		return Item{}, err
	}
	if c.readRepair && len(owners) > 1 {
		return c.getRepair(key, owners)
	}
	lastErr := error(ErrNotFound)
	for i, addr := range owners {
		var it Item
		err := c.observedOp(addr, "get", func(conn NodeConn) error {
			var e error
			it, e = conn.Get(key)
			return e
		})
		if err == nil {
			c.recordSuccess(addr)
			if i > 0 {
				c.count("kvclient.failovers")
				c.flight.instant("failover")
			}
			return it, nil
		}
		if isTransport(err) {
			c.recordFailure(addr)
		} else if errors.Is(err, ErrBusy) {
			c.count("kvclient.busy")
		} else if !errors.Is(err, ErrNotFound) {
			return Item{}, err
		}
		lastErr = err
	}
	return Item{}, lastErr
}

// GetMulti fetches many keys in one scatter-gather pass: keys are
// partitioned by their ring placement, each involved node receives one
// pipelined multiget (bounded by MultigetFanout concurrent node
// operations), and the per-node answers merge into a single map.
//
// Failure semantics are partial: a key served by a healthy node but not
// present is simply absent from the result (as in Client.GetMulti); a
// node that fails its multiget — after the usual per-node retries and
// circuit-breaker accounting — hands its keys to the next replica rank,
// and only keys whose every replica failed surface as an error. The
// returned map is always valid: on error it holds whatever the healthy
// replicas answered, so callers can treat unreturned keys as misses and
// refetch from the backing store.
func (c *ClusterClient) GetMulti(keys []string) (map[string]Item, error) {
	// Normalize: duplicates collapse and empty keys drop, mirroring the
	// single-connection client, so result accounting below is per unique
	// key.
	unique := make([]string, 0, len(keys))
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup || k == "" {
			continue
		}
		seen[k] = struct{}{}
		unique = append(unique, k)
	}
	results := make(map[string]Item, len(unique))
	if len(unique) == 0 {
		return results, nil
	}

	// Each key's replica set is re-resolved at the start of every
	// failover round rather than frozen up front: an ejection during the
	// scatter reshuffles ring ranks, and a frozen list would keep
	// pointing a key at dead nodes while the live replica that actually
	// holds it — promoted to primary by the very ejection — is never
	// consulted. Per-key tried sets keep rounds from revisiting a node
	// that already failed or answered for that key, so the walk still
	// terminates even as the resolved lists shift underneath it.
	var (
		resMu   sync.Mutex // guards results
		nextMu  sync.Mutex // guards next and lastErr
		tried   = make(map[string]map[string]struct{}, len(unique))
		pending = unique
		dead    []string // keys with no untried replica left
		lastErr error
		round   int
	)
	for len(pending) > 0 {
		// Wait out an empty ring like any other transient failure
		// (readmission may refill it), then resolve this round's
		// placement.
		groups := make(map[string][]string)
		if err := c.withRetry(func() error {
			c.maybeReadmit()
			if c.ring.Len() == 0 {
				return ErrNoNodes
			}
			return nil
		}); err != nil {
			dead = append(dead, pending...)
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		var next []string
		for _, k := range pending {
			owners, err := c.ownersFor(k)
			if err != nil {
				// Ring emptied between the retry above and here; the key
				// is out of options this pass.
				dead = append(dead, k)
				if lastErr == nil {
					lastErr = err
				}
				continue
			}
			addr := ""
			for _, o := range owners {
				if _, done := tried[k][o]; !done {
					addr = o
					break
				}
			}
			if addr == "" {
				dead = append(dead, k)
				continue
			}
			if tried[k] == nil {
				tried[k] = make(map[string]struct{}, c.replicas)
			}
			tried[k][addr] = struct{}{}
			groups[addr] = append(groups[addr], k)
		}
		if len(groups) == 0 {
			break
		}
		sem := make(chan struct{}, c.fanout)
		var wg sync.WaitGroup
		for addr, group := range groups {
			wg.Add(1)
			go func(addr string, group []string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				var items map[string]Item
				err := c.withRetry(func() error {
					e := c.observedOp(addr, "get", func(conn NodeConn) error {
						var ge error
						items, ge = conn.GetMulti(group)
						return ge
					})
					if e == nil {
						c.recordSuccess(addr)
						return nil
					}
					if isTransport(e) {
						c.recordFailure(addr)
					} else if errors.Is(e, ErrBusy) {
						c.count("kvclient.busy")
					}
					return e
				})
				if err == nil {
					resMu.Lock()
					for k, it := range items {
						results[k] = it
					}
					resMu.Unlock()
					if round > 0 {
						c.countN("kvclient.failovers", len(group))
						c.flight.instant("failover")
					}
					return
				}
				nextMu.Lock()
				next = append(next, group...)
				lastErr = err
				nextMu.Unlock()
			}(addr, group)
		}
		wg.Wait()
		pending = next
		round++
	}
	if n := len(pending) + len(dead); n > 0 {
		if lastErr == nil {
			lastErr = ErrNoNodes
		}
		return results, fmt.Errorf("kvclient: multiget: %d of %d keys unreachable on every replica: %w",
			n, len(unique), lastErr)
	}
	return results, nil
}

// Set writes a key to all replicas; it succeeds if at least one replica
// stored the value and reports the first error otherwise, retrying with
// backoff if no replica stored it.
func (c *ClusterClient) Set(key string, value []byte, flags uint32, exptime int64) error {
	return c.withRetry(func() error {
		return c.setOnce(key, value, flags, exptime)
	})
}

func (c *ClusterClient) setOnce(key string, value []byte, flags uint32, exptime int64) error {
	c.maybeReadmit()
	owners, err := c.ownersFor(key)
	if err != nil {
		return err
	}
	stored := 0
	var firstErr error
	for _, addr := range owners {
		err := c.observedOp(addr, "store", func(conn NodeConn) error {
			return conn.Set(key, value, flags, exptime)
		})
		if err == nil {
			c.recordSuccess(addr)
			stored++
			continue
		}
		if isTransport(err) {
			c.recordFailure(addr)
		} else if errors.Is(err, ErrBusy) {
			c.count("kvclient.busy")
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if stored > 0 {
		return nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("kvclient: set %q stored on no replica", key)
	}
	return firstErr
}

// Delete removes a key from every replica; ErrNotFound only if no
// replica had it. Transport failures are retried with backoff.
func (c *ClusterClient) Delete(key string) error {
	return c.withRetry(func() error {
		return c.deleteOnce(key)
	})
}

func (c *ClusterClient) deleteOnce(key string) error {
	c.maybeReadmit()
	owners, err := c.ownersFor(key)
	if err != nil {
		return err
	}
	deleted := 0
	var firstErr error
	for _, addr := range owners {
		err := c.observedOp(addr, "delete", func(conn NodeConn) error {
			return conn.Delete(key)
		})
		switch {
		case err == nil:
			c.recordSuccess(addr)
			deleted++
		case errors.Is(err, ErrNotFound):
			c.recordSuccess(addr)
		default:
			if isTransport(err) {
				c.recordFailure(addr)
			} else if errors.Is(err, ErrBusy) {
				c.count("kvclient.busy")
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if deleted > 0 {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return ErrNotFound
}

// Close shuts every connection.
func (c *ClusterClient) Close() error {
	c.mu.Lock()
	states := make([]*nodeState, 0, len(c.nodes))
	for _, ns := range c.nodes {
		states = append(states, ns)
	}
	c.mu.Unlock()
	for _, ns := range states {
		ns.mu.Lock()
		if ns.conn != nil {
			ns.conn.Close() //nolint:kv3d -- shutdown: per-conn close errors on teardown carry no signal
			ns.conn = nil
		}
		ns.mu.Unlock()
	}
	return nil
}
