package kvclient

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kv3d/internal/cluster"
)

// ClusterClient routes memcached operations across many servers with a
// consistent-hash ring — the client-side view of a Mercury deployment,
// where every stack is an independent node (§3.8). Writes optionally
// replicate to R nodes; reads fall through replicas on miss or node
// failure.
type ClusterClient struct {
	ring     *cluster.Ring
	replicas int

	mu    sync.Mutex
	conns map[string]*Client
	dial  func(addr string) (*Client, error)
}

// ClusterConfig configures a ClusterClient.
type ClusterConfig struct {
	// Addrs are the initial node addresses.
	Addrs []string
	// Replicas is how many nodes store each key (default 1).
	Replicas int
	// VirtualNodes per server on the ring (default 160).
	VirtualNodes int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
}

// ErrNoNodes is returned when the ring is empty.
var ErrNoNodes = errors.New("kvclient: cluster has no nodes")

// NewCluster builds a cluster client. Connections are dialed lazily.
func NewCluster(cfg ClusterConfig) (*ClusterClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &ClusterClient{
		ring:     cluster.NewRing(cfg.VirtualNodes),
		replicas: cfg.Replicas,
		conns:    make(map[string]*Client),
		dial: func(addr string) (*Client, error) {
			return DialTimeout(addr, timeout)
		},
	}
	for _, a := range cfg.Addrs {
		c.ring.Add(a)
	}
	return c, nil
}

// AddNode inserts a server into the ring (idempotent).
func (c *ClusterClient) AddNode(addr string) { c.ring.Add(addr) }

// RemoveNode drops a server from the ring and closes its connection.
func (c *ClusterClient) RemoveNode(addr string) {
	c.ring.Remove(addr)
	c.mu.Lock()
	if conn, ok := c.conns[addr]; ok {
		conn.Close()
		delete(c.conns, addr)
	}
	c.mu.Unlock()
}

// Nodes lists the current ring members.
func (c *ClusterClient) Nodes() []string { return c.ring.Nodes() }

// conn returns (dialing if needed) the connection for a node.
func (c *ClusterClient) conn(addr string) (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		return conn, nil
	}
	conn, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[addr] = conn
	return conn, nil
}

// dropConn forgets a connection after a transport error so the next
// operation re-dials.
func (c *ClusterClient) dropConn(addr string) {
	c.mu.Lock()
	if conn, ok := c.conns[addr]; ok {
		conn.Close()
		delete(c.conns, addr)
	}
	c.mu.Unlock()
}

// ownersFor returns the replica set for a key.
func (c *ClusterClient) ownersFor(key string) ([]string, error) {
	nodes, err := c.ring.LocateN(key, c.replicas)
	if err != nil {
		return nil, ErrNoNodes
	}
	return nodes, nil
}

// isTransport reports whether err is a connection-level failure (vs a
// protocol-level result like ErrNotFound).
func isTransport(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, ErrNotFound),
		errors.Is(err, ErrNotStored),
		errors.Is(err, ErrExists),
		errors.Is(err, ErrClient),
		errors.Is(err, ErrServer),
		errors.Is(err, ErrProtocol):
		return false
	}
	return true
}

// Get reads a key, trying each replica in preference order on miss or
// node failure.
func (c *ClusterClient) Get(key string) (Item, error) {
	owners, err := c.ownersFor(key)
	if err != nil {
		return Item{}, err
	}
	lastErr := error(ErrNotFound)
	for _, addr := range owners {
		conn, err := c.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		it, err := conn.Get(key)
		if err == nil {
			return it, nil
		}
		if isTransport(err) {
			c.dropConn(addr)
		}
		lastErr = err
	}
	return Item{}, lastErr
}

// Set writes a key to all replicas; it succeeds if at least one replica
// stored the value and reports the first error otherwise.
func (c *ClusterClient) Set(key string, value []byte, flags uint32, exptime int64) error {
	owners, err := c.ownersFor(key)
	if err != nil {
		return err
	}
	stored := 0
	var firstErr error
	for _, addr := range owners {
		conn, err := c.conn(addr)
		if err == nil {
			err = conn.Set(key, value, flags, exptime)
		}
		if err == nil {
			stored++
			continue
		}
		if isTransport(err) {
			c.dropConn(addr)
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if stored > 0 {
		return nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("kvclient: set %q stored on no replica", key)
	}
	return firstErr
}

// Delete removes a key from every replica; ErrNotFound only if no
// replica had it.
func (c *ClusterClient) Delete(key string) error {
	owners, err := c.ownersFor(key)
	if err != nil {
		return err
	}
	deleted := 0
	var firstErr error
	for _, addr := range owners {
		conn, err := c.conn(addr)
		if err == nil {
			err = conn.Delete(key)
		}
		switch {
		case err == nil:
			deleted++
		case errors.Is(err, ErrNotFound):
		default:
			if isTransport(err) {
				c.dropConn(addr)
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if deleted > 0 {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return ErrNotFound
}

// Close shuts every connection.
func (c *ClusterClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, conn := range c.conns {
		conn.Close()
		delete(c.conns, addr)
	}
	return nil
}
