// Package bench measures the live server end to end — an in-process
// kvserver driven over loopback by concurrent protocol clients — and
// records the result as a versioned BENCH_<name>.json snapshot. The
// snapshot files form the repo's performance trajectory: each one pins
// throughput, latency percentiles, and allocation rates together with
// the environment fingerprint that produced them, and Compare turns two
// snapshots into a pass/fail regression verdict with tolerance bands.
package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"kv3d/internal/metrics"
)

// SchemaV1 identifies the snapshot file format. Readers reject files
// with an unknown schema instead of misinterpreting them.
const SchemaV1 = "kv3d-bench-snapshot/v1"

// Snapshot is one benchmark run: what was measured, under which
// configuration, on which machine.
type Snapshot struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	CreatedUnix int64  `json:"created_unix"`

	// Environment fingerprint: enough to judge whether two snapshots
	// are comparable at all.
	GoVersion string `json:"go_version"`
	GoOS      string `json:"go_os"`
	GoArch    string `json:"go_arch"`
	NumCPU    int    `json:"num_cpu"`

	Config Config `json:"config"`
	Result Result `json:"result"`
}

// Config echoes the workload parameters so a snapshot is reproducible
// from its own file.
type Config struct {
	Ops       int     `json:"ops"`
	ValueSize int     `json:"value_size"`
	KeySpace  int     `json:"key_space"`
	Workers   int     `json:"workers"`
	GetRatio  float64 `json:"get_ratio"`
	Binary    bool    `json:"binary"`
	// Batched runs the server's event-driven batched datapath; Pipeline
	// is the client-side multiget depth (1 = one round trip per get).
	// Both default false/1 in older snapshots, which is exactly what
	// those runs measured.
	Batched  bool   `json:"batched,omitempty"`
	Pipeline int    `json:"pipeline,omitempty"`
	Seed     uint64 `json:"seed"`
}

// Result is what the run measured.
type Result struct {
	Ops        int64   `json:"ops"`
	DurationNs int64   `json:"duration_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Errors     int64   `json:"errors"`
	// LatencyNs summarizes per-op client-observed latency (includes the
	// loopback round trip).
	LatencyNs metrics.Summary `json:"latency_ns"`
	// AllocsPerOp / BytesPerOp cover the whole process — server and
	// clients together, since the bench runs in-process — so they track
	// the end-to-end allocation cost of one operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Server-side I/O calls per operation, measured by wrapping every
	// accepted connection: each Read is one wakeup+read syscall, each
	// Write one write syscall (the session layer writes through bufio,
	// so Writes count flushes, not response fragments). Absent (zero)
	// in snapshots taken before the batched-datapath work.
	ServerReadsPerOp  float64 `json:"server_reads_per_op,omitempty"`
	ServerWritesPerOp float64 `json:"server_writes_per_op,omitempty"`
	SyscallsPerOp     float64 `json:"syscalls_per_op,omitempty"`
}

// Write stores the snapshot as indented JSON (newline-terminated, so
// the files diff cleanly under git).
func (s Snapshot) Write(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a snapshot file.
func Load(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	if s.Schema != SchemaV1 {
		return Snapshot{}, fmt.Errorf("bench: %s: unknown schema %q (want %q)", path, s.Schema, SchemaV1)
	}
	return s, nil
}

// Regression is one metric that moved past its tolerance band.
type Regression struct {
	Metric string  // e.g. "latency_ns.p99"
	Old    float64 // baseline value
	New    float64 // current value
	Limit  float64 // the worst acceptable value under the tolerance
}

func (r Regression) String() string {
	return fmt.Sprintf("%s regressed: %.0f -> %.0f (limit %.0f)", r.Metric, r.Old, r.New, r.Limit)
}

// Compare checks cur against base under a relative tolerance (0.5 means
// "50% worse is still acceptable" — benchmarks on shared CI machines
// need generous bands). Latency percentiles and allocation rates may
// grow up to (1+tolerance)x; throughput may shrink down to
// 1/(1+tolerance)x. Metrics the baseline never measured (zero values)
// are skipped. It returns every violated band, empty when cur passes.
func Compare(base, cur Snapshot, tolerance float64) []Regression {
	if tolerance < 0 {
		tolerance = 0
	}
	var regs []Regression
	higher := func(metric string, oldV, newV float64) {
		if oldV <= 0 {
			return
		}
		limit := oldV * (1 + tolerance)
		if newV > limit {
			regs = append(regs, Regression{Metric: metric, Old: oldV, New: newV, Limit: limit})
		}
	}
	if base.Result.OpsPerSec > 0 {
		floor := base.Result.OpsPerSec / (1 + tolerance)
		if cur.Result.OpsPerSec < floor {
			regs = append(regs, Regression{
				Metric: "ops_per_sec", Old: base.Result.OpsPerSec,
				New: cur.Result.OpsPerSec, Limit: floor,
			})
		}
	}
	higher("latency_ns.p50", float64(base.Result.LatencyNs.P50), float64(cur.Result.LatencyNs.P50))
	higher("latency_ns.p99", float64(base.Result.LatencyNs.P99), float64(cur.Result.LatencyNs.P99))
	higher("latency_ns.p999", float64(base.Result.LatencyNs.P999), float64(cur.Result.LatencyNs.P999))
	higher("allocs_per_op", base.Result.AllocsPerOp, cur.Result.AllocsPerOp)
	higher("bytes_per_op", base.Result.BytesPerOp, cur.Result.BytesPerOp)
	higher("syscalls_per_op", base.Result.SyscallsPerOp, cur.Result.SyscallsPerOp)
	return regs
}
