package bench

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/metrics"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

// LiveConfig parameterizes one live benchmark run. The zero value gets
// sensible defaults from withDefaults.
type LiveConfig struct {
	// Name labels the snapshot (default "live").
	Name string
	// Ops is the total operation count across all workers (default 20000).
	Ops int
	// ValueSize is the stored value length in bytes (default 100).
	ValueSize int
	// KeySpace is how many distinct keys the workload touches (default 1024).
	KeySpace int
	// Workers is the number of concurrent connections (default 4).
	Workers int
	// GetRatio is the fraction of gets, the rest are sets (default 0.9).
	GetRatio float64
	// Binary selects the binary protocol for the workers (default ASCII).
	Binary bool
	// Batched runs the server with the event-driven batched datapath
	// (kvserver.Options.Batched): coalesced store rounds and
	// flush-on-drain response staging.
	Batched bool
	// Pipeline > 1 makes workers issue their gets as pipelined
	// multi-key batches of this depth instead of one blocking
	// round trip per key. Each key still counts as one op; the latency
	// histogram then records per-batch round trips.
	Pipeline int
	// Seed drives the per-worker op mix (default 1) — the same seed
	// replays the same request sequence.
	Seed uint64
	// StoreBytes caps the server's store (default 64 MiB).
	StoreBytes int64
	// Flight, when set, attaches a flight recorder to the benched server
	// (sampled per FlightEvery) so a bench run can double as a trace
	// capture.
	Flight      *obs.FlightRecorder
	FlightEvery int
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Name == "" {
		c.Name = "live"
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.GetRatio <= 0 || c.GetRatio > 1 {
		c.GetRatio = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StoreBytes <= 0 {
		c.StoreBytes = 64 << 20
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	return c
}

// countingConn counts Read/Write calls on one server-side connection.
// Over a bufio-backed session each call maps to one syscall on a real
// socket, so the per-op ratio measures how well the server batches its
// I/O — the number the batched datapath exists to shrink.
type countingConn struct {
	net.Conn
	ln *countingListener
}

func (c countingConn) Read(p []byte) (int, error) {
	c.ln.reads.Add(1)
	return c.Conn.Read(p)
}

func (c countingConn) Write(p []byte) (int, error) {
	c.ln.writes.Add(1)
	return c.Conn.Write(p)
}

// countingListener wraps every accepted connection in a countingConn.
type countingListener struct {
	net.Listener
	reads, writes atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return countingConn{Conn: conn, ln: l}, nil
}

// benchConn is the protocol surface a worker drives — both client types
// satisfy it.
type benchConn interface {
	Get(key string) (kvclient.Item, error)
	GetMulti(keys []string) (map[string]kvclient.Item, error)
	Set(key string, value []byte, flags uint32, exptime int64) error
	Close() error
}

// RunLive starts an in-process kvserver on a loopback listener, drives
// it with Workers concurrent protocol clients, and returns the measured
// snapshot. Memory statistics are read OUTSIDE the timed region — a
// ReadMemStats inside it would stop the world mid-measurement and
// charge its own cost to the benchmark.
func RunLive(cfg LiveConfig) (Snapshot, error) {
	cfg = cfg.withDefaults()
	st, err := kvstore.New(kvstore.DefaultConfig(cfg.StoreBytes))
	if err != nil {
		return Snapshot{}, err
	}
	srv := kvserver.NewWithOptions(st, nil, kvserver.Options{
		Batched:     cfg.Batched,
		Flight:      cfg.Flight,
		FlightEvery: cfg.FlightEvery,
	})
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Snapshot{}, err
	}
	ln := &countingListener{Listener: rawLn}
	go srv.ServeOn(ln) //nolint:kv3d -- Serve's error surfaces as op failures on the workers; the bench reports those
	defer srv.Close()
	addr := rawLn.Addr().String()

	dial := func() (benchConn, error) {
		if cfg.Binary {
			return kvclient.DialBinary(addr)
		}
		return kvclient.Dial(addr)
	}

	// Preload the key space so gets mostly hit, and open every worker
	// connection before the clock starts: dials and warmup are setup,
	// not workload.
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	preload, err := dial()
	if err != nil {
		return Snapshot{}, err
	}
	for i := 0; i < cfg.KeySpace; i++ {
		if err := preload.Set(benchKey(i), value, 0, 0); err != nil {
			preload.Close()
			return Snapshot{}, fmt.Errorf("bench: preload: %w", err)
		}
	}
	if err := preload.Close(); err != nil {
		return Snapshot{}, err
	}
	conns := make([]benchConn, cfg.Workers)
	for w := range conns {
		if conns[w], err = dial(); err != nil {
			return Snapshot{}, err
		}
	}

	type workerResult struct {
		hist                 *metrics.Histogram
		hits, misses, errors int64
	}
	results := make([]workerResult, cfg.Workers)
	perWorker := cfg.Ops / cfg.Workers
	extra := cfg.Ops % cfg.Workers

	var before, after runtime.MemStats
	runtime.GC() // settle the heap so alloc deltas reflect the run, not setup garbage
	runtime.ReadMemStats(&before)
	// Snapshot the server-side I/O counters so preload and dial traffic
	// is excluded from the per-op syscall figures.
	startReads, startWrites := ln.reads.Load(), ln.writes.Load()
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		ops := perWorker
		if w < extra {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			rng := sim.NewRand(cfg.Seed + uint64(w)*0x9e3779b9)
			res := &results[w]
			res.hist = metrics.NewHistogram()
			conn := conns[w]
			var pending []string
			if cfg.Pipeline > 1 {
				pending = make([]string, 0, cfg.Pipeline)
			}
			// flushPending issues the accumulated gets as one pipelined
			// multiget; the histogram records the batch round trip.
			flushPending := func() {
				if len(pending) == 0 {
					return
				}
				opStart := time.Now()
				items, err := conn.GetMulti(pending)
				if err != nil {
					res.errors += int64(len(pending))
				} else {
					for _, k := range pending {
						if _, ok := items[k]; ok {
							res.hits++
						} else {
							res.misses++
						}
					}
				}
				res.hist.Record(time.Since(opStart).Nanoseconds())
				pending = pending[:0]
			}
			for i := 0; i < ops; i++ {
				key := benchKey(int(rng.Uint64() % uint64(cfg.KeySpace)))
				if cfg.Pipeline > 1 && rng.Float64() < cfg.GetRatio {
					pending = append(pending, key)
					if len(pending) == cfg.Pipeline {
						flushPending()
					}
					continue
				}
				opStart := time.Now()
				if cfg.Pipeline <= 1 && rng.Float64() < cfg.GetRatio {
					_, err := conn.Get(key)
					switch {
					case err == nil:
						res.hits++
					case errors.Is(err, kvclient.ErrNotFound):
						res.misses++
					default:
						res.errors++
					}
				} else {
					// Flush queued gets first so a pipelined run keeps
					// read-your-write ordering across the set.
					flushPending()
					if err := conn.Set(key, value, 0, 0); err != nil {
						res.errors++
					}
				}
				res.hist.Record(time.Since(opStart).Nanoseconds())
			}
			flushPending()
		}(w, ops)
	}
	wg.Wait()

	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	for _, conn := range conns {
		conn.Close() //nolint:kv3d -- teardown after the timed region; op errors were already counted
	}

	agg := metrics.NewHistogram()
	var res Result
	for w := range results {
		agg.Merge(results[w].hist)
		res.Hits += results[w].hits
		res.Misses += results[w].misses
		res.Errors += results[w].errors
	}
	res.Ops = int64(cfg.Ops)
	res.DurationNs = elapsed.Nanoseconds()
	if elapsed > 0 {
		res.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	}
	res.LatencyNs = agg.Summarize()
	if cfg.Ops > 0 {
		res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(cfg.Ops)
		res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Ops)
		reads := float64(ln.reads.Load() - startReads)
		writes := float64(ln.writes.Load() - startWrites)
		res.ServerReadsPerOp = reads / float64(cfg.Ops)
		res.ServerWritesPerOp = writes / float64(cfg.Ops)
		res.SyscallsPerOp = (reads + writes) / float64(cfg.Ops)
	}

	return Snapshot{
		Schema:      SchemaV1,
		Name:        cfg.Name,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Config: Config{
			Ops:       cfg.Ops,
			ValueSize: cfg.ValueSize,
			KeySpace:  cfg.KeySpace,
			Workers:   cfg.Workers,
			GetRatio:  cfg.GetRatio,
			Binary:    cfg.Binary,
			Batched:   cfg.Batched,
			Pipeline:  cfg.Pipeline,
			Seed:      cfg.Seed,
		},
		Result: res,
	}, nil
}

func benchKey(i int) string {
	return fmt.Sprintf("bench:key:%06d", i)
}
