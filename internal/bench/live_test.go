package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"kv3d/internal/obs"
	"kv3d/internal/testutil"
)

func TestRunLiveASCIIAndBinary(t *testing.T) {
	testutil.CheckGoroutines(t)
	for _, binary := range []bool{false, true} {
		name := "ascii"
		if binary {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			snap, err := RunLive(LiveConfig{
				Name:    "smoke-" + name,
				Ops:     2000,
				Workers: 2,
				Binary:  binary,
			})
			if err != nil {
				t.Fatal(err)
			}
			if snap.Schema != SchemaV1 {
				t.Errorf("schema = %q", snap.Schema)
			}
			r := snap.Result
			if r.Ops != 2000 || r.LatencyNs.Count != 2000 {
				t.Errorf("ops = %d, latency count = %d, want 2000", r.Ops, r.LatencyNs.Count)
			}
			if r.Errors != 0 {
				t.Errorf("errors = %d, want 0", r.Errors)
			}
			if r.Hits == 0 {
				t.Errorf("no hits against a preloaded key space")
			}
			if r.OpsPerSec <= 0 || r.DurationNs <= 0 {
				t.Errorf("throughput not measured: %+v", r)
			}
			if r.LatencyNs.P50 <= 0 || r.LatencyNs.Max < r.LatencyNs.P999 {
				t.Errorf("latency summary implausible: %+v", r.LatencyNs)
			}
			if r.AllocsPerOp <= 0 {
				t.Errorf("allocs_per_op = %v, want > 0 (client+server in-process)", r.AllocsPerOp)
			}
			if snap.GoVersion == "" || snap.NumCPU == 0 {
				t.Errorf("missing env fingerprint: %+v", snap)
			}
		})
	}
}

// TestRunLiveBatchedPipeline runs the batched server under a pipelined
// binary GET workload and checks the syscall accounting: the batched
// datapath must serve a 16-deep pipeline with far fewer server I/O
// calls per op than the per-op path needs (which pays ~1 read + 1
// write per op). Segmentation, not timing, so this is stable on CI.
func TestRunLiveBatchedPipeline(t *testing.T) {
	testutil.CheckGoroutines(t)
	perOp, err := RunLive(LiveConfig{
		Name: "per-op", Ops: 2000, Workers: 2, Binary: true, GetRatio: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunLive(LiveConfig{
		Name: "batched", Ops: 2000, Workers: 2, Binary: true, GetRatio: 1.0,
		Batched: true, Pipeline: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]Result{"per-op": perOp.Result, "batched": batched.Result} {
		if r.Errors != 0 {
			t.Fatalf("%s run had %d errors", name, r.Errors)
		}
		if r.Hits+r.Misses != 2000 {
			t.Fatalf("%s run accounted %d gets, want 2000", name, r.Hits+r.Misses)
		}
		if r.SyscallsPerOp <= 0 {
			t.Fatalf("%s run measured no server syscalls", name)
		}
	}
	if !batched.Config.Batched || batched.Config.Pipeline != 16 {
		t.Fatalf("batched config not recorded: %+v", batched.Config)
	}
	if batched.Result.SyscallsPerOp >= perOp.Result.SyscallsPerOp/2 {
		t.Fatalf("pipelined batched run did not shrink server syscalls: %.2f/op vs per-op %.2f/op",
			batched.Result.SyscallsPerOp, perOp.Result.SyscallsPerOp)
	}
}

// TestRunLiveFlightCapture proves a bench run can double as a trace
// capture: the attached recorder ends up with a valid trace document.
func TestRunLiveFlightCapture(t *testing.T) {
	testutil.CheckGoroutines(t)
	rec := obs.NewFlightRecorder("bench-server", 1024)
	if _, err := RunLive(LiveConfig{
		Name: "flight", Ops: 500, Workers: 1, Binary: true, FlightEvery: 1,
		Flight: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON: %.200s", buf.Bytes())
	}
}
