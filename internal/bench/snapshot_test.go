package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"kv3d/internal/metrics"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Schema:    SchemaV1,
		Name:      "unit",
		GoVersion: "go1.22",
		GoOS:      "linux",
		GoArch:    "amd64",
		NumCPU:    8,
		Config:    Config{Ops: 1000, ValueSize: 100, KeySpace: 64, Workers: 2, GetRatio: 0.9, Seed: 1},
		Result: Result{
			Ops:       1000,
			OpsPerSec: 50000,
			Hits:      850,
			Misses:    50,
			LatencyNs: metrics.Summary{
				Count: 1000, Mean: 20000, P50: 15000, P95: 40000,
				P99: 80000, P999: 120000, Max: 500000,
			},
			AllocsPerOp: 30,
			BytesPerOp:  2048,
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_unit.json")
	want := sampleSnapshot()
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	s := sampleSnapshot()
	s.Schema = "kv3d-bench-snapshot/v999"
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("Load = %v, want unknown-schema error", err)
	}
}

// TestCompareDetectsLatencyRegression is the acceptance check: a
// synthetic 2x latency regression must trip the tolerance band.
func TestCompareDetectsLatencyRegression(t *testing.T) {
	base := sampleSnapshot()
	cur := sampleSnapshot()
	cur.Result.LatencyNs.P50 *= 2
	cur.Result.LatencyNs.P99 *= 2
	cur.Result.LatencyNs.P999 *= 2

	regs := Compare(base, cur, 0.5)
	if len(regs) != 3 {
		t.Fatalf("Compare found %d regressions (%v), want 3", len(regs), regs)
	}
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Metric] = true
		if r.New <= r.Limit {
			t.Errorf("%v reported but new <= limit", r)
		}
	}
	for _, m := range []string{"latency_ns.p50", "latency_ns.p99", "latency_ns.p999"} {
		if !found[m] {
			t.Errorf("missing regression for %s: %v", m, regs)
		}
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := sampleSnapshot()
	cur := sampleSnapshot()
	// 20% worse across the board stays inside a 50% band.
	cur.Result.LatencyNs.P99 = base.Result.LatencyNs.P99 * 12 / 10
	cur.Result.OpsPerSec = base.Result.OpsPerSec * 0.85
	cur.Result.AllocsPerOp = base.Result.AllocsPerOp * 1.2
	if regs := Compare(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("Compare = %v, want none", regs)
	}
}

func TestCompareDetectsThroughputAndAllocRegressions(t *testing.T) {
	base := sampleSnapshot()
	cur := sampleSnapshot()
	cur.Result.OpsPerSec = base.Result.OpsPerSec / 3
	cur.Result.AllocsPerOp = base.Result.AllocsPerOp * 3
	cur.Result.BytesPerOp = base.Result.BytesPerOp * 3
	regs := Compare(base, cur, 0.5)
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Metric] = true
	}
	for _, m := range []string{"ops_per_sec", "allocs_per_op", "bytes_per_op"} {
		if !found[m] {
			t.Errorf("missing regression for %s: %v", m, regs)
		}
	}
}

// TestCompareSkipsUnmeasuredBaseline: zero baseline values mean "not
// measured", not "must stay zero".
func TestCompareSkipsUnmeasuredBaseline(t *testing.T) {
	base := sampleSnapshot()
	base.Result.AllocsPerOp = 0
	base.Result.LatencyNs.P999 = 0
	cur := sampleSnapshot()
	cur.Result.AllocsPerOp = 1e9
	cur.Result.LatencyNs.P999 = 1e9
	if regs := Compare(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("Compare = %v, want none (unmeasured baseline)", regs)
	}
}
