package testutil

import (
	"testing"
	"time"
)

// A goroutine that exits shortly after the test body must not trip the
// check: the settle loop exists precisely for close paths that finish
// asynchronously.
func TestCheckGoroutinesSettles(t *testing.T) {
	CheckGoroutines(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	_ = done
}

// The happy path: nothing started, nothing flagged.
func TestCheckGoroutinesClean(t *testing.T) {
	CheckGoroutines(t)
}
