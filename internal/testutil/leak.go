// Package testutil holds small helpers shared by the live-path tests.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// settleTimeout bounds how long CheckGoroutines waits for goroutines
// started during a test to wind down before declaring a leak. Server
// close paths hand connections a deadline and join their handlers, so
// two seconds is generous; a true leak never settles.
const settleTimeout = 2 * time.Second

// CheckGoroutines snapshots the current goroutine count and registers
// a cleanup that fails the test if the count has not settled back by
// the time the test (and any cleanups registered after this call, such
// as server Close hooks — t.Cleanup runs LIFO) has finished.
//
// Call it first in tests or helpers that start servers, listeners, or
// background clients:
//
//	func startServer(t *testing.T) (*Server, string) {
//		testutil.CheckGoroutines(t)
//		...
//		t.Cleanup(func() { srv.Close() })
//	}
//
// The comparison is against the process-wide runtime.NumGoroutine, so
// tests using it must not run in parallel with tests that start or
// stop goroutines of their own.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(settleTimeout)
		n := runtime.NumGoroutine()
		for n > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d before the test, %d still running after %v\n\n%s",
					before, n, settleTimeout, buf)
				return
			}
			time.Sleep(5 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
	})
}
