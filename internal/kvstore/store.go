package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ConcurrencyMode selects the locking design of a Store.
type ConcurrencyMode int

const (
	// ModeGlobal serializes every operation behind one mutex, matching
	// memcached 1.4's global cache lock.
	ModeGlobal ConcurrencyMode = iota
	// ModeStriped partitions the keyspace into independently locked
	// shards, matching memcached 1.6's fine-grained locking.
	ModeStriped
)

func (m ConcurrencyMode) String() string {
	switch m {
	case ModeGlobal:
		return "global"
	case ModeStriped:
		return "striped"
	default:
		return "unknown"
	}
}

// Clock abstracts wall time (unix seconds) so tests and simulations can
// drive expiry deterministically.
type Clock func() int64

// Config configures a Store. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// MemoryLimit is the total slab budget in bytes across all shards.
	MemoryLimit int64
	// Mode selects global vs striped locking.
	Mode ConcurrencyMode
	// Shards is the stripe count for ModeStriped (power of two enforced).
	Shards int
	// Policy selects strict LRU or Bags eviction.
	Policy EvictionPolicy
	// EvictionsEnabled allows evicting live items under memory pressure
	// (memcached -M disables this and errors instead).
	EvictionsEnabled bool
	// MaxItemSize bounds key+value+overhead bytes for one item.
	MaxItemSize int
	// BaseChunkSize, GrowthFactor, SlabPageSize tune the slab ladder.
	BaseChunkSize int
	GrowthFactor  float64
	SlabPageSize  int
	// Clock supplies unix seconds; defaults to WallClock. Simulations
	// and experiments must inject a deterministic clock (LINTING.md).
	Clock Clock
}

// DefaultConfig returns a memcached-like configuration with the given
// memory limit.
func DefaultConfig(memoryLimit int64) Config {
	return Config{
		MemoryLimit:      memoryLimit,
		Mode:             ModeStriped,
		Shards:           8,
		Policy:           PolicyLRU,
		EvictionsEnabled: true,
		MaxItemSize:      DefaultMaxItemSize,
		BaseChunkSize:    DefaultBaseChunkSize,
		GrowthFactor:     DefaultGrowthFactor,
		SlabPageSize:     DefaultSlabPageSize,
	}
}

// casCounter issues store-wide unique CAS ids.
type casCounter struct{ n atomic.Uint64 }

func (c *casCounter) next() uint64 { return c.n.Add(1) }

// Store is the concurrent, memcached-compatible key-value store.
type Store struct {
	cfg       Config
	shards    []*lockedShard
	mask      uint64
	clock     Clock
	cas       casCounter
	startUnix int64
	// readLocks counts shard-lock acquisitions on the GET paths (Get,
	// GetInto, GetIntoBytes, and one per shard for the batch variants).
	// It is the lock-count hook the multiget tests use to prove an
	// N-key batch costs at most Shards acquisitions instead of N.
	readLocks atomic.Uint64
}

// ReadLockCount reports the cumulative shard-lock acquisitions of the
// GET paths (per key for the single-key calls, per involved shard for
// the batch calls).
func (st *Store) ReadLockCount() uint64 { return st.readLocks.Load() }

type lockedShard struct {
	mu sync.Mutex
	s  *shard
}

// New validates the configuration and builds the store.
func New(cfg Config) (*Store, error) {
	if cfg.MemoryLimit <= 0 {
		return nil, fmt.Errorf("kvstore: memory limit must be positive, got %d", cfg.MemoryLimit)
	}
	if cfg.MaxItemSize <= 0 {
		cfg.MaxItemSize = DefaultMaxItemSize
	}
	if cfg.BaseChunkSize <= 0 {
		cfg.BaseChunkSize = DefaultBaseChunkSize
	}
	if cfg.GrowthFactor <= 1 {
		cfg.GrowthFactor = DefaultGrowthFactor
	}
	if cfg.SlabPageSize <= 0 {
		cfg.SlabPageSize = DefaultSlabPageSize
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	nShards := 1
	if cfg.Mode == ModeStriped {
		nShards = cfg.Shards
		if nShards <= 0 {
			nShards = 8
		}
		// Round up to a power of two for mask addressing.
		p := 1
		for p < nShards {
			p <<= 1
		}
		nShards = p
	}
	cfg.Shards = nShards
	perShard := cfg.MemoryLimit / int64(nShards)
	if perShard < int64(cfg.SlabPageSize) {
		return nil, fmt.Errorf("kvstore: memory limit %d too small for %d shards of %dB pages",
			cfg.MemoryLimit, nShards, cfg.SlabPageSize)
	}
	if cfg.MaxItemSize > cfg.SlabPageSize {
		return nil, fmt.Errorf("kvstore: max item size %d exceeds slab page size %d", cfg.MaxItemSize, cfg.SlabPageSize)
	}

	st := &Store{cfg: cfg, mask: uint64(nShards - 1), clock: cfg.Clock, startUnix: cfg.Clock()}
	for i := 0; i < nShards; i++ {
		alloc, err := newSlabAllocator(cfg.BaseChunkSize, cfg.GrowthFactor, cfg.SlabPageSize, perShard)
		if err != nil {
			return nil, err
		}
		pol := newPolicy(cfg.Policy, alloc.numClasses())
		st.shards = append(st.shards, &lockedShard{
			s: newShard(alloc, pol, &st.cas, cfg.MaxItemSize, cfg.EvictionsEnabled),
		})
	}
	return st, nil
}

// Config returns the effective configuration (after defaulting).
func (st *Store) Config() Config { return st.cfg }

func (st *Store) shardFor(key string) *lockedShard {
	// Use the upper hash bits for shard selection so shard choice stays
	// independent of the table's bucket choice (which uses low bits).
	return st.shards[(fnv1a64(key)>>48)&st.mask]
}

func (st *Store) shardForBytes(key []byte) *lockedShard {
	return st.shards[(fnv1a64Bytes(key)>>48)&st.mask]
}

// expiredNow is the absolute-expiry sentinel for "already expired":
// item.expired holds for it at every clock value, including the t=0 a
// fresh injected sim clock starts at. (The previous encoding, unix
// second 1, was live for a store whose clock had not yet passed 1 —
// negative-exptime items survived under sim clocks.)
const expiredNow int64 = -1

// expiryToAbs converts a memcached exptime to an absolute unix time:
// 0 = never, negative = already expired, <= 30 days = relative seconds,
// otherwise already absolute.
func (st *Store) expiryToAbs(exptime int64) int64 {
	return expiryToAbsAt(exptime, st.clock)
}

// expiryToAbsAt is expiryToAbs against an explicit clock, so batched
// mutations can convert every op against one clock read.
func expiryToAbsAt(exptime int64, clock func() int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	if exptime == 0 {
		return 0
	}
	if exptime < 0 {
		return expiredNow // memcached treats negatives as "immediately"
	}
	if exptime <= thirtyDays {
		return clock() + exptime
	}
	return exptime
}

// Entry is the result of a Get.
type Entry struct {
	Value []byte
	Flags uint32
	CAS   uint64
}

// Get returns a copy of the stored entry.
//
//kv3d:hotpath
func (st *Store) Get(key string) (Entry, bool) {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	st.readLocks.Add(1)
	v, flags, cas, ok := sh.s.get(key, now)
	sh.mu.Unlock()
	return Entry{Value: v, Flags: flags, CAS: cas}, ok
}

// GetInto appends the value to dst and returns the extended slice,
// avoiding a per-hit allocation on the server hot path.
//
//kv3d:hotpath
//kv3d:aliases dst
func (st *Store) GetInto(dst []byte, key string) ([]byte, Entry, bool) {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	st.readLocks.Add(1)
	out, flags, cas, ok := sh.s.getInto(dst, key, now)
	sh.mu.Unlock()
	return out, Entry{Flags: flags, CAS: cas}, ok
}

// GetIntoBytes is GetInto keyed by a byte slice, so the protocol layer
// can serve a GET without converting the parsed key token to a string
// (hashing and hash-chain comparison never allocate).
//
//kv3d:hotpath
//kv3d:aliases dst
func (st *Store) GetIntoBytes(dst, key []byte) ([]byte, Entry, bool) {
	sh := st.shardForBytes(key)
	now := st.clock()
	sh.mu.Lock()
	st.readLocks.Add(1)
	out, flags, cas, ok := sh.s.getIntoBytes(dst, key, now)
	sh.mu.Unlock()
	return out, Entry{Flags: flags, CAS: cas}, ok
}

// Set unconditionally stores the value.
//
//kv3d:hotpath
func (st *Store) Set(key string, value []byte, flags uint32, exptime int64) error {
	sh := st.shardFor(key)
	now := st.clock()
	abs := st.expiryToAbs(exptime)
	sh.mu.Lock()
	err := sh.s.set(key, value, flags, abs, now)
	sh.mu.Unlock()
	return err
}

// Add stores only if absent.
func (st *Store) Add(key string, value []byte, flags uint32, exptime int64) error {
	sh := st.shardFor(key)
	now := st.clock()
	abs := st.expiryToAbs(exptime)
	sh.mu.Lock()
	err := sh.s.add(key, value, flags, abs, now)
	sh.mu.Unlock()
	return err
}

// Replace stores only if present.
func (st *Store) Replace(key string, value []byte, flags uint32, exptime int64) error {
	sh := st.shardFor(key)
	now := st.clock()
	abs := st.expiryToAbs(exptime)
	sh.mu.Lock()
	err := sh.s.replace(key, value, flags, abs, now)
	sh.mu.Unlock()
	return err
}

// CAS stores only if the caller's CAS id matches the current one.
func (st *Store) CAS(key string, value []byte, flags uint32, exptime int64, cas uint64) error {
	sh := st.shardFor(key)
	now := st.clock()
	abs := st.expiryToAbs(exptime)
	sh.mu.Lock()
	err := sh.s.cas(key, value, flags, abs, cas, now)
	sh.mu.Unlock()
	return err
}

// Append concatenates extra after the existing value.
func (st *Store) Append(key string, extra []byte) error {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	err := sh.s.appendValue(key, extra, now, false)
	sh.mu.Unlock()
	return err
}

// Prepend concatenates extra before the existing value.
func (st *Store) Prepend(key string, extra []byte) error {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	err := sh.s.appendValue(key, extra, now, true)
	sh.mu.Unlock()
	return err
}

// Incr adds delta to a decimal value, returning the new value.
func (st *Store) Incr(key string, delta uint64) (uint64, error) {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	v, err := sh.s.incrDecr(key, delta, true, now)
	sh.mu.Unlock()
	return v, err
}

// Decr subtracts delta from a decimal value (floored at 0).
func (st *Store) Decr(key string, delta uint64) (uint64, error) {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	v, err := sh.s.incrDecr(key, delta, false, now)
	sh.mu.Unlock()
	return v, err
}

// Delete removes a key.
func (st *Store) Delete(key string) error {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	err := sh.s.delete(key, now)
	sh.mu.Unlock()
	return err
}

// Touch updates a key's expiry.
func (st *Store) Touch(key string, exptime int64) error {
	sh := st.shardFor(key)
	now := st.clock()
	abs := st.expiryToAbs(exptime)
	sh.mu.Lock()
	err := sh.s.touch(key, abs, now)
	sh.mu.Unlock()
	return err
}

// FlushAll invalidates all items stored before now+delay seconds.
func (st *Store) FlushAll(delay int64) {
	epoch := st.clock() + delay
	if delay == 0 {
		epoch = st.clock() + 1 // everything stored strictly before the next second
	}
	for _, sh := range st.shards {
		sh.mu.Lock()
		sh.s.flushAll(epoch)
		sh.mu.Unlock()
	}
}

// ItemCount reports the number of resident items (some may be expired
// but not yet reaped, as in memcached).
func (st *Store) ItemCount() int {
	total := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		total += sh.s.itemCount()
		sh.mu.Unlock()
	}
	return total
}

// Stats aggregates counters across shards.
func (st *Store) Stats() Stats {
	var out Stats
	for _, sh := range st.shards {
		sh.mu.Lock()
		s := sh.s.stats
		out.GetHits += s.GetHits
		out.GetMisses += s.GetMisses
		out.Sets += s.Sets
		out.DeleteHits += s.DeleteHits
		out.DeleteMisses += s.DeleteMiss
		out.CasHits += s.CasHits
		out.CasMisses += s.CasMisses
		out.CasBadval += s.CasBadval
		out.IncrHits += s.IncrHits
		out.IncrMisses += s.IncrMisses
		out.DecrHits += s.DecrHits
		out.DecrMisses += s.DecrMisses
		out.TouchHits += s.TouchHits
		out.TouchMisses += s.TouchMisses
		out.Evictions += s.Evictions
		out.Expired += s.Expired
		out.SlabReassigns += s.SlabReassigns
		out.TotalItems += s.TotalItems
		out.BytesUsed += s.BytesUsed
		out.CurrItems += uint64(sh.s.itemCount())
		out.SlabBytes += sh.s.alloc.PageBytes()
		sh.mu.Unlock()
	}
	out.Shards = len(st.shards)
	out.UptimeSeconds = st.clock() - st.startUnix
	return out
}

// Stats is the aggregated counter snapshot exposed by the stats verb.
type Stats struct {
	GetHits, GetMisses       uint64
	Sets                     uint64
	DeleteHits, DeleteMisses uint64
	CasHits, CasMisses       uint64
	CasBadval                uint64
	IncrHits, IncrMisses     uint64
	DecrHits, DecrMisses     uint64
	TouchHits, TouchMisses   uint64
	Evictions, Expired       uint64
	SlabReassigns            uint64
	TotalItems, CurrItems    uint64
	BytesUsed                int64
	SlabBytes                int64
	Shards                   int
	UptimeSeconds            int64
}

// SlabClassStats describes one slab size class, aggregated across
// shards (the "stats slabs" view).
type SlabClassStats struct {
	ClassID    int
	ChunkSize  int
	Pages      int
	UsedChunks int
	FreeChunks int
}

// SlabStats reports per-class slab usage across all shards.
func (st *Store) SlabStats() []SlabClassStats {
	var out []SlabClassStats
	for _, sh := range st.shards {
		sh.mu.Lock()
		a := sh.s.alloc
		if out == nil {
			out = make([]SlabClassStats, a.numClasses())
			for i := range out {
				out[i] = SlabClassStats{ClassID: i + 1, ChunkSize: a.chunkSize(i)}
			}
		}
		for i := range a.classes {
			out[i].Pages += len(a.classes[i].pages)
			out[i].UsedChunks += a.classes[i].allocated
			out[i].FreeChunks += len(a.classes[i].free)
		}
		sh.mu.Unlock()
	}
	// Drop classes with no pages anywhere to keep the report readable.
	kept := out[:0]
	for _, c := range out {
		if c.Pages > 0 {
			kept = append(kept, c)
		}
	}
	return kept
}

// HitRate returns get_hits / (get_hits+get_misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.GetHits + s.GetMisses
	if total == 0 {
		return 0
	}
	return float64(s.GetHits) / float64(total)
}
