package kvstore

import (
	"testing"
)

// TestExpiryTable pins the memcached exptime contract across the three
// regimes: 0 = never, negative = immediately expired, positive ≤ 30
// days = relative to now, positive > 30 days = absolute unix seconds.
// The negative rows run at clock t=0 — the value a fresh injected sim
// clock starts at — which is the regression for the pre-fix encoding
// (negative exptimes mapped to absolute second 1, still live for any
// store whose clock had not yet passed 1).
func TestExpiryTable(t *testing.T) {
	const thirtyDays = 60 * 60 * 24 * 30
	cases := []struct {
		name    string
		now     int64 // clock at set time
		exptime int64
		probeAt []int64 // clock values where the item must be visible
		goneAt  []int64 // clock values where the item must be gone
	}{
		{"zero-never", 1000, 0, []int64{1000, 1 << 40}, nil},
		{"negative-at-t0", 0, -1, nil, []int64{0, 1, 1000}},
		{"negative-at-t0-large", 0, -12345678, nil, []int64{0, 1}},
		{"negative-wall-clock", 1_700_000_000, -1, nil, []int64{1_700_000_000}},
		{"relative-boundary", 1000, thirtyDays, []int64{1000, 1000 + thirtyDays - 1}, []int64{1000 + thirtyDays}},
		{"relative-small", 1000, 10, []int64{1009}, []int64{1010}},
		{"absolute-past-cutoff", 1000, thirtyDays + 1, nil, []int64{int64(thirtyDays) + 1, 1 << 40}},
		{"absolute-future", 1000, 5_000_000, []int64{4_999_999}, []int64{5_000_000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{now: tc.now}
			st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
			if err := st.Set("k", []byte("v"), 0, tc.exptime); err != nil {
				t.Fatal(err)
			}
			for _, at := range tc.probeAt {
				clk.now = at
				if _, ok := st.Get("k"); !ok {
					t.Fatalf("exptime=%d: item gone at clock %d, want visible", tc.exptime, at)
				}
			}
			for _, at := range tc.goneAt {
				clk.now = at
				if _, ok := st.Get("k"); ok {
					t.Fatalf("exptime=%d: item visible at clock %d, want gone", tc.exptime, at)
				}
			}
		})
	}
}

// TestExpiryNegativeTouch covers the same sentinel through Touch: a
// negative touch exptime kills the item even at clock t=0.
func TestExpiryNegativeTouch(t *testing.T) {
	clk := &fakeClock{now: 0}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	if err := st.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Touch("k", -1); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k"); ok {
		t.Fatal("touch -1 at clock t=0 left item visible")
	}
}
