package kvstore

import (
	"fmt"
	"testing"
	"time"
)

func TestSweepExpired(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	for i := 0; i < 100; i++ {
		ttl := int64(0)
		if i%2 == 0 {
			ttl = 10 // expires at 1010
		}
		st.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, ttl)
	}
	if r, _ := st.SweepExpired(); r != 0 {
		t.Fatalf("nothing should be expired yet, reaped %d", r)
	}
	clk.now = 1011
	reaped, visited := st.SweepExpired()
	if reaped != 50 {
		t.Fatalf("reaped %d, want 50", reaped)
	}
	if visited != 100 {
		t.Fatalf("visited %d, want 100", visited)
	}
	if st.ItemCount() != 50 {
		t.Fatalf("items = %d, want 50", st.ItemCount())
	}
	// Sweep again: nothing left to reap.
	if r, _ := st.SweepExpired(); r != 0 {
		t.Fatalf("second sweep reaped %d", r)
	}
}

func TestSweepReclaimsFlushedItems(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("a", []byte("1"), 0, 0)
	st.FlushAll(0)
	clk.now = 1002
	reaped, _ := st.SweepExpired()
	if reaped != 1 {
		t.Fatalf("flush-dead item not swept: %d", reaped)
	}
}

func TestSweepFreesMemoryForReuse(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) {
		c.Clock = clk.fn
		c.MemoryLimit = 4 << 20
		c.Mode = ModeGlobal
		c.EvictionsEnabled = false
	})
	val := make([]byte, 100_000)
	var stored int
	for i := 0; ; i++ {
		if err := st.Set(fmt.Sprintf("k%d", i), val, 0, 5); err != nil {
			break
		}
		stored++
	}
	if stored == 0 {
		t.Fatal("nothing stored")
	}
	// All items expire; sweep must make room for new writes without
	// evictions enabled.
	clk.now = 1006
	st.SweepExpired()
	if err := st.Set("fresh", val, 0, 0); err != nil {
		t.Fatalf("set after sweep: %v", err)
	}
}

func TestCrawlerLifecycle(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	for i := 0; i < 20; i++ {
		st.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 1)
	}
	clk.now = 1005
	c := st.StartCrawler(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, reaped, _ := c.Stats(); reaped >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crawler never reaped the expired items")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	sweeps, reaped, visited := c.Stats()
	if sweeps == 0 || reaped < 20 || visited == 0 {
		t.Fatalf("stats = %d/%d/%d", sweeps, reaped, visited)
	}
}

func TestCrawlerDefaultInterval(t *testing.T) {
	st := newTestStore(t, nil)
	c := st.StartCrawler(0)
	if c.interval != time.Second {
		t.Fatalf("default interval = %v", c.interval)
	}
	c.Stop()
}
