package kvstore

// EvictionPolicy selects how a shard chooses eviction victims.
type EvictionPolicy int

const (
	// PolicyLRU is memcached's classic strict LRU: every hit moves the
	// item to the head of its class list, which requires the cache lock
	// on the read path (the memcached 1.4 bottleneck).
	PolicyLRU EvictionPolicy = iota
	// PolicyBags is the Wiggins & Langston pseudo-LRU: items sit in
	// insertion-ordered bags, reads only stamp a timestamp, and eviction
	// gives recently-read items a second chance. Reads never reorder.
	PolicyBags
)

func (p EvictionPolicy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyBags:
		return "bags"
	default:
		return "unknown"
	}
}

// policy is the per-shard eviction strategy. All methods run under the
// shard lock.
type policy interface {
	onInsert(it *item, now int64)
	onAccess(it *item, now int64)
	onRemove(it *item)
	// victim returns the next eviction candidate for a class, or nil if
	// the class holds no items.
	victim(classIdx int, now int64) *item
}

// --- strict LRU -----------------------------------------------------------

// lruList is an intrusive doubly-linked list, head = MRU, tail = LRU.
type lruList struct {
	head, tail *item
	size       int
}

func (l *lruList) pushFront(it *item) {
	it.prev = nil
	it.next = l.head
	if l.head != nil {
		l.head.prev = it
	}
	l.head = it
	if l.tail == nil {
		l.tail = it
	}
	l.size++
}

func (l *lruList) remove(it *item) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		l.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		l.tail = it.prev
	}
	it.prev, it.next = nil, nil
	l.size--
}

func (l *lruList) moveToFront(it *item) {
	if l.head == it {
		return
	}
	l.remove(it)
	l.pushFront(it)
}

type lruPolicy struct {
	lists []lruList // one per slab class
}

func newLRUPolicy(classes int) *lruPolicy {
	return &lruPolicy{lists: make([]lruList, classes)}
}

func (p *lruPolicy) onInsert(it *item, now int64) { p.lists[it.classIdx].pushFront(it) }
func (p *lruPolicy) onAccess(it *item, now int64) {
	it.accessedAt = now
	p.lists[it.classIdx].moveToFront(it)
}
func (p *lruPolicy) onRemove(it *item) { p.lists[it.classIdx].remove(it) }
func (p *lruPolicy) victim(classIdx int, now int64) *item {
	return p.lists[classIdx].tail
}

// --- Bags pseudo-LRU ------------------------------------------------------

const (
	bagCapacity      = 1024 // items per bag before a new bag opens
	maxSecondChances = 8    // bounded scan per victim() call
)

// bag is a FIFO of items inserted in the same era.
type bag struct {
	head, tail *item
	size       int
	createdAt  int64
	next       *bag
}

func (b *bag) pushBack(it *item) {
	it.prev = b.tail
	it.next = nil
	if b.tail != nil {
		b.tail.next = it
	}
	b.tail = it
	if b.head == nil {
		b.head = it
	}
	it.bag = b
	b.size++
}

func (b *bag) remove(it *item) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		b.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		b.tail = it.prev
	}
	it.prev, it.next, it.bag = nil, nil, nil
	b.size--
}

// bagChain is the per-class ordered chain of bags, oldest first.
type bagChain struct {
	oldest, newest *bag
}

func (c *bagChain) appendItem(it *item, now int64) {
	if c.newest == nil || c.newest.size >= bagCapacity {
		nb := &bag{createdAt: now}
		if c.newest != nil {
			c.newest.next = nb
		} else {
			c.oldest = nb
		}
		c.newest = nb
	}
	c.newest.pushBack(it)
}

func (c *bagChain) dropEmptyOldest() {
	for c.oldest != nil && c.oldest.size == 0 && c.oldest != c.newest {
		c.oldest = c.oldest.next
	}
}

type bagsPolicy struct {
	chains []bagChain
}

func newBagsPolicy(classes int) *bagsPolicy {
	return &bagsPolicy{chains: make([]bagChain, classes)}
}

func (p *bagsPolicy) onInsert(it *item, now int64) {
	p.chains[it.classIdx].appendItem(it, now)
}

// onAccess only stamps the access time — no list surgery, which is the
// whole point of the Bags design.
func (p *bagsPolicy) onAccess(it *item, now int64) { it.accessedAt = now }

func (p *bagsPolicy) onRemove(it *item) {
	if it.bag != nil {
		b := it.bag
		b.remove(it)
		_ = b
	}
	c := &p.chains[it.classIdx]
	c.dropEmptyOldest()
}

func (p *bagsPolicy) victim(classIdx int, now int64) *item {
	c := &p.chains[classIdx]
	c.dropEmptyOldest()
	for tries := 0; tries < maxSecondChances; tries++ {
		b := c.oldest
		for b != nil && b.size == 0 {
			b = b.next
		}
		if b == nil {
			return nil
		}
		it := b.head
		if it.accessedAt > b.createdAt {
			// Second chance: accessed since this bag era began; move to
			// the newest bag so it survives this eviction pass.
			b.remove(it)
			c.appendItem(it, now)
			c.dropEmptyOldest()
			continue
		}
		return it
	}
	// Scan budget exhausted: fall back to the literal oldest item.
	b := c.oldest
	for b != nil && b.size == 0 {
		b = b.next
	}
	if b == nil {
		return nil
	}
	return b.head
}

func newPolicy(kind EvictionPolicy, classes int) policy {
	switch kind {
	case PolicyBags:
		return newBagsPolicy(classes)
	default:
		return newLRUPolicy(classes)
	}
}
