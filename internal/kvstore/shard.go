package kvstore

import (
	"errors"
	"strconv"
)

// Errors returned by storage operations; the protocol layer maps these
// onto memcached wire responses.
var (
	ErrNotFound    = errors.New("kvstore: not found")
	ErrExists      = errors.New("kvstore: exists (cas mismatch)")
	ErrNotStored   = errors.New("kvstore: not stored")
	ErrTooLarge    = errors.New("kvstore: object too large for cache")
	ErrOutOfMemory = errors.New("kvstore: out of memory storing object")
	ErrNotNumeric  = errors.New("kvstore: value is not a number")
	ErrBadKey      = errors.New("kvstore: invalid key")
)

// MaxKeyLen mirrors memcached's 250-byte key limit.
const MaxKeyLen = 250

// shardStats counts events inside one shard (unsynchronized; the shard
// lock covers them).
type shardStats struct {
	GetHits       uint64
	GetMisses     uint64
	Sets          uint64
	DeleteHits    uint64
	DeleteMiss    uint64
	CasHits       uint64
	CasMisses     uint64
	CasBadval     uint64
	IncrHits      uint64
	IncrMisses    uint64
	DecrHits      uint64
	DecrMisses    uint64
	TouchHits     uint64
	TouchMisses   uint64
	Evictions     uint64
	Expired       uint64
	SlabReassigns uint64
	TotalItems    uint64
	BytesUsed     int64
}

// shard is the single-threaded store engine. The concurrent Store wraps
// one or more shards behind locks.
type shard struct {
	table    *hashTable
	alloc    *slabAllocator
	pol      policy
	stats    shardStats //kv3d:guardedby lockedShard.mu
	casSeq   *casCounter
	flushAt  int64 // items stored strictly before this unix time are dead
	maxItem  int
	evictOn  bool
	maxProbe int // eviction attempts before giving up
	// setsSinceSteal counts stores since the last live-page steal, for
	// the reassignment cooldown. Starts saturated so the first starving
	// class may steal immediately.
	setsSinceSteal int
}

func newShard(alloc *slabAllocator, pol policy, cas *casCounter, maxItem int, evict bool) *shard {
	return &shard{
		table:          newHashTable(),
		alloc:          alloc,
		pol:            pol,
		casSeq:         cas,
		maxItem:        maxItem,
		evictOn:        evict,
		maxProbe:       64,
		setsSinceSteal: stealCooldownOps,
	}
}

// live returns the item for key if present and not expired/flushed; lazily
// reaps dead items it encounters.
func (s *shard) live(key string, now int64) *item {
	it := s.table.lookup(key)
	if it == nil {
		return nil
	}
	if it.expired(now) || s.flushed(it, now) {
		s.reap(it)
		s.stats.Expired++
		return nil
	}
	return it
}

// liveBytes is live with a byte-slice key (the lazily-reaped item's
// own key string drives the removal, so no conversion is needed).
func (s *shard) liveBytes(key []byte, now int64) *item {
	it := s.table.lookupBytes(key)
	if it == nil {
		return nil
	}
	if it.expired(now) || s.flushed(it, now) {
		s.reap(it)
		s.stats.Expired++
		return nil
	}
	return it
}

// flushed reports whether a pending flush_all epoch has fired and this
// item predates it.
func (s *shard) flushed(it *item, now int64) bool {
	return s.flushAt != 0 && now >= s.flushAt && it.storedAt < s.flushAt
}

// reap removes an expired/flushed item.
func (s *shard) reap(it *item) {
	s.table.remove(it.key)
	s.pol.onRemove(it)
	s.freeItem(it)
}

func (s *shard) freeItem(it *item) {
	s.stats.BytesUsed -= int64(itemFootprint(len(it.key), it.valueLen))
	s.alloc.release(it.classIdx, it.ref)
	it.ref, it.data = chunkRef{}, nil
}

// get returns a copy of the value plus metadata.
func (s *shard) get(key string, now int64) (value []byte, flags uint32, casID uint64, ok bool) {
	it := s.live(key, now)
	if it == nil {
		s.stats.GetMisses++
		return nil, 0, 0, false
	}
	s.stats.GetHits++
	s.pol.onAccess(it, now)
	out := make([]byte, it.valueLen)
	copy(out, it.value())
	return out, it.flags, it.casID, true
}

// getInto is a zero-copy-ish variant: appends the value to dst.
//
//kv3d:aliases dst
func (s *shard) getInto(dst []byte, key string, now int64) (value []byte, flags uint32, casID uint64, ok bool) {
	it := s.live(key, now)
	if it == nil {
		s.stats.GetMisses++
		return dst, 0, 0, false
	}
	s.stats.GetHits++
	s.pol.onAccess(it, now)
	return append(dst, it.value()...), it.flags, it.casID, true
}

// getIntoBytes is getInto with a byte-slice key, for the protocol hot
// path where the key is a token of the request line.
//
//kv3d:aliases dst
func (s *shard) getIntoBytes(dst, key []byte, now int64) (value []byte, flags uint32, casID uint64, ok bool) {
	it := s.liveBytes(key, now)
	if it == nil {
		s.stats.GetMisses++
		return dst, 0, 0, false
	}
	s.stats.GetHits++
	s.pol.onAccess(it, now)
	return append(dst, it.value()...), it.flags, it.casID, true
}

// allocChunk obtains a chunk for classIdx, evicting victims from that
// class if necessary and allowed, and falling back to stealing a slab
// page from another class when this class has nothing left to evict
// (memcached's slab reassignment, preventing calcification).
func (s *shard) allocChunk(classIdx int, now int64) chunkRef {
	if ref := s.alloc.alloc(classIdx); ref.data != nil {
		return ref
	}
	if !s.evictOn {
		return chunkRef{}
	}
	for probe := 0; probe < s.maxProbe; probe++ {
		victim := s.pol.victim(classIdx, now)
		if victim == nil {
			break
		}
		if victim.expired(now) || s.flushed(victim, now) {
			s.stats.Expired++
		} else {
			s.stats.Evictions++
		}
		s.reap(victim)
		if ref := s.alloc.alloc(classIdx); ref.data != nil {
			return ref
		}
	}
	if s.reassignPageTo(classIdx, now) {
		if ref := s.alloc.alloc(classIdx); ref.data != nil {
			return ref
		}
	}
	return chunkRef{}
}

// stealCooldownOps rate-limits live-page steals: between two steals the
// shard must have served this many stores (memcached's automove is
// similarly conservative, or reassignment thrashes pages between
// classes on mixed-size workloads).
const stealCooldownOps = 1000

// reassignPageTo re-carves a slab page from another class for the
// target class. Pages with no live chunks move for free; stealing a
// page full of live items (evicting them wholesale) sits behind a
// cooldown.
func (s *shard) reassignPageTo(target int, now int64) bool {
	page := s.alloc.freeDonor(target)
	if page == nil {
		if s.setsSinceSteal < stealCooldownOps {
			return false
		}
		page = s.alloc.liveDonor(target)
		if page == nil {
			return false
		}
		s.setsSinceSteal = 0
		var victims []*item
		s.table.forEach(func(it *item) {
			if it.ref.page == page {
				victims = append(victims, it)
			}
		})
		for _, it := range victims {
			if it.expired(now) || s.flushed(it, now) {
				s.stats.Expired++
			} else {
				s.stats.Evictions++
			}
			s.reap(it)
		}
	}
	if err := s.alloc.completeReassign(page, target); err != nil {
		return false
	}
	s.stats.SlabReassigns++
	return true
}

func validKey(key string) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c <= ' ' || c == 0x7f {
			return false
		}
	}
	return true
}

// set unconditionally stores key=value.
func (s *shard) set(key string, value []byte, flags uint32, expireAt, now int64) error {
	if !validKey(key) {
		return ErrBadKey
	}
	need := itemFootprint(len(key), len(value))
	if need > s.maxItem {
		return ErrTooLarge
	}
	classIdx, ok := s.alloc.classFor(need)
	if !ok {
		return ErrTooLarge
	}
	s.setsSinceSteal++

	old := s.table.lookup(key)

	// Fast path: overwrite in place when the existing chunk class fits.
	if old != nil && old.classIdx == classIdx {
		copy(old.ref.data, value)
		s.stats.BytesUsed += int64(len(value) - old.valueLen)
		old.valueLen = len(value)
		old.data = old.ref.data
		old.flags = flags
		old.expireAt = expireAt
		old.storedAt = now
		old.casID = s.casSeq.next()
		s.pol.onAccess(old, now)
		s.stats.Sets++
		s.stats.TotalItems++
		return nil
	}

	// Remove the old entry before allocating: the allocator may evict,
	// and the old item must not be reaped twice if it is chosen.
	if old != nil {
		s.reap(old)
	}
	ref := s.allocChunk(classIdx, now)
	if ref.data == nil {
		return ErrOutOfMemory
	}
	it := &item{
		key:      key,
		ref:      ref,
		data:     ref.data,
		valueLen: len(value),
		flags:    flags,
		casID:    s.casSeq.next(),
		expireAt: expireAt,
		storedAt: now,
		classIdx: classIdx,
	}
	copy(ref.data, value)
	s.table.insert(it)
	s.pol.onInsert(it, now)
	s.stats.BytesUsed += int64(itemFootprint(len(key), len(value)))
	s.stats.Sets++
	s.stats.TotalItems++
	return nil
}

// add stores only if the key is absent.
func (s *shard) add(key string, value []byte, flags uint32, expireAt, now int64) error {
	if s.live(key, now) != nil {
		return ErrNotStored
	}
	return s.set(key, value, flags, expireAt, now)
}

// replace stores only if the key is present.
func (s *shard) replace(key string, value []byte, flags uint32, expireAt, now int64) error {
	if s.live(key, now) == nil {
		return ErrNotStored
	}
	return s.set(key, value, flags, expireAt, now)
}

// cas stores only if the entry's CAS id still matches.
func (s *shard) cas(key string, value []byte, flags uint32, expireAt int64, casID uint64, now int64) error {
	it := s.live(key, now)
	if it == nil {
		s.stats.CasMisses++
		return ErrNotFound
	}
	if it.casID != casID {
		s.stats.CasBadval++
		return ErrExists
	}
	s.stats.CasHits++
	return s.set(key, value, flags, expireAt, now)
}

// appendValue / prependValue concatenate onto an existing value.
func (s *shard) appendValue(key string, extra []byte, now int64, front bool) error {
	it := s.live(key, now)
	if it == nil {
		return ErrNotStored
	}
	newLen := it.valueLen + len(extra)
	buf := make([]byte, 0, newLen)
	if front {
		buf = append(buf, extra...)
		buf = append(buf, it.value()...)
	} else {
		buf = append(buf, it.value()...)
		buf = append(buf, extra...)
	}
	return s.set(key, buf, it.flags, it.expireAt, now)
}

// incrDecr adjusts a decimal-uint64 value. Decrement floors at zero
// (memcached semantics); increment wraps.
func (s *shard) incrDecr(key string, delta uint64, incr bool, now int64) (uint64, error) {
	it := s.live(key, now)
	if it == nil {
		if incr {
			s.stats.IncrMisses++
		} else {
			s.stats.DecrMisses++
		}
		return 0, ErrNotFound
	}
	cur, err := strconv.ParseUint(string(it.value()), 10, 64)
	if err != nil {
		return 0, ErrNotNumeric
	}
	var next uint64
	if incr {
		next = cur + delta
		s.stats.IncrHits++
	} else {
		if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
		s.stats.DecrHits++
	}
	text := strconv.AppendUint(nil, next, 10)
	if err := s.set(key, text, it.flags, it.expireAt, now); err != nil {
		return 0, err
	}
	return next, nil
}

// delete removes a key.
func (s *shard) delete(key string, now int64) error {
	it := s.live(key, now)
	if it == nil {
		s.stats.DeleteMiss++
		return ErrNotFound
	}
	s.reap(it)
	s.stats.DeleteHits++
	return nil
}

// touch updates the expiry of an existing item.
func (s *shard) touch(key string, expireAt, now int64) error {
	it := s.live(key, now)
	if it == nil {
		s.stats.TouchMisses++
		return ErrNotFound
	}
	it.expireAt = expireAt
	s.stats.TouchHits++
	return nil
}

// flushAll invalidates everything stored before the given epoch.
func (s *shard) flushAll(epoch int64) {
	if epoch > s.flushAt {
		s.flushAt = epoch
	}
}

// itemCount reports live items (including not-yet-reaped dead ones).
func (s *shard) itemCount() int { return s.table.len() }
