package kvstore

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func newBatchStore(t *testing.T, shards int) *Store {
	t.Helper()
	cfg := DefaultConfig(32 << 20)
	cfg.Shards = shards
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGetBatchMatchesPerKeyGet(t *testing.T) {
	st := newBatchStore(t, 8)
	var keys []string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key:%03d", i)
		keys = append(keys, k)
		if i%3 != 0 { // leave every third key a miss
			if err := st.Set(k, []byte(fmt.Sprintf("val:%03d", i)), uint32(i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := st.GetBatch(keys)
	if len(got) != len(keys) {
		t.Fatalf("GetBatch returned %d entries for %d keys", len(got), len(keys))
	}
	for i, k := range keys {
		e, ok := st.Get(k)
		if got[i].Found != ok {
			t.Fatalf("key %q: batch found=%v, Get found=%v", k, got[i].Found, ok)
		}
		if !ok {
			continue
		}
		if !bytes.Equal(got[i].Value, e.Value) || got[i].Flags != e.Flags || got[i].CAS != e.CAS {
			t.Fatalf("key %q: batch (%q,%d,%d) != Get (%q,%d,%d)",
				k, got[i].Value, got[i].Flags, got[i].CAS, e.Value, e.Flags, e.CAS)
		}
	}
}

func TestGetBatchPreservesOrderAndDuplicates(t *testing.T) {
	st := newBatchStore(t, 4)
	if err := st.Set("a", []byte("va"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Set("b", []byte("vb"), 0, 0); err != nil {
		t.Fatal(err)
	}
	got := st.GetBatch([]string{"b", "missing", "a", "b", "a"})
	want := []string{"vb", "", "va", "vb", "va"}
	for i, w := range want {
		if w == "" {
			if got[i].Found {
				t.Fatalf("entry %d: expected miss, got %q", i, got[i].Value)
			}
			continue
		}
		if !got[i].Found || string(got[i].Value) != w {
			t.Fatalf("entry %d = (%q, found=%v), want %q", i, got[i].Value, got[i].Found, w)
		}
	}
}

func TestGetBatchEmpty(t *testing.T) {
	st := newBatchStore(t, 4)
	if got := st.GetBatch(nil); len(got) != 0 {
		t.Fatalf("GetBatch(nil) = %d entries", len(got))
	}
	var scr BatchScratch
	dst, out := st.GetBatchInto(nil, nil, nil, &scr)
	if len(dst) != 0 || len(out) != 0 {
		t.Fatalf("GetBatchInto(empty) = %d bytes, %d results", len(dst), len(out))
	}
}

func TestGetBatchIntoMatchesGetBatch(t *testing.T) {
	st := newBatchStore(t, 8)
	var keys []string
	var bkeys [][]byte
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key:%03d", i)
		keys = append(keys, k)
		bkeys = append(bkeys, []byte(k))
		if i%4 != 1 {
			if err := st.Set(k, bytes.Repeat([]byte{byte('a' + i%26)}, 8+i), uint32(i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := st.GetBatch(keys)
	var scr BatchScratch
	dst, out := st.GetBatchInto(nil, bkeys, nil, &scr)
	if len(out) != len(want) {
		t.Fatalf("GetBatchInto returned %d results, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i].Found != want[i].Found || out[i].Flags != want[i].Flags || out[i].CAS != want[i].CAS {
			t.Fatalf("result %d metadata mismatch: %+v vs %+v", i, out[i], want[i])
		}
		if got := dst[out[i].Start:out[i].End]; !bytes.Equal(got, want[i].Value) {
			t.Fatalf("result %d value %q, want %q", i, got, want[i].Value)
		}
	}
}

// TestGetBatchLockCount pins the tentpole contract: one batch acquires
// each involved shard's lock at most once, so the acquisition count is
// bounded by Shards no matter how many keys the batch carries.
func TestGetBatchLockCount(t *testing.T) {
	st := newBatchStore(t, 8)
	shards := st.Config().Shards
	var keys []string
	var bkeys [][]byte
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key:%03d", i)
		keys = append(keys, k)
		bkeys = append(bkeys, []byte(k))
		if err := st.Set(k, []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	before := st.ReadLockCount()
	st.GetBatch(keys)
	if locks := st.ReadLockCount() - before; locks > uint64(shards) {
		t.Fatalf("GetBatch(64 keys) took %d shard locks, want <= %d", locks, shards)
	}

	var scr BatchScratch
	before = st.ReadLockCount()
	st.GetBatchInto(nil, bkeys, nil, &scr)
	if locks := st.ReadLockCount() - before; locks > uint64(shards) {
		t.Fatalf("GetBatchInto(64 keys) took %d shard locks, want <= %d", locks, shards)
	}

	// The per-key path really does cost one lock per key — the gap the
	// batch closes.
	before = st.ReadLockCount()
	for _, k := range keys {
		st.Get(k)
	}
	if locks := st.ReadLockCount() - before; locks != uint64(len(keys)) {
		t.Fatalf("per-key Gets took %d locks, want %d", locks, len(keys))
	}
}

// TestGetBatchConcurrentWriters runs batched readers against writers
// under -race: every returned value must be self-consistent (a value
// that was written for that exact key — never bytes from another key's
// chunk) and result order must track request order.
func TestGetBatchConcurrentWriters(t *testing.T) {
	st := newBatchStore(t, 8)
	const nKeys = 32
	keys := make([]string, nKeys)
	bkeys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key:%03d", i)
		bkeys[i] = []byte(keys[i])
		if err := st.Set(keys[i], []byte(keys[i]+":0"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gen := 1; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < nKeys; i += 4 {
					val := fmt.Sprintf("%s:%d", keys[i], gen)
					if err := st.Set(keys[i], []byte(val), 0, 0); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	check := func(i int, val []byte, found bool) {
		if !found {
			t.Errorf("key %q vanished", keys[i])
			return
		}
		if !strings.HasPrefix(string(val), keys[i]+":") {
			t.Errorf("key %q returned foreign value %q", keys[i], val)
		}
	}
	var scr BatchScratch
	var dst []byte
	var out []BatchResult
	for r := 0; r < 400; r++ {
		for i, e := range st.GetBatch(keys) {
			check(i, e.Value, e.Found)
		}
		dst, out = st.GetBatchInto(dst[:0], bkeys, out[:0], &scr)
		for i, e := range out {
			check(i, dst[e.Start:e.End], e.Found)
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkGetBatch64(b *testing.B) {
	cfg := DefaultConfig(64 << 20)
	cfg.Shards = 8
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	bkeys := make([][]byte, 64)
	for i := range bkeys {
		k := fmt.Sprintf("key:%05d", i)
		bkeys[i] = []byte(k)
		if err := st.Set(k, bytes.Repeat([]byte("x"), 64), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	var scr BatchScratch
	var dst []byte
	var out []BatchResult
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, out = st.GetBatchInto(dst[:0], bkeys, out[:0], &scr)
	}
	_ = out
}

func BenchmarkGetPerKey64(b *testing.B) {
	cfg := DefaultConfig(64 << 20)
	cfg.Shards = 8
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	bkeys := make([][]byte, 64)
	for i := range bkeys {
		k := fmt.Sprintf("key:%05d", i)
		bkeys[i] = []byte(k)
		if err := st.Set(k, bytes.Repeat([]byte("x"), 64), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	var dst []byte
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, k := range bkeys {
			dst, _, _ = st.GetIntoBytes(dst, k)
		}
	}
}
