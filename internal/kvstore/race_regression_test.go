package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Race-regression coverage for the store's shared state: the CAS id
// counter, the per-shard stats blocks, and the crawler's counters. These
// tests are written to be meaningful under the race detector (CI runs
// `go test -race ./...`): every suspect structure is hit from multiple
// goroutines while readers aggregate it, so any regression from atomic
// or mutex-guarded counters to plain fields fails immediately. The final
// assertions additionally pin exact counts, so torn or lost updates fail
// even without -race.

// TestConcurrentCASStressExactCounts hammers CAS on a small shared key
// set from many goroutines and checks that every CAS outcome was
// accounted exactly once across the shard stats.
func TestConcurrentCASStressExactCounts(t *testing.T) {
	st, err := New(DefaultConfig(8 << 20))
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4
	for i := 0; i < keys; i++ {
		if err := st.Set(fmt.Sprintf("cas-%d", i), []byte("0"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	const attempts = 400
	var wins, losses atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				key := fmt.Sprintf("cas-%d", i%keys)
				e, ok := st.Get(key)
				if !ok {
					t.Errorf("key %s vanished", key)
					return
				}
				err := st.CAS(key, []byte(fmt.Sprintf("g%d-%d", g, i)), 0, 0, e.CAS)
				switch err {
				case nil:
					wins.Add(1)
				case ErrExists:
					losses.Add(1)
				default:
					t.Errorf("cas: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := st.Stats()
	if s.CasHits != wins.Load() {
		t.Fatalf("CasHits = %d, want %d", s.CasHits, wins.Load())
	}
	if s.CasBadval != losses.Load() {
		t.Fatalf("CasBadval = %d, want %d", s.CasBadval, losses.Load())
	}
	if wins.Load()+losses.Load() != goroutines*attempts {
		t.Fatalf("accounted %d attempts, want %d", wins.Load()+losses.Load(), goroutines*attempts)
	}
	// Every winning CAS consumed a unique id from the shared counter, so
	// the latest CAS id must be at least sets + wins.
	for i := 0; i < keys; i++ {
		e, _ := st.Get(fmt.Sprintf("cas-%d", i))
		if e.CAS < uint64(keys) {
			t.Fatalf("implausible CAS id %d", e.CAS)
		}
	}
}

// TestStatsReadersDuringChurn aggregates Stats/SlabStats/ItemCount from
// reader goroutines while writers churn sets, deletes and incrs — the
// access pattern a live "stats" verb sees under load.
func TestStatsReadersDuringChurn(t *testing.T) {
	cfg := DefaultConfig(8 << 20)
	cfg.Shards = 4
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Set("counter", []byte("0"), 0, 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Stats()
				if s.HitRate() < 0 || s.HitRate() > 1 {
					t.Errorf("hit rate out of range: %v", s.HitRate())
					return
				}
				_ = st.SlabStats()
				_ = st.ItemCount()
			}
		}()
	}

	const goroutines = 6
	const ops = 300
	var incrs atomic.Uint64
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("churn-%d-%d", g, i%32)
				switch i % 4 {
				case 0, 1:
					if err := st.Set(key, []byte("value"), 0, 0); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				case 2:
					_ = st.Delete(key)
				case 3:
					if _, err := st.Incr("counter", 1); err == nil {
						incrs.Add(1)
					}
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	v, err := st.Incr("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != incrs.Load() {
		t.Fatalf("counter = %d, want %d (lost increments)", v, incrs.Load())
	}
	if s := st.Stats(); s.IncrHits != incrs.Load()+1 { // +1 for the read-back Incr(0)
		t.Fatalf("IncrHits = %d, want %d", s.IncrHits, incrs.Load()+1)
	}
}

// TestCrawlerConcurrentWithWrites runs the background reaper on a short
// ticker while writers keep inserting expiring items, then checks the
// crawler's own counters are consistent.
func TestCrawlerConcurrentWithWrites(t *testing.T) {
	base := time.Now().Unix()
	var offset atomic.Int64
	cfg := DefaultConfig(8 << 20)
	cfg.Clock = func() int64 { return base + offset.Load() }
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cr := st.StartCrawler(time.Millisecond)
	defer cr.Stop()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("ttl-%d-%d", g, i)
				if err := st.Set(key, []byte("v"), 0, 1); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				if i%50 == 0 {
					offset.Add(2) // push existing items past their TTL
				}
				_, _ = st.Get(key)
			}
		}(g)
	}
	wg.Wait()
	offset.Add(2)
	// Let the ticker observe the advanced clock at least once.
	deadline := time.After(2 * time.Second)
	for {
		if _, reaped, _ := crawlerStats(cr); reaped > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("crawler never reaped an expired item")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cr.Stop()
	sweeps, reaped, visited := crawlerStats(cr)
	if sweeps == 0 || visited == 0 {
		t.Fatalf("sweeps=%d visited=%d", sweeps, visited)
	}
	if reaped > 4*200 {
		t.Fatalf("reaped %d items, more than were ever stored", reaped)
	}
}

func crawlerStats(c *Crawler) (sweeps, reaped, visited uint64) {
	return c.Stats()
}
