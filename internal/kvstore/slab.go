// Package kvstore implements a memcached-compatible in-memory key-value
// store: a slab allocator with page reassignment, a hash table with
// incremental rehashing, strict-LRU and Bags pseudo-LRU eviction, TTLs,
// CAS, and the usual verb set. It is both the functional substrate for
// the kv3d examples and TCP server, and the reference the timing models'
// cost parameters were derived from.
//
// Concurrency follows the designs the paper benchmarks against
// (Wiggins & Langston): ModeGlobal serializes everything behind one lock
// (memcached 1.4), ModeStriped shards the keyspace (memcached 1.6
// fine-grained locking), and the Bags eviction policy removes LRU
// reordering from the read path.
package kvstore

import (
	"fmt"
	"sort"
)

// Slab allocator defaults mirroring memcached's.
const (
	DefaultBaseChunkSize = 96
	DefaultGrowthFactor  = 1.25
	DefaultSlabPageSize  = 1 << 20 // 1 MiB
	DefaultMaxItemSize   = 1 << 20
)

// slabPage is one contiguous allocation carved into equal chunks. Pages
// can be reassigned between classes once their live chunks are evicted
// (memcached's slab_reassign, the cure for slab calcification).
type slabPage struct {
	buf   []byte
	class int // owning class index
	live  int // chunks currently handed out
}

// chunkRef is a chunk plus its backing page, so release and page
// reassignment know where a chunk came from.
type chunkRef struct {
	data []byte
	page *slabPage
}

// slabClass manages chunks of a single size.
type slabClass struct {
	chunkSize int
	free      []chunkRef
	pages     []*slabPage
	allocated int // chunks handed out
}

// slabAllocator carves fixed-size pages into per-class chunks. It tracks
// total page bytes against a memory limit; when the limit is reached,
// alloc returns a zero chunkRef and the caller must evict or reassign.
type slabAllocator struct {
	classes   []slabClass
	pageSize  int
	memLimit  int64
	pageBytes int64
	reassigns uint64
}

// newSlabAllocator builds the size-class ladder: chunk sizes start at
// base and grow by factor, aligned to 8 bytes, capped at pageSize.
func newSlabAllocator(base int, factor float64, pageSize int, memLimit int64) (*slabAllocator, error) {
	if base <= 0 || pageSize <= 0 || memLimit <= 0 {
		return nil, fmt.Errorf("kvstore: non-positive slab parameter (base=%d page=%d limit=%d)", base, pageSize, memLimit)
	}
	if factor <= 1.0 {
		return nil, fmt.Errorf("kvstore: growth factor %v must exceed 1.0", factor)
	}
	if int64(pageSize) > memLimit {
		return nil, fmt.Errorf("kvstore: page size %d exceeds memory limit %d", pageSize, memLimit)
	}
	a := &slabAllocator{pageSize: pageSize, memLimit: memLimit}
	size := base
	for size < pageSize {
		a.classes = append(a.classes, slabClass{chunkSize: align8(size)})
		next := int(float64(size) * factor)
		if next <= size {
			next = size + 8
		}
		size = next
	}
	a.classes = append(a.classes, slabClass{chunkSize: pageSize})
	return a, nil
}

func align8(n int) int { return (n + 7) &^ 7 }

// classFor returns the index of the smallest class whose chunks fit size.
func (a *slabAllocator) classFor(size int) (int, bool) {
	if size <= 0 {
		size = 1
	}
	i := sort.Search(len(a.classes), func(i int) bool {
		return a.classes[i].chunkSize >= size
	})
	if i == len(a.classes) {
		return 0, false
	}
	return i, true
}

// chunkSize reports the chunk size of class i.
func (a *slabAllocator) chunkSize(i int) int { return a.classes[i].chunkSize }

// numClasses reports how many size classes exist.
func (a *slabAllocator) numClasses() int { return len(a.classes) }

// carve splits a page into chunks for class i and free-lists them.
func (a *slabAllocator) carve(page *slabPage, i int) {
	c := &a.classes[i]
	page.class = i
	page.live = 0
	n := a.pageSize / c.chunkSize
	for k := 0; k < n; k++ {
		c.free = append(c.free, chunkRef{
			data: page.buf[k*c.chunkSize : (k+1)*c.chunkSize],
			page: page,
		})
	}
}

// alloc returns a chunk for class i, growing the class by one page if
// the memory limit allows. A zero ref (nil data) means the caller must
// evict or reassign.
func (a *slabAllocator) alloc(i int) chunkRef {
	c := &a.classes[i]
	if n := len(c.free); n > 0 {
		ref := c.free[n-1]
		c.free[n-1] = chunkRef{}
		c.free = c.free[:n-1]
		c.allocated++
		ref.page.live++
		return ref
	}
	if a.pageBytes+int64(a.pageSize) > a.memLimit {
		return chunkRef{}
	}
	page := &slabPage{buf: make([]byte, a.pageSize)}
	a.pageBytes += int64(a.pageSize)
	c.pages = append(c.pages, page)
	a.carve(page, i)
	return a.alloc(i)
}

// release returns a chunk to class i's free list.
func (a *slabAllocator) release(i int, ref chunkRef) {
	c := &a.classes[i]
	c.allocated--
	ref.page.live--
	ref.data = ref.data[:c.chunkSize]
	c.free = append(c.free, ref)
}

// canGrow reports whether a new page would fit under the memory limit.
func (a *slabAllocator) canGrow() bool {
	return a.pageBytes+int64(a.pageSize) <= a.memLimit
}

// PageBytes reports total bytes of slab pages allocated.
func (a *slabAllocator) PageBytes() int64 { return a.pageBytes }

// Reassigns reports how many pages have moved between classes.
func (a *slabAllocator) Reassigns() uint64 { return a.reassigns }

// freeDonor finds a page with no live chunks in any other class — the
// cheap reassignment that needs no evictions.
func (a *slabAllocator) freeDonor(target int) *slabPage {
	for i := range a.classes {
		if i == target {
			continue
		}
		for _, p := range a.classes[i].pages {
			if p.live == 0 {
				return p
			}
		}
	}
	return nil
}

// liveDonor picks the page to sacrifice for a starving class: from the
// class with the most pages (excluding the target), the page with the
// fewest live chunks. Returns nil when no class can donate. Callers
// must rate-limit this path — it evicts live items wholesale.
func (a *slabAllocator) liveDonor(target int) *slabPage {
	donorClass := -1
	for i := range a.classes {
		if i == target || len(a.classes[i].pages) == 0 {
			continue
		}
		if donorClass < 0 || len(a.classes[i].pages) > len(a.classes[donorClass].pages) {
			donorClass = i
		}
	}
	if donorClass < 0 {
		return nil
	}
	var page *slabPage
	for _, p := range a.classes[donorClass].pages {
		if page == nil || p.live < page.live {
			page = p
		}
	}
	return page
}

// completeReassign moves a page (whose live count the caller has driven
// to zero by evicting its items) from its class to the target class.
func (a *slabAllocator) completeReassign(page *slabPage, target int) error {
	if page.live != 0 {
		return fmt.Errorf("kvstore: reassigning page with %d live chunks", page.live)
	}
	from := &a.classes[page.class]
	// Unlink the page from its old class.
	for i, p := range from.pages {
		if p == page {
			from.pages = append(from.pages[:i], from.pages[i+1:]...)
			break
		}
	}
	// Drop its free chunks from the old class's free list.
	kept := from.free[:0]
	for _, ref := range from.free {
		if ref.page != page {
			kept = append(kept, ref)
		}
	}
	for i := len(kept); i < len(from.free); i++ {
		from.free[i] = chunkRef{}
	}
	from.free = kept
	// Re-carve for the target class.
	to := &a.classes[target]
	to.pages = append(to.pages, page)
	a.carve(page, target)
	a.reassigns++
	return nil
}
