package kvstore

import (
	"sync"
	"time"
)

// Crawler is the background expiry reaper (memcached's lru_crawler):
// expired items normally die lazily on access, so a cache with cold
// expired keys holds memory hostage. The crawler sweeps shards on an
// interval and reaps anything past its TTL or flush epoch.
type Crawler struct {
	store    *Store
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once

	mu      sync.Mutex
	sweeps  uint64
	reaped  uint64
	visited uint64
}

// StartCrawler begins background sweeps at the given interval; it
// returns the running crawler. Stop it before discarding the store.
func (st *Store) StartCrawler(interval time.Duration) *Crawler {
	if interval <= 0 {
		interval = time.Second
	}
	c := &Crawler{
		store:    st,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *Crawler) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.interval) //nolint:kv3d -- the crawler is a live-server background reaper; sims never start it and call SweepExpired explicitly
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			reaped, visited := c.store.SweepExpired()
			c.mu.Lock()
			c.sweeps++
			c.reaped += reaped
			c.visited += visited
			c.mu.Unlock()
		}
	}
}

// Stop halts the crawler and waits for the current sweep to finish.
func (c *Crawler) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

// Stats reports the crawler's lifetime counters.
func (c *Crawler) Stats() (sweeps, reaped, visited uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweeps, c.reaped, c.visited
}

// SweepExpired synchronously reaps every expired or flushed item,
// returning how many were reaped and how many were visited. Exposed for
// tests and for callers that prefer explicit scheduling.
func (st *Store) SweepExpired() (reaped, visited uint64) {
	now := st.clock()
	for _, sh := range st.shards {
		sh.mu.Lock()
		r, v := sh.s.sweepExpired(now)
		sh.mu.Unlock()
		reaped += r
		visited += v
	}
	return reaped, visited
}

// sweepExpired is the per-shard sweep, run under the shard lock.
func (s *shard) sweepExpired(now int64) (reaped, visited uint64) {
	var dead []*item
	s.table.forEach(func(it *item) {
		visited++
		if it.expired(now) || s.flushed(it, now) {
			dead = append(dead, it)
		}
	})
	for _, it := range dead {
		s.reap(it)
		s.stats.Expired++
		reaped++
	}
	return reaped, visited
}
