package kvstore

// hashTable is a chained hash table with memcached-style incremental
// rehashing: when the load factor crosses the threshold the table
// doubles, and buckets migrate a few at a time on subsequent operations
// instead of in one stop-the-world pass.
type hashTable struct {
	buckets []*item
	old     []*item // non-nil while a rehash is in progress
	migrate int     // next old bucket index to migrate
	count   int
}

const (
	initialBuckets    = 16
	loadFactorNum     = 3 // grow when count > buckets * 3/2
	loadFactorDen     = 2
	migrationPerOp    = 2 // old buckets moved per mutating operation
	minShrinkBuckets  = initialBuckets
	shrinkFactorWhenQ = 8 // shrink when count < buckets/8 (not while rehashing)
)

func newHashTable() *hashTable {
	return &hashTable{buckets: make([]*item, initialBuckets)}
}

// fnv1a64 is the FNV-1a hash used to place keys.
func fnv1a64(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// fnv1a64Bytes is fnv1a64 over a raw key, for lookups that must not
// materialize a string.
func fnv1a64Bytes(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func (t *hashTable) bucketFor(tbl []*item, key string) int {
	return int(fnv1a64(key) & uint64(len(tbl)-1))
}

func (t *hashTable) bucketForBytes(tbl []*item, key []byte) int {
	return int(fnv1a64Bytes(key) & uint64(len(tbl)-1))
}

// lookupBytes is lookup with a byte-slice key: the string conversions
// appear only in == comparisons, which do not allocate.
func (t *hashTable) lookupBytes(key []byte) *item {
	if t.old != nil {
		i := t.bucketForBytes(t.old, key)
		if i >= t.migrate { // bucket not yet migrated
			for it := t.old[i]; it != nil; it = it.hnext {
				if it.key == string(key) {
					return it
				}
			}
			return nil
		}
	}
	i := t.bucketForBytes(t.buckets, key)
	for it := t.buckets[i]; it != nil; it = it.hnext {
		if it.key == string(key) {
			return it
		}
	}
	return nil
}

// lookup finds the item for key, following an in-progress rehash.
func (t *hashTable) lookup(key string) *item {
	if t.old != nil {
		i := t.bucketFor(t.old, key)
		if i >= t.migrate { // bucket not yet migrated
			for it := t.old[i]; it != nil; it = it.hnext {
				if it.key == key {
					return it
				}
			}
			return nil
		}
	}
	i := t.bucketFor(t.buckets, key)
	for it := t.buckets[i]; it != nil; it = it.hnext {
		if it.key == key {
			return it
		}
	}
	return nil
}

// insert adds an item that is known not to be present.
func (t *hashTable) insert(it *item) {
	t.stepMigration()
	tbl := t.buckets
	if t.old != nil {
		if i := t.bucketFor(t.old, it.key); i >= t.migrate {
			tbl = t.old
			it.hnext = tbl[i]
			tbl[i] = it
			t.count++
			return
		}
	}
	i := t.bucketFor(tbl, it.key)
	it.hnext = tbl[i]
	tbl[i] = it
	t.count++
	t.maybeGrow()
}

// remove unlinks the item for key and returns it, or nil.
func (t *hashTable) remove(key string) *item {
	t.stepMigration()
	if t.old != nil {
		if i := t.bucketFor(t.old, key); i >= t.migrate {
			if it := removeFromChain(&t.old[i], key); it != nil {
				t.count--
				return it
			}
			return nil
		}
	}
	i := t.bucketFor(t.buckets, key)
	if it := removeFromChain(&t.buckets[i], key); it != nil {
		t.count--
		return it
	}
	return nil
}

func removeFromChain(head **item, key string) *item {
	for p := head; *p != nil; p = &(*p).hnext {
		if (*p).key == key {
			it := *p
			*p = it.hnext
			it.hnext = nil
			return it
		}
	}
	return nil
}

// maybeGrow starts an incremental rehash when the load factor is high.
func (t *hashTable) maybeGrow() {
	if t.old != nil {
		return // one rehash at a time
	}
	if t.count*loadFactorDen <= len(t.buckets)*loadFactorNum {
		return
	}
	t.old = t.buckets
	t.buckets = make([]*item, len(t.old)*2)
	t.migrate = 0
}

// stepMigration moves a few buckets from the old table into the new one.
func (t *hashTable) stepMigration() {
	if t.old == nil {
		return
	}
	for n := 0; n < migrationPerOp && t.migrate < len(t.old); n++ {
		for it := t.old[t.migrate]; it != nil; {
			next := it.hnext
			i := t.bucketFor(t.buckets, it.key)
			it.hnext = t.buckets[i]
			t.buckets[i] = it
			it = next
		}
		t.old[t.migrate] = nil
		t.migrate++
	}
	if t.migrate >= len(t.old) {
		t.old = nil
		t.migrate = 0
	}
}

// finishMigration completes any in-progress rehash (used by iteration).
func (t *hashTable) finishMigration() {
	for t.old != nil {
		t.stepMigration()
	}
}

// forEach visits every item. Mutation during iteration is not allowed.
func (t *hashTable) forEach(fn func(*item)) {
	t.finishMigration()
	for _, head := range t.buckets {
		for it := head; it != nil; it = it.hnext {
			fn(it)
		}
	}
}

// len reports the number of stored items.
func (t *hashTable) len() int { return t.count }
