package kvstore

import (
	"fmt"
	"testing"
)

func newTestItem(key string, class int) *item {
	return &item{key: key, classIdx: class}
}

func TestLRUVictimIsLeastRecentlyUsed(t *testing.T) {
	p := newLRUPolicy(4)
	a, b, c := newTestItem("a", 0), newTestItem("b", 0), newTestItem("c", 0)
	p.onInsert(a, 1)
	p.onInsert(b, 2)
	p.onInsert(c, 3)
	if v := p.victim(0, 4); v != a {
		t.Fatalf("victim = %v, want a", v.key)
	}
	p.onAccess(a, 5) // a becomes MRU
	if v := p.victim(0, 6); v != b {
		t.Fatalf("after access, victim = %v, want b", v.key)
	}
}

func TestLRUVictimPerClass(t *testing.T) {
	p := newLRUPolicy(2)
	a := newTestItem("a", 0)
	b := newTestItem("b", 1)
	p.onInsert(a, 1)
	p.onInsert(b, 1)
	if v := p.victim(0, 2); v != a {
		t.Fatal("class 0 victim should be a")
	}
	if v := p.victim(1, 2); v != b {
		t.Fatal("class 1 victim should be b")
	}
}

func TestLRURemove(t *testing.T) {
	p := newLRUPolicy(1)
	a, b := newTestItem("a", 0), newTestItem("b", 0)
	p.onInsert(a, 1)
	p.onInsert(b, 2)
	p.onRemove(a)
	if v := p.victim(0, 3); v != b {
		t.Fatal("after removing a, victim should be b")
	}
	p.onRemove(b)
	if v := p.victim(0, 4); v != nil {
		t.Fatal("empty class should have no victim")
	}
}

func TestLRUListInvariants(t *testing.T) {
	var l lruList
	items := make([]*item, 10)
	for i := range items {
		items[i] = newTestItem(fmt.Sprintf("i%d", i), 0)
		l.pushFront(items[i])
	}
	if l.size != 10 {
		t.Fatalf("size = %d", l.size)
	}
	// Walk head->tail and tail->head; both must see 10 items.
	n := 0
	for it := l.head; it != nil; it = it.next {
		n++
	}
	if n != 10 {
		t.Fatalf("forward walk saw %d", n)
	}
	n = 0
	for it := l.tail; it != nil; it = it.prev {
		n++
	}
	if n != 10 {
		t.Fatalf("backward walk saw %d", n)
	}
	// moveToFront of the tail.
	l.moveToFront(items[0])
	if l.head != items[0] {
		t.Fatal("moveToFront failed")
	}
	if l.size != 10 {
		t.Fatalf("size changed to %d", l.size)
	}
	// Remove the middle.
	l.remove(items[5])
	if l.size != 9 {
		t.Fatalf("size = %d after remove", l.size)
	}
	for it := l.head; it != nil; it = it.next {
		if it == items[5] {
			t.Fatal("removed item still linked")
		}
	}
}

func TestBagsVictimFIFOWhenUntouched(t *testing.T) {
	p := newBagsPolicy(1)
	a, b, c := newTestItem("a", 0), newTestItem("b", 0), newTestItem("c", 0)
	p.onInsert(a, 100)
	p.onInsert(b, 101)
	p.onInsert(c, 102)
	if v := p.victim(0, 200); v != a {
		t.Fatalf("victim = %q, want a", v.key)
	}
}

func TestBagsSecondChance(t *testing.T) {
	p := newBagsPolicy(1)
	a, b := newTestItem("a", 0), newTestItem("b", 0)
	p.onInsert(a, 100)
	p.onInsert(b, 100)
	// Access a after its bag era began: it deserves a second chance.
	p.onAccess(a, 150)
	v := p.victim(0, 200)
	if v != b {
		t.Fatalf("victim = %q, want b (a was recently read)", v.key)
	}
}

func TestBagsAccessDoesNotReorder(t *testing.T) {
	// Unlike LRU, a read of an old item must not move list pointers —
	// only the timestamp changes. We verify by checking it stays in the
	// same bag.
	p := newBagsPolicy(1)
	a := newTestItem("a", 0)
	p.onInsert(a, 100)
	bagBefore := a.bag
	p.onAccess(a, 150)
	if a.bag != bagBefore {
		t.Fatal("bags access must not rebag the item")
	}
}

func TestBagsNewBagAfterCapacity(t *testing.T) {
	p := newBagsPolicy(1)
	items := make([]*item, bagCapacity+1)
	for i := range items {
		items[i] = newTestItem(fmt.Sprintf("i%d", i), 0)
		p.onInsert(items[i], int64(100+i))
	}
	if items[0].bag == items[bagCapacity].bag {
		t.Fatal("overflow item should land in a fresh bag")
	}
}

func TestBagsEmptyClass(t *testing.T) {
	p := newBagsPolicy(2)
	if p.victim(0, 100) != nil {
		t.Fatal("empty class must yield no victim")
	}
	a := newTestItem("a", 0)
	p.onInsert(a, 100)
	p.onRemove(a)
	if p.victim(0, 200) != nil {
		t.Fatal("class must be empty again after removal")
	}
}

func TestBagsBoundedSecondChanceScan(t *testing.T) {
	// If everything was recently accessed the scan budget must still
	// terminate and return some victim.
	p := newBagsPolicy(1)
	var items []*item
	for i := 0; i < 100; i++ {
		it := newTestItem(fmt.Sprintf("i%d", i), 0)
		p.onInsert(it, 100)
		items = append(items, it)
	}
	for _, it := range items {
		p.onAccess(it, 500)
	}
	// All items hot: victim must still return non-nil.
	if v := p.victim(0, 1000); v == nil {
		t.Fatal("victim must not return nil for a populated class")
	}
}

func TestPolicyFactory(t *testing.T) {
	if _, ok := newPolicy(PolicyLRU, 3).(*lruPolicy); !ok {
		t.Fatal("PolicyLRU should build lruPolicy")
	}
	if _, ok := newPolicy(PolicyBags, 3).(*bagsPolicy); !ok {
		t.Fatal("PolicyBags should build bagsPolicy")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyLRU.String() != "lru" || PolicyBags.String() != "bags" {
		t.Fatal("policy names wrong")
	}
	if EvictionPolicy(99).String() != "unknown" {
		t.Fatal("unknown policy name wrong")
	}
}
