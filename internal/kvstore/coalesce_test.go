package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSetBatchBasic(t *testing.T) {
	st := newTestStore(t, nil)
	ops := []SetOp{
		{Key: "a", Value: []byte("1"), Flags: 7},
		{Key: "b", Value: []byte("2")},
		{Key: "a", Value: []byte("3")}, // duplicate: last write wins
	}
	var scr BatchScratch
	errs := st.SetBatch(ops, nil, &scr)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	e, ok := st.Get("a")
	if !ok || string(e.Value) != "3" {
		t.Fatalf("a = %q, %v; want duplicate-key last write \"3\"", e.Value, ok)
	}
	if e, ok := st.Get("b"); !ok || string(e.Value) != "2" || e.Flags != 0 {
		t.Fatalf("b = %q flags=%d, %v", e.Value, e.Flags, ok)
	}
}

func TestSetBatchErrorsAndExpiry(t *testing.T) {
	clk := &fakeClock{now: 0}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	ops := []SetOp{
		{Key: "ok", Value: []byte("v"), Exptime: 10},
		{Key: "bad key", Value: []byte("v")},
		{Key: strings.Repeat("x", MaxKeyLen+1), Value: []byte("v")},
		{Key: "dead", Value: []byte("v"), Exptime: -1}, // store succeeds, item born expired
	}
	var scr BatchScratch
	errs := st.SetBatch(ops, nil, &scr)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid ops errored: %v %v", errs[0], errs[3])
	}
	if !errors.Is(errs[1], ErrBadKey) || !errors.Is(errs[2], ErrBadKey) {
		t.Fatalf("bad keys = %v, %v; want ErrBadKey", errs[1], errs[2])
	}
	if _, ok := st.Get("ok"); !ok {
		t.Fatal("ok missing")
	}
	if _, ok := st.Get("dead"); ok {
		t.Fatal("negative exptime through SetBatch left item visible at t=0")
	}
	clk.now = 10
	if _, ok := st.Get("ok"); ok {
		t.Fatal("relative exptime through SetBatch not honored")
	}
}

// TestSetBatchMatchesSequential cross-checks a batch against a replayed
// sequence of Store.Set calls on a twin store.
func TestSetBatchMatchesSequential(t *testing.T) {
	batched := newTestStore(t, nil)
	seq := newTestStore(t, nil)
	var ops []SetOp
	for i := 0; i < 257; i++ {
		ops = append(ops, SetOp{
			Key:   fmt.Sprintf("key-%d", i%97), // force duplicates
			Value: []byte(fmt.Sprintf("val-%d", i)),
			Flags: uint32(i),
		})
	}
	var scr BatchScratch
	errs := batched.SetBatch(ops, nil, &scr)
	for i, op := range ops {
		serr := seq.Set(op.Key, op.Value, op.Flags, op.Exptime)
		if (serr == nil) != (errs[i] == nil) {
			t.Fatalf("op %d: batch err %v, sequential err %v", i, errs[i], serr)
		}
	}
	for i := 0; i < 97; i++ {
		key := fmt.Sprintf("key-%d", i)
		be, bok := batched.Get(key)
		se, sok := seq.Get(key)
		if bok != sok || string(be.Value) != string(se.Value) || be.Flags != se.Flags {
			t.Fatalf("%s diverged: batch (%q,%d,%v) vs sequential (%q,%d,%v)",
				key, be.Value, be.Flags, bok, se.Value, se.Flags, sok)
		}
	}
}

func TestCoalescerGets(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("a", []byte("alpha"), 3, 0)
	st.Set("b", []byte("beta"), 0, 0)
	c := NewCoalescer(st, CoalescerOptions{})
	var job GetJob
	keys := [][]byte{[]byte("a"), []byte("missing"), []byte("b")}
	c.Gets(&job, keys)
	v, r := job.Result(0)
	if !r.Found || string(v) != "alpha" || r.Flags != 3 {
		t.Fatalf("a = %q found=%v flags=%d", v, r.Found, r.Flags)
	}
	if _, r := job.Result(1); r.Found {
		t.Fatal("missing key reported found")
	}
	if v, r := job.Result(2); !r.Found || string(v) != "beta" {
		t.Fatalf("b = %q found=%v", v, r.Found)
	}
	job.Release()
	if got := c.Ops(); got != 3 {
		t.Fatalf("Ops = %d, want 3", got)
	}
	// Zero-key submit is a no-op and Release stays safe.
	c.Gets(&job, nil)
	job.Release()
}

func TestCoalescerSets(t *testing.T) {
	st := newTestStore(t, nil)
	c := NewCoalescer(st, CoalescerOptions{})
	var job SetJob
	c.Sets(&job, []SetOp{
		{Key: "x", Value: []byte("1")},
		{Key: "bad key", Value: []byte("2")},
	})
	if err := job.Err(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(job.Err(1), ErrBadKey) {
		t.Fatalf("err(1) = %v", job.Err(1))
	}
	if e, ok := st.Get("x"); !ok || string(e.Value) != "1" {
		t.Fatalf("x = %q, %v", e.Value, ok)
	}
}

// TestCoalescerMergesConcurrentJobs drives many goroutines through one
// coalescer and asserts (a) every job sees exactly its own results and
// (b) at least some ops actually shared a round across submitters —
// the cross-connection coalescing the event-driven core exists for.
func TestCoalescerMergesConcurrentJobs(t *testing.T) {
	// Each round reads the store clock exactly once; a clock that sleeps
	// forces the leader to yield mid-round so other submitters queue up
	// behind it. That makes cross-submitter merging deterministic even
	// at GOMAXPROCS=1, where a non-blocking leader would otherwise run
	// every round with exactly its own job.
	slowClock := func() int64 {
		time.Sleep(100 * time.Microsecond)
		return 1000
	}
	st := newTestStore(t, func(c *Config) { c.Shards = 8; c.Clock = slowClock })
	const nKeys = 64
	for i := 0; i < nKeys; i++ {
		st.Set(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)), uint32(i), 0)
	}
	var onRoundMu sync.Mutex
	maxJobs := 0
	c := NewCoalescer(st, CoalescerOptions{
		OnRound: func(kind RoundKind, jobs, ops int, _, _ int64) {
			onRoundMu.Lock()
			if jobs > maxJobs {
				maxJobs = jobs
			}
			onRoundMu.Unlock()
		},
	})
	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var gj GetJob
			var sj SetJob
			for it := 0; it < iters; it++ {
				k1 := fmt.Sprintf("k%02d", (w*7+it)%nKeys)
				k2 := fmt.Sprintf("k%02d", (w*13+it)%nKeys)
				c.Gets(&gj, [][]byte{[]byte(k1), []byte(k2)})
				v1, r1 := gj.Result(0)
				v2, r2 := gj.Result(1)
				want1, want2 := "v"+k1[1:], "v"+k2[1:]
				if !r1.Found || string(v1) != want1 || !r2.Found || string(v2) != want2 {
					gj.Release()
					errc <- fmt.Errorf("worker %d iter %d: got (%q,%v) (%q,%v), want %q %q",
						w, it, v1, r1.Found, v2, r2.Found, want1, want2)
					return
				}
				gj.Release()
				if it%10 == 0 {
					// Rewrite with the same value so reads stay verifiable.
					c.Sets(&sj, []SetOp{{Key: k1, Value: []byte(want1), Flags: uint32((w*7 + it) % nKeys)}})
					if err := sj.Err(0); err != nil {
						errc <- fmt.Errorf("worker %d iter %d set: %v", w, it, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	wantOps := uint64(workers*iters*2 + workers*(iters/10))
	if got := c.Ops(); got != wantOps {
		t.Fatalf("Ops = %d, want %d", got, wantOps)
	}
	if c.Rounds() == 0 || c.Rounds() > c.Ops() {
		t.Fatalf("Rounds = %d out of range", c.Rounds())
	}
	// With the leader parked in the slow clock every round, at least one
	// round must have merged jobs from more than one submitter.
	if maxJobs < 2 {
		t.Fatalf("no round ever merged >1 job (maxJobs=%d): coalescing never happened", maxJobs)
	}
	if c.Coalesced() == 0 {
		t.Fatal("Coalesced counter stayed zero despite merged rounds")
	}
}

// TestCoalescerRoundPooling checks rounds are recycled rather than
// reallocated, and that pooled rounds carry no stale results.
func TestCoalescerRoundPooling(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("a", []byte("first"), 0, 0)
	c := NewCoalescer(st, CoalescerOptions{})
	var job GetJob
	c.Gets(&job, [][]byte{[]byte("a")})
	v, _ := job.Result(0)
	if string(v) != "first" {
		t.Fatalf("v = %q", v)
	}
	job.Release()
	st.Set("a", []byte("second"), 0, 0)
	c.Gets(&job, [][]byte{[]byte("a")})
	if v, _ := job.Result(0); string(v) != "second" {
		t.Fatalf("after reuse v = %q, want fresh result", v)
	}
	job.Release()
}

func TestCoalescerOnRoundClock(t *testing.T) {
	st := newTestStore(t, nil)
	now := int64(100)
	var gotKind RoundKind
	var gotStart, gotEnd int64
	c := NewCoalescer(st, CoalescerOptions{
		NowNanos: func() int64 { now += 5; return now },
		OnRound: func(kind RoundKind, jobs, ops int, startNs, endNs int64) {
			gotKind, gotStart, gotEnd = kind, startNs, endNs
		},
	})
	var sj SetJob
	c.Sets(&sj, []SetOp{{Key: "a", Value: []byte("v")}})
	if gotKind != RoundSet || gotStart != 105 || gotEnd != 110 {
		t.Fatalf("OnRound saw kind=%v start=%d end=%d", gotKind, gotStart, gotEnd)
	}
	if RoundGet.String() != "get" || RoundSet.String() != "set" {
		t.Fatalf("RoundKind strings: %q %q", RoundGet.String(), RoundSet.String())
	}
}
