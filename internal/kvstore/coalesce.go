package kvstore

// Cross-connection request coalescing: the store-side engine of the
// event-driven server core (ROADMAP item 2). Connection goroutines
// submit parsed GET key sets / SET op runs as jobs; concurrent jobs are
// merged into one shard-ordered GetBatchInto / SetBatch call so that a
// burst of single-key requests from many connections costs one lock
// acquisition per involved shard per round instead of one per request —
// MICA-style request coalescing on the combining-leader pattern.
//
// Concurrency model: there are no dedicated worker goroutines. The
// first submitter to find no leader running becomes the leader, drains
// the queue in rounds (each round = everything queued while the
// previous round executed), signals every job it served, and steps down
// when the queue is empty. Every other submitter just blocks on its
// job's done channel. Leadership hand-off is ordered by the coalescer
// mutex, so the leader-only scratch state below needs no further
// synchronization. Because the leader runs on a request goroutine and
// steps down the moment the queue empties, there is nothing to start or
// stop: the coalescer's lifecycle is the store's.
//
// Buffer ownership: a GetJob's keys are borrowed from the submitting
// session's request buffers. The submitter blocks until its round
// completes, so the borrowed memory is stable for exactly the window
// the round reads it; the round clears its key references before being
// pooled so no request buffer outlives its request. Values land in a
// round-owned destination buffer shared by every job of the round —
// reference-counted, returned to a sync.Pool by the last Release.

import (
	"sync"
	"sync/atomic"
)

// RoundKind labels a coalescing round for the observation hook.
type RoundKind uint8

// Round kinds.
const (
	RoundGet RoundKind = iota
	RoundSet
)

// String returns the kind's metric-name segment.
func (k RoundKind) String() string {
	if k == RoundSet {
		return "set"
	}
	return "get"
}

// CoalescerOptions tune a Coalescer. The zero value is fully usable.
type CoalescerOptions struct {
	// OnRound, when set, observes every executed round: how many jobs
	// (submitting connections) and ops it merged, and the round's
	// store-execution window in NowNanos time. The hook runs on the
	// leader goroutine and must be safe for concurrent use with other
	// store callers.
	OnRound func(kind RoundKind, jobs, ops int, startNs, endNs int64)
	// NowNanos timestamps rounds for OnRound; nil reports zeros. The
	// clock is injected so the coalescer never reads wall time itself
	// (the same determinism contract as Config.Clock).
	NowNanos func() int64
}

// Coalescer merges concurrent batched lookups and stores against one
// Store. Safe for concurrent use by any number of goroutines.
type Coalescer struct {
	st   *Store
	opts CoalescerOptions

	mu     sync.Mutex
	leader bool      //kv3d:guardedby mu
	gets   []*GetJob //kv3d:guardedby mu
	sets   []*SetJob //kv3d:guardedby mu

	// getsSpare/setsSpare recycle queue backing arrays: the leader swaps
	// the live queue with the spare when it snapshots a round, and hands
	// the drained snapshot back (job pointers cleared) when the round
	// ends. Two arrays ping-pong forever, so steady-state submits never
	// allocate.
	getsSpare []*GetJob //kv3d:guardedby mu
	setsSpare []*SetJob //kv3d:guardedby mu

	// rounds/ops/coalesced are the live.batch.* feed: executed rounds,
	// total ops served through them, and ops that shared a round with at
	// least one other job (the cross-connection win, zero when every
	// round holds a single job).
	rounds    atomic.Uint64
	ops       atomic.Uint64
	coalesced atomic.Uint64

	// pool recycles get-round result buffers (see getRound).
	pool sync.Pool

	// Leader-only scratch for set rounds: results are copied out to the
	// jobs before the round ends, so set rounds need no refcount and one
	// scratch per coalescer suffices. Only the current leader touches
	// these, and leadership hand-off is ordered by mu (the old leader's
	// final unlock happens-before the new leader's first lock).
	setOps  []SetOp
	setErrs []error
	setScr  BatchScratch
}

// NewCoalescer builds a coalescer over the store.
func NewCoalescer(st *Store, opts CoalescerOptions) *Coalescer {
	return &Coalescer{st: st, opts: opts}
}

// Rounds reports how many rounds have executed.
func (c *Coalescer) Rounds() uint64 { return c.rounds.Load() }

// Ops reports how many ops were served through rounds.
func (c *Coalescer) Ops() uint64 { return c.ops.Load() }

// Coalesced reports how many ops shared their round with another
// connection's job — the portion of traffic that actually amortized a
// shard lock across connections.
func (c *Coalescer) Coalesced() uint64 { return c.coalesced.Load() }

// getRound is one executed get round's shared result state: the keys
// gathered from every job, the destination buffer all values were
// appended to, and the per-key results. It stays alive (refcounted)
// until every job of the round has serialized its responses, then
// returns to the pool.
type getRound struct {
	keys [][]byte
	dst  []byte
	out  []BatchResult
	scr  BatchScratch
	refs atomic.Int32
	home *sync.Pool // the owning coalescer's round pool, for Release
}

// maxPooledRoundBytes caps the destination-buffer capacity a pooled
// round may retain; larger rounds are dropped for the GC so one huge
// multiget doesn't pin its high-water mark forever.
const maxPooledRoundBytes = 1 << 20

// GetJob is one submitter's stake in a get round. The zero value is
// ready; a session reuses one job across requests. After Gets returns,
// read each key's result with Result, then Release the round before
// the next submission.
type GetJob struct {
	keys  [][]byte
	round *getRound
	base  int
	done  chan struct{}
}

// Result returns the i-th key's value and result. The value aliases
// the round's shared buffer: consume it before Release.
//
//kv3d:aliases
func (j *GetJob) Result(i int) ([]byte, BatchResult) {
	r := j.round.out[j.base+i]
	return j.round.dst[r.Start:r.End], r
}

// Release drops the job's reference on its round; the last release
// recycles the round buffer. Calling it after a zero-key Gets is a
// no-op.
func (j *GetJob) Release() {
	r := j.round
	if r == nil {
		return
	}
	j.round = nil
	j.keys = nil
	if r.refs.Add(-1) != 0 {
		return
	}
	// Last job out: drop borrowed key references (they alias request
	// buffers that must not outlive their requests), then recycle.
	for i := range r.keys {
		r.keys[i] = nil
	}
	r.keys = r.keys[:0]
	r.dst = r.dst[:0]
	r.out = r.out[:0]
	// j.round was cleared above and r escapes only into the pool here,
	// never used again by this job.
	if cap(r.dst) <= maxPooledRoundBytes {
		r.home.Put(r)
	}
}

// SetJob is one submitter's stake in a set round. The zero value is
// ready; a session reuses one job across requests. After Sets returns,
// per-op errors are read with Err — they are job-owned copies, so no
// Release is needed.
type SetJob struct {
	ops  []SetOp
	errs []error
	done chan struct{}
}

// Err returns the i-th op's result (nil on success).
func (j *SetJob) Err(i int) error { return j.errs[i] }

// Gets submits the key set and blocks until the round that served it
// completed. Keys are borrowed: they must stay stable until Release.
//
//kv3d:borrowed keys
func (c *Coalescer) Gets(job *GetJob, keys [][]byte) {
	if len(keys) == 0 {
		job.round = nil
		return
	}
	if job.done == nil {
		job.done = make(chan struct{}, 1)
	}
	job.keys = keys //nolint:kv3d -- sanctioned retention: the submitter blocks on job.done until the round completes, so the borrowed keys are stable for exactly the window the round reads them, and the round clears its references before pooling
	c.submit(job, nil)
	<-job.done
}

// Sets submits the op run and blocks until the round that applied it
// completed. Op values are borrowed (SetBatch copies them under the
// shard locks); per-op errors are copied into the job before return.
func (c *Coalescer) Sets(job *SetJob, ops []SetOp) {
	if len(ops) == 0 {
		return
	}
	if job.done == nil {
		job.done = make(chan struct{}, 1)
	}
	job.ops = ops //nolint:kv3d -- sanctioned retention: the submitter blocks on job.done until the round completes; op values are copied into slab memory before the round signals
	c.submit(nil, job)
	<-job.done
}

// submit queues the job and runs the leader loop if no leader is
// active. Exactly one of g/s is non-nil.
func (c *Coalescer) submit(g *GetJob, s *SetJob) {
	c.mu.Lock()
	if g != nil {
		c.gets = append(c.gets, g)
	} else {
		c.sets = append(c.sets, s)
	}
	if c.leader {
		c.mu.Unlock()
		return // the running leader will serve this job
	}
	c.leader = true
	for {
		gets, sets := c.gets, c.sets
		c.gets, c.sets = c.getsSpare[:0], c.setsSpare[:0]
		c.getsSpare, c.setsSpare = nil, nil
		c.mu.Unlock()
		if len(gets) > 0 {
			c.runGetRound(gets)
		}
		if len(sets) > 0 {
			c.runSetRound(sets)
		}
		// Drop the snapshot's job references before recycling it as the
		// next spare: every job was signalled above, and a stale pointer
		// here would pin a released job past its round.
		for i := range gets {
			gets[i] = nil
		}
		for i := range sets {
			sets[i] = nil
		}
		c.mu.Lock()
		c.getsSpare, c.setsSpare = gets[:0], sets[:0]
		if len(c.gets) == 0 && len(c.sets) == 0 {
			c.leader = false
			c.mu.Unlock()
			return
		}
		// Jobs queued while the rounds ran: serve them too. The loop
		// terminates as soon as a queue check comes up empty, so the
		// leader is never parked — it either executes work or leaves.
	}
}

// runGetRound merges the jobs' keys, executes one shard-ordered batched
// lookup, and signals every job. The round buffer stays alive until the
// last job Releases it.
func (c *Coalescer) runGetRound(jobs []*GetJob) {
	r := c.newRound()
	total := 0
	for _, j := range jobs {
		j.base = total
		total += len(j.keys)
		r.keys = append(r.keys, j.keys...)
	}
	r.refs.Store(int32(len(jobs)))
	var startNs, endNs int64
	if c.opts.NowNanos != nil {
		startNs = c.opts.NowNanos()
	}
	r.dst, r.out = c.st.GetBatchInto(r.dst[:0], r.keys, r.out[:0], &r.scr)
	if c.opts.NowNanos != nil {
		endNs = c.opts.NowNanos()
	}
	c.observe(RoundGet, len(jobs), total, startNs, endNs)
	// Publish the finished round only now: j.round is the submitter's
	// window into r, and the done send orders every mutation above
	// before the submitter's first read.
	for _, j := range jobs {
		j.round = r
		j.done <- struct{}{} // buffered(1): never blocks the leader
	}
}

// runSetRound merges the jobs' ops, executes one shard-ordered batched
// store, copies each job's error span back, and signals every job.
func (c *Coalescer) runSetRound(jobs []*SetJob) {
	ops := c.setOps[:0]
	for _, j := range jobs {
		ops = append(ops, j.ops...)
	}
	var startNs, endNs int64
	if c.opts.NowNanos != nil {
		startNs = c.opts.NowNanos()
	}
	errs := c.st.SetBatch(ops, c.setErrs[:0], &c.setScr)
	if c.opts.NowNanos != nil {
		endNs = c.opts.NowNanos()
	}
	c.observe(RoundSet, len(jobs), len(ops), startNs, endNs)
	pos := 0
	for _, j := range jobs {
		n := len(j.ops)
		if cap(j.errs) < n {
			j.errs = make([]error, n)
		}
		j.errs = j.errs[:n]
		copy(j.errs, errs[pos:pos+n])
		pos += n
		j.ops = nil
		j.done <- struct{}{}
	}
	// Drop borrowed op references (keys/values alias request buffers)
	// before the scratch is reused by a later leader.
	for i := range ops {
		ops[i] = SetOp{}
	}
	c.setOps, c.setErrs = ops[:0], errs[:0]
}

func (c *Coalescer) observe(kind RoundKind, jobs, nops int, startNs, endNs int64) {
	c.rounds.Add(1)
	c.ops.Add(uint64(nops))
	if jobs > 1 {
		c.coalesced.Add(uint64(nops))
	}
	if c.opts.OnRound != nil {
		c.opts.OnRound(kind, jobs, nops, startNs, endNs)
	}
}

func (c *Coalescer) newRound() *getRound {
	if r, ok := c.pool.Get().(*getRound); ok {
		return r
	}
	return &getRound{home: &c.pool}
}
