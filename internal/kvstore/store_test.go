package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// fakeClock is a controllable Clock for expiry tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) fn() int64 { return c.now }

func newTestStore(t *testing.T, mut func(*Config)) *Store {
	t.Helper()
	cfg := DefaultConfig(32 << 20)
	cfg.Shards = 4
	if mut != nil {
		mut(&cfg)
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSetGetRoundTrip(t *testing.T) {
	st := newTestStore(t, nil)
	if err := st.Set("hello", []byte("world"), 42, 0); err != nil {
		t.Fatal(err)
	}
	e, ok := st.Get("hello")
	if !ok {
		t.Fatal("get miss after set")
	}
	if string(e.Value) != "world" || e.Flags != 42 || e.CAS == 0 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestGetMiss(t *testing.T) {
	st := newTestStore(t, nil)
	if _, ok := st.Get("nope"); ok {
		t.Fatal("hit on absent key")
	}
	s := st.Stats()
	if s.GetMisses != 1 {
		t.Fatalf("misses = %d", s.GetMisses)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", []byte("abc"), 0, 0)
	e, _ := st.Get("k")
	e.Value[0] = 'X'
	e2, _ := st.Get("k")
	if string(e2.Value) != "abc" {
		t.Fatal("Get must return an independent copy")
	}
}

func TestGetInto(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", []byte("value"), 7, 0)
	buf := []byte("prefix:")
	out, e, ok := st.GetInto(buf, "k")
	if !ok || string(out) != "prefix:value" || e.Flags != 7 {
		t.Fatalf("GetInto = %q ok=%v flags=%d", out, ok, e.Flags)
	}
	if _, _, ok := st.GetInto(nil, "absent"); ok {
		t.Fatal("GetInto hit on absent key")
	}
}

func TestOverwriteSameClassKeepsBytesAccounting(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", bytes.Repeat([]byte("a"), 100), 0, 0)
	before := st.Stats().BytesUsed
	st.Set("k", bytes.Repeat([]byte("b"), 90), 0, 0)
	after := st.Stats().BytesUsed
	if after != before-10 {
		t.Fatalf("bytes accounting drifted: %d -> %d", before, after)
	}
	e, _ := st.Get("k")
	if len(e.Value) != 90 || e.Value[0] != 'b' {
		t.Fatalf("overwrite result wrong: %d bytes", len(e.Value))
	}
}

func TestOverwriteDifferentClass(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", bytes.Repeat([]byte("a"), 50), 0, 0)
	st.Set("k", bytes.Repeat([]byte("b"), 50_000), 0, 0)
	e, ok := st.Get("k")
	if !ok || len(e.Value) != 50_000 {
		t.Fatal("cross-class overwrite failed")
	}
	if st.ItemCount() != 1 {
		t.Fatalf("item count = %d", st.ItemCount())
	}
}

func TestCASMonotonicAndChanges(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", []byte("v1"), 0, 0)
	e1, _ := st.Get("k")
	st.Set("k", []byte("v2"), 0, 0)
	e2, _ := st.Get("k")
	if e2.CAS <= e1.CAS {
		t.Fatalf("CAS not monotonic: %d then %d", e1.CAS, e2.CAS)
	}
}

func TestCASOperation(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", []byte("v1"), 0, 0)
	e, _ := st.Get("k")
	if err := st.CAS("k", []byte("v2"), 0, 0, e.CAS); err != nil {
		t.Fatalf("matching CAS failed: %v", err)
	}
	if err := st.CAS("k", []byte("v3"), 0, 0, e.CAS); !errors.Is(err, ErrExists) {
		t.Fatalf("stale CAS should return ErrExists, got %v", err)
	}
	if err := st.CAS("absent", []byte("v"), 0, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("CAS on absent key should return ErrNotFound, got %v", err)
	}
	s := st.Stats()
	if s.CasHits != 1 || s.CasBadval != 1 || s.CasMisses != 1 {
		t.Fatalf("cas stats = %+v", s)
	}
}

func TestAddReplace(t *testing.T) {
	st := newTestStore(t, nil)
	if err := st.Replace("k", []byte("v"), 0, 0); !errors.Is(err, ErrNotStored) {
		t.Fatalf("replace absent = %v", err)
	}
	if err := st.Add("k", []byte("v"), 0, 0); err != nil {
		t.Fatalf("add new = %v", err)
	}
	if err := st.Add("k", []byte("v2"), 0, 0); !errors.Is(err, ErrNotStored) {
		t.Fatalf("add existing = %v", err)
	}
	if err := st.Replace("k", []byte("v2"), 0, 0); err != nil {
		t.Fatalf("replace existing = %v", err)
	}
	e, _ := st.Get("k")
	if string(e.Value) != "v2" {
		t.Fatalf("value = %q", e.Value)
	}
}

func TestAppendPrepend(t *testing.T) {
	st := newTestStore(t, nil)
	if err := st.Append("k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("append absent = %v", err)
	}
	st.Set("k", []byte("mid"), 5, 0)
	st.Append("k", []byte("-end"))
	st.Prepend("k", []byte("start-"))
	e, _ := st.Get("k")
	if string(e.Value) != "start-mid-end" {
		t.Fatalf("value = %q", e.Value)
	}
	if e.Flags != 5 {
		t.Fatalf("flags lost: %d", e.Flags)
	}
}

func TestIncrDecr(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("n", []byte("10"), 0, 0)
	if v, err := st.Incr("n", 5); err != nil || v != 15 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	if v, err := st.Decr("n", 20); err != nil || v != 0 {
		t.Fatalf("decr should floor at 0, got %d, %v", v, err)
	}
	if _, err := st.Incr("absent", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("incr absent = %v", err)
	}
	st.Set("s", []byte("abc"), 0, 0)
	if _, err := st.Incr("s", 1); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("incr non-numeric = %v", err)
	}
	e, _ := st.Get("n")
	if string(e.Value) != "0" {
		t.Fatalf("stored numeric = %q", e.Value)
	}
}

func TestDelete(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", []byte("v"), 0, 0)
	if err := st.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k"); ok {
		t.Fatal("deleted key visible")
	}
	if err := st.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestExpiry(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("k", []byte("v"), 0, 60) // relative: expires at 1060
	if _, ok := st.Get("k"); !ok {
		t.Fatal("not expired yet")
	}
	clk.now = 1059
	if _, ok := st.Get("k"); !ok {
		t.Fatal("expired too early")
	}
	clk.now = 1060
	if _, ok := st.Get("k"); ok {
		t.Fatal("should be expired")
	}
	s := st.Stats()
	if s.Expired == 0 {
		t.Fatal("expired counter not bumped")
	}
}

func TestExpiryAbsolute(t *testing.T) {
	clk := &fakeClock{now: 5_000_000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("k", []byte("v"), 0, 5_000_100) // > 30 days: absolute
	clk.now = 5_000_099
	if _, ok := st.Get("k"); !ok {
		t.Fatal("absolute expiry fired early")
	}
	clk.now = 5_000_100
	if _, ok := st.Get("k"); ok {
		t.Fatal("absolute expiry missed")
	}
}

func TestExpiryNegativeImmediate(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("k", []byte("v"), 0, -1)
	if _, ok := st.Get("k"); ok {
		t.Fatal("negative exptime should mean already expired")
	}
}

func TestTouch(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("k", []byte("v"), 0, 10)
	if err := st.Touch("k", 100); err != nil {
		t.Fatal(err)
	}
	clk.now = 1050 // would have expired at 1010 without touch
	if _, ok := st.Get("k"); !ok {
		t.Fatal("touch did not extend TTL")
	}
	if err := st.Touch("absent", 100); !errors.Is(err, ErrNotFound) {
		t.Fatalf("touch absent = %v", err)
	}
}

func TestFlushAll(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("a", []byte("1"), 0, 0)
	st.Set("b", []byte("2"), 0, 0)
	st.FlushAll(0)
	clk.now = 1001
	if _, ok := st.Get("a"); ok {
		t.Fatal("flush_all left a visible")
	}
	if _, ok := st.Get("b"); ok {
		t.Fatal("flush_all left b visible")
	}
	// New writes after the flush must survive.
	st.Set("c", []byte("3"), 0, 0)
	if _, ok := st.Get("c"); !ok {
		t.Fatal("post-flush write lost")
	}
}

func TestFlushAllDelayed(t *testing.T) {
	clk := &fakeClock{now: 1000}
	st := newTestStore(t, func(c *Config) { c.Clock = clk.fn })
	st.Set("a", []byte("1"), 0, 0)
	st.FlushAll(50) // epoch at 1050
	if _, ok := st.Get("a"); !ok {
		t.Fatal("delayed flush should not fire yet")
	}
	clk.now = 1051
	if _, ok := st.Get("a"); ok {
		t.Fatal("delayed flush should have fired")
	}
}

func TestBadKeys(t *testing.T) {
	st := newTestStore(t, nil)
	for _, key := range []string{"", "has space", "has\nnewline", strings.Repeat("x", MaxKeyLen+1)} {
		if err := st.Set(key, []byte("v"), 0, 0); !errors.Is(err, ErrBadKey) {
			t.Errorf("Set(%q) = %v, want ErrBadKey", key, err)
		}
	}
	if err := st.Set(strings.Repeat("k", MaxKeyLen), []byte("v"), 0, 0); err != nil {
		t.Errorf("max-length key rejected: %v", err)
	}
}

func TestTooLargeValue(t *testing.T) {
	st := newTestStore(t, nil)
	big := make([]byte, DefaultMaxItemSize+1)
	if err := st.Set("k", big, 0, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize set = %v", err)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	st := newTestStore(t, func(c *Config) {
		c.MemoryLimit = 4 << 20
		c.Mode = ModeGlobal
	})
	val := bytes.Repeat([]byte("v"), 10_000)
	for i := 0; i < 2000; i++ {
		if err := st.Set(fmt.Sprintf("key-%d", i), val, 0, 0); err != nil {
			t.Fatalf("set %d failed: %v", i, err)
		}
	}
	s := st.Stats()
	if s.Evictions == 0 {
		t.Fatal("expected evictions under memory pressure")
	}
	if s.SlabBytes > 4<<20 {
		t.Fatalf("slab bytes %d exceed limit", s.SlabBytes)
	}
	// Most recent keys should still be resident (LRU evicts old ones).
	if _, ok := st.Get("key-1999"); !ok {
		t.Fatal("most recent key evicted")
	}
}

func TestEvictionDisabledErrors(t *testing.T) {
	st := newTestStore(t, func(c *Config) {
		c.MemoryLimit = 2 << 20
		c.Mode = ModeGlobal
		c.EvictionsEnabled = false
		c.SlabPageSize = 1 << 20
	})
	val := bytes.Repeat([]byte("v"), 100_000)
	var sawOOM bool
	for i := 0; i < 100; i++ {
		if err := st.Set(fmt.Sprintf("key-%d", i), val, 0, 0); errors.Is(err, ErrOutOfMemory) {
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("expected ErrOutOfMemory with evictions disabled")
	}
}

func TestBagsPolicyEndToEnd(t *testing.T) {
	st := newTestStore(t, func(c *Config) {
		c.MemoryLimit = 4 << 20
		c.Policy = PolicyBags
		c.Mode = ModeGlobal
	})
	val := bytes.Repeat([]byte("v"), 10_000)
	for i := 0; i < 1000; i++ {
		if err := st.Set(fmt.Sprintf("key-%d", i), val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		// Keep key-0 hot so the second-chance logic protects it.
		if _, ok := st.Get("key-0"); !ok && i < 50 {
			t.Fatalf("key-0 lost at step %d", i)
		}
	}
	if st.Stats().Evictions == 0 {
		t.Fatal("bags store never evicted")
	}
}

func TestGlobalVsStripedEquivalence(t *testing.T) {
	ops := func(st *Store) string {
		var log strings.Builder
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("k%d", i%50)
			switch i % 4 {
			case 0:
				st.Set(key, []byte(fmt.Sprintf("v%d", i)), 0, 0)
			case 1:
				e, ok := st.Get(key)
				fmt.Fprintf(&log, "get %s %v %s;", key, ok, e.Value)
			case 2:
				st.Incr("counter", 1)
			case 3:
				st.Delete(key)
			}
		}
		return log.String()
	}
	g := newTestStore(t, func(c *Config) { c.Mode = ModeGlobal })
	g.Set("counter", []byte("0"), 0, 0)
	s := newTestStore(t, func(c *Config) { c.Mode = ModeStriped; c.Shards = 8 })
	s.Set("counter", []byte("0"), 0, 0)
	if got, want := ops(s), ops(g); got != want {
		t.Fatalf("striped and global stores diverged:\n%s\nvs\n%s", got, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	st := newTestStore(t, func(c *Config) { c.Shards = 16 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%100)
				st.Set(key, []byte("value"), 0, 0)
				st.Get(key)
				if i%10 == 0 {
					st.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	s := st.Stats()
	if s.Sets != 8000 {
		t.Fatalf("sets = %d, want 8000", s.Sets)
	}
}

func TestConcurrentSharedCounter(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("n", []byte("0"), 0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := st.Incr("n", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e, _ := st.Get("n")
	if string(e.Value) != "4000" {
		t.Fatalf("counter = %s, want 4000", e.Value)
	}
}

func TestStatsHitRate(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("k", []byte("v"), 0, 0)
	st.Get("k")
	st.Get("k")
	st.Get("absent")
	s := st.Stats()
	if s.GetHits != 2 || s.GetMisses != 1 {
		t.Fatalf("hits/misses = %d/%d", s.GetHits, s.GetMisses)
	}
	if hr := s.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
	cfg := DefaultConfig(1 << 20)
	cfg.Shards = 64 // 64 shards × 1MiB pages > 1MiB limit
	if _, err := New(cfg); err == nil {
		t.Fatal("limit too small for shards must be rejected")
	}
	cfg = DefaultConfig(64 << 20)
	cfg.MaxItemSize = 2 << 20
	cfg.SlabPageSize = 1 << 20
	if _, err := New(cfg); err == nil {
		t.Fatal("item size above page size must be rejected")
	}
}

func TestShardsRoundedToPowerOfTwo(t *testing.T) {
	st := newTestStore(t, func(c *Config) { c.Shards = 5 })
	if got := st.Config().Shards; got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
	g := newTestStore(t, func(c *Config) { c.Mode = ModeGlobal; c.Shards = 7 })
	if got := g.Config().Shards; got != 1 {
		t.Fatalf("global mode shards = %d, want 1", got)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeGlobal.String() != "global" || ModeStriped.String() != "striped" {
		t.Fatal("mode names wrong")
	}
	if ConcurrencyMode(9).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}

// TestStoreModelEquivalenceProperty drives the store and a plain map with
// the same operations and checks observable equivalence.
func TestStoreModelEquivalenceProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint16
	}
	f := func(ops []op) bool {
		st := newTestStore(t, func(c *Config) { c.Mode = ModeGlobal })
		model := make(map[string]string)
		for _, o := range ops {
			key := fmt.Sprintf("key-%d", o.Key%32)
			val := fmt.Sprintf("val-%d", o.Value)
			switch o.Kind % 3 {
			case 0:
				if st.Set(key, []byte(val), 0, 0) == nil {
					model[key] = val
				}
			case 1:
				e, ok := st.Get(key)
				want, wantOK := model[key]
				if ok != wantOK {
					return false
				}
				if ok && string(e.Value) != want {
					return false
				}
			case 2:
				err := st.Delete(key)
				_, wantOK := model[key]
				if (err == nil) != wantOK {
					return false
				}
				delete(model, key)
			}
		}
		return st.ItemCount() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabReassignmentCuresCalcification(t *testing.T) {
	// Fill the store with small items (all pages go to small classes),
	// then switch the workload to large items. Without page
	// reassignment the large class could never allocate; with it the
	// store adapts.
	st := newTestStore(t, func(c *Config) {
		c.MemoryLimit = 8 << 20
		c.Mode = ModeGlobal
	})
	small := bytes.Repeat([]byte("s"), 100)
	for i := 0; i < 50_000; i++ {
		if err := st.Set(fmt.Sprintf("small-%d", i), small, 0, 0); err != nil {
			t.Fatalf("small set %d: %v", i, err)
		}
	}
	large := bytes.Repeat([]byte("L"), 700_000)
	for i := 0; i < 20; i++ {
		if err := st.Set(fmt.Sprintf("large-%d", i), large, 0, 0); err != nil {
			t.Fatalf("large set %d failed despite reassignment: %v", i, err)
		}
	}
	s := st.Stats()
	if s.SlabReassigns == 0 {
		t.Fatal("expected slab reassignments")
	}
	// Recent large items must be retrievable.
	e, ok := st.Get("large-19")
	if !ok || len(e.Value) != 700_000 {
		t.Fatal("large item lost")
	}
	// And the store can still serve small items after reassignment.
	if err := st.Set("small-again", small, 0, 0); err != nil {
		t.Fatalf("small set after reassignment: %v", err)
	}
}

func TestReassignmentPreservesIntegrity(t *testing.T) {
	// Alternate small and large working sets repeatedly; every read must
	// return exactly what was written (no aliased pages).
	st := newTestStore(t, func(c *Config) {
		c.MemoryLimit = 8 << 20
		c.Mode = ModeGlobal
	})
	for round := 0; round < 4; round++ {
		size := 100
		if round%2 == 1 {
			size = 300_000
		}
		val := bytes.Repeat([]byte{byte('a' + round)}, size)
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("r%d-%d", round, i)
			if err := st.Set(key, val, 0, 0); err != nil {
				continue // memory pressure may reject; that's fine
			}
			e, ok := st.Get(key)
			if !ok {
				continue // may have been evicted
			}
			if !bytes.Equal(e.Value, val) {
				t.Fatalf("round %d key %s corrupted", round, key)
			}
		}
	}
}

func TestSlabStats(t *testing.T) {
	st := newTestStore(t, nil)
	st.Set("small", bytes.Repeat([]byte("s"), 10), 0, 0)
	st.Set("large", bytes.Repeat([]byte("L"), 100_000), 0, 0)
	classes := st.SlabStats()
	if len(classes) < 2 {
		t.Fatalf("expected at least two active classes, got %d", len(classes))
	}
	var used int
	for _, c := range classes {
		if c.Pages <= 0 || c.ChunkSize <= 0 {
			t.Fatalf("bad class %+v", c)
		}
		used += c.UsedChunks
	}
	if used != 2 {
		t.Fatalf("used chunks = %d, want 2", used)
	}
}
