package kvstore

// item is the in-memory representation of one stored object. The value
// bytes live in a slab chunk owned by the shard's allocator; the struct
// itself is garbage-collected Go memory (the chunk is the part memcached
// actually fights fragmentation over).
type item struct {
	key      string
	data     []byte   // value bytes: data[:valueLen] within the slab chunk
	ref      chunkRef // backing chunk, returned to the allocator on free
	valueLen int

	flags    uint32
	casID    uint64
	expireAt int64 // unix seconds; 0 = never, negative = already expired
	storedAt int64 // unix seconds when (re)stored; for flush_all epochs

	classIdx int

	// Hash chain.
	hnext *item

	// Eviction policy links. For strict LRU these form the class's LRU
	// list; for Bags they form the item's bag list.
	prev, next *item
	bag        *bag  // non-nil only under the Bags policy
	accessedAt int64 // unix seconds of last read (Bags second-chance)
}

// value returns the live value bytes.
func (it *item) value() []byte { return it.data[:it.valueLen] }

// expired reports whether the item is past its TTL at time now. A
// negative expireAt (the expiredNow sentinel from a negative client
// exptime) is expired at every clock value — the explicit branch keeps
// that true even for a hypothetical negative logical clock.
func (it *item) expired(now int64) bool {
	if it.expireAt < 0 {
		return true
	}
	return it.expireAt != 0 && now >= it.expireAt
}

// size returns the accounting footprint of the item: memcached charges
// key + value + a fixed per-item overhead against the slab chunk.
func itemFootprint(keyLen, valueLen int) int {
	const perItemOverhead = 48 // struct bookkeeping, mirrors memcached's ~48B
	return keyLen + valueLen + perItemOverhead
}
