package kvstore

// GetWithExpiry returns a copy of the entry plus its absolute expiry
// (unix seconds, 0 = never) — what a migration stream needs to re-create
// the item on another node with its TTL intact. Unlike Get it neither
// counts a hit/miss nor promotes the item in the eviction policy: a
// background scan must not skew foreground cache behaviour.
func (st *Store) GetWithExpiry(key string) (Entry, int64, bool) {
	sh := st.shardFor(key)
	now := st.clock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it := sh.s.live(key, now)
	if it == nil {
		return Entry{}, 0, false
	}
	out := make([]byte, it.valueLen)
	copy(out, it.value())
	return Entry{Value: out, Flags: it.flags, CAS: it.casID}, it.expireAt, true
}

// AppendKeys appends every live (non-expired, non-flushed) key to dst
// and returns the extended slice. It takes each shard lock once, so the
// walk is consistent per shard but not across shards — exactly the
// guarantee key-range migration needs: a snapshot listing to stream
// from, with per-key re-reads at send time deciding what is still
// current. Key strings are immutable, so the result aliases nothing
// mutable.
func (st *Store) AppendKeys(dst []string) []string {
	now := st.clock()
	for _, ls := range st.shards {
		ls.mu.Lock()
		ls.s.table.forEach(func(it *item) {
			if it.expired(now) || ls.s.flushed(it, now) {
				return
			}
			dst = append(dst, it.key)
		})
		ls.mu.Unlock()
	}
	return dst
}
