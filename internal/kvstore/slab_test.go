package kvstore

import (
	"testing"
	"testing/quick"
)

func TestSlabClassLadder(t *testing.T) {
	a, err := newSlabAllocator(96, 1.25, 1<<20, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if a.numClasses() < 10 {
		t.Fatalf("expected a ladder of classes, got %d", a.numClasses())
	}
	prev := 0
	for i := 0; i < a.numClasses(); i++ {
		cs := a.chunkSize(i)
		if cs <= prev {
			t.Fatalf("class %d size %d not strictly increasing (prev %d)", i, cs, prev)
		}
		if cs%8 != 0 {
			t.Fatalf("class %d size %d not 8-aligned", i, cs)
		}
		prev = cs
	}
	if a.chunkSize(a.numClasses()-1) != 1<<20 {
		t.Fatalf("last class should be the page size, got %d", a.chunkSize(a.numClasses()-1))
	}
}

func TestSlabClassFor(t *testing.T) {
	a, _ := newSlabAllocator(96, 1.25, 1<<20, 16<<20)
	for _, size := range []int{1, 95, 96, 97, 1000, 1 << 19, 1 << 20} {
		i, ok := a.classFor(size)
		if !ok {
			t.Fatalf("classFor(%d) failed", size)
		}
		if a.chunkSize(i) < size {
			t.Fatalf("classFor(%d) = class of %d bytes", size, a.chunkSize(i))
		}
		if i > 0 && a.chunkSize(i-1) >= size {
			t.Fatalf("classFor(%d) not minimal: class %d fits too", size, i-1)
		}
	}
	if _, ok := a.classFor(1<<20 + 1); ok {
		t.Fatal("oversized request should fail")
	}
}

func TestSlabAllocFreeCycle(t *testing.T) {
	a, _ := newSlabAllocator(96, 1.25, 4096, 8192)
	ci, _ := a.classFor(96)
	var chunks []chunkRef
	for {
		c := a.alloc(ci)
		if c.data == nil {
			break
		}
		if len(c.data) != a.chunkSize(ci) {
			t.Fatalf("chunk len %d, want %d", len(c.data), a.chunkSize(ci))
		}
		if c.page == nil {
			t.Fatal("chunk must carry its page")
		}
		chunks = append(chunks, c)
	}
	wantChunks := (8192 / 4096) * (4096 / a.chunkSize(ci))
	if len(chunks) != wantChunks {
		t.Fatalf("allocated %d chunks, want %d", len(chunks), wantChunks)
	}
	// Free everything and re-allocate: must succeed without new pages.
	pages := a.PageBytes()
	for _, c := range chunks {
		a.release(ci, c)
	}
	for range chunks {
		if a.alloc(ci).data == nil {
			t.Fatal("re-alloc after free failed")
		}
	}
	if a.PageBytes() != pages {
		t.Fatalf("page bytes grew across free/realloc: %d -> %d", pages, a.PageBytes())
	}
}

func TestSlabMemoryLimitRespected(t *testing.T) {
	a, _ := newSlabAllocator(96, 1.25, 4096, 10000)
	ci, _ := a.classFor(500)
	for a.alloc(ci).data != nil {
	}
	if a.PageBytes() > 10000 {
		t.Fatalf("page bytes %d exceed limit 10000", a.PageBytes())
	}
	if a.canGrow() {
		t.Fatal("canGrow should be false at the limit")
	}
}

func TestSlabPageLiveTracking(t *testing.T) {
	a, _ := newSlabAllocator(96, 1.25, 4096, 8192)
	ci, _ := a.classFor(96)
	c1 := a.alloc(ci)
	c2 := a.alloc(ci)
	if c1.page != c2.page {
		t.Fatal("first two chunks should share one page")
	}
	if c1.page.live != 2 {
		t.Fatalf("live = %d, want 2", c1.page.live)
	}
	a.release(ci, c1)
	if c2.page.live != 1 {
		t.Fatalf("live after release = %d, want 1", c2.page.live)
	}
}

func TestSlabReassignMovesPage(t *testing.T) {
	a, _ := newSlabAllocator(96, 2.0, 4096, 8192) // room for exactly 2 pages
	small, _ := a.classFor(96)
	big, _ := a.classFor(3000)
	// Fill both pages with small chunks, then free them all.
	var refs []chunkRef
	for {
		c := a.alloc(small)
		if c.data == nil {
			break
		}
		refs = append(refs, c)
	}
	for _, c := range refs {
		a.release(small, c)
	}
	// big class cannot grow (limit reached) until a page is reassigned.
	if a.alloc(big).data != nil {
		t.Fatal("big class should be out of memory before reassignment")
	}
	page := a.freeDonor(big)
	if page == nil {
		t.Fatal("expected a free donor page")
	}
	if page.live != 0 {
		t.Fatalf("donor should be the empty page, live = %d", page.live)
	}
	if a.liveDonor(big) == nil {
		t.Fatal("liveDonor should also find a candidate")
	}
	if err := a.completeReassign(page, big); err != nil {
		t.Fatal(err)
	}
	if a.alloc(big).data == nil {
		t.Fatal("big class still starved after reassignment")
	}
	if a.Reassigns() != 1 {
		t.Fatalf("reassigns = %d", a.Reassigns())
	}
	// Small class must still work with its remaining page.
	if a.alloc(small).data == nil {
		t.Fatal("small class lost its remaining page")
	}
}

func TestSlabReassignRejectsLivePage(t *testing.T) {
	a, _ := newSlabAllocator(96, 1.25, 4096, 8192)
	ci, _ := a.classFor(96)
	c := a.alloc(ci)
	if err := a.completeReassign(c.page, ci+1); err == nil {
		t.Fatal("reassigning a live page must fail")
	}
}

func TestSlabInvalidConfig(t *testing.T) {
	cases := []struct {
		base, page int
		factor     float64
		limit      int64
	}{
		{0, 4096, 1.25, 1 << 20},
		{96, 0, 1.25, 1 << 20},
		{96, 4096, 1.0, 1 << 20},
		{96, 4096, 1.25, 0},
		{96, 1 << 20, 1.25, 4096}, // page larger than limit
	}
	for _, c := range cases {
		if _, err := newSlabAllocator(c.base, c.factor, c.page, c.limit); err == nil {
			t.Errorf("config %+v should be rejected", c)
		}
	}
}

func TestSlabChunksDoNotOverlapProperty(t *testing.T) {
	// Allocate chunks across classes, write a distinct pattern in each,
	// then verify no chunk's bytes were disturbed — i.e. chunks never
	// alias one another.
	a, _ := newSlabAllocator(64, 1.5, 4096, 64*1024)
	type alloc struct {
		class int
		chunk []byte
		fill  byte
	}
	var allocs []alloc
	f := func(sizes []uint16) bool {
		for _, raw := range sizes {
			size := int(raw%2000) + 1
			ci, ok := a.classFor(size)
			if !ok {
				continue
			}
			c := a.alloc(ci)
			if c.data == nil {
				continue
			}
			fill := byte(len(allocs)%251 + 1)
			for i := range c.data {
				c.data[i] = fill
			}
			allocs = append(allocs, alloc{ci, c.data, fill})
		}
		for _, al := range allocs {
			for _, b := range al.chunk {
				if b != al.fill {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAlign8(t *testing.T) {
	for in, want := range map[int]int{1: 8, 8: 8, 9: 16, 96: 96, 97: 104} {
		if got := align8(in); got != want {
			t.Errorf("align8(%d) = %d, want %d", in, got, want)
		}
	}
}
