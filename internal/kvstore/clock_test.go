package kvstore

import (
	"fmt"
	"testing"
)

// TestUptimeFollowsInjectedClock is the regression test for the wall
// clock that used to hide inside Stats(): uptime was computed with
// time.Since(start), so a store driven by a virtual clock still reported
// host-time uptime. It must follow the injected Clock exclusively.
func TestUptimeFollowsInjectedClock(t *testing.T) {
	now := int64(1_000)
	cfg := DefaultConfig(16 << 20)
	cfg.Clock = func() int64 { return now }
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if up := st.Stats().UptimeSeconds; up != 0 {
		t.Fatalf("uptime at birth = %d, want 0", up)
	}
	now = 1_042
	if up := st.Stats().UptimeSeconds; up != 42 {
		t.Fatalf("uptime = %d, want 42", up)
	}
}

// TestWallClockDefault checks that a nil Clock still yields a working
// store on the live-server path.
func TestWallClockDefault(t *testing.T) {
	st, err := New(DefaultConfig(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if st.Config().Clock == nil {
		t.Fatal("nil Clock not defaulted")
	}
	if err := st.Set("k", []byte("v"), 0, 60); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k"); !ok {
		t.Fatal("relative expiry against the wall clock lost the key")
	}
	if up := st.Stats().UptimeSeconds; up < 0 || up > 5 {
		t.Fatalf("implausible uptime %d for a fresh store", up)
	}
}

// TestBagsSecondChanceDeterministicUnderLogicalClock pins the property
// the eviction experiment depends on: with a logical clock, identical
// request streams against identical Bags-policy stores evict identically
// (byte-identical stats), independent of host timing.
func TestBagsSecondChanceDeterministicUnderLogicalClock(t *testing.T) {
	run := func() Stats {
		cfg := DefaultConfig(1 << 20)
		cfg.Mode = ModeGlobal
		cfg.Policy = PolicyBags
		var tick int64
		cfg.Clock = func() int64 { tick++; return tick }
		st, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		value := make([]byte, 4096)
		// Deterministic skewed stream: 4 of 5 requests hit 50 hot keys
		// (earning second chances), the rest sweep 1000 cold keys so the
		// 1MB budget keeps evicting.
		for i := 0; i < 6_000; i++ {
			var key string
			if i%5 != 0 {
				key = fmt.Sprintf("hot-%03d", i%50)
			} else {
				key = fmt.Sprintf("cold-%04d", (i/5)%1000)
			}
			if _, ok := st.Get(key); !ok {
				if err := st.Set(key, value, 0, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		return st.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("bags eviction not deterministic:\nrun 1: %+v\nrun 2: %+v", a, b)
	}
	if a.Evictions == 0 {
		t.Fatal("scenario never evicted; it does not exercise second-chance logic")
	}
}
