package kvstore

// Batched GETs. A multiget that executes its keys one at a time through
// Store.Get re-acquires a shard lock per key — for an N-key request on
// an S-shard store that is N acquisitions where S would do. GetBatch
// groups the keys by shard (the same fnv1a64 upper-bit placement
// shardFor uses), takes each involved shard's lock exactly once, serves
// all of that shard's keys under it, and returns results in request
// order. GetBatchInto is the byte-slice variant the protocol layer
// uses: keys stay tokens of the command line, values append into one
// caller-owned buffer, and all grouping state lives in a caller-owned
// scratch, so a steady-state multiget allocates nothing.

// BatchEntry is one key's result from GetBatch, in request order.
type BatchEntry struct {
	// Value is a private copy of the stored bytes (nil on miss).
	Value []byte
	Flags uint32
	CAS   uint64
	// Found distinguishes a miss from an empty value.
	Found bool
}

// GetBatch looks up every key and returns one entry per key, preserving
// request order (duplicate keys get duplicate entries). Each involved
// shard's lock is acquired exactly once, so an N-key batch costs at
// most min(N, Shards) lock acquisitions instead of N.
func (st *Store) GetBatch(keys []string) []BatchEntry {
	out := make([]BatchEntry, len(keys))
	if len(keys) == 0 {
		return out
	}
	n := len(keys)
	shardOf := make([]uint32, n)
	counts := make([]int32, len(st.shards))
	for i, k := range keys {
		s := uint32((fnv1a64(k) >> 48) & st.mask)
		shardOf[i] = s
		counts[s]++
	}
	// Counting sort: order holds key indices grouped by shard.
	cursor := make([]int32, len(st.shards))
	sum := int32(0)
	for s, c := range counts {
		cursor[s] = sum
		sum += c
	}
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		s := shardOf[i]
		order[cursor[s]] = int32(i)
		cursor[s]++
	}
	now := st.clock()
	pos := 0
	for s, c := range counts {
		if c == 0 {
			continue
		}
		sh := st.shards[s]
		sh.mu.Lock()
		st.readLocks.Add(1)
		for _, ki := range order[pos : pos+int(c)] {
			v, flags, cas, ok := sh.s.get(keys[ki], now)
			out[ki] = BatchEntry{Value: v, Flags: flags, CAS: cas, Found: ok}
		}
		sh.mu.Unlock()
		pos += int(c)
	}
	return out
}

// BatchResult locates one key's value inside the shared destination
// buffer of a GetBatchInto call: the value is dst[Start:End].
type BatchResult struct {
	Start, End int
	Flags      uint32
	CAS        uint64
	Found      bool
}

// BatchScratch holds the reusable grouping state of GetBatchInto. The
// zero value is ready to use; reusing one across calls makes the
// steady-state batch path allocation-free. A BatchScratch must not be
// shared between concurrent callers.
type BatchScratch struct {
	shardOf []uint32
	counts  []int32
	cursor  []int32
	order   []int32
}

// grow sizes the scratch for n keys over nShards shards without
// allocating once the high-water mark is reached.
func (scr *BatchScratch) grow(n, nShards int) {
	if cap(scr.shardOf) < n {
		scr.shardOf = make([]uint32, n)
		scr.order = make([]int32, n)
	}
	if cap(scr.counts) < nShards {
		scr.counts = make([]int32, nShards)
		scr.cursor = make([]int32, nShards)
	}
}

// GetBatchInto is the zero-alloc batched lookup for the server hot
// path: keys are byte-slice tokens, every found value is appended to
// dst, and out (reused, resliced to len(keys)) records each key's
// value span, flags, CAS and hit/miss in request order. Like GetBatch
// it acquires each involved shard's lock exactly once.
//
// The returned slices must be consumed before the next call that
// reuses dst, out or scr.
//
//kv3d:hotpath
//kv3d:aliases dst out
func (st *Store) GetBatchInto(dst []byte, keys [][]byte, out []BatchResult, scr *BatchScratch) ([]byte, []BatchResult) {
	n := len(keys)
	if cap(out) < n {
		out = make([]BatchResult, n)
	}
	out = out[:n]
	if n == 0 {
		return dst, out
	}
	scr.grow(n, len(st.shards))
	shardOf := scr.shardOf[:n]
	counts := scr.counts[:len(st.shards)]
	cursor := scr.cursor[:len(st.shards)]
	order := scr.order[:n]
	for i := range counts {
		counts[i] = 0
	}
	for i, k := range keys {
		s := uint32((fnv1a64Bytes(k) >> 48) & st.mask)
		shardOf[i] = s
		counts[s]++
	}
	sum := int32(0)
	for s, c := range counts {
		cursor[s] = sum
		sum += c
	}
	for i := 0; i < n; i++ {
		s := shardOf[i]
		order[cursor[s]] = int32(i)
		cursor[s]++
	}
	now := st.clock()
	pos := 0
	for s, c := range counts {
		if c == 0 {
			continue
		}
		sh := st.shards[s]
		sh.mu.Lock()
		st.readLocks.Add(1)
		for _, ki := range order[pos : pos+int(c)] {
			start := len(dst)
			v, flags, cas, ok := sh.s.getIntoBytes(dst, keys[ki], now)
			dst = v
			out[ki] = BatchResult{Start: start, End: len(dst), Flags: flags, CAS: cas, Found: ok}
		}
		sh.mu.Unlock()
		pos += int(c)
	}
	return dst, out
}

// SetOp is one mutation of a SetBatch: an unconditional store with
// Store.Set semantics. Value is borrowed for the duration of the call —
// the shard copies it into slab memory under its lock, so the caller
// may reuse the backing buffer as soon as SetBatch returns.
type SetOp struct {
	Key     string
	Value   []byte //kv3d:borrowed
	Flags   uint32
	Exptime int64
}

// SetBatch applies every op (grouped by shard, each involved shard's
// lock acquired exactly once) and returns one error slot per op in
// request order — nil on success, else the same error Store.Set would
// have returned. Duplicate keys apply in request order, so the last
// write wins, matching a sequential replay. errs is reused when its
// capacity suffices; scr carries the grouping scratch exactly as on
// GetBatchInto, so a steady-state batch allocates nothing.
//
// Expiry conversion reads the clock once for the whole batch: every op
// of one batch converts relative exptimes against the same "now", the
// moment the batch was admitted.
func (st *Store) SetBatch(ops []SetOp, errs []error, scr *BatchScratch) []error {
	n := len(ops)
	if cap(errs) < n {
		errs = make([]error, n)
	}
	errs = errs[:n]
	if n == 0 {
		return errs
	}
	scr.grow(n, len(st.shards))
	shardOf := scr.shardOf[:n]
	counts := scr.counts[:len(st.shards)]
	cursor := scr.cursor[:len(st.shards)]
	order := scr.order[:n]
	for i := range counts {
		counts[i] = 0
	}
	for i := range ops {
		s := uint32((fnv1a64(ops[i].Key) >> 48) & st.mask)
		shardOf[i] = s
		counts[s]++
	}
	sum := int32(0)
	for s, c := range counts {
		cursor[s] = sum
		sum += c
	}
	for i := 0; i < n; i++ {
		s := shardOf[i]
		order[cursor[s]] = int32(i)
		cursor[s]++
	}
	now := st.clock()
	clockAt := func() int64 { return now }
	pos := 0
	for s, c := range counts {
		if c == 0 {
			continue
		}
		sh := st.shards[s]
		sh.mu.Lock()
		for _, ki := range order[pos : pos+int(c)] {
			op := &ops[ki]
			abs := expiryToAbsAt(op.Exptime, clockAt)
			errs[ki] = sh.s.set(op.Key, op.Value, op.Flags, abs, now)
		}
		sh.mu.Unlock()
		pos += int(c)
	}
	return errs
}
