package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
)

func mkItem(key string) *item { return &item{key: key} }

func TestTableInsertLookup(t *testing.T) {
	tbl := newHashTable()
	tbl.insert(mkItem("a"))
	tbl.insert(mkItem("b"))
	if tbl.lookup("a") == nil || tbl.lookup("b") == nil {
		t.Fatal("inserted keys must be found")
	}
	if tbl.lookup("c") != nil {
		t.Fatal("absent key found")
	}
	if tbl.len() != 2 {
		t.Fatalf("len = %d", tbl.len())
	}
}

func TestTableRemove(t *testing.T) {
	tbl := newHashTable()
	tbl.insert(mkItem("x"))
	if tbl.remove("x") == nil {
		t.Fatal("remove of present key failed")
	}
	if tbl.remove("x") != nil {
		t.Fatal("second remove should return nil")
	}
	if tbl.lookup("x") != nil {
		t.Fatal("removed key still visible")
	}
	if tbl.len() != 0 {
		t.Fatalf("len = %d", tbl.len())
	}
}

func TestTableGrowsAndStaysConsistent(t *testing.T) {
	tbl := newHashTable()
	const n = 10_000
	for i := 0; i < n; i++ {
		tbl.insert(mkItem(fmt.Sprintf("key-%d", i)))
	}
	if len(tbl.buckets) <= initialBuckets {
		t.Fatalf("table never grew: %d buckets", len(tbl.buckets))
	}
	for i := 0; i < n; i++ {
		if tbl.lookup(fmt.Sprintf("key-%d", i)) == nil {
			t.Fatalf("key-%d lost after growth", i)
		}
	}
	if tbl.len() != n {
		t.Fatalf("len = %d, want %d", tbl.len(), n)
	}
}

func TestTableLookupDuringMigration(t *testing.T) {
	tbl := newHashTable()
	// Insert enough to trigger at least one rehash, then probe while the
	// migration is mid-flight.
	for i := 0; i < 100; i++ {
		tbl.insert(mkItem(fmt.Sprintf("k%d", i)))
		for j := 0; j <= i; j++ {
			if tbl.lookup(fmt.Sprintf("k%d", j)) == nil {
				t.Fatalf("k%d invisible at step %d (old=%v migrate=%d)", j, i, tbl.old != nil, tbl.migrate)
			}
		}
	}
}

func TestTableRemoveDuringMigration(t *testing.T) {
	tbl := newHashTable()
	const n = 200
	for i := 0; i < n; i++ {
		tbl.insert(mkItem(fmt.Sprintf("k%d", i)))
	}
	// Remove them all, interleaving lookups.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if tbl.remove(key) == nil {
			t.Fatalf("remove(%s) failed", key)
		}
		if tbl.lookup(key) != nil {
			t.Fatalf("%s visible after removal", key)
		}
	}
	if tbl.len() != 0 {
		t.Fatalf("len = %d after removing all", tbl.len())
	}
}

func TestTableForEachVisitsAll(t *testing.T) {
	tbl := newHashTable()
	const n = 500
	for i := 0; i < n; i++ {
		tbl.insert(mkItem(fmt.Sprintf("k%d", i)))
	}
	seen := make(map[string]bool)
	tbl.forEach(func(it *item) { seen[it.key] = true })
	if len(seen) != n {
		t.Fatalf("forEach visited %d items, want %d", len(seen), n)
	}
}

func TestFNVKnownVectors(t *testing.T) {
	// Standard FNV-1a 64 test vectors.
	cases := map[string]uint64{
		"":    14695981039346656037,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
	}
	for in, want := range cases {
		if got := fnv1a64(in); got != want {
			t.Errorf("fnv1a64(%q) = %#x, want %#x", in, got, want)
		}
	}
}

func TestTableModelEquivalenceProperty(t *testing.T) {
	// Drive the table and a map with the same random operation sequence;
	// they must agree at every step.
	type op struct {
		Insert bool
		Key    uint8
	}
	f := func(ops []op) bool {
		tbl := newHashTable()
		model := make(map[string]bool)
		for _, o := range ops {
			key := fmt.Sprintf("key-%d", o.Key)
			if o.Insert {
				if !model[key] {
					tbl.insert(mkItem(key))
					model[key] = true
				}
			} else {
				got := tbl.remove(key) != nil
				want := model[key]
				if got != want {
					return false
				}
				delete(model, key)
			}
			if tbl.len() != len(model) {
				return false
			}
		}
		for key := range model {
			if tbl.lookup(key) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
