package kvstore

import "time"

// WallClock is the real-time Clock used by the live server path when a
// Config does not inject one. Simulation and experiment code must never
// rely on this default: the determinism contract (see LINTING.md)
// requires sim-driven stores to inject a virtual clock so eviction and
// expiry decisions replay identically for a given seed.
func WallClock() int64 {
	return time.Now().Unix() //nolint:kv3d -- the one sanctioned wall-clock read: live-server default; sims inject Config.Clock
}
