// Package trace records simulated packet events and recovers per-request
// round-trip times from them, mirroring the paper's methodology (§5.3):
// gem5's Ethernet devices dumped a packet trace, and TShark extracted
// request RTTs. Our simulated NICs append records here and the analyzer
// computes the same RTTs, so measured TPS flows through the trace rather
// than through model internals.
package trace

import (
	"fmt"
	"sort"

	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

// Direction of a packet relative to the server.
type Direction int

const (
	// ClientToServer marks request traffic.
	ClientToServer Direction = iota
	// ServerToClient marks response traffic.
	ServerToClient
)

func (d Direction) String() string {
	if d == ClientToServer {
		return "c->s"
	}
	return "s->c"
}

// Record is one packet-train event. The simulation logs one record per
// burst (request or response) with the timestamp of its last frame,
// which is what RTT extraction keys on.
type Record struct {
	Time  sim.Time
	Dir   Direction
	Bytes int64
	ReqID uint64
}

// Buffer accumulates records.
type Buffer struct {
	recs []Record
}

// Append adds a record.
func (b *Buffer) Append(r Record) { b.recs = append(b.recs, r) }

// Len reports the number of records.
func (b *Buffer) Len() int { return len(b.recs) }

// Records returns the raw records. It is a view of live storage:
// callers must not mutate it, and it is invalidated by the next Reset
// (the backing array is reused). Use Snapshot to hold records past the
// buffer's lifetime.
func (b *Buffer) Records() []Record { return b.recs }

// Snapshot returns a copy of the records that stays valid across Reset
// and further appends.
func (b *Buffer) Snapshot() []Record {
	out := make([]Record, len(b.recs))
	copy(out, b.recs)
	return out
}

// Reset clears the buffer. Slices returned by Records become invalid;
// Snapshot copies survive.
func (b *Buffer) Reset() { b.recs = b.recs[:0] }

// RTT is one measured round trip.
type RTT struct {
	ReqID    uint64
	Start    sim.Time
	Duration sim.Duration
}

// ExtractRTTs pairs each request's first client->server record with its
// last server->client record. Requests without a completed response are
// skipped (in-flight at simulation end).
func ExtractRTTs(recs []Record) []RTT {
	starts := make(map[uint64]sim.Time)
	ends := make(map[uint64]sim.Time)
	for _, r := range recs {
		switch r.Dir {
		case ClientToServer:
			if t, ok := starts[r.ReqID]; !ok || r.Time < t {
				starts[r.ReqID] = r.Time
			}
		case ServerToClient:
			if t, ok := ends[r.ReqID]; !ok || r.Time > t {
				ends[r.ReqID] = r.Time
			}
		}
	}
	out := make([]RTT, 0, len(ends))
	for id, end := range ends {
		start, ok := starts[id]
		if !ok || end < start {
			continue
		}
		out = append(out, RTT{ReqID: id, Start: start, Duration: end.Sub(start)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// MeanRTT averages the extracted RTTs; it returns 0 for an empty set.
func MeanRTT(rtts []RTT) sim.Duration {
	if len(rtts) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rtts {
		sum += r.Duration.Seconds()
	}
	return sim.FromSeconds(sum / float64(len(rtts)))
}

// EmitSpans converts the packet trace into obs request spans: one async
// "rtt" span per completed round trip (id = request id) plus an instant
// per packet record on the given track. This bridges the paper's
// packet-level methodology into the Chrome-trace view, so a closed-loop
// stackmodel run can be inspected in Perfetto next to the open-loop
// serversim lanes. A nil tracer is a no-op.
func EmitSpans(t *obs.Tracer, track obs.TrackID, recs []Record) {
	if !t.Enabled() {
		return
	}
	for _, r := range recs {
		name := "pkt:c->s"
		if r.Dir == ServerToClient {
			name = "pkt:s->c"
		}
		t.Instant(track, name, r.Time)
	}
	for _, rtt := range ExtractRTTs(recs) {
		t.AsyncBegin("rtt", "rtt", rtt.ReqID, rtt.Start)
		t.AsyncEnd("rtt", "rtt", rtt.ReqID, rtt.Start.Add(rtt.Duration))
	}
}

// String renders a record like a one-line pcap summary.
func (r Record) String() string {
	return fmt.Sprintf("%v %s req=%d bytes=%d", sim.Duration(r.Time), r.Dir, r.ReqID, r.Bytes)
}
