package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

func TestExtractRTTsBasic(t *testing.T) {
	var b Buffer
	b.Append(Record{Time: 100, Dir: ClientToServer, ReqID: 1, Bytes: 64})
	b.Append(Record{Time: 500, Dir: ServerToClient, ReqID: 1, Bytes: 128})
	rtts := ExtractRTTs(b.Records())
	if len(rtts) != 1 {
		t.Fatalf("got %d rtts", len(rtts))
	}
	if rtts[0].ReqID != 1 || rtts[0].Duration != 400 {
		t.Fatalf("rtt = %+v", rtts[0])
	}
}

func TestExtractRTTsMultiPacket(t *testing.T) {
	// Multiple response records for one request: RTT keys on the last.
	recs := []Record{
		{Time: 100, Dir: ClientToServer, ReqID: 7},
		{Time: 300, Dir: ServerToClient, ReqID: 7},
		{Time: 900, Dir: ServerToClient, ReqID: 7},
	}
	rtts := ExtractRTTs(recs)
	if len(rtts) != 1 || rtts[0].Duration != 800 {
		t.Fatalf("rtts = %+v", rtts)
	}
}

func TestExtractRTTsSkipsIncomplete(t *testing.T) {
	recs := []Record{
		{Time: 100, Dir: ClientToServer, ReqID: 1},
		{Time: 200, Dir: ClientToServer, ReqID: 2},
		{Time: 400, Dir: ServerToClient, ReqID: 2},
		{Time: 50, Dir: ServerToClient, ReqID: 3}, // response w/o request
	}
	rtts := ExtractRTTs(recs)
	if len(rtts) != 1 || rtts[0].ReqID != 2 {
		t.Fatalf("rtts = %+v", rtts)
	}
}

func TestExtractRTTsSortedByStart(t *testing.T) {
	recs := []Record{
		{Time: 500, Dir: ClientToServer, ReqID: 2},
		{Time: 100, Dir: ClientToServer, ReqID: 1},
		{Time: 600, Dir: ServerToClient, ReqID: 2},
		{Time: 300, Dir: ServerToClient, ReqID: 1},
	}
	rtts := ExtractRTTs(recs)
	if len(rtts) != 2 || rtts[0].ReqID != 1 || rtts[1].ReqID != 2 {
		t.Fatalf("rtts not sorted by start: %+v", rtts)
	}
}

func TestMeanRTT(t *testing.T) {
	rtts := []RTT{{Duration: sim.Duration(100)}, {Duration: sim.Duration(300)}}
	if got := MeanRTT(rtts); got != 200 {
		t.Fatalf("mean = %v", got)
	}
	if MeanRTT(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestBufferReset(t *testing.T) {
	var b Buffer
	b.Append(Record{ReqID: 1})
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Time: 1000, Dir: ClientToServer, ReqID: 5, Bytes: 64}
	s := r.String()
	if !strings.Contains(s, "c->s") || !strings.Contains(s, "req=5") {
		t.Fatalf("record string = %q", s)
	}
	if !strings.Contains((Record{Dir: ServerToClient}).String(), "s->c") {
		t.Fatal("server direction string")
	}
}

func TestSnapshotSurvivesReset(t *testing.T) {
	var b Buffer
	b.Append(Record{Time: 1, Dir: ClientToServer, ReqID: 1})
	b.Append(Record{Time: 5, Dir: ServerToClient, ReqID: 1})
	snap := b.Snapshot()
	live := b.Records()
	b.Reset()
	b.Append(Record{Time: 9, Dir: ClientToServer, ReqID: 2})
	if len(snap) != 2 || snap[0].ReqID != 1 || snap[1].Time != 5 {
		t.Fatalf("snapshot corrupted by Reset: %v", snap)
	}
	// The live view aliases the reused backing array — this is exactly
	// the hazard Snapshot exists to avoid.
	if live[0].ReqID == 1 {
		t.Fatal("expected Records view to be clobbered after Reset+Append; the aliasing contract changed")
	}
}

func TestEmitSpans(t *testing.T) {
	recs := []Record{
		{Time: sim.Time(1 * sim.Microsecond), Dir: ClientToServer, ReqID: 7, Bytes: 24},
		{Time: sim.Time(4 * sim.Microsecond), Dir: ServerToClient, ReqID: 7, Bytes: 104},
		{Time: sim.Time(5 * sim.Microsecond), Dir: ClientToServer, ReqID: 8, Bytes: 24},
		// request 8 never completes: no rtt span.
	}
	tr := obs.NewTracer()
	EmitSpans(tr, tr.RegisterTrack("nic"), recs)
	// 3 packet instants + 1 begin/end pair for the completed request.
	if tr.Len() != 5 {
		t.Fatalf("emitted %d events, want 5", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
	// Nil tracer: no panic.
	EmitSpans(nil, 0, recs)
}
