package trace

import (
	"strings"
	"testing"

	"kv3d/internal/sim"
)

func TestExtractRTTsBasic(t *testing.T) {
	var b Buffer
	b.Append(Record{Time: 100, Dir: ClientToServer, ReqID: 1, Bytes: 64})
	b.Append(Record{Time: 500, Dir: ServerToClient, ReqID: 1, Bytes: 128})
	rtts := ExtractRTTs(b.Records())
	if len(rtts) != 1 {
		t.Fatalf("got %d rtts", len(rtts))
	}
	if rtts[0].ReqID != 1 || rtts[0].Duration != 400 {
		t.Fatalf("rtt = %+v", rtts[0])
	}
}

func TestExtractRTTsMultiPacket(t *testing.T) {
	// Multiple response records for one request: RTT keys on the last.
	recs := []Record{
		{Time: 100, Dir: ClientToServer, ReqID: 7},
		{Time: 300, Dir: ServerToClient, ReqID: 7},
		{Time: 900, Dir: ServerToClient, ReqID: 7},
	}
	rtts := ExtractRTTs(recs)
	if len(rtts) != 1 || rtts[0].Duration != 800 {
		t.Fatalf("rtts = %+v", rtts)
	}
}

func TestExtractRTTsSkipsIncomplete(t *testing.T) {
	recs := []Record{
		{Time: 100, Dir: ClientToServer, ReqID: 1},
		{Time: 200, Dir: ClientToServer, ReqID: 2},
		{Time: 400, Dir: ServerToClient, ReqID: 2},
		{Time: 50, Dir: ServerToClient, ReqID: 3}, // response w/o request
	}
	rtts := ExtractRTTs(recs)
	if len(rtts) != 1 || rtts[0].ReqID != 2 {
		t.Fatalf("rtts = %+v", rtts)
	}
}

func TestExtractRTTsSortedByStart(t *testing.T) {
	recs := []Record{
		{Time: 500, Dir: ClientToServer, ReqID: 2},
		{Time: 100, Dir: ClientToServer, ReqID: 1},
		{Time: 600, Dir: ServerToClient, ReqID: 2},
		{Time: 300, Dir: ServerToClient, ReqID: 1},
	}
	rtts := ExtractRTTs(recs)
	if len(rtts) != 2 || rtts[0].ReqID != 1 || rtts[1].ReqID != 2 {
		t.Fatalf("rtts not sorted by start: %+v", rtts)
	}
}

func TestMeanRTT(t *testing.T) {
	rtts := []RTT{{Duration: sim.Duration(100)}, {Duration: sim.Duration(300)}}
	if got := MeanRTT(rtts); got != 200 {
		t.Fatalf("mean = %v", got)
	}
	if MeanRTT(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestBufferReset(t *testing.T) {
	var b Buffer
	b.Append(Record{ReqID: 1})
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Time: 1000, Dir: ClientToServer, ReqID: 5, Bytes: 64}
	s := r.String()
	if !strings.Contains(s, "c->s") || !strings.Contains(s, "req=5") {
		t.Fatalf("record string = %q", s)
	}
	if !strings.Contains((Record{Dir: ServerToClient}).String(), "s->c") {
		t.Fatal("server direction string")
	}
}
