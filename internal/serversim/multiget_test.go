package serversim

import (
	"testing"

	"kv3d/internal/stackmodel"
)

// TestBatchSizeOneIsIdentical: BatchSize 0 and 1 must produce the very
// same run — same arrivals, same latency distribution — because k=1
// multiget service time is defined as the plain GET service time and
// nothing else in the model reads BatchSize.
func TestBatchSizeOneIsIdentical(t *testing.T) {
	base := mercuryBox(4, 8)
	base.OfferedTPS = 50_000
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.BatchSize = 1
	b, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Arrivals != b.Arrivals || plain.Completions != b.Completions ||
		plain.Latency != b.Latency || plain.CompletedTPS != b.CompletedTPS {
		t.Fatalf("BatchSize=1 run diverges from default:\n%+v\n%+v", plain, b)
	}
}

// TestBatchedKeyThroughputBeatsSingleKey: at the same per-stack load
// level, a 16-key multiget box serves far more keys per second than a
// single-key box — the open-loop view of the Figure 4 amortization.
func TestBatchedKeyThroughputBeatsSingleKey(t *testing.T) {
	single := mercuryBox(4, 8)
	nominalSingle, err := NominalTPS(single)
	if err != nil {
		t.Fatal(err)
	}
	single.OfferedTPS = nominalSingle * 0.6
	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}

	batched := mercuryBox(4, 8)
	batched.BatchSize = 16
	nominalBatched, err := NominalTPS(batched)
	if err != nil {
		t.Fatal(err)
	}
	if nominalBatched >= nominalSingle {
		t.Fatalf("batch nominal %.0f batches/s should be below single nominal %.0f req/s", nominalBatched, nominalSingle)
	}
	batched.OfferedTPS = nominalBatched * 0.6
	rb, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}

	singleKeys := rs.CompletedTPS
	batchedKeys := rb.CompletedTPS * 16
	if batchedKeys < 3*singleKeys {
		t.Fatalf("16-key batching should multiply key throughput: %.0f vs %.0f keys/s", batchedKeys, singleKeys)
	}
	// Batches take longer than single requests, so batched latency rises;
	// it must still be finite and mostly sub-ms at this load.
	if rb.SubMsFraction < 0.5 {
		t.Fatalf("batched sub-ms fraction %.2f implausibly low", rb.SubMsFraction)
	}
}

func TestBatchSizeRejectedForPuts(t *testing.T) {
	cfg := mercuryBox(2, 8)
	cfg.Op = stackmodel.Put
	cfg.BatchSize = 4
	cfg.OfferedTPS = 1000
	if _, err := Run(cfg); err == nil {
		t.Fatal("batched PUT accepted; multiget is a GET-only request class")
	}
}
