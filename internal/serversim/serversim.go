// Package serversim simulates a full 1.5U Mercury/Iridium box under
// open-loop load: Poisson request arrivals are routed to stacks by a
// consistent-hash ring (optionally with Zipf-skewed keys), each stack
// serves them from its pool of cores, and server-side latency is
// measured as queueing plus service. This answers the question the
// paper's closed-loop, single-outstanding-request methodology cannot:
// how much of the nominal (linear-scaled) throughput is usable before
// queueing blows the sub-millisecond SLA, and how much hot-key skew
// erodes it.
package serversim

import (
	"fmt"

	"kv3d/internal/cluster"
	"kv3d/internal/metrics"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
	"kv3d/internal/workload"
)

// Config describes one open-loop server experiment.
type Config struct {
	// Stack is the per-stack configuration (cores, cache, memory).
	Stack stackmodel.Config
	// Stacks is the number of stacks in the box.
	Stacks int
	// Op and ValueBytes shape every request.
	Op         stackmodel.Op
	ValueBytes int64
	// OfferedTPS is the open-loop arrival rate for the whole server.
	OfferedTPS float64
	// ZipfSkew skews key popularity (0 = uniform keys).
	ZipfSkew float64
	// Keys is the key-space size (default 100k).
	Keys int
	// VirtualNodes per stack on the routing ring (default 160).
	VirtualNodes int
	// Duration is the simulated time span (default 200ms).
	Duration sim.Duration
	// WarmupFraction of the duration is excluded from stats (default 0.2).
	WarmupFraction float64
	// Seed drives arrivals and key choice.
	Seed uint64
}

// Result reports the measured open-loop behaviour.
type Result struct {
	// OfferedTPS and CompletedTPS; a completed rate noticeably below
	// offered means the box is saturated (queues still growing at the
	// end of the run).
	OfferedTPS   float64
	CompletedTPS float64
	// Latency is the server-side sojourn time (queueing + service).
	Latency metrics.Summary
	// SubMsFraction is the share of measured requests under 1ms.
	SubMsFraction float64
	// HottestUtilization and MeanUtilization of the per-stack core pools.
	HottestUtilization float64
	MeanUtilization    float64
}

// Run executes the experiment.
func Run(cfg Config) (Result, error) {
	if err := cfg.Stack.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Stacks <= 0 {
		return Result{}, fmt.Errorf("serversim: need stacks > 0, got %d", cfg.Stacks)
	}
	if cfg.OfferedTPS <= 0 {
		return Result{}, fmt.Errorf("serversim: need a positive offered rate")
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 100_000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * sim.Millisecond
	}
	if cfg.WarmupFraction <= 0 || cfg.WarmupFraction >= 1 {
		cfg.WarmupFraction = 0.2
	}

	// Per-request service demand, from the calibrated stack model.
	ref, err := stackmodel.NewStack(cfg.Stack)
	if err != nil {
		return Result{}, err
	}
	service := ref.ServiceTime(cfg.Op, cfg.ValueBytes)

	s := sim.New()
	stacks := make([]*sim.Resource, cfg.Stacks)
	names := make([]string, cfg.Stacks)
	ring := cluster.NewRing(cfg.VirtualNodes)
	byName := make(map[string]*sim.Resource, cfg.Stacks)
	for i := range stacks {
		names[i] = fmt.Sprintf("stack-%02d", i)
		stacks[i] = sim.NewResource(s, names[i], cfg.Stack.CoresPerStack)
		ring.Add(names[i])
		byName[names[i]] = stacks[i]
	}

	rng := sim.NewRand(cfg.Seed + 1)
	var zipf *workload.Zipf
	if cfg.ZipfSkew > 0 {
		zipf, err = workload.NewZipf(cfg.ZipfSkew, cfg.Keys)
		if err != nil {
			return Result{}, err
		}
	}
	keyFor := func() string {
		rank := rng.Intn(cfg.Keys)
		if zipf != nil {
			rank = zipf.Sample(rng)
		}
		return fmt.Sprintf("key:%08d", rank)
	}

	hist := metrics.NewHistogram()
	warmEnd := sim.Time(float64(cfg.Duration) * cfg.WarmupFraction)
	end := sim.Time(cfg.Duration)
	completedInWindow := 0

	mean := sim.FromSeconds(1 / cfg.OfferedTPS)
	arrivals := sim.NewRand(cfg.Seed + 2)
	var arrive func()
	arrive = func() {
		now := s.Now()
		if now >= end {
			return
		}
		node, err := ring.Locate(keyFor())
		if err == nil {
			res := byName[node]
			start := now
			res.Acquire(service, func() {
				done := s.Now()
				if start >= warmEnd && start < end {
					hist.Record(int64(done.Sub(start)))
				}
				// Throughput counts completions inside the window —
				// counting by arrival would credit queued work that
				// has not been served yet.
				if done >= warmEnd && done < end {
					completedInWindow++
				}
			})
		}
		s.After(arrivals.Exp(mean), arrive)
	}
	s.After(arrivals.Exp(mean), arrive)

	// Run past the end so in-flight requests drain (bounded: 50 extra ms).
	s.RunUntil(end.Add(50 * sim.Millisecond))

	window := sim.Duration(end - warmEnd)
	var maxU, sumU float64
	for _, r := range stacks {
		u := r.Utilization(sim.Duration(s.Now()))
		sumU += u
		if u > maxU {
			maxU = u
		}
	}
	return Result{
		OfferedTPS:         cfg.OfferedTPS,
		CompletedTPS:       float64(completedInWindow) / window.Seconds(),
		Latency:            hist.Summarize(),
		SubMsFraction:      hist.FractionBelow(int64(sim.Millisecond)),
		HottestUtilization: maxU,
		MeanUtilization:    sumU / float64(len(stacks)),
	}, nil
}

// NominalTPS returns the linear-scaling capacity the paper reports:
// stacks x cores / service time.
func NominalTPS(cfg Config) (float64, error) {
	ref, err := stackmodel.NewStack(cfg.Stack)
	if err != nil {
		return 0, err
	}
	service := ref.ServiceTime(cfg.Op, cfg.ValueBytes)
	return float64(cfg.Stacks) * float64(cfg.Stack.CoresPerStack) / service.Seconds(), nil
}
