// Package serversim simulates a full 1.5U Mercury/Iridium box under
// open-loop load: Poisson request arrivals are routed to stacks by a
// consistent-hash ring (optionally with Zipf-skewed keys), each stack
// serves them from its pool of cores, and server-side latency is
// measured as queueing plus service. This answers the question the
// paper's closed-loop, single-outstanding-request methodology cannot:
// how much of the nominal (linear-scaled) throughput is usable before
// queueing blows the sub-millisecond SLA, and how much hot-key skew
// erodes it.
package serversim

import (
	"fmt"

	"kv3d/internal/cluster"
	"kv3d/internal/metrics"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
	"kv3d/internal/workload"
)

// Config describes one open-loop server experiment.
type Config struct {
	// Stack is the per-stack configuration (cores, cache, memory).
	Stack stackmodel.Config
	// Stacks is the number of stacks in the box.
	Stacks int
	// Op and ValueBytes shape every request.
	Op         stackmodel.Op
	ValueBytes int64
	// BatchSize turns each GET arrival into a k-key multiget (0 and 1
	// mean plain single-key requests — the arrival process, routing, and
	// results are then bit-identical to the pre-multiget model). With
	// k>1 every arrival demands ServiceTimeMultiget(k, ValueBytes), so
	// CompletedTPS counts batches and key throughput is CompletedTPS×k.
	// Only meaningful for Op == Get.
	BatchSize int
	// OfferedTPS is the open-loop arrival rate for the whole server.
	OfferedTPS float64
	// ZipfSkew skews key popularity (0 = uniform keys).
	ZipfSkew float64
	// Keys is the key-space size (default 100k).
	Keys int
	// VirtualNodes per stack on the routing ring (default 160).
	VirtualNodes int
	// Duration is the simulated time span (default 200ms).
	Duration sim.Duration
	// WarmupFraction of the duration is excluded from stats (default 0.2).
	WarmupFraction float64
	// Seed drives arrivals and key choice.
	Seed uint64

	// Trace, when non-nil, records the run for chrome://tracing /
	// Perfetto: one async span per request (with nested queue/service
	// phases), per-stack wait/serve lanes, and sampled queue-depth and
	// busy-core counters. Tracing is observation-only: it never
	// perturbs model event order, so results match an untraced run.
	Trace *obs.Tracer
	// Probes, when non-nil, receives run counters under the
	// "serversim." prefix (arrivals, completions, incomplete, per-stack
	// completions) plus "sim.events_dispatched".
	Probes *obs.Registry
	// SampleEvery is the tracer/probe sampling period for queue-depth
	// and busy-core time series (default 1ms of sim time).
	SampleEvery sim.Duration
}

// StackStats is the per-stack slice of the latency attribution.
type StackStats struct {
	// Name is the stack's ring identity ("stack-00", ...).
	Name string
	// Completed counts measured-window completions routed here.
	Completed int
	// QueueWait and Service split the measured sojourn time.
	QueueWait metrics.Summary
	Service   metrics.Summary
	// Utilization of this stack's core pool over the whole run.
	Utilization float64
	// MaxQueueLen is the queue's high-water mark.
	MaxQueueLen int
}

// Result reports the measured open-loop behaviour.
type Result struct {
	// OfferedTPS and CompletedTPS; a completed rate noticeably below
	// offered means the box is saturated (queues still growing at the
	// end of the run).
	OfferedTPS   float64
	CompletedTPS float64
	// Latency is the server-side sojourn time (queueing + service).
	Latency metrics.Summary
	// QueueWait and Service attribute the sojourn time: Latency is
	// their per-request sum, so a p99 dominated by QueueWait means the
	// box needs capacity, one dominated by Service means the stack
	// model itself is the floor.
	QueueWait metrics.Summary
	Service   metrics.Summary
	// SubMsFraction is the share of measured requests under 1ms.
	SubMsFraction float64
	// HottestUtilization and MeanUtilization of the per-stack core pools.
	HottestUtilization float64
	MeanUtilization    float64
	// Arrivals counts every generated request over the full run
	// (warmup included); Completions counts those that finished before
	// the bounded post-run drain gave up. IncompleteRequests is the
	// difference: anything still queued or in service after the 50ms
	// drain. A non-zero value is the direct signature of saturation —
	// previously these requests were silently dropped.
	Arrivals           int
	Completions        int
	IncompleteRequests int
	// PerStack is the attribution broken down by ring placement,
	// ordered by stack name.
	PerStack []StackStats
}

// recordPs is the one sanctioned crossing from kernel time into the
// unit-blind histogram layer: samples are recorded in picoseconds.
func recordPs(h *metrics.Histogram, d sim.Duration) {
	h.Record(int64(d.Ps()))
}

// Run executes the experiment.
func Run(cfg Config) (Result, error) {
	if err := cfg.Stack.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Stacks <= 0 {
		return Result{}, fmt.Errorf("serversim: need stacks > 0, got %d", cfg.Stacks)
	}
	if cfg.OfferedTPS <= 0 {
		return Result{}, fmt.Errorf("serversim: need a positive offered rate")
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 100_000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * sim.Millisecond
	}
	if cfg.WarmupFraction <= 0 || cfg.WarmupFraction >= 1 {
		cfg.WarmupFraction = 0.2
	}

	if cfg.BatchSize > 1 && cfg.Op != stackmodel.Get {
		return Result{}, fmt.Errorf("serversim: batch size %d only applies to GETs", cfg.BatchSize)
	}

	// Per-request service demand, from the calibrated stack model.
	ref, err := stackmodel.NewStack(cfg.Stack)
	if err != nil {
		return Result{}, err
	}
	service := ref.ServiceTime(cfg.Op, cfg.ValueBytes)
	if cfg.BatchSize > 1 {
		service = ref.ServiceTimeMultiget(cfg.BatchSize, cfg.ValueBytes)
	}

	s := sim.New()
	tr := cfg.Trace
	stacks := make([]*sim.Resource, cfg.Stacks)
	names := make([]string, cfg.Stacks)
	tracks := make([]obs.TrackID, cfg.Stacks)
	waitHists := make([]*metrics.Histogram, cfg.Stacks)
	serviceHists := make([]*metrics.Histogram, cfg.Stacks)
	perStackCompleted := make([]int, cfg.Stacks)
	ring := cluster.NewRing(cfg.VirtualNodes)
	byName := make(map[string]int, cfg.Stacks)
	for i := range stacks {
		names[i] = fmt.Sprintf("stack-%02d", i)
		stacks[i] = sim.NewResource(s, names[i], cfg.Stack.CoresPerStack)
		ring.Add(names[i])
		byName[names[i]] = i
		waitHists[i] = metrics.NewHistogram()
		serviceHists[i] = metrics.NewHistogram()
		if tr.Enabled() {
			tracks[i] = tr.RegisterTrack(names[i])
			obs.InstrumentResource(tr, tracks[i], stacks[i])
		}
	}
	obs.InstrumentSimulator(cfg.Probes, s)
	var arrivalsProbe, completionsProbe *obs.Counter
	if cfg.Probes != nil {
		arrivalsProbe = cfg.Probes.Counter("serversim.arrivals")
		completionsProbe = cfg.Probes.Counter("serversim.completions")
	}

	rng := sim.NewRand(cfg.Seed + 1)
	var zipf *workload.Zipf
	if cfg.ZipfSkew > 0 {
		zipf, err = workload.NewZipf(cfg.ZipfSkew, cfg.Keys)
		if err != nil {
			return Result{}, err
		}
	}
	keyFor := func() string {
		rank := rng.Intn(cfg.Keys)
		if zipf != nil {
			rank = zipf.Sample(rng)
		}
		return fmt.Sprintf("key:%08d", rank)
	}

	hist := metrics.NewHistogram()
	waitAll := metrics.NewHistogram()
	serviceAll := metrics.NewHistogram()
	warmEnd := sim.Time(float64(cfg.Duration) * cfg.WarmupFraction)
	end := sim.Time(cfg.Duration)
	completedInWindow := 0
	arrivalCount := 0
	completionCount := 0
	var reqID uint64

	// Queue-depth and busy-core time series per stack, sampled on the
	// event queue itself so samples land at deterministic sim-times.
	if tr.Enabled() {
		every := cfg.SampleEvery
		if every <= 0 {
			every = sim.Millisecond
		}
		sampler := obs.NewSampler(s, tr, every)
		for i := range stacks {
			r := stacks[i]
			sampler.Gauge(tracks[i], "serversim."+names[i]+".queue_depth",
				func() float64 { return float64(r.QueueLen()) })
			sampler.Gauge(tracks[i], "serversim."+names[i]+".busy_cores",
				func() float64 { return float64(r.Busy()) })
		}
		sampler.Start(end)
	}

	mean := sim.FromSeconds(1 / cfg.OfferedTPS)
	arrivalRNG := sim.NewRand(cfg.Seed + 2)
	var arrive func()
	arrive = func() {
		now := s.Now()
		if now >= end {
			return
		}
		node, err := ring.Locate(keyFor())
		if err == nil {
			idx := byName[node]
			arrivalCount++
			if arrivalsProbe != nil {
				arrivalsProbe.Add(1)
			}
			reqID++
			rid := reqID
			start := now
			tr.AsyncBegin("req", "request", rid, now)
			tr.Instant(tracks[idx], "route", now)
			stacks[idx].AcquireInfo(service, func(info sim.ServiceInfo) {
				done := info.Completed
				completionCount++
				if completionsProbe != nil {
					completionsProbe.Add(1)
				}
				if tr.Enabled() {
					if info.Wait() > 0 {
						tr.AsyncBegin("req", "queue", rid, info.Enqueued)
						tr.AsyncEnd("req", "queue", rid, info.Started)
					}
					tr.AsyncBegin("req", "service", rid, info.Started)
					tr.AsyncEnd("req", "service", rid, info.Completed)
					tr.AsyncEnd("req", "request", rid, info.Completed)
				}
				if start >= warmEnd && start < end {
					recordPs(hist, done.Sub(start))
					recordPs(waitAll, info.Wait())
					recordPs(serviceAll, info.Service())
					recordPs(waitHists[idx], info.Wait())
					recordPs(serviceHists[idx], info.Service())
					perStackCompleted[idx]++
				}
				// Throughput counts completions inside the window —
				// counting by arrival would credit queued work that
				// has not been served yet.
				if done >= warmEnd && done < end {
					completedInWindow++
				}
			})
		}
		s.After(arrivalRNG.Exp(mean), arrive)
	}
	s.After(arrivalRNG.Exp(mean), arrive)

	// Run past the end so in-flight requests drain (bounded: 50 extra ms).
	// Requests still unfinished after the bound are not silently lost:
	// they surface as IncompleteRequests.
	s.RunUntil(end.Add(50 * sim.Millisecond))

	window := sim.Duration(end - warmEnd)
	span := sim.Duration(s.Now())
	perStack := make([]StackStats, cfg.Stacks)
	var maxU, sumU float64
	for i, r := range stacks {
		u := r.Utilization(span)
		sumU += u
		if u > maxU {
			maxU = u
		}
		perStack[i] = StackStats{
			Name:        names[i],
			Completed:   perStackCompleted[i],
			QueueWait:   waitHists[i].Summarize(),
			Service:     serviceHists[i].Summarize(),
			Utilization: u,
			MaxQueueLen: r.MaxQueueLen(),
		}
		if cfg.Probes != nil {
			cfg.Probes.Counter("serversim." + names[i] + ".completed").Add(int64(perStackCompleted[i]))
		}
	}
	incomplete := arrivalCount - completionCount
	if cfg.Probes != nil {
		cfg.Probes.Counter("serversim.incomplete").Add(int64(incomplete))
	}
	return Result{
		OfferedTPS:         cfg.OfferedTPS,
		CompletedTPS:       float64(completedInWindow) / window.Seconds(),
		Latency:            hist.Summarize(),
		QueueWait:          waitAll.Summarize(),
		Service:            serviceAll.Summarize(),
		SubMsFraction:      hist.FractionBelow(int64(sim.Millisecond.Ps())),
		HottestUtilization: maxU,
		MeanUtilization:    sumU / float64(len(stacks)),
		Arrivals:           arrivalCount,
		Completions:        completionCount,
		IncompleteRequests: incomplete,
		PerStack:           perStack,
	}, nil
}

// NominalTPS returns the linear-scaling capacity the paper reports:
// stacks x cores / service time. With BatchSize > 1 the rate is in
// batches per second, matching Result.CompletedTPS.
func NominalTPS(cfg Config) (float64, error) {
	ref, err := stackmodel.NewStack(cfg.Stack)
	if err != nil {
		return 0, err
	}
	service := ref.ServiceTime(cfg.Op, cfg.ValueBytes)
	if cfg.BatchSize > 1 {
		service = ref.ServiceTimeMultiget(cfg.BatchSize, cfg.ValueBytes)
	}
	return float64(cfg.Stacks) * float64(cfg.Stack.CoresPerStack) / service.Seconds(), nil
}
