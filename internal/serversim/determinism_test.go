package serversim

import (
	"fmt"
	"testing"
)

// renderResult formats every field of a Result, including the full
// latency summary, so two runs can be compared byte-for-byte. %#v keeps
// exact float bit patterns visible (no rounding that could mask drift).
func renderResult(r Result) string {
	return fmt.Sprintf("%#v", r)
}

// TestRunByteIdenticalForSameSeed is the determinism contract for the
// open-loop server simulation: the same Config (same seed) must produce
// byte-identical RTT/TPS output. This is what kv3d-lint's determinism
// check protects — one time.Now or global-rand call anywhere under
// internal/serversim breaks this test.
func TestRunByteIdenticalForSameSeed(t *testing.T) {
	cfg := mercuryBox(4, 4)
	nominal, err := NominalTPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OfferedTPS = nominal * 0.6
	cfg.ZipfSkew = 0.99 // exercise the Zipf sampler's stream too
	cfg.Keys = 10_000

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := renderResult(a), renderResult(b); ra != rb {
		t.Fatalf("same seed, different output:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", ra, rb)
	}
}

// TestRunSeedActuallyDrivesOutcome guards against the degenerate way to
// pass the test above (ignoring the seed entirely): different seeds must
// produce different arrival streams and therefore different latency
// samples.
func TestRunSeedActuallyDrivesOutcome(t *testing.T) {
	cfg := mercuryBox(4, 4)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.6

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 424242
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(a) == renderResult(b) {
		t.Fatal("different seeds produced identical output; the seed is being ignored")
	}
}
