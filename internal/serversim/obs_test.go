package serversim

import (
	"testing"

	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

// TestAttributionSumsToLatency checks the latency split: per request,
// sojourn = queueing + service, so the means must add up and the
// per-stack service distribution must sit at the configured demand.
func TestAttributionSumsToLatency(t *testing.T) {
	cfg := mercuryBox(4, 4)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.7
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.QueueWait.Count != r.Latency.Count || r.Service.Count != r.Latency.Count {
		t.Fatalf("attribution counts %d/%d vs latency %d",
			r.QueueWait.Count, r.Service.Count, r.Latency.Count)
	}
	sum := r.QueueWait.Mean + r.Service.Mean
	if diff := sum - r.Latency.Mean; diff > r.Latency.Mean*0.001 || diff < -r.Latency.Mean*0.001 {
		t.Fatalf("wait %.0f + service %.0f != latency %.0f", r.QueueWait.Mean, r.Service.Mean, r.Latency.Mean)
	}
	// Service demand is deterministic per request: min == max across
	// every stack (one op type, one value size).
	for _, st := range r.PerStack {
		if st.Completed == 0 {
			continue
		}
		if st.Service.P50 != r.PerStack[0].Service.P50 {
			t.Fatalf("service time differs across stacks: %v", r.PerStack)
		}
	}
	if r.MeanUtilization > 0.8 {
		t.Fatalf("utilization %v too high for attribution check", r.MeanUtilization)
	}
}

// TestIncompleteRequestsVisibleUnderOverload is the satellite fix: a
// saturated box must report the requests the bounded drain abandoned
// instead of silently dropping them from the accounting.
func TestIncompleteRequestsVisibleUnderOverload(t *testing.T) {
	cfg := mercuryBox(2, 2)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 3
	cfg.Duration = 100 * sim.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrivals != r.Completions+r.IncompleteRequests {
		t.Fatalf("accounting broken: %d arrivals, %d completions, %d incomplete",
			r.Arrivals, r.Completions, r.IncompleteRequests)
	}
	// 3x overload for 100ms with a 50ms drain: the backlog cannot clear.
	if r.IncompleteRequests == 0 {
		t.Fatal("3x overload drained completely; IncompleteRequests is not measuring")
	}
}

// TestLightLoadCompletesEverything is the complement: with ample
// capacity the drain finishes every request.
func TestLightLoadCompletesEverything(t *testing.T) {
	cfg := mercuryBox(4, 4)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.IncompleteRequests != 0 {
		t.Fatalf("light load left %d of %d requests incomplete", r.IncompleteRequests, r.Arrivals)
	}
	if r.Arrivals == 0 || r.Completions != r.Arrivals {
		t.Fatalf("arrivals %d, completions %d", r.Arrivals, r.Completions)
	}
}

// TestTracingDoesNotPerturbResults runs the same config with and
// without a tracer and demands identical measurements — observation
// must be free of observer effects on the model.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	cfg := mercuryBox(4, 4)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.8
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := cfg
	traced.Trace = obs.NewTracer()
	traced.Probes = obs.NewRegistry()
	withObs, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(plain) != renderResult(withObs) {
		t.Fatalf("tracing changed the result:\n%s\nvs\n%s", renderResult(plain), renderResult(withObs))
	}
	if traced.Trace.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
}

// TestProbesMatchResult checks the registry counters agree with the
// Result accounting — the same numbers the metrics endpoint and -json
// outputs read.
func TestProbesMatchResult(t *testing.T) {
	cfg := mercuryBox(2, 4)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.5
	cfg.Probes = obs.NewRegistry()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range cfg.Probes.Snapshot() {
		byName[p.Name] = p.Value
	}
	if got := byName["serversim.arrivals"]; got != float64(r.Arrivals) {
		t.Fatalf("arrivals probe %v, result %d", got, r.Arrivals)
	}
	if got := byName["serversim.completions"]; got != float64(r.Completions) {
		t.Fatalf("completions probe %v, result %d", got, r.Completions)
	}
	if got := byName["serversim.incomplete"]; got != float64(r.IncompleteRequests) {
		t.Fatalf("incomplete probe %v, result %d", got, r.IncompleteRequests)
	}
	if byName["sim.events_dispatched"] == 0 {
		t.Fatal("dispatch hook probe did not count")
	}
	var perStack float64
	for _, st := range r.PerStack {
		perStack += byName["serversim."+st.Name+".completed"]
		if byName["serversim."+st.Name+".completed"] != float64(st.Completed) {
			t.Fatalf("stack %s probe mismatch", st.Name)
		}
	}
}
