package serversim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenConfig is a deliberately tiny box (2 stacks x 1 core, 2ms) so
// the golden trace stays a few KB while still exercising every event
// kind: request/queue/service async spans, per-stack wait/serve lanes,
// route instants, and sampled queue-depth/busy counters.
func goldenConfig() Config {
	cfg := mercuryBox(2, 1)
	cfg.OfferedTPS = 15_000
	cfg.Duration = 2 * sim.Millisecond
	cfg.SampleEvery = 200 * sim.Microsecond
	cfg.Seed = 7
	return cfg
}

func runGoldenTrace(t *testing.T) []byte {
	t.Helper()
	cfg := goldenConfig()
	cfg.Trace = obs.NewTracer()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden extends the determinism suite from results to traces:
// a fixed-seed run must serialize to byte-identical, Perfetto-loadable
// trace JSON, pinned against a checked-in golden file. Regenerate with
//
//	go test ./internal/serversim -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	got := runGoldenTrace(t)

	// Byte-identity across two in-process runs first: a failure here is
	// nondeterminism; a failure only against the file is drift (fix the
	// change or regenerate deliberately).
	if again := runGoldenTrace(t); !bytes.Equal(got, again) {
		t.Fatal("same seed produced different trace bytes across runs")
	}
	if !json.Valid(got) {
		t.Fatal("trace is not valid JSON")
	}

	path := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace drifted from golden (len %d vs %d); run with -update if intended",
			len(got), len(want))
	}
}

// TestTraceGoldenContent sanity-checks the golden run's trace contains
// the span kinds the tentpole promises, independent of exact bytes.
func TestTraceGoldenContent(t *testing.T) {
	got := runGoldenTrace(t)
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph+"/"+ev.Name]++
	}
	for _, want := range []string{
		"b/request", "e/request", "b/service", "e/service",
		"X/serve", "i/route",
	} {
		if counts[want] == 0 {
			t.Fatalf("golden trace missing %q events: %v", want, counts)
		}
	}
	// Sampled counters: per-stack queue depth must be present.
	if counts["C/serversim.stack-00.queue_depth"] == 0 {
		t.Fatalf("no sampled queue-depth counters: %v", counts)
	}
	if counts["b/request"] != counts["e/request"] {
		t.Fatalf("unbalanced request spans: %v", counts)
	}
}
