package serversim

import (
	"testing"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func mercuryBox(stacks, cores int) Config {
	return Config{
		Stack: stackmodel.Config{
			Core:          cpu.CortexA7(),
			Cache:         cache.L2MB2(),
			Mem:           memmodel.MustDRAM3D(10 * sim.Nanosecond),
			CoresPerStack: cores,
		},
		Stacks:     stacks,
		Op:         stackmodel.Get,
		ValueBytes: 64,
		Seed:       1,
	}
}

func TestRunValidation(t *testing.T) {
	cfg := mercuryBox(4, 8)
	cfg.Stacks = 0
	cfg.OfferedTPS = 1000
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero stacks accepted")
	}
	cfg = mercuryBox(4, 8)
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero offered rate accepted")
	}
}

func TestLightLoadLatencyIsServiceTime(t *testing.T) {
	cfg := mercuryBox(8, 8)
	nominal, err := NominalTPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OfferedTPS = nominal * 0.05
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := stackmodel.NewStack(cfg.Stack)
	service := ref.ServiceTime(stackmodel.Get, 64)
	// At 5% load, queueing is negligible: p50 ~ service time.
	if r.Latency.P50 > int64(service)*3/2 {
		t.Fatalf("light-load p50 %v >> service %v", sim.Duration(r.Latency.P50), service)
	}
	if r.SubMsFraction < 0.99 {
		t.Fatalf("light load must be sub-ms, got %.2f", r.SubMsFraction)
	}
	// Throughput tracks the offered rate (Poisson noise allowed).
	if r.CompletedTPS < r.OfferedTPS*0.9 || r.CompletedTPS > r.OfferedTPS*1.1 {
		t.Fatalf("completed %.0f vs offered %.0f", r.CompletedTPS, r.OfferedTPS)
	}
}

func TestQueueingGrowsNearSaturation(t *testing.T) {
	cfg := mercuryBox(8, 8)
	nominal, _ := NominalTPS(cfg)

	at := func(frac float64) Result {
		c := cfg
		c.OfferedTPS = nominal * frac
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	light := at(0.3)
	heavy := at(0.9)
	if heavy.Latency.P99 <= light.Latency.P99 {
		t.Fatalf("p99 must grow with load: %v -> %v",
			sim.Duration(light.Latency.P99), sim.Duration(heavy.Latency.P99))
	}
	if heavy.MeanUtilization <= light.MeanUtilization {
		t.Fatal("utilization must grow with load")
	}
}

func TestOverloadCapsThroughput(t *testing.T) {
	cfg := mercuryBox(4, 8)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 1.5
	cfg.Duration = 100 * sim.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletedTPS > nominal*1.1 {
		t.Fatalf("completed %.0f exceeds capacity %.0f", r.CompletedTPS, nominal)
	}
	if r.MeanUtilization < 0.9 {
		t.Fatalf("overloaded box should be ~fully utilized, got %.2f", r.MeanUtilization)
	}
}

func TestSkewErodesUsableCapacity(t *testing.T) {
	// At 70% of nominal load, uniform traffic holds the SLA; heavy
	// Zipf skew saturates the hottest stack and latency explodes.
	cfg := mercuryBox(16, 8)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.7
	cfg.Keys = 10_000

	uniform, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	skewed := cfg
	skewed.ZipfSkew = 1.2
	hot, err := Run(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if hot.HottestUtilization <= uniform.HottestUtilization {
		t.Fatal("skew must concentrate load")
	}
	if hot.SubMsFraction >= uniform.SubMsFraction {
		t.Fatalf("skew should hurt the SLA: %.2f vs %.2f", hot.SubMsFraction, uniform.SubMsFraction)
	}
}

func TestNominalMatchesLinearScaling(t *testing.T) {
	cfg := mercuryBox(96, 32)
	nominal, err := NominalTPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 96x32 A7 cores at ~11K TPS within the server (no wire): the
	// nominal capacity must be in the tens of millions.
	if nominal < 25e6 || nominal > 50e6 {
		t.Fatalf("nominal = %.1fM", nominal/1e6)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := mercuryBox(4, 4)
	nominal, _ := NominalTPS(cfg)
	cfg.OfferedTPS = nominal * 0.5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompletedTPS != b.CompletedTPS || a.Latency.P99 != b.Latency.P99 {
		t.Fatal("serversim must be deterministic for a fixed seed")
	}
}
