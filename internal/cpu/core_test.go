package cpu

import (
	"strings"
	"testing"

	"kv3d/internal/sim"
)

func TestCortexA7Parameters(t *testing.T) {
	c := CortexA7()
	if c.Kind != KindA7 || c.FreqHz != 1e9 {
		t.Fatalf("A7 = %+v", c)
	}
	if c.PowerW != 0.100 || c.AreaMM2 != 0.58 {
		t.Fatalf("A7 Table 1 figures wrong: %+v", c)
	}
	if c.OutOfOrder {
		t.Fatal("A7 is in-order")
	}
}

func TestCortexA15Frequencies(t *testing.T) {
	c1, err := CortexA15(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if c1.PowerW != 0.600 {
		t.Fatalf("A15@1GHz power = %v", c1.PowerW)
	}
	c15, err := CortexA15(1.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if c15.PowerW != 1.000 {
		t.Fatalf("A15@1.5GHz power = %v", c15.PowerW)
	}
	if _, err := CortexA15(2e9); err == nil {
		t.Fatal("unsupported frequency accepted")
	}
	if !c1.OutOfOrder {
		t.Fatal("A15 is out-of-order")
	}
}

func TestMustCortexA15Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCortexA15(3GHz) should panic")
		}
	}()
	MustCortexA15(3e9)
}

func TestComputeTime(t *testing.T) {
	a7 := CortexA7()
	// 400 instructions at IPC 0.4 @1GHz = 1000 cycles = 1us.
	got := a7.ComputeTime(400)
	if got != sim.Microsecond {
		t.Fatalf("ComputeTime(400) = %v, want 1us", got)
	}
	if a7.ComputeTime(0) != 0 || a7.ComputeTime(-5) != 0 {
		t.Fatal("non-positive instruction counts should take no time")
	}
}

func TestA15FasterThanA7(t *testing.T) {
	a7, a15 := CortexA7(), MustCortexA15(1e9)
	r := a7.ComputeTime(10000).Seconds() / a15.ComputeTime(10000).Seconds()
	if r < 2.5 || r > 3.5 {
		t.Fatalf("A15/A7 compute ratio = %.2f, paper says ~3x", r)
	}
}

func TestStallTimeAppliesMLP(t *testing.T) {
	a15 := MustCortexA15(1e9)
	got := a15.StallTime(100 * sim.Microsecond)
	if got != 50*sim.Microsecond {
		t.Fatalf("MLP=2 stall = %v, want 50us", got)
	}
	a7 := CortexA7()
	if a7.StallTime(100*sim.Microsecond) != 100*sim.Microsecond {
		t.Fatal("MLP=1 must not shrink stalls")
	}
	if a7.StallTime(-5) != 0 {
		t.Fatal("negative stall")
	}
}

func TestStreamTime(t *testing.T) {
	a7 := CortexA7() // 240 MB/s
	got := a7.StreamTime(240_000_000)
	if got < sim.Second-sim.Millisecond || got > sim.Second+sim.Millisecond {
		t.Fatalf("StreamTime(200MB) = %v, want ~1s", got)
	}
	if a7.StreamTime(0) != 0 {
		t.Fatal("zero bytes should take no time")
	}
}

func TestCyclePeriod(t *testing.T) {
	if got := CortexA7().CyclePeriod(); got != sim.Nanosecond {
		t.Fatalf("1GHz cycle = %v", got)
	}
}

func TestNames(t *testing.T) {
	if got := MustCortexA15(1.5e9).Name(); !strings.Contains(got, "A15") || !strings.Contains(got, "1.5") {
		t.Fatalf("name = %q", got)
	}
	if Kind(42).String() != "unknown-core" {
		t.Fatal("unknown kind name")
	}
	if Xeon().Kind.String() != "Xeon" {
		t.Fatal("xeon name")
	}
}

func TestXeonOutclassesEmbedded(t *testing.T) {
	x, a7 := Xeon(), CortexA7()
	if x.ComputeTime(10000) >= a7.ComputeTime(10000) {
		t.Fatal("Xeon should be faster per instruction block")
	}
	if x.PowerW <= a7.PowerW*10 {
		t.Fatal("Xeon should cost far more power")
	}
}
