// Package cpu provides the core timing models used by the Mercury and
// Iridium stack simulations: ARM Cortex-A7 (in-order), Cortex-A15
// (out-of-order) and a Xeon-class server core for baselines.
//
// The model is request-level, matching the paper's methodology: a
// request executes instruction blocks whose time is instructions /
// effective-IPC / frequency, plus memory stall time divided by the
// core's memory-level parallelism (OoO cores overlap misses, in-order
// cores mostly cannot). Effective IPC values reflect scale-out-workload
// behaviour (low ILP, high icache pressure — Ferdman et al.), not peak
// issue width; they are calibrated so that the paper's reported ratios
// hold (A15 ≈ 3× A7 with an L2 at small requests, 1–2× without).
package cpu

import (
	"fmt"

	"kv3d/internal/sim"
)

// Kind enumerates the modeled core types.
type Kind int

const (
	KindA7 Kind = iota
	KindA15
	KindXeon
)

func (k Kind) String() string {
	switch k {
	case KindA7:
		return "Cortex-A7"
	case KindA15:
		return "Cortex-A15"
	case KindXeon:
		return "Xeon"
	default:
		return "unknown-core"
	}
}

// Core is an immutable description of one CPU core.
type Core struct {
	Kind Kind
	// FreqHz is the clock frequency.
	FreqHz float64
	// IPC is the effective instructions-per-cycle on memcached-like
	// code (network stack dominated, low ILP).
	IPC float64
	// MLP is the memory-level parallelism: how many outstanding misses
	// the core overlaps. Stall time divides by this.
	MLP float64
	// StreamBytesPerSec is the effective per-core rate for bulk data
	// movement through the kernel network path (copy + checksum),
	// largely memory-bound and therefore only weakly frequency-scaled.
	StreamBytesPerSec float64
	// PowerW and AreaMM2 are the Table 1 figures.
	PowerW  float64
	AreaMM2 float64
	// OutOfOrder is informational (A15, Xeon).
	OutOfOrder bool
}

// Table 1 power/area constants from the paper.
const (
	a7PowerW      = 0.100 // A7 @1GHz
	a15PowerW1G   = 0.600 // A15 @1GHz
	a15PowerW15G  = 1.000 // A15 @1.5GHz
	a7AreaMM2     = 0.58
	a15AreaMM2    = 2.82
	xeonPowerW    = 12.0 // per core, conventional server class
	xeonAreaMM2   = 20.0
	xeonFreqHz    = 2.5e9
	xeonIPC       = 1.6
	xeonMLP       = 4.0
	xeonStreamBps = 3.0e9
)

// CortexA7 returns the 1GHz in-order A7 model used by Mercury/Iridium.
func CortexA7() Core {
	return Core{
		Kind:              KindA7,
		FreqHz:            1e9,
		IPC:               0.40,
		MLP:               1.0,
		StreamBytesPerSec: 240e6,
		PowerW:            a7PowerW,
		AreaMM2:           a7AreaMM2,
	}
}

// CortexA15 returns the out-of-order A15 model at 1.0 or 1.5 GHz.
// Other frequencies are rejected: the paper (and the Table 1 power
// numbers) only covers these two operating points.
func CortexA15(freqHz float64) (Core, error) {
	c := Core{
		Kind:              KindA15,
		IPC:               1.15,
		MLP:               2.0,
		OutOfOrder:        true,
		AreaMM2:           a15AreaMM2,
		StreamBytesPerSec: 360e6,
	}
	switch freqHz {
	case 1e9:
		c.FreqHz = 1e9
		c.PowerW = a15PowerW1G
	case 1.5e9:
		c.FreqHz = 1.5e9
		c.PowerW = a15PowerW15G
		c.StreamBytesPerSec = 400e6 // modest gain: the path is memory-bound
	default:
		return Core{}, fmt.Errorf("cpu: A15 supports 1GHz or 1.5GHz, got %.2gHz", freqHz)
	}
	return c, nil
}

// MustCortexA15 panics on an unsupported frequency; for tables where the
// frequency is a literal.
func MustCortexA15(freqHz float64) Core {
	c, err := CortexA15(freqHz)
	if err != nil {
		panic(err)
	}
	return c
}

// Xeon returns a conventional out-of-order server core for the baseline
// comparisons (Table 4's "state-of-the-art server").
func Xeon() Core {
	return Core{
		Kind:              KindXeon,
		FreqHz:            xeonFreqHz,
		IPC:               xeonIPC,
		MLP:               xeonMLP,
		StreamBytesPerSec: xeonStreamBps,
		PowerW:            xeonPowerW,
		AreaMM2:           xeonAreaMM2,
		OutOfOrder:        true,
	}
}

// Name renders e.g. "Cortex-A15 @1.5GHz".
func (c Core) Name() string {
	return fmt.Sprintf("%s @%.3gGHz", c.Kind, c.FreqHz/1e9)
}

// CyclePeriod returns the duration of one clock cycle.
func (c Core) CyclePeriod() sim.Duration {
	return sim.FromSeconds(1 / c.FreqHz)
}

// CycleTime converts a (possibly fractional) cycle count on this core
// into time, going through the typed sim.CyclesToPs seam so the
// cycles→picoseconds crossing is explicit.
func (c Core) CycleTime(cycles float64) sim.Duration {
	return sim.CyclesToPs(cycles, c.CyclePeriod()).Duration()
}

// ComputeTime returns the time to execute the given instruction count at
// the core's effective IPC.
func (c Core) ComputeTime(instructions float64) sim.Duration {
	if instructions <= 0 {
		return 0
	}
	return sim.FromSeconds(instructions / c.IPC / c.FreqHz)
}

// MLPWindow is the longest single-miss latency an out-of-order window
// can still overlap with other misses; beyond it (Flash-class latencies)
// the ROB fills and the core serializes, so MLP degrades to 1.
const MLPWindow = 500 * sim.Nanosecond

// EffectiveMLP returns the usable memory-level parallelism for misses of
// the given latency.
func (c Core) EffectiveMLP(missLatency sim.Duration) float64 {
	mlp := c.MLP
	if mlp < 1 {
		mlp = 1
	}
	if missLatency > MLPWindow {
		return 1
	}
	return mlp
}

// StallTime converts an aggregate miss-latency sum into core stall time,
// applying the core's memory-level parallelism for misses of the given
// individual latency.
func (c Core) StallTime(totalMissLatency sim.Duration) sim.Duration {
	return c.StallTimeAt(totalMissLatency, 0)
}

// StallTimeAt is StallTime with the per-miss latency made explicit so
// Flash-class misses are not overlapped.
func (c Core) StallTimeAt(totalMissLatency, perMiss sim.Duration) sim.Duration {
	if totalMissLatency <= 0 {
		return 0
	}
	return sim.FromSeconds(totalMissLatency.Seconds() / c.EffectiveMLP(perMiss))
}

// StreamTime returns the time to move n bytes through the core's bulk
// data path.
func (c Core) StreamTime(bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(bytes) / c.StreamBytesPerSec)
}
