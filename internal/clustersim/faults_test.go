package clustersim

import (
	"testing"

	"kv3d/internal/faults"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

func faultCfg(requests int) Config {
	return Config{
		Stacks:       8,
		VirtualNodes: 128,
		Keys:         20_000,
		Requests:     requests,
		Seed:         11,
	}
}

// TestNilPlanUnchanged pins fault hooks to zero cost: a nil plan must
// produce byte-for-byte the same distribution as the seed code path.
func TestNilPlanUnchanged(t *testing.T) {
	a, err := Run(faultCfg(20_000))
	if err != nil {
		t.Fatal(err)
	}
	cfgEmpty := faultCfg(20_000)
	cfgEmpty.Faults = &faults.Plan{Horizon: sim.Second}
	b, err := Run(cfgEmpty)
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range a.PerStack {
		if b.PerStack[name] != n {
			t.Fatalf("empty plan changed %s: %d vs %d", name, b.PerStack[name], n)
		}
	}
	if a.FailedStacks != 0 || b.FailedStacks != 0 || b.LostRequests != 0 {
		t.Fatalf("healthy run reported faults: %+v vs %+v", a, b)
	}
	if b.SurvivingCapacityFraction != 1.0 {
		t.Fatalf("healthy capacity = %v, want 1.0", b.SurvivingCapacityFraction)
	}
}

// TestStackFailRedistributes: a failed stack receives no traffic after
// its failure point, and its keys land on survivors.
func TestStackFailRedistributes(t *testing.T) {
	cfg := faultCfg(20_000)
	reg := obs.NewRegistry()
	cfg.Probes = reg
	// Fail stack-03 halfway through the run (request 10k = 10ms on the
	// synthetic axis).
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			{At: 10_000 * sim.Microsecond, Kind: faults.StackFail, Target: "stack-03"},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FailedStacks != 1 {
		t.Fatalf("FailedStacks = %d, want 1", r.FailedStacks)
	}
	if r.LostRequests != 0 {
		t.Fatalf("LostRequests = %d with 7 survivors", r.LostRequests)
	}
	want := 1.0 - 1.0/8
	if r.SurvivingCapacityFraction != want {
		t.Fatalf("SurvivingCapacityFraction = %v, want %v", r.SurvivingCapacityFraction, want)
	}
	// The failed stack served roughly half its healthy share.
	healthy, err := Run(faultCfg(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if r.PerStack["stack-03"] >= healthy.PerStack["stack-03"] {
		t.Fatalf("failed stack served %d, healthy %d — failure had no effect",
			r.PerStack["stack-03"], healthy.PerStack["stack-03"])
	}
	total := 0
	for _, n := range r.PerStack {
		total += n
	}
	if total != cfg.Requests {
		t.Fatalf("served %d of %d requests", total, cfg.Requests)
	}
	if v := probeValue(reg, "clustersim.faults.applied"); v != 1 {
		t.Fatalf("faults.applied = %v, want 1", v)
	}
}

// TestRecoverRestoresTraffic: a failed stack that recovers resumes
// serving its arc.
func TestRecoverRestoresTraffic(t *testing.T) {
	cfg := faultCfg(30_000)
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			{At: 0, Kind: faults.StackFail, Target: "stack-02"},
			{At: 10_000 * sim.Microsecond, Kind: faults.StackRecover, Target: "stack-02"},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FailedStacks != 0 {
		t.Fatalf("FailedStacks = %d after recovery, want 0", r.FailedStacks)
	}
	if r.SurvivingCapacityFraction != 1.0 {
		t.Fatalf("capacity after recovery = %v, want 1.0", r.SurvivingCapacityFraction)
	}
	if r.PerStack["stack-02"] == 0 {
		t.Fatal("recovered stack served nothing")
	}
}

// TestDegradeCountsAndCapacity: degradation shows up in the capacity
// summary without removing the stack from the ring.
func TestDegradeCountsAndCapacity(t *testing.T) {
	cfg := faultCfg(10_000)
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			{At: 0, Kind: faults.StackDegrade, Target: "stack-05", Arg: 40},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DegradedStacks != 1 || r.FailedStacks != 0 {
		t.Fatalf("degraded=%d failed=%d, want 1/0", r.DegradedStacks, r.FailedStacks)
	}
	want := (7.0 + 0.4) / 8
	if diff := r.SurvivingCapacityFraction - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("capacity = %v, want %v", r.SurvivingCapacityFraction, want)
	}
	if r.PerStack["stack-05"] == 0 {
		t.Fatal("degraded stack must keep serving (only failed stacks leave the ring)")
	}
}

// TestAllStacksDownLosesRequests: requests that find an empty ring are
// counted lost, not silently dropped.
func TestAllStacksDownLosesRequests(t *testing.T) {
	cfg := faultCfg(1000)
	cfg.Stacks = 2
	plan := &faults.Plan{Horizon: sim.Duration(cfg.Requests) * sim.Microsecond}
	plan.Events = []faults.Event{
		{At: 0, Kind: faults.StackFail, Target: "stack-00"},
		{At: 0, Kind: faults.StackFail, Target: "stack-01"},
		{At: 500 * sim.Microsecond, Kind: faults.StackRecover, Target: "stack-00"},
	}
	cfg.Faults = plan
	reg := obs.NewRegistry()
	cfg.Probes = reg
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LostRequests != 500 {
		t.Fatalf("LostRequests = %d, want 500 (requests 0..499)", r.LostRequests)
	}
	if v := probeValue(reg, "clustersim.faults.lost_requests"); v != 500 {
		t.Fatalf("lost_requests probe = %v, want 500", v)
	}
	if r.PerStack["stack-00"] != 500 {
		t.Fatalf("survivor served %d, want 500", r.PerStack["stack-00"])
	}
}

// TestFaultRunsDeterministic: identical config and plan give identical
// results — the property the chaos suite leans on.
func TestFaultRunsDeterministic(t *testing.T) {
	gen := faults.GenConfig{
		Seed:    77,
		Targets: []string{"stack-00", "stack-01", "stack-02", "stack-03"},
		Horizon: 20 * sim.Millisecond,
		Kinds:   []faults.Kind{faults.StackFail, faults.StackDegrade},
	}
	run := func() Result {
		plan, err := faults.Generate(gen)
		if err != nil {
			t.Fatal(err)
		}
		cfg := faultCfg(20_000)
		cfg.Faults = plan
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for name, n := range a.PerStack {
		if b.PerStack[name] != n {
			t.Fatalf("replay diverged on %s: %d vs %d", name, n, b.PerStack[name])
		}
	}
	if a.LostRequests != b.LostRequests || a.FailedStacks != b.FailedStacks {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

// TestFailureSweep covers the paper's resilience question: capacity
// after k of n stack failures.
func TestFailureSweep(t *testing.T) {
	if _, err := FailureSweep(faultCfg(1000), 8); err == nil {
		t.Fatal("maxFailed == Stacks accepted")
	}
	points, err := FailureSweep(faultCfg(20_000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points, want 5", len(points))
	}
	for i, p := range points {
		if p.Failed != i {
			t.Fatalf("point %d labelled Failed=%d", i, p.Failed)
		}
		if p.Result.FailedStacks != i {
			t.Fatalf("point %d reports %d failed stacks", i, p.Result.FailedStacks)
		}
		if p.Result.LostRequests != 0 {
			t.Fatalf("point %d lost %d requests with survivors present", i, p.Result.LostRequests)
		}
		wantCap := 1.0 - float64(i)/8
		if diff := p.Result.SurvivingCapacityFraction - wantCap; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("point %d capacity %v, want %v", i, p.Result.SurvivingCapacityFraction, wantCap)
		}
	}
	// Failed-from-request-0 stacks serve nothing for the whole run.
	for i := 1; i < len(points); i++ {
		for k := 0; k < i; k++ {
			name := stackName(k)
			if n := points[i].Result.PerStack[name]; n != 0 {
				t.Fatalf("sweep point %d: failed %s served %d requests", i, name, n)
			}
		}
	}
}

func stackName(i int) string {
	return []string{"stack-00", "stack-01", "stack-02", "stack-03", "stack-04",
		"stack-05", "stack-06", "stack-07"}[i]
}

func probeValue(reg *obs.Registry, name string) float64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}
