package clustersim

import (
	"testing"

	"kv3d/internal/faults"
	"kv3d/internal/sim"
)

// TestJoinDuringFlashCrowd is the sim half of the ISSUE's "join during
// flash crowd" chaos scenario: a new stack joins mid-run while a
// Zipf-skewed crowd hammers the cluster. No request may be lost, the
// joiner must end up serving traffic, and the run must stay
// deterministic.
func TestJoinDuringFlashCrowd(t *testing.T) {
	cfg := faultCfg(40_000)
	cfg.ZipfSkew = 1.01 // flash crowd: heavy skew onto few keys
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			// Scale-out join at the 25% mark, while the crowd is hot.
			{At: 10_000 * sim.Microsecond, Kind: faults.NodeJoin, Target: "stack-90"},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LostRequests != 0 {
		t.Fatalf("join during flash crowd lost %d requests", r.LostRequests)
	}
	if r.JoinedStacks != 1 {
		t.Fatalf("JoinedStacks = %d, want 1", r.JoinedStacks)
	}
	if r.MembershipEvents != 1 {
		t.Fatalf("MembershipEvents = %d, want 1", r.MembershipEvents)
	}
	if r.PerStack["stack-90"] == 0 {
		t.Fatal("joined stack served no traffic")
	}
	// The joiner only sees the last 75% of the run, so it must carry
	// less than an incumbent's fair share.
	if fair := cfg.Requests / cfg.Stacks; r.PerStack["stack-90"] >= fair {
		t.Fatalf("joiner served %d requests, >= full-run fair share %d", r.PerStack["stack-90"], fair)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range r.PerStack {
		if again.PerStack[name] != n {
			t.Fatalf("membership run not deterministic: %s %d vs %d", name, n, again.PerStack[name])
		}
	}
}

// TestLeaveRedistributesWithoutLoss: a graceful NodeLeave mid-run hands
// the target's key ranges to the survivors with zero lost requests, and
// the departed stack counts as zero surviving capacity.
func TestLeaveRedistributesWithoutLoss(t *testing.T) {
	cfg := faultCfg(40_000)
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			{At: 20_000 * sim.Microsecond, Kind: faults.NodeLeave, Target: "stack-03"},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LostRequests != 0 {
		t.Fatalf("graceful leave lost %d requests", r.LostRequests)
	}
	if r.LeftStacks != 1 || r.FailedStacks != 0 {
		t.Fatalf("LeftStacks = %d FailedStacks = %d, want 1 and 0", r.LeftStacks, r.FailedStacks)
	}
	want := float64(cfg.Stacks-1) / float64(cfg.Stacks)
	if r.SurvivingCapacityFraction != want {
		t.Fatalf("SurvivingCapacityFraction = %v, want %v", r.SurvivingCapacityFraction, want)
	}
	// The leaver saw only the first half of the run.
	baseline, err := Run(faultCfg(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if r.PerStack["stack-03"] >= baseline.PerStack["stack-03"] {
		t.Fatalf("leaver served %d requests, not less than full-run %d",
			r.PerStack["stack-03"], baseline.PerStack["stack-03"])
	}
}

// TestPartitionHealsWithoutCapacityLoss: a partition window diverts the
// target's traffic while open, then the target rejoins the ring when it
// closes — no request lost, no capacity marked failed (the node was
// healthy all along, only unreachable).
func TestPartitionHealsWithoutCapacityLoss(t *testing.T) {
	cfg := faultCfg(40_000)
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			{At: 10_000 * sim.Microsecond, Kind: faults.Partition,
				Target: "stack-05", For: 10_000 * sim.Microsecond},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LostRequests != 0 {
		t.Fatalf("partition lost %d requests", r.LostRequests)
	}
	if r.FailedStacks != 0 || r.LeftStacks != 0 {
		t.Fatalf("partition marked stacks failed/left: %+v", r)
	}
	if r.SurvivingCapacityFraction != 1.0 {
		t.Fatalf("SurvivingCapacityFraction = %v, want 1.0 (partition is not a failure)",
			r.SurvivingCapacityFraction)
	}
	// The window covers a quarter of the run; the target still serves
	// traffic outside it, but less than its unpartitioned baseline.
	baseline, err := Run(faultCfg(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if r.PerStack["stack-05"] == 0 {
		t.Fatal("partitioned stack served no traffic at all")
	}
	if r.PerStack["stack-05"] >= baseline.PerStack["stack-05"] {
		t.Fatalf("partitioned stack served %d requests, not less than baseline %d",
			r.PerStack["stack-05"], baseline.PerStack["stack-05"])
	}
}

// TestLeaveThenRejoinRestoresMembership: leave + rejoin of the same
// stack nets out to full capacity and zero LeftStacks at run end.
func TestLeaveThenRejoinRestoresMembership(t *testing.T) {
	cfg := faultCfg(40_000)
	cfg.Faults = &faults.Plan{
		Horizon: sim.Duration(cfg.Requests) * sim.Microsecond,
		Events: []faults.Event{
			{At: 10_000 * sim.Microsecond, Kind: faults.NodeLeave, Target: "stack-06"},
			{At: 25_000 * sim.Microsecond, Kind: faults.NodeJoin, Target: "stack-06"},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LostRequests != 0 || r.LeftStacks != 0 || r.JoinedStacks != 0 {
		t.Fatalf("leave+rejoin should net out: %+v", r)
	}
	if r.MembershipEvents != 2 {
		t.Fatalf("MembershipEvents = %d, want 2", r.MembershipEvents)
	}
	if r.SurvivingCapacityFraction != 1.0 {
		t.Fatalf("SurvivingCapacityFraction = %v, want 1.0 after rejoin", r.SurvivingCapacityFraction)
	}
}
