// Package clustersim studies request distribution across the stacks of
// a Mercury/Iridium server (§3.8): keys map onto stacks through a
// consistent-hash ring, a Zipf-skewed workload concentrates traffic,
// and the server's effective throughput is set by its hottest stack.
// The paper argues that many physical nodes (96 stacks × many cores)
// minimize resource contention; this module quantifies that, including
// the effect of virtual-node count on arc balance.
package clustersim

import (
	"fmt"

	"kv3d/internal/cluster"
	"kv3d/internal/faults"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/workload"
)

// Config describes one load-distribution experiment.
type Config struct {
	// Stacks is the number of physical nodes in the box.
	Stacks int
	// VirtualNodes per stack on the ring.
	VirtualNodes int
	// Keys is the key-space size.
	Keys int
	// ZipfSkew shapes key popularity (0 = uniform).
	ZipfSkew float64
	// Requests is the sample size.
	Requests int
	// Seed makes the run reproducible.
	Seed uint64

	// Trace, when non-nil, records per-stack cumulative request counts
	// as counter tracks. The experiment has no simulated clock, so the
	// time axis is the request index (1 request = 1us in the viewer):
	// a diverging counter lane is a hot stack forming.
	Trace *obs.Tracer
	// Probes, when non-nil, receives "clustersim.<stack>.requests"
	// counters plus "clustersim.requests" for the total (and
	// "clustersim.faults.*" when a plan is set).
	Probes *obs.Registry
	// SampleEveryRequests is the counter-sampling stride (default:
	// Requests/100, at least 1).
	SampleEveryRequests int

	// Faults, when non-nil, replays the plan's stack events on the
	// experiment's synthetic time axis (request i happens at i
	// microseconds): StackFail/NodeDown removes the target from the
	// ring, StackDegrade scales its capacity to Arg percent,
	// StackRecover/NodeUp restores it. Live-only kinds (resets, stalls,
	// latency, UDP drops) are ignored here. A nil plan adds no work and
	// changes no output, so existing golden results are untouched.
	Faults *faults.Plan
}

// Result reports the distribution outcome.
type Result struct {
	// PerStack is the request count per stack name.
	PerStack map[string]int
	// MaxLoad / MeanLoad is the imbalance factor: effective server
	// throughput is capacity/imbalance once the hottest stack saturates.
	Imbalance float64
	// HottestShare is the busiest stack's share of all requests.
	HottestShare float64
	// EffectiveThroughputFraction is 1/Imbalance: the fraction of
	// aggregate capacity usable before the hottest stack saturates.
	EffectiveThroughputFraction float64

	// FailedStacks and DegradedStacks count stacks failed or degraded
	// when the run ended (0 without a fault plan).
	FailedStacks   int
	DegradedStacks int
	// JoinedStacks counts stacks added by NodeJoin events beyond the
	// initial set and still members at run end; LeftStacks counts
	// initial stacks that left via NodeLeave and did not rejoin.
	JoinedStacks int
	LeftStacks   int
	// MembershipEvents counts applied join/leave/partition events.
	MembershipEvents int
	// SurvivingCapacityFraction is the end-of-run sum of per-stack
	// capacity factors (failed = 0, degraded = Arg%) over the stack
	// count; 1.0 means full health.
	SurvivingCapacityFraction float64
	// LostRequests counts requests that found an empty ring (every
	// stack failed at once).
	LostRequests int
}

// Run executes the distribution experiment.
func Run(cfg Config) (Result, error) {
	if cfg.Stacks <= 0 {
		return Result{}, fmt.Errorf("clustersim: need stacks > 0, got %d", cfg.Stacks)
	}
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("clustersim: need requests > 0, got %d", cfg.Requests)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 100_000
	}
	ring := cluster.NewRing(cfg.VirtualNodes)
	names := make([]string, cfg.Stacks)
	tracks := map[string]obs.TrackID{}
	for i := 0; i < cfg.Stacks; i++ {
		names[i] = fmt.Sprintf("stack-%02d", i)
		ring.Add(names[i])
		if cfg.Trace.Enabled() {
			tracks[names[i]] = cfg.Trace.RegisterTrack(names[i])
		}
	}
	gen, err := workload.NewGenerator(workload.MixConfig{
		GetFraction: 1.0,
		Keys:        cfg.Keys,
		ZipfSkew:    cfg.ZipfSkew,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	stride := cfg.SampleEveryRequests
	if stride <= 0 {
		stride = cfg.Requests / 100
		if stride < 1 {
			stride = 1
		}
	}
	// Fault state: capacity factor per stack (1 = healthy, 0 = failed)
	// and the plan cursor. All nil/empty when no plan is configured, so
	// the healthy path does no extra work.
	var sched *faults.Schedule
	capacity := map[string]float64{}
	down := map[string]bool{}
	// Membership state beyond up/down: initial members, stacks that
	// left gracefully, extra stacks joined mid-run, and open partition
	// windows (target -> window end on the request-index time axis).
	initial := map[string]bool{}
	left := map[string]bool{}
	extra := map[string]bool{}
	partEnd := map[string]sim.Duration{}
	applied, lost, memberEvents := 0, 0, 0
	if cfg.Faults != nil {
		sched = cfg.Faults.Schedule()
		for _, name := range names {
			capacity[name] = 1
			initial[name] = true
		}
	}
	perStack := make(map[string]int, cfg.Stacks)
	for i := 0; i < cfg.Requests; i++ {
		if sched != nil {
			now := sim.Duration(i) * sim.Microsecond
			// Close expired partition windows: the target rejoins the
			// ring unless it is also down or has left.
			if len(partEnd) > 0 {
				for tgt, end := range partEnd {
					if now >= end {
						delete(partEnd, tgt)
						if !down[tgt] && !left[tgt] {
							ring.Add(tgt)
						}
					}
				}
			}
			for _, ev := range sched.Due(now) {
				applied++
				switch ev.Kind {
				case faults.StackFail, faults.NodeDown:
					if !down[ev.Target] {
						down[ev.Target] = true
						ring.Remove(ev.Target)
					}
				case faults.StackDegrade:
					capacity[ev.Target] = float64(ev.Arg) / 100
				case faults.StackRecover, faults.NodeUp:
					if down[ev.Target] {
						down[ev.Target] = false
						if _, parted := partEnd[ev.Target]; !parted && !left[ev.Target] {
							ring.Add(ev.Target)
						}
					}
					capacity[ev.Target] = 1
				case faults.NodeJoin:
					memberEvents++
					if left[ev.Target] {
						delete(left, ev.Target)
					} else if !initial[ev.Target] && !extra[ev.Target] {
						extra[ev.Target] = true
						capacity[ev.Target] = 1
					}
					if !down[ev.Target] {
						if _, parted := partEnd[ev.Target]; !parted {
							ring.Add(ev.Target)
						}
					}
				case faults.NodeLeave:
					memberEvents++
					if extra[ev.Target] {
						delete(extra, ev.Target)
					} else if initial[ev.Target] {
						left[ev.Target] = true
					}
					ring.Remove(ev.Target)
				case faults.Partition:
					memberEvents++
					end := ev.At + ev.For
					if cur, ok := partEnd[ev.Target]; !ok || end > cur {
						partEnd[ev.Target] = end
					}
					ring.Remove(ev.Target)
				}
			}
		}
		req := gen.Next()
		node, err := ring.Locate(req.Key)
		if err != nil {
			// Only reachable when a plan failed every stack at once.
			lost++
			continue
		}
		perStack[node]++
		if cfg.Trace.Enabled() && (i+1)%stride == 0 {
			// One request advances the synthetic time axis by 1us. The
			// former `sim.Time(i+1) * sim.Time(sim.Microsecond)` multiplied
			// two absolute timestamps — numerically identical here, but
			// exactly the unit-mixing class the typed seam now rejects.
			ts := sim.Time(sim.Duration(i+1) * sim.Microsecond)
			for _, name := range names {
				cfg.Trace.Counter(tracks[name], "clustersim."+name+".requests",
					ts, float64(perStack[name]))
			}
		}
	}
	if cfg.Probes != nil {
		cfg.Probes.Counter("clustersim.requests").Add(int64(cfg.Requests))
		for _, name := range names {
			cfg.Probes.Counter("clustersim." + name + ".requests").Add(int64(perStack[name]))
		}
		if cfg.Faults != nil {
			cfg.Probes.Counter("clustersim.faults.applied").Add(int64(applied))
			cfg.Probes.Counter("clustersim.faults.lost_requests").Add(int64(lost))
		}
	}
	survCap := 1.0
	failedCount, degradedCount := 0, 0
	joinedCount, leftCount := 0, 0
	if cfg.Faults != nil {
		sum := 0.0
		for _, name := range names {
			c := capacity[name]
			switch {
			case down[name]:
				c = 0
				failedCount++
			case left[name]:
				c = 0
				leftCount++
			case c < 1:
				degradedCount++
			}
			sum += c
		}
		survCap = sum / float64(cfg.Stacks)
		joinedCount = len(extra)
	}
	served := cfg.Requests - lost
	maxLoad := 0
	for _, n := range perStack {
		if n > maxLoad {
			maxLoad = n
		}
	}
	res := Result{
		PerStack:                  perStack,
		FailedStacks:              failedCount,
		DegradedStacks:            degradedCount,
		JoinedStacks:              joinedCount,
		LeftStacks:                leftCount,
		MembershipEvents:          memberEvents,
		SurvivingCapacityFraction: survCap,
		LostRequests:              lost,
	}
	if served > 0 {
		mean := float64(served) / float64(cfg.Stacks)
		res.Imbalance = float64(maxLoad) / mean
		res.HottestShare = float64(maxLoad) / float64(served)
		res.EffectiveThroughputFraction = 1 / res.Imbalance
	}
	return res, nil
}

// SweepPoint is one entry of a FailureSweep: the distribution outcome
// with Failed stacks removed for the whole run.
type SweepPoint struct {
	Failed int
	Result Result
}

// FailureSweep quantifies capacity after k of n stack failures — the
// paper's resilience question for a 96-stack box. For each k in
// 0..maxFailed it fails stacks 0..k-1 from the start of the run and
// reruns the distribution experiment: consistent hashing keeps the
// remapping local, but the hottest surviving stack still sets the
// throughput ceiling, so EffectiveThroughputFraction shows the real
// capacity left, not just (n-k)/n.
func FailureSweep(cfg Config, maxFailed int) ([]SweepPoint, error) {
	if maxFailed < 0 || maxFailed >= cfg.Stacks {
		return nil, fmt.Errorf("clustersim: maxFailed %d out of range [0, %d)", maxFailed, cfg.Stacks)
	}
	points := make([]SweepPoint, 0, maxFailed+1)
	for k := 0; k <= maxFailed; k++ {
		c := cfg
		c.Trace = nil // one trace per sweep would be meaningless; callers trace single runs
		plan := &faults.Plan{Horizon: sim.Duration(cfg.Requests) * sim.Microsecond}
		for i := 0; i < k; i++ {
			plan.Events = append(plan.Events, faults.Event{
				Kind: faults.StackFail, Target: fmt.Sprintf("stack-%02d", i)})
		}
		c.Faults = plan
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{Failed: k, Result: r})
	}
	return points, nil
}

// HotKeyBound returns the load imbalance floor imposed by the single
// hottest key under a Zipf(s) popularity over n keys routed to `stacks`
// nodes: no placement can split one key's traffic, so the hottest stack
// carries at least that key's share.
func HotKeyBound(s float64, n, stacks int) (float64, error) {
	z, err := workload.NewZipf(s, n)
	if err != nil {
		return 0, err
	}
	// Estimate rank-0 share by sampling.
	r := sim.NewRand(99)
	const samples = 200_000
	hot := 0
	for i := 0; i < samples; i++ {
		if z.Sample(r) == 0 {
			hot++
		}
	}
	share := float64(hot) / samples
	return share * float64(stacks), nil
}
