// Package clustersim studies request distribution across the stacks of
// a Mercury/Iridium server (§3.8): keys map onto stacks through a
// consistent-hash ring, a Zipf-skewed workload concentrates traffic,
// and the server's effective throughput is set by its hottest stack.
// The paper argues that many physical nodes (96 stacks × many cores)
// minimize resource contention; this module quantifies that, including
// the effect of virtual-node count on arc balance.
package clustersim

import (
	"fmt"

	"kv3d/internal/cluster"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/workload"
)

// Config describes one load-distribution experiment.
type Config struct {
	// Stacks is the number of physical nodes in the box.
	Stacks int
	// VirtualNodes per stack on the ring.
	VirtualNodes int
	// Keys is the key-space size.
	Keys int
	// ZipfSkew shapes key popularity (0 = uniform).
	ZipfSkew float64
	// Requests is the sample size.
	Requests int
	// Seed makes the run reproducible.
	Seed uint64

	// Trace, when non-nil, records per-stack cumulative request counts
	// as counter tracks. The experiment has no simulated clock, so the
	// time axis is the request index (1 request = 1us in the viewer):
	// a diverging counter lane is a hot stack forming.
	Trace *obs.Tracer
	// Probes, when non-nil, receives "clustersim.<stack>.requests"
	// counters plus "clustersim.requests" for the total.
	Probes *obs.Registry
	// SampleEveryRequests is the counter-sampling stride (default:
	// Requests/100, at least 1).
	SampleEveryRequests int
}

// Result reports the distribution outcome.
type Result struct {
	// PerStack is the request count per stack name.
	PerStack map[string]int
	// MaxLoad / MeanLoad is the imbalance factor: effective server
	// throughput is capacity/imbalance once the hottest stack saturates.
	Imbalance float64
	// HottestShare is the busiest stack's share of all requests.
	HottestShare float64
	// EffectiveThroughputFraction is 1/Imbalance: the fraction of
	// aggregate capacity usable before the hottest stack saturates.
	EffectiveThroughputFraction float64
}

// Run executes the distribution experiment.
func Run(cfg Config) (Result, error) {
	if cfg.Stacks <= 0 {
		return Result{}, fmt.Errorf("clustersim: need stacks > 0, got %d", cfg.Stacks)
	}
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("clustersim: need requests > 0, got %d", cfg.Requests)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 100_000
	}
	ring := cluster.NewRing(cfg.VirtualNodes)
	names := make([]string, cfg.Stacks)
	tracks := map[string]obs.TrackID{}
	for i := 0; i < cfg.Stacks; i++ {
		names[i] = fmt.Sprintf("stack-%02d", i)
		ring.Add(names[i])
		if cfg.Trace.Enabled() {
			tracks[names[i]] = cfg.Trace.RegisterTrack(names[i])
		}
	}
	gen, err := workload.NewGenerator(workload.MixConfig{
		GetFraction: 1.0,
		Keys:        cfg.Keys,
		ZipfSkew:    cfg.ZipfSkew,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	stride := cfg.SampleEveryRequests
	if stride <= 0 {
		stride = cfg.Requests / 100
		if stride < 1 {
			stride = 1
		}
	}
	perStack := make(map[string]int, cfg.Stacks)
	for i := 0; i < cfg.Requests; i++ {
		req := gen.Next()
		node, err := ring.Locate(req.Key)
		if err != nil {
			return Result{}, err
		}
		perStack[node]++
		if cfg.Trace.Enabled() && (i+1)%stride == 0 {
			// One request advances the synthetic time axis by 1us. The
			// former `sim.Time(i+1) * sim.Time(sim.Microsecond)` multiplied
			// two absolute timestamps — numerically identical here, but
			// exactly the unit-mixing class the typed seam now rejects.
			ts := sim.Time(sim.Duration(i+1) * sim.Microsecond)
			for _, name := range names {
				cfg.Trace.Counter(tracks[name], "clustersim."+name+".requests",
					ts, float64(perStack[name]))
			}
		}
	}
	if cfg.Probes != nil {
		cfg.Probes.Counter("clustersim.requests").Add(int64(cfg.Requests))
		for _, name := range names {
			cfg.Probes.Counter("clustersim." + name + ".requests").Add(int64(perStack[name]))
		}
	}
	maxLoad := 0
	for _, n := range perStack {
		if n > maxLoad {
			maxLoad = n
		}
	}
	mean := float64(cfg.Requests) / float64(cfg.Stacks)
	imb := float64(maxLoad) / mean
	return Result{
		PerStack:                    perStack,
		Imbalance:                   imb,
		HottestShare:                float64(maxLoad) / float64(cfg.Requests),
		EffectiveThroughputFraction: 1 / imb,
	}, nil
}

// HotKeyBound returns the load imbalance floor imposed by the single
// hottest key under a Zipf(s) popularity over n keys routed to `stacks`
// nodes: no placement can split one key's traffic, so the hottest stack
// carries at least that key's share.
func HotKeyBound(s float64, n, stacks int) (float64, error) {
	z, err := workload.NewZipf(s, n)
	if err != nil {
		return 0, err
	}
	// Estimate rank-0 share by sampling.
	r := sim.NewRand(99)
	const samples = 200_000
	hot := 0
	for i := 0; i < samples; i++ {
		if z.Sample(r) == 0 {
			hot++
		}
	}
	share := float64(hot) / samples
	return share * float64(stacks), nil
}
