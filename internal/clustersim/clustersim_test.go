package clustersim

import (
	"bytes"
	"encoding/json"
	"testing"

	"kv3d/internal/obs"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Stacks: 0, Requests: 10}); err == nil {
		t.Fatal("zero stacks accepted")
	}
	if _, err := Run(Config{Stacks: 4, Requests: 0}); err == nil {
		t.Fatal("zero requests accepted")
	}
}

func TestUniformTrafficBalances(t *testing.T) {
	r, err := Run(Config{Stacks: 16, VirtualNodes: 160, Keys: 100_000, ZipfSkew: 0, Requests: 100_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerStack) != 16 {
		t.Fatalf("only %d stacks received traffic", len(r.PerStack))
	}
	if r.Imbalance > 1.4 {
		t.Fatalf("uniform imbalance = %.2f, want near 1", r.Imbalance)
	}
	if r.EffectiveThroughputFraction < 0.7 {
		t.Fatalf("effective throughput fraction = %.2f", r.EffectiveThroughputFraction)
	}
}

func TestMoreVirtualNodesImproveBalance(t *testing.T) {
	imbalanceAt := func(vnodes int) float64 {
		r, err := Run(Config{Stacks: 16, VirtualNodes: vnodes, Keys: 100_000, ZipfSkew: 0, Requests: 50_000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return r.Imbalance
	}
	few := imbalanceAt(1)
	many := imbalanceAt(160)
	if many >= few {
		t.Fatalf("160 vnodes (%.2f) should balance better than 1 (%.2f)", many, few)
	}
	if few < 1.5 {
		t.Fatalf("single-vnode ring should be visibly imbalanced, got %.2f", few)
	}
}

func TestZipfSkewConcentratesLoad(t *testing.T) {
	uniform, err := Run(Config{Stacks: 16, VirtualNodes: 160, Keys: 10_000, ZipfSkew: 0, Requests: 50_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Run(Config{Stacks: 16, VirtualNodes: 160, Keys: 10_000, ZipfSkew: 1.2, Requests: 50_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Imbalance <= uniform.Imbalance {
		t.Fatalf("zipf (%.2f) should be worse than uniform (%.2f)", skewed.Imbalance, uniform.Imbalance)
	}
}

func TestMoreStacksReduceHottestShare(t *testing.T) {
	// The paper's §3.8 argument: more physical nodes → smaller arcs →
	// less of the keyspace (and its traffic) per node.
	share := func(stacks int) float64 {
		r, err := Run(Config{Stacks: stacks, VirtualNodes: 160, Keys: 100_000, ZipfSkew: 0.99, Requests: 50_000, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return r.HottestShare
	}
	if s96 := share(96); s96 >= share(8) {
		t.Fatalf("96 stacks should shrink the hottest share vs 8 (%.3f)", s96)
	}
}

func TestHotKeyBound(t *testing.T) {
	b, err := HotKeyBound(1.2, 10_000, 96)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 1 {
		t.Fatalf("a zipf-1.2 hot key across 96 stacks must bound imbalance above 1, got %.2f", b)
	}
	if _, err := HotKeyBound(0, 10, 4); err == nil {
		t.Fatal("invalid skew accepted")
	}
}

func TestProbesAndTraceWiring(t *testing.T) {
	cfg := Config{
		Stacks:   4,
		Keys:     1000,
		Requests: 500,
		Seed:     3,
		Trace:    obs.NewTracer(),
		Probes:   obs.NewRegistry(),
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range cfg.Probes.Snapshot() {
		byName[p.Name] = p.Value
	}
	if byName["clustersim.requests"] != float64(cfg.Requests) {
		t.Fatalf("total probe = %v", byName["clustersim.requests"])
	}
	var sum float64
	for name, n := range r.PerStack {
		if byName["clustersim."+name+".requests"] != float64(n) {
			t.Fatalf("probe for %s = %v, want %d", name, byName["clustersim."+name+".requests"], n)
		}
		sum += float64(n)
	}
	if sum != float64(cfg.Requests) {
		t.Fatalf("per-stack probes sum to %v", sum)
	}
	// Default stride is Requests/100: each of the 4 stacks gets 100
	// counter samples.
	if got := cfg.Trace.Len(); got != 400 {
		t.Fatalf("trace has %d counter events, want 400", got)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("clustersim trace is not valid JSON")
	}
}
