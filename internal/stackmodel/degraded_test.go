package stackmodel

import "testing"

func TestDegradedPortsValidation(t *testing.T) {
	c := mercuryA7(4)
	ports := c.Mem.Ports()
	c.DegradedPorts = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative degraded ports accepted")
	}
	c.DegradedPorts = ports // zero survivors
	if err := c.Validate(); err == nil {
		t.Fatal("fully dead stack accepted; at least one port must survive")
	}
	c.DegradedPorts = ports - 1
	if err := c.Validate(); err != nil {
		t.Fatalf("one surviving port should validate: %v", err)
	}
}

// TestDegradedPortsReduceTPS: with dead ports the survivors queue the
// displaced traffic, so throughput drops but the stack stays up —
// the partial-failure mode a 96-stack box rides through.
func TestDegradedPortsReduceTPS(t *testing.T) {
	// Large flash values make the memory ports the bottleneck (cf.
	// TestPortContentionVisibleForLargeFlashValues), so losing ports
	// must show up in TPS.
	cfg := iridiumA7(16)
	healthy := measure(t, cfg, Get, 64<<10, 400)

	cfg.DegradedPorts = cfg.Mem.Ports() * 3 / 4
	degraded := measure(t, cfg, Get, 64<<10, 400)

	if degraded.StackTPS <= 0 {
		t.Fatal("degraded stack stopped serving entirely")
	}
	if degraded.StackTPS >= healthy.StackTPS {
		t.Fatalf("degraded StackTPS %.0f >= healthy %.0f; dead ports had no effect",
			degraded.StackTPS, healthy.StackTPS)
	}
}

// TestDegradedPortsMonotone: more dead ports, less throughput (weakly).
func TestDegradedPortsMonotone(t *testing.T) {
	cfg := iridiumA7(16)
	prev := -1.0
	for _, dead := range []int{12, 8, 4, 0} { // healthier as we go
		c := cfg
		c.DegradedPorts = dead
		r := measure(t, c, Get, 64<<10, 300)
		if prev >= 0 && r.StackTPS < prev {
			t.Fatalf("TPS fell from %.0f to %.0f as ports were restored (dead=%d)",
				prev, r.StackTPS, dead)
		}
		prev = r.StackTPS
	}
}
