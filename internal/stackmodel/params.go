// Package stackmodel simulates one Mercury or Iridium 3D stack serving
// memcached requests: n cores, 16 memory ports, and an on-stack NIC MAC,
// driven by closed-loop clients over simulated 10GbE. A request executes
// the paper's Figure 4 decomposition — hash computation, memcached
// metadata work, and network-stack processing — on a cpu.Core with a
// cache.Hierarchy over a memmodel.Device, and the resulting RTTs are
// recovered from the packet trace exactly as the paper does (§5.3).
package stackmodel

// RequestCosts holds the calibrated per-request cost decomposition.
//
// The instruction counts and miss counts are the model's calibration
// surface. They were fitted to the paper's anchors (see DESIGN.md §5):
//
//   - A7+L2 @10ns, 64B GET  → ≈11.0 KTPS/core (Table 4: 8.44M / 768)
//   - A15@1GHz ≈ 2.5–3× A7 with an L2 at small sizes (§6.2)
//   - GET small-request split ≈ 87% netstack / 10% memcached / 2–3% hash
//     (Figure 4a); PUT metadata share ≈ 20–30% (Figure 4b)
//   - Iridium+L2: several-KTPS GETs, <1 KTPS PUTs; no-L2 <100 TPS (§6.2)
//
// The counts themselves are gem5-plausible for Linux TCP/IP on 1GHz ARM
// cores: ~30k instructions and ~1.2k L1 misses to receive, look up, and
// answer one small request through the kernel socket path.
type RequestCosts struct {
	// Fixed instruction counts per GET request.
	GetHashInstr float64
	GetMetaInstr float64
	GetNetInstr  float64
	// Fixed instruction counts per PUT request.
	PutHashInstr float64
	PutMetaInstr float64
	PutNetInstr  float64
	// PerPacketInstr is charged for every TCP segment beyond the first
	// (interrupt coalescing and TSO-style batching make the marginal
	// segment far cheaper than the first).
	PerPacketInstr float64

	// L1 miss counts per request for each phase (working-set misses,
	// absorbed by an L2 when present).
	GetHashMisses float64
	GetMetaMisses float64
	GetNetMisses  float64
	PutHashMisses float64
	PutMetaMisses float64
	PutNetMisses  float64

	// Storage trips are per-request-unique accesses that always reach
	// the storage device (hash bucket, item header, allocator state).
	// Flash packs the item with its metadata in a page (McDipper-style
	// layout), so it takes fewer but far slower trips.
	DRAMGetTrips  float64
	DRAMPutTrips  float64
	FlashGetReads float64
	FlashPutReads float64
	// FlashPutPrograms is the page programs per PUT: the value page plus
	// FTL map and metadata persistence. The default matches the write
	// amplification the memmodel FTL measures on cache-like churn.
	FlashPutPrograms float64

	// SlabCopyFactor scales the core's stream rate for the in-memory
	// item copy a PUT performs (an in-cache memcpy is faster than the
	// kernel network path).
	SlabCopyFactor float64

	// Multiget amortization. A k-key batched GET enters and leaves the
	// kernel once: the per-request network-stack cost (GetNetInstr — the
	// 87% of Figure 4a) is paid once per batch, and each key beyond the
	// first adds only the marginal parse/serialize work below plus its
	// own hash + metadata phases. At k=1 a multiget degenerates to the
	// plain GET decomposition exactly.
	MultigetPerKeyNetInstr  float64
	MultigetPerKeyNetMisses float64
	// MultigetPerKeyReqBytes is the request-payload growth per extra key
	// ("get k1 k2 ...": one more space-separated key token).
	MultigetPerKeyReqBytes int64
}

// DefaultCosts returns the calibrated cost set used by every experiment.
func DefaultCosts() RequestCosts {
	return RequestCosts{
		GetHashInstr: 750,
		GetMetaInstr: 3000,
		GetNetInstr:  26250,

		PutHashInstr: 750,
		PutMetaInstr: 6000,
		PutNetInstr:  26000,

		PerPacketInstr: 200,

		GetHashMisses: 50,
		GetMetaMisses: 150,
		GetNetMisses:  1000,
		PutHashMisses: 50,
		PutMetaMisses: 350,
		PutNetMisses:  900,

		DRAMGetTrips:  8,
		DRAMPutTrips:  12,
		FlashGetReads: 3,
		FlashPutReads: 3,

		FlashPutPrograms: 5,
		SlabCopyFactor:   4,

		// ~10% of the full per-request netstack cost per marginal key:
		// socket read of a longer line, one more VALUE header, and the
		// response append — no extra syscall, interrupt, or TCP work.
		MultigetPerKeyNetInstr:  2500,
		MultigetPerKeyNetMisses: 120,
		MultigetPerKeyReqBytes:  25,
	}
}

// Op is the request type.
type Op int

const (
	// Get is a memcached GET (read) request.
	Get Op = iota
	// Put is a memcached SET (write) request.
	Put
)

func (o Op) String() string {
	if o == Get {
		return "GET"
	}
	return "PUT"
}

// instr returns the fixed instruction count for an op.
func (c RequestCosts) instr(op Op) float64 {
	if op == Get {
		return c.GetHashInstr + c.GetMetaInstr + c.GetNetInstr
	}
	return c.PutHashInstr + c.PutMetaInstr + c.PutNetInstr
}

// misses returns the fixed L1-miss count for an op.
func (c RequestCosts) misses(op Op) float64 {
	if op == Get {
		return c.GetHashMisses + c.GetMetaMisses + c.GetNetMisses
	}
	return c.PutHashMisses + c.PutMetaMisses + c.PutNetMisses
}
