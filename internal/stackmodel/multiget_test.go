package stackmodel

import "testing"

// TestMultigetK1MatchesSingleGet pins the compatibility contract: batch
// size 1 is the plain GET path, equal in every derived statistic — the
// multiget code must not perturb the calibrated single-key results.
func TestMultigetK1MatchesSingleGet(t *testing.T) {
	for name, cfg := range map[string]Config{"mercury": mercuryA7(4), "iridium": iridiumA7(4)} {
		st, err := NewStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.ServiceTimeMultiget(1, 64), st.ServiceTime(Get, 64); got != want {
			t.Fatalf("%s: ServiceTimeMultiget(1) = %v, ServiceTime = %v", name, got, want)
		}

		single := measure(t, cfg, Get, 64, 50)
		st2, err := NewStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := st2.MeasureMultiget(1, 64, 50)
		if err != nil {
			t.Fatal(err)
		}
		if batch.MeanRTT != single.MeanRTT || batch.StackTPS != single.StackTPS ||
			batch.Completed != single.Completed || batch.PortUtilization != single.PortUtilization {
			t.Fatalf("%s: k=1 multiget diverges from single GET:\n%+v\n%+v", name, batch, single)
		}
	}
}

// TestMultigetAmortizesNetStack: per-key service time must fall
// monotonically with batch size — the Figure 4a netstack share is paid
// once per batch — while total batch time still grows with k.
func TestMultigetAmortizesNetStack(t *testing.T) {
	st, err := NewStack(mercuryA7(1))
	if err != nil {
		t.Fatal(err)
	}
	prevPerKey := st.ServiceTimeMultiget(1, 64).Seconds()
	prevTotal := 0.0
	for _, k := range []int{4, 16, 64} {
		total := st.ServiceTimeMultiget(k, 64).Seconds()
		perKey := total / float64(k)
		if perKey >= prevPerKey {
			t.Fatalf("k=%d: per-key service %.2gs did not amortize below %.2gs", k, perKey, prevPerKey)
		}
		if total <= prevTotal {
			t.Fatalf("k=%d: total batch service must still grow with k", k)
		}
		prevPerKey, prevTotal = perKey, total
	}
	// The floor: a batch can never be cheaper than its per-key hash +
	// metadata + storage work, which does not amortize.
	if st.ServiceTimeMultiget(64, 64) <= st.ServiceTime(Get, 64) {
		t.Fatal("a 64-key batch cannot cost less than one single GET")
	}
}

// TestMultigetKeyThroughputScales: measured key-level throughput
// (batches/s × k) must rise with batch size on the same stack.
func TestMultigetKeyThroughputScales(t *testing.T) {
	prev := 0.0
	for _, k := range []int{1, 4, 16, 64} {
		st, err := NewStack(mercuryA7(1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := st.MeasureMultiget(k, 64, 30)
		if err != nil {
			t.Fatal(err)
		}
		keyTPS := r.StackTPS * float64(k)
		if keyTPS <= prev {
			t.Fatalf("k=%d: key throughput %.0f did not beat k/4's %.0f", k, keyTPS, prev)
		}
		prev = keyTPS
	}
}

func TestMultigetValidation(t *testing.T) {
	st, err := NewStack(mercuryA7(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.MeasureMultiget(0, 64, 10); err == nil {
		t.Fatal("batch size 0 accepted")
	}
	if _, err := st.MeasureMultiget(4, 64, 0); err == nil {
		t.Fatal("zero batches accepted")
	}
	if _, err := st.MeasureMultiget(4, -1, 10); err == nil {
		t.Fatal("negative value size accepted")
	}
}
