package stackmodel

import (
	"kv3d/internal/sim"
)

// Offload models a TSSP-style GET accelerator (§3.7, Lim et al.)
// integrated into the 3D stack: a hardware pipeline next to the NIC MAC
// holds the hash table and answers GETs without waking a core. The
// paper's TSSP sits beside a conventional server; putting the same
// engine on a Mercury stack is the natural composition of the two ideas
// and quantifies how far specialization can push TPS/W beyond many
// wimpy cores.
//
// GETs run through the engine (fixed pipeline occupancy plus the usual
// storage-port access); PUTs and everything else still go to the cores,
// exactly like TSSP's software fallback path.
type Offload struct {
	// EngineTime is the pipeline occupancy per GET: parse, hash,
	// response generation. TSSP-like engines sustain a few hundred
	// thousand GETs/s, i.e. a few microseconds of occupancy.
	EngineTime sim.Duration
	// PowerW is the engine's power draw (logic next to the MAC).
	PowerW float64
}

// TSSPOffload returns an engine calibrated to the published TSSP rate
// (~280 KTPS from one engine) at accelerator-class power.
func TSSPOffload() Offload {
	return Offload{
		EngineTime: sim.FromMicros(3.5), // ~285K GETs/s per engine
		PowerW:     1.0,
	}
}

// withOffload attaches the engine resource to a stack (called from
// NewStack when the config carries an Offload).
func (st *Stack) withOffload(o Offload) {
	st.offload = &o
	st.accel = sim.NewResource(st.simr, "accel", 1)
}

// runOneOffloaded serves a GET through the accelerator path: wire → MAC
// → engine → storage port → MAC → wire. Cores are untouched.
func (st *Stack) runOneOffloaded(op Op, valueBytes int64, done func()) {
	st.reqID++
	id := st.reqID
	reqP, respP := payloads(op, valueBytes)
	st.buf.Append(traceRecord(st.simr.Now(), true, reqP, id))
	st.up.Send(reqP, func() {
		st.mac.Forward(reqP, func() {
			st.accel.Acquire(st.offload.EngineTime, func() {
				st.ports[0].Acquire(st.portOccupancy(op, valueBytes), func() {
					st.mac.Forward(respP, func() {
						st.down.Send(respP, func() {
							st.buf.Append(traceRecord(st.simr.Now(), false, respP, id))
							done()
						})
					})
				})
			})
		})
	})
}

// MeasureOffloaded drives closed-loop GETs through the accelerator with
// the given number of outstanding requests (the engine is pipelined, so
// unlike a blocking core it benefits from concurrency).
func (st *Stack) MeasureOffloaded(valueBytes int64, outstanding, requestsPerClient int) (Result, error) {
	if st.offload == nil {
		return Result{}, errNoOffload
	}
	if outstanding < 1 || requestsPerClient < 1 {
		return Result{}, errBadArgs
	}
	st.buf.Reset()
	start := st.simr.Now()
	for c := 0; c < outstanding; c++ {
		remaining := requestsPerClient
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			st.runOneOffloaded(Get, valueBytes, func() { issue() })
		}
		issue()
	}
	st.simr.Run()
	return st.collectResult(start, outstanding)
}
