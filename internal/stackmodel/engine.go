package stackmodel

import (
	"fmt"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/metrics"
	"kv3d/internal/netmodel"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/trace"
)

// Config describes one stack configuration under test.
type Config struct {
	Core  cpu.Core
	Cache cache.Hierarchy
	Mem   memmodel.Device
	// CoresPerStack is the n of Mercury-n / Iridium-n.
	CoresPerStack int
	// Costs defaults to DefaultCosts() when zero.
	Costs *RequestCosts
	// Offload optionally adds a TSSP-style GET engine (see offload.go).
	Offload *Offload
	// DegradedPorts disables that many of the stack's memory ports,
	// modeling a partially failed stack (dead TSVs or vaults): the
	// surviving ports absorb the displaced cores' traffic, so queueing
	// rises and TPS drops instead of the whole stack going dark. At
	// least one port must survive.
	DegradedPorts int
}

func (c Config) costs() RequestCosts {
	if c.Costs != nil {
		return *c.Costs
	}
	return DefaultCosts()
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Mem == nil {
		return fmt.Errorf("stackmodel: nil memory device")
	}
	if c.CoresPerStack < 1 {
		return fmt.Errorf("stackmodel: need at least one core, got %d", c.CoresPerStack)
	}
	if c.CoresPerStack > 2*c.Mem.Ports() {
		return fmt.Errorf("stackmodel: %d cores exceed 2 per memory port (%d ports)",
			c.CoresPerStack, c.Mem.Ports())
	}
	if c.DegradedPorts < 0 || c.DegradedPorts >= c.Mem.Ports() {
		return fmt.Errorf("stackmodel: degraded ports %d out of range [0, %d)",
			c.DegradedPorts, c.Mem.Ports())
	}
	return nil
}

// Stack is the simulated 3D stack plus its closed-loop clients.
type Stack struct {
	cfg   Config
	costs RequestCosts
	simr  *sim.Simulator

	cores []*sim.Resource
	ports []*sim.Resource
	mac   *netmodel.MAC
	up    *netmodel.Link // client -> server
	down  *netmodel.Link // server -> client

	buf   trace.Buffer
	reqID uint64

	// Optional TSSP-style GET engine.
	offload *Offload
	accel   *sim.Resource
}

// NewStack builds the simulated stack. Cores are assigned to ports
// round-robin; at 32 cores two cores share each port (§5.3).
func NewStack(cfg Config) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := sim.New()
	st := &Stack{cfg: cfg, costs: cfg.costs(), simr: s}
	for i := 0; i < cfg.CoresPerStack; i++ {
		st.cores = append(st.cores, sim.NewResource(s, fmt.Sprintf("core%d", i), 1))
	}
	for i := 0; i < cfg.Mem.Ports()-cfg.DegradedPorts; i++ {
		st.ports = append(st.ports, sim.NewResource(s, fmt.Sprintf("port%d", i), 1))
	}
	st.mac = netmodel.NewMAC(s, "mac")
	st.up = netmodel.NewLink(s, "uplink")
	st.down = netmodel.NewLink(s, "downlink")
	if cfg.Offload != nil {
		st.withOffload(*cfg.Offload)
	}
	return st, nil
}

// traceRecord builds a trace entry; toServer selects the direction.
func traceRecord(t sim.Time, toServer bool, bytes int64, id uint64) trace.Record {
	dir := trace.ServerToClient
	if toServer {
		dir = trace.ClientToServer
	}
	return trace.Record{Time: t, Dir: dir, Bytes: bytes, ReqID: id}
}

// portFor maps a core to its memory port.
func (st *Stack) portFor(core int) *sim.Resource {
	return st.ports[core%len(st.ports)]
}

// requestPayload / responsePayload give the TCP payload sizes of one
// memcached transaction of the given value size.
const (
	getRequestOverhead  = 24 // "get <key>\r\n"
	getResponseOverhead = 40 // "VALUE ... END"
	putRequestOverhead  = 40 // "set <key> <flags> <exp> <len>\r\n...\r\n"
	putResponseOverhead = 8  // "STORED\r\n"
)

func payloads(op Op, valueBytes int64) (req, resp int64) {
	if op == Get {
		return getRequestOverhead, valueBytes + getResponseOverhead
	}
	return valueBytes + putRequestOverhead, putResponseOverhead
}

// serviceOnCore computes the pure CPU time of one request on this
// configuration: instruction execution plus cache/memory stall time.
// Port-side occupancy (storage trips, value streaming) is separate so
// that shared-port queueing is simulated, not averaged.
func (st *Stack) serviceOnCore(op Op, valueBytes int64) sim.Duration {
	c := st.cfg
	costs := st.costs
	instr := costs.instr(op)
	// Marginal per-packet work for multi-segment payloads.
	reqP, respP := payloads(op, valueBytes)
	extraSegs := netmodel.Segments(reqP) + netmodel.Segments(respP) - 2
	instr += float64(extraSegs) * costs.PerPacketInstr

	t := c.Core.ComputeTime(instr)

	// Working-set misses through the hierarchy.
	t += st.stallTime(costs.misses(op))

	// Kernel copy of the payload through the network path.
	t += c.Core.StreamTime(valueBytes)
	if op == Put {
		// Slab memcpy of the value (in-cache, faster than the net path).
		f := costs.SlabCopyFactor
		if f < 1 {
			f = 1
		}
		t += sim.FromSeconds(c.Core.StreamTime(valueBytes).Seconds() / f)
	}
	return t
}

// stallTime converts a block's L1-miss count into core stall time.
// L2-served misses overlap up to the core's MLP; storage-bound misses
// only overlap when the device latency fits the out-of-order window
// (DRAM yes, Flash no).
func (st *Stack) stallTime(l1Misses float64) sim.Duration {
	c := st.cfg
	lookup := c.Core.CycleTime(c.Cache.L2LatencyCycles)
	l2Served, memBound := c.Cache.Split(l1Misses)
	memLat := c.Mem.ReadLatency()
	l2Stall := sim.Ps(float64(lookup.Ps()) * l2Served).Duration()
	memStall := sim.Ps(float64((lookup + memLat).Ps()) * memBound).Duration()
	return c.Core.StallTimeAt(l2Stall, lookup) + c.Core.StallTimeAt(memStall, memLat)
}

// portOccupancy computes the storage-device time of one request: the
// per-request unique trips plus the value transfer.
func (st *Stack) portOccupancy(op Op, valueBytes int64) sim.Duration {
	costs := st.costs
	mem := st.cfg.Mem
	var t sim.Duration
	switch mem.Kind() {
	case memmodel.KindDRAM:
		trips := costs.DRAMGetTrips
		if op == Put {
			trips = costs.DRAMPutTrips
		}
		t = sim.Ps(trips * float64(mem.ReadLatency().Ps())).Duration()
		if op == Get {
			t += mem.StreamTime(valueBytes)
		} else {
			t += mem.StreamTime(valueBytes) // slab write-through
		}
	case memmodel.KindFlash:
		if op == Get {
			t = sim.Ps(costs.FlashGetReads*float64(mem.ReadLatency().Ps())).Duration() +
				mem.StreamTime(valueBytes)
		} else {
			programs := costs.FlashPutPrograms
			// Values beyond one page cost additional page programs.
			if extra := memmodel.PagesFor(valueBytes) - 1; extra > 0 {
				programs += float64(extra)
			}
			t = sim.Ps(costs.FlashPutReads*float64(mem.ReadLatency().Ps())).Duration() +
				sim.Ps(programs*float64(mem.WriteLatency().Ps())).Duration()
		}
	}
	return t
}

// runOne issues a single request on the given core and calls done when
// the client has the full response.
func (st *Stack) runOne(core int, op Op, valueBytes int64, done func()) {
	st.reqID++
	id := st.reqID
	reqP, respP := payloads(op, valueBytes)

	st.buf.Append(trace.Record{Time: st.simr.Now(), Dir: trace.ClientToServer, Bytes: reqP, ReqID: id})
	st.up.Send(reqP, func() {
		st.mac.Forward(reqP, func() {
			// Core executes the software path...
			st.cores[core].Acquire(st.serviceOnCore(op, valueBytes), func() {
				// ...then the storage access (port may be shared).
				st.portFor(core).Acquire(st.portOccupancy(op, valueBytes), func() {
					st.mac.Forward(respP, func() {
						st.down.Send(respP, func() {
							st.buf.Append(trace.Record{
								Time: st.simr.Now(), Dir: trace.ServerToClient,
								Bytes: respP, ReqID: id,
							})
							done()
						})
					})
				})
			})
		})
	})
}

// Result is the outcome of a measurement run.
type Result struct {
	// MeanRTT is the trace-derived average round-trip time.
	MeanRTT sim.Duration
	// TPSPerCore = 1 / MeanRTT (single outstanding request per core).
	TPSPerCore float64
	// StackTPS = TPSPerCore × cores, the paper's linear scaling, with
	// port contention included because it is simulated directly.
	StackTPS float64
	// Completed counts measured requests.
	Completed int
	// Hist is the RTT distribution in picoseconds.
	Hist *metrics.Histogram
	// PortUtilization is the mean busy fraction of the memory ports.
	PortUtilization float64
}

// BandwidthBytesPerSec is the payload bandwidth implied by the result.
func (r Result) BandwidthBytesPerSec(valueBytes int64) float64 {
	return r.StackTPS * float64(valueBytes)
}

// Measure runs requestsPerCore closed-loop requests on every core and
// reports trace-derived statistics.
func (st *Stack) Measure(op Op, valueBytes int64, requestsPerCore int) (Result, error) {
	if requestsPerCore < 1 {
		return Result{}, fmt.Errorf("stackmodel: requestsPerCore must be positive")
	}
	if valueBytes < 0 {
		return Result{}, fmt.Errorf("stackmodel: negative value size")
	}
	st.buf.Reset()
	start := st.simr.Now()

	for core := range st.cores {
		core := core
		remaining := requestsPerCore
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			st.runOne(core, op, valueBytes, func() {
				issue()
			})
		}
		issue()
	}
	st.simr.Run()
	return st.collectResult(start, len(st.cores))
}

// DumpTrace emits the last run's packet trace as obs spans on a fresh
// track, so a closed-loop Measure can be opened in Perfetto. Call it
// before the next Measure: that Reset invalidates the packet buffer.
func (st *Stack) DumpTrace(t *obs.Tracer) {
	if !t.Enabled() {
		return
	}
	trace.EmitSpans(t, t.RegisterTrack("packets"), st.buf.Snapshot())
}

// collectResult derives trace-based statistics for a finished run.
// clients is the closed-loop population (cores, or accelerator
// outstanding requests); TPSPerCore reports the per-client rate.
func (st *Stack) collectResult(start sim.Time, clients int) (Result, error) {
	// Snapshot, not Records: the extracted view must not alias storage
	// that the next Measure's Reset will reuse.
	rtts := trace.ExtractRTTs(st.buf.Snapshot())
	if len(rtts) == 0 {
		return Result{}, fmt.Errorf("stackmodel: no completed requests")
	}
	hist := metrics.NewHistogram()
	for _, r := range rtts {
		hist.Record(int64(r.Duration.Ps()))
	}
	mean := trace.MeanRTT(rtts)
	span := st.simr.Now().Sub(start)
	var util float64
	for _, p := range st.ports {
		util += p.Utilization(span)
	}
	util /= float64(len(st.ports))
	return Result{
		MeanRTT:         mean,
		TPSPerCore:      1 / mean.Seconds(),
		StackTPS:        float64(len(rtts)) / span.Seconds(),
		Completed:       len(rtts),
		Hist:            hist,
		PortUtilization: util,
	}, nil
}

// Sentinel errors for the offload API.
var (
	errNoOffload = fmt.Errorf("stackmodel: stack has no offload engine")
	errBadArgs   = fmt.Errorf("stackmodel: outstanding and requests must be positive")
)

// Breakdown reports the Figure 4 decomposition: the fraction of server
// processing time spent in hash computation, memcached metadata work,
// and the network stack (including data transfer), for one request.
type Breakdown struct {
	Hash     float64
	Memcache float64
	NetStack float64
}

// PhaseBreakdown computes the analytic Figure 4 split for this
// configuration at the given op and value size. Wire time is excluded
// (the paper measures server-side execution).
func (st *Stack) PhaseBreakdown(op Op, valueBytes int64) Breakdown {
	c := st.cfg
	costs := st.costs

	var hashI, metaI, netI, hashM, metaM, netM float64
	if op == Get {
		hashI, metaI, netI = costs.GetHashInstr, costs.GetMetaInstr, costs.GetNetInstr
		hashM, metaM, netM = costs.GetHashMisses, costs.GetMetaMisses, costs.GetNetMisses
	} else {
		hashI, metaI, netI = costs.PutHashInstr, costs.PutMetaInstr, costs.PutNetInstr
		hashM, metaM, netM = costs.PutHashMisses, costs.PutMetaMisses, costs.PutNetMisses
	}
	reqP, respP := payloads(op, valueBytes)
	extraSegs := netmodel.Segments(reqP) + netmodel.Segments(respP) - 2
	netI += float64(extraSegs) * costs.PerPacketInstr

	phase := func(instr, misses float64) float64 {
		t := c.Core.ComputeTime(instr)
		t += st.stallTime(misses)
		return t.Seconds()
	}
	hash := phase(hashI, hashM)
	meta := phase(metaI, metaM)
	net := phase(netI, netM)

	// Value movement: the kernel copy and wire-facing work belong to the
	// network stack; the slab copy and storage trips to memcached.
	net += c.Core.StreamTime(valueBytes).Seconds()
	meta += st.portOccupancy(op, valueBytes).Seconds()
	if op == Put {
		f := costs.SlabCopyFactor
		if f < 1 {
			f = 1
		}
		meta += c.Core.StreamTime(valueBytes).Seconds() / f
	}

	total := hash + meta + net
	if total <= 0 {
		return Breakdown{}
	}
	return Breakdown{Hash: hash / total, Memcache: meta / total, NetStack: net / total}
}

// ServiceTime returns the server-side processing time of one request —
// core execution plus storage-port occupancy — excluding wire time and
// queueing. The server-level simulation uses it as the per-request
// service demand.
func (st *Stack) ServiceTime(op Op, valueBytes int64) sim.Duration {
	return st.serviceOnCore(op, valueBytes) + st.portOccupancy(op, valueBytes)
}
