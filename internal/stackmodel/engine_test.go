package stackmodel

import (
	"math"
	"testing"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/sim"
)

func dram(lat sim.Duration) memmodel.Device { return memmodel.MustDRAM3D(lat) }
func flash(lat sim.Duration) memmodel.Device {
	return memmodel.MustFlash3D(lat, 200*sim.Microsecond)
}

func mercuryA7(n int) Config {
	return Config{Core: cpu.CortexA7(), Cache: cache.L2MB2(), Mem: dram(10 * sim.Nanosecond), CoresPerStack: n}
}

func iridiumA7(n int) Config {
	return Config{Core: cpu.CortexA7(), Cache: cache.L2MB2(), Mem: flash(10 * sim.Microsecond), CoresPerStack: n}
}

func measure(t *testing.T, cfg Config, op Op, size int64, reqs int) Result {
	t.Helper()
	st, err := NewStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.Measure(op, size, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("nil memory accepted")
	}
	c := mercuryA7(0)
	if err := c.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	c = mercuryA7(64)
	if err := c.Validate(); err == nil {
		t.Fatal("64 cores exceed 2/port and must be rejected")
	}
	if err := mercuryA7(32).Validate(); err != nil {
		t.Fatalf("32 cores (2/port) should be valid: %v", err)
	}
}

func TestMeasureArgumentValidation(t *testing.T) {
	st, _ := NewStack(mercuryA7(1))
	if _, err := st.Measure(Get, 64, 0); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := st.Measure(Get, -1, 10); err == nil {
		t.Fatal("negative size accepted")
	}
}

// TestMercuryAnchorTPS pins the headline calibration: an A7 Mercury core
// with a 2MB L2 at 10ns DRAM sustains ~11 KTPS on 64B GETs (Table 4:
// 8.44M TPS over 768 cores).
func TestMercuryAnchorTPS(t *testing.T) {
	r := measure(t, mercuryA7(1), Get, 64, 100)
	if r.TPSPerCore < 10_000 || r.TPSPerCore > 12_000 {
		t.Fatalf("A7 Mercury 64B GET = %.0f TPS, want ~11K", r.TPSPerCore)
	}
}

// TestIridiumAnchorTPS pins the flash calibration: ~5 KTPS per A7 core
// (Table 4: 16.49M over 3072 cores ≈ 5.4K).
func TestIridiumAnchorTPS(t *testing.T) {
	r := measure(t, iridiumA7(1), Get, 64, 100)
	if r.TPSPerCore < 4_500 || r.TPSPerCore > 6_500 {
		t.Fatalf("A7 Iridium 64B GET = %.0f TPS, want ~5.4K", r.TPSPerCore)
	}
}

func TestA15RoughlyTripleA7WithL2(t *testing.T) {
	a7 := measure(t, mercuryA7(1), Get, 64, 100)
	cfg := mercuryA7(1)
	cfg.Core = cpu.MustCortexA15(1e9)
	a15 := measure(t, cfg, Get, 64, 100)
	ratio := a15.TPSPerCore / a7.TPSPerCore
	if ratio < 2.2 || ratio > 3.5 {
		t.Fatalf("A15/A7 = %.2f, paper says ~3x", ratio)
	}
}

func TestA15AdvantageShrinksWithoutL2(t *testing.T) {
	noL2 := func(core cpu.Core) Result {
		cfg := Config{Core: core, Cache: cache.None(), Mem: dram(100 * sim.Nanosecond), CoresPerStack: 1}
		return measure(t, cfg, Get, 64, 100)
	}
	withL2 := func(core cpu.Core) Result {
		cfg := Config{Core: core, Cache: cache.L2MB2(), Mem: dram(100 * sim.Nanosecond), CoresPerStack: 1}
		return measure(t, cfg, Get, 64, 100)
	}
	ratioNoL2 := noL2(cpu.MustCortexA15(1e9)).TPSPerCore / noL2(cpu.CortexA7()).TPSPerCore
	ratioL2 := withL2(cpu.MustCortexA15(1e9)).TPSPerCore / withL2(cpu.CortexA7()).TPSPerCore
	if ratioNoL2 >= ratioL2 {
		t.Fatalf("removing the L2 should narrow the A15 advantage: %.2f vs %.2f", ratioNoL2, ratioL2)
	}
	if ratioNoL2 > 2.6 {
		t.Fatalf("no-L2 A15/A7 = %.2f, paper says 1-2x", ratioNoL2)
	}
}

// TestL2HindersAtFastDRAM reproduces §6.2: at 10ns the L2 provides no
// benefit and may hinder.
func TestL2HindersAtFastDRAM(t *testing.T) {
	with := measure(t, mercuryA7(1), Get, 64, 100)
	cfg := mercuryA7(1)
	cfg.Cache = cache.None()
	without := measure(t, cfg, Get, 64, 100)
	if without.TPSPerCore < with.TPSPerCore {
		t.Fatalf("no-L2 (%.0f) should not lose to L2 (%.0f) at 10ns", without.TPSPerCore, with.TPSPerCore)
	}
}

// TestL2EssentialForFlash reproduces §6.2: removing the L2 from Iridium
// collapses TPS below 100.
func TestL2EssentialForFlash(t *testing.T) {
	cfg := iridiumA7(1)
	cfg.Cache = cache.None()
	r := measure(t, cfg, Get, 64, 20)
	if r.TPSPerCore >= 100 {
		t.Fatalf("no-L2 Iridium = %.0f TPS, paper says below 100", r.TPSPerCore)
	}
}

func TestLatencySensitivityWithoutL2(t *testing.T) {
	at := func(lat sim.Duration) float64 {
		cfg := Config{Core: cpu.CortexA7(), Cache: cache.None(), Mem: dram(lat), CoresPerStack: 1}
		return measure(t, cfg, Get, 64, 100).TPSPerCore
	}
	t10, t100 := at(10*sim.Nanosecond), at(100*sim.Nanosecond)
	if t10/t100 < 1.8 {
		t.Fatalf("no-L2 10ns/100ns = %.2f, should degrade ~2x", t10/t100)
	}
	withL2 := func(lat sim.Duration) float64 {
		cfg := Config{Core: cpu.CortexA7(), Cache: cache.L2MB2(), Mem: dram(lat), CoresPerStack: 1}
		return measure(t, cfg, Get, 64, 100).TPSPerCore
	}
	w10, w100 := withL2(10*sim.Nanosecond), withL2(100*sim.Nanosecond)
	if w10/w100 > 1.2 {
		t.Fatalf("with L2, latency sensitivity should be mild: %.2f", w10/w100)
	}
}

func TestPutSlowerThanGet(t *testing.T) {
	g := measure(t, mercuryA7(1), Get, 64, 100)
	p := measure(t, mercuryA7(1), Put, 64, 100)
	if p.TPSPerCore >= g.TPSPerCore {
		t.Fatalf("PUT (%.0f) should be slower than GET (%.0f)", p.TPSPerCore, g.TPSPerCore)
	}
}

func TestFlashPutBelow1K(t *testing.T) {
	r := measure(t, iridiumA7(1), Put, 64, 50)
	if r.TPSPerCore >= 1000 {
		t.Fatalf("Iridium PUT = %.0f TPS, paper says below 1,000", r.TPSPerCore)
	}
	if r.TPSPerCore < 300 {
		t.Fatalf("Iridium PUT = %.0f TPS, implausibly slow", r.TPSPerCore)
	}
}

func TestTPSDecreasesWithRequestSize(t *testing.T) {
	prev := math.Inf(1)
	for _, size := range []int64{64, 1024, 16 << 10, 256 << 10, 1 << 20} {
		r := measure(t, mercuryA7(1), Get, size, 30)
		if r.TPSPerCore >= prev {
			t.Fatalf("TPS should fall with size: %.0f at %d", r.TPSPerCore, size)
		}
		prev = r.TPSPerCore
	}
}

func TestNearLinearMultiCoreScaling(t *testing.T) {
	one := measure(t, mercuryA7(1), Get, 64, 50)
	for _, n := range []int{8, 16, 32} {
		r := measure(t, mercuryA7(n), Get, 64, 50)
		ideal := one.TPSPerCore * float64(n)
		if r.StackTPS < 0.95*ideal {
			t.Fatalf("n=%d scaled to %.0f, <95%% of ideal %.0f", n, r.StackTPS, ideal)
		}
		if r.StackTPS > 1.05*ideal {
			t.Fatalf("n=%d scaled to %.0f, >105%% of ideal %.0f (accounting bug?)", n, r.StackTPS, ideal)
		}
	}
}

func TestPortContentionVisibleForLargeFlashValues(t *testing.T) {
	// Two cores per port streaming 1MB values from flash must contend:
	// per-core throughput at n=32 drops below the n=1 value.
	one := measure(t, iridiumA7(1), Get, 1<<20, 10)
	many := measure(t, iridiumA7(32), Get, 1<<20, 10)
	perCore32 := many.StackTPS / 32
	if perCore32 >= one.TPSPerCore*0.98 {
		t.Fatalf("expected shared-port contention: n=1 %.1f vs n=32 per-core %.1f",
			one.TPSPerCore, perCore32)
	}
	if many.PortUtilization <= one.PortUtilization {
		t.Fatal("port utilization should rise with core count")
	}
}

func TestRTTHistogramPopulated(t *testing.T) {
	r := measure(t, mercuryA7(2), Get, 64, 25)
	if r.Hist.Count() != uint64(r.Completed) || r.Completed != 50 {
		t.Fatalf("completed=%d hist=%d", r.Completed, r.Hist.Count())
	}
	if r.Hist.Percentile(99) < r.Hist.Percentile(50) {
		t.Fatal("percentiles out of order")
	}
}

// TestSubMillisecondSLA reproduces the abstract's claim: Mercury and
// Iridium service a majority of requests in the sub-millisecond range.
func TestSubMillisecondSLA(t *testing.T) {
	for name, cfg := range map[string]Config{"mercury": mercuryA7(8), "iridium": iridiumA7(8)} {
		r := measure(t, cfg, Get, 64, 50)
		frac := r.Hist.FractionBelow(int64(sim.Millisecond))
		if frac < 0.9 {
			t.Fatalf("%s: only %.0f%% of 64B GETs under 1ms", name, frac*100)
		}
	}
}

func TestBreakdownMatchesPaperGET(t *testing.T) {
	cfg := Config{Core: cpu.MustCortexA15(1e9), Cache: cache.L2MB2(), Mem: dram(10 * sim.Nanosecond), CoresPerStack: 1}
	st, _ := NewStack(cfg)
	b := st.PhaseBreakdown(Get, 64)
	if b.NetStack < 0.80 || b.NetStack > 0.92 {
		t.Fatalf("GET netstack share = %.2f, paper says ~87%%", b.NetStack)
	}
	if b.Memcache < 0.05 || b.Memcache > 0.15 {
		t.Fatalf("GET memcached share = %.2f, paper says ~10%%", b.Memcache)
	}
	if b.Hash < 0.01 || b.Hash > 0.05 {
		t.Fatalf("GET hash share = %.2f, paper says 2-3%%", b.Hash)
	}
	if math.Abs(b.Hash+b.Memcache+b.NetStack-1) > 1e-9 {
		t.Fatal("breakdown must sum to 1")
	}
}

func TestBreakdownMatchesPaperPUT(t *testing.T) {
	cfg := Config{Core: cpu.MustCortexA15(1e9), Cache: cache.L2MB2(), Mem: dram(10 * sim.Nanosecond), CoresPerStack: 1}
	st, _ := NewStack(cfg)
	b := st.PhaseBreakdown(Put, 64)
	if b.Memcache < 0.12 || b.Memcache > 0.35 {
		t.Fatalf("PUT memcached share = %.2f, paper says up to ~30%%", b.Memcache)
	}
	if b.NetStack < 0.6 {
		t.Fatalf("PUT netstack share = %.2f, should still dominate", b.NetStack)
	}
}

func TestNetStackShareGrowsWithSize(t *testing.T) {
	cfg := Config{Core: cpu.MustCortexA15(1e9), Cache: cache.L2MB2(), Mem: dram(10 * sim.Nanosecond), CoresPerStack: 1}
	st, _ := NewStack(cfg)
	small := st.PhaseBreakdown(Get, 64)
	big := st.PhaseBreakdown(Get, 1<<20)
	if big.NetStack <= small.NetStack {
		t.Fatalf("netstack share should grow with size: %.2f -> %.2f", small.NetStack, big.NetStack)
	}
	if big.Hash >= small.Hash {
		t.Fatal("hash share should shrink with size")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := measure(t, mercuryA7(4), Get, 1024, 25)
	b := measure(t, mercuryA7(4), Get, 1024, 25)
	if a.MeanRTT != b.MeanRTT || a.StackTPS != b.StackTPS {
		t.Fatal("simulation must be deterministic")
	}
}

func TestBandwidthHelper(t *testing.T) {
	r := Result{StackTPS: 1000}
	if got := r.BandwidthBytesPerSec(64); got != 64000 {
		t.Fatalf("bandwidth = %v", got)
	}
}

func TestOpString(t *testing.T) {
	if Get.String() != "GET" || Put.String() != "PUT" {
		t.Fatal("op names")
	}
}

func TestOffloadRequiresEngine(t *testing.T) {
	st, _ := NewStack(mercuryA7(1))
	if _, err := st.MeasureOffloaded(64, 4, 10); err == nil {
		t.Fatal("MeasureOffloaded without an engine must fail")
	}
	cfg := mercuryA7(1)
	o := TSSPOffload()
	cfg.Offload = &o
	st2, _ := NewStack(cfg)
	if _, err := st2.MeasureOffloaded(64, 0, 10); err == nil {
		t.Fatal("zero outstanding must be rejected")
	}
}

func TestOffloadBeatsCoresOnGets(t *testing.T) {
	// One TSSP-style engine should out-serve a single A7 core by an
	// order of magnitude on small GETs (the §3.7 premise), and pipeline
	// well with several outstanding requests.
	core := measure(t, mercuryA7(1), Get, 64, 100)

	cfg := mercuryA7(1)
	o := TSSPOffload()
	cfg.Offload = &o
	st, err := NewStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.MeasureOffloaded(64, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.StackTPS < core.TPSPerCore*10 {
		t.Fatalf("offload = %.0f TPS vs core %.0f; want >=10x", res.StackTPS, core.TPSPerCore)
	}
	// The engine saturates around 1/EngineTime regardless of extra
	// outstanding requests.
	max := 1 / o.EngineTime.Seconds()
	if res.StackTPS > max*1.05 {
		t.Fatalf("offload %.0f exceeds engine limit %.0f", res.StackTPS, max)
	}
}

func TestOffloadLeavesCoresForPuts(t *testing.T) {
	// PUTs still travel the core path on an offloaded stack.
	cfg := mercuryA7(2)
	o := TSSPOffload()
	cfg.Offload = &o
	st, err := NewStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Measure(Put, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 {
		t.Fatalf("core PUT path broken: %d completed", res.Completed)
	}
}

// TestRTTMonotoneInMemoryLatencyProperty: for any pair of DRAM latencies
// within the sweep range, the slower device never yields a faster RTT
// (checked across cache configs and ops).
func TestRTTMonotoneInMemoryLatencyProperty(t *testing.T) {
	rng := sim.NewRand(31)
	for trial := 0; trial < 20; trial++ {
		l1 := sim.Duration(1+rng.Intn(999)) * sim.Nanosecond
		l2 := sim.Duration(1+rng.Intn(999)) * sim.Nanosecond
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		ca := cache.L2MB2()
		if trial%2 == 0 {
			ca = cache.None()
		}
		op := Get
		if trial%3 == 0 {
			op = Put
		}
		fast := measure(t, Config{Core: cpu.CortexA7(), Cache: ca, Mem: dram(l1), CoresPerStack: 1}, op, 256, 10)
		slow := measure(t, Config{Core: cpu.CortexA7(), Cache: ca, Mem: dram(l2), CoresPerStack: 1}, op, 256, 10)
		if slow.MeanRTT < fast.MeanRTT {
			t.Fatalf("trial %d: %v DRAM gave %v RTT but %v gave %v",
				trial, l2, slow.MeanRTT, l1, fast.MeanRTT)
		}
	}
}

// TestServiceTimeDecomposition: ServiceTime must equal the closed-loop
// RTT minus the network components, i.e. always be strictly less than
// the measured RTT and positive.
func TestServiceTimeDecomposition(t *testing.T) {
	for _, cfg := range []Config{mercuryA7(1), iridiumA7(1)} {
		st, err := NewStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		svc := st.ServiceTime(Get, 1024)
		if svc <= 0 {
			t.Fatal("service time must be positive")
		}
		res := measure(t, cfg, Get, 1024, 20)
		if svc >= res.MeanRTT {
			t.Fatalf("service %v should be below full RTT %v", svc, res.MeanRTT)
		}
		if res.MeanRTT.Seconds() > svc.Seconds()*1.5 {
			t.Fatalf("network share implausibly large: svc %v rtt %v", svc, res.MeanRTT)
		}
	}
}
