package stackmodel

import (
	"fmt"

	"kv3d/internal/netmodel"
	"kv3d/internal/sim"
)

// Multiget request class: one ASCII "get k1 k2 ... kn" transaction
// serving k keys. The batch pays the per-request network-stack cost
// (Figure 4a's dominant 87% share) once, each key adds its own hash and
// metadata phases plus a small marginal parse/serialize cost, and all k
// values stream back in one response. k=1 is defined to be exactly the
// plain GET path — every function below delegates there, so single-key
// results (including packet traces) are byte-for-byte unchanged.

// multigetPayloads gives the TCP payload sizes of one k-key multiget.
func (st *Stack) multigetPayloads(k int, valueBytes int64) (req, resp int64) {
	if k <= 1 {
		return payloads(Get, valueBytes)
	}
	req = getRequestOverhead + int64(k-1)*st.costs.MultigetPerKeyReqBytes
	resp = int64(k) * (valueBytes + getResponseOverhead)
	return req, resp
}

// serviceOnCoreMultiget is the pure CPU time of one k-key batch.
func (st *Stack) serviceOnCoreMultiget(k int, valueBytes int64) sim.Duration {
	if k <= 1 {
		return st.serviceOnCore(Get, valueBytes)
	}
	c := st.cfg
	costs := st.costs
	fk := float64(k)

	// Per-key phases scale with k; the netstack base cost does not.
	instr := fk*(costs.GetHashInstr+costs.GetMetaInstr) +
		costs.GetNetInstr + (fk-1)*costs.MultigetPerKeyNetInstr
	reqP, respP := st.multigetPayloads(k, valueBytes)
	extraSegs := netmodel.Segments(reqP) + netmodel.Segments(respP) - 2
	instr += float64(extraSegs) * costs.PerPacketInstr
	t := c.Core.ComputeTime(instr)

	misses := fk*(costs.GetHashMisses+costs.GetMetaMisses) +
		costs.GetNetMisses + (fk-1)*costs.MultigetPerKeyNetMisses
	t += st.stallTime(misses)

	// Kernel copy of all k values through the network path.
	t += c.Core.StreamTime(int64(k) * valueBytes)
	return t
}

// portOccupancyMultiget is the storage-device time of one k-key batch:
// every key takes its own per-request trips and value stream (the batch
// amortizes the network stack, not the storage accesses).
func (st *Stack) portOccupancyMultiget(k int, valueBytes int64) sim.Duration {
	if k <= 1 {
		return st.portOccupancy(Get, valueBytes)
	}
	per := st.portOccupancy(Get, valueBytes)
	var t sim.Duration
	for i := 0; i < k; i++ {
		t += per
	}
	return t
}

// ServiceTimeMultiget returns the server-side processing time of one
// k-key multiget, the batch analogue of ServiceTime(Get, ·).
func (st *Stack) ServiceTimeMultiget(k int, valueBytes int64) sim.Duration {
	return st.serviceOnCoreMultiget(k, valueBytes) + st.portOccupancyMultiget(k, valueBytes)
}

// runOneMultiget issues a single k-key batch on the given core.
func (st *Stack) runOneMultiget(core, k int, valueBytes int64, done func()) {
	if k <= 1 {
		st.runOne(core, Get, valueBytes, done)
		return
	}
	st.reqID++
	id := st.reqID
	reqP, respP := st.multigetPayloads(k, valueBytes)

	st.buf.Append(traceRecord(st.simr.Now(), true, reqP, id))
	st.up.Send(reqP, func() {
		st.mac.Forward(reqP, func() {
			st.cores[core].Acquire(st.serviceOnCoreMultiget(k, valueBytes), func() {
				st.portFor(core).Acquire(st.portOccupancyMultiget(k, valueBytes), func() {
					st.mac.Forward(respP, func() {
						st.down.Send(respP, func() {
							st.buf.Append(traceRecord(st.simr.Now(), false, respP, id))
							done()
						})
					})
				})
			})
		})
	})
}

// MeasureMultiget runs batchesPerCore closed-loop k-key multigets on
// every core. Result counts batches: Completed and StackTPS are batch
// rates, so key throughput is StackTPS × k. MeasureMultiget(1, v, n)
// reproduces Measure(Get, v, n) exactly, trace and all.
func (st *Stack) MeasureMultiget(k int, valueBytes int64, batchesPerCore int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("stackmodel: batch size must be positive, got %d", k)
	}
	if batchesPerCore < 1 {
		return Result{}, fmt.Errorf("stackmodel: batchesPerCore must be positive")
	}
	if valueBytes < 0 {
		return Result{}, fmt.Errorf("stackmodel: negative value size")
	}
	st.buf.Reset()
	start := st.simr.Now()

	for core := range st.cores {
		core := core
		remaining := batchesPerCore
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			st.runOneMultiget(core, k, valueBytes, func() {
				issue()
			})
		}
		issue()
	}
	st.simr.Run()
	return st.collectResult(start, len(st.cores))
}
