package memmodel

import (
	"fmt"

	"kv3d/internal/sim"
)

// BankedDRAM is a bank- and row-buffer-accurate model of one port of
// the paper's 3D DRAM (§4.1.1): 8 banks behind the port, each bank a
// 64x64 matrix of subarrays sharing one row buffer over TSVs, 8 kb
// physical pages. It exists to *validate* the flat-latency device used
// by the request model: random metadata accesses should see close to
// the closed-page latency (row buffer rarely helps), while sequential
// value streams should approach the port's sustained bandwidth.
//
// Timing follows the classic decomposition: an access to the open row
// pays tCAS; a different row pays tRP (precharge) + tRCD (activate) +
// tCAS. The paper's "closed page latency of 11 cycles at 1GHz" is the
// full tRP+tRCD+tCAS path; its worst-case model charges that to every
// access.
type BankedDRAM struct {
	banks []int64 // open row per bank, -1 = closed

	tRP  sim.Duration
	tRCD sim.Duration
	tCAS sim.Duration

	rowBytes  int64
	burstTime sim.Duration // per-64B line transfer at port bandwidth

	// Stats.
	accesses uint64
	rowHits  uint64
}

// NewBankedDRAM builds one port's bank model from a closed-page latency
// (split 40/40/20 across tRP/tRCD/tCAS, the conventional proportions).
func NewBankedDRAM(closedPage sim.Duration) (*BankedDRAM, error) {
	if closedPage < sim.Nanosecond || closedPage > sim.Microsecond {
		return nil, fmt.Errorf("memmodel: closed-page latency %v outside [1ns, 1us]", closedPage)
	}
	banks := make([]int64, DRAMBanksPerPort)
	for i := range banks {
		banks[i] = -1
	}
	return &BankedDRAM{
		banks:     banks,
		tRP:       sim.Duration(float64(closedPage) * 0.4),
		tRCD:      sim.Duration(float64(closedPage) * 0.4),
		tCAS:      sim.Duration(float64(closedPage) * 0.2),
		rowBytes:  DRAMPageBytes,
		burstTime: sim.FromSeconds(float64(DRAMLineBytes) / DRAMPortBandwidth),
	}, nil
}

// Access performs one 64B line access at a byte address within the
// port's 256MB space and returns its latency.
func (d *BankedDRAM) Access(addr int64) sim.Duration {
	if addr < 0 {
		addr = -addr
	}
	d.accesses++
	row := addr / d.rowBytes
	bank := int(row) % len(d.banks)
	lat := d.tCAS + d.burstTime
	if d.banks[bank] == row {
		d.rowHits++
		return lat
	}
	if d.banks[bank] != -1 {
		lat += d.tRP // close the old row first
	}
	lat += d.tRCD
	d.banks[bank] = row
	return lat
}

// StreamAccess reads n contiguous bytes starting at addr, returning the
// total time (row activations amortize across the row's lines).
func (d *BankedDRAM) StreamAccess(addr, n int64) sim.Duration {
	var total sim.Duration
	for off := int64(0); off < n; off += DRAMLineBytes {
		total += d.Access(addr + off)
	}
	return total
}

// RowHitRate reports the measured fraction of accesses that hit an open
// row.
func (d *BankedDRAM) RowHitRate() float64 {
	if d.accesses == 0 {
		return 0
	}
	return float64(d.rowHits) / float64(d.accesses)
}

// Accesses reports the total access count.
func (d *BankedDRAM) Accesses() uint64 { return d.accesses }

// ClosedPageLatency returns the full random-access path (tRP+tRCD+tCAS
// plus one burst), the figure the flat model charges every access.
func (d *BankedDRAM) ClosedPageLatency() sim.Duration {
	return d.tRP + d.tRCD + d.tCAS + d.burstTime
}

// Reset closes all rows and clears statistics.
func (d *BankedDRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = -1
	}
	d.accesses, d.rowHits = 0, 0
}
