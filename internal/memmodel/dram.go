// Package memmodel provides the memory-device models under a Mercury or
// Iridium stack: the Tezzaron-style 8-layer 3D DRAM (16 independent
// 128-bit ports, closed-page access), the 16-layer p-BiCS NAND Flash
// with a functional FTL (page mapping, garbage collection, wear
// levelling), and the Table 2 catalog of contemporary memory
// technologies for comparison.
package memmodel

import (
	"fmt"

	"kv3d/internal/sim"
)

// Kind distinguishes the storage technology of a stack.
type Kind int

const (
	KindDRAM Kind = iota
	KindFlash
)

func (k Kind) String() string {
	switch k {
	case KindDRAM:
		return "3D DRAM"
	case KindFlash:
		return "3D NAND Flash"
	default:
		return "unknown-memory"
	}
}

// Device is the interface the stack model uses for timing and power.
type Device interface {
	// Kind reports DRAM or Flash.
	Kind() Kind
	// ReadLatency is the cost of one random read (closed-page access
	// for DRAM, one page read for Flash).
	ReadLatency() sim.Duration
	// WriteLatency is the cost of one random write (row write for
	// DRAM, page program for Flash).
	WriteLatency() sim.Duration
	// StreamTime is the port-side time to move n contiguous bytes.
	StreamTime(bytes int64) sim.Duration
	// CapacityBytes is the stack's storage capacity.
	CapacityBytes() int64
	// Ports is the number of independent access ports (address spaces).
	Ports() int
	// ActiveWPerGBps is the Table 1 bandwidth-proportional power slope.
	ActiveWPerGBps() float64
	// BackgroundW is the idle/refresh floor per stack.
	BackgroundW() float64
	// Name is a human label for reports.
	Name() string
}

// 3D DRAM constants from the paper (§4.1.1, Tables 1–2).
const (
	DRAMPorts          = 16
	DRAMPortBandwidth  = 6.25e9 // bytes/s per port; 100 GB/s aggregate
	DRAMCapacityBytes  = 4 << 30
	DRAMBanksPerPort   = 8
	DRAMPageBytes      = 8 << 10 // 8kb page per paper's floorplan discussion
	DRAMActiveWPerGBps = 0.210
	DRAMBackgroundW    = 0.21 // refresh/standby floor; see DESIGN.md §5
	DRAMLineBytes      = 64
)

// DRAM3D models the stacked DRAM of a Mercury stack.
type DRAM3D struct {
	latency sim.Duration
	// Open-page policy (ablation): with rowHitRate > 0, accesses that
	// hit the open row pay rowHitLatency instead of the closed-page
	// latency. The paper assumes closed-page for every access as a
	// worst case (§5.2); the ablation quantifies what that conservatism
	// costs.
	rowHitRate    float64
	rowHitLatency sim.Duration
}

// NewDRAM3D builds the device with a closed-page access latency; the
// paper sweeps 10–100ns. The 11-cycle @1GHz figure of §4.1.3 is the
// 10ns operating point.
func NewDRAM3D(latency sim.Duration) (*DRAM3D, error) {
	if latency < sim.Nanosecond || latency > sim.Microsecond {
		return nil, fmt.Errorf("memmodel: DRAM latency %v outside sane range [1ns, 1us]", latency)
	}
	return &DRAM3D{latency: latency}, nil
}

// MustDRAM3D panics on invalid latency (for table literals).
func MustDRAM3D(latency sim.Duration) *DRAM3D {
	d, err := NewDRAM3D(latency)
	if err != nil {
		panic(err)
	}
	return d
}

// WithOpenPage returns a copy using an open-page row-buffer policy: a
// fraction hitRate of accesses pay only hitLatency.
func (d *DRAM3D) WithOpenPage(hitRate float64, hitLatency sim.Duration) *DRAM3D {
	cp := *d
	if hitRate < 0 {
		hitRate = 0
	}
	if hitRate > 1 {
		hitRate = 1
	}
	cp.rowHitRate = hitRate
	cp.rowHitLatency = hitLatency
	return &cp
}

func (d *DRAM3D) Kind() Kind { return KindDRAM }

// ReadLatency returns the expected access latency under the configured
// row-buffer policy (the paper's closed-page default when no open-page
// policy is set).
func (d *DRAM3D) ReadLatency() sim.Duration {
	if d.rowHitRate <= 0 {
		return d.latency
	}
	expected := d.rowHitRate*float64(d.rowHitLatency.Ps()) + (1-d.rowHitRate)*float64(d.latency.Ps())
	return sim.Ps(expected).Duration()
}

func (d *DRAM3D) WriteLatency() sim.Duration { return d.ReadLatency() }
func (d *DRAM3D) CapacityBytes() int64       { return DRAMCapacityBytes }
func (d *DRAM3D) Ports() int                 { return DRAMPorts }
func (d *DRAM3D) ActiveWPerGBps() float64    { return DRAMActiveWPerGBps }
func (d *DRAM3D) BackgroundW() float64       { return DRAMBackgroundW }
func (d *DRAM3D) Name() string               { return fmt.Sprintf("3D DRAM (%v)", d.latency) }

// StreamTime moves bytes at the port's sustained bandwidth plus one
// access latency to open the first page.
func (d *DRAM3D) StreamTime(bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	xfer := sim.FromSeconds(float64(bytes) / DRAMPortBandwidth)
	return d.latency + xfer
}

// Flash constants (Toshiba p-BiCS §4.2.1; latencies from Grupp et al.).
const (
	FlashPorts = 16
	// FlashCapacityBytes is 19.8 GiB expressed in integer arithmetic.
	FlashCapacityBytes  int64 = 198 * (1 << 30) / 10
	FlashPageBytes            = 4 << 10
	FlashPagesPerBlock        = 64
	FlashActiveWPerGBps       = 0.006
	FlashBackgroundW          = 0.05
	FlashEraseLatency         = 2 * sim.Millisecond
	// FlashChannelBytesPerSec is the effective sustained per-port data
	// rate for bulk page transfers (sense is pipelined with transfer
	// only across pages, not within one). This is deliberately low —
	// a first-generation p-BiCS part behind a simple controller — and
	// is calibrated so the Iridium max-bandwidth row of Table 3
	// reproduces (≈14 MB/s per core at 1MB values; see EXPERIMENTS.md).
	FlashChannelBytesPerSec = 15e6
)

// Flash3D models the p-BiCS NAND of an Iridium stack.
type Flash3D struct {
	readLat  sim.Duration
	writeLat sim.Duration
}

// NewFlash3D builds the device; the paper sweeps reads 10–20µs with
// writes at 200µs.
func NewFlash3D(readLat, writeLat sim.Duration) (*Flash3D, error) {
	if readLat < sim.Microsecond || readLat > sim.Millisecond {
		return nil, fmt.Errorf("memmodel: flash read latency %v outside [1us, 1ms]", readLat)
	}
	if writeLat < readLat {
		return nil, fmt.Errorf("memmodel: flash write latency %v below read latency %v", writeLat, readLat)
	}
	return &Flash3D{readLat: readLat, writeLat: writeLat}, nil
}

// MustFlash3D panics on invalid latencies (for table literals).
func MustFlash3D(readLat, writeLat sim.Duration) *Flash3D {
	f, err := NewFlash3D(readLat, writeLat)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *Flash3D) Kind() Kind                 { return KindFlash }
func (f *Flash3D) ReadLatency() sim.Duration  { return f.readLat }
func (f *Flash3D) WriteLatency() sim.Duration { return f.writeLat }
func (f *Flash3D) CapacityBytes() int64       { return FlashCapacityBytes }
func (f *Flash3D) Ports() int                 { return FlashPorts }
func (f *Flash3D) ActiveWPerGBps() float64    { return FlashActiveWPerGBps }
func (f *Flash3D) BackgroundW() float64       { return FlashBackgroundW }
func (f *Flash3D) Name() string               { return fmt.Sprintf("3D NAND (read %v)", f.readLat) }

// StreamTime reads ceil(bytes/page) pages serially through one port's
// controller: each page pays the array sense latency, and the requested
// bytes cross the channel at the sustained transfer rate (partial-page
// reads only transfer the needed sectors).
func (f *Flash3D) StreamTime(bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	pages := (bytes + FlashPageBytes - 1) / FlashPageBytes
	sense := f.readLat * sim.Duration(pages)
	xfer := sim.FromSeconds(float64(bytes) / FlashChannelBytesPerSec)
	return sense + xfer
}

// PagesFor returns the page count covering n bytes.
func PagesFor(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + FlashPageBytes - 1) / FlashPageBytes
}
