package memmodel

import (
	"errors"
	"testing"

	"kv3d/internal/sim"
)

func TestEnduranceLifetimeMath(t *testing.T) {
	m := EnduranceModel{
		CapacityBytes:  1 << 30, // 1 GiB
		PageBytes:      4 << 10,
		Cycles:         1000,
		ProgramsPerPut: 5,
		WriteAmp:       2,
	}
	// 262144 pages x 1000 cycles = 262.1M programs; at 10 PUT/s x 10
	// programs each = 100 programs/s -> 2.62M seconds.
	got := m.LifetimeSeconds(10)
	want := 262144.0 * 1000 / 100
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("lifetime = %v, want %v", got, want)
	}
	// Inverse must round-trip.
	rate := m.MaxPutRateForLifetime(got)
	if rate < 9.99 || rate > 10.01 {
		t.Fatalf("inverted rate = %v", rate)
	}
	if m.LifetimeSeconds(0) != 0 || m.MaxPutRateForLifetime(0) != 0 {
		t.Fatal("zero inputs must not divide by zero")
	}
}

func TestIridiumEnduranceHeadline(t *testing.T) {
	m := IridiumEndurance(1.5)
	// The quantitative backing for the paper's "moderate to low request
	// rates" framing: a write-once photo tier (~10 uploads/s/stack)
	// lasts years, but serving memcached-style churn (thousands of
	// PUT/s) wears the stack out within weeks — Iridium is only viable
	// where writes are rare.
	const year = 365.25 * 24 * 3600
	if life := m.LifetimeSeconds(10); life < 2*year {
		t.Fatalf("photo-tier lifetime = %.1f years, want > 2", life/year)
	}
	if life := m.LifetimeSeconds(5_000); life > year/8 {
		t.Fatalf("churn lifetime = %.2f years, should be weeks", life/year)
	}
}

func TestIridiumEnduranceClampsWriteAmp(t *testing.T) {
	if IridiumEndurance(0.2).WriteAmp != 1 {
		t.Fatal("write amp below 1 must clamp")
	}
}

func TestFTLWearOut(t *testing.T) {
	f, err := NewFTL(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetEnduranceLimit(3); err != nil {
		t.Fatal(err)
	}
	if err := f.SetEnduranceLimit(0); err == nil {
		t.Fatal("zero endurance limit accepted")
	}
	rng := sim.NewRand(1)
	var wornOut bool
	for i := 0; i < 200_000; i++ {
		if _, _, err := f.Write(rng.Intn(f.LogicalPages())); err != nil {
			if errors.Is(err, ErrWornOut) || errors.Is(err, ErrFull) {
				wornOut = true
				break
			}
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !wornOut {
		t.Fatal("device never wore out despite a 3-cycle endurance limit")
	}
	if f.RetiredBlocks() == 0 {
		t.Fatal("no blocks were retired")
	}
}

func TestFTLNoWearOutWithoutLimit(t *testing.T) {
	f, _ := NewFTL(8, 4, 2)
	rng := sim.NewRand(2)
	for i := 0; i < 50_000; i++ {
		if _, _, err := f.Write(rng.Intn(f.LogicalPages())); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.WornOut() || f.RetiredBlocks() != 0 {
		t.Fatal("unlimited-endurance device must not retire blocks")
	}
}

func TestOpenPagePolicyLowersLatency(t *testing.T) {
	closed := MustDRAM3D(50 * sim.Nanosecond)
	open := closed.WithOpenPage(0.6, 15*sim.Nanosecond)
	if open.ReadLatency() >= closed.ReadLatency() {
		t.Fatal("open-page policy must lower expected latency")
	}
	// Expected: 0.6*15 + 0.4*50 = 29ns.
	if got := open.ReadLatency(); got != 29*sim.Nanosecond {
		t.Fatalf("expected latency = %v, want 29ns", got)
	}
	if open.WriteLatency() != open.ReadLatency() {
		t.Fatal("write latency should follow the same policy")
	}
	// Hit-rate clamping.
	if closed.WithOpenPage(1.5, 15*sim.Nanosecond).ReadLatency() != 15*sim.Nanosecond {
		t.Fatal("hit rate must clamp to 1")
	}
	if closed.WithOpenPage(-1, 15*sim.Nanosecond).ReadLatency() != 50*sim.Nanosecond {
		t.Fatal("negative hit rate must clamp to 0")
	}
}
