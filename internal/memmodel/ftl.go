package memmodel

import (
	"errors"
	"fmt"
)

// FTL is a functional page-mapped flash translation layer with greedy
// garbage collection and wear levelling, of the kind an Iridium flash
// controller would run (§3.3's programmable flash controller with "a
// sophisticated wear-leveling algorithm"). It tracks logical→physical
// page mappings, block erase counts, and measured write amplification;
// the stack timing model uses the measured amplification to cost PUTs.
type FTL struct {
	pagesPerBlock int
	numBlocks     int

	// l2p maps logical page -> physical page index, -1 if unmapped.
	l2p []int32
	// p2l maps physical page -> logical page, -1 if free/invalid.
	p2l []int32

	blocks []ftlBlock
	// open is the block currently receiving writes, -1 if none.
	open     int
	openNext int // next page offset within the open block

	freeBlocks int

	// gcReserve is the number of blocks kept free; GC triggers when the
	// free count would fall below it.
	gcReserve int

	// Endurance (0 = unlimited; see SetEnduranceLimit).
	maxErases int
	retired   int

	// Stats.
	hostWrites  uint64
	flashWrites uint64
	erases      uint64
	gcRuns      uint64
}

type ftlBlock struct {
	erases  int
	valid   int  // valid pages in the block
	written int  // pages written since last erase
	free    bool // fully erased and not open
	retired bool // worn out, permanently out of service
}

// staticWearPeriod controls how often GC runs a wear-levelling pass
// (victim = lowest-erase sealed block) instead of a greedy pass.
const staticWearPeriod = 16

var (
	// ErrFull is returned when a write cannot find space even after GC.
	ErrFull = errors.New("memmodel: flash device full")
	// ErrBadPage is returned for out-of-range logical pages.
	ErrBadPage = errors.New("memmodel: logical page out of range")
)

// NewFTL builds an FTL over numBlocks blocks of pagesPerBlock pages.
// Logical capacity is the physical capacity minus the GC reserve
// (over-provisioning), as in real SSDs.
func NewFTL(numBlocks, pagesPerBlock, gcReserve int) (*FTL, error) {
	if numBlocks < 4 || pagesPerBlock < 1 {
		return nil, fmt.Errorf("memmodel: FTL needs >=4 blocks and >=1 page/block, got %d/%d", numBlocks, pagesPerBlock)
	}
	if gcReserve < 1 || gcReserve >= numBlocks {
		return nil, fmt.Errorf("memmodel: gcReserve %d out of range [1,%d)", gcReserve, numBlocks)
	}
	total := numBlocks * pagesPerBlock
	f := &FTL{
		pagesPerBlock: pagesPerBlock,
		numBlocks:     numBlocks,
		l2p:           make([]int32, (numBlocks-gcReserve)*pagesPerBlock),
		p2l:           make([]int32, total),
		blocks:        make([]ftlBlock, numBlocks),
		open:          -1,
		freeBlocks:    numBlocks,
		gcReserve:     gcReserve,
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for i := range f.blocks {
		f.blocks[i].free = true
	}
	return f, nil
}

// LogicalPages reports the host-visible capacity in pages.
func (f *FTL) LogicalPages() int { return len(f.l2p) }

// Write maps a logical page write onto flash, running GC as needed.
// It returns the number of physical page programs performed (1 for the
// host write plus any GC relocations) and the number of block erases.
func (f *FTL) Write(logical int) (programs, erases int, err error) {
	if logical < 0 || logical >= len(f.l2p) {
		return 0, 0, ErrBadPage
	}
	if f.WornOut() {
		return 0, 0, ErrWornOut
	}
	f.hostWrites++
	// Invalidate the previous mapping.
	if old := f.l2p[logical]; old >= 0 {
		f.p2l[old] = -1
		f.blocks[int(old)/f.pagesPerBlock].valid--
	}
	progBefore, eraseBefore := f.flashWrites, f.erases
	phys, err := f.allocPage()
	if err != nil {
		return int(f.flashWrites - progBefore), int(f.erases - eraseBefore), err
	}
	f.program(phys, int32(logical))
	f.l2p[logical] = int32(phys)
	return int(f.flashWrites - progBefore), int(f.erases - eraseBefore), nil
}

// Read resolves a logical page; it returns whether the page has ever
// been written.
func (f *FTL) Read(logical int) (mapped bool, err error) {
	if logical < 0 || logical >= len(f.l2p) {
		return false, ErrBadPage
	}
	return f.l2p[logical] >= 0, nil
}

// Trim unmaps a logical page (delete support).
func (f *FTL) Trim(logical int) error {
	if logical < 0 || logical >= len(f.l2p) {
		return ErrBadPage
	}
	if old := f.l2p[logical]; old >= 0 {
		f.p2l[old] = -1
		f.blocks[int(old)/f.pagesPerBlock].valid--
		f.l2p[logical] = -1
	}
	return nil
}

// program writes the logical tag into a physical page.
func (f *FTL) program(phys int, logical int32) {
	b := &f.blocks[phys/f.pagesPerBlock]
	f.p2l[phys] = logical
	b.valid++
	b.written++
	f.flashWrites++
}

// allocPage returns the next free physical page, opening blocks and
// garbage-collecting as necessary. The open block is only replaced once
// fully written — abandoning a partial block would strand its free pages
// (sealed-only GC would never reclaim them). Host writes may dip into
// the GC reserve down to a one-block hard floor kept for GC
// destinations; GC only runs when it can actually reclaim space.
func (f *FTL) allocPage() (int, error) {
	// Bounded by construction: each loop iteration either returns, frees
	// a block via collect, or opens a free block.
	for attempt := 0; attempt < 2*f.numBlocks+4; attempt++ {
		if f.open >= 0 && f.openNext < f.pagesPerBlock {
			p := f.open*f.pagesPerBlock + f.openNext
			f.openNext++
			return p, nil
		}
		if f.freeBlocks <= f.gcReserve && f.gcProfitable() {
			if err := f.collect(); err != nil {
				return 0, err
			}
			continue // collect may have left space in the open block
		}
		if f.freeBlocks > 1 {
			f.openFreshBlock()
			continue
		}
		if f.gcProfitable() {
			if err := f.collect(); err != nil {
				return 0, err
			}
			continue
		}
		return 0, ErrFull
	}
	return 0, ErrFull
}

// gcProfitable reports whether a greedy GC pass can reclaim space: some
// sealed block holds at least one invalid page.
func (f *FTL) gcProfitable() bool {
	for i := range f.blocks {
		if f.blocks[i].free || f.blocks[i].retired || i == f.open {
			continue
		}
		if f.blocks[i].written == f.pagesPerBlock && f.blocks[i].valid < f.pagesPerBlock {
			return true
		}
	}
	return false
}

// openFreshBlock picks the free block with the lowest erase count
// (wear levelling) and makes it the write target.
func (f *FTL) openFreshBlock() {
	best := -1
	for i := range f.blocks {
		if !f.blocks[i].free || f.blocks[i].retired {
			continue
		}
		if best < 0 || f.blocks[i].erases < f.blocks[best].erases {
			best = i
		}
	}
	f.open = best
	f.openNext = 0
	if best >= 0 {
		f.blocks[best].free = false
		f.freeBlocks--
	}
}

// collect performs one greedy GC pass: pick the sealed block with the
// fewest valid pages, relocate its live pages, and erase it. Every
// staticWearPeriod-th pass it instead picks the sealed block with the
// lowest erase count, migrating cold data so wear spreads evenly.
func (f *FTL) collect() error {
	f.gcRuns++
	wearPass := f.gcRuns%staticWearPeriod == 0
	victim := -1
	for i := range f.blocks {
		if f.blocks[i].free || f.blocks[i].retired || i == f.open {
			continue
		}
		if f.blocks[i].written < f.pagesPerBlock {
			continue // still has unwritten pages; not a GC candidate
		}
		if !wearPass && f.blocks[i].valid == f.pagesPerBlock {
			continue // greedy passes skip fully-valid blocks: no gain
		}
		if victim < 0 {
			victim = i
			continue
		}
		if wearPass {
			if f.blocks[i].erases < f.blocks[victim].erases {
				victim = i
			}
		} else if f.blocks[i].valid < f.blocks[victim].valid {
			victim = i
		}
	}
	if victim < 0 {
		return ErrFull
	}
	if wearPass && f.blocks[victim].valid == f.pagesPerBlock && f.freeBlocks < 2 {
		// A cold fully-valid migration needs a destination block; skip
		// wear levelling when the pool is at the floor.
		return nil
	}
	// Relocate valid pages into the open block (opening new ones if
	// needed — the reserve guarantees room).
	base := victim * f.pagesPerBlock
	for off := 0; off < f.pagesPerBlock; off++ {
		phys := base + off
		logical := f.p2l[phys]
		if logical < 0 {
			continue
		}
		dst, err := f.relocTarget(victim)
		if err != nil {
			return err
		}
		f.p2l[phys] = -1
		f.blocks[victim].valid--
		f.program(dst, logical)
		f.l2p[logical] = int32(dst)
	}
	// Erase the victim, retiring it if it has reached its P/E budget.
	b := &f.blocks[victim]
	b.erases++
	b.valid = 0
	b.written = 0
	f.erases++
	if f.maxErases > 0 && b.erases >= f.maxErases {
		b.retired = true
		f.retired++
		return nil
	}
	b.free = true
	f.freeBlocks++
	return nil
}

// relocTarget finds a destination page for GC relocation, never choosing
// the victim block.
func (f *FTL) relocTarget(victim int) (int, error) {
	if f.open >= 0 && f.open != victim && f.openNext < f.pagesPerBlock {
		p := f.open*f.pagesPerBlock + f.openNext
		f.openNext++
		return p, nil
	}
	f.openFreshBlock()
	if f.open < 0 || f.open == victim {
		return 0, ErrFull
	}
	p := f.open*f.pagesPerBlock + f.openNext
	f.openNext++
	return p, nil
}

// WriteAmplification reports flash page programs per host page write.
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 1
	}
	return float64(f.flashWrites) / float64(f.hostWrites)
}

// Erases reports total block erases.
func (f *FTL) Erases() uint64 { return f.erases }

// GCRuns reports how many GC passes have executed.
func (f *FTL) GCRuns() uint64 { return f.gcRuns }

// WearSpread returns (minErase, maxErase) across blocks; wear levelling
// keeps the spread small.
func (f *FTL) WearSpread() (min, max int) {
	min, max = int(^uint(0)>>1), 0
	for i := range f.blocks {
		e := f.blocks[i].erases
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return min, max
}
