package memmodel

import (
	"testing"

	"kv3d/internal/sim"
)

func TestBankedDRAMValidation(t *testing.T) {
	if _, err := NewBankedDRAM(0); err == nil {
		t.Fatal("zero latency accepted")
	}
	if _, err := NewBankedDRAM(10 * sim.Microsecond); err == nil {
		t.Fatal("huge latency accepted")
	}
}

func TestBankedDRAMRowHitFastPath(t *testing.T) {
	d, err := NewBankedDRAM(10 * sim.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	first := d.Access(0) // cold: activate + cas
	hit := d.Access(64)  // same row: cas only
	if hit >= first {
		t.Fatalf("row hit (%v) must beat activation (%v)", hit, first)
	}
	if d.RowHitRate() != 0.5 {
		t.Fatalf("hit rate = %v", d.RowHitRate())
	}
}

func TestBankedDRAMConflictSlowPath(t *testing.T) {
	d, _ := NewBankedDRAM(10 * sim.Nanosecond)
	rowBytes := int64(DRAMPageBytes)
	banks := int64(DRAMBanksPerPort)
	d.Access(0)                            // open row 0 in bank 0
	conflict := d.Access(rowBytes * banks) // row 8 -> bank 0 again: precharge+activate
	cold := d.Access(rowBytes)             // bank 1, first touch: activate only
	if conflict <= cold {
		t.Fatalf("bank conflict (%v) must cost more than a cold activation (%v)", conflict, cold)
	}
	if conflict != d.ClosedPageLatency() {
		t.Fatalf("conflict latency %v should equal the closed-page path %v", conflict, d.ClosedPageLatency())
	}
}

// TestRandomAccessesJustifyClosedPageModel: metadata-style random
// accesses across the 256MB port space almost never hit an open row, so
// the paper's flat closed-page charge is the right model for them.
func TestRandomAccessesJustifyClosedPageModel(t *testing.T) {
	d, _ := NewBankedDRAM(10 * sim.Nanosecond)
	rng := sim.NewRand(7)
	var total sim.Duration
	const n = 50_000
	for i := 0; i < n; i++ {
		addr := int64(rng.Uint64() % (256 << 20))
		total += d.Access(addr)
	}
	if hr := d.RowHitRate(); hr > 0.02 {
		t.Fatalf("random access row-hit rate = %.3f, should be ~0", hr)
	}
	mean := float64(total) / n
	closed := float64(d.ClosedPageLatency())
	// Mean should be within 10% of the closed-page path (most accesses
	// pay precharge+activate+cas).
	if mean < closed*0.9 || mean > closed*1.1 {
		t.Fatalf("random mean %.1fps vs closed-page %.1fps", mean, closed)
	}
}

// TestSequentialStreamApproachesPortBandwidth: value streaming hits the
// open row for 127 of every 128 lines, so the flat model's
// "bytes / 6.25GB/s" stream time is justified too.
func TestSequentialStreamApproachesPortBandwidth(t *testing.T) {
	d, _ := NewBankedDRAM(10 * sim.Nanosecond)
	const size = 1 << 20
	total := d.StreamAccess(0, size)
	if hr := d.RowHitRate(); hr < 0.98 {
		t.Fatalf("sequential row-hit rate = %.3f, should be ~1", hr)
	}
	// Effective bandwidth must be within 2x of the port's rated 6.25GB/s
	// (tCAS pipelining is not modeled, so some overhead remains).
	bw := size / total.Seconds()
	if bw < DRAMPortBandwidth/2 {
		t.Fatalf("sequential bandwidth %.2f GB/s too far below port rate", bw/1e9)
	}
}

func TestBankedDRAMReset(t *testing.T) {
	d, _ := NewBankedDRAM(10 * sim.Nanosecond)
	d.Access(0)
	d.Reset()
	if d.Accesses() != 0 || d.RowHitRate() != 0 {
		t.Fatal("reset did not clear stats")
	}
	// After reset the first access is cold again.
	if d.Access(0) == d.tCAS+d.burstTime {
		t.Fatal("rows should be closed after reset")
	}
}
