package memmodel

// Technology is one row of the paper's Table 2: the bandwidth/capacity
// comparison of DIMM packages against 3D-stacked devices.
type Technology struct {
	Name          string
	BandwidthGBps float64
	CapacityBytes int64
	Stacked       bool
	Citation      string
}

// Table2 returns the paper's memory-technology comparison rows, in the
// paper's order.
func Table2() []Technology {
	return []Technology{
		{Name: "DDR3-1333", BandwidthGBps: 10.7, CapacityBytes: 2 << 30, Citation: "Pawlowski, Hot Chips 2011"},
		{Name: "DDR4-2667", BandwidthGBps: 21.3, CapacityBytes: 2 << 30, Citation: "Pawlowski, Hot Chips 2011"},
		{Name: "LPDDR3 (30nm)", BandwidthGBps: 6.4, CapacityBytes: 512 << 20, Citation: "Bae et al., ISSCC 2012"},
		{Name: "HMC I (3D-Stack)", BandwidthGBps: 128.0, CapacityBytes: 512 << 20, Stacked: true, Citation: "Pawlowski, Hot Chips 2011"},
		{Name: "Wide I/O (3D-stack, 50nm)", BandwidthGBps: 12.8, CapacityBytes: 512 << 20, Stacked: true, Citation: "Kim et al., ISSCC 2011"},
		{Name: "Tezzaron Octopus (3D-Stack)", BandwidthGBps: 50.0, CapacityBytes: 512 << 20, Stacked: true, Citation: "Tezzaron, 2012"},
		{Name: "Future Tezzaron (3D-stack)", BandwidthGBps: 100.0, CapacityBytes: 4 << 30, Stacked: true, Citation: "Giridhar et al., SC 2013"},
	}
}
