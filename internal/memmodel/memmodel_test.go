package memmodel

import (
	"testing"
	"testing/quick"

	"kv3d/internal/sim"
)

func TestDRAMConstruction(t *testing.T) {
	d, err := NewDRAM3D(10 * sim.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind() != KindDRAM {
		t.Fatal("kind")
	}
	if d.ReadLatency() != 10*sim.Nanosecond || d.WriteLatency() != 10*sim.Nanosecond {
		t.Fatal("latency")
	}
	if d.CapacityBytes() != 4<<30 {
		t.Fatalf("capacity = %d", d.CapacityBytes())
	}
	if d.Ports() != 16 {
		t.Fatalf("ports = %d", d.Ports())
	}
	if _, err := NewDRAM3D(0); err == nil {
		t.Fatal("zero latency should be rejected")
	}
	if _, err := NewDRAM3D(2 * sim.Microsecond); err == nil {
		t.Fatal("huge latency should be rejected")
	}
}

func TestDRAMStreamTime(t *testing.T) {
	d := MustDRAM3D(10 * sim.Nanosecond)
	// 6.25 GB/s port: 6.25 bytes per ns. 625 bytes = 100ns + 10ns open.
	got := d.StreamTime(625)
	want := 110 * sim.Nanosecond
	if got < want-sim.Nanosecond || got > want+sim.Nanosecond {
		t.Fatalf("StreamTime(625) = %v, want ~%v", got, want)
	}
	if d.StreamTime(0) != 0 {
		t.Fatal("zero bytes should take no time")
	}
}

func TestFlashConstruction(t *testing.T) {
	f, err := NewFlash3D(10*sim.Microsecond, 200*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind() != KindFlash {
		t.Fatal("kind")
	}
	if f.CapacityBytes() != 198*(1<<30)/10 {
		t.Fatalf("capacity = %d", f.CapacityBytes())
	}
	if _, err := NewFlash3D(100*sim.Nanosecond, 200*sim.Microsecond); err == nil {
		t.Fatal("sub-microsecond read latency should be rejected")
	}
	if _, err := NewFlash3D(20*sim.Microsecond, 10*sim.Microsecond); err == nil {
		t.Fatal("write faster than read should be rejected")
	}
}

func TestFlashStreamTimePages(t *testing.T) {
	f := MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond)
	// Small reads: one page sense plus a tiny channel transfer.
	got := f.StreamTime(1)
	if got < 10*sim.Microsecond || got > 11*sim.Microsecond {
		t.Fatalf("1 byte = %v, want ~one page sense", got)
	}
	// Page boundary: crossing 4096 adds a second sense.
	if f.StreamTime(4097) < f.StreamTime(4096)+9*sim.Microsecond {
		t.Fatalf("crossing a page boundary must add a sense: %v vs %v",
			f.StreamTime(4096), f.StreamTime(4097))
	}
	// Bulk reads are channel-bound: 1MB at 15MB/s ≈ 70ms plus senses.
	bulk := f.StreamTime(1 << 20)
	wantXfer := sim.FromSeconds(float64(1<<20) / FlashChannelBytesPerSec)
	wantSense := 256 * 10 * sim.Microsecond
	if bulk != wantXfer+wantSense {
		t.Fatalf("1MB = %v, want %v", bulk, wantXfer+wantSense)
	}
	if f.StreamTime(0) != 0 {
		t.Fatal("zero bytes should take no time")
	}
}

func TestPagesFor(t *testing.T) {
	for in, want := range map[int64]int64{0: 0, 1: 1, 4096: 1, 4097: 2, 1 << 20: 256} {
		if got := PagesFor(in); got != want {
			t.Errorf("PagesFor(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDensityRatioFlashVsDRAM(t *testing.T) {
	// The paper's §4.2.1: ~4.9x density increase for Iridium stacks.
	ratio := float64(FlashCapacityBytes) / float64(DRAMCapacityBytes)
	if ratio < 4.8 || ratio > 5.0 {
		t.Fatalf("flash/DRAM density ratio = %.2f, want ~4.95", ratio)
	}
}

func TestTable2Catalog(t *testing.T) {
	rows := Table2()
	if len(rows) != 7 {
		t.Fatalf("Table 2 has %d rows, want 7", len(rows))
	}
	var future Technology
	for _, r := range rows {
		if r.BandwidthGBps <= 0 || r.CapacityBytes <= 0 {
			t.Errorf("row %q has non-positive figures", r.Name)
		}
		if r.Name == "Future Tezzaron (3D-stack)" {
			future = r
		}
	}
	if future.BandwidthGBps != 100 || future.CapacityBytes != 4<<30 || !future.Stacked {
		t.Fatalf("future Tezzaron row wrong: %+v", future)
	}
}

func TestFTLBasicWriteRead(t *testing.T) {
	f, err := NewFTL(16, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.LogicalPages() != 14*8 {
		t.Fatalf("logical pages = %d", f.LogicalPages())
	}
	mapped, err := f.Read(0)
	if err != nil || mapped {
		t.Fatal("fresh page should be unmapped")
	}
	progs, erases, err := f.Write(0)
	if err != nil || progs != 1 || erases != 0 {
		t.Fatalf("first write: progs=%d erases=%d err=%v", progs, erases, err)
	}
	mapped, _ = f.Read(0)
	if !mapped {
		t.Fatal("written page should be mapped")
	}
}

func TestFTLRejectsBadConfig(t *testing.T) {
	if _, err := NewFTL(2, 8, 1); err == nil {
		t.Fatal("too few blocks accepted")
	}
	if _, err := NewFTL(16, 0, 1); err == nil {
		t.Fatal("zero pages/block accepted")
	}
	if _, err := NewFTL(16, 8, 16); err == nil {
		t.Fatal("reserve >= blocks accepted")
	}
}

func TestFTLBadPage(t *testing.T) {
	f, _ := NewFTL(16, 8, 2)
	if _, _, err := f.Write(-1); err != ErrBadPage {
		t.Fatal("negative page accepted")
	}
	if _, _, err := f.Write(f.LogicalPages()); err != ErrBadPage {
		t.Fatal("out-of-range page accepted")
	}
	if _, err := f.Read(99999); err != ErrBadPage {
		t.Fatal("out-of-range read accepted")
	}
	if err := f.Trim(99999); err != ErrBadPage {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestFTLOverwriteTriggersGC(t *testing.T) {
	f, _ := NewFTL(16, 8, 2)
	// Fill logical space once, then overwrite it several times: GC must
	// run and write amplification must stay finite and >= 1.
	for round := 0; round < 6; round++ {
		for p := 0; p < f.LogicalPages(); p++ {
			if _, _, err := f.Write(p); err != nil {
				t.Fatalf("round %d page %d: %v", round, p, err)
			}
		}
	}
	if f.GCRuns() == 0 {
		t.Fatal("GC never ran under sustained overwrite")
	}
	wa := f.WriteAmplification()
	if wa < 1.0 {
		t.Fatalf("write amplification %v < 1", wa)
	}
	if wa > 5.0 {
		t.Fatalf("write amplification %v implausibly high for sequential overwrite", wa)
	}
}

func TestFTLHotColdWriteAmplification(t *testing.T) {
	// Random overwrites of a subset with cold data resident: WA > 1.
	f, _ := NewFTL(32, 16, 4)
	for p := 0; p < f.LogicalPages(); p++ {
		f.Write(p)
	}
	rng := sim.NewRand(1)
	hot := f.LogicalPages() / 4
	for i := 0; i < 20_000; i++ {
		if _, _, err := f.Write(rng.Intn(hot)); err != nil {
			t.Fatal(err)
		}
	}
	wa := f.WriteAmplification()
	if wa <= 1.0 {
		t.Fatalf("hot/cold workload should amplify writes, WA = %v", wa)
	}
}

func TestFTLWearLevelling(t *testing.T) {
	f, _ := NewFTL(32, 8, 4)
	for p := 0; p < f.LogicalPages(); p++ {
		f.Write(p)
	}
	rng := sim.NewRand(2)
	for i := 0; i < 30_000; i++ {
		f.Write(rng.Intn(f.LogicalPages()))
	}
	min, max := f.WearSpread()
	if max == 0 {
		t.Fatal("no erases happened")
	}
	// Wear levelling bound: max erase count within 3x of min+1.
	if float64(max) > 3*float64(min+1) {
		t.Fatalf("wear spread too wide: min=%d max=%d", min, max)
	}
}

func TestFTLTrimFreesSpace(t *testing.T) {
	f, _ := NewFTL(16, 8, 2)
	for p := 0; p < f.LogicalPages(); p++ {
		f.Write(p)
	}
	for p := 0; p < f.LogicalPages(); p++ {
		if err := f.Trim(p); err != nil {
			t.Fatal(err)
		}
		mapped, _ := f.Read(p)
		if mapped {
			t.Fatal("trimmed page still mapped")
		}
	}
	// Rewrites after trim must succeed.
	for p := 0; p < f.LogicalPages(); p++ {
		if _, _, err := f.Write(p); err != nil {
			t.Fatalf("rewrite after trim: %v", err)
		}
	}
}

func TestFTLMappingConsistencyProperty(t *testing.T) {
	// Model check: after arbitrary write/trim sequences, Read agrees
	// with a simple set model.
	f2, _ := NewFTL(16, 8, 3)
	model := make(map[int]bool)
	prop := func(ops []uint16) bool {
		for _, raw := range ops {
			page := int(raw) % f2.LogicalPages()
			if raw%3 == 0 {
				if f2.Trim(page) != nil {
					return false
				}
				delete(model, page)
			} else {
				if _, _, err := f2.Write(page); err != nil {
					return false
				}
				model[page] = true
			}
		}
		for p := 0; p < f2.LogicalPages(); p++ {
			mapped, _ := f2.Read(p)
			if mapped != model[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
