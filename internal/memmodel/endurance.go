package memmodel

import (
	"errors"
	"fmt"
)

// Flash endurance. p-BiCS-era MLC NAND sustains a few thousand
// program/erase cycles per cell. Iridium's economics only work for
// low-write-rate tiers (McDipper-style photo serving); this model makes
// that constraint quantitative, and the FTL's wear-out mechanics below
// let the failure-injection tests exercise end-of-life behaviour.

// DefaultFlashEnduranceCycles is the per-block P/E budget.
const DefaultFlashEnduranceCycles = 3000

// ErrWornOut is returned once the device has retired too many blocks to
// hold its logical capacity.
var ErrWornOut = errors.New("memmodel: flash device worn out")

// EnduranceModel estimates device lifetime under a write workload.
type EnduranceModel struct {
	// CapacityBytes and PageBytes describe the device.
	CapacityBytes int64
	PageBytes     int64
	// Cycles is the per-cell P/E endurance.
	Cycles float64
	// ProgramsPerPut is the page programs a single PUT causes (value +
	// FTL metadata), before GC.
	ProgramsPerPut float64
	// WriteAmp is the FTL's garbage-collection write amplification.
	WriteAmp float64
}

// IridiumEndurance returns the endurance model for one Iridium stack
// with the calibrated PUT cost and a measured-FTL write amplification.
func IridiumEndurance(writeAmp float64) EnduranceModel {
	if writeAmp < 1 {
		writeAmp = 1
	}
	return EnduranceModel{
		CapacityBytes:  FlashCapacityBytes,
		PageBytes:      FlashPageBytes,
		Cycles:         DefaultFlashEnduranceCycles,
		ProgramsPerPut: 5, // matches stackmodel.DefaultCosts
		WriteAmp:       writeAmp,
	}
}

// TotalPagePrograms is the device's lifetime page-program budget.
func (m EnduranceModel) TotalPagePrograms() float64 {
	pages := float64(m.CapacityBytes) / float64(m.PageBytes)
	return pages * m.Cycles
}

// LifetimeSeconds returns how long the device lasts at a sustained PUT
// rate (PUTs per second).
func (m EnduranceModel) LifetimeSeconds(putsPerSec float64) float64 {
	if putsPerSec <= 0 {
		return 0
	}
	programsPerSec := putsPerSec * m.ProgramsPerPut * m.WriteAmp
	return m.TotalPagePrograms() / programsPerSec
}

// MaxPutRateForLifetime inverts LifetimeSeconds: the sustainable PUT
// rate for a target lifetime.
func (m EnduranceModel) MaxPutRateForLifetime(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return m.TotalPagePrograms() / (m.ProgramsPerPut * m.WriteAmp * seconds)
}

// --- FTL wear-out mechanics ---------------------------------------------

// SetEnduranceLimit enables block retirement: a block whose erase count
// reaches maxErases is taken out of service after its next GC. When the
// remaining blocks cannot cover the logical space plus one spare, writes
// fail with ErrWornOut.
func (f *FTL) SetEnduranceLimit(maxErases int) error {
	if maxErases < 1 {
		return fmt.Errorf("memmodel: endurance limit %d must be positive", maxErases)
	}
	f.maxErases = maxErases
	return nil
}

// RetiredBlocks reports how many blocks have been retired for wear.
func (f *FTL) RetiredBlocks() int { return f.retired }

// WornOut reports whether the device can no longer serve writes.
func (f *FTL) WornOut() bool {
	if f.maxErases == 0 {
		return false
	}
	usable := f.numBlocks - f.retired
	needed := (len(f.l2p)+f.pagesPerBlock-1)/f.pagesPerBlock + 1
	return usable < needed
}
