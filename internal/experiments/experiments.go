// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns report.Tables whose rows carry the
// same series the paper plots; kv3d-bench prints them and EXPERIMENTS.md
// records them against the published values.
package experiments

import (
	"fmt"
	"sort"

	"kv3d/internal/report"
)

// Options tune experiment fidelity.
type Options struct {
	// Quick trims sweeps (fewer sizes, fewer requests) for CI and unit
	// tests; the full runs are the kv3d-bench defaults.
	Quick bool
	// TracePath, when non-empty, asks experiments that drive the
	// event-level simulator (currently loadlatency) to record one
	// representative run as Chrome trace-event JSON at this path.
	// Experiments without an event-level run ignore it.
	TracePath string
}

// Result is one regenerated experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
}

// Runner regenerates one experiment.
type Runner func(Options) (Result, error)

var registry = map[string]Runner{
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"table4": Table4,
	"fig4":   Figure4,
	"fig5":   Figure5,
	"fig6":   Figure6,
	"fig7":   Figure7,
	"fig8":   Figure8,
}

// presentationOrder fixes the -run all sequence: the paper's tables and
// figures first, extension studies after.
var presentationOrder = []string{
	"table1", "table2", "table3", "table4",
	"fig4", "fig5", "fig6", "fig7", "fig8",
	"thermal", "hotspot", "endurance", "ablation",
	"eviction", "loadlatency", "multiget", "accelerator", "diurnal", "dramsim",
}

// IDs lists experiment identifiers in presentation order; anything
// registered but not in the explicit order sorts to the end.
func IDs() []string {
	rank := make(map[string]int, len(presentationOrder))
	for i, id := range presentationOrder {
		rank[id] = i
	}
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, iok := rank[ids[i]]
		rj, jok := rank[ids[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return ids[i] < ids[j]
		}
	})
	return ids
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opts)
}
