package experiments

import "testing"

// TestEvictionQualityReproducible pins the determinism contract for the
// one experiment that drives the live kvstore rather than the sim
// kernel: with the injected logical clock and the seeded workload
// generator, two runs must render byte-identical tables. Before the
// clock injection, Bags second-chance behaviour depended on host
// wall-clock seconds and the hit-rate table drifted between runs.
func TestEvictionQualityReproducible(t *testing.T) {
	render := func() string {
		r, err := EvictionQuality(Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tb := range r.Tables {
			out += tb.String()
		}
		return out
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("eviction experiment not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
