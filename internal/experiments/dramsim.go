package experiments

import (
	"fmt"

	"kv3d/internal/memmodel"
	"kv3d/internal/report"
	"kv3d/internal/sim"
)

func init() {
	registry["dramsim"] = DRAMSim
}

// DRAMSim validates the flat-latency DRAM device against the bank- and
// row-buffer-accurate model of the paper's §4.1.1 organization: random
// metadata accesses should pay ~the closed-page latency (justifying the
// paper's worst-case charge), while sequential value streams should run
// near the port's rated bandwidth (justifying the flat stream model).
func DRAMSim(o Options) (Result, error) {
	accesses := 200_000
	if o.Quick {
		accesses = 20_000
	}
	closed := 10 * sim.Nanosecond
	t := &report.Table{
		Title:   "Bank-level DRAM validation (one port: 8 banks, 8KB rows, 10ns closed-page)",
		Columns: []string{"Access pattern", "Row-hit rate", "Mean latency", "Flat-model charge", "Error"},
		Note:    "the request model charges closed-page latency to metadata trips and port bandwidth to streams; both hold at bank level",
	}

	// Random metadata accesses over the 256MB port space.
	d, err := memmodel.NewBankedDRAM(closed)
	if err != nil {
		return Result{}, err
	}
	rng := sim.NewRand(41)
	var total sim.Duration
	for i := 0; i < accesses; i++ {
		total += d.Access(int64(rng.Uint64() % (256 << 20)))
	}
	randomMean := sim.Duration(int64(total) / int64(accesses))
	flat := d.ClosedPageLatency()
	t.AddRow("random 64B (metadata trips)",
		fmt.Sprintf("%.3f", d.RowHitRate()),
		randomMean.String(), flat.String(),
		fmt.Sprintf("%+.1f%%", 100*(randomMean.Seconds()-flat.Seconds())/flat.Seconds()))

	// Sequential streaming of a 1MB value.
	d.Reset()
	const streamBytes = 1 << 20
	streamTotal := d.StreamAccess(0, streamBytes)
	bw := streamBytes / streamTotal.Seconds()
	flatDev := memmodel.MustDRAM3D(closed)
	flatStream := flatDev.StreamTime(streamBytes)
	t.AddRow("sequential 1MB (value stream)",
		fmt.Sprintf("%.3f", d.RowHitRate()),
		fmt.Sprintf("%.2f GB/s", bw/1e9),
		flatStream.String()+" total",
		fmt.Sprintf("%+.1f%%", 100*(streamTotal.Seconds()-flatStream.Seconds())/flatStream.Seconds()))

	// Pathological: row-conflict ping-pong between two rows in one bank.
	d.Reset()
	rowBytes := int64(memmodel.DRAMPageBytes)
	banks := int64(memmodel.DRAMBanksPerPort)
	var pingpong sim.Duration
	n := accesses / 10
	for i := 0; i < n; i++ {
		addr := int64(0)
		if i%2 == 1 {
			addr = rowBytes * banks // same bank, different row
		}
		pingpong += d.Access(addr)
	}
	ppMean := sim.Duration(int64(pingpong) / int64(n))
	t.AddRow("row ping-pong (worst case)",
		fmt.Sprintf("%.3f", d.RowHitRate()),
		ppMean.String(), flat.String(),
		fmt.Sprintf("%+.1f%%", 100*(ppMean.Seconds()-flat.Seconds())/flat.Seconds()))

	return Result{ID: "dramsim", Title: "Bank-level DRAM validation", Tables: []*report.Table{t}}, nil
}
