package experiments

// Extension experiments beyond the paper's published tables/figures:
// the §6.5 cooling analysis as a table, the §3.8 DHT load-balance
// argument quantified, Iridium flash endurance (the limit behind the
// "moderate to low request rates" framing), and ablations of the
// design choices DESIGN.md calls out (L2, DRAM page policy, port
// sharing).

import (
	"fmt"

	"kv3d/internal/cache"
	"kv3d/internal/clustersim"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/phys"
	"kv3d/internal/report"
	"kv3d/internal/server"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func init() {
	registry["thermal"] = Thermal
	registry["hotspot"] = Hotspot
	registry["endurance"] = Endurance
	registry["ablation"] = Ablation
}

// Thermal reproduces the §6.5 cooling argument: per-stack TDP across
// configurations, checked against the passive-cooling envelope.
func Thermal(o Options) (Result, error) {
	t := &report.Table{
		Title: "Cooling (§6.5): per-stack TDP under passive cooling",
		Columns: []string{"Design", "Core", "Stack TDP (W)", "Junction (C)",
			"Passive OK", "Server TDP (W)", "Airflow OK"},
		Note: fmt.Sprintf("passive limit %.0fW/package, Tj max %.0fC at %.0fC ambient",
			phys.PassiveCoolingLimitW, phys.JunctionMaxC, phys.AmbientC),
	}
	for _, core := range server.CoreConfigs() {
		for _, n := range table3Counts(o) {
			for _, d := range []server.Design{server.Mercury(core, n), server.Iridium(core, n)} {
				e, err := server.Evaluate(d)
				if err != nil {
					return Result{}, err
				}
				perStackBW := 0.0
				if e.Stacks > 0 {
					perStackBW = e.MaxBWBytesPerSec / float64(e.Stacks)
				}
				r := phys.Thermal(core, n, d.Mem, perStackBW, e.Stacks)
				t.AddRow(d.Name, core.Name(),
					fmt.Sprintf("%.2f", r.StackTDPW),
					fmt.Sprintf("%.0f", r.JunctionC),
					yesNo(r.PassiveOK),
					fmt.Sprintf("%.0f", r.ServerTDPW),
					yesNo(r.AirflowOK))
			}
		}
	}
	return Result{ID: "thermal", Title: "Cooling analysis", Tables: []*report.Table{t}}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// Hotspot quantifies §3.8: request imbalance across stacks under Zipf
// traffic, as a function of node count and virtual-node count.
func Hotspot(o Options) (Result, error) {
	requests := 200_000
	if o.Quick {
		requests = 20_000
	}
	t := &report.Table{
		Title: "DHT load balance (§3.8): imbalance = hottest stack / mean",
		Columns: []string{"Stacks", "Virtual nodes", "Zipf skew",
			"Imbalance", "Hottest share %", "Usable capacity %"},
	}
	type point struct {
		stacks, vnodes int
		skew           float64
	}
	points := []point{
		{8, 1, 0}, {8, 160, 0},
		{96, 1, 0}, {96, 160, 0},
		{96, 160, 0.99}, {96, 160, 1.2},
		{8, 160, 0.99},
	}
	for _, p := range points {
		r, err := clustersim.Run(clustersim.Config{
			Stacks:       p.stacks,
			VirtualNodes: p.vnodes,
			Keys:         100_000,
			ZipfSkew:     p.skew,
			Requests:     requests,
			Seed:         11,
		})
		if err != nil {
			return Result{}, err
		}
		t.AddRow(p.stacks, p.vnodes, p.skew,
			fmt.Sprintf("%.2f", r.Imbalance),
			fmt.Sprintf("%.2f", r.HottestShare*100),
			fmt.Sprintf("%.0f", r.EffectiveThroughputFraction*100))
	}
	return Result{ID: "hotspot", Title: "DHT load balance", Tables: []*report.Table{t}}, nil
}

// Endurance quantifies Iridium's flash-lifetime envelope: sustainable
// PUT rates per stack for target lifetimes, using the FTL's measured
// write amplification on cache-like churn.
func Endurance(o Options) (Result, error) {
	// Measure write amplification on a hot/cold churn workload.
	ftl, err := memmodel.NewFTL(128, 64, 12)
	if err != nil {
		return Result{}, err
	}
	writes := 200_000
	if o.Quick {
		writes = 20_000
	}
	rng := sim.NewRand(5)
	hot := ftl.LogicalPages() / 4
	for i := 0; i < ftl.LogicalPages(); i++ {
		if _, _, err := ftl.Write(i); err != nil {
			return Result{}, err
		}
	}
	for i := 0; i < writes; i++ {
		if _, _, err := ftl.Write(rng.Intn(hot)); err != nil {
			return Result{}, err
		}
	}
	wa := ftl.WriteAmplification()
	m := memmodel.IridiumEndurance(wa)

	t := &report.Table{
		Title:   "Iridium flash endurance (per 19.8GB stack)",
		Columns: []string{"PUT rate (/s)", "Lifetime", "Viable tier"},
		Note: fmt.Sprintf("measured FTL write amplification %.2f on hot/cold churn; %g P/E cycles; %g programs/PUT",
			wa, float64(memmodel.DefaultFlashEnduranceCycles), m.ProgramsPerPut),
	}
	const (
		day  = 24 * 3600.0
		year = 365.25 * day
	)
	for _, rate := range []float64{1, 10, 100, 1_000, 10_000, 100_000} {
		life := m.LifetimeSeconds(rate)
		var human, verdict string
		switch {
		case life >= year:
			human = fmt.Sprintf("%.1f years", life/year)
		case life >= day:
			human = fmt.Sprintf("%.1f days", life/day)
		default:
			human = fmt.Sprintf("%.1f hours", life/3600)
		}
		switch {
		case life >= 3*year:
			verdict = "yes (write-once photo tier)"
		case life >= year/2:
			verdict = "marginal"
		default:
			verdict = "no (memcached-style churn)"
		}
		t.AddRow(fmt.Sprintf("%.0f", rate), human, verdict)
	}
	rateFor5y := m.MaxPutRateForLifetime(5 * year)
	t.AddRow("—", fmt.Sprintf("5-year budget: %.0f PUT/s", rateFor5y), "")
	return Result{ID: "endurance", Title: "Flash endurance", Tables: []*report.Table{t}}, nil
}

// Ablation quantifies three design choices: the L2 at fast vs slow DRAM
// (§6.2), closed- vs open-page DRAM (the paper's worst-case assumption,
// §5.2), and 1 vs 2 cores per memory port (§5.3).
func Ablation(o Options) (Result, error) {
	reqs := requestCount(o)
	measure := func(cfg stackmodel.Config, op stackmodel.Op, size int64) (stackmodel.Result, error) {
		st, err := stackmodel.NewStack(cfg)
		if err != nil {
			return stackmodel.Result{}, err
		}
		return st.Measure(op, size, reqs)
	}

	// L2 ablation across latencies.
	l2 := &report.Table{
		Title:   "Ablation: 2MB L2 on an A7 Mercury core (64B GET TPS)",
		Columns: []string{"DRAM latency", "With L2", "Without L2", "L2 speedup"},
	}
	for _, lat := range []sim.Duration{10 * sim.Nanosecond, 50 * sim.Nanosecond, 100 * sim.Nanosecond} {
		with, err := measure(stackmodel.Config{
			Core: cpu.CortexA7(), Cache: cache.L2MB2(),
			Mem: memmodel.MustDRAM3D(lat), CoresPerStack: 1}, stackmodel.Get, 64)
		if err != nil {
			return Result{}, err
		}
		without, err := measure(stackmodel.Config{
			Core: cpu.CortexA7(), Cache: cache.None(),
			Mem: memmodel.MustDRAM3D(lat), CoresPerStack: 1}, stackmodel.Get, 64)
		if err != nil {
			return Result{}, err
		}
		l2.AddRow(lat.String(),
			fmt.Sprintf("%.0f", with.TPSPerCore),
			fmt.Sprintf("%.0f", without.TPSPerCore),
			fmt.Sprintf("%.2fx", with.TPSPerCore/without.TPSPerCore))
	}

	// DRAM page-policy ablation.
	page := &report.Table{
		Title:   "Ablation: closed-page (paper worst case) vs open-page DRAM (A7, no L2, 64B GET)",
		Columns: []string{"Policy", "Effective latency", "TPS"},
	}
	closed := memmodel.MustDRAM3D(50 * sim.Nanosecond)
	open := closed.WithOpenPage(0.5, 15*sim.Nanosecond)
	for _, row := range []struct {
		name string
		dev  memmodel.Device
	}{{"closed-page", closed}, {"open-page (50% row hits)", open}} {
		r, err := measure(stackmodel.Config{
			Core: cpu.CortexA7(), Cache: cache.None(),
			Mem: row.dev, CoresPerStack: 1}, stackmodel.Get, 64)
		if err != nil {
			return Result{}, err
		}
		page.AddRow(row.name, row.dev.ReadLatency().String(), fmt.Sprintf("%.0f", r.TPSPerCore))
	}

	// Port-sharing ablation under port-heavy traffic.
	ports := &report.Table{
		Title:   "Ablation: memory-port sharing (Iridium, 1MB GET streams)",
		Columns: []string{"Cores/stack", "Cores per port", "Stack TPS", "Per-core TPS", "Port utilization"},
	}
	for _, n := range []int{16, 32} {
		r, err := measure(stackmodel.Config{
			Core: cpu.CortexA7(), Cache: cache.L2MB2(),
			Mem:           memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond),
			CoresPerStack: n}, stackmodel.Get, 1<<20)
		if err != nil {
			return Result{}, err
		}
		ports.AddRow(n, n/16,
			fmt.Sprintf("%.1f", r.StackTPS),
			fmt.Sprintf("%.2f", r.StackTPS/float64(n)),
			fmt.Sprintf("%.2f", r.PortUtilization))
	}

	return Result{ID: "ablation", Title: "Design-choice ablations",
		Tables: []*report.Table{l2, page, ports}}, nil
}
