package experiments

import (
	"fmt"

	"kv3d/internal/kvstore"
	"kv3d/internal/report"
	"kv3d/internal/workload"
)

func init() {
	registry["eviction"] = EvictionQuality
}

// EvictionQuality compares strict LRU against the Bags pseudo-LRU on
// hit rate under Zipf traffic with cache-fill-on-miss — the question
// Wiggins & Langston's design raises: Bags removes the read-path lock
// (the Table 4 scaling win), but does its weaker recency signal cost
// hits? Both policies run the identical request stream on identical
// stores; only the eviction policy differs.
func EvictionQuality(o Options) (Result, error) {
	requests := 150_000
	if o.Quick {
		requests = 30_000
	}
	t := &report.Table{
		Title:   "Eviction quality: strict LRU vs Bags pseudo-LRU (fill-on-miss)",
		Columns: []string{"Zipf skew", "Cache/working set", "LRU hit %", "Bags hit %", "Bags deficit"},
		Note:    "identical request streams; deficit = LRU hit rate - Bags hit rate",
	}
	type scenario struct {
		skew      float64
		memBytes  int64
		valueSize int64
		keys      int
	}
	scenarios := []scenario{
		{0.99, 8 << 20, 1024, 40_000},  // cache ~18% of working set
		{0.99, 24 << 20, 1024, 40_000}, // cache ~55%
		{1.2, 8 << 20, 1024, 40_000},   // hotter traffic
	}
	for _, sc := range scenarios {
		rates := map[kvstore.EvictionPolicy]float64{}
		for _, pol := range []kvstore.EvictionPolicy{kvstore.PolicyLRU, kvstore.PolicyBags} {
			hit, err := runFillOnMiss(pol, sc.memBytes, sc.valueSize, sc.keys, sc.skew, requests)
			if err != nil {
				return Result{}, err
			}
			rates[pol] = hit
		}
		coverage := float64(sc.memBytes) / (float64(sc.keys) * float64(sc.valueSize))
		t.AddRow(sc.skew,
			fmt.Sprintf("%.0f%%", coverage*100),
			fmt.Sprintf("%.1f", rates[kvstore.PolicyLRU]*100),
			fmt.Sprintf("%.1f", rates[kvstore.PolicyBags]*100),
			fmt.Sprintf("%.1f pp", (rates[kvstore.PolicyLRU]-rates[kvstore.PolicyBags])*100))
	}
	return Result{ID: "eviction", Title: "Eviction quality", Tables: []*report.Table{t}}, nil
}

// runFillOnMiss drives a fill-on-miss cache loop and returns the
// steady-state hit rate (misses during the warm half are discarded).
func runFillOnMiss(pol kvstore.EvictionPolicy, memBytes, valueSize int64, keys int, skew float64, requests int) (float64, error) {
	cfg := kvstore.DefaultConfig(memBytes)
	cfg.Mode = kvstore.ModeGlobal
	cfg.Policy = pol
	// A logical clock (one tick per store call) replaces the wall-clock
	// default: Bags second-chance decisions compare item access stamps
	// against bag creation eras, so hit rates would otherwise depend on
	// which host second each request happened to land in, and the table
	// would drift run-to-run.
	var tick int64
	cfg.Clock = func() int64 { tick++; return tick }
	st, err := kvstore.New(cfg)
	if err != nil {
		return 0, err
	}
	gen, err := workload.NewGenerator(workload.MixConfig{
		GetFraction: 1.0,
		Keys:        keys,
		ZipfSkew:    skew,
		Values:      workload.FixedSize(valueSize),
		Seed:        17,
	})
	if err != nil {
		return 0, err
	}
	value := make([]byte, valueSize)
	var hits, total int
	warm := requests / 2
	for i := 0; i < requests; i++ {
		req := gen.Next()
		_, ok := st.Get(req.Key)
		if !ok {
			// Fill from the backing store.
			if err := st.Set(req.Key, value, 0, 0); err != nil {
				return 0, err
			}
		}
		if i >= warm {
			total++
			if ok {
				hits++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: no measured requests")
	}
	return float64(hits) / float64(total), nil
}
