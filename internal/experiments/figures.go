package experiments

import (
	"fmt"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/report"
	"kv3d/internal/server"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
	"kv3d/internal/workload"
)

func sweepSizes(o Options) []int64 {
	if o.Quick {
		return []int64{64, 4 << 10, 1 << 20}
	}
	return workload.SizeSweep()
}

func requestCount(o Options) int {
	if o.Quick {
		return 10
	}
	return 50
}

func sizeLabel(s int64) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dM", s>>20)
	case s >= 1<<10:
		return fmt.Sprintf("%dK", s>>10)
	default:
		return fmt.Sprintf("%d", s)
	}
}

// Figure4 reproduces the GET/PUT execution-time breakdown (hash /
// memcached / network stack) across request sizes on an A15@1GHz with a
// 2MB L2 and 10ns DRAM (§6.1).
func Figure4(o Options) (Result, error) {
	cfg := stackmodel.Config{
		Core:          cpu.MustCortexA15(1e9),
		Cache:         cache.L2MB2(),
		Mem:           memmodel.MustDRAM3D(10 * sim.Nanosecond),
		CoresPerStack: 1,
	}
	st, err := stackmodel.NewStack(cfg)
	if err != nil {
		return Result{}, err
	}
	var tables []*report.Table
	for _, op := range []stackmodel.Op{stackmodel.Get, stackmodel.Put} {
		t := &report.Table{
			Title:   fmt.Sprintf("Figure 4: %s execution time breakdown (A15@1GHz, 2MB L2, 10ns DRAM)", op),
			Columns: []string{"Size", "Hash %", "Memcached %", "Network stack %"},
		}
		for _, size := range sweepSizes(o) {
			b := st.PhaseBreakdown(op, size)
			t.AddRow(sizeLabel(size),
				fmt.Sprintf("%.1f", b.Hash*100),
				fmt.Sprintf("%.1f", b.Memcache*100),
				fmt.Sprintf("%.1f", b.NetStack*100))
		}
		tables = append(tables, t)
	}
	return Result{ID: "fig4", Title: "Request breakdown", Tables: tables}, nil
}

// coreCacheConfigs are the four panels of Figures 5 and 6.
type coreCache struct {
	name  string
	core  cpu.Core
	cache cache.Hierarchy
}

func figurePanels() []coreCache {
	return []coreCache{
		{"A15 @1GHz with 2MB L2", cpu.MustCortexA15(1e9), cache.L2MB2()},
		{"A15 @1GHz with no L2", cpu.MustCortexA15(1e9), cache.None()},
		{"A7 with 2MB L2", cpu.CortexA7(), cache.L2MB2()},
		{"A7 with no L2", cpu.CortexA7(), cache.None()},
	}
}

// latencySweep runs one Figure 5/6 panel: TPS for GET and PUT across
// request sizes for each memory latency.
func latencySweep(o Options, panel coreCache, mems []memmodel.Device, memLabel func(memmodel.Device) string, figure string) (*report.Table, error) {
	cols := []string{"Size"}
	for _, m := range mems {
		cols = append(cols, memLabel(m)+" GET", memLabel(m)+" PUT")
	}
	t := &report.Table{
		Title:   fmt.Sprintf("%s: TPS for %s", figure, panel.name),
		Columns: cols,
	}
	for _, size := range sweepSizes(o) {
		row := []any{sizeLabel(size)}
		for _, m := range mems {
			for _, op := range []stackmodel.Op{stackmodel.Get, stackmodel.Put} {
				st, err := stackmodel.NewStack(stackmodel.Config{
					Core: panel.core, Cache: panel.cache, Mem: m, CoresPerStack: 1,
				})
				if err != nil {
					return nil, err
				}
				res, err := st.Measure(op, size, requestCount(o))
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f", res.TPSPerCore))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure5 reproduces the Mercury-1 DRAM-latency sensitivity sweep.
func Figure5(o Options) (Result, error) {
	latencies := []sim.Duration{10 * sim.Nanosecond, 30 * sim.Nanosecond, 50 * sim.Nanosecond, 100 * sim.Nanosecond}
	if o.Quick {
		latencies = []sim.Duration{10 * sim.Nanosecond, 100 * sim.Nanosecond}
	}
	var mems []memmodel.Device
	for _, l := range latencies {
		mems = append(mems, memmodel.MustDRAM3D(l))
	}
	label := func(m memmodel.Device) string {
		return m.ReadLatency().String()
	}
	var tables []*report.Table
	for _, panel := range figurePanels() {
		t, err := latencySweep(o, panel, mems, label, "Figure 5 (Mercury-1)")
		if err != nil {
			return Result{}, err
		}
		tables = append(tables, t)
	}
	return Result{ID: "fig5", Title: "Mercury-1 DRAM latency sensitivity", Tables: tables}, nil
}

// Figure6 reproduces the Iridium-1 Flash-latency sensitivity sweep.
func Figure6(o Options) (Result, error) {
	reads := []sim.Duration{10 * sim.Microsecond, 20 * sim.Microsecond}
	var mems []memmodel.Device
	for _, l := range reads {
		mems = append(mems, memmodel.MustFlash3D(l, 200*sim.Microsecond))
	}
	label := func(m memmodel.Device) string {
		return m.ReadLatency().String()
	}
	var tables []*report.Table
	for _, panel := range figurePanels() {
		t, err := latencySweep(o, panel, mems, label, "Figure 6 (Iridium-1)")
		if err != nil {
			return Result{}, err
		}
		tables = append(tables, t)
	}
	return Result{ID: "fig6", Title: "Iridium-1 Flash latency sensitivity", Tables: tables}, nil
}

// densityThroughput is shared by Figures 7 and 8.
func densityThroughput(o Options, id, title string, mk func(cpu.Core, int) server.Design) (Result, error) {
	t := &report.Table{
		Title: title,
		Columns: []string{"Config", "Core", "Density (GB)", "Power (W)",
			"TPS @64B (M)"},
	}
	for _, core := range server.CoreConfigs() {
		for _, n := range table3Counts(o) {
			d := mk(core, n)
			e, err := server.Evaluate(d)
			if err != nil {
				return Result{}, err
			}
			t.AddRow(d.Name, core.Name(),
				fmt.Sprintf("%.0f", float64(e.DensityBytes)/(1<<30)),
				fmt.Sprintf("%.0f", e.Power64BW),
				fmt.Sprintf("%.2f", e.TPS64B/1e6))
		}
	}
	return Result{ID: id, Title: title, Tables: []*report.Table{t}}, nil
}

// Figure7 reproduces density vs throughput for Mercury and Iridium.
func Figure7(o Options) (Result, error) {
	ma, err := densityThroughput(o, "fig7", "Figure 7a: Mercury density vs TPS (64B GETs)", server.Mercury)
	if err != nil {
		return Result{}, err
	}
	ib, err := densityThroughput(o, "fig7", "Figure 7b: Iridium density vs TPS (64B GETs)", server.Iridium)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "fig7", Title: "Density and throughput",
		Tables: append(ma.Tables, ib.Tables...)}, nil
}

// Figure8 reproduces power vs throughput for Mercury and Iridium.
func Figure8(o Options) (Result, error) {
	ma, err := densityThroughput(o, "fig8", "Figure 8a: Mercury power vs TPS (64B GETs)", server.Mercury)
	if err != nil {
		return Result{}, err
	}
	ib, err := densityThroughput(o, "fig8", "Figure 8b: Iridium power vs TPS (64B GETs)", server.Iridium)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "fig8", Title: "Power and throughput",
		Tables: append(ma.Tables, ib.Tables...)}, nil
}
