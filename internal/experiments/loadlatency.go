package experiments

import (
	"fmt"
	"os"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/obs"
	"kv3d/internal/report"
	"kv3d/internal/serversim"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func init() {
	registry["loadlatency"] = LoadLatency
}

// LoadLatency extends the paper's evaluation with the open-loop view:
// the paper's TPS numbers are closed-loop linear scalings (capacity),
// but a production SLA is about latency under load. This experiment
// offers rising Poisson load to a simulated 1.5U box and reports the
// latency hockey stick — how much of the nominal capacity is usable
// within the sub-millisecond SLA, under uniform and Zipf-skewed keys.
func LoadLatency(o Options) (Result, error) {
	// A scaled-down box keeps the event count tractable (~37M TPS at
	// full scale would mean tens of millions of simulated arrivals);
	// queueing behaviour depends on utilization, not absolute size.
	stacks, cores := 24, 16
	duration := 60 * sim.Millisecond
	if o.Quick {
		stacks, cores = 8, 8
		duration = 20 * sim.Millisecond
	}
	base := serversim.Config{
		Stack: stackmodel.Config{
			Core:          cpu.CortexA7(),
			Cache:         cache.L2MB2(),
			Mem:           memmodel.MustDRAM3D(10 * sim.Nanosecond),
			CoresPerStack: cores,
		},
		Stacks:     stacks,
		Op:         stackmodel.Get,
		ValueBytes: 64,
		Duration:   duration,
		Keys:       50_000,
		Seed:       23,
	}
	nominal, err := serversim.NominalTPS(base)
	if err != nil {
		return Result{}, err
	}

	var tables []*report.Table
	for _, skew := range []float64{0, 0.99} {
		label := "uniform keys"
		if skew > 0 {
			label = fmt.Sprintf("zipf %.2f keys", skew)
		}
		t := &report.Table{
			Title: fmt.Sprintf("Open-loop Mercury-%d x%d stacks, 64B GETs, %s (nominal %.1fM TPS)",
				cores, stacks, label, nominal/1e6),
			Columns: []string{"Offered %", "Completed (M/s)", "p50", "p99", "<1ms %", "Hottest util"},
		}
		for _, frac := range []float64{0.3, 0.5, 0.7, 0.85, 0.95, 1.05} {
			cfg := base
			cfg.ZipfSkew = skew
			cfg.OfferedTPS = nominal * frac
			// Record the representative loaded-but-stable point (85%
			// offered, uniform keys) when tracing was requested.
			var tr *obs.Tracer
			if o.TracePath != "" && skew == 0 && frac == 0.85 {
				tr = obs.NewTracer()
				cfg.Trace = tr
			}
			r, err := serversim.Run(cfg)
			if err != nil {
				return Result{}, err
			}
			if tr != nil {
				if err := writeTrace(o.TracePath, tr); err != nil {
					return Result{}, err
				}
			}
			t.AddRow(fmt.Sprintf("%.0f", frac*100),
				fmt.Sprintf("%.2f", r.CompletedTPS/1e6),
				sim.Duration(r.Latency.P50).String(),
				sim.Duration(r.Latency.P99).String(),
				fmt.Sprintf("%.1f", r.SubMsFraction*100),
				fmt.Sprintf("%.2f", r.HottestUtilization))
		}
		tables = append(tables, t)
	}
	return Result{ID: "loadlatency", Title: "Open-loop load vs latency", Tables: tables}, nil
}

// writeTrace dumps a recorded tracer to path as trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
