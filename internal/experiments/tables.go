package experiments

import (
	"fmt"

	"kv3d/internal/baseline"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/phys"
	"kv3d/internal/report"
	"kv3d/internal/server"
)

// Table1 reproduces the component power/area constants.
func Table1(Options) (Result, error) {
	t := &report.Table{
		Title:   "Table 1: Power and area for the components of a 3D stack",
		Columns: []string{"Component", "Power", "Area (mm^2)"},
	}
	for _, row := range phys.Table1() {
		power := fmt.Sprintf("%.0f mW", row.PowerW*1000)
		if row.PowerUnit != "W" {
			power = fmt.Sprintf("%.0f mW per GB/s", row.PowerW*1000)
		}
		t.AddRow(row.Component, power, fmt.Sprintf("%.2f", row.AreaMM2))
	}
	return Result{ID: "table1", Title: "Component power and area", Tables: []*report.Table{t}}, nil
}

// Table2 reproduces the memory technology comparison.
func Table2(Options) (Result, error) {
	t := &report.Table{
		Title:   "Table 2: Comparison of 3D-stacked DRAM to DIMM packages",
		Columns: []string{"DRAM", "BW (GB/s)", "Capacity", "3D"},
	}
	for _, tech := range memmodel.Table2() {
		stacked := ""
		if tech.Stacked {
			stacked = "yes"
		}
		t.AddRow(tech.Name, tech.BandwidthGBps, report.Bytes(tech.CapacityBytes), stacked)
	}
	return Result{ID: "table2", Title: "Memory technologies", Tables: []*report.Table{t}}, nil
}

// table3Counts trims the sweep in quick mode.
func table3Counts(o Options) []int {
	if o.Quick {
		return []int{1, 8, 32}
	}
	return server.CoreCounts()
}

// Table3 reproduces the 1.5U maximum-configuration comparison: area,
// power, density and max bandwidth for every core type and count, for
// Mercury and Iridium.
func Table3(o Options) (Result, error) {
	var tables []*report.Table
	for _, core := range server.CoreConfigs() {
		t := &report.Table{
			Title: fmt.Sprintf("Table 3 (%s): 1.5U maximum configurations", core.Name()),
			Columns: []string{"Design", "Cores/stack", "Stacks", "Limit",
				"Area (cm^2)", "Power (W)", "Density (GB)", "Max BW (GB/s)"},
		}
		for _, n := range table3Counts(o) {
			for _, d := range []server.Design{server.Mercury(core, n), server.Iridium(core, n)} {
				e, err := server.Evaluate(d)
				if err != nil {
					return Result{}, err
				}
				t.AddRow(d.Name, n, e.Stacks, string(e.LimitedBy),
					fmt.Sprintf("%.0f", e.AreaCM2),
					fmt.Sprintf("%.0f", e.PowerMaxW),
					fmt.Sprintf("%.0f", float64(e.DensityBytes)/(1<<30)),
					fmt.Sprintf("%.0f", e.MaxBWBytesPerSec/1e9))
			}
		}
		tables = append(tables, t)
	}
	return Result{ID: "table3", Title: "1.5U maximum configurations", Tables: tables}, nil
}

// Table4 reproduces the comparison of A7-based Mercury and Iridium
// against memcached 1.4/1.6/Bags on a Xeon server and the TSSP
// accelerator, plus the paper's headline improvement ratios.
func Table4(o Options) (Result, error) {
	t := &report.Table{
		Title: "Table 4: A7-based Mercury and Iridium vs prior art (64B GETs)",
		Columns: []string{"System", "Stacks", "Cores", "Memory (GB)", "Power (W)",
			"TPS (M)", "KTPS/W", "KTPS/GB", "BW (GB/s)"},
	}
	counts := []int{8, 16, 32}
	if o.Quick {
		counts = []int{32}
	}
	type row struct {
		name string
		eval server.Evaluation
	}
	var best *server.Evaluation
	var bestIridium *server.Evaluation
	add := func(r row) {
		e := r.eval
		t.AddRow(r.name, e.Stacks, e.Cores,
			fmt.Sprintf("%.0f", float64(e.DensityBytes)/(1<<30)),
			fmt.Sprintf("%.0f", e.Power64BW),
			fmt.Sprintf("%.2f", e.TPS64B/1e6),
			fmt.Sprintf("%.2f", e.TPSPerWatt()/1e3),
			fmt.Sprintf("%.2f", e.TPSPerGB()/1e3),
			fmt.Sprintf("%.2f", e.BW64BBytesPerSec/1e9))
	}
	a7 := cpu.CortexA7()
	for _, n := range counts {
		e, err := server.Evaluate(server.Mercury(a7, n))
		if err != nil {
			return Result{}, err
		}
		add(row{fmt.Sprintf("Mercury n=%d", n), e})
		if best == nil || e.TPS64B > best.TPS64B {
			cp := e
			best = &cp
		}
	}
	for _, n := range counts {
		e, err := server.Evaluate(server.Iridium(a7, n))
		if err != nil {
			return Result{}, err
		}
		add(row{fmt.Sprintf("Iridium n=%d", n), e})
		if bestIridium == nil || e.TPS64B > bestIridium.TPS64B {
			cp := e
			bestIridium = &cp
		}
	}
	var bags baseline.XeonServer
	for _, v := range []baseline.Version{baseline.V14, baseline.V16, baseline.Bags} {
		x := baseline.Reference(v)
		if v == baseline.Bags {
			bags = x
		}
		t.AddRow(x.Name(), 1, x.Threads,
			fmt.Sprintf("%.0f", float64(x.MemoryBytes())/(1<<30)),
			fmt.Sprintf("%.0f", x.PowerW()),
			fmt.Sprintf("%.2f", x.TPS64B()/1e6),
			fmt.Sprintf("%.2f", x.TPSPerWatt()/1e3),
			fmt.Sprintf("%.2f", x.TPSPerGB()/1e3),
			fmt.Sprintf("%.2f", x.BandwidthBytesPerSec()/1e9))
	}
	ts := baseline.TSSP{}
	t.AddRow(ts.Name(), 1, 1,
		fmt.Sprintf("%.0f", float64(ts.MemoryBytes())/(1<<30)),
		fmt.Sprintf("%.0f", ts.PowerW()),
		fmt.Sprintf("%.2f", ts.TPS64B()/1e6),
		fmt.Sprintf("%.2f", ts.TPSPerWatt()/1e3),
		fmt.Sprintf("%.2f", ts.TPSPerGB()/1e3), "0.02")

	// Headline ratios vs the optimized baseline (Bags).
	h := &report.Table{
		Title:   "Headline ratios vs optimized Memcached (Bags) — paper targets in parentheses",
		Columns: []string{"Metric", "Mercury (paper)", "Iridium (paper)"},
	}
	bagsGB := float64(bags.MemoryBytes()) / (1 << 30)
	h.AddRow("Density",
		fmt.Sprintf("%.1fx (2.9x)", float64(best.DensityBytes)/(1<<30)/bagsGB),
		fmt.Sprintf("%.1fx (14x)", float64(bestIridium.DensityBytes)/(1<<30)/bagsGB))
	h.AddRow("TPS",
		fmt.Sprintf("%.1fx (10x)", best.TPS64B/bags.TPS64B()),
		fmt.Sprintf("%.1fx (5.2x)", bestIridium.TPS64B/bags.TPS64B()))
	h.AddRow("TPS/Watt",
		fmt.Sprintf("%.1fx (4.9x)", best.TPSPerWatt()/bags.TPSPerWatt()),
		fmt.Sprintf("%.1fx (2.4x)", bestIridium.TPSPerWatt()/bags.TPSPerWatt()))
	h.AddRow("TPS/GB",
		fmt.Sprintf("%.1fx (3.5x)", best.TPSPerGB()/bags.TPSPerGB()),
		fmt.Sprintf("%.2fx (0.36x)", bestIridium.TPSPerGB()/bags.TPSPerGB()))

	return Result{ID: "table4", Title: "Comparison to prior art", Tables: []*report.Table{t, h}}, nil
}
