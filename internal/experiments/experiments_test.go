package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) Result {
	t.Helper()
	r, err := Run(id, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != id {
		t.Fatalf("result ID = %q, want %q", r.ID, id)
	}
	if len(r.Tables) == 0 {
		t.Fatal("experiment produced no tables")
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig4", "fig5", "fig6", "fig7", "fig8",
		"thermal", "hotspot", "endurance", "ablation",
		"eviction", "loadlatency", "multiget", "accelerator", "diurnal", "dramsim",
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(ids), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("presentation order wrong at %d: %v", i, ids)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1(t *testing.T) {
	r := runQuick(t, "table1")
	out := r.Tables[0].String()
	for _, want := range []string{"A7@1GHz", "100 mW", "3D NAND", "220.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	r := runQuick(t, "table2")
	out := r.Tables[0].String()
	if !strings.Contains(out, "HMC I") || !strings.Contains(out, "Future Tezzaron") {
		t.Fatalf("table2 incomplete:\n%s", out)
	}
}

func TestTable3Quick(t *testing.T) {
	r := runQuick(t, "table3")
	if len(r.Tables) != 3 {
		t.Fatalf("table3 should have one table per core config, got %d", len(r.Tables))
	}
	out := r.Tables[2].String() // A7 panel
	if !strings.Contains(out, "Mercury-32") || !strings.Contains(out, "Iridium-32") {
		t.Fatalf("A7 panel incomplete:\n%s", out)
	}
}

func TestTable4QuickRatios(t *testing.T) {
	r := runQuick(t, "table4")
	if len(r.Tables) != 2 {
		t.Fatalf("table4 should ship the comparison and the ratio tables")
	}
	ratios := r.Tables[1].String()
	for _, want := range []string{"Density", "TPS/Watt", "TPS/GB", "(10x)", "(14x)"} {
		if !strings.Contains(ratios, want) {
			t.Errorf("ratio table missing %q:\n%s", want, ratios)
		}
	}
	comparison := r.Tables[0].String()
	for _, want := range []string{"Memcached 1.4", "Memcached Bags", "TSSP", "Mercury n=32"} {
		if !strings.Contains(comparison, want) {
			t.Errorf("comparison missing %q", want)
		}
	}
}

// parseCell pulls the float at the given column of the row whose first
// cell equals name.
func parseCell(t *testing.T, tbl interface{ String() string }, rowPrefix string, col int) float64 {
	t.Helper()
	for _, line := range strings.Split(tbl.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) > col && strings.HasPrefix(line, rowPrefix) {
			v, err := strconv.ParseFloat(fields[col], 64)
			if err == nil {
				return v
			}
		}
	}
	t.Fatalf("row %q col %d not found in\n%s", rowPrefix, col, tbl.String())
	return 0
}

func TestFigure4Shape(t *testing.T) {
	r := runQuick(t, "fig4")
	if len(r.Tables) != 2 {
		t.Fatal("fig4 needs GET and PUT tables")
	}
	get := r.Tables[0]
	// 64B row: netstack ~87%, hash 2-3%.
	net := parseCell(t, get, "64 ", 3)
	if net < 80 || net > 92 {
		t.Fatalf("GET 64B netstack = %v%%, want ~87", net)
	}
	hash := parseCell(t, get, "64 ", 1)
	if hash < 1 || hash > 5 {
		t.Fatalf("GET 64B hash = %v%%, want 2-3", hash)
	}
	put := r.Tables[1]
	mc := parseCell(t, put, "64 ", 2)
	if mc < 12 || mc > 35 {
		t.Fatalf("PUT 64B memcached = %v%%, want ~20-30", mc)
	}
}

func TestFigure5Shape(t *testing.T) {
	r := runQuick(t, "fig5")
	if len(r.Tables) != 4 {
		t.Fatalf("fig5 needs 4 panels, got %d", len(r.Tables))
	}
	// Panel b: A15 no L2. Columns: Size, 10ns GET, 10ns PUT, 100ns GET, 100ns PUT.
	noL2 := r.Tables[1]
	fast := parseCell(t, noL2, "64 ", 1)
	slow := parseCell(t, noL2, "64 ", 3)
	if fast/slow < 1.8 {
		t.Fatalf("no-L2 panel must show strong latency sensitivity: %v vs %v", fast, slow)
	}
	// Panel a: with L2 the sensitivity is mild.
	withL2 := r.Tables[0]
	fastL2 := parseCell(t, withL2, "64 ", 1)
	slowL2 := parseCell(t, withL2, "64 ", 3)
	if fastL2/slowL2 > 1.3 {
		t.Fatalf("L2 panel should be mild: %v vs %v", fastL2, slowL2)
	}
}

func TestFigure6Shape(t *testing.T) {
	r := runQuick(t, "fig6")
	if len(r.Tables) != 4 {
		t.Fatalf("fig6 needs 4 panels, got %d", len(r.Tables))
	}
	// A15 with L2: thousands of TPS at 64B.
	withL2 := r.Tables[0]
	tps := parseCell(t, withL2, "64 ", 1)
	if tps < 2000 {
		t.Fatalf("Iridium A15+L2 = %v TPS, paper says several thousand", tps)
	}
	// No-L2 panels collapse below 100 TPS.
	noL2 := r.Tables[1]
	collapsed := parseCell(t, noL2, "64 ", 1)
	if collapsed >= 100 {
		t.Fatalf("Iridium no-L2 = %v TPS, paper says below 100", collapsed)
	}
	// PUTs stay under 1000 with L2.
	put := parseCell(t, withL2, "64 ", 2)
	if put >= 1100 {
		t.Fatalf("Iridium PUT = %v TPS, paper says under ~1000", put)
	}
}

func TestFigure7Shape(t *testing.T) {
	r := runQuick(t, "fig7")
	if len(r.Tables) != 2 {
		t.Fatal("fig7 needs Mercury and Iridium tables")
	}
	out := r.Tables[0].String()
	if !strings.Contains(out, "Mercury-32") {
		t.Fatalf("fig7a incomplete:\n%s", out)
	}
	if !strings.Contains(r.Tables[1].String(), "Iridium-32") {
		t.Fatal("fig7b incomplete")
	}
}

func TestFigure8Shape(t *testing.T) {
	r := runQuick(t, "fig8")
	if len(r.Tables) != 2 {
		t.Fatal("fig8 needs Mercury and Iridium tables")
	}
	if !strings.Contains(r.Tables[0].Columns[3], "Power") {
		t.Fatal("fig8 must include the power column")
	}
}

func TestEvictionQualityShape(t *testing.T) {
	r := runQuick(t, "eviction")
	out := r.Tables[0].String()
	if !strings.Contains(out, "pp") {
		t.Fatalf("eviction table incomplete:\n%s", out)
	}
	// Bags must stay within a few points of strict LRU everywhere.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 || !strings.Contains(line, "pp") {
			continue
		}
		lru, err1 := strconv.ParseFloat(fields[2], 64)
		bags, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if lru-bags > 10 {
			t.Fatalf("bags deficit too large: %v vs %v", lru, bags)
		}
		if bags > lru+3 {
			t.Fatalf("bags should not beat LRU materially: %v vs %v", bags, lru)
		}
	}
}

func TestMultigetShape(t *testing.T) {
	r := runQuick(t, "multiget")
	if len(r.Tables) != 2 {
		t.Fatalf("multiget needs sim and live tables, got %d", len(r.Tables))
	}
	// Sim table: A7 keys/s must grow monotonically with batch size, and
	// the 64-key speedup must be a real multiple of single-key GETs.
	simTbl := r.Tables[0]
	prev := 0.0
	for _, row := range simTbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad A7 keys/s cell %q", row[1])
		}
		if v <= prev {
			t.Fatalf("A7 keys/s must grow with batch size:\n%s", simTbl.String())
		}
		prev = v
	}
	last := simTbl.Rows[len(simTbl.Rows)-1]
	speedup, err := strconv.ParseFloat(strings.TrimSuffix(last[2], "x"), 64)
	if err != nil || speedup < 2 {
		t.Fatalf("64-key A7 speedup = %q, want >= 2x", last[2])
	}
	// Live table: allocations per batch must be zero in steady state and
	// shard locks per batch must stay within the Shards bound.
	for _, row := range r.Tables[1].Rows {
		locks, err1 := strconv.ParseFloat(row[1], 64)
		allocs, err2 := strconv.ParseFloat(row[2], 64)
		bound, err3 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable live row %v", row)
		}
		if allocs != 0 {
			t.Fatalf("batch %s allocates %.1f per op on the hot path:\n%s", row[0], allocs, r.Tables[1].String())
		}
		if locks > bound {
			t.Fatalf("batch %s takes %.1f locks, beyond the %v-shard bound", row[0], locks, bound)
		}
	}
}

func TestLoadLatencyShape(t *testing.T) {
	r := runQuick(t, "loadlatency")
	if len(r.Tables) != 2 {
		t.Fatalf("loadlatency needs uniform and zipf tables, got %d", len(r.Tables))
	}
	// The uniform table's p99 must grow from the first to the last row.
	rows := r.Tables[0].Rows
	if len(rows) < 3 {
		t.Fatal("too few load points")
	}
	first, last := rows[0], rows[len(rows)-1]
	if first[3] == last[3] {
		t.Fatalf("p99 should grow with load: %s vs %s", first[3], last[3])
	}
}

func TestLoadLatencyTracePath(t *testing.T) {
	if testing.Short() {
		t.Skip("event-level run")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := Run("loadlatency", Options{Quick: true, TracePath: path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !json.Valid(b) {
		t.Fatal("trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
}
