package experiments

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strings"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/kvstore"
	"kv3d/internal/memmodel"
	"kv3d/internal/protocol"
	"kv3d/internal/report"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

func init() {
	registry["multiget"] = Multiget
}

// Multiget quantifies the batched-GET amortization from both ends of
// the repo: the calibrated stack model (how much of Figure 4a's 87%
// network-stack share a k-key batch reclaims) and the live server's
// batched hot path (shard-lock acquisitions and heap allocations per
// batch, which the //kv3d:hotpath contract pins at <= Shards and 0).
// Sweep points are the bench's batch sizes: 1, 4, 16, 64.
func Multiget(o Options) (Result, error) {
	batchSizes := []int{1, 4, 16, 64}
	reqs := 200
	liveSmall, liveLarge := 64, 1024
	if o.Quick {
		reqs = 40
		liveSmall, liveLarge = 32, 288
	}

	// Closed-loop stack model: key throughput per core as the batch
	// grows, A7 and A15 Mercury at 64B values. Speedup is keys/s
	// relative to the same core's single-key GETs — the model-side
	// statement of the lock-once/parse-once server pipeline.
	simT := &report.Table{
		Title:   "Multiget batch sweep - closed-loop stack model, Mercury, 64B values",
		Columns: []string{"Batch", "A7 keys/s/core", "A7 speedup", "A15 keys/s/core", "A15 speedup"},
	}
	mercury := func(core cpu.Core) stackmodel.Config {
		return stackmodel.Config{
			Core:          core,
			Cache:         cache.L2MB2(),
			Mem:           memmodel.MustDRAM3D(10 * sim.Nanosecond),
			CoresPerStack: 1,
		}
	}
	keyTPS := func(cfg stackmodel.Config, k int) (float64, error) {
		st, err := stackmodel.NewStack(cfg)
		if err != nil {
			return 0, err
		}
		r, err := st.MeasureMultiget(k, 64, reqs)
		if err != nil {
			return 0, err
		}
		return r.TPSPerCore * float64(k), nil
	}
	cfgA7, cfgA15 := mercury(cpu.CortexA7()), mercury(cpu.MustCortexA15(1e9))
	baseA7, err := keyTPS(cfgA7, 1)
	if err != nil {
		return Result{}, err
	}
	baseA15, err := keyTPS(cfgA15, 1)
	if err != nil {
		return Result{}, err
	}
	for _, k := range batchSizes {
		a7, err := keyTPS(cfgA7, k)
		if err != nil {
			return Result{}, err
		}
		a15, err := keyTPS(cfgA15, k)
		if err != nil {
			return Result{}, err
		}
		simT.AddRow(k,
			fmt.Sprintf("%.0f", a7), fmt.Sprintf("%.2fx", a7/baseA7),
			fmt.Sprintf("%.0f", a15), fmt.Sprintf("%.2fx", a15/baseA15))
	}

	// Live server: drive the real ASCII session over the batched store
	// path and report the per-batch shard-lock and allocation cost.
	liveT := &report.Table{
		Title:   "Multiget batch sweep - live ASCII server hot path (in-process)",
		Columns: []string{"Batch", "Shard locks/batch", "Allocs/batch", "Lock bound (Shards)"},
	}
	for _, k := range batchSizes {
		locks, allocs, shards, err := measureLiveMultiget(k, liveSmall, liveLarge)
		if err != nil {
			return Result{}, err
		}
		liveT.AddRow(k, fmt.Sprintf("%.1f", locks), fmt.Sprintf("%.1f", allocs), shards)
	}

	return Result{
		ID:     "multiget",
		Title:  "Batched GET amortization",
		Tables: []*report.Table{simT, liveT},
	}, nil
}

// measureLiveMultiget serves sessions of small and large command counts
// (each command a k-key multiget) through the real protocol path and
// derives steady-state per-batch shard locks and heap allocations from
// the deltas — per-session setup cost cancels out exactly as in the
// hotpath alloc gates.
func measureLiveMultiget(k, small, large int) (locksPerOp, allocsPerOp float64, shards int, err error) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		return 0, 0, 0, err
	}
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("key:%03d", i)
		if err := st.Set(keys[i], []byte("0123456789abcdef"), 0, 0); err != nil {
			return 0, 0, 0, err
		}
	}
	line := "get " + strings.Join(keys, " ") + "\r\n"
	session := func(n int) string {
		var b strings.Builder
		b.Grow((len(line))*n + 8)
		for i := 0; i < n; i++ {
			b.WriteString(line)
		}
		b.WriteString("quit\r\n")
		return b.String()
	}
	serve := func(req string) error {
		r := bufio.NewReaderSize(strings.NewReader(req), 4096)
		w := bufio.NewWriterSize(io.Discard, 4096)
		return protocol.NewSessionBuffered(st, r, w).Serve()
	}
	measure := func(n int) (locks uint64, mallocs uint64, err error) {
		req := session(n)
		var m0, m1 runtime.MemStats
		// Memory statistics are snapshotted strictly outside the
		// lock-count window: ReadMemStats stops the world, and a pause
		// between serve and the closing ReadLockCount would let
		// background lock traffic leak into the measured delta.
		runtime.ReadMemStats(&m0)
		l0 := st.ReadLockCount()
		if err := serve(req); err != nil {
			return 0, 0, err
		}
		locks = st.ReadLockCount() - l0
		runtime.ReadMemStats(&m1)
		return locks, m1.Mallocs - m0.Mallocs, nil
	}
	// Warm once so both measured sessions see identical steady state.
	if err := serve(session(4)); err != nil {
		return 0, 0, 0, err
	}
	lSmall, aSmall, err := measure(small)
	if err != nil {
		return 0, 0, 0, err
	}
	lLarge, aLarge, err := measure(large)
	if err != nil {
		return 0, 0, 0, err
	}
	ops := float64(large - small)
	locksPerOp = float64(lLarge-lSmall) / ops
	allocsPerOp = float64(aLarge) - float64(aSmall)
	if allocsPerOp < 0 {
		allocsPerOp = 0
	}
	allocsPerOp /= ops
	return locksPerOp, allocsPerOp, st.Config().Shards, nil
}
