package experiments

import (
	"fmt"
	"math"

	"kv3d/internal/baseline"
	"kv3d/internal/cpu"
	"kv3d/internal/phys"
	"kv3d/internal/report"
	"kv3d/internal/server"
	"kv3d/internal/stackmodel"
)

func init() {
	registry["accelerator"] = Accelerator
	registry["diurnal"] = Diurnal
}

// Accelerator composes the paper's two specialization directions: many
// wimpy cores per stack (Mercury) versus a TSSP-style GET engine on the
// stack (§3.7 moved into the 3D package). One engine plus one A7 (for
// PUTs and management) replaces 32 cores.
func Accelerator(o Options) (Result, error) {
	reqs := requestCount(o)

	// Mercury-32 reference.
	m32, err := server.Evaluate(server.Mercury(cpu.CortexA7(), 32))
	if err != nil {
		return Result{}, err
	}

	// Offloaded stack: engine GET throughput measured in simulation.
	cfg := stackmodel.Config{
		Core:          cpu.CortexA7(),
		Cache:         m32.Design.Cache,
		Mem:           m32.Design.Mem,
		CoresPerStack: 1,
	}
	engine := stackmodel.TSSPOffload()
	cfg.Offload = &engine
	st, err := stackmodel.NewStack(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := st.MeasureOffloaded(64, 8, reqs)
	if err != nil {
		return Result{}, err
	}

	// Server composition: engine power rides on the stack.
	perStackBW := res.StackTPS * 64
	stackPower := phys.StackPowerW(cpu.CortexA7(), 1, cfg.Mem, perStackBW) + engine.PowerW
	stacks, limit := phys.MaxStacks(stackPower)
	serverTPS := res.StackTPS * float64(stacks)
	serverPower := phys.ServerPowerW(stackPower, stacks)

	t := &report.Table{
		Title: "Accelerated stacks: TSSP-style GET engine on a Mercury stack vs Mercury-32 (64B GETs)",
		Columns: []string{"System", "Stacks", "TPS (M)", "Power (W)",
			"KTPS/W", "Density (GB)", "Limit"},
		Note: fmt.Sprintf("engine: %.1f us occupancy (%.0fK GETs/s), %.1f W; published TSSP: %.0fK TPS at %.1fK TPS/W",
			engine.EngineTime.Micros(), 1e-3/engine.EngineTime.Seconds(), engine.PowerW,
			baseline.TSSP{}.TPS64B()/1e3, baseline.TSSP{}.TPSPerWatt()/1e3),
	}
	t.AddRow("Mercury-32 (A7 cores)", m32.Stacks,
		fmt.Sprintf("%.2f", m32.TPS64B/1e6),
		fmt.Sprintf("%.0f", m32.Power64BW),
		fmt.Sprintf("%.1f", m32.TPSPerWatt()/1e3),
		fmt.Sprintf("%.0f", float64(m32.DensityBytes)/(1<<30)),
		string(m32.LimitedBy))
	t.AddRow("Mercury-1 + GET engine", stacks,
		fmt.Sprintf("%.2f", serverTPS/1e6),
		fmt.Sprintf("%.0f", serverPower),
		fmt.Sprintf("%.1f", serverTPS/serverPower/1e3),
		fmt.Sprintf("%.0f", float64(stacks)*4),
		string(limit))
	return Result{ID: "accelerator", Title: "Accelerated stacks", Tables: []*report.Table{t}}, nil
}

// Diurnal quantifies §2.2: traffic follows the day, but provisioned
// servers cannot leave the building. Per-stack power gating gives a
// Mercury box finer energy proportionality than whole-server on/off in
// a Xeon fleet, while floor space stays fixed for both.
func Diurnal(o Options) (Result, error) {
	m32, err := server.Evaluate(server.Mercury(cpu.CortexA7(), 32))
	if err != nil {
		return Result{}, err
	}
	bags := baseline.Reference(baseline.Bags)

	// Provision both fleets for the same peak.
	peakTPS := 100e6
	mercuryBoxes := math.Ceil(peakTPS / m32.TPS64B)
	xeonBoxes := math.Ceil(peakTPS / bags.TPS64B())

	t := &report.Table{
		Title: "Diurnal load (§2.2): fleet power across the day at fixed floor space",
		Columns: []string{"Load %", "Xeon fleet kW (server on/off)",
			"Mercury kW (stack gating)", "Mercury saving"},
		Note: fmt.Sprintf("fleets sized for %.0fM TPS peak: %.0f Bags servers vs %.0f Mercury boxes (%.1fx fewer)",
			peakTPS/1e6, xeonBoxes, mercuryBoxes, xeonBoxes/mercuryBoxes),
	}
	stackPower := (m32.Power64BW - phys.OtherComponentsW) / float64(m32.Stacks)
	for _, load := range []float64{1.0, 0.75, 0.5, 0.25, 0.1} {
		// Xeon fleet: whole servers shut down, the rest run at full
		// power (memcached has no useful DVFS headroom at depth).
		xeonOn := math.Ceil(xeonBoxes * load)
		xeonKW := xeonOn * bags.PowerW() / 1000
		// Mercury: every box stays up (the data must stay resident!)
		// but idle stacks gate to background power. Keep the fraction
		// of stacks needed for the load hot.
		hotStacks := math.Ceil(float64(m32.Stacks) * load)
		idleStacks := float64(m32.Stacks) - hotStacks
		perBox := phys.OtherComponentsW + hotStacks*stackPower + idleStacks*stackPower*0.15
		mercKW := mercuryBoxes * perBox / 1000
		saving := "-"
		if xeonKW > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*(1-mercKW/xeonKW))
		}
		t.AddRow(fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%.0f", xeonKW),
			fmt.Sprintf("%.0f", mercKW),
			saving)
	}
	t2 := &report.Table{
		Title:   "Caveat",
		Columns: []string{"Note"},
	}
	t2.AddRow("Xeon on/off loses the powered-down servers' cached data (§2.3: no persistence);")
	t2.AddRow("Mercury stack gating keeps all data resident because DRAM background power is retained.")
	return Result{ID: "diurnal", Title: "Diurnal energy proportionality", Tables: []*report.Table{t, t2}}, nil
}
