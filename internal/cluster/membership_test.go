package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func TestMembershipJoinLeaveVersions(t *testing.T) {
	m := NewMembership(32)
	if v := m.Version(); v != 0 {
		t.Fatalf("fresh membership version = %d, want 0", v)
	}
	d1 := m.Join("a", 1)
	if d1.Version != 1 || len(d1.Joined) != 1 || d1.Joined[0] != "a" {
		t.Fatalf("join delta = %+v", d1)
	}
	d2 := m.Join("b", 2)
	if d2.Version != 2 {
		t.Fatalf("second join version = %d, want 2", d2.Version)
	}
	// Idempotent join: no version bump, no changes.
	d3 := m.Join("a", 1)
	if d3.Version != 2 || d3.Joined != nil || d3.Left != nil {
		t.Fatalf("re-join delta = %+v, want no-op at version 2", d3)
	}
	d4 := m.Leave("a")
	if d4.Version != 3 || len(d4.Left) != 1 || d4.Left[0] != "a" {
		t.Fatalf("leave delta = %+v", d4)
	}
	if m.Contains("a") {
		t.Fatal("a still a member after leave")
	}
	// Idempotent leave.
	d5 := m.Leave("a")
	if d5.Version != 3 || d5.Left != nil {
		t.Fatalf("re-leave delta = %+v, want no-op at version 3", d5)
	}
	if m.Len() != 1 {
		t.Fatalf("member count = %d, want 1", m.Len())
	}
}

func TestMembershipEpochsTrackRejoin(t *testing.T) {
	m := NewMembership(32)
	m.Join("a", 1) // version 1
	m.Join("b", 1) // version 2
	v := m.View()
	if v.Epochs["a"] != 1 || v.Epochs["b"] != 2 {
		t.Fatalf("epochs = %v, want a:1 b:2", v.Epochs)
	}
	m.Leave("a")   // version 3
	m.Join("a", 1) // version 4: rejoin gets a fresh epoch
	v = m.View()
	if v.Epochs["a"] != 4 {
		t.Fatalf("rejoined epoch = %d, want 4", v.Epochs["a"])
	}
	if v.Version != 4 {
		t.Fatalf("version = %d, want 4", v.Version)
	}
}

func TestMembershipViewEqualAndIndependence(t *testing.T) {
	m1 := NewMembership(32)
	m2 := NewMembership(32)
	for _, n := range []string{"a", "b", "c"} {
		m1.Join(n, 1)
		m2.Join(n, 1)
	}
	if !m1.View().Equal(m2.View()) {
		t.Fatal("same join sequence produced unequal views")
	}
	m2.Leave("c")
	if m1.View().Equal(m2.View()) {
		t.Fatal("diverged memberships compare equal")
	}
	// A snapshot must not alias internal state.
	v := m1.View()
	v.Epochs["a"] = 99
	if m1.View().Epochs["a"] == 99 {
		t.Fatal("View aliases internal epoch map")
	}
}

func TestMembershipWatchOrder(t *testing.T) {
	m := NewMembership(32)
	var got []uint64
	m.Watch(func(d Delta) { got = append(got, d.Version) })
	m.Join("a", 1)
	m.Join("b", 1)
	m.Leave("a")
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("watcher saw versions %v, want [1 2 3]", got)
	}
}

func TestMembershipKeyEpoch(t *testing.T) {
	m := NewMembership(32)
	m.Join("a", 1)
	m.Join("b", 1)
	ep, err := m.KeyEpoch("some-key")
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := m.Ring().Locate("some-key")
	if want := m.View().Epochs[owner]; ep != want {
		t.Fatalf("KeyEpoch = %d, want owner %q epoch %d", ep, owner, want)
	}
}

// TestMembershipConcurrentChurn drives joins and leaves from many
// goroutines; versions must stay unique and strictly account for every
// applied transition (run under -race in CI).
func TestMembershipConcurrentChurn(t *testing.T) {
	m := NewMembership(16)
	seen := make(map[uint64]bool)
	var seenMu sync.Mutex
	m.Watch(func(d Delta) {
		seenMu.Lock()
		if seen[d.Version] {
			t.Errorf("version %d delivered twice", d.Version)
		}
		seen[d.Version] = true
		seenMu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				node := fmt.Sprintf("n%d-%d", w, i)
				m.Join(node, 1)
				if i%2 == 0 {
					m.Leave(node)
				}
			}
		}(w)
	}
	wg.Wait()
	// 4 workers x (50 joins + 25 leaves) = 300 versions.
	if v := m.Version(); v != 300 {
		t.Fatalf("final version = %d, want 300", v)
	}
	seenMu.Lock()
	defer seenMu.Unlock()
	if len(seen) != 300 {
		t.Fatalf("watcher saw %d distinct versions, want 300", len(seen))
	}
}
