package cluster

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyRing(t *testing.T) {
	r := NewRing(0)
	if _, err := r.Locate("k"); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.LocateN("k", 2); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if r.Len() != 0 {
		t.Fatal("empty ring should have no nodes")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := NewRing(0)
	r.Add("only")
	for i := 0; i < 100; i++ {
		node, err := r.Locate(fmt.Sprintf("key-%d", i))
		if err != nil || node != "only" {
			t.Fatalf("Locate = %q, %v", node, err)
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	r := NewRing(10)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := len(r.points); got != 10 {
		t.Fatalf("points = %d, want 10", got)
	}
}

func TestRemove(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("b")
	r.Remove("a")
	r.Remove("a") // idempotent
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 50; i++ {
		node, _ := r.Locate(fmt.Sprintf("key-%d", i))
		if node != "b" {
			t.Fatalf("key mapped to removed node %q", node)
		}
	}
}

func TestDeterministicMapping(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		for i := 0; i < 5; i++ {
			r.Add(fmt.Sprintf("node-%d", i))
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		na, _ := a.Locate(key)
		nb, _ := b.Locate(key)
		if na != nb {
			t.Fatalf("mapping not deterministic for %s: %s vs %s", key, na, nb)
		}
	}
}

func TestBalance(t *testing.T) {
	// With 160 virtual nodes, 8 physical nodes and 20k keys, every node
	// should hold within ±35% of the fair share.
	r := NewRing(0)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	dist := r.Distribution(20000)
	fair := 20000.0 / nodes
	for node, n := range dist {
		if math.Abs(float64(n)-fair) > fair*0.35 {
			t.Errorf("node %s holds %d keys, fair share %.0f", node, n, fair)
		}
	}
	if len(dist) != nodes {
		t.Fatalf("only %d nodes received keys", len(dist))
	}
}

func TestWeightedNodesGetProportionalShare(t *testing.T) {
	r := NewRing(0)
	r.AddWeighted("big", 4)
	r.AddWeighted("small", 1)
	dist := r.Distribution(20000)
	ratio := float64(dist["big"]) / float64(dist["small"])
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("weight-4 node got ratio %.2f of weight-1 node, want ~4", ratio)
	}
}

func TestMinimalRemapOnNodeAddition(t *testing.T) {
	// Consistent hashing's defining property: adding a node remaps only
	// ~1/(n+1) of the keys.
	r := NewRing(0)
	for i := 0; i < 9; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	const keys = 10000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k], _ = r.Locate(k)
	}
	r.Add("node-9")
	moved := 0
	for k, prev := range before {
		cur, _ := r.Locate(k)
		if cur != prev {
			if cur != "node-9" {
				t.Fatalf("key %s moved between existing nodes %s -> %s", k, prev, cur)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.20 {
		t.Fatalf("%.1f%% of keys moved on single-node add (want ~10%%)", frac*100)
	}
	if moved == 0 {
		t.Fatal("new node received no keys")
	}
}

func TestLocateN(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	nodes, err := r.LocateN("some-key", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("duplicate node %s in replica set", n)
		}
		seen[n] = true
	}
	// First replica must agree with Locate.
	first, _ := r.Locate("some-key")
	if nodes[0] != first {
		t.Fatalf("LocateN[0] = %s, Locate = %s", nodes[0], first)
	}
	// Asking for more replicas than nodes truncates.
	all, _ := r.LocateN("some-key", 50)
	if len(all) != 5 {
		t.Fatalf("LocateN(50) = %d nodes", len(all))
	}
}

func TestRemovalOnlyMovesVictimKeys(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	const keys = 5000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k], _ = r.Locate(k)
	}
	r.Remove("node-3")
	for k, prev := range before {
		cur, _ := r.Locate(k)
		if prev != "node-3" && cur != prev {
			t.Fatalf("key %s on surviving node moved %s -> %s", k, prev, cur)
		}
		if prev == "node-3" && cur == "node-3" {
			t.Fatalf("key %s still on removed node", k)
		}
	}
}

func TestLocateConsistencyProperty(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	f := func(key string) bool {
		a, err1 := r.Locate(key)
		b, err2 := r.Locate(key)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
