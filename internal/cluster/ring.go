// Package cluster provides the consistent-hash ring used to spread a
// key-value store across many nodes (paper §3.8): each physical node is
// assigned many virtual points on a circle, a key maps to the first node
// point at or after its hash, and adding/removing nodes only remaps the
// arcs adjacent to the change. Mercury/Iridium servers expose each stack
// as an independent node, so the ring is how a 96-stack box joins a
// memcached cluster.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-node point count. More points mean a
// more uniform key distribution; 160 matches common memcached clients
// (libketama uses 160 points per server).
const DefaultVirtualNodes = 160

// ErrEmpty is returned when looking up a key on a ring with no nodes.
var ErrEmpty = errors.New("cluster: ring has no nodes")

type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring. It is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	points   []point
	nodes    map[string]int // node -> virtual point count
	replicas int
}

// NewRing builds a ring with the given virtual-node count per node
// (<= 0 selects DefaultVirtualNodes).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultVirtualNodes
	}
	return &Ring{nodes: make(map[string]int), replicas: replicas}
}

// hash64 is FNV-1a followed by a murmur3 avalanche finalizer. Plain FNV
// leaves sequential suffixes ("node#0", "node#1", ...) correlated, which
// skews arc sizes badly; the finalizer restores uniform point placement.
func hash64(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// fmix64 from MurmurHash3.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.AddWeighted(node, 1)
}

// AddWeighted inserts a node with a capacity weight: a node of weight 2
// receives twice the points (and so roughly twice the keys) of weight 1.
func (r *Ring) AddWeighted(node string, weight int) {
	if weight < 1 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	n := r.replicas * weight
	r.nodes[node] = n
	for i := 0; i < n; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and its points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the current node names (unordered).
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	return out
}

// Len reports the number of nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Locate returns the node owning key.
func (r *Ring) Locate(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", ErrEmpty
	}
	return r.points[r.search(hash64(key))].node, nil
}

// LocateN returns up to n distinct nodes for key, in preference order;
// used for replication.
func (r *Ring) LocateN(key string, n int) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, ErrEmpty
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	idx := r.search(hash64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out, nil
}

// search finds the first point with hash >= h, wrapping at the top.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Distribution counts, for a sample of numKeys synthetic keys, how many
// land on each node — used to validate balance.
func (r *Ring) Distribution(numKeys int) map[string]int {
	out := make(map[string]int)
	for i := 0; i < numKeys; i++ {
		node, err := r.Locate(fmt.Sprintf("sample-key-%d", i))
		if err != nil {
			return out
		}
		out[node]++
	}
	return out
}
