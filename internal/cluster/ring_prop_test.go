package cluster

import (
	"fmt"
	"sort"
	"testing"

	"kv3d/internal/sim"
)

// TestRingLocateNProperties is the seeded property test for the
// replica-placement invariants the replication layer leans on:
//
//  1. LocateN's answer contains no duplicate nodes.
//  2. Its length is exactly min(n, Len()) — every distinct node is
//     found when fewer than n exist, and never more than n.
//  3. Every returned node is a current member.
//  4. Placement is a pure function of ring state: asking twice with no
//     intervening mutation yields the identical answer, and removing a
//     node not in a key's replica set leaves that key's replica set
//     unchanged (the consistent-hashing locality property).
//
// The ring is churned with interleaved seeded AddWeighted/Remove
// between assertion rounds, table-driven over seeds and replica counts.
func TestRingLocateNProperties(t *testing.T) {
	cases := []struct {
		seed     uint64
		virtual  int
		replicas int
	}{
		{seed: 1, virtual: 16, replicas: 1},
		{seed: 2, virtual: 16, replicas: 2},
		{seed: 3, virtual: 64, replicas: 3},
		{seed: 4, virtual: 8, replicas: 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed%d-v%d-r%d", tc.seed, tc.virtual, tc.replicas), func(t *testing.T) {
			rng := sim.NewRand(tc.seed)
			ring := NewRing(tc.virtual)
			members := map[string]bool{}
			nextID := 0

			keys := make([]string, 40)
			for i := range keys {
				keys[i] = fmt.Sprintf("prop-key-%d-%d", tc.seed, i)
			}

			for round := 0; round < 60; round++ {
				// Churn: weighted add or remove, seeded.
				if len(members) == 0 || rng.Float64() < 0.6 {
					node := fmt.Sprintf("node-%d", nextID)
					nextID++
					ring.AddWeighted(node, 1+rng.Intn(3))
					members[node] = true
				} else {
					// Remove an arbitrary member (deterministic pick:
					// lowest-numbered live node offset by a seeded draw).
					var live []string
					for n := range members {
						live = append(live, n)
					}
					sortStrings(live)
					victim := live[rng.Intn(len(live))]
					ring.Remove(victim)
					delete(members, victim)
				}

				if len(members) == 0 {
					continue
				}
				for _, key := range keys {
					owners, err := ring.LocateN(key, tc.replicas)
					if err != nil {
						t.Fatalf("round %d: LocateN(%q): %v", round, key, err)
					}
					want := tc.replicas
					if len(members) < want {
						want = len(members)
					}
					if len(owners) != want {
						t.Fatalf("round %d: LocateN(%q) returned %d owners, want min(n, Len()) = %d",
							round, key, len(owners), want)
					}
					seen := map[string]bool{}
					for _, o := range owners {
						if seen[o] {
							t.Fatalf("round %d: duplicate owner %q for %q: %v", round, o, key, owners)
						}
						seen[o] = true
						if !members[o] {
							t.Fatalf("round %d: owner %q of %q is not a member", round, o, key)
						}
					}
					// Determinism: same state, same answer.
					again, err := ring.LocateN(key, tc.replicas)
					if err != nil {
						t.Fatal(err)
					}
					if !equalStrings(owners, again) {
						t.Fatalf("round %d: LocateN(%q) unstable with no mutation: %v then %v",
							round, key, owners, again)
					}
				}

				// Locality: removing a node outside key 0's replica set
				// must not change key 0's replica set.
				if len(members) > tc.replicas+1 {
					owners, _ := ring.LocateN(keys[0], tc.replicas)
					inSet := map[string]bool{}
					for _, o := range owners {
						inSet[o] = true
					}
					var outsider string
					var live []string
					for n := range members {
						live = append(live, n)
					}
					sortStrings(live)
					for _, n := range live {
						if !inSet[n] {
							outsider = n
							break
						}
					}
					if outsider != "" {
						ring.Remove(outsider)
						delete(members, outsider)
						after, _ := ring.LocateN(keys[0], tc.replicas)
						if !equalStrings(owners, after) {
							t.Fatalf("round %d: removing outsider %q changed replica set %v -> %v",
								round, outsider, owners, after)
						}
					}
				}
			}
		})
	}
}

func sortStrings(s []string) { sort.Strings(s) }

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
