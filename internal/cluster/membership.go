package cluster

// Membership is the server-side cluster story the client-side Ring
// alone cannot carry: a *versioned* view of who is in the cluster. Every
// join or leave bumps a monotonically increasing version and yields a
// Delta describing exactly what changed, so replicators, migrators, and
// chaos harnesses can react to membership transitions instead of
// re-diffing node lists. Each member also carries an ownership epoch —
// the version at which it last joined — which is what "the key ranges
// this node owns are current as of epoch E" means during handoff: two
// nodes agree on key placement exactly when their views agree on
// (version, member set, epochs).
//
// Like the Ring it wraps, Membership is deterministic and goroutine-free
// (watch callbacks run synchronously on the mutating goroutine), so it
// stays importable from the simulation closure.

import (
	"sort"
	"sync"
)

// Delta is one membership transition: the version it produced and the
// nodes that joined or left in it. Exactly one of Joined/Left is
// non-empty for deltas produced by Join/Leave.
type Delta struct {
	// Version is the membership version after the transition.
	Version uint64
	// Joined lists nodes added in this transition.
	Joined []string
	// Left lists nodes removed in this transition.
	Left []string
}

// View is an immutable snapshot of the membership at one version.
type View struct {
	// Version is the membership version of the snapshot.
	Version uint64
	// Nodes is the member set, sorted, so two equal views render
	// identically.
	Nodes []string
	// Epochs maps each member to the version at which it last joined —
	// its ownership epoch. A node that rejoins gets a fresh epoch, so
	// stale pre-departure placement decisions are distinguishable from
	// post-rejoin ones.
	Epochs map[string]uint64
}

// Equal reports whether two views describe the same membership state:
// same version, same members, same ownership epochs.
func (v View) Equal(o View) bool {
	if v.Version != o.Version || len(v.Nodes) != len(o.Nodes) {
		return false
	}
	for i, n := range v.Nodes {
		if o.Nodes[i] != n {
			return false
		}
		if v.Epochs[n] != o.Epochs[n] {
			return false
		}
	}
	return true
}

// Membership is a versioned member set over a consistent-hash ring.
// It is safe for concurrent use; watch callbacks run under the
// membership lock, so they observe deltas in strict version order —
// and must therefore never call back into the Membership (enqueue the
// delta and return).
type Membership struct {
	mu       sync.Mutex
	ring     *Ring
	version  uint64            //kv3d:guardedby mu
	epochs   map[string]uint64 //kv3d:guardedby mu
	weights  map[string]int    //kv3d:guardedby mu
	watchers []func(Delta)     //kv3d:guardedby mu
}

// NewMembership builds an empty membership whose ring uses the given
// virtual-node count per weight unit (<= 0 selects DefaultVirtualNodes).
func NewMembership(virtualNodes int) *Membership {
	return &Membership{
		ring:    NewRing(virtualNodes),
		epochs:  make(map[string]uint64),
		weights: make(map[string]int),
	}
}

// Ring exposes the underlying ring for read-side placement (Locate,
// LocateN). Mutations must go through Join/Leave so versioning holds.
func (m *Membership) Ring() *Ring { return m.ring } //nolint:kv3d -- ring is set once in NewMembership and never reassigned; the Ring locks itself

// Join adds a node with the given capacity weight (<= 0 means 1) and
// returns the resulting delta. Joining an existing member is a no-op
// and returns the current version with no changes.
func (m *Membership) Join(node string, weight int) Delta {
	if weight < 1 {
		weight = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.epochs[node]; ok {
		return Delta{Version: m.version}
	}
	m.version++
	m.epochs[node] = m.version
	m.weights[node] = weight
	d := Delta{Version: m.version, Joined: []string{node}}
	m.ring.AddWeighted(node, weight)
	m.notifyLocked(d)
	return d
}

// Leave removes a node and returns the resulting delta. Removing a
// non-member is a no-op and returns the current version with no
// changes.
func (m *Membership) Leave(node string) Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.epochs[node]; !ok {
		return Delta{Version: m.version}
	}
	m.version++
	delete(m.epochs, node)
	delete(m.weights, node)
	d := Delta{Version: m.version, Left: []string{node}}
	m.ring.Remove(node)
	m.notifyLocked(d)
	return d
}

// notifyLocked delivers one delta to every watcher. Caller holds mu, so
// deltas arrive in version order.
func (m *Membership) notifyLocked(d Delta) {
	for _, fn := range m.watchers {
		fn(d)
	}
}

// Watch registers a callback invoked synchronously (on the goroutine
// performing Join/Leave, under the membership lock) for every
// subsequent delta. Callbacks must not call back into the Membership;
// hand the delta off (e.g. onto a channel) and return.
func (m *Membership) Watch(fn func(Delta)) {
	m.mu.Lock()
	m.watchers = append(m.watchers, fn)
	m.mu.Unlock()
}

// Version reports the current membership version.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// View snapshots the current membership. The returned view does not
// alias internal state.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := View{
		Version: m.version,
		Nodes:   make([]string, 0, len(m.epochs)),
		Epochs:  make(map[string]uint64, len(m.epochs)),
	}
	for n, e := range m.epochs {
		v.Nodes = append(v.Nodes, n)
		v.Epochs[n] = e
	}
	sort.Strings(v.Nodes)
	return v
}

// Contains reports whether node is a current member.
func (m *Membership) Contains(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.epochs[node]
	return ok
}

// Len reports the member count.
func (m *Membership) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.epochs)
}

// LocateN returns up to n distinct owners for key in preference order,
// delegating to the ring.
func (m *Membership) LocateN(key string, n int) ([]string, error) {
	return m.ring.LocateN(key, n) //nolint:kv3d -- ring is set once in NewMembership and never reassigned; the Ring locks itself
}

// KeyEpoch reports the ownership epoch of key's primary owner: the
// membership version at which the node currently first on key's
// preference list joined. Handoff is complete for a key range when
// every replica agrees on the primary and its epoch.
func (m *Membership) KeyEpoch(key string) (uint64, error) {
	owner, err := m.ring.Locate(key)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochs[owner], nil
}
