package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentLocateAndMembership exercises the ring's locking under
// the chaos suite's access pattern: readers routing keys while the
// breaker adds and removes nodes. Run under -race (CI does); the
// assertions here only pin liveness and basic sanity.
func TestConcurrentLocateAndMembership(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	const (
		readers = 8
		ops     = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i)
				if node, err := r.Locate(key); err == nil && node == "" {
					t.Error("Locate returned an empty node without error")
					return
				}
				if nodes, err := r.LocateN(key, 2); err == nil {
					if len(nodes) == 0 {
						t.Error("LocateN returned no nodes without error")
						return
					}
					seen := map[string]bool{}
					for _, n := range nodes {
						if seen[n] {
							t.Errorf("LocateN returned duplicate %q", n)
							return
						}
						seen[n] = true
					}
				}
				_ = r.Nodes()
				_ = r.Len()
			}
		}(g)
	}
	// Two writers churn membership: one flaps node-3, one flaps a node
	// that was never in the initial set.
	for w, name := range []string{"node-3", "node-9"} {
		wg.Add(1)
		go func(w int, name string) {
			defer wg.Done()
			for i := 0; i < ops/4; i++ {
				r.Remove(name)
				r.Add(name)
			}
		}(w, name)
	}
	wg.Wait()
	// node-0..2 never left; the flapped nodes ended on an Add.
	if r.Len() != 5 {
		t.Fatalf("ring has %d nodes after churn, want 5", r.Len())
	}
	if _, err := r.Locate("final"); err != nil {
		t.Fatalf("Locate after churn: %v", err)
	}
}
