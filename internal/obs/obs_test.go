package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kv3d/internal/metrics"
	"kv3d/internal/sim"
)

// TestNilTracerIsSafe exercises every method on a nil tracer: the whole
// point of the nil fast path is that model code can instrument
// unconditionally.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := tr.RegisterTrack("x"); id != 0 {
		t.Fatalf("nil RegisterTrack = %d, want 0", id)
	}
	tr.Complete(0, "a", 1, 2)
	tr.Instant(0, "b", 3)
	tr.Counter(0, "c", 4, 5)
	tr.AsyncBegin("cat", "d", 1, 5)
	tr.AsyncEnd("cat", "d", 1, 6)
	if tr.Len() != 0 {
		t.Fatalf("nil tracer recorded %d events", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer wrote invalid JSON: %s", buf.String())
	}
}

// TestWriteJSONIsValidAndComplete records one event of every kind and
// checks the serialized trace parses as the Chrome trace-event format
// with the expected entries.
func TestWriteJSONIsValidAndComplete(t *testing.T) {
	tr := NewTracer()
	stack := tr.RegisterTrack("stack-00")
	tr.Complete(stack, "serve", 1_000_000, 3_500_000)
	tr.Instant(stack, "drop", 4_000_000)
	tr.Counter(stack, "queue_depth", 5_000_000, 7)
	tr.AsyncBegin("req", "request", 42, 1_000_000)
	tr.AsyncEnd("req", "request", 42, 3_500_000)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			ID   string  `json:"id"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, buf.String())
	}
	// 2 metadata (process + default track) + 1 track metadata + 5 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8:\n%s", len(doc.TraceEvents), buf.String())
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
		if ev.Name == "serve" {
			if ev.Ts != 1 || ev.Dur != 2.5 {
				t.Fatalf("serve span ts=%v dur=%v, want 1/2.5 us", ev.Ts, ev.Dur)
			}
			if ev.Tid != int(stack) {
				t.Fatalf("serve span on tid %d, want %d", ev.Tid, stack)
			}
		}
		if ev.Ph == "C" {
			if v := ev.Args["value"]; v != 7.0 {
				t.Fatalf("counter value = %v", v)
			}
		}
	}
	for _, want := range []string{"M", "X", "i", "C", "b", "e"} {
		if byPh[want] == 0 {
			t.Fatalf("no %q event in trace: %v", want, byPh)
		}
	}
}

// TestWriteJSONDeterministic records the same events twice and demands
// byte-identical output — the contract the serversim golden test builds
// on.
func TestWriteJSONDeterministic(t *testing.T) {
	build := func() string {
		tr := NewTracer()
		tk := tr.RegisterTrack("t")
		tr.Complete(tk, "s", 123_456_789, 123_999_999)
		tr.Counter(tk, "g", 1, 0.125)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same events, different bytes:\n%s\n---\n%s", a, b)
	}
}

// TestWriteMicros pins the picosecond -> microsecond rendering.
func TestWriteMicros(t *testing.T) {
	cases := map[sim.Ps]string{
		0:             "0",
		1:             "0.000001",
		1_000_000:     "1",
		1_234_567:     "1.234567",
		1_230_000:     "1.23",
		987_000_000:   "987",
		-1_500_000:    "-1.5",
		1_000_000_001: "1000.000001",
	}
	for ps, want := range cases {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		writeMicros(bw, ps)
		bw.Flush()
		if got := buf.String(); got != want {
			t.Errorf("writeMicros(%d) = %q, want %q", ps, got, want)
		}
	}
}

// TestRegistrySnapshotSorted checks snapshot determinism and counter
// identity.
func TestRegistrySnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(3)
	reg.Counter("a.first").Add(1)
	reg.Gauge("m.middle", func() float64 { return 2 })
	if c := reg.Counter("z.last"); c.Value() != 3 {
		t.Fatal("Counter did not return the existing counter")
	}
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d probes", len(snap))
	}
	wantNames := []string{"a.first", "m.middle", "z.last"}
	for i, p := range snap {
		if p.Name != wantNames[i] {
			t.Fatalf("snapshot order %v", snap)
		}
		if p.Value != float64(i+1) {
			t.Fatalf("probe %s = %v, want %d", p.Name, p.Value, i+1)
		}
	}
}

func TestGaugeDoubleRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate gauge registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Gauge("g", func() float64 { return 0 })
	reg.Gauge("g", func() float64 { return 0 })
}

// TestSamplerCapturesSeries drives a simulator with a resource under
// load and checks the sampler sees the queue build and drain at the
// expected sim-times.
func TestSamplerCapturesSeries(t *testing.T) {
	s := sim.New()
	r := sim.NewResource(s, "srv", 1)
	tr := NewTracer()
	track := tr.RegisterTrack("srv")
	sp := NewSampler(s, tr, 10*sim.Nanosecond)
	sp.Gauge(track, "srv.queue_depth", func() float64 { return float64(r.QueueLen()) })

	// Three 30ns jobs arrive at t=0: one serves, two queue.
	for i := 0; i < 3; i++ {
		r.Acquire(30*sim.Nanosecond, nil)
	}
	sp.Start(sim.Time(100 * sim.Nanosecond))
	s.Run()

	series := sp.Series("srv.queue_depth")
	if len(series) != 11 {
		t.Fatalf("got %d samples, want 11 (0..100ns every 10ns): %v", len(series), series)
	}
	if series[0].Value != 2 {
		t.Fatalf("queue depth at t=0 = %v, want 2", series[0].Value)
	}
	// After 90ns all three 30ns jobs are done.
	if last := series[len(series)-1]; last.Value != 0 || last.At != sim.Time(100*sim.Nanosecond) {
		t.Fatalf("last sample %+v, want value 0 at 100ns", last)
	}
	// The tracer saw the same samples as counter events.
	counters := 0
	for i := range tr.events {
		if tr.events[i].ph == phaseCounter {
			counters++
		}
	}
	if counters != len(series) {
		t.Fatalf("tracer has %d counter events, series has %d", counters, len(series))
	}
}

func TestInstrumentResourceEmitsSpans(t *testing.T) {
	s := sim.New()
	r := sim.NewResource(s, "srv", 1)
	tr := NewTracer()
	InstrumentResource(tr, tr.RegisterTrack("srv"), r)
	r.Acquire(20*sim.Nanosecond, nil)
	r.Acquire(20*sim.Nanosecond, nil) // waits 20ns
	s.Run()

	var waits, serves int
	for i := range tr.events {
		switch tr.events[i].name {
		case "wait":
			waits++
			if tr.events[i].dur != 20*sim.Nanosecond {
				t.Fatalf("wait span dur = %v", tr.events[i].dur)
			}
		case "serve":
			serves++
		}
	}
	if waits != 1 || serves != 2 {
		t.Fatalf("waits=%d serves=%d, want 1/2", waits, serves)
	}
}

func TestInstrumentSimulatorCountsEvents(t *testing.T) {
	s := sim.New()
	reg := NewRegistry()
	InstrumentSimulator(reg, s)
	for i := 0; i < 5; i++ {
		s.After(sim.Duration(i)*sim.Nanosecond, func() {})
	}
	s.Run()
	if got := reg.Counter("sim.events_dispatched").Value(); got != 5 {
		t.Fatalf("dispatched = %d, want 5", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	probes := []Probe{
		{Name: "live.store.get_hits", Value: 12},
		{Name: "serversim.stack-00.queue_depth", Value: 0.5},
	}
	if err := WritePrometheus(&buf, probes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE kv3d_live_store_get_hits gauge\n",
		"kv3d_live_store_get_hits 12\n",
		"kv3d_serversim_stack_00_queue_depth 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSummaryProbes(t *testing.T) {
	h := metrics.NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	probes := SummaryProbes("live.op.get.latency_ns", h.Summarize())
	if len(probes) != 7 {
		t.Fatalf("got %d probes", len(probes))
	}
	if probes[5].Name != "live.op.get.latency_ns.p999" {
		t.Fatalf("p999 probe = %+v", probes[5])
	}
	if probes[0].Name != "live.op.get.latency_ns.count" || probes[0].Value != 100 {
		t.Fatalf("count probe = %+v", probes[0])
	}
}

// BenchmarkTracerNil measures the cost of instrumentation calls when
// tracing is off — the disabled path the tentpole requires to be ~zero.
func BenchmarkTracerNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Complete(0, "serve", sim.Time(i), sim.Time(i+1))
		tr.Counter(0, "q", sim.Time(i), 1)
	}
}

// BenchmarkTracerRecord measures the enabled hot path (append-only).
func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Complete(0, "serve", sim.Time(i), sim.Time(i+1))
	}
}

func TestWriteProbesJSON(t *testing.T) {
	probes := []Probe{
		{Name: "b.two", Value: 2},
		{Name: "a.one", Value: 0.5},
	}
	var buf bytes.Buffer
	if err := WriteProbesJSON(&buf, probes); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["a.one"] != 0.5 || m["b.two"] != 2 {
		t.Fatalf("decoded = %v", m)
	}
	// Output is sorted by name regardless of input order.
	if ia, ib := bytes.Index(buf.Bytes(), []byte("a.one")), bytes.Index(buf.Bytes(), []byte("b.two")); ia > ib {
		t.Fatalf("probes not sorted:\n%s", buf.String())
	}
	// Empty set still renders a valid object.
	buf.Reset()
	if err := WriteProbesJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid empty JSON: %s", buf.String())
	}
}
