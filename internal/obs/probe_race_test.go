package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentRegisterAndSnapshot is the -race regression for
// the Registry contracts syncguard pins: the counters and gauges maps
// are kv3d:guardedby mu, while each Counter's value is a typed atomic.
// Concurrent first-use registration (the map write), increments, gauge
// installs, and snapshots must all coexist.
func TestRegistryConcurrentRegisterAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Same names across workers: first-use registration and
				// reuse race on the counters map.
				r.Counter(fmt.Sprintf("c.%d", i%7)).Add(1)
			}
			r.Gauge(fmt.Sprintf("g.%d", w), func() float64 { return float64(w) })
		}(w)
	}
	snaps := make(chan struct{})
	go func() {
		defer close(snaps)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-snaps

	var total float64
	for _, p := range r.Snapshot() {
		if len(p.Name) > 1 && p.Name[0] == 'c' {
			total += p.Value
		}
	}
	if want := float64(workers * perW); total != want {
		t.Fatalf("counters sum to %v, want %v", total, want)
	}
}
