package obs

// The flight recorder is the live-side counterpart of Tracer: a bounded
// ring buffer of span/instant/async events safe for concurrent recording
// from connection goroutines, holding the most recent window of sampled
// operations. Where Tracer accumulates a whole (single-goroutine,
// sim-time) run and serializes once, FlightRecorder is always on:
// recording overwrites the oldest events when the ring is full, and a
// snapshot can be serialized at any moment — the crash-dump/trace-dump
// discipline of a real flight recorder.
//
// Like everything in obs, the recorder never reads a clock: every
// timestamp is a typed wall-nanosecond count (sim.Ns) handed in by the
// caller through the injected clock seam (kvserver.Options.NowNanos,
// kvclient's FlightNow). That keeps this file inside the sim import
// closure's determinism contract, and it makes the golden test for live
// traces possible: a scripted session with a fake clock serializes to
// byte-identical output.
//
// Every method is nil-receiver safe and the recording methods are
// allocation-free (//kv3d:hotpath): event slots are preallocated at
// construction and names/outcomes must be constant strings, so a
// sampled hot-path op costs one mutex acquisition and a few stores.

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"kv3d/internal/sim"
)

// flightEvent is one recorded live event; flat for the same reason
// traceEvent is. Timestamps are wall nanoseconds from the injected
// clock, not sim picoseconds.
type flightEvent struct {
	ts      sim.Ns
	dur     sim.Ns
	id      uint64
	arg     int64
	name    string
	cat     string
	outcome string
	track   TrackID
	ph      byte
	argSet  bool
}

// FlightRecorder records live events into a bounded ring. It is safe
// for concurrent use; a nil *FlightRecorder is a valid, disabled
// recorder whose methods all return immediately.
type FlightRecorder struct {
	// mu guards the ring: events is the fixed-capacity storage, next the
	// slot to overwrite, total the events ever recorded.
	mu     sync.Mutex
	events []flightEvent //kv3d:guardedby mu
	next   int           //kv3d:guardedby mu
	total  uint64        //kv3d:guardedby mu
	tracks []string      //kv3d:guardedby mu
	name   string        // process name in trace output; immutable
}

// DefaultFlightCapacity bounds the ring when callers pass 0.
const DefaultFlightCapacity = 4096

// NewFlightRecorder returns a recorder whose ring holds capacity events
// (DefaultFlightCapacity if capacity <= 0). name labels the recorder's
// synthetic process in trace output ("server", "client", ...), which is
// how merged client+server traces stay tellable apart.
func NewFlightRecorder(name string, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{
		events: make([]flightEvent, capacity),
		tracks: []string{"main"},
		name:   name,
	}
}

// Enabled reports whether events are being recorded.
func (r *FlightRecorder) Enabled() bool { return r != nil }

// Len reports how many events the ring currently retains.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.events)) {
		return int(r.total)
	}
	return len(r.events)
}

// Dropped reports how many events have been overwritten by ring wrap.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.events)) {
		return 0
	}
	return r.total - uint64(len(r.events))
}

// RegisterTrack allocates a named track lane. On a nil recorder it
// returns track 0. Register tracks at wiring time, not on hot paths
// (the tracks slice grows).
func (r *FlightRecorder) RegisterTrack(name string) TrackID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks = append(r.tracks, name)
	return TrackID(len(r.tracks) - 1)
}

// record claims the next ring slot. Callers hold no lock; the ring
// mutex is the only synchronization (recording is sampled, so the
// critical section is short and rarely contended).
//
//kv3d:hotpath
func (r *FlightRecorder) record(ev flightEvent) {
	r.mu.Lock()
	r.events[r.next] = ev
	r.next++
	if r.next == len(r.events) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Complete records a span [start, end) on a track. outcome may be ""
// or a constant string ("ok", "error", "busy") rendered into the
// span's args for filtering in Perfetto.
//
//kv3d:hotpath
func (r *FlightRecorder) Complete(track TrackID, name, outcome string, start, end sim.Ns) {
	if r == nil {
		return
	}
	r.record(flightEvent{
		ph: phaseComplete, track: track, name: name, outcome: outcome,
		ts: start, dur: end - start,
	})
}

// Instant records a point event on a track.
//
//kv3d:hotpath
func (r *FlightRecorder) Instant(track TrackID, name string, ts sim.Ns) {
	if r == nil {
		return
	}
	r.record(flightEvent{ph: phaseInstant, track: track, name: name, ts: ts})
}

// InstantArg records a point event carrying one integer argument
// (retry attempt number, shed count, ...), rendered as args:{"v":n}.
//
//kv3d:hotpath
func (r *FlightRecorder) InstantArg(track TrackID, name string, ts sim.Ns, arg int64) {
	if r == nil {
		return
	}
	r.record(flightEvent{ph: phaseInstant, track: track, name: name, ts: ts, arg: arg, argSet: true})
}

// Counter records a sampled integer value as a stepped counter track.
//
//kv3d:hotpath
func (r *FlightRecorder) Counter(track TrackID, name string, ts sim.Ns, value int64) {
	if r == nil {
		return
	}
	r.record(flightEvent{ph: phaseCounter, track: track, name: name, ts: ts, arg: value, argSet: true})
}

// AsyncBegin opens an async span identified by (cat, id). Async ids are
// trace-global in the Chrome format, which is exactly the correlation
// seam: a client records AsyncBegin("op", ..., opaque, ...) around an
// attempt and the server records the same (cat, id) around its
// handling, so a merged trace draws both on one async lane.
//
//kv3d:hotpath
func (r *FlightRecorder) AsyncBegin(cat, name string, id uint64, ts sim.Ns) {
	if r == nil {
		return
	}
	r.record(flightEvent{ph: phaseAsyncBegin, cat: cat, name: name, id: id, ts: ts})
}

// AsyncEnd closes the async span opened with the same (cat, id).
//
//kv3d:hotpath
func (r *FlightRecorder) AsyncEnd(cat, name string, id uint64, ts sim.Ns) {
	if r == nil {
		return
	}
	r.record(flightEvent{ph: phaseAsyncEnd, cat: cat, name: name, id: id, ts: ts})
}

// snapshot copies the retained events oldest-first plus the track
// table, so serialization never holds the ring lock across I/O.
func (r *FlightRecorder) snapshot() (events []flightEvent, tracks []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.events)) {
		events = append(events, r.events[:r.total]...)
	} else {
		events = append(events, r.events[r.next:]...)
		events = append(events, r.events[:r.next]...)
	}
	tracks = append(tracks, r.tracks...)
	return events, tracks
}

// WriteTraceJSON serializes the current ring contents in Chrome
// trace-event format (Perfetto-loadable). The output is a pure function
// of the recorded events — field order, number formatting, and event
// order (oldest first) are fixed — so a scripted session with a fake
// clock produces byte-identical output (flight_golden_test.go in
// kvserver pins this).
func (r *FlightRecorder) WriteTraceJSON(w io.Writer) error {
	return WriteMergedTraceJSON(w, r)
}

// WriteMergedTraceJSON serializes several recorders into one trace
// document: each recorder becomes its own process (pid = position+1)
// named after the recorder, with its tracks as threads. Async events
// correlate across recorders by (cat, id) — the one-view merge the
// flight recorder exists for. Nil recorders are skipped, so callers can
// pass optional client/server recorders unconditionally.
func WriteMergedTraceJSON(w io.Writer, recs ...*FlightRecorder) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	pid := 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		pid++
		events, tracks := r.snapshot()
		sep()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(pid))
		bw.WriteString(`,"tid":0,"args":{"name":`)
		writeJSONString(bw, r.name)
		bw.WriteString(`}}`)
		for id, name := range tracks {
			sep()
			bw.WriteString(`{"name":"thread_name","ph":"M","pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.Itoa(id))
			bw.WriteString(`,"args":{"name":`)
			writeJSONString(bw, name)
			bw.WriteString(`}}`)
		}
		for i := range events {
			sep()
			writeFlightEvent(bw, pid, &events[i])
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeFlightEvent renders one live event with a fixed field order,
// mirroring writeEvent but in wall nanoseconds.
func writeFlightEvent(bw *bufio.Writer, pid int, ev *flightEvent) {
	bw.WriteString(`{"name":`)
	writeJSONString(bw, ev.name)
	bw.WriteString(`,"ph":"`)
	bw.WriteByte(ev.ph)
	bw.WriteString(`","pid":`)
	bw.WriteString(strconv.Itoa(pid))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.Itoa(int(ev.track)))
	bw.WriteString(`,"ts":`)
	writeMicrosNs(bw, ev.ts)
	switch ev.ph {
	case phaseComplete:
		bw.WriteString(`,"dur":`)
		writeMicrosNs(bw, ev.dur)
		if ev.outcome != "" {
			bw.WriteString(`,"args":{"outcome":`)
			writeJSONString(bw, ev.outcome)
			bw.WriteString(`}`)
		}
	case phaseInstant:
		bw.WriteString(`,"s":"t"`)
		if ev.argSet {
			bw.WriteString(`,"args":{"v":`)
			bw.WriteString(strconv.FormatInt(ev.arg, 10))
			bw.WriteString(`}`)
		}
	case phaseCounter:
		bw.WriteString(`,"args":{"value":`)
		bw.WriteString(strconv.FormatInt(ev.arg, 10))
		bw.WriteString(`}`)
	case phaseAsyncBegin, phaseAsyncEnd:
		bw.WriteString(`,"cat":`)
		writeJSONString(bw, ev.cat)
		bw.WriteString(`,"id":"`)
		bw.WriteString(strconv.FormatUint(ev.id, 10))
		bw.WriteString(`"`)
	}
	bw.WriteString(`}`)
}

// writeMicrosNs renders a typed nanosecond count as decimal
// microseconds with full nanosecond precision and no float round-trip:
// 1234567 ns -> "1234.567".
func writeMicrosNs(bw *bufio.Writer, ns sim.Ns) {
	neg := ns < 0
	if neg {
		bw.WriteByte('-')
		ns = -ns
	}
	const nsPerUs = 1_000
	bw.WriteString(strconv.FormatInt(int64(ns/nsPerUs), 10))
	frac := int64(ns % nsPerUs)
	if frac == 0 {
		return
	}
	var buf [4]byte
	buf[0] = '.'
	for i := 3; i >= 1; i-- {
		buf[i] = byte('0' + frac%10)
		frac /= 10
	}
	out := buf[:]
	for out[len(out)-1] == '0' {
		out = out[:len(out)-1]
	}
	bw.Write(out)
}
