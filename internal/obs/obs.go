// Package obs is the observability layer shared by the simulation and
// the live server: deterministic span/event tracing in sim-time that
// serializes to Chrome trace-event JSON (loadable in chrome://tracing
// and Perfetto), a registry of named probes (counters and gauges), a
// sim-time sampler that captures time series on the event queue, and a
// Prometheus text-exposition writer for the live metrics endpoint.
//
// The package obeys the repo's determinism contract (LINTING.md): it
// never reads wall clocks or ambient randomness — every timestamp is a
// sim.Time handed in by the caller, so the same seeded run produces a
// byte-identical trace. On the live side callers stamp events with an
// injected clock; obs itself stays clock-free.
//
// Every Tracer method is safe on a nil receiver and returns immediately,
// so model code can instrument unconditionally and pay only a pointer
// nil-check when tracing is off (benchmarked in obs_test.go and the root
// bench_test.go Tracer benchmarks).
//
// Probe naming scheme (see OBSERVABILITY.md): dot-separated
// "<domain>.<component>.<metric>", e.g. "serversim.stack-00.queue_depth"
// or "live.store.get_hits". The Prometheus writer maps names onto the
// exposition charset (dots and dashes become underscores, a kv3d_ prefix
// is added), so the same names appear in traces, -json output, and the
// /metrics endpoint.
package obs

import (
	"bufio"
	"io"
	"strconv"

	"kv3d/internal/sim"
)

// TrackID identifies one named track ("thread") in the trace. Track 0 is
// the default track; RegisterTrack allocates labeled per-stack tracks.
type TrackID int32

// phase bytes of the Chrome trace-event format.
const (
	phaseComplete   = 'X'
	phaseInstant    = 'i'
	phaseCounter    = 'C'
	phaseAsyncBegin = 'b'
	phaseAsyncEnd   = 'e'
)

// traceEvent is one recorded event. One flat struct (no per-kind
// allocation) keeps recording cheap; unused fields stay zero.
type traceEvent struct {
	ts    sim.Time
	dur   sim.Duration
	id    uint64
	value float64
	name  string
	cat   string
	track TrackID
	ph    byte
}

// Tracer accumulates events and serializes them once at the end of a
// run. It is single-goroutine, like the simulation kernel it observes;
// live-side callers must provide their own serialization.
type Tracer struct {
	events []traceEvent
	tracks []string // index = TrackID, value = display name
}

// NewTracer returns an empty tracer with one default track.
func NewTracer() *Tracer {
	return &Tracer{tracks: []string{"main"}}
}

// Enabled reports whether events are being recorded. It is the fast
// path: a nil *Tracer is a valid, disabled tracer.
func (t *Tracer) Enabled() bool { return t != nil }

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// RegisterTrack allocates a named track (rendered as a thread lane in
// Perfetto). On a nil tracer it returns track 0.
func (t *Tracer) RegisterTrack(name string) TrackID {
	if t == nil {
		return 0
	}
	t.tracks = append(t.tracks, name)
	return TrackID(len(t.tracks) - 1)
}

// Complete records a span [start, end) on a track.
//
//kv3d:hotpath
func (t *Tracer) Complete(track TrackID, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		ph: phaseComplete, track: track, name: name, ts: start, dur: end.Sub(start),
	})
}

// Instant records a point event on a track.
//
//kv3d:hotpath
func (t *Tracer) Instant(track TrackID, name string, ts sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{ph: phaseInstant, track: track, name: name, ts: ts})
}

// Counter records a sampled value; Perfetto renders each counter name as
// its own stepped time-series track.
//
//kv3d:hotpath
func (t *Tracer) Counter(track TrackID, name string, ts sim.Time, value float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		ph: phaseCounter, track: track, name: name, ts: ts, value: value,
	})
}

// AsyncBegin opens an async span identified by (cat, id). Async spans
// may overlap freely, which is how per-request lifecycles are drawn:
// one id per request, nested b/e pairs for its phases.
//
//kv3d:hotpath
func (t *Tracer) AsyncBegin(cat, name string, id uint64, ts sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		ph: phaseAsyncBegin, cat: cat, name: name, id: id, ts: ts,
	})
}

// AsyncEnd closes the async span opened with the same (cat, id).
//
//kv3d:hotpath
func (t *Tracer) AsyncEnd(cat, name string, id uint64, ts sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		ph: phaseAsyncEnd, cat: cat, name: name, id: id, ts: ts,
	})
}

// pid is the single synthetic process all tracks live under.
const pid = 1

// WriteJSON serializes the trace in Chrome trace-event format. The
// output is a pure function of the recorded events — field order, number
// formatting and event order are all fixed — so a seeded run's trace is
// byte-identical across runs and platforms (the golden-file test in
// serversim depends on this).
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	if t != nil {
		sep()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"kv3d"}}`)
		for id, name := range t.tracks {
			sep()
			bw.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
			bw.WriteString(strconv.Itoa(id))
			bw.WriteString(`,"args":{"name":`)
			writeJSONString(bw, name)
			bw.WriteString(`}}`)
		}
		for i := range t.events {
			sep()
			writeEvent(bw, &t.events[i])
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeEvent renders one event with a fixed field order.
func writeEvent(bw *bufio.Writer, ev *traceEvent) {
	bw.WriteString(`{"name":`)
	writeJSONString(bw, ev.name)
	bw.WriteString(`,"ph":"`)
	bw.WriteByte(ev.ph)
	bw.WriteString(`","pid":1,"tid":`)
	bw.WriteString(strconv.Itoa(int(ev.track)))
	bw.WriteString(`,"ts":`)
	writeMicros(bw, ev.ts.Ps())
	switch ev.ph {
	case phaseComplete:
		bw.WriteString(`,"dur":`)
		writeMicros(bw, ev.dur.Ps())
	case phaseInstant:
		bw.WriteString(`,"s":"t"`)
	case phaseCounter:
		bw.WriteString(`,"args":{"value":`)
		bw.WriteString(strconv.FormatFloat(ev.value, 'g', -1, 64))
		bw.WriteString(`}`)
	case phaseAsyncBegin, phaseAsyncEnd:
		bw.WriteString(`,"cat":`)
		writeJSONString(bw, ev.cat)
		bw.WriteString(`,"id":"`)
		bw.WriteString(strconv.FormatUint(ev.id, 10))
		bw.WriteString(`"`)
	}
	bw.WriteString(`}`)
}

// writeMicros renders a typed picosecond count as decimal microseconds
// (the trace format's time unit) with full picosecond precision and no
// float round-trip: 1234567 ps -> "1.234567".
func writeMicros(bw *bufio.Writer, ps sim.Ps) {
	neg := ps < 0
	if neg {
		bw.WriteByte('-')
		ps = -ps
	}
	const psPerUs = 1_000_000
	bw.WriteString(strconv.FormatInt(int64(ps/psPerUs), 10))
	frac := int64(ps % psPerUs)
	if frac == 0 {
		return
	}
	// Six fractional digits, then strip trailing zeros for compactness.
	var buf [7]byte
	buf[0] = '.'
	for i := 6; i >= 1; i-- {
		buf[i] = byte('0' + frac%10)
		frac /= 10
	}
	out := buf[:]
	for out[len(out)-1] == '0' {
		out = out[:len(out)-1]
	}
	bw.Write(out)
}

// writeJSONString escapes a name for embedding in the trace. Names are
// repo-controlled ASCII, so only the JSON structural characters and
// control bytes need handling.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString(`\u00`)
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
