package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"kv3d/internal/metrics"
)

// WritePrometheus renders probes in the Prometheus text exposition
// format (version 0.0.4), one gauge per probe. Probe names use the
// repo's dotted scheme; PromName maps them onto the exposition charset.
// Probes should come from Registry.Snapshot, which sorts them, so the
// scrape body is deterministic for a fixed state.
func WritePrometheus(w io.Writer, probes []Probe) error {
	bw := bufio.NewWriter(w)
	for _, p := range probes {
		name := PromName(p.Name)
		bw.WriteString("# TYPE ")
		bw.WriteString(name)
		bw.WriteString(" gauge\n")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatFloat(p.Value, 'g', -1, 64))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// SummaryProbes expands a metrics.Summary into probes under the given
// dotted prefix (count, mean, p50, p95, p99, p999, max). The same
// expansion backs the /metrics endpoint and -json outputs, so per-op
// latency reads identically everywhere.
func SummaryProbes(prefix string, s metrics.Summary) []Probe {
	return []Probe{
		{Name: prefix + ".count", Value: float64(s.Count)},
		{Name: prefix + ".mean", Value: s.Mean},
		{Name: prefix + ".p50", Value: float64(s.P50)},
		{Name: prefix + ".p95", Value: float64(s.P95)},
		{Name: prefix + ".p99", Value: float64(s.P99)},
		{Name: prefix + ".p999", Value: float64(s.P999)},
		{Name: prefix + ".max", Value: float64(s.Max)},
	}
}

// PromName maps a dotted probe name onto the Prometheus metric-name
// charset [a-zA-Z0-9_:], prefixing the kv3d namespace: dots and every
// other illegal byte become underscores, e.g.
// "serversim.stack-00.queue_depth" -> "kv3d_serversim_stack_00_queue_depth".
func PromName(name string) string {
	out := make([]byte, 0, len(name)+5)
	out = append(out, "kv3d_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WriteProbesJSON writes probes as one deterministic JSON object keyed
// by probe name. Callers pass a Registry.Snapshot() or Server.Probes()
// slice; names keep the dotted scheme (PromName maps them onto the
// Prometheus endpoint's identifiers), so the JSON and the metrics
// endpoint expose the same counters under convertible names.
func WriteProbesJSON(w io.Writer, probes []Probe) error {
	sorted := make([]Probe, len(probes))
	copy(sorted, probes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n")
	for i, p := range sorted {
		if i > 0 {
			bw.WriteString(",\n")
		}
		bw.WriteString("  ")
		writeJSONString(bw, p.Name)
		bw.WriteString(": ")
		bw.WriteString(strconv.FormatFloat(p.Value, 'g', -1, 64))
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}
