package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"kv3d/internal/sim"
)

// A nil recorder must accept every call and report empty state — the
// disabled live path exercises exactly this.
func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	tr := r.RegisterTrack("x")
	r.Complete(tr, "op", "ok", 1, 2)
	r.Instant(tr, "ev", 3)
	r.InstantArg(tr, "ev", 3, 7)
	r.Counter(tr, "c", 4, 9)
	r.AsyncBegin("op", "a", 1, 5)
	r.AsyncEnd("op", "a", 1, 6)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("nil recorder Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	var buf bytes.Buffer
	if err := r.WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON on nil: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-recorder trace is not valid JSON: %s", buf.Bytes())
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder("srv", 4)
	tr := r.RegisterTrack("t")
	for i := 0; i < 10; i++ {
		r.Instant(tr, "ev", sim.Ns(i*1000))
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// The retained window must be the newest four events, oldest first.
	events, _ := r.snapshot()
	want := []sim.Ns{6000, 7000, 8000, 9000}
	for i, ev := range events {
		if ev.ts != want[i] {
			t.Fatalf("event %d ts = %d, want %d", i, ev.ts, want[i])
		}
	}
}

// Serialization must be a pure function of the recorded events.
func TestFlightRecorderDeterministicOutput(t *testing.T) {
	build := func() *FlightRecorder {
		r := NewFlightRecorder("server", 64)
		tr := r.RegisterTrack("conn-1")
		r.Instant(tr, "conn.open", 100)
		r.Complete(tr, "get", "ok", 1_000, 2_500)
		r.Complete(tr, "set", "error", 3_000, 3_125)
		r.InstantArg(tr, "retry", 4_000, 2)
		r.Counter(tr, "inflight", 5_000, 3)
		r.AsyncBegin("op", "get", 42, 1_000)
		r.AsyncEnd("op", "get", 42, 2_500)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteTraceJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteTraceJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two identical recordings serialized differently:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("trace is not valid JSON: %s", a.Bytes())
	}
	out := a.String()
	for _, want := range []string{
		`"displayTimeUnit":"ns"`,
		`"args":{"name":"server"}`,
		`"args":{"name":"conn-1"}`,
		`"args":{"outcome":"ok"}`,
		`"args":{"outcome":"error"}`,
		`"args":{"v":2}`,
		`"args":{"value":3}`,
		`"cat":"op","id":"42"`,
		// 2500 ns span starting at 1000 ns -> ts 1 µs, dur 1.5 µs.
		`"ts":1,"dur":1.5`,
		// 125 ns duration -> 0.125 µs.
		`"dur":0.125`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// Merging recorders must give each its own pid with distinct process
// names while async (cat,id) pairs keep their global identity.
func TestWriteMergedTraceJSON(t *testing.T) {
	srv := NewFlightRecorder("server", 16)
	cli := NewFlightRecorder("client", 16)
	srv.AsyncBegin("op", "handle", 7, 1_500)
	srv.AsyncEnd("op", "handle", 7, 1_900)
	cli.AsyncBegin("op", "get", 7, 1_000)
	cli.AsyncEnd("op", "get", 7, 2_000)

	var buf bytes.Buffer
	// A nil recorder in the argument list must be skipped, not crash.
	if err := WriteMergedTraceJSON(&buf, cli, nil, srv); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("merged trace is not valid JSON: %s", out)
	}
	if !strings.Contains(out, `"args":{"name":"client"}`) || !strings.Contains(out, `"args":{"name":"server"}`) {
		t.Fatalf("merged trace missing process names:\n%s", out)
	}
	// client listed first -> pid 1; server (after the skipped nil) pid 2.
	if !strings.Contains(out, `"ph":"b","pid":1`) || !strings.Contains(out, `"ph":"b","pid":2`) {
		t.Fatalf("merged trace missing per-recorder pids:\n%s", out)
	}
	if strings.Count(out, `"id":"7"`) != 4 {
		t.Fatalf("expected 4 async events sharing id 7:\n%s", out)
	}
}

func TestFlightRecorderConcurrentRecording(t *testing.T) {
	r := NewFlightRecorder("srv", 128)
	tr := r.RegisterTrack("t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Complete(tr, "op", "ok", sim.Ns(i), sim.Ns(i+1))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Len(); got != 128 {
		t.Fatalf("Len = %d, want full ring 128", got)
	}
	if got := r.Dropped(); got != 8*1000-128 {
		t.Fatalf("Dropped = %d, want %d", got, 8*1000-128)
	}
	var buf bytes.Buffer
	if err := r.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent-recording trace is not valid JSON")
	}
}

func TestWriteMicrosNs(t *testing.T) {
	cases := []struct {
		ns   sim.Ns
		want string
	}{
		{0, "0"},
		{1, "0.001"},
		{500, "0.5"},
		{1000, "1"},
		{1234567, "1234.567"},
		{2_500_000, "2500"},
		{-1500, "-1.5"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		writeMicrosNs(bw, c.ns)
		bw.Flush()
		if buf.String() != c.want {
			t.Errorf("writeMicrosNs(%d) = %q, want %q", c.ns, buf.String(), c.want)
		}
	}
}
