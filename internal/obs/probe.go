package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing probe. The atomic makes it safe
// on the live server's connection goroutines; inside the single-threaded
// simulation the atomic op is deterministic and nearly free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Probe is one named value in a registry snapshot.
type Probe struct {
	Name  string
	Value float64
}

// Registry holds named probes. Counters are registered once and
// incremented on hot paths; gauges are callbacks evaluated at snapshot
// time (queue depths, utilization, anything derivable on demand).
// Snapshot order is sorted by name, so registry contents serialize
// deterministically regardless of registration order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter       //kv3d:guardedby mu
	gauges   map[string]func() float64 //kv3d:guardedby mu
}

// NewRegistry returns an empty probe registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]func() float64{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Reusing a name returns the same counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a callback gauge. Registering a name twice panics:
// two owners for one probe is always a wiring bug.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.gauges[name]; dup {
		panic(fmt.Sprintf("obs: gauge %q registered twice", name))
	}
	r.gauges[name] = fn
}

// Snapshot evaluates every probe and returns them sorted by name.
func (r *Registry) Snapshot() []Probe {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Probe, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Probe{Name: name, Value: float64(c.Value())})
	}
	for name, fn := range r.gauges {
		out = append(out, Probe{Name: name, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
