package obs

import (
	"kv3d/internal/sim"
)

// InstrumentResource attaches tracing hooks to a resource: every job
// that waited gets a "wait" span and every job gets a "serve" span on
// the given track, so per-stack lanes in Perfetto show exactly where
// queueing starts eating the latency budget. A nil tracer installs
// nothing, keeping the disabled path at the resource's own nil-check.
func InstrumentResource(t *Tracer, track TrackID, r *sim.Resource) {
	if t == nil {
		return
	}
	r.SetHooks(&sim.ResourceHooks{
		Started: func(now sim.Time, wait sim.Duration) {
			t.Complete(track, "wait", now-sim.Time(wait), now)
		},
		Completed: func(now sim.Time, wait, service sim.Duration) {
			t.Complete(track, "serve", now-sim.Time(service), now)
		},
	})
}

// InstrumentSimulator counts dispatched events into the registry probe
// "sim.events_dispatched". A nil registry installs nothing.
func InstrumentSimulator(reg *Registry, s *sim.Simulator) {
	if reg == nil {
		return
	}
	c := reg.Counter("sim.events_dispatched")
	s.SetDispatchHook(func(now sim.Time) { c.Add(1) })
}
