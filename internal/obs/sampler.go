package obs

import (
	"kv3d/internal/sim"
)

// Sample is one (time, value) observation of a sampled gauge.
type Sample struct {
	At    sim.Time
	Value float64
}

// sampledGauge pairs a gauge with its trace destination.
type sampledGauge struct {
	name  string
	track TrackID
	fn    func() float64
}

// Sampler periodically evaluates registered gauges on the simulation's
// own event queue: it schedules itself with sim.After, so samples land
// at deterministic sim-times interleaved with model events. Each tick
// appends to an in-memory series and, when a tracer is attached, emits a
// counter event so the series shows up as a stepped track in Perfetto.
type Sampler struct {
	s      *sim.Simulator
	tr     *Tracer // may be nil: series are still collected
	every  sim.Duration
	until  sim.Time
	gauges []sampledGauge
	series map[string][]Sample
}

// NewSampler creates a sampler with the given period. tr may be nil.
func NewSampler(s *sim.Simulator, tr *Tracer, every sim.Duration) *Sampler {
	if every <= 0 {
		panic("obs: sampler period must be positive")
	}
	return &Sampler{s: s, tr: tr, every: every, series: map[string][]Sample{}}
}

// Gauge registers a gauge to be sampled each tick. Must be called
// before Start.
func (sp *Sampler) Gauge(track TrackID, name string, fn func() float64) {
	sp.gauges = append(sp.gauges, sampledGauge{name: name, track: track, fn: fn})
}

// Start schedules the first tick at the current sim time; ticking stops
// after the given deadline so the sampler never keeps a drained
// simulation alive past its measurement window.
func (sp *Sampler) Start(until sim.Time) {
	sp.until = until
	sp.s.At(sp.s.Now(), sp.tick)
}

// tick samples every gauge and reschedules itself.
func (sp *Sampler) tick() {
	now := sp.s.Now()
	for i := range sp.gauges {
		g := &sp.gauges[i]
		v := g.fn()
		sp.series[g.name] = append(sp.series[g.name], Sample{At: now, Value: v})
		sp.tr.Counter(g.track, g.name, now, v)
	}
	if next := now.Add(sp.every); next <= sp.until {
		sp.s.At(next, sp.tick)
	}
}

// Series returns the collected samples for one gauge name.
func (sp *Sampler) Series(name string) []Sample { return sp.series[name] }

// Names returns the registered gauge names in registration order.
func (sp *Sampler) Names() []string {
	out := make([]string, len(sp.gauges))
	for i := range sp.gauges {
		out[i] = sp.gauges[i].name
	}
	return out
}
