// Package protocol implements the memcached ASCII protocol: command
// parsing, response serialization, and a per-connection session loop
// that executes commands against a kvstore.Store. It supports the verb
// set used by memcached 1.4 (the paper's workload): get/gets, set, add,
// replace, append, prepend, cas, delete, incr, decr, touch, stats,
// flush_all, version, verbosity, and quit, including noreply variants.
package protocol

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kv3d/internal/kvstore"
	"kv3d/internal/sim"
)

// Version is reported by the "version" command.
const Version = "1.4.39-kv3d"

// Wire responses.
const (
	respStored    = "STORED\r\n"
	respNotStored = "NOT_STORED\r\n"
	respExists    = "EXISTS\r\n"
	respNotFound  = "NOT_FOUND\r\n"
	respDeleted   = "DELETED\r\n"
	respTouched   = "TOUCHED\r\n"
	respOK        = "OK\r\n"
	respEnd       = "END\r\n"
	respError     = "ERROR\r\n"
	// respBusy is the load-shedding refusal: the server is over its
	// in-flight cap and declines the command rather than queueing it.
	// Clients treat it as retryable (see kvclient.ErrBusy).
	respBusy = "SERVER_ERROR busy\r\n"
)

// maxLineLen bounds a command line, mirroring memcached's 2048 limit.
const maxLineLen = 2048

// ErrQuit is returned by Session.Serve when the client sent quit.
var ErrQuit = errors.New("protocol: client quit")

// Gate admits requests under a server-wide in-flight cap. TryAcquire
// is called before dispatching each command; if it refuses, the session
// answers busy instead of executing, and Release is not called. The
// implementation must be safe for concurrent use from all connection
// goroutines (kvserver's is a buffered-channel semaphore).
type Gate interface {
	// TryAcquire claims an execution slot without blocking.
	TryAcquire() bool
	// Release returns a slot claimed by TryAcquire.
	Release()
}

// Session serves the memcached protocol on one connection.
type Session struct {
	store *kvstore.Store
	r     *bufio.Reader
	w     *bufio.Writer
	// scratch buffers reused across requests to keep the hot path
	// allocation-free.
	valBuf  []byte
	lineBuf []byte
	numBuf  []byte
	// multiget scratch: key tokens of the current command line, the
	// per-key batch results, and the store-side grouping state.
	keyBuf   [][]byte
	batchBuf []kvstore.BatchResult
	batchScr kvstore.BatchScratch

	// Optional per-op observation; the clock is injected by the server
	// layer so this package never reads wall time itself.
	obs      Observer
	nowNanos func() sim.Ns

	// Optional sampled flight tracing (requires an observer clock):
	// every flightEvery-th op gets a phase-split OpSpan. spanActive and
	// the t* stamps are per-command scratch, valid only inside serveOne.
	flight      SpanObserver
	flightEvery uint64
	flightSeq   uint64
	spanActive  bool
	tParse      sim.Ns
	tExec       sim.Ns

	// Optional admission gate; nil means unlimited.
	gate Gate

	// Optional replica fan-out hook; nil means every write is local.
	// The ASCII protocol has no spare request field for a per-op mode,
	// so ASCII writes always replicate with the server default.
	repl Replicator

	// Optional cross-connection coalescer (the event-driven batched
	// core). When set, get/gets and plain set execute through shared
	// shard-ordered rounds, and responses are staged: the writer is
	// flushed only when the read buffer has drained, so a pipelined
	// burst costs one write syscall instead of one per op.
	coal   *kvstore.Coalescer
	getJob kvstore.GetJob
	setJob kvstore.SetJob
	setOps []kvstore.SetOp
}

// SetGate installs an in-flight admission gate; call before Serve.
func (s *Session) SetGate(g Gate) { s.gate = g }

// SetCoalescer switches the session into batched mode: lookups and
// plain sets are merged with other connections' into shard-ordered
// store rounds, and response flushes are deferred while pipelined
// input is pending. Response bytes are identical to per-op mode — only
// the store-call and syscall segmentation changes. Call before Serve.
func (s *Session) SetCoalescer(c *kvstore.Coalescer) { s.coal = c }

// SetReplicator installs the replica fan-out hook; call before Serve.
// Successful set/add/replace/cas stores and deletes are handed to it
// with ReplDefault (the ASCII protocol carries no per-op mode).
// Append/prepend and incr/decr stay local-only: their deltas are not
// idempotent, so propagating them as sets would race concurrent
// mutations — the ROBUSTNESS.md replication chapter records the gap.
func (s *Session) SetReplicator(r Replicator) { s.repl = r }

// SetObserver installs a per-op observer and the nanosecond clock used
// to time commands. Both must be non-nil to enable observation; call
// before Serve.
func (s *Session) SetObserver(o Observer, nowNanos func() sim.Ns) {
	s.obs = o
	s.nowNanos = nowNanos
}

// SetFlight installs a sampled per-op span observer: one op in every
// `every` (minimum 1) is timed through its parse / store-execute /
// write phases and reported as an OpSpan. Spans use the observer clock
// from SetObserver, so flight tracing is active only when an observer
// is installed too; call both before Serve.
func (s *Session) SetFlight(f SpanObserver, every int) {
	s.flight = f
	if every < 1 {
		every = 1
	}
	s.flightEvery = uint64(every)
}

// beginSpan decides whether this command is sampled and resets the
// phase stamps. Caller guarantees the observer clock is installed.
//
//kv3d:hotpath
func (s *Session) beginSpan() {
	if s.flight == nil {
		return
	}
	n := s.flightSeq
	s.flightSeq++
	if n%s.flightEvery != 0 {
		return
	}
	s.spanActive = true
	s.tParse = 0
	s.tExec = 0
}

// markParse stamps the end of the parse phase (first call wins).
//
//kv3d:hotpath
func (s *Session) markParse() {
	if s.spanActive && s.tParse == 0 {
		s.tParse = s.nowNanos()
	}
}

// markExec stamps the end of the store-execute phase (first call wins).
//
//kv3d:hotpath
func (s *Session) markExec() {
	if s.spanActive && s.tExec == 0 {
		s.tExec = s.nowNanos()
	}
}

// endSpan emits the sampled span. Unstamped phases collapse to
// zero-length: parse defaults to the op start, execute to parse-done
// (cold verbs mark nothing and report all time as write).
//
//kv3d:hotpath
func (s *Session) endSpan(class OpClass, out Outcome, start, end sim.Ns) {
	if !s.spanActive {
		return
	}
	s.spanActive = false
	p, e := s.tParse, s.tExec
	if p == 0 {
		p = start
	}
	if e == 0 {
		e = p
	}
	s.flight.ObserveSpan(OpSpan{
		Start: start, ParseDone: p, ExecDone: e, End: end,
		Class: class, Outcome: out,
	})
}

// NewSession wraps a transport with buffered I/O.
func NewSession(store *kvstore.Store, rw io.ReadWriter) *Session {
	return &Session{
		store: store,
		r:     bufio.NewReaderSize(rw, 64<<10),
		w:     bufio.NewWriterSize(rw, 64<<10),
	}
}

// NewSessionBuffered wraps pre-existing buffered I/O (used by the server
// after protocol sniffing).
func NewSessionBuffered(store *kvstore.Store, r *bufio.Reader, w *bufio.Writer) *Session {
	return &Session{store: store, r: r, w: w}
}

// Serve processes commands until EOF, quit, or a transport error.
// A clean client disconnect returns nil — unless the final flush fails,
// which would silently truncate the last response.
func (s *Session) Serve() error {
	for {
		err := s.serveOne()
		switch {
		case err == nil:
			continue
		case errors.Is(err, ErrQuit), errors.Is(err, io.EOF):
			return s.w.Flush()
		default:
			// Surface both: the command error ended the session, and a
			// failed flush means the error response never reached the
			// client. errors.Is still matches either one.
			return errors.Join(err, s.w.Flush())
		}
	}
}

// serveOne reads and executes a single command. The command line is
// tokenized as byte slices into the session's reused line buffer; only
// the cold (non-GET) verbs fall back to string fields.
//
//kv3d:hotpath
func (s *Session) serveOne() error {
	line, err := s.readLine()
	if err != nil {
		return err
	}
	verb, rest := nextToken(line)
	if len(verb) == 0 {
		return s.reply(respError)
	}
	if s.obs != nil && s.nowNanos != nil {
		class := classifyVerbBytes(verb)
		start := s.nowNanos()
		if s.gate != nil && !s.gate.TryAcquire() {
			// Shed ops are observed too — a busy refusal is part of the
			// latency story, not a gap in it.
			s.beginSpan()
			err := s.shedBusy(verb, rest)
			end := s.nowNanos()
			s.obs.ObserveOp(class, OutcomeBusy, end-start)
			s.endSpan(class, OutcomeBusy, start, end)
			return err
		}
		s.beginSpan()
		err := s.dispatch(verb, rest)
		end := s.nowNanos()
		out := outcomeOf(err)
		s.obs.ObserveOp(class, out, end-start)
		s.endSpan(class, out, start, end)
		if s.gate != nil {
			s.gate.Release()
		}
		return err
	}
	if s.gate != nil && !s.gate.TryAcquire() {
		return s.shedBusy(verb, rest)
	}
	err = s.dispatch(verb, rest)
	if s.gate != nil {
		s.gate.Release()
	}
	return err
}

// shedBusy refuses one command while the server is over its in-flight
// cap. Store-class commands carry a data block that must be consumed
// before replying, or the refusal would desynchronize the stream (the
// block's bytes would be parsed as commands). noreply commands are shed
// silently, matching their fire-and-forget contract; quit still quits.
func (s *Session) shedBusy(verb, rest []byte) error {
	switch string(verb) {
	case "quit":
		return ErrQuit
	case "set", "add", "replace", "append", "prepend", "cas":
		extra := 0
		if string(verb) == "cas" {
			extra = 1
		}
		args := strings.Fields(string(rest))
		_, _, _, nbytes, _, noreply, perr := parseStorageArgs(args, extra)
		if perr != nil {
			return s.clientError(perr.Error())
		}
		if _, err := s.readData(nbytes); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return io.EOF
			}
			return s.clientError("bad data chunk")
		}
		if noreply {
			return nil
		}
		return s.reply(respBusy)
	}
	if wantsNoReply(strings.Fields(string(rest))) {
		return nil
	}
	return s.reply(respBusy)
}

// dispatch executes one command. The verb comparison converts through
// string only inside the switch, which the compiler performs without
// allocating; cold verbs materialize their argument strings.
//
//kv3d:hotpath
func (s *Session) dispatch(verb, rest []byte) error {
	switch string(verb) {
	case "get":
		return s.doGet(rest, false)
	case "gets":
		return s.doGet(rest, true)
	case "quit":
		return ErrQuit
	}
	args := strings.Fields(string(rest)) //nolint:kv3d -- store/admin verbs tolerate one parse allocation; get/gets/quit return above and never reach this line
	switch string(verb) {
	case "set", "add", "replace", "append", "prepend":
		return s.doStore(string(verb), args, 0) //nolint:kv3d -- the store mutation API is string-keyed; store-class verbs are off the measured hot path
	case "cas":
		return s.doCas(args)
	case "delete":
		return s.doDelete(args)
	case "incr":
		return s.doIncrDecr(args, true)
	case "decr":
		return s.doIncrDecr(args, false)
	case "touch":
		return s.doTouch(args)
	case "stats":
		return s.doStats(args)
	case "flush_all":
		return s.doFlushAll(args)
	case "version":
		return s.reply("VERSION " + Version + "\r\n")
	case "verbosity":
		if wantsNoReply(args) {
			return nil
		}
		return s.reply(respOK)
	default:
		return s.reply(respError)
	}
}

// nextToken splits off the next space-delimited token (memcached's
// separator) without allocating; both return values alias the input.
//
//kv3d:aliases b
func nextToken(b []byte) (tok, rest []byte) {
	i := 0
	for i < len(b) && b[i] == ' ' {
		i++
	}
	j := i
	for j < len(b) && b[j] != ' ' {
		j++
	}
	return b[i:j], b[j:]
}

// readLine reads a \r\n-terminated command line. The returned slice
// aliases the session's line buffer and is valid until the next call.
//
//kv3d:hotpath
func (s *Session) readLine() ([]byte, error) {
	s.lineBuf = s.lineBuf[:0]
	for {
		frag, err := s.r.ReadSlice('\n')
		s.lineBuf = append(s.lineBuf, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(s.lineBuf) > maxLineLen {
				return nil, fmt.Errorf("protocol: command line exceeds %d bytes", maxLineLen)
			}
			continue
		}
		return nil, err
	}
	line := s.lineBuf
	if n := len(line); n >= 2 && line[n-2] == '\r' {
		line = line[:n-2]
	} else if n >= 1 {
		line = line[:n-1] // tolerate bare \n like memcached does
	}
	if len(line) > maxLineLen {
		return nil, fmt.Errorf("protocol: command line exceeds %d bytes", maxLineLen)
	}
	return line, nil
}

func (s *Session) reply(msg string) error {
	_, err := s.w.WriteString(msg)
	if err != nil {
		return err
	}
	return s.maybeFlush()
}

// maybeFlush is the response-staging point of batched mode: while more
// pipelined input is already buffered, responses stay in the writer and
// the flush (one write syscall) happens when the input drains — the
// "flush before sleeping" discipline. Per-op mode flushes every time,
// preserving the seed behaviour. The skip is safe against deadlock for
// any client that sends complete requests: serveOne flushes before
// every potentially-blocking read.
//
//kv3d:hotpath
func (s *Session) maybeFlush() error {
	if s.coal != nil && s.r.Buffered() > 0 {
		return nil
	}
	return s.w.Flush()
}

func (s *Session) clientError(msg string) error {
	return s.reply("CLIENT_ERROR " + msg + "\r\n")
}

func wantsNoReply(args []string) bool {
	return len(args) > 0 && args[len(args)-1] == "noreply"
}

// doGet serves get/gets, the measured hot path of the ASCII protocol.
// It must not allocate: keys stay byte slices of the command line,
// values copy into the reused valBuf, and the response header is
// assembled with strconv.Append into the reused numBuf (intermediate
// bufio writes lean on the sticky-error contract; Flush reports).
//
// A single-key get takes the direct per-key path; a multi-key get is
// served through kvstore.GetBatchInto, which groups the keys by shard
// and acquires each involved shard's lock once — an N-key get costs at
// most Shards lock acquisitions instead of N.
//
//kv3d:hotpath
func (s *Session) doGet(rest []byte, withCAS bool) error {
	key, rest := nextToken(rest)
	if len(key) == 0 {
		return s.reply(respError)
	}
	second, rest := nextToken(rest)
	if s.coal != nil {
		return s.doGetBatched(key, second, rest, withCAS)
	}
	if len(second) == 0 {
		// Single-key fast path, identical to the seed behaviour.
		s.markParse()
		out, e, ok := s.store.GetIntoBytes(s.valBuf[:0], key)
		s.markExec()
		s.valBuf = out[:0]
		if ok {
			s.writeValue(key, out, e.Flags, e.CAS, withCAS)
		}
		if _, err := s.w.WriteString(respEnd); err != nil {
			return err
		}
		return s.w.Flush()
	}
	// Multi-key: collect the tokens (they alias lineBuf, which stays
	// untouched until the next readLine), run one batched lookup, then
	// emit VALUE blocks in request order.
	s.keyBuf = append(s.keyBuf[:0], key, second) //nolint:kv3d -- keyBuf entries alias lineBuf; both are this session's scratch, consumed before the next readLine overwrites them
	for {
		key, rest = nextToken(rest)
		if len(key) == 0 {
			break
		}
		s.keyBuf = append(s.keyBuf, key) //nolint:kv3d -- same session-scratch self-alias as above; keyBuf is reset at the next multiget
	}
	s.markParse()
	s.valBuf, s.batchBuf = s.store.GetBatchInto(s.valBuf[:0], s.keyBuf, s.batchBuf[:0], &s.batchScr)
	s.markExec()
	for i, r := range s.batchBuf {
		if r.Found {
			s.writeValue(s.keyBuf[i], s.valBuf[r.Start:r.End], r.Flags, r.CAS, withCAS)
		}
	}
	if _, err := s.w.WriteString(respEnd); err != nil {
		return err
	}
	return s.w.Flush()
}

// doGetBatched serves get/gets through the cross-connection coalescer:
// the key set (single or multi) becomes one job merged with concurrent
// connections' lookups into a shard-ordered round, and the response is
// staged rather than flushed per op. The emitted bytes are identical to
// the per-op path — VALUE blocks in request order, then END.
//
//kv3d:hotpath
func (s *Session) doGetBatched(key, second, rest []byte, withCAS bool) error {
	s.keyBuf = append(s.keyBuf[:0], key) //nolint:kv3d -- keyBuf entries alias lineBuf; the coalescer round completes (and s.getJob releases them) before the next readLine overwrites it
	if len(second) != 0 {
		s.keyBuf = append(s.keyBuf, second) //nolint:kv3d -- same session-scratch self-alias as above
		for {
			key, rest = nextToken(rest)
			if len(key) == 0 {
				break
			}
			s.keyBuf = append(s.keyBuf, key) //nolint:kv3d -- same session-scratch self-alias as above
		}
	}
	s.markParse()
	s.coal.Gets(&s.getJob, s.keyBuf)
	s.markExec()
	for i := range s.keyBuf {
		v, r := s.getJob.Result(i)
		if r.Found {
			s.writeValue(s.keyBuf[i], v, r.Flags, r.CAS, withCAS)
		}
	}
	s.getJob.Release()
	if _, err := s.w.WriteString(respEnd); err != nil {
		return err
	}
	return s.maybeFlush()
}

// writeValue emits one "VALUE <key> <flags> <len> [<cas>]\r\n<data>\r\n"
// block into the session writer (sticky-error contract; the caller's
// Flush reports failures).
//
//kv3d:hotpath
func (s *Session) writeValue(key, val []byte, flags uint32, cas uint64, withCAS bool) {
	s.w.WriteString("VALUE ")
	s.w.Write(key)
	b := append(s.numBuf[:0], ' ')
	b = strconv.AppendUint(b, uint64(flags), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(len(val)), 10)
	if withCAS {
		b = append(b, ' ')
		b = strconv.AppendUint(b, cas, 10)
	}
	s.numBuf = append(b, '\r', '\n')
	s.w.Write(s.numBuf)
	s.w.Write(val)
	s.w.WriteString("\r\n")
}

// parseStorageArgs parses "<key> <flags> <exptime> <bytes> [noreply]".
func parseStorageArgs(args []string, extra int) (key string, flags uint32, exptime int64, nbytes int, cas uint64, noreply bool, err error) {
	want := 4 + extra
	if len(args) == want+1 && args[want] == "noreply" {
		noreply = true
		args = args[:want]
	}
	if len(args) != want {
		return "", 0, 0, 0, 0, false, errors.New("bad command line format")
	}
	key = args[0]
	f64, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return "", 0, 0, 0, 0, false, errors.New("bad command line format")
	}
	exptime, err = strconv.ParseInt(args[2], 10, 64)
	if err != nil {
		return "", 0, 0, 0, 0, false, errors.New("bad command line format")
	}
	n64, err := strconv.ParseUint(args[3], 10, 31)
	if err != nil {
		return "", 0, 0, 0, 0, false, errors.New("bad data chunk size")
	}
	if extra == 1 {
		cas, err = strconv.ParseUint(args[4], 10, 64)
		if err != nil {
			return "", 0, 0, 0, 0, false, errors.New("bad command line format")
		}
	}
	return key, uint32(f64), exptime, int(n64), cas, noreply, nil
}

// readData reads the nbytes data block plus trailing \r\n.
func (s *Session) readData(nbytes int) ([]byte, error) {
	if cap(s.valBuf) < nbytes+2 {
		s.valBuf = make([]byte, nbytes+2)
	}
	buf := s.valBuf[:nbytes+2]
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return nil, err
	}
	if buf[nbytes] != '\r' || buf[nbytes+1] != '\n' {
		return nil, errors.New("bad data chunk")
	}
	return buf[:nbytes], nil
}

func (s *Session) doStore(verb string, args []string, _ int) error {
	key, flags, exptime, nbytes, _, noreply, perr := parseStorageArgs(args, 0)
	if perr != nil {
		return s.clientError(perr.Error())
	}
	data, err := s.readData(nbytes)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return io.EOF
		}
		return s.clientError("bad data chunk")
	}
	s.markParse()
	var serr error
	switch {
	case verb == "set" && s.coal != nil:
		// Batched mode: a plain set joins the cross-connection set round.
		// The conditional verbs (add/replace/cas) need their guard run
		// under the shard lock, which SetBatch does not model, so they
		// stay on the direct path below.
		s.setOps = append(s.setOps[:0], kvstore.SetOp{Key: key, Value: data, Flags: flags, Exptime: exptime})
		s.coal.Sets(&s.setJob, s.setOps)
		serr = s.setJob.Err(0)
	default:
		serr = s.storeVerb(verb, key, data, flags, exptime)
	}
	if serr == nil && s.repl != nil && (verb == "set" || verb == "add" || verb == "replace") {
		if rerr := s.repl.ReplicateSet(key, data, flags, exptime, ReplDefault); rerr != nil {
			serr = rerr
		}
	}
	s.markExec()
	if noreply {
		return nil
	}
	return s.reply(storeResponse(serr))
}

// storeVerb executes one direct (non-coalesced) storage mutation.
func (s *Session) storeVerb(verb, key string, data []byte, flags uint32, exptime int64) error {
	switch verb {
	case "set":
		return s.store.Set(key, data, flags, exptime)
	case "add":
		return s.store.Add(key, data, flags, exptime)
	case "replace":
		return s.store.Replace(key, data, flags, exptime)
	case "append":
		return s.store.Append(key, data)
	case "prepend":
		return s.store.Prepend(key, data)
	}
	return nil
}

func (s *Session) doCas(args []string) error {
	key, flags, exptime, nbytes, cas, noreply, perr := parseStorageArgs(args, 1)
	if perr != nil {
		return s.clientError(perr.Error())
	}
	data, err := s.readData(nbytes)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return io.EOF
		}
		return s.clientError("bad data chunk")
	}
	s.markParse()
	serr := s.store.CAS(key, data, flags, exptime, cas)
	if serr == nil && s.repl != nil {
		if rerr := s.repl.ReplicateSet(key, data, flags, exptime, ReplDefault); rerr != nil {
			serr = rerr
		}
	}
	s.markExec()
	if noreply {
		return nil
	}
	switch {
	case serr == nil:
		return s.reply(respStored)
	case errors.Is(serr, kvstore.ErrExists):
		return s.reply(respExists)
	case errors.Is(serr, kvstore.ErrNotFound):
		return s.reply(respNotFound)
	default:
		return s.reply(storeResponse(serr))
	}
}

func storeResponse(err error) string {
	switch {
	case err == nil:
		return respStored
	case errors.Is(err, kvstore.ErrNotStored):
		return respNotStored
	case errors.Is(err, kvstore.ErrTooLarge):
		return "SERVER_ERROR object too large for cache\r\n"
	case errors.Is(err, kvstore.ErrOutOfMemory):
		return "SERVER_ERROR out of memory storing object\r\n"
	case errors.Is(err, kvstore.ErrBadKey):
		return "CLIENT_ERROR bad key\r\n"
	default:
		return "SERVER_ERROR " + err.Error() + "\r\n"
	}
}

func (s *Session) doDelete(args []string) error {
	noreply := wantsNoReply(args)
	if noreply {
		args = args[:len(args)-1]
	}
	if len(args) != 1 {
		return s.clientError("bad command line format")
	}
	s.markParse()
	err := s.store.Delete(args[0])
	if err == nil && s.repl != nil {
		if rerr := s.repl.ReplicateDelete(args[0], ReplDefault); rerr != nil {
			err = rerr
		}
	}
	s.markExec()
	if noreply {
		return nil
	}
	switch {
	case errors.Is(err, kvstore.ErrNotFound):
		return s.reply(respNotFound)
	case err != nil:
		return s.reply("SERVER_ERROR " + err.Error() + "\r\n")
	}
	return s.reply(respDeleted)
}

func (s *Session) doIncrDecr(args []string, incr bool) error {
	noreply := wantsNoReply(args)
	if noreply {
		args = args[:len(args)-1]
	}
	if len(args) != 2 {
		return s.clientError("bad command line format")
	}
	delta, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return s.clientError("invalid numeric delta argument")
	}
	var v uint64
	if incr {
		v, err = s.store.Incr(args[0], delta)
	} else {
		v, err = s.store.Decr(args[0], delta)
	}
	if noreply {
		return nil
	}
	switch {
	case err == nil:
		return s.reply(strconv.FormatUint(v, 10) + "\r\n")
	case errors.Is(err, kvstore.ErrNotFound):
		return s.reply(respNotFound)
	case errors.Is(err, kvstore.ErrNotNumeric):
		return s.clientError("cannot increment or decrement non-numeric value")
	default:
		return s.reply("SERVER_ERROR " + err.Error() + "\r\n")
	}
}

func (s *Session) doTouch(args []string) error {
	noreply := wantsNoReply(args)
	if noreply {
		args = args[:len(args)-1]
	}
	if len(args) != 2 {
		return s.clientError("bad command line format")
	}
	exptime, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return s.clientError("invalid exptime argument")
	}
	terr := s.store.Touch(args[0], exptime)
	// A successful touch must fan out like a set: replicas that keep the
	// old TTL diverge from the primary (the item outlives or predeceases
	// its failover copy). Misses are not replicated — the replica's TTL
	// for a key the primary doesn't have is moot.
	if terr == nil && s.repl != nil {
		if rerr := s.repl.ReplicateTouch(args[0], exptime, ReplDefault); rerr != nil {
			terr = rerr
		}
	}
	if noreply {
		return nil
	}
	switch {
	case errors.Is(terr, kvstore.ErrNotFound):
		return s.reply(respNotFound)
	case terr != nil:
		return s.reply("SERVER_ERROR " + terr.Error() + "\r\n")
	}
	return s.reply(respTouched)
}

func (s *Session) doStats(args []string) error {
	if len(args) == 1 {
		switch args[0] {
		case "slabs":
			return s.doStatsSlabs()
		case "settings":
			return s.doStatsSettings()
		case "reset":
			// Accepted for compatibility; counters are cumulative here.
			return s.reply("RESET\r\n")
		default:
			return s.clientError("unknown stats sub-command")
		}
	}
	st := s.store.Stats()
	write := func(name string, value any) {
		fmt.Fprintf(s.w, "STAT %s %v\r\n", name, value)
	}
	write("version", Version)
	write("uptime", st.UptimeSeconds)
	write("curr_items", st.CurrItems)
	write("total_items", st.TotalItems)
	write("bytes", st.BytesUsed)
	write("limit_maxbytes", st.SlabBytes)
	write("get_hits", st.GetHits)
	write("get_misses", st.GetMisses)
	write("cmd_set", st.Sets)
	write("delete_hits", st.DeleteHits)
	write("delete_misses", st.DeleteMisses)
	write("cas_hits", st.CasHits)
	write("cas_misses", st.CasMisses)
	write("cas_badval", st.CasBadval)
	write("incr_hits", st.IncrHits)
	write("incr_misses", st.IncrMisses)
	write("decr_hits", st.DecrHits)
	write("decr_misses", st.DecrMisses)
	write("touch_hits", st.TouchHits)
	write("touch_misses", st.TouchMisses)
	write("evictions", st.Evictions)
	write("expired_unfetched", st.Expired)
	write("threads", st.Shards)
	_, err := s.w.WriteString(respEnd)
	if err != nil {
		return err
	}
	return s.w.Flush()
}

// doStatsSlabs renders the per-class slab view like memcached's
// "stats slabs".
func (s *Session) doStatsSlabs() error {
	for _, c := range s.store.SlabStats() {
		fmt.Fprintf(s.w, "STAT %d:chunk_size %d\r\n", c.ClassID, c.ChunkSize)
		fmt.Fprintf(s.w, "STAT %d:total_pages %d\r\n", c.ClassID, c.Pages)
		fmt.Fprintf(s.w, "STAT %d:used_chunks %d\r\n", c.ClassID, c.UsedChunks)
		fmt.Fprintf(s.w, "STAT %d:free_chunks %d\r\n", c.ClassID, c.FreeChunks)
	}
	st := s.store.Stats()
	fmt.Fprintf(s.w, "STAT active_slabs %d\r\n", len(s.store.SlabStats()))
	fmt.Fprintf(s.w, "STAT slab_reassign_total %d\r\n", st.SlabReassigns)
	if _, err := s.w.WriteString(respEnd); err != nil {
		return err
	}
	return s.w.Flush()
}

// doStatsSettings reports the store's effective configuration.
func (s *Session) doStatsSettings() error {
	cfg := s.store.Config()
	fmt.Fprintf(s.w, "STAT maxbytes %d\r\n", cfg.MemoryLimit)
	fmt.Fprintf(s.w, "STAT item_size_max %d\r\n", cfg.MaxItemSize)
	fmt.Fprintf(s.w, "STAT evictions %v\r\n", boolToOnOff(cfg.EvictionsEnabled))
	fmt.Fprintf(s.w, "STAT eviction_policy %s\r\n", cfg.Policy)
	fmt.Fprintf(s.w, "STAT locking %s\r\n", cfg.Mode)
	fmt.Fprintf(s.w, "STAT num_shards %d\r\n", cfg.Shards)
	fmt.Fprintf(s.w, "STAT slab_page_size %d\r\n", cfg.SlabPageSize)
	fmt.Fprintf(s.w, "STAT growth_factor %.2f\r\n", cfg.GrowthFactor)
	if _, err := s.w.WriteString(respEnd); err != nil {
		return err
	}
	return s.w.Flush()
}

func boolToOnOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func (s *Session) doFlushAll(args []string) error {
	noreply := wantsNoReply(args)
	if noreply {
		args = args[:len(args)-1]
	}
	var delay int64
	if len(args) == 1 {
		var err error
		delay, err = strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return s.clientError("invalid delay argument")
		}
	} else if len(args) > 1 {
		return s.clientError("bad command line format")
	}
	s.store.FlushAll(delay)
	// flush_all must reach replicas too, or a failover resurrects the
	// entire flushed dataset from a replica that never heard about it.
	var rerr error
	if s.repl != nil {
		rerr = s.repl.ReplicateFlush(delay, ReplDefault)
	}
	if noreply {
		return nil
	}
	if rerr != nil {
		return s.reply("SERVER_ERROR " + rerr.Error() + "\r\n")
	}
	return s.reply(respOK)
}
