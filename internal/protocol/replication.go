package protocol

// Replication seam: the protocol layer does not replicate anything
// itself, but it is where a write's consistency choice arrives on the
// wire and where a successful local mutation must be handed to whoever
// fans it out to replicas. The memcached binary header's vbucket field
// (request bytes 6-7, unused by this server's flat keyspace) carries a
// per-op ReplMode; the ASCII protocol has no spare field, so ASCII
// writes always use the server's default mode.
//
// Loop prevention is by construction: replica and migration traffic is
// sent with ReplLocal, which the receiving session never re-replicates.

// ReplMode selects how one write propagates to replicas.
type ReplMode uint16

const (
	// ReplDefault defers to the server's configured default mode.
	ReplDefault ReplMode = 0
	// ReplLocal applies the write locally only — the mode replica and
	// migration traffic is tagged with, so fan-out never loops.
	ReplLocal ReplMode = 1
	// ReplAsync acknowledges after the local store and fans out to
	// replicas in the background (fire-and-forget; bounded staleness).
	ReplAsync ReplMode = 2
	// ReplQuorum acknowledges only after a majority of the key's
	// replica set (including the local store) has applied the write.
	ReplQuorum ReplMode = 3
)

func (m ReplMode) String() string {
	switch m {
	case ReplDefault:
		return "default"
	case ReplLocal:
		return "local"
	case ReplAsync:
		return "async"
	case ReplQuorum:
		return "quorum"
	}
	return "unknown"
}

// ReplModeFromVbucket decodes the request vbucket field. Unknown values
// fall back to ReplDefault so frames from vbucket-aware stock memcached
// clients degrade to the server's configured behaviour instead of
// erroring.
func ReplModeFromVbucket(v uint16) ReplMode {
	if m := ReplMode(v); m <= ReplQuorum {
		return m
	}
	return ReplDefault
}

// ParseReplMode parses a mode name ("async", "quorum", "local",
// "default") as used by server flags.
func ParseReplMode(s string) (ReplMode, bool) {
	switch s {
	case "default", "":
		return ReplDefault, true
	case "local":
		return ReplLocal, true
	case "async":
		return ReplAsync, true
	case "quorum":
		return ReplQuorum, true
	}
	return ReplDefault, false
}

// StatusNoQuorum is the binary response status for a quorum write that
// stored locally but could not gather majority acknowledgement in time.
// The write is NOT rolled back — the client must treat the op as
// unacknowledged and retry (the memcached model has no transactional
// undo; retrying a set is idempotent).
const StatusNoQuorum = 0x0086

// Replicator receives successful local mutations for replica fan-out.
// Implementations decide what each mode means; a ReplicateSet or
// ReplicateDelete error is surfaced to the client as a no-quorum
// failure, so only quorum-mode implementations should return errors.
//
// The value slice is borrowed from the session's reused frame buffer
// and is valid only for the duration of the call: implementations that
// retain it (queues, in-flight fan-out) must copy it first.
type Replicator interface {
	ReplicateSet(key string, value []byte, flags uint32, exptime int64, mode ReplMode) error
	ReplicateDelete(key string, mode ReplMode) error
	// ReplicateTouch propagates a successful TTL update. Without it a
	// touched item lives longer on the primary than on replicas (or vice
	// versa for a shortened TTL), so a failover serves resurrected or
	// prematurely-dead items — the replica TTL divergence bug.
	ReplicateTouch(key string, exptime int64, mode ReplMode) error
	// ReplicateFlush propagates a flush_all (with its optional delay).
	// Without it replicas keep serving the entire flushed dataset after
	// a failover.
	ReplicateFlush(delay int64, mode ReplMode) error
}
