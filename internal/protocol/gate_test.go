package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// stepGate scripts TryAcquire outcomes: call i returns pattern[i]
// (false once the pattern is exhausted).
type stepGate struct {
	pattern  []bool
	calls    int
	acquired int
	released int
}

func (g *stepGate) TryAcquire() bool {
	ok := g.calls < len(g.pattern) && g.pattern[g.calls]
	g.calls++
	if ok {
		g.acquired++
	}
	return ok
}

func (g *stepGate) Release() { g.released++ }

func admitAll(n int) *stepGate {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return &stepGate{pattern: p}
}

func runGated(t *testing.T, gate Gate, input string) string {
	t.Helper()
	buf := &rwBuffer{in: bytes.NewReader([]byte(input))}
	sess := NewSession(newStore(t), buf)
	sess.SetGate(gate)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return buf.out.String()
}

func TestGateShedsGetWithBusy(t *testing.T) {
	out := runGated(t, &stepGate{}, "get foo\r\n")
	if out != "SERVER_ERROR busy\r\n" {
		t.Fatalf("out = %q", out)
	}
}

// The critical stream-sync property: a shed store command must still
// consume its data block, or the block's bytes would be parsed as the
// next command.
func TestGateShedsStoreKeepingStreamSync(t *testing.T) {
	g := &stepGate{pattern: []bool{false, true}} // refuse the set, admit the following get
	out := runGated(t, g, "set foo 0 0 8\r\nget evil\r\nget foo\r\n")
	want := "SERVER_ERROR busy\r\nEND\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q (data block leaked into the command stream?)", out, want)
	}
	if g.released != 1 {
		t.Fatalf("released = %d, want 1", g.released)
	}
}

func TestGateShedsNoreplySilently(t *testing.T) {
	// The shed noreply set produces no output; the admitted get misses
	// because the set never executed.
	g := &stepGate{}
	out := runGated(t, g, "set foo 0 0 5 noreply\r\nhello\r\n")
	if out != "" {
		t.Fatalf("noreply shed produced output %q", out)
	}
}

func TestGateStillHonorsQuit(t *testing.T) {
	out := runGated(t, &stepGate{}, "quit\r\n")
	if out != "" {
		t.Fatalf("quit under load produced output %q", out)
	}
}

func TestGateBalancedAcquireRelease(t *testing.T) {
	g := admitAll(100)
	runGated(t, g, "set foo 1 0 3\r\nbar\r\nget foo\r\ndelete foo\r\n")
	if g.acquired != 3 || g.released != 3 {
		t.Fatalf("acquired %d released %d, want 3/3", g.acquired, g.released)
	}
}

func TestBinaryGateShedsWithStatusBusy(t *testing.T) {
	frame := func(opcode byte, key string) []byte {
		b := make([]byte, binHeaderLen+len(key))
		b[0] = MagicRequest
		b[1] = opcode
		binary.BigEndian.PutUint16(b[2:], uint16(len(key)))
		binary.BigEndian.PutUint32(b[8:], uint32(len(key)))
		copy(b[binHeaderLen:], key)
		return b
	}
	var input bytes.Buffer
	input.Write(frame(OpGet, "foo"))
	input.Write(frame(OpGetQ, "foo")) // quiet: shed silently
	input.Write(frame(OpQuit, ""))

	buf := &rwBuffer{in: bytes.NewReader(input.Bytes())}
	sess := NewBinarySession(newStore(t), buf)
	sess.SetGate(&stepGate{})
	if err := sess.Serve(); err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("serve: %v", err)
	}
	out := buf.out.Bytes()
	// First response: busy for the OpGet.
	if len(out) < binHeaderLen {
		t.Fatalf("no response frame, out = %x", out)
	}
	if got := binary.BigEndian.Uint16(out[6:]); got != StatusBusy {
		t.Fatalf("status = %#04x, want StatusBusy", got)
	}
	// Exactly two frames came back: the busy and the quit's OK (the
	// quiet get was shed without a response).
	h1 := parseBinHeader(out[:binHeaderLen])
	rest := out[binHeaderLen+int(h1.bodyLen):]
	if len(rest) != binHeaderLen {
		t.Fatalf("expected exactly one more frame, got %d bytes", len(rest))
	}
	if rest[1] != OpQuit {
		t.Fatalf("second frame opcode = %#02x, want quit", rest[1])
	}
}
