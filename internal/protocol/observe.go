package protocol

import (
	"errors"

	"kv3d/internal/sim"
)

// OpClass buckets protocol commands for per-op latency metrics: both
// wire protocols (ASCII and binary) map onto the same classes, so the
// metrics endpoint reports one histogram per logical operation
// regardless of which protocol the client spoke.
type OpClass int

// Operation classes, in the order they are exported by the metrics
// endpoint.
const (
	ClassGet    OpClass = iota // get/gets, binary get family
	ClassStore                 // set/add/replace/append/prepend/cas
	ClassDelete                // delete
	ClassArith                 // incr/decr
	ClassTouch                 // touch
	ClassOther                 // stats, flush_all, version, noop, ...
	NumOpClasses
)

// String returns the class's metric-name segment.
func (c OpClass) String() string {
	switch c {
	case ClassGet:
		return "get"
	case ClassStore:
		return "store"
	case ClassDelete:
		return "delete"
	case ClassArith:
		return "arith"
	case ClassTouch:
		return "touch"
	default:
		return "other"
	}
}

// Outcome classifies how a command ended, so latency accounting can
// separate healthy ops from failures and — critically — from busy
// sheds, which previously vanished from the histograms entirely.
type Outcome int

// Outcomes, in the order they are exported by the metrics endpoint.
const (
	OutcomeOK    Outcome = iota // executed (includes protocol-level miss/NOT_FOUND)
	OutcomeError                // session-fatal error during execution
	OutcomeBusy                 // shed by the admission gate
	NumOutcomes
)

// String returns the outcome's metric-name segment.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	default:
		return "busy"
	}
}

// outcomeOf maps a dispatch result onto an outcome. A clean quit and a
// client EOF end the session without being command failures.
func outcomeOf(err error) Outcome {
	if err == nil || errors.Is(err, ErrQuit) {
		return OutcomeOK
	}
	return OutcomeError
}

// Observer receives one callback per executed command with the
// command's handling time (read of the value payload through response
// serialization) as reported by the injected clock, and the command's
// outcome. The duration is a typed nanosecond count (sim.Ns) so it
// cannot be mixed with the kernel's picosecond values without an
// explicit conversion. Implementations are called from the
// connection's goroutine and must be safe for concurrent use across
// connections.
type Observer interface {
	ObserveOp(c OpClass, o Outcome, nanos sim.Ns)
}

// OpSpan is one sampled operation's phase timeline: parse (command
// line / frame decode and payload read), store-execute (the kvstore
// call), and write (response serialization and flush). All timestamps
// come from the session's injected clock. Opaque carries the binary
// protocol's opaque field (0 on ASCII/UDP, where no request id crosses
// the wire) — the correlation key that lets a merged trace line a
// client attempt up with the server's handling of that exact request.
type OpSpan struct {
	Start     sim.Ns
	ParseDone sim.Ns
	ExecDone  sim.Ns
	End       sim.Ns
	Opaque    uint64
	Class     OpClass
	Outcome   Outcome
}

// SpanObserver receives sampled per-op phase spans. Implementations
// are called from the connection's goroutine and must be safe for
// concurrent use across connections (kvserver's forwards into an
// obs.FlightRecorder ring).
type SpanObserver interface {
	ObserveSpan(sp OpSpan)
}

// classifyVerbBytes maps a raw ASCII verb token onto its class. The
// string conversion happens only inside the switch comparison, which
// does not allocate (unlike passing string(verb) to classifyVerb,
// which would depend on mid-stack inlining to stay alloc-free).
func classifyVerbBytes(verb []byte) OpClass {
	switch string(verb) {
	case "get", "gets":
		return ClassGet
	case "set", "add", "replace", "append", "prepend", "cas":
		return ClassStore
	case "delete":
		return ClassDelete
	case "incr", "decr":
		return ClassArith
	case "touch":
		return ClassTouch
	default:
		return ClassOther
	}
}

// classifyVerb maps an ASCII verb onto its class.
func classifyVerb(verb string) OpClass {
	switch verb {
	case "get", "gets":
		return ClassGet
	case "set", "add", "replace", "append", "prepend", "cas":
		return ClassStore
	case "delete":
		return ClassDelete
	case "incr", "decr":
		return ClassArith
	case "touch":
		return ClassTouch
	default:
		return ClassOther
	}
}

// classifyOpcode maps a binary opcode onto its class.
func classifyOpcode(op byte) OpClass {
	switch op {
	case OpGet, OpGetQ, OpGetK, OpGetKQ:
		return ClassGet
	case OpSet, OpSetQ, OpAdd, OpAddQ, OpReplace, OpReplaceQ,
		OpAppend, OpAppendQ, OpPrepend, OpPrependQ:
		return ClassStore
	case OpDelete, OpDeleteQ:
		return ClassDelete
	case OpIncr, OpIncrQ, OpDecr, OpDecrQ:
		return ClassArith
	case OpTouch:
		return ClassTouch
	default:
		return ClassOther
	}
}
