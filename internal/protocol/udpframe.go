package protocol

// The memcached UDP frame format: an 8-byte header — request id,
// sequence number, datagram count, reserved — followed by the ASCII
// payload. Facebook served memcached GETs over UDP to dodge exactly
// the TCP-stack costs the paper's Figure 4 measures; the parser lives
// here (not in kvserver) so the framing rules sit next to the other
// wire formats and under the protocol fuzzers.

import (
	"encoding/binary"
	"errors"
)

const (
	// UDPHeaderLen is the memcached UDP frame header size.
	UDPHeaderLen = 8
	// UDPMaxPayload is the per-datagram payload budget: a conservative
	// 1400-byte datagram (under the 10GbE path's 1500-byte MTU minus
	// IP/UDP headers) less the frame header.
	UDPMaxPayload = 1400 - UDPHeaderLen
)

// UDP request parse errors.
var (
	ErrUDPShortFrame = errors.New("protocol: UDP datagram shorter than frame header")
	ErrUDPFragmented = errors.New("protocol: fragmented UDP request")
)

// ParseUDPRequest validates a request datagram and returns its request
// id and payload (aliasing buf). Requests must fit one datagram, so a
// non-zero sequence number or a datagram count above one is rejected,
// like memcached does.
//
//kv3d:borrowed buf
//kv3d:aliases buf
func ParseUDPRequest(buf []byte) (reqID uint16, payload []byte, err error) {
	if len(buf) < UDPHeaderLen {
		return 0, nil, ErrUDPShortFrame
	}
	reqID = binary.BigEndian.Uint16(buf[0:])
	seq := binary.BigEndian.Uint16(buf[2:])
	count := binary.BigEndian.Uint16(buf[4:])
	if seq != 0 || count > 1 {
		return 0, nil, ErrUDPFragmented
	}
	return reqID, buf[UDPHeaderLen:], nil
}

// PutUDPHeader writes a response frame header into frame (which must
// have at least UDPHeaderLen bytes): the echoed request id, this
// fragment's sequence number, and the total datagram count.
func PutUDPHeader(frame []byte, reqID, seq, total uint16) {
	binary.BigEndian.PutUint16(frame[0:], reqID)
	binary.BigEndian.PutUint16(frame[2:], seq)
	binary.BigEndian.PutUint16(frame[4:], total)
	binary.BigEndian.PutUint16(frame[6:], 0)
}
