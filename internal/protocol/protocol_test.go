package protocol

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"kv3d/internal/kvstore"
)

// rwBuffer joins a request buffer and a response buffer into one
// io.ReadWriter for driving a Session without sockets.
type rwBuffer struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (b *rwBuffer) Read(p []byte) (int, error)  { return b.in.Read(p) }
func (b *rwBuffer) Write(p []byte) (int, error) { return b.out.Write(p) }

func run(t *testing.T, store *kvstore.Store, input string) string {
	t.Helper()
	if store == nil {
		store = newStore(t)
	}
	buf := &rwBuffer{in: bytes.NewReader([]byte(input))}
	sess := NewSession(store, buf)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return buf.out.String()
}

func newStore(t *testing.T) *kvstore.Store {
	t.Helper()
	st, err := kvstore.New(kvstore.DefaultConfig(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSetAndGet(t *testing.T) {
	out := run(t, nil, "set foo 42 0 5\r\nhello\r\nget foo\r\n")
	want := "STORED\r\nVALUE foo 42 5\r\nhello\r\nEND\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestGetMiss(t *testing.T) {
	out := run(t, nil, "get missing\r\n")
	if out != "END\r\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGetMultiKey(t *testing.T) {
	out := run(t, nil, "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nget a b c\r\n")
	if !strings.Contains(out, "VALUE a 0 1\r\nx\r\n") || !strings.Contains(out, "VALUE b 0 1\r\ny\r\n") {
		t.Fatalf("out = %q", out)
	}
	if strings.Contains(out, "VALUE c") {
		t.Fatalf("missing key returned: %q", out)
	}
}

func TestGetsReturnsCAS(t *testing.T) {
	out := run(t, nil, "set k 0 0 1\r\nv\r\ngets k\r\n")
	if !strings.Contains(out, "VALUE k 0 1 ") {
		t.Fatalf("gets should include cas: %q", out)
	}
}

func TestCasFlow(t *testing.T) {
	st := newStore(t)
	out := run(t, st, "set k 0 0 2\r\nv1\r\ngets k\r\n")
	// Parse the CAS id out of the response.
	fields := strings.Fields(strings.Split(out, "\r\n")[1])
	cas := fields[4]
	out = run(t, st, "cas k 0 0 2 "+cas+"\r\nv2\r\n")
	if out != "STORED\r\n" {
		t.Fatalf("matching cas: %q", out)
	}
	out = run(t, st, "cas k 0 0 2 "+cas+"\r\nv3\r\n")
	if out != "EXISTS\r\n" {
		t.Fatalf("stale cas: %q", out)
	}
	out = run(t, st, "cas absent 0 0 1 1\r\nx\r\n")
	if out != "NOT_FOUND\r\n" {
		t.Fatalf("cas on absent: %q", out)
	}
}

func TestAddReplaceAppendPrepend(t *testing.T) {
	st := newStore(t)
	if out := run(t, st, "replace k 0 0 1\r\nx\r\n"); out != "NOT_STORED\r\n" {
		t.Fatalf("replace absent: %q", out)
	}
	if out := run(t, st, "add k 0 0 3\r\nmid\r\n"); out != "STORED\r\n" {
		t.Fatalf("add: %q", out)
	}
	if out := run(t, st, "add k 0 0 1\r\nx\r\n"); out != "NOT_STORED\r\n" {
		t.Fatalf("add dup: %q", out)
	}
	run(t, st, "append k 0 0 4\r\n-end\r\n")
	run(t, st, "prepend k 0 0 6\r\nstart-\r\n")
	out := run(t, st, "get k\r\n")
	if !strings.Contains(out, "start-mid-end") {
		t.Fatalf("append/prepend result: %q", out)
	}
}

func TestDelete(t *testing.T) {
	st := newStore(t)
	run(t, st, "set k 0 0 1\r\nv\r\n")
	if out := run(t, st, "delete k\r\n"); out != "DELETED\r\n" {
		t.Fatalf("delete: %q", out)
	}
	if out := run(t, st, "delete k\r\n"); out != "NOT_FOUND\r\n" {
		t.Fatalf("delete again: %q", out)
	}
}

func TestIncrDecr(t *testing.T) {
	st := newStore(t)
	run(t, st, "set n 0 0 2\r\n10\r\n")
	if out := run(t, st, "incr n 5\r\n"); out != "15\r\n" {
		t.Fatalf("incr: %q", out)
	}
	if out := run(t, st, "decr n 100\r\n"); out != "0\r\n" {
		t.Fatalf("decr floors: %q", out)
	}
	if out := run(t, st, "incr missing 1\r\n"); out != "NOT_FOUND\r\n" {
		t.Fatalf("incr missing: %q", out)
	}
	run(t, st, "set s 0 0 3\r\nabc\r\n")
	if out := run(t, st, "incr s 1\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("incr non-numeric: %q", out)
	}
	if out := run(t, st, "incr n notanumber\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("bad delta: %q", out)
	}
}

func TestTouch(t *testing.T) {
	st := newStore(t)
	run(t, st, "set k 0 0 1\r\nv\r\n")
	if out := run(t, st, "touch k 100\r\n"); out != "TOUCHED\r\n" {
		t.Fatalf("touch: %q", out)
	}
	if out := run(t, st, "touch missing 100\r\n"); out != "NOT_FOUND\r\n" {
		t.Fatalf("touch missing: %q", out)
	}
}

func TestStats(t *testing.T) {
	st := newStore(t)
	run(t, st, "set k 0 0 1\r\nv\r\nget k\r\nget miss\r\n")
	out := run(t, st, "stats\r\n")
	if !strings.Contains(out, "STAT get_hits 1\r\n") {
		t.Fatalf("stats missing hits: %q", out)
	}
	if !strings.Contains(out, "STAT get_misses 1\r\n") {
		t.Fatalf("stats missing misses: %q", out)
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("stats must end with END: %q", out)
	}
}

func TestFlushAll(t *testing.T) {
	st := newStore(t)
	if out := run(t, st, "flush_all\r\n"); out != "OK\r\n" {
		t.Fatalf("flush_all: %q", out)
	}
	if out := run(t, st, "flush_all 100\r\n"); out != "OK\r\n" {
		t.Fatalf("flush_all delayed: %q", out)
	}
	if out := run(t, st, "flush_all abc\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("flush_all bad delay: %q", out)
	}
}

func TestVersionVerbosityQuit(t *testing.T) {
	if out := run(t, nil, "version\r\n"); !strings.HasPrefix(out, "VERSION ") {
		t.Fatalf("version: %q", out)
	}
	if out := run(t, nil, "verbosity 1\r\n"); out != "OK\r\n" {
		t.Fatalf("verbosity: %q", out)
	}
	// Commands after quit must not execute.
	out := run(t, nil, "quit\r\nversion\r\n")
	if out != "" {
		t.Fatalf("post-quit output: %q", out)
	}
}

func TestNoreply(t *testing.T) {
	st := newStore(t)
	out := run(t, st, "set k 0 0 1 noreply\r\nv\r\ndelete k noreply\r\nset n 0 0 1 noreply\r\n5\r\nincr n 1 noreply\r\ntouch n 10 noreply\r\nflush_all noreply\r\nget k\r\n")
	if out != "END\r\n" {
		t.Fatalf("noreply commands should be silent: %q", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	if out := run(t, nil, "bogus\r\n"); out != "ERROR\r\n" {
		t.Fatalf("unknown: %q", out)
	}
	if out := run(t, nil, "\r\n"); out != "ERROR\r\n" {
		t.Fatalf("empty line: %q", out)
	}
	if out := run(t, nil, "get\r\n"); out != "ERROR\r\n" {
		t.Fatalf("get with no keys: %q", out)
	}
}

func TestMalformedStorage(t *testing.T) {
	for _, cmd := range []string{
		"set k 0 0\r\n",            // missing bytes
		"set k x 0 5\r\nhello\r\n", // bad flags
		"set k 0 x 5\r\nhello\r\n", // bad exptime
		"set k 0 0 x\r\n",          // bad bytes
	} {
		out := run(t, nil, cmd)
		if !strings.HasPrefix(out, "CLIENT_ERROR") {
			t.Errorf("cmd %q -> %q, want CLIENT_ERROR", cmd, out)
		}
	}
}

func TestBadDataChunkTerminator(t *testing.T) {
	// Data not followed by \r\n.
	out := run(t, nil, "set k 0 0 5\r\nhelloXXset j 0 0 1\r\n")
	if !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("bad terminator: %q", out)
	}
}

func TestBinaryValueRoundTrip(t *testing.T) {
	st := newStore(t)
	payload := []byte{0, 1, 2, '\r', '\n', 0xff, 'x'}
	input := "set bin 0 0 7\r\n" + string(payload) + "\r\nget bin\r\n"
	out := run(t, st, input)
	if !bytes.Contains([]byte(out), payload) {
		t.Fatalf("binary value corrupted: %q", out)
	}
}

func TestTooLargeValueReportsServerError(t *testing.T) {
	st := newStore(t)
	big := strings.Repeat("v", kvstore.DefaultMaxItemSize+10)
	out := run(t, st, "set k 0 0 "+strconv.Itoa(len(big))+"\r\n"+big+"\r\n")
	if !strings.HasPrefix(out, "SERVER_ERROR object too large") {
		t.Fatalf("oversize: %q", out)
	}
}

func TestBadKeyReportsClientError(t *testing.T) {
	st := newStore(t)
	long := strings.Repeat("k", 300)
	out := run(t, st, "set "+long+" 0 0 1\r\nv\r\n")
	if !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("long key: %q", out)
	}
}

func TestOverlongCommandLineRejected(t *testing.T) {
	buf := &rwBuffer{in: bytes.NewReader([]byte("get " + strings.Repeat("k", 100000) + "\r\n"))}
	sess := NewSession(newStore(t), buf)
	if err := sess.Serve(); err == nil {
		t.Fatal("overlong line should error the session")
	}
}

func TestStatsSlabs(t *testing.T) {
	st := newStore(t)
	run(t, st, "set small 0 0 10\r\n0123456789\r\nset big 0 0 5000\r\n"+strings.Repeat("x", 5000)+"\r\n")
	out := run(t, st, "stats slabs\r\n")
	if !strings.Contains(out, ":chunk_size") || !strings.Contains(out, ":used_chunks") {
		t.Fatalf("stats slabs output: %q", out)
	}
	if !strings.Contains(out, "STAT active_slabs") {
		t.Fatalf("missing active_slabs: %q", out)
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Fatal("stats slabs must end with END")
	}
}

func TestStatsSettings(t *testing.T) {
	out := run(t, nil, "stats settings\r\n")
	for _, want := range []string{"STAT maxbytes", "STAT eviction_policy lru", "STAT locking striped", "STAT num_shards"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats settings missing %q: %q", want, out)
		}
	}
}

func TestStatsReset(t *testing.T) {
	if out := run(t, nil, "stats reset\r\n"); out != "RESET\r\n" {
		t.Fatalf("stats reset: %q", out)
	}
}

func TestStatsUnknownSubcommand(t *testing.T) {
	if out := run(t, nil, "stats bogus\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("stats bogus: %q", out)
	}
}

// brokenPipeRW reads a canned request and fails every write, standing
// in for a client that vanished before the response went out.
type brokenPipeRW struct {
	in *bytes.Reader
}

func (b *brokenPipeRW) Read(p []byte) (int, error) { return b.in.Read(p) }
func (b *brokenPipeRW) Write(p []byte) (int, error) {
	return 0, errors.New("broken pipe")
}

// TestServeSurfacesFlushError pins a fix found by the kv3d-lint errdrop
// check: Serve used to drop the final Flush result, so a response that
// never reached the client looked like a clean session.
func TestServeSurfacesFlushError(t *testing.T) {
	sess := NewSession(newStore(t), &brokenPipeRW{in: bytes.NewReader([]byte("version\r\n"))})
	err := sess.Serve()
	if err == nil {
		t.Fatal("Serve returned nil although the response flush failed")
	}
	if !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("Serve error %q does not surface the write failure", err)
	}
}
