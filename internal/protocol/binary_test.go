package protocol

import (
	"bytes"
	"encoding/binary"
	"testing"

	"kv3d/internal/kvstore"
)

// frame builds one binary request frame.
func frame(opcode byte, key string, extras, value []byte, cas uint64, opaque uint32) []byte {
	buf := make([]byte, binHeaderLen, binHeaderLen+len(extras)+len(key)+len(value))
	buf[0] = MagicRequest
	buf[1] = opcode
	binary.BigEndian.PutUint16(buf[2:], uint16(len(key)))
	buf[4] = byte(len(extras))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(buf[12:], opaque)
	binary.BigEndian.PutUint64(buf[16:], cas)
	buf = append(buf, extras...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

func setExtras(flags uint32, exptime uint32) []byte {
	e := make([]byte, 8)
	binary.BigEndian.PutUint32(e, flags)
	binary.BigEndian.PutUint32(e[4:], exptime)
	return e
}

// binResponse is one parsed response frame.
type binResponse struct {
	opcode byte
	status uint16
	opaque uint32
	cas    uint64
	extras []byte
	key    string
	value  []byte
}

func parseResponses(t *testing.T, raw []byte) []binResponse {
	t.Helper()
	var out []binResponse
	for len(raw) > 0 {
		if len(raw) < binHeaderLen {
			t.Fatalf("truncated response header: %d bytes", len(raw))
		}
		if raw[0] != MagicResponse {
			t.Fatalf("bad response magic %#02x", raw[0])
		}
		keyLen := int(binary.BigEndian.Uint16(raw[2:]))
		extrasLen := int(raw[4])
		bodyLen := int(binary.BigEndian.Uint32(raw[8:]))
		r := binResponse{
			opcode: raw[1],
			status: binary.BigEndian.Uint16(raw[6:]),
			opaque: binary.BigEndian.Uint32(raw[12:]),
			cas:    binary.BigEndian.Uint64(raw[16:]),
		}
		body := raw[binHeaderLen : binHeaderLen+bodyLen]
		r.extras = body[:extrasLen]
		r.key = string(body[extrasLen : extrasLen+keyLen])
		r.value = body[extrasLen+keyLen:]
		out = append(out, r)
		raw = raw[binHeaderLen+bodyLen:]
	}
	return out
}

// runBinary serves the given request frames against store (nil for a
// fresh one) and returns the parsed responses.
func runBinary(t *testing.T, store *kvstore.Store, frames ...[]byte) []binResponse {
	t.Helper()
	if store == nil {
		store = newStore(t)
	}
	var in bytes.Buffer
	for _, f := range frames {
		in.Write(f)
	}
	buf := &rwBuffer{in: bytes.NewReader(in.Bytes())}
	sess := NewBinarySession(store, buf)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return parseResponses(t, buf.out.Bytes())
}

func TestBinarySetGet(t *testing.T) {
	st := newStore(t)
	rs := runBinary(t, st,
		frame(OpSet, "hello", setExtras(42, 0), []byte("world"), 0, 7),
		frame(OpGet, "hello", nil, nil, 0, 8),
	)
	if len(rs) != 2 {
		t.Fatalf("got %d responses", len(rs))
	}
	if rs[0].status != StatusOK || rs[0].opaque != 7 || rs[0].cas == 0 {
		t.Fatalf("set response: %+v", rs[0])
	}
	if rs[1].status != StatusOK || string(rs[1].value) != "world" {
		t.Fatalf("get response: %+v", rs[1])
	}
	if binary.BigEndian.Uint32(rs[1].extras) != 42 {
		t.Fatalf("flags = %d", binary.BigEndian.Uint32(rs[1].extras))
	}
	if rs[1].opaque != 8 {
		t.Fatal("opaque must echo")
	}
}

func TestBinaryGetMiss(t *testing.T) {
	rs := runBinary(t, nil, frame(OpGet, "nope", nil, nil, 0, 1))
	if len(rs) != 1 || rs[0].status != StatusKeyNotFound {
		t.Fatalf("responses: %+v", rs)
	}
}

func TestBinaryGetQQuietMiss(t *testing.T) {
	// getq suppresses misses entirely; a trailing noop flushes.
	rs := runBinary(t, nil,
		frame(OpGetQ, "nope", nil, nil, 0, 1),
		frame(OpNoop, "", nil, nil, 0, 2),
	)
	if len(rs) != 1 || rs[0].opcode != OpNoop {
		t.Fatalf("getq miss must be silent, got %+v", rs)
	}
}

func TestBinaryGetK(t *testing.T) {
	st := newStore(t)
	rs := runBinary(t, st,
		frame(OpSet, "k1", setExtras(0, 0), []byte("v"), 0, 0),
		frame(OpGetK, "k1", nil, nil, 0, 0),
	)
	if rs[1].key != "k1" {
		t.Fatalf("getk must echo the key, got %q", rs[1].key)
	}
}

func TestBinaryAddReplace(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpReplace, "k", setExtras(0, 0), []byte("x"), 0, 0),
		frame(OpAdd, "k", setExtras(0, 0), []byte("v1"), 0, 0),
		frame(OpAdd, "k", setExtras(0, 0), []byte("v2"), 0, 0),
		frame(OpReplace, "k", setExtras(0, 0), []byte("v3"), 0, 0),
		frame(OpGet, "k", nil, nil, 0, 0),
	)
	if rs[0].status != StatusNotStored {
		t.Fatalf("replace absent = %#x", rs[0].status)
	}
	if rs[1].status != StatusOK {
		t.Fatalf("add = %#x", rs[1].status)
	}
	if rs[2].status != StatusNotStored {
		t.Fatalf("add dup = %#x", rs[2].status)
	}
	if rs[3].status != StatusOK || string(rs[4].value) != "v3" {
		t.Fatalf("replace = %#x value %q", rs[3].status, rs[4].value)
	}
}

func TestBinaryCASViaSet(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h, frame(OpSet, "k", setExtras(0, 0), []byte("v1"), 0, 0))
	cas := rs[0].cas
	rs = runBinary(t, h,
		frame(OpSet, "k", setExtras(0, 0), []byte("v2"), cas, 0),
		frame(OpSet, "k", setExtras(0, 0), []byte("v3"), cas, 0),
	)
	if rs[0].status != StatusOK {
		t.Fatalf("matching cas set = %#x", rs[0].status)
	}
	if rs[1].status != StatusKeyExists {
		t.Fatalf("stale cas set = %#x", rs[1].status)
	}
}

func TestBinaryAppendPrepend(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpSet, "k", setExtras(0, 0), []byte("mid"), 0, 0),
		frame(OpAppend, "k", nil, []byte("-end"), 0, 0),
		frame(OpPrepend, "k", nil, []byte("start-"), 0, 0),
		frame(OpGet, "k", nil, nil, 0, 0),
	)
	if string(rs[3].value) != "start-mid-end" {
		t.Fatalf("value = %q", rs[3].value)
	}
}

func TestBinaryDelete(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 0),
		frame(OpDelete, "k", nil, nil, 0, 0),
		frame(OpDelete, "k", nil, nil, 0, 0),
	)
	if rs[1].status != StatusOK || rs[2].status != StatusKeyNotFound {
		t.Fatalf("delete statuses %#x %#x", rs[1].status, rs[2].status)
	}
}

func incrExtras(delta, initial uint64, exptime uint32) []byte {
	e := make([]byte, 20)
	binary.BigEndian.PutUint64(e, delta)
	binary.BigEndian.PutUint64(e[8:], initial)
	binary.BigEndian.PutUint32(e[16:], exptime)
	return e
}

func TestBinaryIncrDecrWithInitial(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpIncr, "n", incrExtras(5, 100, 0), nil, 0, 0), // absent: seeds 100
		frame(OpIncr, "n", incrExtras(5, 100, 0), nil, 0, 0), // 105
		frame(OpDecr, "n", incrExtras(200, 0, 0), nil, 0, 0), // floors at 0
	)
	if v := binary.BigEndian.Uint64(rs[0].value); v != 100 {
		t.Fatalf("initial = %d", v)
	}
	if v := binary.BigEndian.Uint64(rs[1].value); v != 105 {
		t.Fatalf("incr = %d", v)
	}
	if v := binary.BigEndian.Uint64(rs[2].value); v != 0 {
		t.Fatalf("decr floor = %d", v)
	}
}

func TestBinaryIncrNoCreate(t *testing.T) {
	rs := runBinary(t, nil,
		frame(OpIncr, "absent", incrExtras(1, 0, 0xffffffff), nil, 0, 0))
	if rs[0].status != StatusKeyNotFound {
		t.Fatalf("incr with 0xffffffff exptime must not create, got %#x", rs[0].status)
	}
}

func TestBinaryTouchFlushNoopVersion(t *testing.T) {
	st := newStore(t)
	h := st
	exp := make([]byte, 4)
	binary.BigEndian.PutUint32(exp, 100)
	rs := runBinary(t, h,
		frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 0),
		frame(OpTouch, "k", exp, nil, 0, 0),
		frame(OpTouch, "absent", exp, nil, 0, 0),
		frame(OpNoop, "", nil, nil, 0, 0),
		frame(OpVersion, "", nil, nil, 0, 0),
		frame(OpFlush, "", nil, nil, 0, 0),
	)
	if rs[1].status != StatusOK || rs[2].status != StatusKeyNotFound {
		t.Fatalf("touch statuses %#x %#x", rs[1].status, rs[2].status)
	}
	if rs[3].opcode != OpNoop || rs[3].status != StatusOK {
		t.Fatal("noop")
	}
	if string(rs[4].value) != Version {
		t.Fatalf("version = %q", rs[4].value)
	}
	if rs[5].status != StatusOK {
		t.Fatal("flush")
	}
}

func TestBinaryQuietSetPipelined(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpSetQ, "a", setExtras(0, 0), []byte("1"), 0, 0),
		frame(OpSetQ, "b", setExtras(0, 0), []byte("2"), 0, 0),
		frame(OpGet, "a", nil, nil, 0, 0),
	)
	// Only the get answers.
	if len(rs) != 1 || string(rs[0].value) != "1" {
		t.Fatalf("pipelined setq: %+v", rs)
	}
}

func TestBinaryStat(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 0),
		frame(OpStat, "", nil, nil, 0, 0),
	)
	// Last stat frame is the empty terminator.
	last := rs[len(rs)-1]
	if last.key != "" || len(last.value) != 0 {
		t.Fatal("stat must terminate with an empty frame")
	}
	found := false
	for _, r := range rs[1:] {
		if r.key == "cmd_set" && string(r.value) == "1" {
			found = true
		}
	}
	if !found {
		t.Fatal("stat must include cmd_set")
	}
}

func TestBinaryUnknownOpcode(t *testing.T) {
	rs := runBinary(t, nil, frame(0x7f, "", nil, nil, 0, 0))
	if rs[0].status != StatusUnknownCommand {
		t.Fatalf("status = %#x", rs[0].status)
	}
}

func TestBinaryQuit(t *testing.T) {
	st := newStore(t)
	h := st
	rs := runBinary(t, h,
		frame(OpQuit, "", nil, nil, 0, 0),
		frame(OpGet, "after", nil, nil, 0, 0), // must not execute
	)
	if len(rs) != 1 || rs[0].opcode != OpQuit {
		t.Fatalf("quit: %+v", rs)
	}
}

func TestBinaryBadMagicErrors(t *testing.T) {
	st := newStore(t)
	bad := frame(OpGet, "k", nil, nil, 0, 0)
	bad[0] = 0x42
	buf := &rwBuffer{in: bytes.NewReader(bad)}
	if err := NewBinarySession(st, buf).Serve(); err == nil {
		t.Fatal("bad magic must error the session")
	}
}

func TestBinaryInconsistentLengthsError(t *testing.T) {
	st := newStore(t)
	bad := frame(OpGet, "k", nil, nil, 0, 0)
	// Claim a key longer than the body.
	binary.BigEndian.PutUint16(bad[2:], 100)
	buf := &rwBuffer{in: bytes.NewReader(bad)}
	if err := NewBinarySession(st, buf).Serve(); err == nil {
		t.Fatal("inconsistent lengths must error the session")
	}
}

func TestBinaryInvalidExtras(t *testing.T) {
	rs := runBinary(t, nil,
		frame(OpSet, "k", []byte{1, 2}, []byte("v"), 0, 0))
	if rs[0].status != StatusInvalidArgs {
		t.Fatalf("short set extras = %#x", rs[0].status)
	}
}
