package protocol

import (
	"fmt"
	"strings"
	"testing"

	"kv3d/internal/kvstore"
)

// multigetStore builds a store preloaded with n keys "key:NNN" = "val:NNN".
func multigetStore(t *testing.T, n int) (*kvstore.Store, []string) {
	t.Helper()
	st := newStore(t)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key:%03d", i)
		if err := st.Set(keys[i], []byte(fmt.Sprintf("val:%03d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	return st, keys
}

// TestMultigetMatchesPerKeyGets: a multi-key get must answer exactly
// what the same keys answered one command at a time, in request order.
func TestMultigetMatchesPerKeyGets(t *testing.T) {
	for _, verb := range []string{"get", "gets"} {
		st, keys := multigetStore(t, 20)
		// Mix hits, misses and duplicates.
		req := append([]string{}, keys[:10]...)
		req = append(req, "missing-a", keys[3], "missing-b", keys[7])

		var perKey strings.Builder
		for _, k := range req {
			perKey.WriteString(run(t, st, verb+" "+k+"\r\n"))
		}
		// Per-key output is one END per command; the batched form has a
		// single trailing END.
		wantBody := strings.ReplaceAll(perKey.String(), "END\r\n", "")

		batched := run(t, st, verb+" "+strings.Join(req, " ")+"\r\n")
		if batched != wantBody+"END\r\n" {
			t.Fatalf("%s batched response diverges:\n got %q\nwant %q", verb, batched, wantBody+"END\r\n")
		}
	}
}

// TestMultigetLockCount pins the acceptance criterion end to end: a
// 64-key ASCII multiget served through the session costs at most
// Shards shard-lock acquisitions.
func TestMultigetLockCount(t *testing.T) {
	st, keys := multigetStore(t, 64)
	shards := st.Config().Shards

	before := st.ReadLockCount()
	out := run(t, st, "get "+strings.Join(keys, " ")+"\r\n")
	locks := st.ReadLockCount() - before

	if got := strings.Count(out, "VALUE "); got != len(keys) {
		t.Fatalf("multiget answered %d of %d keys", got, len(keys))
	}
	if locks > uint64(shards) {
		t.Fatalf("64-key multiget took %d shard locks, want <= %d", locks, shards)
	}
}

// TestMultigetLargeBatchSizes exercises the sweep's batch sizes through
// the wire path.
func TestMultigetLargeBatchSizes(t *testing.T) {
	st, keys := multigetStore(t, 64)
	for _, k := range []int{1, 4, 16, 64} {
		out := run(t, st, "get "+strings.Join(keys[:k], " ")+"\r\n")
		if got := strings.Count(out, "VALUE "); got != k {
			t.Fatalf("batch %d: answered %d keys: %q", k, got, out)
		}
		if !strings.HasSuffix(out, "END\r\n") {
			t.Fatalf("batch %d: missing END: %q", k, out)
		}
	}
}

// TestMultigetEmptyAndWhitespace: "get" with no key is an error;
// trailing spaces after the last key must not confuse the tokenizer.
func TestMultigetEmptyAndWhitespace(t *testing.T) {
	st, _ := multigetStore(t, 2)
	if out := run(t, st, "get\r\n"); out != "ERROR\r\n" {
		t.Fatalf("bare get = %q", out)
	}
	out := run(t, st, "get key:000 key:001  \r\n")
	if strings.Count(out, "VALUE ") != 2 || !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("trailing-space multiget = %q", out)
	}
}
